/**
 * @file cmd_sweep.cc
 * `califorms sweep`: the policy harness. Iterates insertion policies
 * and span sizes over one benchmark (or the software-eval suite),
 * averages cycles over layout seeds, and prints slowdown relative to
 * the uninstrumented baseline — the Figure 11/12 methodology, but
 * composable over any policy x span grid instead of fixed per-figure
 * configurations.
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/table.hh"
#include "workload/runner.hh"

namespace califorms::cli
{
namespace
{

void
usage()
{
    std::puts(
        "usage: califorms sweep [options]\n"
        "\n"
        "options:\n"
        "  --bench B       benchmark name or 'all' for the software-eval "
        "suite (default mcf)\n"
        "  --policies L    comma list of policies (default "
        "none,opportunistic,full,intelligent)\n"
        "  --maxspans L    comma list of max span sizes (default 3,5,7)\n"
        "  --scale S       workload iteration multiplier (default 0.25)\n"
        "  --seeds N       layout seeds per configuration (default 2)\n"
        "  --extra-latency add one cycle to L2 and L3");
}

/** Mean cycles of @p bench under @p config over @p seeds layouts. */
double
meanCycles(const SpecBenchmark &bench, RunConfig config, unsigned seeds)
{
    double sum = 0;
    for (unsigned s = 0; s < seeds; ++s) {
        config.layoutSeed = 1000 + s;
        sum += static_cast<double>(runBenchmark(bench, config).cycles);
    }
    return sum / seeds;
}

/** True for policies whose layout depends on the span size. */
bool
usesSpans(InsertionPolicy p)
{
    return p == InsertionPolicy::Full ||
           p == InsertionPolicy::Intelligent ||
           p == InsertionPolicy::FullFixed;
}

} // namespace

int
cmdSweep(int argc, char **argv)
{
    std::string bench_name = "mcf";
    std::vector<InsertionPolicy> policies = {
        InsertionPolicy::None, InsertionPolicy::Opportunistic,
        InsertionPolicy::Full, InsertionPolicy::Intelligent};
    std::vector<std::size_t> maxspans = {3, 5, 7};
    RunConfig base;
    base.scale = 0.25;
    unsigned seeds = 2;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--bench") {
            bench_name = flagValue(argc, argv, i);
        } else if (arg == "--policies") {
            policies.clear();
            for (const std::string &name :
                 splitCsv(flagValue(argc, argv, i))) {
                const auto p = parsePolicy(name);
                if (!p) {
                    std::fprintf(stderr, "califorms sweep: unknown "
                                         "policy '%s'\n",
                                 name.c_str());
                    return 2;
                }
                policies.push_back(*p);
            }
        } else if (arg == "--maxspans") {
            maxspans = parseSizeList(flagValue(argc, argv, i));
            if (maxspans.empty()) {
                std::fprintf(stderr, "califorms sweep: bad --maxspans "
                                     "list\n");
                return 2;
            }
        } else if (arg == "--scale") {
            base.scale = std::atof(flagValue(argc, argv, i));
        } else if (arg == "--seeds") {
            seeds = static_cast<unsigned>(
                std::atoi(flagValue(argc, argv, i)));
            if (seeds == 0)
                seeds = 1;
        } else if (arg == "--extra-latency") {
            base.machine.mem.extraL2L3Latency = 1;
        } else if (arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "califorms sweep: unknown argument "
                                 "'%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    std::vector<const SpecBenchmark *> suite;
    if (bench_name == "all") {
        for (const auto &b : spec2006Suite())
            if (b.inSoftwareEval)
                suite.push_back(&b);
    } else {
        suite.push_back(&findBenchmark(bench_name));
    }

    TextTable table({"benchmark", "policy", "maxspan", "cycles",
                     "slowdown"});
    for (const SpecBenchmark *bench : suite) {
        RunConfig config = base;
        config.policy = InsertionPolicy::None;
        const double baseline = meanCycles(*bench, config, seeds);

        for (const InsertionPolicy policy : policies) {
            config.policy = policy;
            const std::vector<std::size_t> spans =
                usesSpans(policy) ? maxspans
                                  : std::vector<std::size_t>{0};
            for (const std::size_t span : spans) {
                if (span) {
                    config.policyParams.maxSpan = span;
                    config.policyParams.fixedSpan = span;
                }
                const double cycles =
                    policy == InsertionPolicy::None
                        ? baseline
                        : meanCycles(*bench, config, seeds);
                table.addRow({bench->name, policyName(policy),
                              span ? std::to_string(span) : "-",
                              TextTable::num(cycles, 0),
                              TextTable::pct(cycles / baseline - 1.0)});
            }
        }
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

} // namespace califorms::cli
