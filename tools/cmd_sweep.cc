/**
 * @file cmd_sweep.cc
 * `califorms sweep`: the policy harness. Expands a policy x span grid
 * over one benchmark (or the software-eval suite) into a campaign,
 * executes it on the deterministic parallel engine (--jobs), averages
 * cycles over layout seeds, and prints slowdown relative to the
 * uninstrumented baseline — the Figure 11/12 methodology, but
 * composable over any policy x span grid instead of fixed per-figure
 * configurations. The machine is configurable through the parameter
 * registry (--set key=value, --config FILE, and the legacy alias
 * flags); any registered knob becomes an extra grid axis with
 * --axis key=v1,v2,... (e.g. --axis core.mlp=4,12), and a comma list
 * for --levels keeps its historical role as the hierarchy-depth axis.
 * Every axis block carries its own uninstrumented baseline, so the
 * slowdown column always compares within a machine configuration.
 * --json/--csv record the machine-readable report (schema
 * califorms-campaign/v2; registry-axis variants embed their resolved
 * non-default config).
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/campaign.hh"
#include "exp/report.hh"
#include "security/scenarios.hh"
#include "util/table.hh"
#include "workload/runner.hh"
#include "workload/synth.hh"

namespace califorms::cli
{
namespace
{

constexpr const char *prog = "califorms sweep";

void
usage()
{
    std::printf(
        "usage: califorms sweep [options]\n"
        "\n"
        "options:\n"
        "  --bench B       benchmark name, 'all' for the software-eval "
        "suite, or\n"
        "                  'synthetic' for the workload-generator suite "
        "(default mcf)\n"
        "  --policies L    comma list of policies (default "
        "none,opportunistic,full,intelligent)\n"
        "  --maxspans L    comma list of max span sizes (default 3,5,7)\n"
        "  --scale S       workload iteration multiplier (default 0.25)\n"
        "  --seeds N       layout seeds per configuration (default 2)\n"
        "  --jobs N        parallel campaign workers; 0 = all cores "
        "(default 1)\n"
        "  --json FILE     write the campaign report as JSON\n"
        "  --csv FILE      write one CSV row per run\n"
        "  --extra-latency add one cycle to L2 and L3\n"
        "  --axis key=L    sweep any registered knob as a grid axis "
        "(repeatable),\n"
        "                  e.g. --axis core.mlp=4,12 --axis "
        "mem.wb_queue_entries=0,8\n"
        "  --levels L      hierarchy depth 1..3, or a comma list to "
        "sweep the depth as a grid axis\n%s\n",
        config::cliUsage().c_str());
}

} // namespace

int
cmdSweep(int argc, char **argv)
{
    std::string bench_name = "mcf";
    std::vector<InsertionPolicy> policies = {
        InsertionPolicy::None, InsertionPolicy::Opportunistic,
        InsertionPolicy::Full, InsertionPolicy::Intelligent};
    std::vector<std::size_t> maxspans = {3, 5, 7};
    std::vector<unsigned> levels_axis;
    /** --axis grid dimensions, in CLI order. */
    std::vector<std::pair<std::string, std::vector<std::string>>> axes;
    config::Config cfg;
    unsigned seeds = 2;
    unsigned jobs = 1;
    std::string json_path, csv_path;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--levels") {
            // Sweep-specific superset of the registry alias: accepts a
            // comma list and turns it into a grid axis.
            const std::string text = flagValue(argc, argv, i);
            const auto list = parseSizeList(text);
            if (!list || list->empty()) {
                std::fprintf(stderr,
                             "%s: --levels expects a comma list of "
                             "integers (e.g. 1,2,3), got '%s'\n",
                             prog, text.c_str());
                return 2;
            }
            for (const std::size_t v : *list) {
                if (v < 1 || v > 3) {
                    std::fprintf(stderr,
                                 "%s: --levels entries must be 1..3, "
                                 "got %zu\n",
                                 prog, v);
                    return 2;
                }
            }
            if (list->size() == 1) {
                // A single depth is just the registry alias, recorded
                // positionally so a later --set mem.levels still wins.
                levels_axis.clear();
                if (!setOrReport(cfg, prog, arg, "mem.levels", text))
                    return 2;
                continue;
            }
            levels_axis.clear();
            for (const std::size_t v : *list)
                levels_axis.push_back(static_cast<unsigned>(v));
            continue;
        }
        if (arg == "--axis") {
            const std::string text = flagValue(argc, argv, i);
            const std::size_t eq = text.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == text.size()) {
                std::fprintf(stderr,
                             "%s: --axis expects key=v1,v2,..., got "
                             "'%s'\n",
                             prog, text.c_str());
                return 2;
            }
            const std::string key = text.substr(0, eq);
            if (key == "mem.levels") {
                // The depth axis has a dedicated flag; accepting it
                // here too would let the two axes silently override
                // each other while both print their own columns.
                std::fprintf(stderr,
                             "%s: use --levels L1,L2,... for the "
                             "hierarchy-depth axis, not --axis "
                             "mem.levels\n",
                             prog);
                return 2;
            }
            for (const auto &[seen, ignored] : axes) {
                if (seen == key) {
                    // Config map semantics would make the last value
                    // win inside every variant while the labels still
                    // claim the full cross product — reject instead.
                    std::fprintf(stderr,
                                 "%s: duplicate --axis key '%s'\n",
                                 prog, key.c_str());
                    return 2;
                }
            }
            const std::vector<std::string> values =
                splitCsv(text.substr(eq + 1));
            // Validate eagerly so a typo'd key or value fails before
            // any simulation time is spent.
            for (const std::string &value : values) {
                config::Config probe;
                if (const auto error = probe.set(key, value)) {
                    std::fprintf(stderr, "%s: --axis: %s\n", prog,
                                 error->c_str());
                    return 2;
                }
            }
            axes.emplace_back(key, values);
            continue;
        }
        switch (config::parseCliArg(cfg, arg, argc, argv, i, prog)) {
        case config::CliArg::Consumed:
            continue;
        case config::CliArg::Error:
            return 2;
        case config::CliArg::NotMine:
            break;
        }
        if (arg == "--bench") {
            bench_name = flagValue(argc, argv, i);
        } else if (arg == "--policies") {
            policies.clear();
            for (const std::string &name :
                 splitCsv(flagValue(argc, argv, i))) {
                const auto p = parsePolicy(name);
                if (!p) {
                    std::fprintf(stderr, "califorms sweep: unknown "
                                         "policy '%s'\n",
                                 name.c_str());
                    return 2;
                }
                policies.push_back(*p);
            }
        } else if (arg == "--maxspans") {
            const std::string text = flagValue(argc, argv, i);
            const auto list = parseSizeList(text);
            if (!list || list->empty()) {
                std::fprintf(stderr,
                             "%s: --maxspans expects a comma list of "
                             "integers (e.g. 3,5,7), got '%s'\n",
                             prog, text.c_str());
                return 2;
            }
            maxspans = *list;
        } else if (arg == "--scale") {
            if (!setOrReport(cfg, prog, arg, "run.scale",
                             flagValue(argc, argv, i)))
                return 2;
        } else if (arg == "--seeds") {
            seeds = static_cast<unsigned>(
                std::atoi(flagValue(argc, argv, i)));
            if (seeds == 0)
                seeds = 1;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::atoi(flagValue(argc, argv, i)));
        } else if (arg == "--json") {
            json_path = flagValue(argc, argv, i);
        } else if (arg == "--csv") {
            csv_path = flagValue(argc, argv, i);
        } else if (arg == "--extra-latency") {
            cfg.set("mem.extra_l2l3_latency", "1");
        } else if (arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "califorms sweep: unknown argument "
                                 "'%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    // The sweep grid owns the layout axis: policy comes from
    // --policies, spans from --maxspans, seeds from --seeds, so a
    // base-level set of those keys would be silently overwritten by
    // the grid. Reject it rather than no-op (same contract as trace
    // run's foreign-key guard). Likewise workload.* keys when no
    // synthetic benchmark is in the suite.
    const bool any_synth =
        bench_name == "synthetic" || isSynthWorkload(bench_name);
    const bool any_attack = isAttackBenchmark(bench_name);
    // attack.* keys (as base sets or grid axes) only reach the attack
    // replay benchmark; anywhere else they would be a silent no-op.
    for (const auto &[key, values] : axes) {
        if (!any_attack && key.rfind("attack.", 0) == 0) {
            std::fprintf(stderr,
                         "%s: --axis %s has no effect here (only "
                         "`--bench attack` consumes attack.* knobs)\n",
                         prog, key.c_str());
            return 2;
        }
    }
    for (const auto &[key, value] : cfg.entries()) {
        if (!any_attack && key.rfind("attack.", 0) == 0) {
            std::fprintf(stderr,
                         "%s: %s has no effect here (only `--bench "
                         "attack` consumes attack.* knobs)\n",
                         prog, key.c_str());
            return 2;
        }
        if (!any_synth && key.rfind("workload.", 0) == 0) {
            std::fprintf(stderr,
                         "%s: %s has no effect here (no synthetic "
                         "workload in the suite consumes workload.* "
                         "knobs)\n",
                         prog, key.c_str());
            return 2;
        }
        if (key.rfind("fleet.", 0) == 0) {
            std::fprintf(stderr,
                         "%s: %s has no effect here (only `califorms "
                         "fleet` consumes fleet.* knobs)\n",
                         prog, key.c_str());
            return 2;
        }
        if (exp::gridOwnedKey(key)) {
            std::fprintf(stderr,
                         "%s: %s is owned by the sweep grid "
                         "(--policies / --maxspans / --seeds); a base "
                         "config set would be silently overridden\n",
                         prog, key.c_str());
            return 2;
        }
    }

    // A single-depth --levels was folded into cfg during parsing; the
    // grid (and the table shape) only grows for a real comma-list axis.
    RunConfig base;
    base.scale = 0.25;
    cfg.applyTo(base);

    exp::CampaignSpec spec;
    spec.name = "sweep";
    spec.base = base;
    spec.layoutSeeds = exp::CampaignSpec::seedRange(seeds);
    if (bench_name == "all") {
        for (const auto &b : spec2006Suite())
            if (b.inSoftwareEval)
                spec.suite.push_back(&b);
    } else if (bench_name == "synthetic") {
        for (const auto &b : synthSuite())
            spec.suite.push_back(&b);
    } else {
        spec.suite.push_back(&findBenchmark(bench_name));
    }

    // Variant 0 is always the baseline the slowdown column divides by,
    // even when the user's --policies list omits 'none'; the row order
    // below follows the user's list.
    spec.variants = {{"none", InsertionPolicy::None, 0, 0,
                      std::nullopt, false, {}}};
    struct Row
    {
        std::size_t variant;
        std::size_t span;    //!< 0 = span axis not applicable
        unsigned levels;     //!< 0 = depth axis not active
        std::vector<std::string> axisVals; //!< one per --axis, in order
    };
    std::vector<Row> rows;
    for (const InsertionPolicy policy : policies) {
        if (policy == InsertionPolicy::None) {
            rows.push_back({0, 0, 0, {}});
            continue;
        }
        const auto expanded = exp::CampaignSpec::crossPolicySpans(
            {policy}, maxspans);
        for (const exp::Variant &v : expanded) {
            rows.push_back({spec.variants.size(), v.maxSpan, 0, {}});
            spec.variants.push_back(v);
        }
    }

    // Cross with the registry axes (CLI order), then the hierarchy
    // depth. Every crossing is value-major blocks of the previous
    // variant list, so a block of per_block consecutive variants stays
    // one machine configuration carrying its own baseline.
    const std::size_t per_block = spec.variants.size();
    for (const auto &[key, values] : axes) {
        const std::size_t block = spec.variants.size();
        std::vector<Row> expanded;
        for (std::size_t a = 0; a < values.size(); ++a)
            for (const Row &row : rows) {
                Row r = row;
                r.variant += a * block;
                r.axisVals.push_back(values[a]);
                expanded.push_back(std::move(r));
            }
        spec.variants =
            exp::CampaignSpec::crossKey(spec.variants, key, values);
        rows = std::move(expanded);
    }
    if (!levels_axis.empty()) {
        const std::size_t block = spec.variants.size();
        std::vector<Row> expanded;
        for (std::size_t l = 0; l < levels_axis.size(); ++l)
            for (const Row &row : rows) {
                Row r = row;
                r.variant += l * block;
                r.levels = levels_axis[l];
                expanded.push_back(std::move(r));
            }
        spec.variants = exp::CampaignSpec::crossLevels(spec.variants,
                                                       levels_axis);
        rows = std::move(expanded);
    }

    const exp::CampaignResult result = exp::runCampaignWithReports(
        spec, jobs, json_path, csv_path);

    std::vector<std::string> headers = {"benchmark", "policy",
                                        "maxspan"};
    for (const auto &[key, values] : axes)
        headers.push_back(key);
    if (!levels_axis.empty())
        headers.push_back("levels");
    headers.push_back("cycles");
    headers.push_back("slowdown");
    TextTable table(headers);
    for (std::size_t b = 0; b < spec.suite.size(); ++b) {
        for (const Row &row : rows) {
            // Slowdown vs the uninstrumented baseline of the same
            // machine configuration (variant block).
            const std::size_t base_variant =
                row.variant / per_block * per_block;
            const double baseline = result.meanCycles(b, base_variant);
            const double cycles = result.meanCycles(b, row.variant);
            std::vector<std::string> cells = {
                spec.suite[b]->name,
                policyName(spec.variants[row.variant].policy),
                row.span ? std::to_string(row.span) : "-"};
            for (const std::string &value : row.axisVals)
                cells.push_back(value);
            if (!levels_axis.empty())
                cells.push_back(std::to_string(row.levels));
            cells.push_back(TextTable::num(cycles, 0));
            cells.push_back(TextTable::pct(cycles / baseline - 1.0));
            table.addRow(cells);
        }
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

} // namespace califorms::cli
