/**
 * @file cmd_sweep.cc
 * `califorms sweep`: the policy harness. Expands a policy x span grid
 * over one benchmark (or the software-eval suite) into a campaign,
 * executes it on the deterministic parallel engine (--jobs), averages
 * cycles over layout seeds, and prints slowdown relative to the
 * uninstrumented baseline — the Figure 11/12 methodology, but
 * composable over any policy x span grid instead of fixed per-figure
 * configurations. The memory hierarchy is configurable (--levels,
 * --l2-kb, --llc-kb, latencies, conversion charges, --wb-queue); a
 * comma list for --levels turns the hierarchy depth into a third grid
 * axis, with the slowdown column computed against the uninstrumented
 * baseline of the same depth. --json/--csv record the machine-readable
 * report (schema califorms-campaign/v2).
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/campaign.hh"
#include "exp/report.hh"
#include "util/table.hh"
#include "workload/runner.hh"

namespace califorms::cli
{
namespace
{

void
usage()
{
    std::printf(
        "usage: califorms sweep [options]\n"
        "\n"
        "options:\n"
        "  --bench B       benchmark name or 'all' for the software-eval "
        "suite (default mcf)\n"
        "  --policies L    comma list of policies (default "
        "none,opportunistic,full,intelligent)\n"
        "  --maxspans L    comma list of max span sizes (default 3,5,7)\n"
        "  --scale S       workload iteration multiplier (default 0.25)\n"
        "  --seeds N       layout seeds per configuration (default 2)\n"
        "  --jobs N        parallel campaign workers; 0 = all cores "
        "(default 1)\n"
        "  --json FILE     write the campaign report as JSON\n"
        "  --csv FILE      write one CSV row per run\n"
        "  --extra-latency add one cycle to L2 and L3\n"
        "  --levels L      hierarchy depth 1..3, or a comma list to "
        "sweep the depth as a grid axis\n%s\n",
        hierarchyUsage());
}

} // namespace

int
cmdSweep(int argc, char **argv)
{
    std::string bench_name = "mcf";
    std::vector<InsertionPolicy> policies = {
        InsertionPolicy::None, InsertionPolicy::Opportunistic,
        InsertionPolicy::Full, InsertionPolicy::Intelligent};
    std::vector<std::size_t> maxspans = {3, 5, 7};
    std::vector<unsigned> levels_axis;
    RunConfig base;
    base.scale = 0.25;
    unsigned seeds = 2;
    unsigned jobs = 1;
    std::string json_path, csv_path;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--levels") {
            // Sweep-specific superset of the shared flag: accepts a
            // comma list and turns it into a grid axis.
            levels_axis.clear();
            for (const std::size_t v :
                 parseSizeList(flagValue(argc, argv, i))) {
                if (v < 1 || v > 3) {
                    std::fprintf(stderr, "califorms sweep: --levels "
                                         "entries must be 1..3\n");
                    return 2;
                }
                levels_axis.push_back(static_cast<unsigned>(v));
            }
            if (levels_axis.empty()) {
                std::fprintf(stderr,
                             "califorms sweep: bad --levels list\n");
                return 2;
            }
            continue;
        }
        switch (parseHierarchyFlag(base.machine.mem, arg, argc, argv,
                                   i)) {
        case HierFlag::Consumed:
            continue;
        case HierFlag::Error:
            return 2;
        case HierFlag::NotMine:
            break;
        }
        if (arg == "--bench") {
            bench_name = flagValue(argc, argv, i);
        } else if (arg == "--policies") {
            policies.clear();
            for (const std::string &name :
                 splitCsv(flagValue(argc, argv, i))) {
                const auto p = parsePolicy(name);
                if (!p) {
                    std::fprintf(stderr, "califorms sweep: unknown "
                                         "policy '%s'\n",
                                 name.c_str());
                    return 2;
                }
                policies.push_back(*p);
            }
        } else if (arg == "--maxspans") {
            maxspans = parseSizeList(flagValue(argc, argv, i));
            if (maxspans.empty()) {
                std::fprintf(stderr, "califorms sweep: bad --maxspans "
                                     "list\n");
                return 2;
            }
        } else if (arg == "--scale") {
            base.scale = std::atof(flagValue(argc, argv, i));
        } else if (arg == "--seeds") {
            seeds = static_cast<unsigned>(
                std::atoi(flagValue(argc, argv, i)));
            if (seeds == 0)
                seeds = 1;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::atoi(flagValue(argc, argv, i)));
        } else if (arg == "--json") {
            json_path = flagValue(argc, argv, i);
        } else if (arg == "--csv") {
            csv_path = flagValue(argc, argv, i);
        } else if (arg == "--extra-latency") {
            base.machine.mem.extraL2L3Latency = 1;
        } else if (arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "califorms sweep: unknown argument "
                                 "'%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    // A single-depth request just reconfigures the base machine; the
    // grid (and the table shape) only grows for a real axis.
    if (levels_axis.size() == 1) {
        base.machine.mem.levels = levels_axis[0];
        levels_axis.clear();
    }

    exp::CampaignSpec spec;
    spec.name = "sweep";
    spec.base = base;
    spec.layoutSeeds = exp::CampaignSpec::seedRange(seeds);
    if (bench_name == "all") {
        for (const auto &b : spec2006Suite())
            if (b.inSoftwareEval)
                spec.suite.push_back(&b);
    } else {
        spec.suite.push_back(&findBenchmark(bench_name));
    }

    // Variant 0 is always the baseline the slowdown column divides by,
    // even when the user's --policies list omits 'none'; the row order
    // below follows the user's list.
    spec.variants = {{"none", InsertionPolicy::None, 0, 0,
                      std::nullopt, false, {}}};
    struct Row
    {
        std::size_t variant;
        std::size_t span;    //!< 0 = span axis not applicable
        unsigned levels;     //!< 0 = depth axis not active
    };
    std::vector<Row> rows;
    for (const InsertionPolicy policy : policies) {
        if (policy == InsertionPolicy::None) {
            rows.push_back({0, 0, 0});
            continue;
        }
        const auto expanded = exp::CampaignSpec::crossPolicySpans(
            {policy}, maxspans);
        for (const exp::Variant &v : expanded) {
            rows.push_back({spec.variants.size(), v.maxSpan, 0});
            spec.variants.push_back(v);
        }
    }

    // Cross the variant list with the hierarchy-depth axis: one block
    // of variants per depth, each block carrying its own baseline.
    const std::size_t per_block = spec.variants.size();
    if (!levels_axis.empty()) {
        std::vector<Row> expanded;
        for (std::size_t l = 0; l < levels_axis.size(); ++l)
            for (const Row &row : rows)
                expanded.push_back({l * per_block + row.variant,
                                    row.span, levels_axis[l]});
        spec.variants = exp::CampaignSpec::crossLevels(spec.variants,
                                                       levels_axis);
        rows = std::move(expanded);
    }

    const exp::CampaignResult result = exp::runCampaignWithReports(
        spec, jobs, json_path, csv_path);

    std::vector<std::string> headers = {"benchmark", "policy",
                                        "maxspan"};
    if (!levels_axis.empty())
        headers.push_back("levels");
    headers.push_back("cycles");
    headers.push_back("slowdown");
    TextTable table(headers);
    for (std::size_t b = 0; b < spec.suite.size(); ++b) {
        for (const Row &row : rows) {
            // Slowdown vs the uninstrumented baseline of the same
            // hierarchy depth (variant block).
            const std::size_t base_variant =
                row.variant / per_block * per_block;
            const double baseline = result.meanCycles(b, base_variant);
            const double cycles = result.meanCycles(b, row.variant);
            std::vector<std::string> cells = {
                spec.suite[b]->name,
                policyName(spec.variants[row.variant].policy),
                row.span ? std::to_string(row.span) : "-"};
            if (!levels_axis.empty())
                cells.push_back(std::to_string(row.levels));
            cells.push_back(TextTable::num(cycles, 0));
            cells.push_back(TextTable::pct(cycles / baseline - 1.0));
            table.addRow(cells);
        }
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

} // namespace califorms::cli
