/**
 * @file cmd_fleet.cc
 * `califorms fleet`: the multi-tenant serving engine. Replays M
 * independent tenant streams — synthetic generators or trace files,
 * each with its own validated config overlay — on per-tenant machines
 * sharded across the work-stealing pool, and merges them into one
 * deterministic v2 report with a first-class throughput object.
 *
 * stdout (the tenant summary) and the --json report without timing
 * are byte-identical at any --jobs value; the wall-clock throughput
 * line goes to stderr, like every other timing surface.
 */

#include "cli.hh"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "fleet/engine.hh"
#include "fleet/report.hh"
#include "workload/synth.hh"

namespace califorms::cli
{
namespace
{

constexpr const char *prog = "califorms fleet";

void
usage()
{
    std::string workloads;
    for (const std::string &name : synthWorkloadNames())
        workloads += (workloads.empty() ? "" : "|") + name;
    std::printf(
        "usage: califorms fleet [--manifest FILE] [--tenant SPEC]... "
        "[options]\n"
        "\n"
        "tenant sources (at least one tenant required):\n"
        "  --manifest FILE  one tenant per line:\n"
        "                     <id> workload=<name>|trace=<path> "
        "[key=value ...]\n"
        "                   ('#' comments; overlay keys: mem.* and, "
        "for generator\n"
        "                   tenants, workload.*)\n"
        "  --tenant SPEC    one inline tenant, same syntax "
        "(repeatable)\n"
        "\n"
        "options:\n"
        "  --duration-ops N per-tenant replay budget in ops "
        "(generators default to\n"
        "                   workload.ops; traces drain their file)\n"
        "  --jobs N         pool workers, 0 = all hardware threads "
        "(default 0);\n"
        "                   stdout and the timing-free report are "
        "jobs-invariant\n"
        "  --json FILE      write the merged fleet report\n"
        "  --no-timing      omit wall-clock fields (the \"timing\" "
        "object and\n"
        "                   throughput.opsPerSec)\n"
        "%s\n"
        "base config keys: mem.*, workload.*, fleet.* (fleet.shards, "
        "fleet.batch_ops,\nfleet.tenant_seed_stride); workloads: %s\n",
        config::cliUsage().c_str(), workloads.c_str());
}

} // namespace

int
cmdFleet(int argc, char **argv)
{
    config::Config cfg;
    std::vector<fleet::TenantSpec> tenants;
    std::uint64_t duration_ops = 0;
    unsigned jobs = 0;
    std::string json_path;
    bool include_timing = true;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        switch (config::parseCliArg(cfg, arg, argc, argv, i, prog)) {
        case config::CliArg::Consumed:
            continue;
        case config::CliArg::Error:
            return 2;
        case config::CliArg::NotMine:
            break;
        }
        if (arg == "--manifest") {
            if (auto error = fleet::loadManifest(
                    flagValue(argc, argv, i), tenants)) {
                std::fprintf(stderr, "%s: %s\n", prog, error->c_str());
                return 2;
            }
        } else if (arg == "--tenant") {
            fleet::TenantSpec tenant;
            if (auto error = fleet::parseTenantSpec(
                    flagValue(argc, argv, i), tenant)) {
                std::fprintf(stderr, "%s: --tenant: %s\n", prog,
                             error->c_str());
                return 2;
            }
            tenants.push_back(std::move(tenant));
        } else if (arg == "--duration-ops") {
            const std::string text = flagValue(argc, argv, i);
            const auto v = parseU64(text);
            if (!v || !*v) {
                std::fprintf(stderr,
                             "%s: --duration-ops expects a positive "
                             "integer, got '%s'\n",
                             prog, text.c_str());
                return 2;
            }
            duration_ops = *v;
        } else if (arg == "--jobs") {
            const std::string text = flagValue(argc, argv, i);
            const auto v = parseU64(text);
            if (!v || *v > 4096) {
                std::fprintf(stderr,
                             "%s: --jobs expects an integer in "
                             "[0, 4096], got '%s'\n",
                             prog, text.c_str());
                return 2;
            }
            jobs = static_cast<unsigned>(*v);
        } else if (arg == "--json") {
            json_path = flagValue(argc, argv, i);
        } else if (arg == "--no-timing") {
            include_timing = false;
        } else if (arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", prog,
                         arg.c_str());
            return 2;
        }
    }

    // The fleet base consumes exactly three key families; anything
    // else (core.*, layout.*, run.*, ...) cannot take effect on a
    // tenant replay and is rejected rather than ignored.
    for (const auto &[key, value] : cfg.entries()) {
        if (key.rfind("mem.", 0) && key.rfind("workload.", 0) &&
            key.rfind("fleet.", 0)) {
            std::fprintf(stderr,
                         "%s: %s has no effect on a fleet replay "
                         "(base keys: mem.*, workload.*, fleet.*)\n",
                         prog, key.c_str());
            return 2;
        }
    }

    if (auto error = fleet::validateTenants(tenants)) {
        std::fprintf(stderr, "%s: %s\n", prog, error->c_str());
        return 2;
    }

    fleet::FleetSpec spec;
    spec.tenants = std::move(tenants);
    spec.base = cfg.makeRunConfig();
    spec.durationOps = duration_ops;

    const fleet::FleetResult result = fleet::runFleet(spec, jobs);
    fleet::printFleetSummary(std::cout, result);
    std::fprintf(stderr,
                 "fleet throughput: %.0f ops/s (jobs=%u, "
                 "elapsed=%.1f ms)\n",
                 result.opsPerSec(), result.jobs, result.elapsedMs);

    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write '%s'\n", prog,
                         json_path.c_str());
            return 1;
        }
        out << fleet::fleetJson(spec, result, include_timing);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
}

} // namespace califorms::cli
