"""Unit tests for bench_gate.py (run as `python3 -m unittest` from
tools/, wired into ctest as tools.bench_gate.unittest).

Covers the three contract areas of the gate: exact counter comparison
(any drift fails, grid changes fail in both directions), the relative
wall-clock threshold (edge-exact passes, above fails, missing timing
reports), and the usage/IO paths (missing or corrupt baseline exits 2
via SystemExit, --update rewrites the baseline byte for byte).
"""

import contextlib
import io
import json
import os
import tempfile
import unittest
from unittest import mock

import bench_gate


def make_report(runs, timing_ms=None, throughput=None):
    report = {"schema": "califorms-campaign/v2", "runs": runs}
    if timing_ms is not None:
        report["timing"] = {"jobs": 1, "elapsedMs": timing_ms}
    if throughput is not None:
        report["throughput"] = throughput
    return report


def make_throughput(ops=20000, batch=256, shards=4, tenants=4,
                    rate=None):
    tp = {"opsReplayed": ops, "batchOps": batch, "shards": shards,
          "tenants": tenants}
    if rate is not None:
        tp["opsPerSec"] = rate
    return tp


def make_run(benchmark="mcf", variant="base", seed=1000, cycles=100,
             instructions=50, mem=None):
    return {
        "benchmark": benchmark,
        "variant": variant,
        "layoutSeed": seed,
        "cycles": cycles,
        "instructions": instructions,
        "mem": {"l1d.misses": 7} if mem is None else mem,
    }


class CompareCountersTest(unittest.TestCase):
    def test_identical_reports_pass(self):
        report = make_report([make_run(), make_run(variant="full")])
        self.assertEqual(
            bench_gate.compare_counters(report, report), [])

    def test_cycle_drift_fails(self):
        base = make_report([make_run(cycles=100)])
        cur = make_report([make_run(cycles=101)])
        failures = bench_gate.compare_counters(cur, base)
        self.assertEqual(len(failures), 1)
        self.assertIn("cycles", failures[0])
        self.assertIn("100", failures[0])
        self.assertIn("101", failures[0])

    def test_mem_stat_drift_fails(self):
        base = make_report([make_run(mem={"l1d.misses": 7})])
        cur = make_report([make_run(mem={"l1d.misses": 8})])
        failures = bench_gate.compare_counters(cur, base)
        self.assertEqual(len(failures), 1)
        self.assertIn("mem.l1d.misses", failures[0])

    def test_only_shared_mem_stats_compared(self):
        # A v2 current report gates cleanly against a v1 baseline: the
        # compared surface is the intersection of the recorded stats.
        base = make_report([make_run(mem={"l1d.misses": 7})])
        cur = make_report(
            [make_run(mem={"l1d.misses": 7, "wbq.hits": 3})])
        self.assertEqual(bench_gate.compare_counters(cur, base), [])

    def test_missing_run_fails(self):
        base = make_report([make_run(), make_run(variant="full")])
        cur = make_report([make_run()])
        failures = bench_gate.compare_counters(cur, base)
        self.assertEqual(len(failures), 1)
        self.assertIn("missing from current", failures[0])

    def test_extra_run_fails(self):
        # A grown grid is a baseline change, not a silent pass.
        base = make_report([make_run()])
        cur = make_report([make_run(), make_run(variant="full")])
        failures = bench_gate.compare_counters(cur, base)
        self.assertEqual(len(failures), 1)
        self.assertIn("not in baseline", failures[0])


class CompareTimeTest(unittest.TestCase):
    def compare(self, cur_ms, base_ms, threshold):
        with contextlib.redirect_stdout(io.StringIO()):
            return bench_gate.compare_time(
                make_report([], timing_ms=cur_ms),
                make_report([], timing_ms=base_ms), threshold)

    def test_faster_passes(self):
        self.assertEqual(self.compare(90.0, 100.0, 0.15), [])

    def test_exactly_at_threshold_passes(self):
        # The contract is "may exceed by at most threshold": 1.5x at
        # +50% is the inclusive edge (values chosen exact in binary).
        self.assertEqual(self.compare(150.0, 100.0, 0.5), [])

    def test_above_threshold_fails(self):
        failures = self.compare(151.0, 100.0, 0.5)
        self.assertEqual(len(failures), 1)
        self.assertIn("wall clock regressed", failures[0])

    def test_missing_timing_reports(self):
        failures = bench_gate.compare_time(
            make_report([]), make_report([], timing_ms=1.0), 0.15)
        self.assertEqual(len(failures), 1)
        self.assertIn("timing object missing", failures[0])

    def test_zero_baseline_skipped(self):
        self.assertEqual(self.compare(100.0, 0.0, 0.15), [])


class CompareThroughputCountersTest(unittest.TestCase):
    def test_no_baseline_throughput_exempt(self):
        # Every non-fleet harness: neither report has the object.
        base = make_report([make_run()])
        cur = make_report([make_run()],
                          throughput=make_throughput())
        self.assertEqual(
            bench_gate.compare_throughput_counters(cur, base), [])

    def test_identical_counters_pass(self):
        report = make_report([], throughput=make_throughput())
        self.assertEqual(
            bench_gate.compare_throughput_counters(report, report), [])

    def test_ops_replayed_drift_fails(self):
        base = make_report([], throughput=make_throughput(ops=20000))
        cur = make_report([], throughput=make_throughput(ops=19999))
        failures = bench_gate.compare_throughput_counters(cur, base)
        self.assertEqual(len(failures), 1)
        self.assertIn("throughput.opsReplayed", failures[0])
        self.assertIn("20000", failures[0])
        self.assertIn("19999", failures[0])

    def test_shard_drift_fails(self):
        base = make_report([], throughput=make_throughput(shards=4))
        cur = make_report([], throughput=make_throughput(shards=2))
        failures = bench_gate.compare_throughput_counters(cur, base)
        self.assertEqual(len(failures), 1)
        self.assertIn("throughput.shards", failures[0])

    def test_missing_object_fails(self):
        base = make_report([], throughput=make_throughput())
        cur = make_report([])
        failures = bench_gate.compare_throughput_counters(cur, base)
        self.assertEqual(len(failures), 1)
        self.assertIn("throughput object missing", failures[0])

    def test_rate_not_compared_exactly(self):
        # opsPerSec is wall-clock-derived; only the floor gate below
        # looks at it, never the exact comparison.
        base = make_report([],
                           throughput=make_throughput(rate=100.0))
        cur = make_report([],
                          throughput=make_throughput(rate=57.0))
        self.assertEqual(
            bench_gate.compare_throughput_counters(cur, base), [])


class CompareThroughputRateTest(unittest.TestCase):
    def compare(self, cur_rate, base_rate, tolerance):
        with contextlib.redirect_stdout(io.StringIO()):
            return bench_gate.compare_throughput_rate(
                make_report([], throughput=make_throughput(
                    rate=cur_rate)),
                make_report([], throughput=make_throughput(
                    rate=base_rate)), tolerance)

    def test_faster_passes(self):
        # Drift upward (a speedup) is never a regression.
        self.assertEqual(self.compare(250.0, 100.0, 0.30), [])

    def test_exactly_at_floor_passes(self):
        # "May fall short by at most tolerance": 75 at -25% of 100 is
        # the inclusive edge (values chosen exact in binary).
        self.assertEqual(self.compare(75.0, 100.0, 0.25), [])

    def test_below_floor_fails(self):
        failures = self.compare(74.0, 100.0, 0.25)
        self.assertEqual(len(failures), 1)
        self.assertIn("throughput regressed", failures[0])
        self.assertIn("-26.0%", failures[0])

    def test_missing_current_rate_fails(self):
        failures = bench_gate.compare_throughput_rate(
            make_report([], throughput=make_throughput()),
            make_report([], throughput=make_throughput(rate=100.0)),
            0.30)
        self.assertEqual(len(failures), 1)
        self.assertIn("opsPerSec missing", failures[0])

    def test_no_baseline_rate_skipped(self):
        self.assertEqual(bench_gate.compare_throughput_rate(
            make_report([]), make_report([]), 0.30), [])


class MainTest(unittest.TestCase):
    """End-to-end through main(), with real files."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, report):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            json.dump(report, f)
        return path

    def run_main(self, *argv):
        with mock.patch("sys.argv", ["bench_gate.py", *argv]), \
             contextlib.redirect_stdout(io.StringIO()) as out:
            code = bench_gate.main()
        return code, out.getvalue()

    def test_pass(self):
        report = make_report([make_run()], timing_ms=10.0)
        cur = self.write("cur.json", report)
        base = self.write("base.json", report)
        code, out = self.run_main(cur, base)
        self.assertEqual(code, 0)
        self.assertIn("PASS", out)

    def test_counter_regression_exits_1(self):
        cur = self.write(
            "cur.json", make_report([make_run(cycles=2)]))
        base = self.write(
            "base.json", make_report([make_run(cycles=1)]))
        code, out = self.run_main(cur, base, "--no-time")
        self.assertEqual(code, 1)
        self.assertIn("FAIL", out)

    def test_time_only_skips_counters(self):
        cur = self.write(
            "cur.json", make_report([make_run(cycles=2)],
                                    timing_ms=10.0))
        base = self.write(
            "base.json", make_report([make_run(cycles=1)],
                                     timing_ms=10.0))
        code, out = self.run_main(cur, base, "--time-only")
        self.assertEqual(code, 0)
        self.assertIn("wall clock within threshold", out)

    def test_missing_baseline_exits_via_system_exit(self):
        cur = self.write("cur.json", make_report([make_run()]))
        missing = os.path.join(self.dir.name, "nope.json")
        with self.assertRaises(SystemExit) as ctx:
            self.run_main(cur, missing, "--no-time")
        self.assertIn("cannot read", str(ctx.exception))

    def test_bad_schema_exits_via_system_exit(self):
        cur = self.write("cur.json", {"schema": "other/v1", "runs": []})
        base = self.write("base.json", make_report([]))
        with self.assertRaises(SystemExit) as ctx:
            self.run_main(cur, base, "--no-time")
        self.assertIn("unexpected schema", str(ctx.exception))

    def test_corrupt_json_exits_via_system_exit(self):
        path = os.path.join(self.dir.name, "corrupt.json")
        with open(path, "w") as f:
            f.write("{not json")
        base = self.write("base.json", make_report([]))
        with self.assertRaises(SystemExit):
            self.run_main(path, base, "--no-time")

    def test_throughput_floor_through_main(self):
        cur = self.write("cur.json", make_report(
            [make_run()], timing_ms=10.0,
            throughput=make_throughput(rate=50.0)))
        base = self.write("base.json", make_report(
            [make_run()], timing_ms=10.0,
            throughput=make_throughput(rate=100.0)))
        code, out = self.run_main(cur, base)
        self.assertEqual(code, 1)
        self.assertIn("throughput regressed", out)
        # A looser explicit floor lets the same pair pass.
        code, _ = self.run_main(cur, base, "--ops-threshold", "0.5")
        self.assertEqual(code, 0)

    def test_no_time_skips_throughput_rate(self):
        # ctest's BenchGate.cmake path: counters exact, rate ignored.
        cur = self.write("cur.json", make_report(
            [make_run()], throughput=make_throughput(rate=1.0)))
        base = self.write("base.json", make_report(
            [make_run()], timing_ms=10.0,
            throughput=make_throughput(rate=100.0)))
        code, out = self.run_main(cur, base, "--no-time")
        self.assertEqual(code, 0)
        self.assertIn("PASS", out)

    def test_update_rewrites_baseline(self):
        report = make_report([make_run(cycles=42)])
        cur = self.write("cur.json", report)
        base = self.write("base.json", make_report([make_run()]))
        code, out = self.run_main(cur, base, "--update")
        self.assertEqual(code, 0)
        self.assertIn("updated", out)
        with open(cur, "rb") as f_cur, open(base, "rb") as f_base:
            self.assertEqual(f_cur.read(), f_base.read())


if __name__ == "__main__":
    unittest.main()
