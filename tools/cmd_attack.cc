/**
 * @file cmd_attack.cc
 * `califorms attack`: replay one registered attack scenario against a
 * califormed victim heap. The legacy trio (scan, probe, brop and the
 * `all` shorthand) keeps its historical single-trial output; every
 * other registered scenario reports the uniform multi-trial rollup
 * (success probability, detections, probes, crash and cycle costs).
 * All knobs are `attack.*` registry keys; the historical flags are
 * aliases for them.
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "alloc/heap.hh"
#include "security/scenarios.hh"
#include "security/victims.hh"
#include "sim/machine.hh"

namespace califorms::cli
{
namespace
{

constexpr const char *prog = "califorms attack";

void
usage()
{
    std::string scenarios;
    for (const auto &n : attackScenarioNames())
        scenarios += (scenarios.empty() ? "" : "|") + n;
    std::printf(
        "usage: califorms attack <%s|all> [options]\n"
        "\n"
        "options:\n"
        "  --maxspan N     maximum random span size (default 7); also "
        "sets the fixed span\n"
        "  --seed N        attacker + layout seed (default 31337)\n"
        "  --objects N     victim heap population (alias for "
        "attack.objects)\n"
        "  --crashes N     respawn budget (alias for "
        "attack.crash_budget)\n"
        "%s\n"
        "(the victim policy defaults to 'full' here, not the registry "
        "default)\n",
        scenarios.c_str(), config::cliUsage().c_str());
}

struct AttackSetup
{
    InsertionPolicy policy = InsertionPolicy::Full;
    PolicyParams params{1, 7, 1};
    std::uint64_t seed = 31337;
    MachineParams machine{};
    HeapParams heap{};
    AttackParams attack{};
};

/** One legacy-format trial: fresh machine + heap, shared
 *  attacker/layout seed — exactly the historical setup. */
ScenarioTrial
legacyTrial(const AttackSetup &s, const AttackScenario &scenario,
            const StructDef &victim, Machine &machine,
            HeapAllocator &heap)
{
    ScenarioContext c{machine,
                      heap,
                      s.heap,
                      victim,
                      attackTargetField(victim),
                      s.policy,
                      s.params,
                      s.seed,
                      s.seed,
                      s.attack};
    return scenario.run(c);
}

int
runScan(const AttackSetup &s)
{
    Machine machine(s.machine);
    HeapAllocator heap(machine, s.heap);
    const StructDefPtr def = attackVictim(s.attack.victim);
    LayoutTransformer t(s.policy, s.params, s.seed);
    const SecureLayout layout = t.transform(*def);

    const auto r =
        legacyTrial(s, findAttackScenario("scan"), *def, machine, heap);
    std::printf("scan: detected=%s bytes_scanned=%zu of %zu "
                "(density=%.2f)\n",
                r.detected ? "yes" : "no",
                static_cast<std::size_t>(r.bytesTouched),
                static_cast<std::size_t>(s.attack.objects) * layout.size,
                static_cast<double>(layout.securityByteCount()) /
                    static_cast<double>(layout.size));
    return 0;
}

int
runProbe(const AttackSetup &s)
{
    Machine machine(s.machine);
    HeapAllocator heap(machine, s.heap);
    const StructDefPtr def = attackVictim(s.attack.victim);

    const auto r = legacyTrial(s, findAttackScenario("probe"), *def,
                               machine, heap);
    std::printf("probe: detected=%s probes=%zu\n",
                r.detected ? "yes" : "no",
                static_cast<std::size_t>(r.probes));
    return 0;
}

int
runBrop(const AttackSetup &s)
{
    const StructDefPtr def = attackVictim(s.attack.victim);

    for (const bool rerandomize : {false, true}) {
        Machine machine(s.machine);
        HeapAllocator heap(machine, s.heap);
        AttackSetup life = s;
        life.attack.bropRerandomize = rerandomize;
        const auto r = legacyTrial(life, findAttackScenario("brop"),
                                   *def, machine, heap);
        std::printf("brop rerandomize=%s: succeeded=%s crashes=%zu "
                    "probes=%zu\n",
                    rerandomize ? "yes" : "no",
                    r.success ? "yes" : "no",
                    static_cast<std::size_t>(r.crashes),
                    static_cast<std::size_t>(r.probes));
    }
    std::puts("(static layouts fall in sizeof(object) crashes; "
              "re-randomized respawns do not)");
    return 0;
}

/** The uniform multi-trial rollup every non-legacy scenario prints. */
int
runScenario(const AttackSetup &s, const std::string &name)
{
    Machine machine(s.machine);
    AttackParams params = s.attack;
    params.scenario = name;
    const SecurityRunStats r = runAttackTrials(
        machine, s.heap, s.policy, s.params, s.seed, params,
        static_cast<std::size_t>(params.seeds));
    std::printf("%s: success_p=%.2f (%zu/%zu) detections=%zu "
                "crashes=%zu probes=%zu bytes=%zu detect_cycles=%zu\n",
                name.c_str(),
                static_cast<double>(r.successes) /
                    static_cast<double>(r.trials),
                static_cast<std::size_t>(r.successes),
                static_cast<std::size_t>(r.trials),
                static_cast<std::size_t>(r.detections),
                static_cast<std::size_t>(r.crashes),
                static_cast<std::size_t>(r.probes),
                static_cast<std::size_t>(r.bytesTouched),
                static_cast<std::size_t>(r.detectionLatencyCycles));
    return 0;
}

} // namespace

int
cmdAttack(int argc, char **argv)
{
    std::string scenario;
    AttackSetup s;
    config::Config cfg;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        switch (config::parseCliArg(cfg, arg, argc, argv, i, prog)) {
        case config::CliArg::Consumed:
            continue;
        case config::CliArg::Error:
            return 2;
        case config::CliArg::NotMine:
            break;
        }
        if (arg == "--maxspan") {
            const std::string text = flagValue(argc, argv, i);
            if (!setOrReport(cfg, prog, arg, "layout.max_span", text) ||
                !setOrReport(cfg, prog, arg, "layout.fixed_span", text))
                return 2;
        } else if (arg == "--seed") {
            if (!setOrReport(cfg, prog, arg, "layout.seed",
                             flagValue(argc, argv, i)))
                return 2;
        } else if (arg == "--objects") {
            if (!setOrReport(cfg, prog, arg, "attack.objects",
                             flagValue(argc, argv, i)))
                return 2;
        } else if (arg == "--crashes") {
            if (!setOrReport(cfg, prog, arg, "attack.crash_budget",
                             flagValue(argc, argv, i)))
                return 2;
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (scenario.empty() && arg[0] != '-') {
            scenario = arg;
        } else {
            std::fprintf(stderr, "califorms attack: unknown argument "
                                 "'%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    // The scenarios consume the machine model, the victim layout, the
    // heap discipline, and the attack.* knobs; stack.*, run.*, and the
    // other subsystem keys have no effect on an attack replay, so
    // reject them rather than silently ignoring them.
    bool scenario_key_set = false;
    for (const auto &[key, value] : cfg.entries()) {
        if (key == "attack.scenario")
            scenario_key_set = true;
        if (key.rfind("mem.", 0) != 0 && key.rfind("core.", 0) != 0 &&
            key.rfind("layout.", 0) != 0 &&
            key.rfind("heap.", 0) != 0 && key.rfind("attack.", 0) != 0) {
            std::fprintf(stderr,
                         "%s: %s has no effect on the attack "
                         "scenarios (only mem.*, core.*, layout.*, "
                         "heap.*, and attack.* knobs apply)\n",
                         prog, key.c_str());
            return 2;
        }
    }
    if (!scenario.empty() && scenario_key_set) {
        std::fprintf(stderr,
                     "%s: give the scenario positionally ('%s') or via "
                     "attack.scenario, not both\n",
                     prog, scenario.c_str());
        return 2;
    }

    // The attack scenarios deviate from the registry defaults: the
    // victim is califormed (policy full, spans 1..7) and the shared
    // attacker/layout seed is 31337. Seed those into a RunConfig and
    // let the explicit config sets override them.
    RunConfig rc;
    rc.policy = s.policy;
    rc.policyParams = s.params;
    rc.layoutSeed = s.seed;
    cfg.applyTo(rc);
    s.policy = rc.policy;
    s.params = rc.policyParams;
    s.seed = rc.layoutSeed;
    s.machine = rc.machine;
    s.heap = rc.heap;
    s.attack = rc.attack;
    if (scenario.empty() && scenario_key_set)
        scenario = rc.attack.scenario;

    // The attacker is a single agent probing from one core; a
    // multi-core machine would be a silent no-op here.
    if (s.machine.core.count > 1) {
        std::fprintf(stderr,
                     "%s: core.count=%u has no effect on an attack "
                     "replay (the attacker probes from one core)\n",
                     prog, s.machine.core.count);
        return 2;
    }

    if (scenario == "scan")
        return runScan(s);
    if (scenario == "probe")
        return runProbe(s);
    if (scenario == "brop")
        return runBrop(s);
    if (scenario == "all") {
        if (const int rc2 = runScan(s))
            return rc2;
        if (const int rc2 = runProbe(s))
            return rc2;
        return runBrop(s);
    }
    if (scenario.empty()) {
        usage();
        return 2;
    }
    try {
        findAttackScenario(scenario);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "%s: %s\n", prog, e.what());
        return 2;
    }
    return runScenario(s, scenario);
}

} // namespace califorms::cli
