/**
 * @file cmd_attack.cc
 * `califorms attack`: replay the Section 7.3 attack scenarios against a
 * califormed victim heap — linear scan, blind random probing, and the
 * BROP-style respawning attack with and without respawn
 * re-randomization (the paper's proposed mitigation).
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "alloc/heap.hh"
#include "security/attacks.hh"
#include "sim/machine.hh"

namespace califorms::cli
{
namespace
{

void
usage()
{
    std::puts(
        "usage: califorms attack <scan|probe|brop|all> [options]\n"
        "\n"
        "options:\n"
        "  --policy P    insertion policy for the victim (default full)\n"
        "  --maxspan N   maximum random span size (default 7)\n"
        "  --seed N      attacker + layout seed (default 31337)\n"
        "  --objects N   victim heap population (default 64)\n"
        "  --crashes N   BROP respawn budget (default 4096)");
}

/** The victim: a session record whose token buffer sits next to the
 *  privilege flag the attacker wants to flip. */
std::shared_ptr<StructDef>
victimStruct()
{
    return std::make_shared<StructDef>(
        "session", std::vector<Field>{
                       {"id", Type::longType()},
                       {"token", Type::array(Type::charType(), 24)},
                       {"handler", Type::functionPointer()},
                       {"privileged", Type::charType()},
                   });
}

struct AttackSetup
{
    InsertionPolicy policy = InsertionPolicy::Full;
    PolicyParams params{1, 7, 1};
    std::uint64_t seed = 31337;
    std::size_t objects = 64;
    std::size_t crashes = 4096;
};

int
runScan(const AttackSetup &s)
{
    Machine machine;
    HeapAllocator heap(machine);
    LayoutTransformer t(s.policy, s.params, s.seed);
    auto layout =
        std::make_shared<SecureLayout>(t.transform(*victimStruct()));
    const Addr base = heap.allocate(layout, s.objects);

    AttackSimulator attacker(machine, s.seed);
    const auto r =
        attacker.linearScan(base, s.objects * layout->size);
    std::printf("scan: detected=%s bytes_scanned=%zu of %zu "
                "(density=%.2f)\n",
                r.detected ? "yes" : "no", r.bytesScanned,
                s.objects * layout->size,
                static_cast<double>(layout->securityByteCount()) /
                    static_cast<double>(layout->size));
    return 0;
}

int
runProbe(const AttackSetup &s)
{
    Machine machine;
    HeapAllocator heap(machine);
    LayoutTransformer t(s.policy, s.params, s.seed);
    auto layout =
        std::make_shared<SecureLayout>(t.transform(*victimStruct()));
    std::vector<Addr> objs;
    for (std::size_t i = 0; i < s.objects; ++i)
        objs.push_back(heap.allocate(layout));

    AttackSimulator attacker(machine, s.seed);
    const auto r = attacker.randomProbes(objs, layout->size,
                                         /*budget=*/100000);
    std::printf("probe: detected=%s probes=%zu\n",
                r.detected ? "yes" : "no", r.probes);
    return 0;
}

int
runBrop(const AttackSetup &s)
{
    auto def = victimStruct();
    const std::size_t target = def->fields().size() - 1; // privileged

    for (const bool rerandomize : {false, true}) {
        Machine machine;
        AttackSimulator attacker(machine, s.seed);
        const auto r =
            attacker.bropAttack(*def, s.policy, s.params, target,
                                s.crashes, rerandomize);
        std::printf("brop rerandomize=%s: succeeded=%s crashes=%zu "
                    "probes=%zu\n",
                    rerandomize ? "yes" : "no",
                    r.succeeded ? "yes" : "no", r.crashes, r.probes);
    }
    std::puts("(static layouts fall in sizeof(object) crashes; "
              "re-randomized respawns do not)");
    return 0;
}

} // namespace

int
cmdAttack(int argc, char **argv)
{
    std::string scenario;
    AttackSetup s;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--policy") {
            const std::string name = flagValue(argc, argv, i);
            const auto p = parsePolicy(name);
            if (!p) {
                std::fprintf(stderr, "califorms attack: unknown policy "
                                     "'%s'\n",
                             name.c_str());
                return 2;
            }
            s.policy = *p;
        } else if (arg == "--maxspan") {
            s.params.maxSpan = static_cast<std::size_t>(
                std::atoi(flagValue(argc, argv, i)));
            s.params.fixedSpan = s.params.maxSpan;
        } else if (arg == "--seed") {
            s.seed = static_cast<std::uint64_t>(
                std::atoll(flagValue(argc, argv, i)));
        } else if (arg == "--objects") {
            s.objects = static_cast<std::size_t>(
                std::atoi(flagValue(argc, argv, i)));
        } else if (arg == "--crashes") {
            s.crashes = static_cast<std::size_t>(
                std::atoi(flagValue(argc, argv, i)));
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (scenario.empty() && arg[0] != '-') {
            scenario = arg;
        } else {
            std::fprintf(stderr, "califorms attack: unknown argument "
                                 "'%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    if (scenario == "scan")
        return runScan(s);
    if (scenario == "probe")
        return runProbe(s);
    if (scenario == "brop")
        return runBrop(s);
    if (scenario == "all") {
        if (const int rc = runScan(s))
            return rc;
        if (const int rc = runProbe(s))
            return rc;
        return runBrop(s);
    }
    usage();
    return 2;
}

} // namespace califorms::cli
