/**
 * @file cmd_attack.cc
 * `califorms attack`: replay the Section 7.3 attack scenarios against a
 * califormed victim heap — linear scan, blind random probing, and the
 * BROP-style respawning attack with and without respawn
 * re-randomization (the paper's proposed mitigation).
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "alloc/heap.hh"
#include "security/attacks.hh"
#include "sim/machine.hh"

namespace califorms::cli
{
namespace
{

constexpr const char *prog = "califorms attack";

void
usage()
{
    std::printf(
        "usage: califorms attack <scan|probe|brop|all> [options]\n"
        "\n"
        "options:\n"
        "  --maxspan N     maximum random span size (default 7); also "
        "sets the fixed span\n"
        "  --seed N        attacker + layout seed (default 31337)\n"
        "  --objects N     victim heap population (default 64)\n"
        "  --crashes N     BROP respawn budget (default 4096)\n"
        "%s\n"
        "(the victim policy defaults to 'full' here, not the registry "
        "default)\n",
        config::cliUsage().c_str());
}

/** The victim: a session record whose token buffer sits next to the
 *  privilege flag the attacker wants to flip. */
std::shared_ptr<StructDef>
victimStruct()
{
    return std::make_shared<StructDef>(
        "session", std::vector<Field>{
                       {"id", Type::longType()},
                       {"token", Type::array(Type::charType(), 24)},
                       {"handler", Type::functionPointer()},
                       {"privileged", Type::charType()},
                   });
}

struct AttackSetup
{
    InsertionPolicy policy = InsertionPolicy::Full;
    PolicyParams params{1, 7, 1};
    std::uint64_t seed = 31337;
    std::size_t objects = 64;
    std::size_t crashes = 4096;
    MachineParams machine{};
};

int
runScan(const AttackSetup &s)
{
    Machine machine(s.machine);
    HeapAllocator heap(machine);
    LayoutTransformer t(s.policy, s.params, s.seed);
    auto layout =
        std::make_shared<SecureLayout>(t.transform(*victimStruct()));
    const Addr base = heap.allocate(layout, s.objects);

    AttackSimulator attacker(machine, s.seed);
    const auto r =
        attacker.linearScan(base, s.objects * layout->size);
    std::printf("scan: detected=%s bytes_scanned=%zu of %zu "
                "(density=%.2f)\n",
                r.detected ? "yes" : "no", r.bytesScanned,
                s.objects * layout->size,
                static_cast<double>(layout->securityByteCount()) /
                    static_cast<double>(layout->size));
    return 0;
}

int
runProbe(const AttackSetup &s)
{
    Machine machine(s.machine);
    HeapAllocator heap(machine);
    LayoutTransformer t(s.policy, s.params, s.seed);
    auto layout =
        std::make_shared<SecureLayout>(t.transform(*victimStruct()));
    std::vector<Addr> objs;
    for (std::size_t i = 0; i < s.objects; ++i)
        objs.push_back(heap.allocate(layout));

    AttackSimulator attacker(machine, s.seed);
    const auto r = attacker.randomProbes(objs, layout->size,
                                         /*budget=*/100000);
    std::printf("probe: detected=%s probes=%zu\n",
                r.detected ? "yes" : "no", r.probes);
    return 0;
}

int
runBrop(const AttackSetup &s)
{
    auto def = victimStruct();
    const std::size_t target = def->fields().size() - 1; // privileged

    for (const bool rerandomize : {false, true}) {
        Machine machine(s.machine);
        AttackSimulator attacker(machine, s.seed);
        const auto r =
            attacker.bropAttack(*def, s.policy, s.params, target,
                                s.crashes, rerandomize);
        std::printf("brop rerandomize=%s: succeeded=%s crashes=%zu "
                    "probes=%zu\n",
                    rerandomize ? "yes" : "no",
                    r.succeeded ? "yes" : "no", r.crashes, r.probes);
    }
    std::puts("(static layouts fall in sizeof(object) crashes; "
              "re-randomized respawns do not)");
    return 0;
}

} // namespace

int
cmdAttack(int argc, char **argv)
{
    std::string scenario;
    AttackSetup s;
    config::Config cfg;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        switch (config::parseCliArg(cfg, arg, argc, argv, i, prog)) {
        case config::CliArg::Consumed:
            continue;
        case config::CliArg::Error:
            return 2;
        case config::CliArg::NotMine:
            break;
        }
        if (arg == "--maxspan") {
            const std::string text = flagValue(argc, argv, i);
            if (!setOrReport(cfg, prog, arg, "layout.max_span", text) ||
                !setOrReport(cfg, prog, arg, "layout.fixed_span", text))
                return 2;
        } else if (arg == "--seed") {
            if (!setOrReport(cfg, prog, arg, "layout.seed",
                             flagValue(argc, argv, i)))
                return 2;
        } else if (arg == "--objects") {
            s.objects = static_cast<std::size_t>(
                std::atoi(flagValue(argc, argv, i)));
        } else if (arg == "--crashes") {
            s.crashes = static_cast<std::size_t>(
                std::atoi(flagValue(argc, argv, i)));
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (scenario.empty() && arg[0] != '-') {
            scenario = arg;
        } else {
            std::fprintf(stderr, "califorms attack: unknown argument "
                                 "'%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    // The scenarios consume the machine model and the victim layout;
    // heap.*, stack.*, and run.* knobs have no effect on an attack
    // replay, so reject them rather than silently ignoring them.
    for (const auto &[key, value] : cfg.entries()) {
        if (key.rfind("mem.", 0) != 0 && key.rfind("core.", 0) != 0 &&
            key.rfind("layout.", 0) != 0) {
            std::fprintf(stderr,
                         "%s: %s has no effect on the attack "
                         "scenarios (only mem.*, core.*, and layout.* "
                         "knobs apply)\n",
                         prog, key.c_str());
            return 2;
        }
    }

    // The attack scenarios deviate from the registry defaults: the
    // victim is califormed (policy full, spans 1..7) and the shared
    // attacker/layout seed is 31337. Seed those into a RunConfig and
    // let the explicit config sets override them.
    RunConfig rc;
    rc.policy = s.policy;
    rc.policyParams = s.params;
    rc.layoutSeed = s.seed;
    cfg.applyTo(rc);
    s.policy = rc.policy;
    s.params = rc.policyParams;
    s.seed = rc.layoutSeed;
    s.machine = rc.machine;

    // The attacker is a single agent probing from one core; a
    // multi-core machine would be a silent no-op here.
    if (s.machine.core.count > 1) {
        std::fprintf(stderr,
                     "%s: core.count=%u has no effect on an attack "
                     "replay (the attacker probes from one core)\n",
                     prog, s.machine.core.count);
        return 2;
    }

    if (scenario == "scan")
        return runScan(s);
    if (scenario == "probe")
        return runProbe(s);
    if (scenario == "brop")
        return runBrop(s);
    if (scenario == "all") {
        if (const int rc = runScan(s))
            return rc;
        if (const int rc = runProbe(s))
            return rc;
        return runBrop(s);
    }
    usage();
    return 2;
}

} // namespace califorms::cli
