/**
 * @file cli_common.cc
 * Shared argument parsing helpers for the califorms CLI subcommands.
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>

namespace califorms::cli
{

std::optional<InsertionPolicy>
parsePolicy(const std::string &name)
{
    if (name == "none")
        return InsertionPolicy::None;
    if (name == "opportunistic")
        return InsertionPolicy::Opportunistic;
    if (name == "full")
        return InsertionPolicy::Full;
    if (name == "intelligent")
        return InsertionPolicy::Intelligent;
    if (name == "fixed")
        return InsertionPolicy::FullFixed;
    return std::nullopt;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        out.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

std::vector<std::size_t>
parseSizeList(const std::string &csv)
{
    std::vector<std::size_t> out;
    for (const std::string &item : splitCsv(csv)) {
        // Digits only: strtoul would silently wrap "-3" to a huge value.
        if (item.empty() ||
            item.find_first_not_of("0123456789") != std::string::npos)
            return {};
        out.push_back(static_cast<std::size_t>(
            std::strtoul(item.c_str(), nullptr, 10)));
    }
    return out;
}

const char *
flagValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "califorms: %s requires a value\n", argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

namespace
{

/** Strict unsigned parse; false on junk (including negatives). */
bool
parseU64(const char *text, std::uint64_t &out)
{
    const std::string s = text;
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::strtoull(s.c_str(), nullptr, 10);
    return true;
}

} // namespace

HierFlag
parseHierarchyFlag(MemSysParams &mem, const std::string &arg, int argc,
                   char **argv, int &i)
{
    struct Knob
    {
        const char *flag;
        std::uint64_t min, max;
        void (*apply)(MemSysParams &, std::uint64_t);
    };
    static const Knob knobs[] = {
        {"--levels", 1, 3,
         [](MemSysParams &m, std::uint64_t v) {
             m.levels = static_cast<unsigned>(v);
         }},
        {"--l2-kb", 0, 1 << 20,
         [](MemSysParams &m, std::uint64_t v) {
             m.l2Size = static_cast<std::size_t>(v) * 1024;
         }},
        {"--llc-kb", 0, 1 << 20,
         [](MemSysParams &m, std::uint64_t v) {
             m.l3Size = static_cast<std::size_t>(v) * 1024;
         }},
        {"--l2-lat", 1, 10000,
         [](MemSysParams &m, std::uint64_t v) {
             m.l2Latency = static_cast<Cycles>(v);
         }},
        {"--llc-lat", 1, 10000,
         [](MemSysParams &m, std::uint64_t v) {
             m.l3Latency = static_cast<Cycles>(v);
         }},
        {"--fill-conv", 0, 10000,
         [](MemSysParams &m, std::uint64_t v) {
             m.fillConvLatency = static_cast<Cycles>(v);
         }},
        {"--spill-conv", 0, 10000,
         [](MemSysParams &m, std::uint64_t v) {
             m.spillConvLatency = static_cast<Cycles>(v);
         }},
        // Queue lookups are linear scans on the miss path; depths far
        // beyond any realistic victim buffer are rejected rather than
        // silently turning the simulator quadratic.
        {"--wb-queue", 0, 512,
         [](MemSysParams &m, std::uint64_t v) {
             m.wbQueueEntries = static_cast<unsigned>(v);
         }},
    };
    for (const Knob &knob : knobs) {
        if (arg != knob.flag)
            continue;
        std::uint64_t value = 0;
        const char *text = flagValue(argc, argv, i);
        if (!parseU64(text, value) || value < knob.min ||
            value > knob.max) {
            std::fprintf(stderr,
                         "califorms: %s expects an integer in [%llu, "
                         "%llu], got '%s'\n",
                         knob.flag,
                         static_cast<unsigned long long>(knob.min),
                         static_cast<unsigned long long>(knob.max),
                         text);
            return HierFlag::Error;
        }
        knob.apply(mem, value);
        return HierFlag::Consumed;
    }
    return HierFlag::NotMine;
}

const char *
hierarchyUsage()
{
    return "  --levels N      cache levels: 1 = L1 only, 2 = +L2, "
           "3 = +L2+LLC (default 3)\n"
           "  --l2-kb N       L2 capacity in KB; 0 disables the L2\n"
           "  --llc-kb N      LLC capacity in KB; 0 disables the LLC\n"
           "  --l2-lat N      L2 hit latency in cycles\n"
           "  --llc-lat N     LLC hit latency in cycles\n"
           "  --fill-conv N   cycles charged per sentinel->bitvector "
           "fill conversion\n"
           "  --spill-conv N  cycles charged per bitvector->sentinel "
           "spill conversion\n"
           "  --wb-queue N    dirty write-back queue depth (0 = "
           "immediate write-back)";
}

} // namespace califorms::cli
