/**
 * @file cli_common.cc
 * Shared argument parsing helpers for the califorms CLI subcommands.
 * Knob parsing itself lives in src/config (the ParamRegistry and
 * config::parseCliArg); only the truly CLI-local helpers remain here.
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>

namespace califorms::cli
{

std::optional<InsertionPolicy>
parsePolicy(const std::string &name)
{
    return parsePolicyName(name);
}

const char *
flagValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "califorms: %s requires a value\n", argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

bool
setOrReport(config::Config &cfg, const char *prog,
            const std::string &flag, const std::string &key,
            const std::string &text)
{
    if (const auto error = cfg.set(key, text)) {
        std::fprintf(stderr, "%s: %s: %s\n", prog, flag.c_str(),
                     error->c_str());
        return false;
    }
    return true;
}

} // namespace califorms::cli
