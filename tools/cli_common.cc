/**
 * @file cli_common.cc
 * Shared argument parsing helpers for the califorms CLI subcommands.
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>

namespace califorms::cli
{

std::optional<InsertionPolicy>
parsePolicy(const std::string &name)
{
    if (name == "none")
        return InsertionPolicy::None;
    if (name == "opportunistic")
        return InsertionPolicy::Opportunistic;
    if (name == "full")
        return InsertionPolicy::Full;
    if (name == "intelligent")
        return InsertionPolicy::Intelligent;
    if (name == "fixed")
        return InsertionPolicy::FullFixed;
    return std::nullopt;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        out.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

std::vector<std::size_t>
parseSizeList(const std::string &csv)
{
    std::vector<std::size_t> out;
    for (const std::string &item : splitCsv(csv)) {
        // Digits only: strtoul would silently wrap "-3" to a huge value.
        if (item.empty() ||
            item.find_first_not_of("0123456789") != std::string::npos)
            return {};
        out.push_back(static_cast<std::size_t>(
            std::strtoul(item.c_str(), nullptr, 10)));
    }
    return out;
}

const char *
flagValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "califorms: %s requires a value\n", argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

} // namespace califorms::cli
