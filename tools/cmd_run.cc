/**
 * @file cmd_run.cc
 * `califorms run`: execute one benchmark (or the whole SPEC-like suite)
 * through the full machine model and report the counters every figure
 * is built from. Unlike the fixed per-figure benches this composes any
 * (benchmark, policy, span, latency, L1 format) combination; every
 * machine knob is reachable through --set key=value / --config FILE,
 * with the historical flags kept as registry aliases.
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "security/scenarios.hh"
#include "workload/runner.hh"
#include "workload/synth.hh"

namespace califorms::cli
{
namespace
{

constexpr const char *prog = "califorms run";

void
usage()
{
    std::printf(
        "usage: califorms run <benchmark|all> [options]\n"
        "\n"
        "options:\n"
        "  --maxspan N     maximum random span size; also sets the "
        "fixed span\n"
        "  --scale S       workload iteration multiplier (default 0.5)\n"
        "  --seed N        layout randomization seed (default 7)\n"
        "  --no-cform      allocate layouts but never issue CFORMs\n"
        "  --extra-latency add one cycle to L2 and L3 (Figure 10)\n"
        "  --cores N       multi-core machine (synthetic workloads "
        "only);\n"
        "                  alias for --set core.count=N\n"
        "%s\n",
        config::cliUsage().c_str());
}

void
report(const RunResult &r, const RunConfig &config)
{
    std::printf("benchmark=%s policy=%s maxspan=%zu cform=%s\n",
                r.benchmark.c_str(), policyName(config.policy).c_str(),
                config.policyParams.maxSpan,
                config.heap.useCform ? "on" : "off");
    std::printf("  cycles=%llu instructions=%llu ipc=%.3f\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.cycles ? static_cast<double>(r.instructions) /
                               static_cast<double>(r.cycles)
                         : 0.0);
    std::printf("  l1miss%%=%.2f l2miss%%=%.2f l3miss%%=%.2f "
                "dram=%llu cforms=%llu\n",
                100.0 * r.mem.l1.missRate(), 100.0 * r.mem.l2.missRate(),
                100.0 * r.mem.l3.missRate(),
                static_cast<unsigned long long>(r.mem.dramAccesses),
                static_cast<unsigned long long>(r.mem.cformOps));
    std::printf("  allocs=%llu frees=%llu exceptions=%zu/%zu "
                "(delivered/suppressed)\n",
                static_cast<unsigned long long>(r.heap.allocs),
                static_cast<unsigned long long>(r.heap.frees),
                r.exceptionsDelivered, r.exceptionsSuppressed);
    // Non-blocking timing lines only when the model is configured, so
    // the default (flat-latency) output stays byte-identical.
    if (config.machine.mem.mshrEntries > 0)
        std::printf("  mshr: allocations=%llu coalesced=%llu "
                    "stallCycles=%llu peakOccupancy=%llu\n",
                    static_cast<unsigned long long>(
                        r.mem.mshrAllocations),
                    static_cast<unsigned long long>(r.mem.mshrCoalesced),
                    static_cast<unsigned long long>(
                        r.mem.mshrStallCycles),
                    static_cast<unsigned long long>(
                        r.mem.mshrPeakOccupancy));
    if (config.machine.mem.dramBanks > 0)
        std::printf("  dram: rowHits=%llu rowMisses=%llu "
                    "rowConflicts=%llu bankConflictCycles=%llu\n",
                    static_cast<unsigned long long>(r.mem.dramRowHits),
                    static_cast<unsigned long long>(r.mem.dramRowMisses),
                    static_cast<unsigned long long>(
                        r.mem.dramRowConflicts),
                    static_cast<unsigned long long>(
                        r.mem.dramBankConflictCycles));
    // Replacement-laboratory line only when some level runs a
    // non-default policy, keeping default-LRU output byte-identical.
    if (replPolicyActive(config.machine.mem)) {
        const double evictions =
            static_cast<double>(r.mem.l1.evictions + r.mem.l2.evictions +
                                r.mem.l3.evictions);
        const double cform = static_cast<double>(
            r.mem.l1.cformEvictions + r.mem.l2.cformEvictions +
            r.mem.l3.cformEvictions);
        std::printf("  repl: cformEvictions=%llu/%llu/%llu "
                    "cformVictimRate=%.4f\n",
                    static_cast<unsigned long long>(
                        r.mem.l1.cformEvictions),
                    static_cast<unsigned long long>(
                        r.mem.l2.cformEvictions),
                    static_cast<unsigned long long>(
                        r.mem.l3.cformEvictions),
                    evictions ? cform / evictions : 0.0);
    }
    // Security rollup only for the attack replay benchmark, keeping
    // every other benchmark's output byte-identical.
    if (r.security.trials > 0)
        std::printf("  security: scenario=%s success_p=%.2f (%llu/%llu)"
                    " detections=%llu crashes=%llu probes=%llu "
                    "detect_cycles=%llu\n",
                    r.security.scenario.c_str(),
                    static_cast<double>(r.security.successes) /
                        static_cast<double>(r.security.trials),
                    static_cast<unsigned long long>(r.security.successes),
                    static_cast<unsigned long long>(r.security.trials),
                    static_cast<unsigned long long>(
                        r.security.detections),
                    static_cast<unsigned long long>(r.security.crashes),
                    static_cast<unsigned long long>(r.security.probes),
                    static_cast<unsigned long long>(
                        r.security.detectionLatencyCycles));
    if (r.cores.empty())
        return;
    std::printf("  coherence: invalidations=%llu dirtyRecalls=%llu "
                "convUnderInval=%llu convCycles=%llu\n",
                static_cast<unsigned long long>(r.mem.invalidationsSent),
                static_cast<unsigned long long>(r.mem.dirtyRecalls),
                static_cast<unsigned long long>(r.mem.convUnderInval),
                static_cast<unsigned long long>(
                    r.mem.coherenceConvCycles));
    for (std::size_t c = 0; c < r.cores.size(); ++c) {
        const CoreRunStats &core = r.cores[c];
        std::printf("  core%zu: cycles=%llu instructions=%llu "
                    "l1miss%%=%.2f spills=%llu fills=%llu\n",
                    c, static_cast<unsigned long long>(core.cycles),
                    static_cast<unsigned long long>(core.instructions),
                    100.0 * core.mem.l1.missRate(),
                    static_cast<unsigned long long>(core.mem.spills),
                    static_cast<unsigned long long>(core.mem.fills));
    }
}

} // namespace

int
cmdRun(int argc, char **argv)
{
    std::string bench_name;
    config::Config cfg;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        switch (config::parseCliArg(cfg, arg, argc, argv, i, prog)) {
        case config::CliArg::Consumed:
            continue;
        case config::CliArg::Error:
            return 2;
        case config::CliArg::NotMine:
            break;
        }
        if (arg == "--maxspan") {
            const std::string text = flagValue(argc, argv, i);
            if (!setOrReport(cfg, prog, arg, "layout.max_span", text) ||
                !setOrReport(cfg, prog, arg, "layout.fixed_span", text))
                return 2;
        } else if (arg == "--scale") {
            if (!setOrReport(cfg, prog, arg, "run.scale",
                             flagValue(argc, argv, i)))
                return 2;
        } else if (arg == "--seed") {
            if (!setOrReport(cfg, prog, arg, "layout.seed",
                             flagValue(argc, argv, i)))
                return 2;
        } else if (arg == "--no-cform") {
            cfg.set("heap.use_cform", "false");
            cfg.set("stack.use_cform", "false");
        } else if (arg == "--extra-latency") {
            cfg.set("mem.extra_l2l3_latency", "1");
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (bench_name.empty() && arg[0] != '-') {
            bench_name = arg;
        } else {
            std::fprintf(stderr, "califorms run: unknown argument "
                                 "'%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (bench_name.empty()) {
        usage();
        return 2;
    }

    // fleet.* knobs configure only the `califorms fleet` serving
    // engine; on a single run they would be a silent no-op.
    for (const auto &[key, value] : cfg.entries()) {
        if (key.rfind("fleet.", 0) == 0) {
            std::fprintf(stderr,
                         "califorms run: %s has no effect here (only "
                         "`califorms fleet` consumes fleet.* knobs)\n",
                         key.c_str());
            return 2;
        }
    }

    // attack.* knobs drive only the attack replay benchmark; on
    // anything else they would be a silent no-op, so reject them.
    if (!isAttackBenchmark(bench_name)) {
        for (const auto &[key, value] : cfg.entries()) {
            if (key.rfind("attack.", 0) == 0) {
                std::fprintf(stderr,
                             "califorms run: %s has no effect on "
                             "benchmark '%s' (only the attack replay "
                             "benchmark consumes attack.* knobs)\n",
                             key.c_str(), bench_name.c_str());
                return 2;
            }
        }
    }

    // workload.* knobs drive only the synthetic generator benchmarks;
    // on anything else they would be a silent no-op, so reject them.
    if (!isSynthWorkload(bench_name)) {
        for (const auto &[key, value] : cfg.entries()) {
            if (key.rfind("workload.", 0) == 0) {
                std::fprintf(stderr,
                             "califorms run: %s has no effect on "
                             "benchmark '%s' (only the synthetic "
                             "workloads consume workload.* knobs)\n",
                             key.c_str(), bench_name.c_str());
                return 2;
            }
        }
    }

    RunConfig config;
    config.scale = 0.5;
    cfg.applyTo(config);

    // Only the synthetic workloads fan out one stream per core;
    // running a single-threaded kernel on a multi-core machine would
    // silently misreport scaling, so reject it here with a friendlier
    // message than the runBenchmark throw.
    if (config.machine.core.count > 1 && !isSynthWorkload(bench_name)) {
        std::fprintf(stderr,
                     "califorms run: benchmark '%s' cannot honor "
                     "core.count=%u (only the synthetic workloads run "
                     "multi-core)\n",
                     bench_name.c_str(), config.machine.core.count);
        return 2;
    }

    if (bench_name == "all") {
        for (const auto &b : spec2006Suite())
            report(runBenchmark(b, config), config);
        return 0;
    }
    report(runBenchmark(findBenchmark(bench_name), config), config);
    return 0;
}

} // namespace califorms::cli
