/**
 * @file cmd_run.cc
 * `califorms run`: execute one benchmark (or the whole SPEC-like suite)
 * through the full machine model and report the counters every figure
 * is built from. Unlike the fixed per-figure benches this composes any
 * (benchmark, policy, span, latency, L1 format) combination.
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "workload/runner.hh"

namespace califorms::cli
{
namespace
{

void
usage()
{
    std::printf(
        "usage: califorms run <benchmark|all> [options]\n"
        "\n"
        "options:\n"
        "  --policy P      none|opportunistic|full|intelligent|fixed "
        "(default none)\n"
        "  --maxspan N     maximum random span size (default 7)\n"
        "  --scale S       workload iteration multiplier (default 0.5)\n"
        "  --seed N        layout randomization seed (default 7)\n"
        "  --no-cform      allocate layouts but never issue CFORMs\n"
        "  --extra-latency add one cycle to L2 and L3 (Figure 10)\n"
        "  --l1 F          bitvector|cal4b|cal1b metadata format "
        "(Table 7)\n%s\n",
        hierarchyUsage());
}

void
report(const RunResult &r, const RunConfig &config)
{
    std::printf("benchmark=%s policy=%s maxspan=%zu cform=%s\n",
                r.benchmark.c_str(), policyName(config.policy).c_str(),
                config.policyParams.maxSpan,
                config.heap.useCform ? "on" : "off");
    std::printf("  cycles=%llu instructions=%llu ipc=%.3f\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.cycles ? static_cast<double>(r.instructions) /
                               static_cast<double>(r.cycles)
                         : 0.0);
    std::printf("  l1miss%%=%.2f l2miss%%=%.2f l3miss%%=%.2f "
                "dram=%llu cforms=%llu\n",
                100.0 * r.mem.l1.missRate(), 100.0 * r.mem.l2.missRate(),
                100.0 * r.mem.l3.missRate(),
                static_cast<unsigned long long>(r.mem.dramAccesses),
                static_cast<unsigned long long>(r.mem.cformOps));
    std::printf("  allocs=%llu frees=%llu exceptions=%zu/%zu "
                "(delivered/suppressed)\n",
                static_cast<unsigned long long>(r.heap.allocs),
                static_cast<unsigned long long>(r.heap.frees),
                r.exceptionsDelivered, r.exceptionsSuppressed);
}

} // namespace

int
cmdRun(int argc, char **argv)
{
    std::string bench_name;
    RunConfig config;
    config.scale = 0.5;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        switch (parseHierarchyFlag(config.machine.mem, arg, argc, argv,
                                   i)) {
        case HierFlag::Consumed:
            continue;
        case HierFlag::Error:
            return 2;
        case HierFlag::NotMine:
            break;
        }
        if (arg == "--policy") {
            const std::string name = flagValue(argc, argv, i);
            const auto p = parsePolicy(name);
            if (!p) {
                std::fprintf(stderr, "califorms run: unknown policy "
                                     "'%s'\n",
                             name.c_str());
                return 2;
            }
            config.policy = *p;
        } else if (arg == "--maxspan") {
            config.policyParams.maxSpan = static_cast<std::size_t>(
                std::atoi(flagValue(argc, argv, i)));
            config.policyParams.fixedSpan = config.policyParams.maxSpan;
        } else if (arg == "--scale") {
            config.scale = std::atof(flagValue(argc, argv, i));
        } else if (arg == "--seed") {
            config.layoutSeed = static_cast<std::uint64_t>(
                std::atoll(flagValue(argc, argv, i)));
        } else if (arg == "--no-cform") {
            config.withCform(false);
        } else if (arg == "--extra-latency") {
            config.machine.mem.extraL2L3Latency = 1;
        } else if (arg == "--l1") {
            const std::string f = flagValue(argc, argv, i);
            if (f == "bitvector")
                config.machine.mem.l1Format = L1Format::BitVector8B;
            else if (f == "cal4b")
                config.machine.mem.l1Format = L1Format::Cal4B;
            else if (f == "cal1b")
                config.machine.mem.l1Format = L1Format::Cal1B;
            else {
                std::fprintf(stderr, "califorms run: unknown L1 format "
                                     "'%s'\n",
                             f.c_str());
                return 2;
            }
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (bench_name.empty() && arg[0] != '-') {
            bench_name = arg;
        } else {
            std::fprintf(stderr, "califorms run: unknown argument "
                                 "'%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (bench_name.empty()) {
        usage();
        return 2;
    }

    if (bench_name == "all") {
        for (const auto &b : spec2006Suite())
            report(runBenchmark(b, config), config);
        return 0;
    }
    report(runBenchmark(findBenchmark(bench_name), config), config);
    return 0;
}

} // namespace califorms::cli
