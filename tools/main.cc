/**
 * @file main.cc
 * Entrypoint of the unified `califorms` CLI driver. Dispatches to the
 * run / attack / sweep / trace / config subcommands; see cli.hh.
 */

#include "cli.hh"

#include <cstdio>
#include <exception>

namespace
{

int
usage(int rc)
{
    std::puts(
        "usage: califorms <subcommand> [args]\n"
        "\n"
        "subcommands:\n"
        "  run     execute a workload through the full machine model\n"
        "  attack  replay the Section 7.3 security scenarios\n"
        "  sweep   iterate layout policies over a benchmark\n"
        "  trace   generate and replay plain-text sim traces\n"
        "  fleet   replay sharded multi-tenant streams (serving "
        "engine)\n"
        "  config  inspect the parameter registry and resolved "
        "configs\n"
        "  help    show this message\n"
        "\n"
        "run 'califorms <subcommand> --help' for per-command options");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace califorms::cli;

    if (argc < 2)
        return usage(2);
    const std::string cmd = argv[1];

    try {
        if (cmd == "run")
            return cmdRun(argc - 2, argv + 2);
        if (cmd == "attack")
            return cmdAttack(argc - 2, argv + 2);
        if (cmd == "sweep")
            return cmdSweep(argc - 2, argv + 2);
        if (cmd == "trace")
            return cmdTrace(argc - 2, argv + 2);
        if (cmd == "fleet")
            return cmdFleet(argc - 2, argv + 2);
        if (cmd == "config")
            return cmdConfig(argc - 2, argv + 2);
        if (cmd == "help" || cmd == "--help")
            return usage(0);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "califorms %s: %s\n", cmd.c_str(),
                     e.what());
        return 1;
    }

    std::fprintf(stderr, "califorms: unknown subcommand '%s'\n",
                 cmd.c_str());
    return usage(2);
}
