#!/usr/bin/env python3
"""Benchmark regression gate for califorms campaign reports.

Compares a freshly produced campaign JSON report (schema
califorms-campaign/v1 or /v2) against a committed baseline:

  * simulated counters (cycles, instructions, per-run mem stats) are
    deterministic, so any drift is a hard failure — an intentional
    model change must regenerate the baseline with --update;
  * wall-clock time (the optional "timing" object) is gated with a
    relative threshold: the current elapsedMs may exceed the baseline
    by at most --time-threshold (default 0.15 = +15%); pass
    --no-time to skip the wall-clock comparison (e.g. when baseline
    and current runs come from different machines or when ctest runs
    several suites in parallel), or --time-only to skip the counter
    comparison (e.g. when gating wall clock against a previous CI
    run whose counters predate an intentional baseline update);
  * the optional "throughput" object (fleet reports) splits the same
    way: its deterministic counters (opsReplayed, batchOps, shards,
    tenants) are exact-matched with the other counters, while the
    wall-clock-derived opsPerSec is gated as a floor — the current
    rate may fall short of the baseline by at most --ops-threshold
    (default 0.30 = -30%), and is skipped by --no-time alongside the
    elapsedMs check.

Uses only the Python standard library. Exit codes: 0 pass, 1 regression,
2 usage/IO error.

Usage:
  bench_gate.py CURRENT BASELINE [--time-threshold F] [--ops-threshold F]
                [--no-time | --time-only]
  bench_gate.py CURRENT BASELINE --update
"""

import argparse
import json
import sys


def load_report(path):
    try:
        with open(path, "rb") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_gate: cannot read {path}: {e}")
    schema = report.get("schema", "")
    if not schema.startswith("califorms-campaign/"):
        sys.exit(f"bench_gate: {path}: unexpected schema '{schema}'")
    return report


def run_key(run):
    return (run.get("benchmark"), run.get("variant"),
            run.get("layoutSeed"))


def index_runs(report, path):
    runs = {}
    for run in report.get("runs", []):
        key = run_key(run)
        if key in runs:
            sys.exit(f"bench_gate: {path}: duplicate run {key}")
        runs[key] = run
    return runs


def compare_counters(current, baseline):
    """Exact comparison of the deterministic per-run counters.

    The compared surface is the intersection of the recorded stats, so
    a v2 current report still gates cleanly against a v1 baseline.
    """
    failures = []
    cur_runs = index_runs(current, "current")
    base_runs = index_runs(baseline, "baseline")
    for key in sorted(base_runs, key=repr):
        if key not in cur_runs:
            failures.append(f"run {key} missing from current report")
            continue
        cur, base = cur_runs[key], base_runs[key]
        for field in ("cycles", "instructions"):
            if cur.get(field) != base.get(field):
                failures.append(
                    f"run {key}: {field} {base.get(field)} -> "
                    f"{cur.get(field)}")
        cur_mem = cur.get("mem", {})
        base_mem = base.get("mem", {})
        for stat in sorted(set(cur_mem) & set(base_mem)):
            if cur_mem[stat] != base_mem[stat]:
                failures.append(
                    f"run {key}: mem.{stat} {base_mem[stat]} -> "
                    f"{cur_mem[stat]}")
    for key in sorted(cur_runs, key=repr):
        if key not in base_runs:
            failures.append(
                f"run {key} not in baseline (grid changed? "
                "regenerate with --update)")
    return failures


def compare_time(current, baseline, threshold):
    cur_t = current.get("timing", {}).get("elapsedMs")
    base_t = baseline.get("timing", {}).get("elapsedMs")
    if cur_t is None or base_t is None:
        return ["timing object missing (rerun without --no-time "
                "only on reports that include timing)"]
    if base_t <= 0:
        return []
    ratio = cur_t / base_t
    if ratio > 1.0 + threshold:
        return [f"wall clock regressed {ratio - 1.0:+.1%} "
                f"({base_t:.1f}ms -> {cur_t:.1f}ms, "
                f"threshold +{threshold:.0%})"]
    print(f"bench_gate: wall clock {ratio - 1.0:+.1%} vs baseline "
          f"({base_t:.1f}ms -> {cur_t:.1f}ms)")
    return []


def compare_throughput_counters(current, baseline):
    """Exact comparison of the deterministic throughput counters.

    Reports without a baseline throughput object (every non-fleet
    harness) are exempt; a baseline that has one pins the shape.
    """
    base_tp = baseline.get("throughput")
    if base_tp is None:
        return []
    cur_tp = current.get("throughput")
    if cur_tp is None:
        return ["throughput object missing from current report"]
    failures = []
    for field in ("opsReplayed", "batchOps", "shards", "tenants"):
        if field in base_tp and cur_tp.get(field) != base_tp[field]:
            failures.append(
                f"throughput.{field} {base_tp[field]} -> "
                f"{cur_tp.get(field)}")
    return failures


def compare_throughput_rate(current, baseline, tolerance):
    """Floor-gate the wall-clock-derived replay rate.

    Unlike elapsedMs (lower is better, gated above), opsPerSec is
    higher-is-better: the current rate must reach at least
    baseline * (1 - tolerance). Faster is never a failure.
    """
    base_rate = baseline.get("throughput", {}).get("opsPerSec")
    if base_rate is None or base_rate <= 0:
        return []
    cur_rate = current.get("throughput", {}).get("opsPerSec")
    if cur_rate is None:
        return ["throughput.opsPerSec missing from current report "
                "(rerun without --no-timing)"]
    ratio = cur_rate / base_rate
    if ratio < 1.0 - tolerance:
        return [f"throughput regressed {ratio - 1.0:+.1%} "
                f"({base_rate:.0f} -> {cur_rate:.0f} ops/s, "
                f"floor -{tolerance:.0%})"]
    print(f"bench_gate: throughput {ratio - 1.0:+.1%} vs baseline "
          f"({base_rate:.0f} -> {cur_rate:.0f} ops/s)")
    return []


def main():
    parser = argparse.ArgumentParser(
        description="califorms benchmark regression gate")
    parser.add_argument("current", help="fresh campaign JSON report")
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument("--time-threshold", type=float, default=0.15,
                        help="max relative wall-clock regression "
                             "(default 0.15 = +15%%)")
    parser.add_argument("--ops-threshold", type=float, default=0.30,
                        help="max relative ops/sec shortfall "
                             "(default 0.30 = -30%%)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--no-time", action="store_true",
                       help="skip the wall-clock comparison")
    group.add_argument("--time-only", action="store_true",
                       help="skip the counter comparison")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the current "
                             "report and exit")
    args = parser.parse_args()

    current = load_report(args.current)
    if args.update:
        try:
            with open(args.current, "rb") as src, \
                 open(args.baseline, "wb") as dst:
                dst.write(src.read())
        except OSError as e:
            sys.exit(f"bench_gate: cannot update baseline: {e}")
        print(f"bench_gate: baseline {args.baseline} updated")
        return 0

    baseline = load_report(args.baseline)
    failures = []
    if not args.time_only:
        failures += compare_counters(current, baseline)
        failures += compare_throughput_counters(current, baseline)
    if not args.no_time:
        failures += compare_time(current, baseline,
                                 args.time_threshold)
        failures += compare_throughput_rate(current, baseline,
                                            args.ops_threshold)

    if failures:
        print(f"bench_gate: FAIL ({len(failures)} regression(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    if args.time_only:
        print("bench_gate: PASS (wall clock within threshold)")
    else:
        n = len(current.get("runs", []))
        print(f"bench_gate: PASS ({n} runs match the baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
