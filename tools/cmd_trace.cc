/**
 * @file cmd_trace.cc
 * `califorms trace`: generate, replay, and convert machine traces in
 * the text and binary formats of src/sim/trace.hh, so downstream users
 * can drive the machine model without writing C++.
 *
 *   trace gen   dump a synthetic trace to stdout (or --out FILE);
 *               --workload NAME streams one of the src/workload
 *               generators (zipf, stream, stackchurn, ring,
 *               attackmix, tunable via --set workload.key=value)
 *               instead of the legacy mixed trace; --format bin
 *               writes the compact binary format
 *   trace run   replay a trace file ('-' = stdin), auto-detecting
 *               text vs binary, and report the replay checksum plus
 *               the full gem5-style stats dump; the binary path
 *               streams, so multi-million-op traces replay in
 *               constant memory
 *   trace conv  convert a trace between the two formats; binary ->
 *               text -> binary round-trips byte-identically (text
 *               comments are not carried into binary)
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "sim/stats_dump.hh"
#include "sim/trace.hh"
#include "util/rng.hh"
#include "workload/synth.hh"

namespace califorms::cli
{
namespace
{

void
usage()
{
    std::string workloads;
    for (const std::string &name : synthWorkloadNames())
        workloads += (workloads.empty() ? "" : "|") + name;
    std::printf(
        "usage: califorms trace gen [--ops N] [--seed N] [--out FILE]\n"
        "                           [--format text|bin] [--workload "
        "%s]\n"
        "                           [--set workload.key=value] "
        "[--config FILE]\n"
        "       califorms trace run <FILE|-> [FILE...] [--stats] "
        "[--set key=value] [--config FILE]\n"
        "       califorms trace conv <IN|-> <OUT|-> --to text|bin\n"
        "\n"
        "trace run auto-detects the trace format and replays on the "
        "registry-default\nmachine; --set and --config (plus the "
        "legacy alias flags, e.g. --levels,\n--l2-kb, --cores) "
        "reconfigure it. On a multi-core machine (--set\n"
        "core.count=N) trace run takes exactly N trace files, one "
        "stream per core,\ninterleaved round-robin.\n",
        workloads.c_str());
}

/** Parse --format/--to values. */
bool
parseFormat(const std::string &text, TraceFormat &format)
{
    if (text == "text") {
        format = TraceFormat::Text;
        return true;
    }
    if (text == "bin" || text == "binary") {
        format = TraceFormat::Binary;
        return true;
    }
    return false;
}

/** Strictly parse an unsigned flag value in [min, max]; prints the
 *  diagnostic and returns std::nullopt on failure (negative, garbage,
 *  or out-of-range input must not silently wrap into a huge count). */
std::optional<std::uint64_t>
parseCount(const char *flag, const std::string &text,
           std::uint64_t min, std::uint64_t max)
{
    const auto v = parseU64(text);
    if (!v || *v < min || *v > max) {
        std::fprintf(stderr,
                     "califorms trace: %s expects an integer in "
                     "[%llu, %llu], got '%s'\n",
                     flag, static_cast<unsigned long long>(min),
                     static_cast<unsigned long long>(max),
                     text.c_str());
        return std::nullopt;
    }
    return v;
}

/** Open @p path for reading in binary mode; '-' is stdin. Returns
 *  nullptr after printing a diagnostic. */
std::istream *
openInput(const std::string &path, std::ifstream &file)
{
    if (path == "-")
        return &std::cin;
    file.open(path, std::ios::binary);
    if (!file) {
        std::fprintf(stderr, "califorms trace: cannot read '%s'\n",
                     path.c_str());
        return nullptr;
    }
    return &file;
}

/** Open @p path for writing in binary mode; '-' or "" is stdout.
 *  Returns nullptr after printing a diagnostic. */
std::ostream *
openOutput(const std::string &path, std::ofstream &file)
{
    if (path.empty() || path == "-")
        return &std::cout;
    file.open(path, std::ios::binary);
    if (!file) {
        std::fprintf(stderr, "califorms trace: cannot write '%s'\n",
                     path.c_str());
        return nullptr;
    }
    return &file;
}

/** A synthetic mixed trace: a streaming pass, pointer-chase loads,
 *  stores, compute blocks, and a couple of CFORMs over the region. */
Trace
synthesize(std::size_t ops, std::uint64_t seed)
{
    Trace trace;
    Rng rng(seed);
    const Addr base = 0x10000000ull;
    const std::size_t region = 1 << 16;

    // Blacklist one span so replays exercise the security path too.
    CformOp establish;
    establish.lineAddr = base + 64 * 17;
    establish.setBits = 0xf0;
    establish.mask = 0xff;
    trace.push_back(TraceOp::cformOp(establish));

    for (std::size_t i = 0; i < ops; ++i) {
        const std::uint64_t roll = rng.nextBelow(10);
        const Addr addr =
            base + (rng.nextBelow(region) & ~7ull);
        if (roll < 4)
            trace.push_back(TraceOp::load(addr, 8, roll == 0));
        else if (roll < 7)
            trace.push_back(TraceOp::store(addr, 8, rng.next()));
        else
            trace.push_back(TraceOp::compute(
                static_cast<std::uint32_t>(1 + rng.nextBelow(16))));
    }
    return trace;
}

int
traceGen(int argc, char **argv)
{
    std::size_t ops = 1024;
    bool ops_set = false;
    std::uint64_t seed = 1;
    bool seed_set = false;
    std::string out;
    std::string workload;
    TraceFormat format = TraceFormat::Text;
    config::Config cfg;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        switch (config::parseCliArg(cfg, arg, argc, argv, i,
                                    "califorms trace")) {
        case config::CliArg::Consumed:
            continue;
        case config::CliArg::Error:
            return 2;
        case config::CliArg::NotMine:
            break;
        }
        if (arg == "--ops") {
            // Same bound as the workload.ops registry knob.
            const auto v = parseCount("--ops", flagValue(argc, argv, i),
                                      1, 1u << 30);
            if (!v)
                return 2;
            ops = static_cast<std::size_t>(*v);
            ops_set = true;
        } else if (arg == "--seed") {
            const auto v =
                parseCount("--seed", flagValue(argc, argv, i), 0,
                           std::numeric_limits<std::uint64_t>::max());
            if (!v)
                return 2;
            seed = *v;
            seed_set = true;
        } else if (arg == "--out") {
            out = flagValue(argc, argv, i);
        } else if (arg == "--workload") {
            workload = flagValue(argc, argv, i);
            if (!isSynthWorkload(workload)) {
                std::fprintf(stderr,
                             "califorms trace: unknown workload '%s' "
                             "(try --help)\n",
                             workload.c_str());
                return 2;
            }
        } else if (arg == "--format") {
            if (!parseFormat(flagValue(argc, argv, i), format)) {
                std::fprintf(stderr, "califorms trace: --format "
                                     "expects text or bin\n");
                return 2;
            }
        } else if (arg == "--help") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }

    // Generation consumes only the workload generator knobs; machine
    // and layout keys would be silent no-ops here (the machine is
    // chosen at replay time), so reject them.
    for (const auto &[key, value] : cfg.entries()) {
        if (key.rfind("workload.", 0) != 0 || workload.empty()) {
            std::fprintf(stderr,
                         "califorms trace: %s has no effect on trace "
                         "generation (only workload.* knobs apply, "
                         "with --workload)\n",
                         key.c_str());
            return 2;
        }
    }

    std::ofstream file;
    std::ostream *const os = openOutput(out, file);
    if (!os)
        return 1;

    std::size_t written = 0;
    try {
        if (!workload.empty()) {
            SynthParams params = cfg.makeRunConfig().synth;
            if (seed_set)
                params.seed = seed;
            const std::size_t total = ops_set ? ops : params.ops;
            if (format == TraceFormat::Text)
                *os << "# califorms trace: workload=" << workload
                    << " ops=" << total << " seed=" << params.seed
                    << "\n";
            const auto gen =
                makeSynthGenerator(workload, params, total);
            const auto writer = makeTraceWriter(*os, format, total);
            TraceOp op;
            while (gen->next(op)) {
                writer->put(op);
                ++written;
            }
            writer->finish();
        } else {
            const Trace trace = synthesize(ops, seed);
            written = trace.size();
            if (format == TraceFormat::Binary) {
                writeTraceBinary(*os, trace);
            } else {
                *os << "# califorms trace: synthetic, ops=" << ops
                    << " seed=" << seed << "\n";
                writeTrace(*os, trace);
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "califorms trace: %s\n", e.what());
        return 1;
    }
    if (!out.empty())
        std::printf("wrote %zu ops to %s\n", written, out.c_str());
    return 0;
}

int
traceRun(int argc, char **argv)
{
    std::vector<std::string> paths;
    bool stats = false;
    config::Config cfg;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        switch (config::parseCliArg(cfg, arg, argc, argv, i,
                                    "califorms trace")) {
        case config::CliArg::Consumed:
            continue;
        case config::CliArg::Error:
            return 2;
        case config::CliArg::NotMine:
            break;
        }
        if (arg == "--stats")
            stats = true;
        else if (arg == "--help") {
            usage();
            return 0;
        } else if (arg == "-" || arg[0] != '-')
            paths.push_back(arg);
        else {
            usage();
            return 2;
        }
    }
    if (paths.empty()) {
        usage();
        return 2;
    }

    // A trace replay consumes only the machine model: every other
    // domain (run.*, layout.*, heap.*, stack.*, workload.*) is decided
    // by the trace itself, so accepting such a key would be a silent
    // no-op.
    for (const auto &[key, value] : cfg.entries()) {
        if (key.rfind("mem.", 0) != 0 && key.rfind("core.", 0) != 0) {
            std::fprintf(stderr,
                         "califorms trace: %s has no effect on a "
                         "trace replay (only mem.* and core.* knobs "
                         "apply)\n",
                         key.c_str());
            return 2;
        }
    }

    Machine machine(cfg.makeRunConfig().machine);
    if (paths.size() != machine.coreCount()) {
        std::fprintf(stderr,
                     "califorms trace: %zu trace file(s) for a "
                     "%u-core machine (trace run takes exactly one "
                     "stream per core; set --set core.count=%zu or "
                     "pass %u file(s))\n",
                     paths.size(), machine.coreCount(), paths.size(),
                     machine.coreCount());
        return 2;
    }
    std::uint64_t replayed = 0;
    std::uint64_t checksum = 0;
    try {
        std::vector<std::ifstream> files(paths.size());
        std::vector<std::unique_ptr<TraceReader>> readers;
        std::vector<TraceReader *> streams;
        for (std::size_t c = 0; c < paths.size(); ++c) {
            std::istream *const is = openInput(paths[c], files[c]);
            if (!is)
                return 1;
            readers.push_back(openTraceReader(*is));
            streams.push_back(readers.back().get());
        }
        checksum = paths.size() == 1
                       ? runTrace(machine, *streams[0], &replayed)
                       : runTraceInterleaved(machine, streams,
                                             &replayed);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "califorms trace: %s\n", e.what());
        return 1;
    }
    std::printf("replayed %llu ops: checksum=%016llx cycles=%llu "
                "instructions=%llu exceptions=%zu\n",
                static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(checksum),
                static_cast<unsigned long long>(machine.cycles()),
                static_cast<unsigned long long>(machine.instructions()),
                machine.exceptions().deliveredCount());
    if (stats)
        std::fputs(dumpStats(machine).c_str(), stdout);
    return 0;
}

int
traceConv(int argc, char **argv)
{
    std::string in_path, out_path;
    TraceFormat to = TraceFormat::Binary;
    bool to_set = false;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--to") {
            if (!parseFormat(flagValue(argc, argv, i), to)) {
                std::fprintf(stderr, "califorms trace: --to expects "
                                     "text or bin\n");
                return 2;
            }
            to_set = true;
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (in_path.empty()) {
            in_path = arg;
        } else if (out_path.empty()) {
            out_path = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (in_path.empty() || out_path.empty() || !to_set) {
        usage();
        return 2;
    }

    Trace trace;
    try {
        std::ifstream file;
        std::istream *const is = openInput(in_path, file);
        if (!is)
            return 1;
        const auto reader = openTraceReader(*is);
        TraceOp op;
        while (reader->next(op))
            trace.push_back(op);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "califorms trace: %s\n", e.what());
        return 1;
    }

    try {
        std::ofstream file;
        std::ostream *const os = openOutput(out_path, file);
        if (!os)
            return 1;
        if (to == TraceFormat::Binary)
            writeTraceBinary(*os, trace);
        else
            writeTrace(*os, trace);
        if (!*os) {
            std::fprintf(stderr, "califorms trace: write error on "
                                 "'%s'\n",
                         out_path.c_str());
            return 1;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "califorms trace: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "converted %zu ops to %s\n", trace.size(),
                 to == TraceFormat::Binary ? "binary" : "text");
    return 0;
}

} // namespace

int
cmdTrace(int argc, char **argv)
{
    if (argc < 1) {
        usage();
        return 2;
    }
    const std::string mode = argv[0];
    if (mode == "gen")
        return traceGen(argc - 1, argv + 1);
    if (mode == "run")
        return traceRun(argc - 1, argv + 1);
    if (mode == "conv")
        return traceConv(argc - 1, argv + 1);
    if (mode == "--help") {
        usage();
        return 0;
    }
    usage();
    return 2;
}

} // namespace califorms::cli
