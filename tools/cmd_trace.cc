/**
 * @file cmd_trace.cc
 * `califorms trace`: generate and replay plain-text machine traces (the
 * src/sim/trace.hh format), so downstream users can drive the machine
 * model without writing C++.
 *
 *   trace gen   dump a synthetic trace to stdout (or --out FILE)
 *   trace run   replay a trace file ('-' = stdin) and report the
 *               replay checksum plus the full gem5-style stats dump
 */

#include "cli.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/stats_dump.hh"
#include "sim/trace.hh"
#include "util/rng.hh"

namespace califorms::cli
{
namespace
{

void
usage()
{
    std::puts(
        "usage: califorms trace gen [--ops N] [--seed N] [--out FILE]\n"
        "       califorms trace run <FILE|-> [--stats] [--set "
        "key=value] [--config FILE]\n"
        "\n"
        "trace run replays on the registry-default machine; --set and "
        "--config\n(plus the legacy alias flags, e.g. --levels, "
        "--l2-kb) reconfigure it.");
}

/** A synthetic mixed trace: a streaming pass, pointer-chase loads,
 *  stores, compute blocks, and a couple of CFORMs over the region. */
Trace
synthesize(std::size_t ops, std::uint64_t seed)
{
    Trace trace;
    Rng rng(seed);
    const Addr base = 0x10000000ull;
    const std::size_t region = 1 << 16;

    // Blacklist one span so replays exercise the security path too.
    CformOp establish;
    establish.lineAddr = base + 64 * 17;
    establish.setBits = 0xf0;
    establish.mask = 0xff;
    trace.push_back(TraceOp::cformOp(establish));

    for (std::size_t i = 0; i < ops; ++i) {
        const std::uint64_t roll = rng.nextBelow(10);
        const Addr addr =
            base + (rng.nextBelow(region) & ~7ull);
        if (roll < 4)
            trace.push_back(TraceOp::load(addr, 8, roll == 0));
        else if (roll < 7)
            trace.push_back(TraceOp::store(addr, 8, rng.next()));
        else
            trace.push_back(TraceOp::compute(
                static_cast<std::uint32_t>(1 + rng.nextBelow(16))));
    }
    return trace;
}

int
traceGen(int argc, char **argv)
{
    std::size_t ops = 1024;
    std::uint64_t seed = 1;
    std::string out;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--ops")
            ops = static_cast<std::size_t>(
                std::atoi(flagValue(argc, argv, i)));
        else if (arg == "--seed")
            seed = static_cast<std::uint64_t>(
                std::atoll(flagValue(argc, argv, i)));
        else if (arg == "--out")
            out = flagValue(argc, argv, i);
        else {
            usage();
            return 2;
        }
    }

    const Trace trace = synthesize(ops, seed);
    std::ostringstream os;
    os << "# califorms trace: synthetic, ops=" << ops
       << " seed=" << seed << "\n";
    writeTrace(os, trace);

    if (out.empty()) {
        std::fputs(os.str().c_str(), stdout);
        return 0;
    }
    std::ofstream file(out);
    if (!file) {
        std::fprintf(stderr, "califorms trace: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    file << os.str();
    std::printf("wrote %zu ops to %s\n", trace.size(), out.c_str());
    return 0;
}

int
traceRun(int argc, char **argv)
{
    std::string path;
    bool stats = false;
    config::Config cfg;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        switch (config::parseCliArg(cfg, arg, argc, argv, i,
                                    "califorms trace")) {
        case config::CliArg::Consumed:
            continue;
        case config::CliArg::Error:
            return 2;
        case config::CliArg::NotMine:
            break;
        }
        if (arg == "--stats")
            stats = true;
        else if (path.empty())
            path = arg;
        else {
            usage();
            return 2;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    // A trace replay consumes only the machine model: every other
    // domain (run.*, layout.*, heap.*, stack.*) is decided by the
    // trace itself, so accepting such a key would be a silent no-op.
    for (const auto &[key, value] : cfg.entries()) {
        if (key.rfind("mem.", 0) != 0 && key.rfind("core.", 0) != 0) {
            std::fprintf(stderr,
                         "califorms trace: %s has no effect on a "
                         "trace replay (only mem.* and core.* knobs "
                         "apply)\n",
                         key.c_str());
            return 2;
        }
    }

    Trace trace;
    try {
        if (path == "-") {
            trace = readTrace(std::cin);
        } else {
            std::ifstream file(path);
            if (!file) {
                std::fprintf(stderr, "califorms trace: cannot read "
                                     "'%s'\n",
                             path.c_str());
                return 1;
            }
            trace = readTrace(file);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "califorms trace: %s\n", e.what());
        return 1;
    }

    Machine machine(cfg.makeRunConfig().machine);
    const std::uint64_t checksum = runTrace(machine, trace);
    std::printf("replayed %zu ops: checksum=%016llx cycles=%llu "
                "instructions=%llu exceptions=%zu\n",
                trace.size(),
                static_cast<unsigned long long>(checksum),
                static_cast<unsigned long long>(machine.cycles()),
                static_cast<unsigned long long>(machine.instructions()),
                machine.exceptions().deliveredCount());
    if (stats)
        std::fputs(dumpStats(machine).c_str(), stdout);
    return 0;
}

} // namespace

int
cmdTrace(int argc, char **argv)
{
    if (argc < 1) {
        usage();
        return 2;
    }
    const std::string mode = argv[0];
    if (mode == "gen")
        return traceGen(argc - 1, argv + 1);
    if (mode == "run")
        return traceRun(argc - 1, argv + 1);
    if (mode == "--help") {
        usage();
        return 0;
    }
    usage();
    return 2;
}

} // namespace califorms::cli
