/**
 * @file cmd_config.cc
 * `califorms config`: inspect the typed parameter registry. Three
 * views over the same table every other subcommand consumes:
 *
 *   (default)   the resolved configuration as a reloadable
 *               `key = value` config file (explicit sets from --set /
 *               --config / alias flags are marked "# set")
 *   --schema    the machine-readable registry schema (JSON; pinned by
 *               tests/golden/config_schema.json, so adding a knob
 *               without docs/bounds fails the build)
 *   --describe  the Table 3 style machine listing (describeParams) of
 *               the resolved configuration
 *
 * Because the dump is reloadable, `califorms config > machine.conf`
 * followed by `califorms run mcf --config machine.conf` reproduces the
 * exact configuration, closing the loop between reports and reruns.
 */

#include "cli.hh"

#include <cstdio>

#include "sim/machine.hh"
#include "workload/runner.hh"

namespace califorms::cli
{
namespace
{

constexpr const char *prog = "califorms config";

void
usage()
{
    std::printf(
        "usage: califorms config [--schema | --describe | "
        "--non-default] [options]\n"
        "\n"
        "modes:\n"
        "  (default)       dump the resolved config as a reloadable "
        "'key = value' file\n"
        "  --non-default   dump only the explicitly set keys\n"
        "  --schema        dump the registry schema as JSON (key, "
        "type, default,\n"
        "                  bounds, choices, legacy flag, doc)\n"
        "  --describe      render the resolved machine as the Table 3 "
        "listing\n"
        "\n"
        "options:\n%s\n",
        config::cliUsage().c_str());
}

} // namespace

int
cmdConfig(int argc, char **argv)
{
    enum class Mode
    {
        Resolved,
        NonDefault,
        Schema,
        Describe,
    };
    Mode mode = Mode::Resolved;
    config::Config cfg;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        switch (config::parseCliArg(cfg, arg, argc, argv, i, prog)) {
        case config::CliArg::Consumed:
            continue;
        case config::CliArg::Error:
            return 2;
        case config::CliArg::NotMine:
            break;
        }
        if (arg == "--schema") {
            mode = Mode::Schema;
        } else if (arg == "--describe") {
            mode = Mode::Describe;
        } else if (arg == "--non-default") {
            mode = Mode::NonDefault;
        } else if (arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr,
                         "califorms config: unknown argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    switch (mode) {
    case Mode::Schema:
        std::fputs(
            config::ParamRegistry::instance().schemaJson().c_str(),
            stdout);
        break;
    case Mode::Describe:
        std::fputs(
            describeParams(cfg.makeRunConfig().machine).c_str(),
            stdout);
        break;
    case Mode::Resolved:
        std::fputs(cfg.serialize(false).c_str(), stdout);
        break;
    case Mode::NonDefault:
        std::fputs(cfg.serialize(true).c_str(), stdout);
        break;
    }
    return 0;
}

} // namespace califorms::cli
