/**
 * @file cli.hh
 * The unified `califorms` command line driver. One entrypoint shared by
 * CI, the benches, and users, with four subcommands:
 *
 *   run     execute a workload through the full machine model
 *   attack  replay the Section 7.3 security scenarios
 *   sweep   iterate layout policies over a benchmark (policy harness)
 *   trace   generate and replay plain-text sim traces
 *
 * Each cmd* function receives argv positioned after the subcommand word
 * and returns a process exit code.
 */

#ifndef CALIFORMS_TOOLS_CLI_HH
#define CALIFORMS_TOOLS_CLI_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "layout/policy.hh"
#include "sim/params.hh"

namespace califorms::cli
{

int cmdRun(int argc, char **argv);
int cmdAttack(int argc, char **argv);
int cmdSweep(int argc, char **argv);
int cmdTrace(int argc, char **argv);

/** Parse a policy name (none|opportunistic|full|intelligent|fixed);
 *  std::nullopt if unknown. */
std::optional<InsertionPolicy> parsePolicy(const std::string &name);

/** Split a comma-separated list into items (empty items preserved). */
std::vector<std::string> splitCsv(const std::string &csv);

/** Parse "3,5,7"-style unsigned integer lists; empty on malformed
 *  input (including negative numbers). */
std::vector<std::size_t> parseSizeList(const std::string &csv);

/** Fetch the value after a "--flag value" pair; advances @p i. Exits
 *  with an error message if the value is missing. */
const char *flagValue(int argc, char **argv, int &i);

/**
 * Recognize and apply one memory-hierarchy flag shared by `run` and
 * `sweep` (--levels N, --l2-kb N, --llc-kb N, --l2-lat N, --llc-lat N,
 * --fill-conv N, --spill-conv N, --wb-queue N). Returns Consumed when
 * @p arg was a hierarchy flag and was applied to @p mem, NotMine when
 * it is some other flag, and Error (message already printed) on a bad
 * value.
 */
enum class HierFlag
{
    NotMine,
    Consumed,
    Error,
};
HierFlag parseHierarchyFlag(MemSysParams &mem, const std::string &arg,
                            int argc, char **argv, int &i);

/** The usage lines for the shared hierarchy flags. */
const char *hierarchyUsage();

} // namespace califorms::cli

#endif // CALIFORMS_TOOLS_CLI_HH
