/**
 * @file cli.hh
 * The unified `califorms` command line driver. One entrypoint shared by
 * CI, the benches, and users, with five subcommands:
 *
 *   run     execute a workload through the full machine model
 *   attack  replay the Section 7.3 security scenarios
 *   sweep   iterate layout policies over a benchmark (policy harness)
 *   trace   generate and replay plain-text sim traces
 *   fleet   replay sharded multi-tenant streams (serving engine)
 *   config  inspect the typed parameter registry and resolved configs
 *
 * Every subcommand accepts `--set key=value` (repeatable) and
 * `--config FILE` over the src/config ParamRegistry; the historical
 * flags (--levels, --l2-kb, --policy, ...) are registry aliases of
 * their dotted keys, parsed by config::parseCliArg. Each cmd* function
 * receives argv positioned after the subcommand word and returns a
 * process exit code.
 */

#ifndef CALIFORMS_TOOLS_CLI_HH
#define CALIFORMS_TOOLS_CLI_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/config.hh"
#include "layout/policy.hh"
#include "sim/params.hh"
#include "util/parse.hh"

namespace califorms::cli
{

int cmdRun(int argc, char **argv);
int cmdAttack(int argc, char **argv);
int cmdSweep(int argc, char **argv);
int cmdTrace(int argc, char **argv);
int cmdFleet(int argc, char **argv);
int cmdConfig(int argc, char **argv);

/** Parse a policy name (none|opportunistic|full|intelligent|fixed);
 *  std::nullopt if unknown. Delegates to parsePolicyName — the same
 *  vocabulary the layout.policy registry knob accepts. */
std::optional<InsertionPolicy> parsePolicy(const std::string &name);

/** Fetch the value after a "--flag value" pair; advances @p i. Exits
 *  with an error message if the value is missing. */
const char *flagValue(int argc, char **argv, int &i);

/** cfg.set(key, text) with the uniform "<prog>: <flag>: <error>"
 *  diagnostic; false when the value was rejected. */
bool setOrReport(config::Config &cfg, const char *prog,
                 const std::string &flag, const std::string &key,
                 const std::string &text);

} // namespace califorms::cli

#endif // CALIFORMS_TOOLS_CLI_HH
