/**
 * @file test_os.cc
 * OS layer tests: privileged exception delivery policies, nested
 * whitelist windows (Section 6.3), and page swap metadata handling
 * (8B of reserved kernel space per 4KB page, Section 3).
 */

#include <gtest/gtest.h>

#include "core/sentinel.hh"
#include "os/exception_unit.hh"
#include "os/swap.hh"
#include "sim/main_memory.hh"

namespace califorms
{
namespace
{

CaliformsException
loadFault(Addr addr)
{
    return CaliformsException{addr, AccessKind::Load,
                              FaultReason::LoadSecurityByte, 0};
}

TEST(ExceptionUnitTest, DeliversWhenUnmasked)
{
    ExceptionUnit unit;
    EXPECT_TRUE(unit.raise(loadFault(0x10)));
    ASSERT_EQ(unit.deliveredCount(), 1u);
    EXPECT_EQ(unit.delivered()[0].faultAddr, 0x10u);
    EXPECT_EQ(unit.suppressedCount(), 0u);
}

TEST(ExceptionUnitTest, MaskSuppresses)
{
    ExceptionUnit unit;
    unit.maskExceptions();
    EXPECT_FALSE(unit.raise(loadFault(0x20)));
    EXPECT_EQ(unit.deliveredCount(), 0u);
    EXPECT_EQ(unit.suppressedCount(), 1u);
    unit.unmaskExceptions();
    EXPECT_TRUE(unit.raise(loadFault(0x30)));
}

TEST(ExceptionUnitTest, NestedMasks)
{
    ExceptionUnit unit;
    unit.maskExceptions();
    unit.maskExceptions();
    unit.unmaskExceptions();
    EXPECT_TRUE(unit.masked()); // still one level deep
    EXPECT_FALSE(unit.raise(loadFault(0)));
    unit.unmaskExceptions();
    EXPECT_FALSE(unit.masked());
}

TEST(ExceptionUnitTest, UnbalancedUnmaskThrows)
{
    ExceptionUnit unit;
    EXPECT_THROW(unit.unmaskExceptions(), std::logic_error);
}

TEST(ExceptionUnitTest, TerminatePolicy)
{
    ExceptionUnit unit(ExceptionUnit::Policy::Terminate);
    EXPECT_FALSE(unit.terminated());
    unit.raise(loadFault(0));
    EXPECT_TRUE(unit.terminated());
}

TEST(ExceptionUnitTest, TerminatePolicyStillSuppressible)
{
    ExceptionUnit unit(ExceptionUnit::Policy::Terminate);
    WhitelistGuard guard(unit);
    unit.raise(loadFault(0));
    EXPECT_FALSE(unit.terminated());
}

TEST(ExceptionUnitTest, ClearLogs)
{
    ExceptionUnit unit;
    unit.raise(loadFault(1));
    unit.clearLogs();
    EXPECT_EQ(unit.deliveredCount(), 0u);
}

TEST(WhitelistGuardTest, RaiiBalances)
{
    ExceptionUnit unit;
    {
        WhitelistGuard a(unit);
        {
            WhitelistGuard b(unit);
            EXPECT_TRUE(unit.masked());
        }
        EXPECT_TRUE(unit.masked());
    }
    EXPECT_FALSE(unit.masked());
}

TEST(ExceptionDescribe, HumanReadable)
{
    const auto text = loadFault(0xabc).describe();
    EXPECT_NE(text.find("security byte"), std::string::npos);
    EXPECT_NE(text.find("abc"), std::string::npos);
}

// Page swap -------------------------------------------------------------

TEST(Swap, RoundTripPreservesDataAndMetadata)
{
    MainMemory memory;
    const Addr page = 0x10000;

    // Line 2 of the page is califormed with one security byte at
    // offset 9; line 5 holds plain data.
    BitVectorLine cal;
    cal.data[0] = 0x11;
    cal.mask = 1ull << 9;
    cal.canonicalize();
    memory.writeLine(page + 2 * lineBytes, spillLine(cal));

    SentinelLine plain;
    plain.raw[3] = 0x77;
    memory.writeLine(page + 5 * lineBytes, plain);

    SwapManager swap(memory);
    const std::uint64_t meta = swap.swapOut(page);
    EXPECT_EQ(meta, 1ull << 2); // only line 2 is califormed
    EXPECT_TRUE(swap.isSwappedOut(page));
    EXPECT_EQ(swap.metadataBytes(), 8u); // 8B per 4KB page (Section 6.3)

    // While swapped out, the frame reads as zero.
    EXPECT_FALSE(memory.readLine(page + 2 * lineBytes).califormed);

    swap.swapIn(page);
    EXPECT_FALSE(swap.isSwappedOut(page));
    const BitVectorLine back =
        fillLine(memory.readLine(page + 2 * lineBytes));
    EXPECT_EQ(back.mask, cal.mask);
    EXPECT_EQ(back.data, cal.data);
    EXPECT_EQ(memory.readLine(page + 5 * lineBytes).raw[3], 0x77);
}

TEST(Swap, RejectsUnalignedAndDoubleOps)
{
    MainMemory memory;
    SwapManager swap(memory);
    EXPECT_THROW(swap.swapOut(0x10001), std::invalid_argument);
    swap.swapOut(0x20000);
    EXPECT_THROW(swap.swapOut(0x20000), std::logic_error);
    EXPECT_THROW(swap.swapIn(0x30000), std::logic_error);
}

TEST(Swap, MetadataWordPacksAllLines)
{
    MainMemory memory;
    const Addr page = 0x40000;
    // Caliform every even line.
    for (std::size_t i = 0; i < linesPerPage; i += 2) {
        BitVectorLine line;
        line.mask = 1ull << 1;
        memory.writeLine(page + i * lineBytes, spillLine(line));
    }
    SwapManager swap(memory);
    const std::uint64_t meta = swap.swapOut(page);
    EXPECT_EQ(meta, 0x5555555555555555ull);
    swap.swapIn(page);
    for (std::size_t i = 0; i < linesPerPage; ++i) {
        EXPECT_EQ(memory.readLine(page + i * lineBytes).califormed,
                  i % 2 == 0);
    }
}

TEST(MainMemoryTest, DefaultLinesAreZeroClean)
{
    MainMemory memory;
    const SentinelLine line = memory.readLine(0x1234540);
    EXPECT_FALSE(line.califormed);
    for (unsigned i = 0; i < lineBytes; ++i)
        EXPECT_EQ(line.raw[i], 0);
}

TEST(MainMemoryTest, CountsBackedAndCaliformedLines)
{
    MainMemory memory;
    memory.writeLine(0, SentinelLine{});
    SentinelLine cal;
    cal.califormed = true;
    memory.writeLine(64, cal);
    EXPECT_EQ(memory.backedLines(), 2u);
    EXPECT_EQ(memory.califormedLines(), 1u);
}

TEST(MainMemoryTest, RejectsUnaligned)
{
    MainMemory memory;
    EXPECT_THROW(memory.readLine(1), std::invalid_argument);
    EXPECT_THROW(memory.writeLine(63, SentinelLine{}),
                 std::invalid_argument);
}

} // namespace
} // namespace califorms
