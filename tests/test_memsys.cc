/**
 * @file test_memsys.cc
 * Memory hierarchy tests: functional correctness against a flat
 * reference model, spill/fill conversion at the L1/L2 boundary,
 * security byte fault semantics, whitelisting, CFORM variants, timing
 * monotonicity and the Figure 10 extra-latency knob.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/memsys.hh"
#include "util/rng.hh"

namespace califorms
{
namespace
{

/** A tiny hierarchy so evictions happen quickly in tests. */
MemSysParams
tinyParams()
{
    MemSysParams p;
    p.l1Size = 1024;
    p.l1Ways = 2;
    p.l2Size = 4096;
    p.l2Ways = 2;
    p.l3Size = 16384;
    p.l3Ways = 4;
    return p;
}

struct Harness
{
    ExceptionUnit exceptions;
    MemorySystem mem;

    explicit Harness(MemSysParams p = tinyParams())
        : exceptions(ExceptionUnit::Policy::Record), mem(p, exceptions)
    {}
};

TEST(MemSys, LoadOfUntouchedMemoryIsZero)
{
    Harness h;
    EXPECT_EQ(h.mem.load(0x1000, 8).value, 0u);
}

TEST(MemSys, StoreThenLoadRoundTrip)
{
    Harness h;
    h.mem.store(0x1000, 8, 0x1122334455667788ull);
    EXPECT_EQ(h.mem.load(0x1000, 8).value, 0x1122334455667788ull);
    EXPECT_EQ(h.mem.load(0x1004, 4).value, 0x11223344u);
    EXPECT_EQ(h.mem.load(0x1000, 1).value, 0x88u);
}

TEST(MemSys, LineCrossingAccess)
{
    Harness h;
    // 8B store at offset 60 spans two lines.
    h.mem.store(0x103c, 8, 0xaabbccdd00112233ull);
    EXPECT_EQ(h.mem.load(0x103c, 8).value, 0xaabbccdd00112233ull);
    EXPECT_EQ(h.mem.load(0x1040, 4).value, 0xaabbccddu);
}

TEST(MemSys, FunctionalMatchesTimedUnderEvictionPressure)
{
    // Write a footprint far larger than L3 and verify every value both
    // through the timed interface and the functional peek (write-back
    // correctness through all levels).
    Harness h;
    Rng rng(1);
    std::map<Addr, std::uint64_t> reference;
    for (int i = 0; i < 4000; ++i) {
        const Addr addr = 0x10000 + 8 * (rng.nextBelow(8192));
        const std::uint64_t v = rng.next();
        h.mem.store(addr, 8, v);
        reference[addr] = v;
    }
    for (const auto &[addr, v] : reference) {
        EXPECT_EQ(h.mem.load(addr, 8).value, v) << std::hex << addr;
    }
    for (const auto &[addr, v] : reference) {
        std::uint64_t peeked = 0;
        for (unsigned b = 0; b < 8; ++b)
            peeked |= static_cast<std::uint64_t>(h.mem.peekByte(addr + b))
                      << (8 * b);
        EXPECT_EQ(peeked, v);
    }
}

TEST(MemSys, FlushAllPushesEverythingToDram)
{
    Harness h;
    h.mem.store(0x2000, 8, 0xdeadbeefull);
    h.mem.flushAll();
    const SentinelLine line = h.mem.memory().readLine(0x2000);
    std::uint64_t v = 0;
    for (unsigned b = 0; b < 8; ++b)
        v |= static_cast<std::uint64_t>(line.raw[b]) << (8 * b);
    EXPECT_EQ(v, 0xdeadbeefull);
    // And the data is still loadable afterwards.
    EXPECT_EQ(h.mem.load(0x2000, 8).value, 0xdeadbeefull);
}

TEST(MemSys, CformSetsSecurityBytesAndTheySurviveEviction)
{
    Harness h;
    h.mem.store(0x3000, 8, 0x0807060504030201ull);
    CformOp op = makeSetOp(0x3000, 0xff00ull); // bytes 8..15
    EXPECT_FALSE(h.mem.cform(op).faulted);
    EXPECT_EQ(h.mem.securityMask(0x3000), 0xff00ull);

    // Evict through capacity pressure: write many conflicting lines.
    for (int i = 0; i < 4000; ++i)
        h.mem.store(0x100000 + 64 * i, 8, i);

    // Mask and data must survive the spill/fill round trips.
    EXPECT_EQ(h.mem.securityMask(0x3000), 0xff00ull);
    EXPECT_EQ(h.mem.load(0x3000, 8).value, 0x0807060504030201ull);
    EXPECT_GT(h.mem.stats().spills, 0u);
}

TEST(MemSys, CaliformedBitReachesDramEcc)
{
    Harness h;
    CformOp op = makeSetOp(0x4000, 0x1ull);
    h.mem.cform(op);
    h.mem.flushAll();
    EXPECT_TRUE(h.mem.memory().readLine(0x4000).califormed);
    // A clean line's ECC bit stays clear.
    h.mem.store(0x5000, 8, 1);
    h.mem.flushAll();
    EXPECT_FALSE(h.mem.memory().readLine(0x5000).califormed);
}

TEST(MemSys, LoadOfSecurityByteFaultsAndReturnsZero)
{
    Harness h;
    h.mem.store(0x3000, 8, ~0ull);
    h.mem.cform(makeSetOp(0x3000, 0x0full)); // bytes 0..3
    const auto res = h.mem.load(0x3000, 8);
    EXPECT_TRUE(res.faulted);
    // Security bytes read as the pre-determined zero (Section 5.1).
    EXPECT_EQ(res.value & 0xffffffffull, 0u);
    EXPECT_EQ(res.value >> 32, 0xffffffffull);
    ASSERT_EQ(h.exceptions.deliveredCount(), 1u);
    EXPECT_EQ(h.exceptions.delivered()[0].faultAddr, 0x3000u);
    EXPECT_EQ(h.exceptions.delivered()[0].reason,
              FaultReason::LoadSecurityByte);
}

TEST(MemSys, PreciseFaultAddressIsFirstSecurityByteTouched)
{
    Harness h;
    h.mem.cform(makeSetOp(0x3000, 0x30ull)); // bytes 4 and 5
    h.mem.load(0x3002, 8);                   // touches 2..9
    ASSERT_EQ(h.exceptions.deliveredCount(), 1u);
    EXPECT_EQ(h.exceptions.delivered()[0].faultAddr, 0x3004u);
}

TEST(MemSys, StoreToSecurityByteFaultsAndDoesNotCommit)
{
    Harness h;
    h.mem.cform(makeSetOp(0x3000, 0xffull));
    const auto res = h.mem.store(0x3000, 8, ~0ull);
    EXPECT_TRUE(res.faulted);
    ASSERT_EQ(h.exceptions.deliveredCount(), 1u);
    EXPECT_EQ(h.exceptions.delivered()[0].reason,
              FaultReason::StoreSecurityByte);
    // The store did not commit: bytes still zero, mask intact.
    EXPECT_EQ(h.mem.peekByte(0x3000), 0u);
    EXPECT_EQ(h.mem.securityMask(0x3000), 0xffull);
}

TEST(MemSys, WhitelistedStoreProceedsWithoutMetadataChange)
{
    Harness h;
    h.mem.cform(makeSetOp(0x3000, 0x02ull)); // byte 1
    {
        WhitelistGuard guard(h.exceptions);
        const auto res = h.mem.store(0x3000, 4, 0x04030201);
        EXPECT_TRUE(res.faulted); // recorded as suppressed
    }
    EXPECT_EQ(h.exceptions.deliveredCount(), 0u);
    EXPECT_EQ(h.exceptions.suppressedCount(), 1u);
    // Data bytes written; blacklist survives.
    EXPECT_EQ(h.mem.peekByte(0x3000), 0x01);
    EXPECT_EQ(h.mem.securityMask(0x3000), 0x02ull);
}

TEST(MemSys, CformSetOnSecurityByteFaults)
{
    Harness h;
    h.mem.cform(makeSetOp(0x3000, 0x1ull));
    const auto res = h.mem.cform(makeSetOp(0x3000, 0x1ull));
    EXPECT_TRUE(res.faulted);
    EXPECT_EQ(h.exceptions.delivered().back().reason,
              FaultReason::CformSetOnSecurity);
}

TEST(MemSys, CformUnsetRestoresAccess)
{
    Harness h;
    h.mem.cform(makeSetOp(0x3000, 0xf0ull));
    h.mem.cform(makeUnsetOp(0x3000, 0xf0ull));
    EXPECT_EQ(h.mem.securityMask(0x3000), 0u);
    const auto res = h.mem.load(0x3004, 4);
    EXPECT_FALSE(res.faulted);
    EXPECT_EQ(res.value, 0u); // zeroed by the blacklist/unblacklist cycle
}

TEST(MemSys, NonTemporalCformSkipsL1)
{
    Harness h;
    CformOp op = makeSetOp(0x6000, 0xffull);
    op.nonTemporal = true;
    EXPECT_FALSE(h.mem.cform(op).faulted);
    EXPECT_EQ(h.mem.securityMask(0x6000), 0xffull);
    // The line went to L2, not L1: a subsequent load misses in L1.
    const auto before = h.mem.stats().l1.misses;
    h.mem.load(0x6020, 4);
    EXPECT_EQ(h.mem.stats().l1.misses, before + 1);
}

TEST(MemSys, NonTemporalCformFaultChecksStillApply)
{
    Harness h;
    CformOp op = makeUnsetOp(0x6000, 0x1ull);
    op.nonTemporal = true;
    EXPECT_TRUE(h.mem.cform(op).faulted);
}

TEST(MemSysTiming, HitLatenciesFollowTable3)
{
    MemSysParams p; // full-size defaults
    ExceptionUnit ex;
    MemorySystem mem(p, ex);
    // First access: L1 miss, L2 miss, L3 miss -> DRAM.
    const auto miss = mem.load(0x1000, 8);
    EXPECT_EQ(miss.latency,
              p.l1Latency + p.l2Latency + p.l3Latency + p.dramLatency);
    // Second access: L1 hit.
    const auto hit = mem.load(0x1000, 8);
    EXPECT_EQ(hit.latency, p.l1Latency);
}

TEST(MemSysTiming, ExtraL2L3LatencyKnob)
{
    MemSysParams p;
    p.extraL2L3Latency = 1; // the Figure 10 configuration
    ExceptionUnit ex;
    MemorySystem mem(p, ex);
    const auto miss = mem.load(0x1000, 8);
    EXPECT_EQ(miss.latency, p.l1Latency + (p.l2Latency + 1) +
                                (p.l3Latency + 1) + p.dramLatency);
}

TEST(MemSysTiming, L2HitLatency)
{
    MemSysParams p = tinyParams();
    ExceptionUnit ex;
    MemorySystem mem(p, ex);
    mem.load(0x1000, 8); // now in L1+L2+L3
    // Evict from tiny L1 with a conflicting line (same set).
    mem.load(0x1000 + 1024, 8);
    mem.load(0x1000 + 2048, 8);
    const auto res = mem.load(0x1000, 8); // should hit in L2
    EXPECT_EQ(res.latency, p.l1Latency + p.l2Latency);
}

TEST(MemSys, StatsCountersAreConsistent)
{
    Harness h;
    for (int i = 0; i < 100; ++i)
        h.mem.load(0x8000 + 64 * i, 8);
    const auto stats = h.mem.stats();
    EXPECT_EQ(stats.l1.misses, 100u);
    EXPECT_EQ(stats.l2.misses, 100u);
    EXPECT_EQ(stats.dramAccesses, 100u);
    for (int i = 0; i < 100; ++i)
        h.mem.load(0x8000 + 64 * i, 8);
    // Tiny L1 (16 lines) cannot hold 100 lines; L2 (64 lines) cannot
    // either, but L3 (256 lines) holds them all.
    const auto stats2 = h.mem.stats();
    EXPECT_EQ(stats2.dramAccesses, 100u);
}

TEST(MemSys, PokePeekBypassChecks)
{
    Harness h;
    h.mem.cform(makeSetOp(0x9000, 0x1ull));
    h.mem.pokeByte(0x9000, 0x55); // backdoor write to a security byte
    EXPECT_EQ(h.mem.peekByte(0x9000), 0x55);
    EXPECT_EQ(h.exceptions.deliveredCount(), 0u);
    EXPECT_EQ(h.mem.securityMask(0x9000), 0x1ull);
}

TEST(MemSys, RejectsBadSizes)
{
    Harness h;
    EXPECT_THROW(h.mem.load(0, 0), std::invalid_argument);
    EXPECT_THROW(h.mem.load(0, 9), std::invalid_argument);
    EXPECT_THROW(h.mem.store(0, 16, 0), std::invalid_argument);
    EXPECT_THROW(h.mem.cform(makeSetOp(3, 1)), std::invalid_argument);
}

} // namespace
} // namespace califorms
