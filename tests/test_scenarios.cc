/**
 * @file test_scenarios.cc
 * Tests for the pluggable attack-scenario API: the registry and the
 * victim corpus, trial determinism, legacy-trio equivalence with the
 * raw AttackSimulator, the behavior of the four new PoCs (heapspray,
 * overflow, uaf, timing) with and without califorms protection, and
 * the campaign plumbing (the "attack" benchmark fills the security
 * counters and the v2 JSON report carries the gated security block).
 */

#include <gtest/gtest.h>

#include "exp/report.hh"
#include "security/attacks.hh"
#include "security/scenarios.hh"
#include "security/victims.hh"

namespace califorms
{
namespace
{

/** The default protected setup the CLI uses: full insertion, spans
 *  1..7, shared attacker/layout seed. */
AttackParams
quickParams(const std::string &scenario, std::uint64_t seeds = 3)
{
    AttackParams p;
    p.scenario = scenario;
    p.seeds = seeds;
    p.objects = 16;
    p.probeBudget = 10000;
    return p;
}

SecurityRunStats
runProtected(const std::string &scenario, std::uint64_t seed = 31337,
             std::size_t trials = 3)
{
    Machine machine;
    return runAttackTrials(machine, HeapParams{}, InsertionPolicy::Full,
                           PolicyParams{1, 7, 1}, seed,
                           quickParams(scenario), trials);
}

SecurityRunStats
runUnprotected(const std::string &scenario, std::uint64_t seed = 31337,
               std::size_t trials = 3)
{
    Machine machine;
    HeapParams hp;
    hp.guardBytes = 0; // no inter-object guards either
    return runAttackTrials(machine, hp, InsertionPolicy::None,
                           PolicyParams{}, seed, quickParams(scenario),
                           trials);
}

TEST(ScenarioRegistry, SevenScenariosInRegistrationOrder)
{
    const std::vector<std::string> expected{
        "scan", "probe", "brop", "heapspray", "overflow", "uaf",
        "timing"};
    EXPECT_EQ(attackScenarioNames(), expected);
    ASSERT_EQ(attackScenarios().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(attackScenarios()[i]->name(), expected[i]);
        EXPECT_NE(std::string(attackScenarios()[i]->summary()), "");
    }
}

TEST(ScenarioRegistry, LookupByNameAndUnknownListsCandidates)
{
    EXPECT_EQ(std::string(findAttackScenario("uaf").name()), "uaf");
    try {
        findAttackScenario("doom");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown attack scenario 'doom'"),
                  std::string::npos);
        EXPECT_NE(msg.find("scan probe brop heapspray overflow uaf "
                           "timing"),
                  std::string::npos);
    }
}

TEST(VictimCorpus, ThreeVictimsAndTargetIsLastField)
{
    const std::vector<std::string> expected{"session", "packet",
                                            "inode"};
    EXPECT_EQ(attackVictimNames(), expected);
    for (const auto &name : expected) {
        const StructDefPtr def = attackVictim(name);
        EXPECT_EQ(def->name(), name);
        EXPECT_GE(def->fields().size(), 4u);
        EXPECT_EQ(attackTargetField(*def), def->fields().size() - 1);
    }
    EXPECT_THROW(attackVictim("ghost"), std::invalid_argument);
}

TEST(ScenarioTrials, DeterministicAcrossIdenticalMachines)
{
    for (const auto &name : attackScenarioNames()) {
        const SecurityRunStats a = runProtected(name);
        const SecurityRunStats b = runProtected(name);
        EXPECT_EQ(a.scenario, name);
        EXPECT_EQ(a.trials, b.trials) << name;
        EXPECT_EQ(a.successes, b.successes) << name;
        EXPECT_EQ(a.detections, b.detections) << name;
        EXPECT_EQ(a.probes, b.probes) << name;
        EXPECT_EQ(a.bytesTouched, b.bytesTouched) << name;
        EXPECT_EQ(a.crashes, b.crashes) << name;
        EXPECT_EQ(a.detectionLatencyCycles, b.detectionLatencyCycles)
            << name;
    }
}

TEST(ScenarioTrials, ScanMatchesRawAttackSimulator)
{
    // The registered scenario is the legacy loop: same machine state,
    // same seed, same answer as driving AttackSimulator by hand.
    const StructDefPtr def = attackVictim("session");
    AttackParams params = quickParams("scan");

    Machine m1;
    HeapAllocator h1(m1);
    ScenarioContext c{m1,
                      h1,
                      HeapParams{},
                      *def,
                      attackTargetField(*def),
                      InsertionPolicy::Full,
                      PolicyParams{1, 7, 1},
                      31337,
                      31337,
                      params};
    const ScenarioTrial t = findAttackScenario("scan").run(c);

    Machine m2;
    HeapAllocator h2(m2);
    LayoutTransformer tr(InsertionPolicy::Full, PolicyParams{1, 7, 1},
                         31337);
    auto layout =
        std::make_shared<SecureLayout>(tr.transform(*def));
    const Addr base = h2.allocate(layout, params.objects);
    AttackSimulator attacker(m2, 31337);
    const ScanResult r =
        attacker.linearScan(base, params.objects * layout->size);

    EXPECT_EQ(t.detected, r.detected);
    EXPECT_EQ(t.bytesTouched, r.bytesScanned);
    EXPECT_EQ(t.success, !r.detected);
}

TEST(ScenarioTrials, ProbeMatchesRawAttackSimulator)
{
    const StructDefPtr def = attackVictim("session");
    AttackParams params = quickParams("probe");

    Machine m1;
    HeapAllocator h1(m1);
    ScenarioContext c{m1,
                      h1,
                      HeapParams{},
                      *def,
                      attackTargetField(*def),
                      InsertionPolicy::Full,
                      PolicyParams{1, 7, 1},
                      31337,
                      31337,
                      params};
    const ScenarioTrial t = findAttackScenario("probe").run(c);

    Machine m2;
    HeapAllocator h2(m2);
    LayoutTransformer tr(InsertionPolicy::Full, PolicyParams{1, 7, 1},
                         31337);
    auto layout =
        std::make_shared<SecureLayout>(tr.transform(*def));
    std::vector<Addr> objs;
    for (std::uint64_t i = 0; i < params.objects; ++i)
        objs.push_back(h2.allocate(layout));
    AttackSimulator attacker(m2, 31337);
    const ProbeResult r =
        attacker.randomProbes(objs, layout->size, params.probeBudget);

    EXPECT_EQ(t.detected, r.detected);
    EXPECT_EQ(t.probes, r.probes);
}

TEST(ScenarioTrials, BropMatchesRawAttackSimulator)
{
    const StructDefPtr def = attackVictim("session");
    AttackParams params = quickParams("brop");

    Machine m1;
    HeapAllocator h1(m1);
    ScenarioContext c{m1,
                      h1,
                      HeapParams{},
                      *def,
                      attackTargetField(*def),
                      InsertionPolicy::Full,
                      PolicyParams{1, 7, 1},
                      31337,
                      31337,
                      params};
    const ScenarioTrial t = findAttackScenario("brop").run(c);

    Machine m2;
    AttackSimulator attacker(m2, 31337);
    const BropResult r = attacker.bropAttack(
        *def, InsertionPolicy::Full, PolicyParams{1, 7, 1},
        attackTargetField(*def), params.crashBudget,
        params.bropRerandomize, HeapParams{});

    EXPECT_EQ(t.success, r.succeeded);
    EXPECT_EQ(t.crashes, r.crashes);
    EXPECT_EQ(t.probes, r.probes);
    EXPECT_EQ(t.detectionLatencyCycles, r.firstDetectionCycles);
}

TEST(HeapSpray, LandsSilentlyOnUnprotectedHeap)
{
    const SecurityRunStats r = runUnprotected("heapspray");
    EXPECT_EQ(r.successes, r.trials);
    EXPECT_EQ(r.detections, 0u);
    EXPECT_EQ(r.crashes, 0u);
}

TEST(HeapSpray, GuardsAndSpansConvertWinsIntoDetections)
{
    const SecurityRunStats r = runProtected("heapspray");
    EXPECT_EQ(r.successes, 0u);
    EXPECT_EQ(r.detections, r.trials);
    EXPECT_GT(r.crashes, 0u);
}

TEST(Overflow, LandsSilentlyOnUnprotectedHeap)
{
    const SecurityRunStats r = runUnprotected("overflow");
    EXPECT_EQ(r.successes, r.trials);
    EXPECT_EQ(r.detections, 0u);
}

TEST(Overflow, GuardBytesStopTheOverrun)
{
    // Even with no intra-object spans, the inter-object guards catch a
    // linear overrun before it reaches the neighbor's fields.
    Machine machine;
    const SecurityRunStats r = runAttackTrials(
        machine, HeapParams{}, InsertionPolicy::None, PolicyParams{},
        31337, quickParams("overflow"), 3);
    EXPECT_EQ(r.successes, 0u);
    EXPECT_EQ(r.detections, r.trials);
}

TEST(Uaf, QuarantineDrainHandsTheChunkToANewOwner)
{
    // Default quarantine (25% of peak): churn pushes the freed victim
    // chunk through quarantine into reuse, and the stale pointer then
    // reads another owner's live data undetected — but only after the
    // fully-blacklisted quarantine phase charged some crashes.
    const SecurityRunStats r = runProtected("uaf");
    EXPECT_EQ(r.successes, r.trials);
    EXPECT_GT(r.crashes, 0u);
}

TEST(Uaf, UnboundedQuarantineNeverRecycles)
{
    // quarantineFraction = 1: the quarantine can hold the entire peak
    // heap, the victim chunk is never recycled, and every stale probe
    // lands on blacklisted bytes.
    Machine machine;
    HeapParams hp;
    hp.quarantineFraction = 1.0;
    const SecurityRunStats r = runAttackTrials(
        machine, hp, InsertionPolicy::Full, PolicyParams{1, 7, 1},
        31337, quickParams("uaf"), 3);
    EXPECT_EQ(r.successes, 0u);
    EXPECT_EQ(r.detections, r.trials);
    EXPECT_GT(r.crashes, 0u);
}

TEST(Timing, FullPolicyGapsAreAllFatal)
{
    // Under full insertion every inter-field gap carries a span, so
    // whatever gap the side channel nominates, the probe trips.
    const SecurityRunStats r = runProtected("timing");
    EXPECT_EQ(r.successes, 0u);
    EXPECT_EQ(r.detections, r.trials);
}

TEST(Timing, NaturalPaddingGapIsFairGame)
{
    // The packet victim has alignment padding before its dispatch
    // pointer; with no insertion policy that gap holds no security
    // bytes and the probe lands silently.
    Machine machine;
    AttackParams params = quickParams("timing");
    params.victim = "packet";
    const SecurityRunStats r = runAttackTrials(
        machine, HeapParams{}, InsertionPolicy::None, PolicyParams{},
        31337, params, 3);
    EXPECT_EQ(r.successes, r.trials);
    EXPECT_EQ(r.detections, 0u);
}

TEST(AttackBenchmark, FillsSecurityCountersThroughTheRunner)
{
    RunConfig config;
    config.scale = 1.0;
    config.attack.seeds = 2;
    config.attack.scenario = "overflow";
    const RunResult r =
        runBenchmark(findBenchmark("attack"), config);
    EXPECT_EQ(r.security.scenario, "overflow");
    EXPECT_EQ(r.security.trials, 2u);
    EXPECT_GT(r.security.probes, 0u);
}

TEST(AttackBenchmark, IsAttackBenchmarkMatchesOnlyTheReplay)
{
    EXPECT_TRUE(isAttackBenchmark("attack"));
    EXPECT_FALSE(isAttackBenchmark("scan"));  // adversarial workload
    EXPECT_FALSE(isAttackBenchmark("bzip2"));
}

TEST(AttackBenchmark, V2ReportCarriesGatedSecurityBlock)
{
    exp::CampaignSpec spec;
    spec.name = "scenario_report";
    for (const auto &b : securitySuite())
        spec.suite.push_back(&b);
    spec.base.attack.seeds = 2;
    spec.variants = {exp::Variant("full", InsertionPolicy::Full, 7)};
    spec.variants[0].withSet("attack.scenario", "heapspray");
    const exp::CampaignResult result = exp::runCampaign(spec);

    const std::string v2 =
        exp::campaignJson(result, exp::ReportTiming{false});
    EXPECT_NE(v2.find("\"security\""), std::string::npos);
    EXPECT_NE(v2.find("\"scenario\": \"heapspray\""),
              std::string::npos);
    EXPECT_NE(v2.find("\"successProbability\""), std::string::npos);

    // V1 consumers never see the block.
    const std::string v1 = exp::campaignJson(
        result, exp::ReportTiming{false}, exp::ReportSchema::V1);
    EXPECT_EQ(v1.find("\"security\""), std::string::npos);
}

} // namespace
} // namespace califorms
