/**
 * @file test_attacks.cc
 * Tests for the Section 7.3 attack simulations: scan detection,
 * probe survival statistics, and the BROP respawn asymmetry (fixed
 * layout loses, re-randomized layout wins).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "security/attacks.hh"

namespace califorms
{
namespace
{

StructDefPtr
victimStruct()
{
    return std::make_shared<StructDef>(
        "victim",
        std::vector<Field>{{"id", Type::intType()},
                           {"buf", Type::array(Type::charType(), 24)},
                           {"fp", Type::functionPointer()}});
}

TEST(LinearScan, DetectsWithinFirstObject)
{
    Machine machine;
    HeapAllocator heap(machine);
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{}, 3);
    auto layout = std::make_shared<SecureLayout>(
        t.transform(*victimStruct()));
    const Addr obj = heap.allocate(layout);

    AttackSimulator attacker(machine, 1);
    const ScanResult r = attacker.linearScan(obj, layout->size);
    EXPECT_TRUE(r.detected);
    EXPECT_LT(r.bytesScanned, layout->size);
}

TEST(LinearScan, CleanRegionSurvives)
{
    Machine machine;
    HeapAllocator heap(machine);
    const Addr raw = heap.allocateRaw(256);
    AttackSimulator attacker(machine, 2);
    const ScanResult r = attacker.linearScan(raw, 256);
    EXPECT_FALSE(r.detected);
    EXPECT_EQ(r.bytesScanned, 256u);
}

TEST(RandomProbes, SurvivalTracksClosedForm)
{
    Machine machine;
    HeapAllocator heap(machine);
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{1, 3, 1}, 7);
    auto layout = std::make_shared<SecureLayout>(
        t.transform(*victimStruct()));
    std::vector<Addr> objs;
    for (int i = 0; i < 64; ++i)
        objs.push_back(heap.allocate(layout));
    const double density =
        static_cast<double>(layout->securityByteCount()) /
        static_cast<double>(layout->size);

    // Expected probes until detection for a geometric distribution.
    const double expected = 1.0 / density;
    double total = 0;
    const int trials = 300;
    for (int trial = 0; trial < trials; ++trial) {
        machine.exceptions().clearLogs();
        AttackSimulator attacker(machine,
                                 1000 + static_cast<unsigned>(trial));
        const ProbeResult r = attacker.randomProbes(objs, layout->size,
                                                    10000);
        EXPECT_TRUE(r.detected);
        total += static_cast<double>(r.probes);
    }
    const double mean_probes = total / trials;
    EXPECT_NEAR(mean_probes, expected, expected * 0.35);
}

TEST(Brop, FixedLayoutFallsQuickly)
{
    // Restart-after-crash with the same memory layout (the BROP
    // precondition): accumulated crash knowledge defeats the spans in
    // at most "security bytes before the target" crashes.
    Machine machine;
    AttackSimulator attacker(machine, 11);
    const auto def = victimStruct();
    const BropResult r = attacker.bropAttack(
        *def, InsertionPolicy::Full, PolicyParams{}, /*target=*/2,
        /*max_crashes=*/200, /*rerandomize=*/false);
    EXPECT_TRUE(r.succeeded);
    EXPECT_LE(r.crashes, 64u);
}

TEST(Brop, RerandomizedRespawnHolds)
{
    // The paper's mitigation: respawn with a different padding layout.
    // The attacker's crash knowledge is useless; the leading security
    // span always fires before the target field is reached.
    Machine machine;
    AttackSimulator attacker(machine, 12);
    const auto def = victimStruct();
    const BropResult r = attacker.bropAttack(
        *def, InsertionPolicy::Full, PolicyParams{}, /*target=*/2,
        /*max_crashes=*/200, /*rerandomize=*/true);
    EXPECT_FALSE(r.succeeded);
    EXPECT_GT(r.crashes, 200u - 1);
}

TEST(Brop, RerandomizationCostAsymmetry)
{
    // Head-to-head: the fixed-layout attack consumes strictly fewer
    // crashes than the re-randomized budget.
    Machine m1, m2;
    const auto def = victimStruct();
    AttackSimulator fixed(m1, 21);
    AttackSimulator moving(m2, 21);
    const auto fixed_r = fixed.bropAttack(*def, InsertionPolicy::Full,
                                          PolicyParams{}, 1, 500, false);
    const auto moving_r = moving.bropAttack(
        *def, InsertionPolicy::Full, PolicyParams{}, 1, 500, true);
    ASSERT_TRUE(fixed_r.succeeded);
    EXPECT_FALSE(moving_r.succeeded);
    EXPECT_LT(fixed_r.crashes, 40u);
}

TEST(Brop, IntelligentPolicyStillStopsTargetedOverflow)
{
    // With the intelligent policy the buf/fp boundary is fenced; the
    // attacker walking toward fp (field 2) crashes on the span.
    Machine machine;
    AttackSimulator attacker(machine, 31);
    const auto def = victimStruct();
    const BropResult r = attacker.bropAttack(
        *def, InsertionPolicy::Intelligent, PolicyParams{}, 2, 100,
        true);
    EXPECT_FALSE(r.succeeded);
}

TEST(Brop, UnprotectedVictimFallsImmediately)
{
    // Sanity: without any security bytes the attack needs no crashes.
    Machine machine;
    AttackSimulator attacker(machine, 41);
    const auto def = victimStruct();
    const BropResult r = attacker.bropAttack(
        *def, InsertionPolicy::None, PolicyParams{}, 2, 10, true);
    EXPECT_TRUE(r.succeeded);
    EXPECT_EQ(r.crashes, 0u);
}

// --- statistical pins for the legacy trio --------------------------------

TEST(ScanStat, DetectionCostScalesInverselyWithDensity)
{
    // Geometric pin: from a start the attacker does not control, the
    // scan survives only until the next security byte, so over many
    // random layouts and random starts the normalized detection cost
    // bytesScanned * density concentrates near the O(1) mean of the
    // geometric distribution the paper's Section 7.3 argument assumes.
    // (From the object base it would be degenerate: the full policy
    // plants a leading span, so bytes_scanned is 0.)
    double product_sum = 0;
    const int seeds = 50;
    for (int s = 0; s < seeds; ++s) {
        Machine machine;
        HeapAllocator heap(machine);
        LayoutTransformer t(InsertionPolicy::Full, PolicyParams{1, 7, 1},
                            100 + static_cast<std::uint64_t>(s));
        auto layout = std::make_shared<SecureLayout>(
            t.transform(*victimStruct()));
        const Addr base = heap.allocate(layout, 4);
        const std::size_t start =
            (static_cast<std::size_t>(s) * 13) % layout->size;
        AttackSimulator attacker(machine,
                                 500 + static_cast<unsigned>(s));
        const ScanResult r = attacker.linearScan(
            base + start, 4 * layout->size - start);
        ASSERT_TRUE(r.detected);
        const double density =
            static_cast<double>(layout->securityByteCount()) /
            static_cast<double>(layout->size);
        product_sum += static_cast<double>(r.bytesScanned) * density;
    }
    const double mean_product = product_sum / seeds;
    EXPECT_GT(mean_product, 0.2);
    EXPECT_LT(mean_product, 4.0);
}

TEST(ProbeStat, SurvivalMatchesClosedFormPower)
{
    // Each blind probe hits a security byte with probability P/N, so
    // surviving a budget of O probes has probability (1 - P/N)^O.
    Machine machine;
    HeapAllocator heap(machine);
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{1, 3, 1}, 7);
    auto layout = std::make_shared<SecureLayout>(
        t.transform(*victimStruct()));
    std::vector<Addr> objs;
    for (int i = 0; i < 64; ++i)
        objs.push_back(heap.allocate(layout));
    const double density =
        static_cast<double>(layout->securityByteCount()) /
        static_cast<double>(layout->size);

    const std::size_t budget = 6;
    const double expected = std::pow(1.0 - density, budget);
    int survived = 0;
    const int trials = 400;
    for (int trial = 0; trial < trials; ++trial) {
        machine.exceptions().clearLogs();
        AttackSimulator attacker(machine,
                                 2000 + static_cast<unsigned>(trial));
        const ProbeResult r =
            attacker.randomProbes(objs, layout->size, budget);
        survived += r.detected ? 0 : 1;
    }
    EXPECT_NEAR(static_cast<double>(survived) / trials, expected,
                0.08);
}

TEST(BropStat, RerandomizationCostSeparation)
{
    // The paper's quantitative claim: re-randomized respawns cost the
    // attacker an order of magnitude more crashes than a static
    // layout, which falls in at most sizeof(object) crashes.
    Machine m1, m2;
    const auto def = victimStruct();
    AttackSimulator fixed(m1, 77);
    AttackSimulator moving(m2, 77);
    const auto fixed_r = fixed.bropAttack(
        *def, InsertionPolicy::Full, PolicyParams{}, 2, 600, false);
    const auto moving_r = moving.bropAttack(
        *def, InsertionPolicy::Full, PolicyParams{}, 2, 600, true);
    ASSERT_TRUE(fixed_r.succeeded);
    EXPECT_FALSE(moving_r.succeeded);
    EXPECT_GT(fixed_r.crashes, 0u);
    EXPECT_GE(moving_r.crashes, 10 * fixed_r.crashes);
    // The detection-latency clock starts with the attack: the first
    // crash lands within a bounded number of one-byte store cycles.
    EXPECT_GT(fixed_r.firstDetectionCycles, 0u);
    EXPECT_GT(moving_r.firstDetectionCycles, 0u);
}

} // namespace
} // namespace califorms
