/**
 * @file test_attacks.cc
 * Tests for the Section 7.3 attack simulations: scan detection,
 * probe survival statistics, and the BROP respawn asymmetry (fixed
 * layout loses, re-randomized layout wins).
 */

#include <gtest/gtest.h>

#include "security/attacks.hh"

namespace califorms
{
namespace
{

StructDefPtr
victimStruct()
{
    return std::make_shared<StructDef>(
        "victim",
        std::vector<Field>{{"id", Type::intType()},
                           {"buf", Type::array(Type::charType(), 24)},
                           {"fp", Type::functionPointer()}});
}

TEST(LinearScan, DetectsWithinFirstObject)
{
    Machine machine;
    HeapAllocator heap(machine);
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{}, 3);
    auto layout = std::make_shared<SecureLayout>(
        t.transform(*victimStruct()));
    const Addr obj = heap.allocate(layout);

    AttackSimulator attacker(machine, 1);
    const ScanResult r = attacker.linearScan(obj, layout->size);
    EXPECT_TRUE(r.detected);
    EXPECT_LT(r.bytesScanned, layout->size);
}

TEST(LinearScan, CleanRegionSurvives)
{
    Machine machine;
    HeapAllocator heap(machine);
    const Addr raw = heap.allocateRaw(256);
    AttackSimulator attacker(machine, 2);
    const ScanResult r = attacker.linearScan(raw, 256);
    EXPECT_FALSE(r.detected);
    EXPECT_EQ(r.bytesScanned, 256u);
}

TEST(RandomProbes, SurvivalTracksClosedForm)
{
    Machine machine;
    HeapAllocator heap(machine);
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{1, 3, 1}, 7);
    auto layout = std::make_shared<SecureLayout>(
        t.transform(*victimStruct()));
    std::vector<Addr> objs;
    for (int i = 0; i < 64; ++i)
        objs.push_back(heap.allocate(layout));
    const double density =
        static_cast<double>(layout->securityByteCount()) /
        static_cast<double>(layout->size);

    // Expected probes until detection for a geometric distribution.
    const double expected = 1.0 / density;
    double total = 0;
    const int trials = 300;
    for (int trial = 0; trial < trials; ++trial) {
        machine.exceptions().clearLogs();
        AttackSimulator attacker(machine,
                                 1000 + static_cast<unsigned>(trial));
        const ProbeResult r = attacker.randomProbes(objs, layout->size,
                                                    10000);
        EXPECT_TRUE(r.detected);
        total += static_cast<double>(r.probes);
    }
    const double mean_probes = total / trials;
    EXPECT_NEAR(mean_probes, expected, expected * 0.35);
}

TEST(Brop, FixedLayoutFallsQuickly)
{
    // Restart-after-crash with the same memory layout (the BROP
    // precondition): accumulated crash knowledge defeats the spans in
    // at most "security bytes before the target" crashes.
    Machine machine;
    AttackSimulator attacker(machine, 11);
    const auto def = victimStruct();
    const BropResult r = attacker.bropAttack(
        *def, InsertionPolicy::Full, PolicyParams{}, /*target=*/2,
        /*max_crashes=*/200, /*rerandomize=*/false);
    EXPECT_TRUE(r.succeeded);
    EXPECT_LE(r.crashes, 64u);
}

TEST(Brop, RerandomizedRespawnHolds)
{
    // The paper's mitigation: respawn with a different padding layout.
    // The attacker's crash knowledge is useless; the leading security
    // span always fires before the target field is reached.
    Machine machine;
    AttackSimulator attacker(machine, 12);
    const auto def = victimStruct();
    const BropResult r = attacker.bropAttack(
        *def, InsertionPolicy::Full, PolicyParams{}, /*target=*/2,
        /*max_crashes=*/200, /*rerandomize=*/true);
    EXPECT_FALSE(r.succeeded);
    EXPECT_GT(r.crashes, 200u - 1);
}

TEST(Brop, RerandomizationCostAsymmetry)
{
    // Head-to-head: the fixed-layout attack consumes strictly fewer
    // crashes than the re-randomized budget.
    Machine m1, m2;
    const auto def = victimStruct();
    AttackSimulator fixed(m1, 21);
    AttackSimulator moving(m2, 21);
    const auto fixed_r = fixed.bropAttack(*def, InsertionPolicy::Full,
                                          PolicyParams{}, 1, 500, false);
    const auto moving_r = moving.bropAttack(
        *def, InsertionPolicy::Full, PolicyParams{}, 1, 500, true);
    ASSERT_TRUE(fixed_r.succeeded);
    EXPECT_FALSE(moving_r.succeeded);
    EXPECT_LT(fixed_r.crashes, 40u);
}

TEST(Brop, IntelligentPolicyStillStopsTargetedOverflow)
{
    // With the intelligent policy the buf/fp boundary is fenced; the
    // attacker walking toward fp (field 2) crashes on the span.
    Machine machine;
    AttackSimulator attacker(machine, 31);
    const auto def = victimStruct();
    const BropResult r = attacker.bropAttack(
        *def, InsertionPolicy::Intelligent, PolicyParams{}, 2, 100,
        true);
    EXPECT_FALSE(r.succeeded);
}

TEST(Brop, UnprotectedVictimFallsImmediately)
{
    // Sanity: without any security bytes the attack needs no crashes.
    Machine machine;
    AttackSimulator attacker(machine, 41);
    const auto def = victimStruct();
    const BropResult r = attacker.bropAttack(
        *def, InsertionPolicy::None, PolicyParams{}, 2, 10, true);
    EXPECT_TRUE(r.succeeded);
    EXPECT_EQ(r.crashes, 0u);
}

} // namespace
} // namespace califorms
