/**
 * @file test_sentinel.cc
 * Properties of the califorms-sentinel codec (Section 5.2, Algorithms
 * 1-2): sentinel existence, round-trip identity, format rules of
 * Figure 7, and the natural-format guarantee for clean lines.
 */

#include <gtest/gtest.h>

#include "core/sentinel.hh"
#include "util/rng.hh"

namespace califorms
{
namespace
{

/** A canonical random line with the given number of security bytes. */
BitVectorLine
randomLine(Rng &rng, unsigned security_bytes)
{
    BitVectorLine line;
    for (auto &b : line.data.bytes)
        b = static_cast<std::uint8_t>(rng.next() & 0xff);
    unsigned placed = 0;
    while (placed < security_bytes) {
        const unsigned i = static_cast<unsigned>(rng.nextBelow(lineBytes));
        if (!line.isSecurityByte(i)) {
            line.mask |= 1ull << i;
            ++placed;
        }
    }
    line.canonicalize();
    return line;
}

TEST(FindSentinel, NoneForCleanLine)
{
    BitVectorLine line;
    EXPECT_FALSE(findSentinel(line).has_value());
}

TEST(FindSentinel, ExistsForEveryCaliformedLine)
{
    Rng rng(1);
    for (unsigned count = 1; count <= 64; ++count) {
        for (int trial = 0; trial < 20; ++trial) {
            BitVectorLine line = randomLine(rng, count);
            auto sentinel = findSentinel(line);
            ASSERT_TRUE(sentinel.has_value());
            EXPECT_LT(*sentinel, 64);
            // No normal byte may share the sentinel's low 6 bits.
            for (unsigned i = 0; i < lineBytes; ++i) {
                if (!line.isSecurityByte(i)) {
                    EXPECT_NE(line.data[i] & 0x3f, *sentinel);
                }
            }
        }
    }
}

TEST(FindSentinel, AdversarialDenseValues)
{
    // Fill normal bytes with 63 distinct low-6 patterns; exactly one
    // pattern remains and must be found.
    BitVectorLine line;
    line.mask = 1ull << 10; // byte 10 is the security byte
    unsigned pattern = 0;
    for (unsigned i = 0; i < lineBytes; ++i) {
        if (i == 10)
            continue;
        if (pattern == 37) // hold out pattern 37
            ++pattern;
        line.data[i] = static_cast<std::uint8_t>(pattern++);
    }
    line.canonicalize();
    // Patterns used: 0..63 except 37 (and except whatever canonicalize
    // zeroed — byte 10 is security, not scanned).
    // Byte value 0 is used by byte 0, so the only free pattern is 37.
    auto sentinel = findSentinel(line);
    ASSERT_TRUE(sentinel.has_value());
    EXPECT_EQ(*sentinel, 37);
}

TEST(Spill, CleanLineKeepsNaturalFormat)
{
    Rng rng(2);
    BitVectorLine line = randomLine(rng, 0);
    const SentinelLine spilled = spillLine(line);
    EXPECT_FALSE(spilled.califormed);
    EXPECT_EQ(spilled.raw, line.data);
}

TEST(Spill, CaliformedBitIsOrOfMask)
{
    Rng rng(3);
    for (unsigned count : {0u, 1u, 2u, 5u, 64u}) {
        BitVectorLine line = randomLine(rng, count);
        EXPECT_EQ(spillLine(line).califormed, count > 0);
    }
}

TEST(Spill, HeaderEncodesCountCode)
{
    Rng rng(4);
    for (unsigned count = 1; count <= 8; ++count) {
        BitVectorLine line = randomLine(rng, count);
        const SentinelLine spilled = spillLine(line);
        const unsigned code = spilled.raw[0] & 0x3;
        EXPECT_EQ(code, count >= 4 ? 3u : count - 1);
    }
}

struct RoundTripParam
{
    unsigned securityBytes;
    std::uint64_t seed;
};

class SentinelRoundTrip
    : public ::testing::TestWithParam<RoundTripParam>
{
};

TEST_P(SentinelRoundTrip, FillInvertsSpill)
{
    Rng rng(GetParam().seed);
    for (int trial = 0; trial < 50; ++trial) {
        BitVectorLine line = randomLine(rng, GetParam().securityBytes);
        const BitVectorLine back = fillLine(spillLine(line));
        EXPECT_EQ(back.mask, line.mask);
        EXPECT_EQ(back.data, line.data);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSecurityByteCounts, SentinelRoundTrip,
    ::testing::Values(
        RoundTripParam{1, 11}, RoundTripParam{2, 12},
        RoundTripParam{3, 13}, RoundTripParam{4, 14},
        RoundTripParam{5, 15}, RoundTripParam{6, 16},
        RoundTripParam{7, 17}, RoundTripParam{8, 18},
        RoundTripParam{12, 19}, RoundTripParam{16, 20},
        RoundTripParam{24, 21}, RoundTripParam{32, 22},
        RoundTripParam{48, 23}, RoundTripParam{63, 24},
        RoundTripParam{64, 25}),
    [](const ::testing::TestParamInfo<RoundTripParam> &info) {
        return "sec" + std::to_string(info.param.securityBytes);
    });

TEST(SentinelRoundTripExhaustive, EverySingleSecurityBytePosition)
{
    Rng rng(30);
    for (unsigned pos = 0; pos < lineBytes; ++pos) {
        BitVectorLine line;
        for (auto &b : line.data.bytes)
            b = static_cast<std::uint8_t>(rng.next() & 0xff);
        line.mask = 1ull << pos;
        line.canonicalize();
        const BitVectorLine back = fillLine(spillLine(line));
        EXPECT_EQ(back.mask, line.mask) << "pos=" << pos;
        EXPECT_EQ(back.data, line.data) << "pos=" << pos;
    }
}

TEST(SentinelRoundTripExhaustive, EveryPairInHeaderRegion)
{
    // Security bytes inside the header region exercise the relocation
    // corner cases hardest.
    Rng rng(31);
    for (unsigned a = 0; a < 8; ++a) {
        for (unsigned b = a + 1; b < 8; ++b) {
            BitVectorLine line;
            for (auto &byte : line.data.bytes)
                byte = static_cast<std::uint8_t>(rng.next() & 0xff);
            line.mask = (1ull << a) | (1ull << b);
            line.canonicalize();
            const BitVectorLine back = fillLine(spillLine(line));
            EXPECT_EQ(back.mask, line.mask) << a << "," << b;
            EXPECT_EQ(back.data, line.data) << a << "," << b;
        }
    }
}

TEST(SentinelRoundTripExhaustive, DenseMasksAroundHeaderBoundary)
{
    // All masks over the first 6 bytes (63 combos) with random tails.
    Rng rng(32);
    for (std::uint64_t m = 1; m < 64; ++m) {
        BitVectorLine line;
        for (auto &byte : line.data.bytes)
            byte = static_cast<std::uint8_t>(rng.next() & 0xff);
        line.mask = m;
        line.canonicalize();
        const BitVectorLine back = fillLine(spillLine(line));
        EXPECT_EQ(back.mask, line.mask) << "mask=" << m;
        EXPECT_EQ(back.data, line.data) << "mask=" << m;
    }
}

TEST(DecodeMask, MatchesFillLine)
{
    Rng rng(33);
    for (unsigned count = 0; count <= 64; count += 3) {
        BitVectorLine line = randomLine(rng, count);
        const SentinelLine spilled = spillLine(line);
        EXPECT_EQ(decodeMask(spilled), fillLine(spilled).mask);
    }
}

TEST(DecodeMask, MemoFreeDecodeMatchesMemoAndOriginal)
{
    // The branch-free (SWAR) sentinel scan must agree with the
    // decode-once memo recorded by the spill side — and both with the
    // original mask — for every security byte count.
    Rng rng(35);
    for (unsigned count = 0; count <= 64; ++count) {
        BitVectorLine line = randomLine(rng, count);
        const SentinelLine spilled = spillLine(line);
        ASSERT_TRUE(spilled.maskCached);
        SentinelLine fresh = spilled;
        fresh.maskCached = false;
        EXPECT_EQ(decodeMask(fresh), decodeMask(spilled));
        EXPECT_EQ(decodeMask(fresh), line.mask);
        EXPECT_EQ(fillLine(fresh), fillLine(spilled));
    }
}

TEST(SentinelFormat, CriticalWordFirstHeaderInFirstFourBytes)
{
    // The security byte locations of a <=4-security-byte line must be
    // recoverable from the first four bytes alone (Section 5.2).
    Rng rng(34);
    for (unsigned count = 1; count <= 4; ++count) {
        BitVectorLine line = randomLine(rng, count);
        SentinelLine spilled = spillLine(line);
        SentinelLine truncated = spilled;
        // The copy no longer mirrors its raw bytes once corrupted, so
        // drop the decode-once memo to exercise the real header decode.
        truncated.maskCached = false;
        // Corrupt everything past byte 3; the mask must not change for
        // lines with <= 4 security bytes (no sentinel scan needed).
        if (count < 4 || popcount64(line.mask) == 4) {
            for (unsigned i = 4; i < lineBytes; ++i)
                truncated.raw[i] = 0xff;
            if ((spilled.raw[0] & 3) != 3) {
                EXPECT_EQ(decodeMask(truncated) & bitRange(0, 4),
                          decodeMask(spilled) & bitRange(0, 4));
            }
        }
    }
}

TEST(Spill, ZeroMaskRoundTripsThroughNonCaliformedPath)
{
    BitVectorLine line;
    for (unsigned i = 0; i < lineBytes; ++i)
        line.data[i] = static_cast<std::uint8_t>(i * 3 + 1);
    const SentinelLine spilled = spillLine(line);
    EXPECT_FALSE(spilled.califormed);
    const BitVectorLine back = fillLine(spilled);
    EXPECT_EQ(back.data, line.data);
    EXPECT_EQ(back.mask, 0u);
}

TEST(Fill, SecurityBytesReadAsZero)
{
    Rng rng(35);
    BitVectorLine line = randomLine(rng, 9);
    const BitVectorLine back = fillLine(spillLine(line));
    for (unsigned i = 0; i < lineBytes; ++i) {
        if (back.isSecurityByte(i)) {
            EXPECT_EQ(back.data[i], 0);
        }
    }
    EXPECT_TRUE(back.canonical());
}

} // namespace
} // namespace califorms
