/**
 * @file test_simd.cc
 * Appendix B wide-load policy tests: alignment rules, precise vs line
 * exception vs mask propagation semantics, and zero-masking of
 * blacklisted lanes.
 */

#include <gtest/gtest.h>

#include "sim/memsys.hh"

namespace califorms
{
namespace
{

struct Harness
{
    ExceptionUnit exceptions;
    MemorySystem mem;

    Harness() : exceptions(), mem(MemSysParams{}, exceptions) {}
};

using Policy = MemorySystem::SimdPolicy;

TEST(WideLoad, RejectsBadSizeAndAlignment)
{
    Harness h;
    EXPECT_THROW(h.mem.wideLoad(0, 24, Policy::PreciseGather),
                 std::invalid_argument);
    EXPECT_THROW(h.mem.wideLoad(8, 16, Policy::PreciseGather),
                 std::invalid_argument);
    EXPECT_THROW(h.mem.wideLoad(32, 64, Policy::PreciseGather),
                 std::invalid_argument);
}

TEST(WideLoad, CleanRangeNoFaultAnyPolicy)
{
    for (auto policy : {Policy::PreciseGather, Policy::LineException,
                        Policy::PropagateMask}) {
        Harness h;
        h.mem.store(0x1000, 8, 42);
        const auto r = h.mem.wideLoad(0x1000, 64, policy);
        EXPECT_FALSE(r.faulted);
        EXPECT_EQ(r.registerMask, 0u);
        EXPECT_EQ(h.exceptions.deliveredCount(), 0u);
    }
}

TEST(WideLoad, PreciseGatherFaultsOnOverlapOnly)
{
    Harness h;
    h.mem.cform(makeSetOp(0x1000, 1ull << 20));
    // A 16B vector not touching byte 20: clean.
    auto r = h.mem.wideLoad(0x1000, 16, Policy::PreciseGather);
    EXPECT_FALSE(r.faulted);
    // A 16B vector covering byte 20: faults precisely.
    r = h.mem.wideLoad(0x1010, 16, Policy::PreciseGather);
    EXPECT_TRUE(r.faulted);
    ASSERT_EQ(h.exceptions.deliveredCount(), 1u);
    EXPECT_EQ(h.exceptions.delivered()[0].faultAddr, 0x1014u);
}

TEST(WideLoad, PreciseGatherCostsLaneMicroOps)
{
    Harness h;
    h.mem.load(0x1000, 8); // warm the line
    const auto gather =
        h.mem.wideLoad(0x1000, 64, Policy::PreciseGather);
    Harness h2;
    h2.mem.load(0x1000, 8);
    const auto wide =
        h2.mem.wideLoad(0x1000, 64, Policy::LineException);
    EXPECT_EQ(gather.latency, wide.latency + 8); // one per 8B lane
}

TEST(WideLoad, LineExceptionFaultsOnAnySecurityByteInRange)
{
    Harness h;
    h.mem.cform(makeSetOp(0x1000, 1ull << 3));
    const auto r = h.mem.wideLoad(0x1000, 64, Policy::LineException);
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(h.exceptions.deliveredCount(), 1u);
}

TEST(WideLoad, PropagateMaskDefersException)
{
    Harness h;
    h.mem.cform(makeSetOp(0x1000, 0xf0ull)); // bytes 4..7
    const auto r = h.mem.wideLoad(0x1000, 16, Policy::PropagateMask);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(h.exceptions.deliveredCount(), 0u);
    // Poison bits are relative to the vector's own bytes.
    EXPECT_EQ(r.registerMask, 0xf0ull);
}

TEST(WideLoad, PropagateMaskOffsetWithinLine)
{
    Harness h;
    h.mem.cform(makeSetOp(0x1000, 1ull << 33));
    const auto r = h.mem.wideLoad(0x1020, 32, Policy::PropagateMask);
    EXPECT_EQ(r.registerMask, 1ull << 1); // byte 33 = vector byte 1
}

TEST(WideLoad, BlacklistedLanesReadZero)
{
    Harness h;
    h.mem.store(0x1000, 8, ~0ull);
    h.mem.cform(makeSetOp(0x1000, 0x0full));
    // The data under security bytes is zero regardless of policy.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(h.mem.peekByte(0x1000 + i), 0u);
}

} // namespace
} // namespace califorms
