/**
 * @file test_cache_array.cc
 * Tests for the set-associative cache array: geometry, LRU replacement,
 * dirty tracking, eviction reporting, and the in-place overwrite rules.
 */

#include <gtest/gtest.h>

#include "core/line.hh"
#include "sim/cache_array.hh"

namespace califorms
{
namespace
{

using IntCache = CacheArray<int>;

TEST(CacheArrayGeometry, SetsAndWays)
{
    IntCache c(32 * 1024, 8);
    EXPECT_EQ(c.ways(), 8u);
    EXPECT_EQ(c.sets(), 64u);
    EXPECT_THROW(IntCache(0, 8), std::invalid_argument);
    EXPECT_THROW(IntCache(32 * 1024, 0), std::invalid_argument);
    EXPECT_THROW(IntCache(100, 3), std::invalid_argument);
}

TEST(CacheArray, MissThenHit)
{
    IntCache c(4096, 4);
    EXPECT_EQ(c.access(0, false), nullptr);
    EXPECT_EQ(c.stats().misses, 1u);
    c.insert(0, 42, false);
    int *v = c.access(0, false);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 42);
    EXPECT_EQ(c.stats().hits, 1u);
}

TEST(CacheArray, LruEvictsLeastRecentlyUsed)
{
    // 2-way cache; three lines mapping to the same set.
    IntCache c(2 * 64, 2); // 1 set, 2 ways
    c.insert(0 * 64, 10, false);
    c.insert(1 * 64, 11, false);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_NE(c.access(0, false), nullptr);
    const auto ev = c.insert(2 * 64, 12, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 1u * 64);
    EXPECT_EQ(ev.line, 11);
    EXPECT_NE(c.peek(0), nullptr);
    EXPECT_NE(c.peek(2 * 64), nullptr);
    EXPECT_EQ(c.peek(1 * 64), nullptr);
}

TEST(CacheArray, DirtyEvictionReported)
{
    IntCache c(2 * 64, 2);
    c.insert(0, 1, true);
    c.insert(64, 2, false);
    const auto ev = c.insert(128, 3, false); // evicts line 0 (LRU, dirty)
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
}

TEST(CacheArray, InPlaceOverwriteMergesDirty)
{
    IntCache c(4096, 4);
    c.insert(0, 1, true);
    const auto ev = c.insert(0, 2, false); // overwrite, clean insert
    EXPECT_FALSE(ev.valid);               // nothing evicted
    c.insert(64, 9, false);
    int out;
    bool dirty;
    ASSERT_TRUE(c.extract(0, out, dirty));
    EXPECT_EQ(out, 2);
    EXPECT_TRUE(dirty); // dirty bit survives the clean overwrite
}

TEST(CacheArray, MarkDirty)
{
    IntCache c(4096, 4);
    c.insert(0, 5, false);
    c.markDirty(0);
    int out;
    bool dirty;
    ASSERT_TRUE(c.extract(0, out, dirty));
    EXPECT_TRUE(dirty);
}

TEST(CacheArray, ExtractRemovesLine)
{
    IntCache c(4096, 4);
    c.insert(0, 5, false);
    int out;
    bool dirty;
    EXPECT_TRUE(c.extract(0, out, dirty));
    EXPECT_EQ(c.peek(0), nullptr);
    EXPECT_FALSE(c.extract(0, out, dirty));
}

TEST(CacheArray, PeekDoesNotTouchStatsOrLru)
{
    IntCache c(2 * 64, 2);
    c.insert(0, 1, false);
    c.insert(64, 2, false);
    // Peek line 0 (would refresh LRU if it were an access).
    EXPECT_NE(c.peek(0), nullptr);
    EXPECT_EQ(c.stats().hits, 0u);
    // Line 0 is still LRU, so it gets evicted.
    const auto ev = c.insert(128, 3, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0u);
}

TEST(CacheArray, ForEachLineVisitsAllValid)
{
    IntCache c(4096, 4);
    c.insert(0, 1, false);
    c.insert(64, 2, true);
    c.insert(4096, 3, false);
    int visited = 0;
    int dirty_count = 0;
    c.forEachLine([&](Addr, int &, bool dirty) {
        ++visited;
        dirty_count += dirty;
    });
    EXPECT_EQ(visited, 3);
    EXPECT_EQ(dirty_count, 1);
}

TEST(CacheArray, ResetDropsEverything)
{
    IntCache c(4096, 4);
    c.insert(0, 1, true);
    c.reset();
    EXPECT_EQ(c.peek(0), nullptr);
}

TEST(CacheArray, DistinctSetsDoNotConflict)
{
    IntCache c(4 * 64, 2); // 2 sets
    // Lines 0 and 64 map to different sets; fill both sets fully.
    c.insert(0 * 64, 0, false);
    c.insert(2 * 64, 2, false);
    c.insert(1 * 64, 1, false);
    c.insert(3 * 64, 3, false);
    EXPECT_NE(c.peek(0), nullptr);
    EXPECT_NE(c.peek(64), nullptr);
    EXPECT_NE(c.peek(128), nullptr);
    EXPECT_NE(c.peek(192), nullptr);
}

TEST(CacheArray, HoldsLinePayloads)
{
    CacheArray<BitVectorLine> c(4096, 4);
    BitVectorLine line;
    line.mask = 0xf0;
    line.data[0] = 7;
    c.insert(0x40, line, true);
    const BitVectorLine *got = c.peek(0x40);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->mask, 0xf0u);
    EXPECT_EQ(got->data[0], 7);
}

TEST(CacheStatsTest, MissRate)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.missRate(), 0.0);
    s.hits = 3;
    s.misses = 1;
    EXPECT_DOUBLE_EQ(s.missRate(), 0.25);
}

} // namespace
} // namespace califorms
