/**
 * @file test_memsys_fuzz.cc
 * Differential fuzzing of the memory hierarchy against a flat
 * reference model. Random interleavings of loads, stores, CFORMs,
 * flushes and swaps must always agree with an oracle that tracks data
 * bytes and security masks directly — regardless of cache pressure,
 * eviction order, or conversion round trips.
 */

#include <gtest/gtest.h>

#include <map>

#include "os/swap.hh"
#include "sim/memsys.hh"
#include "util/rng.hh"

namespace califorms
{
namespace
{

/** Byte-exact oracle: plain maps of data and blacklist state. */
struct Oracle
{
    std::map<Addr, std::uint8_t> data;
    std::map<Addr, bool> security;

    std::uint8_t
    byteAt(Addr a) const
    {
        auto it = data.find(a);
        return it == data.end() ? 0 : it->second;
    }

    bool
    isSecurity(Addr a) const
    {
        auto it = security.find(a);
        return it != security.end() && it->second;
    }
};

struct FuzzParam
{
    std::uint64_t seed;
    std::size_t l1Size;
    std::size_t l2Size;
    std::size_t l3Size;
};

class MemSysFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(MemSysFuzz, AgreesWithOracle)
{
    const FuzzParam param = GetParam();
    MemSysParams p;
    p.l1Size = param.l1Size;
    p.l1Ways = 2;
    p.l2Size = param.l2Size;
    p.l2Ways = 2;
    p.l3Size = param.l3Size;
    p.l3Ways = 4;

    ExceptionUnit exceptions;
    MemorySystem mem(p, exceptions);
    Oracle oracle;
    Rng rng(param.seed);

    // A small footprint so lines get revisited across evictions.
    const Addr base = 0x40000;
    const std::size_t lines = 96;

    for (int step = 0; step < 6000; ++step) {
        const Addr la = base + lineBytes * rng.nextBelow(lines);
        switch (rng.nextBelow(20)) {
        case 0:
        case 1:
        case 2: { // CFORM toggle of a random byte group
            const std::uint64_t bits = rng.next() & rng.next();
            std::uint64_t to_set = 0, to_unset = 0;
            for (unsigned i = 0; i < lineBytes; ++i) {
                if (!testBit(bits, i))
                    continue;
                if (oracle.isSecurity(la + i))
                    to_unset |= 1ull << i;
                else
                    to_set |= 1ull << i;
            }
            CformOp op;
            op.lineAddr = la;
            op.setBits = to_set;
            op.mask = to_set | to_unset;
            op.nonTemporal = rng.chance(0.2);
            const auto res = mem.cform(op);
            ASSERT_FALSE(res.faulted);
            for (unsigned i = 0; i < lineBytes; ++i) {
                if (testBit(to_set, i)) {
                    oracle.security[la + i] = true;
                    oracle.data[la + i] = 0;
                }
                if (testBit(to_unset, i)) {
                    oracle.security[la + i] = false;
                    oracle.data[la + i] = 0;
                }
            }
            break;
          }
        case 3: // flush everything
            mem.flushAll();
            break;
        default: {
            const unsigned size =
                1u << rng.nextBelow(4); // 1,2,4,8
            const unsigned off = static_cast<unsigned>(
                rng.nextBelow(lineBytes - size + 1));
            const Addr addr = la + off;
            if (rng.chance(0.5)) { // store
                const std::uint64_t value = rng.next();
                bool any_security = false;
                for (unsigned i = 0; i < size; ++i)
                    any_security |= oracle.isSecurity(addr + i);
                const auto res = mem.store(addr, size, value);
                EXPECT_EQ(res.faulted, any_security);
                if (!any_security) {
                    for (unsigned i = 0; i < size; ++i)
                        oracle.data[addr + i] =
                            static_cast<std::uint8_t>(
                                (value >> (8 * i)) & 0xff);
                }
            } else { // load
                std::uint64_t expect = 0;
                bool any_security = false;
                for (unsigned i = 0; i < size; ++i) {
                    any_security |= oracle.isSecurity(addr + i);
                    expect |= static_cast<std::uint64_t>(
                                  oracle.byteAt(addr + i))
                              << (8 * i);
                }
                const auto res = mem.load(addr, size);
                EXPECT_EQ(res.faulted, any_security);
                EXPECT_EQ(res.value, expect)
                    << "addr=" << std::hex << addr << " size=" << size;
            }
            break;
          }
        }
    }

    // Final sweep: every byte and every mask bit must agree.
    for (std::size_t l = 0; l < lines; ++l) {
        const Addr la = base + l * lineBytes;
        const SecurityMask mask = mem.securityMask(la);
        for (unsigned i = 0; i < lineBytes; ++i) {
            EXPECT_EQ(testBit(mask, i), oracle.isSecurity(la + i))
                << std::hex << la + i;
            EXPECT_EQ(mem.peekByte(la + i), oracle.byteAt(la + i))
                << std::hex << la + i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndGeometries, MemSysFuzz,
    ::testing::Values(FuzzParam{1, 1024, 4096, 16384},
                      FuzzParam{2, 1024, 4096, 16384},
                      FuzzParam{3, 512, 2048, 8192},
                      FuzzParam{4, 2048, 8192, 32768},
                      FuzzParam{5, 512, 4096, 32768},
                      FuzzParam{6, 1024, 2048, 8192}),
    [](const ::testing::TestParamInfo<FuzzParam> &info) {
        return "seed" + std::to_string(info.param.seed) + "_l1_" +
               std::to_string(info.param.l1Size);
    });

TEST(MemSysSwapFuzz, SwapRoundTripUnderRandomState)
{
    // Randomly califormed pages must survive swap out / swap in with
    // data and metadata intact.
    MemSysParams p;
    p.l1Size = 1024;
    p.l1Ways = 2;
    p.l2Size = 4096;
    p.l2Ways = 2;
    p.l3Size = 16384;
    p.l3Ways = 4;
    ExceptionUnit ex;
    MemorySystem mem(p, ex);
    Rng rng(99);

    const Addr page = 0x100000;
    std::map<Addr, std::uint8_t> data;
    std::map<Addr, bool> security;
    for (int i = 0; i < 800; ++i) {
        const Addr a = page + rng.nextBelow(pageBytes);
        if (rng.chance(0.3)) {
            if (!security[lineBase(a) + lineOffset(a)]) {
                mem.cform(makeSetOp(lineBase(a),
                                    1ull << lineOffset(a)));
                security[a] = true;
                data[a] = 0;
            }
        } else if (!security[a]) {
            const auto v = static_cast<std::uint8_t>(rng.next());
            mem.store(a, 1, v);
            data[a] = v;
        }
    }

    mem.flushAll();
    SwapManager swap(mem.memory());
    swap.swapOut(page);
    swap.swapIn(page);

    for (const auto &[a, v] : data)
        EXPECT_EQ(mem.peekByte(a), v) << std::hex << a;
    for (const auto &[a, s] : security)
        EXPECT_EQ(static_cast<bool>(mem.securityMask(a) &
                                    (1ull << lineOffset(a))),
                  s)
            << std::hex << a;
}

} // namespace
} // namespace califorms
