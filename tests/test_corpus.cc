/**
 * @file test_corpus.cc
 * Tests for the synthetic struct corpora: the realized padded fraction
 * must match the paper's Figure 3 statistics (45.7% SPEC, 41.0% V8) and
 * the generator must be deterministic and well formed.
 */

#include <gtest/gtest.h>

#include "layout/corpus.hh"
#include "layout/density.hh"

namespace califorms
{
namespace
{

TEST(Corpus, SpecPaddedFractionMatchesFigure3)
{
    const auto corpus = generateCorpus(specCorpusParams(), 42);
    const DensityReport report = analyzeDensity(corpus);
    EXPECT_EQ(report.structCount, 2000u);
    // The generator hits the target exactly by construction.
    EXPECT_NEAR(report.paddedFraction(), 0.457, 0.001);
}

TEST(Corpus, V8PaddedFractionMatchesFigure3)
{
    const auto corpus = generateCorpus(v8CorpusParams(), 42);
    const DensityReport report = analyzeDensity(corpus);
    EXPECT_NEAR(report.paddedFraction(), 0.410, 0.001);
}

TEST(Corpus, DeterministicInSeed)
{
    const auto a = generateCorpus(specCorpusParams(), 7);
    const auto b = generateCorpus(specCorpusParams(), 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i]->name(), b[i]->name());
        EXPECT_EQ(a[i]->size(), b[i]->size());
        EXPECT_EQ(a[i]->layout().paddingBytes(),
                  b[i]->layout().paddingBytes());
    }
}

TEST(Corpus, DifferentSeedsDiffer)
{
    const auto a = generateCorpus(specCorpusParams(), 1);
    const auto b = generateCorpus(specCorpusParams(), 2);
    bool differs = false;
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i]->size() != b[i]->size();
    EXPECT_TRUE(differs);
}

TEST(Corpus, AllStructsWellFormed)
{
    const auto corpus = generateCorpus(specCorpusParams(), 3);
    for (const auto &def : corpus) {
        ASSERT_TRUE(def);
        EXPECT_FALSE(def->fields().empty());
        EXPECT_GT(def->size(), 0u);
        EXPECT_GE(def->align(), 1u);
        EXPECT_EQ(def->size() % def->align(), 0u);
        EXPECT_GT(def->layout().density(), 0.0);
        EXPECT_LE(def->layout().density(), 1.0);
    }
}

TEST(Corpus, HistogramPeaksAtDensityOne)
{
    // Figure 3: the tallest bar is the rightmost (density 0.9-1.0) bin.
    const auto corpus = generateCorpus(specCorpusParams(), 4);
    const DensityReport report = analyzeDensity(corpus);
    const std::size_t last = report.histogram.bins() - 1;
    for (std::size_t i = 0; i < last; ++i)
        EXPECT_LE(report.histogram.binCount(i),
                  report.histogram.binCount(last));
}

TEST(Corpus, V8IsMorePointerHeavy)
{
    // More pointer fields means more 8B-aligned fields: sanity check
    // the preset knobs themselves.
    EXPECT_GT(v8CorpusParams().pointerWeight,
              specCorpusParams().pointerWeight);
}

TEST(Corpus, CustomParamsRespected)
{
    CorpusParams params;
    params.structCount = 100;
    params.packedFraction = 0.5;
    const auto corpus = generateCorpus(params, 9);
    EXPECT_EQ(corpus.size(), 100u);
    const DensityReport report = analyzeDensity(corpus);
    EXPECT_NEAR(report.paddedFraction(), 0.5, 0.005);
}

} // namespace
} // namespace califorms
