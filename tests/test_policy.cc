/**
 * @file test_policy.cc
 * Tests for the security byte insertion policies (Section 2 / Listing 1
 * / Section 6.2): opportunistic harvesting, full and intelligent random
 * insertion, the fixed-size variant for Figure 4, and the structural
 * invariants every policy must preserve.
 */

#include <gtest/gtest.h>

#include "layout/policy.hh"
#include "util/types.hh"

namespace califorms
{
namespace
{

StructDefPtr
listingOneStruct()
{
    return std::make_shared<StructDef>(
        "A", std::vector<Field>{{"c", Type::charType()},
                                {"i", Type::intType()},
                                {"buf", Type::array(Type::charType(), 64)},
                                {"fp", Type::functionPointer()},
                                {"d", Type::doubleType()}});
}

/** Check the invariants every secure layout must satisfy. */
void
checkStructuralInvariants(const StructDef &def, const SecureLayout &sl)
{
    // Field order and sizes preserved.
    ASSERT_EQ(sl.fields.size(), def.fields().size());
    for (std::size_t i = 0; i < sl.fields.size(); ++i) {
        EXPECT_EQ(sl.fields[i].index, i);
        EXPECT_EQ(sl.fields[i].size, def.fields()[i].type->size());
        EXPECT_EQ(sl.fields[i].offset % def.fields()[i].type->align(),
                  0u);
        if (i > 0) {
            EXPECT_GE(sl.fields[i].offset,
                      sl.fields[i - 1].offset + sl.fields[i - 1].size);
        }
    }
    // Security spans never overlap fields.
    const auto mask = sl.byteMask();
    for (const auto &f : sl.fields)
        for (std::size_t b = f.offset; b < f.offset + f.size; ++b)
            EXPECT_FALSE(mask[b]) << "security byte inside field at " << b;
    // Spans are in range.
    for (const auto &s : sl.securityBytes)
        EXPECT_LE(s.offset + s.size, sl.size);
    // Size is a multiple of alignment.
    EXPECT_EQ(sl.size % sl.align, 0u);
}

TEST(NonePolicy, IdentityLayout)
{
    auto def = listingOneStruct();
    LayoutTransformer t(InsertionPolicy::None, {}, 1);
    const SecureLayout sl = t.transform(*def);
    EXPECT_EQ(sl.size, def->size());
    EXPECT_TRUE(sl.securityBytes.empty());
    checkStructuralInvariants(*def, sl);
}

TEST(OpportunisticPolicy, HarvestsExistingPaddingOnly)
{
    auto def = listingOneStruct();
    LayoutTransformer t(InsertionPolicy::Opportunistic, {}, 1);
    const SecureLayout sl = t.transform(*def);
    // sizeof unchanged — ABI compatible (Section 6.2).
    EXPECT_EQ(sl.size, def->size());
    // Field offsets unchanged.
    for (std::size_t i = 0; i < sl.fields.size(); ++i)
        EXPECT_EQ(sl.fields[i].offset, def->layout().fields[i].offset);
    // Exactly the compiler padding becomes security bytes: 3B after c.
    EXPECT_EQ(sl.securityByteCount(), 3u);
    EXPECT_TRUE(sl.isSecurityByte(1));
    EXPECT_TRUE(sl.isSecurityByte(3));
    EXPECT_FALSE(sl.isSecurityByte(0));
    EXPECT_FALSE(sl.isSecurityByte(4));
    checkStructuralInvariants(*def, sl);
}

TEST(OpportunisticPolicy, PackedStructGetsNothing)
{
    StructDef packed("p", {{"a", Type::longType()},
                           {"b", Type::longType()}});
    LayoutTransformer t(InsertionPolicy::Opportunistic, {}, 1);
    EXPECT_EQ(t.transform(packed).securityByteCount(), 0u);
}

TEST(FullPolicy, EveryGapProtected)
{
    auto def = listingOneStruct();
    PolicyParams params;
    params.minSpan = 1;
    params.maxSpan = 7;
    LayoutTransformer t(InsertionPolicy::Full, params, 99);
    const SecureLayout sl = t.transform(*def);
    checkStructuralInvariants(*def, sl);
    EXPECT_GT(sl.size, def->size());
    // A span before the first field, after the last field, and between
    // every adjacent pair: first field cannot sit at offset 0.
    EXPECT_GT(sl.fields[0].offset, 0u);
    const auto mask = sl.byteMask();
    EXPECT_TRUE(mask[sl.size - 1] || mask[sl.size - 2]);
    for (std::size_t i = 1; i < sl.fields.size(); ++i) {
        bool gap_protected = false;
        for (std::size_t b = sl.fields[i - 1].offset +
                             sl.fields[i - 1].size;
             b < sl.fields[i].offset; ++b)
            gap_protected |= mask[b];
        EXPECT_TRUE(gap_protected) << "gap before field " << i;
    }
}

TEST(FullPolicy, RandomSpansWithinBounds)
{
    StructDef two("two", {{"a", Type::longType()},
                          {"b", Type::longType()}});
    PolicyParams params;
    params.minSpan = 2;
    params.maxSpan = 5;
    LayoutTransformer t(InsertionPolicy::Full, params, 5);
    for (int trial = 0; trial < 50; ++trial) {
        const SecureLayout sl = t.transform(two);
        // Both fields are 8-aligned, so spans round to 8; the requested
        // span is 2..5 and alignment slack is absorbed into the span.
        for (const auto &s : sl.securityBytes) {
            EXPECT_GE(s.size, params.minSpan);
            EXPECT_LE(s.size, roundUp(params.maxSpan, 8));
        }
    }
}

TEST(FullPolicy, DifferentSeedsGiveDifferentLayouts)
{
    auto def = listingOneStruct();
    PolicyParams params;
    params.maxSpan = 7;
    LayoutTransformer t1(InsertionPolicy::Full, params, 1);
    LayoutTransformer t2(InsertionPolicy::Full, params, 2);
    const SecureLayout a = t1.transform(*def);
    const SecureLayout b = t2.transform(*def);
    bool differs = a.size != b.size;
    for (std::size_t i = 0; !differs && i < a.fields.size(); ++i)
        differs = a.fields[i].offset != b.fields[i].offset;
    EXPECT_TRUE(differs);
}

TEST(FullPolicy, SameSeedIsDeterministic)
{
    auto def = listingOneStruct();
    PolicyParams params;
    params.maxSpan = 7;
    LayoutTransformer t1(InsertionPolicy::Full, params, 31);
    LayoutTransformer t2(InsertionPolicy::Full, params, 31);
    const SecureLayout a = t1.transform(*def);
    const SecureLayout b = t2.transform(*def);
    EXPECT_EQ(a.size, b.size);
    for (std::size_t i = 0; i < a.fields.size(); ++i)
        EXPECT_EQ(a.fields[i].offset, b.fields[i].offset);
}

TEST(IntelligentPolicy, ProtectsArraysAndPointers)
{
    auto def = listingOneStruct();
    PolicyParams params;
    params.maxSpan = 3;
    LayoutTransformer t(InsertionPolicy::Intelligent, params, 17);
    const SecureLayout sl = t.transform(*def);
    checkStructuralInvariants(*def, sl);
    const auto mask = sl.byteMask();

    // buf (index 2) and fp (index 3) are overflowable: bytes just
    // before buf, between buf and fp, and just after fp are protected
    // (Listing 1(d)).
    const auto &buf = sl.fields[2];
    const auto &fp = sl.fields[3];
    EXPECT_TRUE(mask[buf.offset - 1]);
    EXPECT_TRUE(mask[buf.offset + buf.size]);
    EXPECT_TRUE(mask[fp.offset - 1]);
    EXPECT_TRUE(mask[fp.offset + fp.size]);
}

TEST(IntelligentPolicy, ScalarOnlyStructGetsNothing)
{
    StructDef s("scalars", {{"a", Type::intType()},
                            {"b", Type::doubleType()},
                            {"c", Type::shortType()}});
    PolicyParams params;
    LayoutTransformer t(InsertionPolicy::Intelligent, params, 3);
    const SecureLayout sl = t.transform(s);
    EXPECT_EQ(sl.securityByteCount(), 0u);
    // And sizeof may only change by tail alignment, which is zero here.
    EXPECT_EQ(sl.size, s.size());
}

TEST(IntelligentPolicy, CheaperThanFull)
{
    auto def = listingOneStruct();
    PolicyParams params;
    params.maxSpan = 7;
    LayoutTransformer full(InsertionPolicy::Full, params, 8);
    LayoutTransformer intel(InsertionPolicy::Intelligent, params, 8);
    EXPECT_LE(intel.transform(*def).securityByteCount(),
              full.transform(*def).securityByteCount());
    EXPECT_LE(intel.transform(*def).size, full.transform(*def).size);
}

class FixedPaddingSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FixedPaddingSweep, FullFixedUsesExactSpan)
{
    // The Figure 4 experiment pads every field with a fixed size.
    const std::size_t pad = GetParam();
    StructDef s("chars", {{"a", Type::charType()},
                          {"b", Type::charType()},
                          {"c", Type::charType()}});
    PolicyParams params;
    params.fixedSpan = pad;
    LayoutTransformer t(InsertionPolicy::FullFixed, params, 1);
    const SecureLayout sl = t.transform(s);
    // char fields have alignment 1: every gap is exactly `pad` bytes.
    ASSERT_EQ(sl.securityBytes.size(), 4u); // before a, b, c + tail
    for (const auto &span : sl.securityBytes)
        EXPECT_EQ(span.size, pad);
    EXPECT_EQ(sl.size, 3 + 4 * pad);
}

INSTANTIATE_TEST_SUITE_P(OneToSevenBytes, FixedPaddingSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(PolicyNames, AllDistinct)
{
    EXPECT_EQ(policyName(InsertionPolicy::None), "none");
    EXPECT_EQ(policyName(InsertionPolicy::Opportunistic),
              "opportunistic");
    EXPECT_EQ(policyName(InsertionPolicy::Full), "full");
    EXPECT_EQ(policyName(InsertionPolicy::Intelligent), "intelligent");
    EXPECT_EQ(policyName(InsertionPolicy::FullFixed), "full-fixed");
}

TEST(PolicyParamsValidation, RejectsBadSpanRange)
{
    PolicyParams bad;
    bad.minSpan = 0;
    EXPECT_THROW(LayoutTransformer(InsertionPolicy::Full, bad, 1),
                 std::invalid_argument);
    bad.minSpan = 5;
    bad.maxSpan = 3;
    EXPECT_THROW(LayoutTransformer(InsertionPolicy::Full, bad, 1),
                 std::invalid_argument);
}

TEST(SecureLayoutHelpers, ByteMaskMatchesIsSecurityByte)
{
    auto def = listingOneStruct();
    PolicyParams params;
    params.maxSpan = 5;
    LayoutTransformer t(InsertionPolicy::Full, params, 77);
    const SecureLayout sl = t.transform(*def);
    const auto mask = sl.byteMask();
    for (std::size_t b = 0; b < sl.size; ++b)
        EXPECT_EQ(mask[b], sl.isSecurityByte(b)) << b;
}

} // namespace
} // namespace califorms
