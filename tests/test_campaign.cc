/**
 * @file test_campaign.cc
 * Campaign engine tests: grid expansion (empty grids, single cells,
 * span filtering, seed handling), and the engine's core guarantee —
 * results are bit-identical regardless of the worker count.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/campaign.hh"

namespace califorms
{
namespace
{

using exp::CampaignSpec;
using exp::RunUnit;
using exp::Variant;

CampaignSpec
smallSpec()
{
    CampaignSpec spec;
    spec.name = "test";
    spec.suite = {&findBenchmark("mcf"), &findBenchmark("perlbench")};
    spec.variants = {
        {"base", InsertionPolicy::None, 0, 0, false, false, {}},
        {"full/3", InsertionPolicy::Full, 3, 0, true, true, {}},
        {"intelligent/5", InsertionPolicy::Intelligent, 5, 0, true,
         true, {}},
    };
    spec.layoutSeeds = {1000, 1001};
    spec.base.scale = 0.02;
    return spec;
}

bool
sameResult(const RunResult &a, const RunResult &b)
{
    return a.benchmark == b.benchmark && a.cycles == b.cycles &&
           a.instructions == b.instructions &&
           a.mem.l1.hits == b.mem.l1.hits &&
           a.mem.l1.misses == b.mem.l1.misses &&
           a.mem.l2.misses == b.mem.l2.misses &&
           a.mem.l3.misses == b.mem.l3.misses &&
           a.mem.dramAccesses == b.mem.dramAccesses &&
           a.mem.spills == b.mem.spills && a.mem.fills == b.mem.fills &&
           a.mem.cformOps == b.mem.cformOps &&
           a.mem.securityFaults == b.mem.securityFaults &&
           a.heap.allocs == b.heap.allocs &&
           a.heap.frees == b.heap.frees &&
           a.heap.cformsIssued == b.heap.cformsIssued &&
           a.heap.peakHeapBytes == b.heap.peakHeapBytes &&
           a.exceptionsDelivered == b.exceptionsDelivered &&
           a.exceptionsSuppressed == b.exceptionsSuppressed;
}

TEST(GridExpansion, EmptySuiteExpandsToNothing)
{
    CampaignSpec spec = smallSpec();
    spec.suite.clear();
    EXPECT_TRUE(spec.expand().empty());
    EXPECT_TRUE(exp::runUnits({}, 8).empty());
}

TEST(GridExpansion, EmptyVariantsExpandsToNothing)
{
    CampaignSpec spec = smallSpec();
    spec.variants.clear();
    EXPECT_TRUE(spec.expand().empty());
}

TEST(GridExpansion, SingleCell)
{
    CampaignSpec spec;
    spec.suite = {&findBenchmark("mcf")};
    Variant v;
    v.label = "full/5";
    v.policy = InsertionPolicy::Full;
    v.maxSpan = 5;
    v.cform = false;
    spec.variants = {v};
    spec.layoutSeeds = {42};
    spec.base.scale = 0.02;

    const auto units = spec.expand();
    ASSERT_EQ(units.size(), 1u);
    EXPECT_EQ(units[0].index, 0u);
    EXPECT_EQ(units[0].bench->name, "mcf");
    EXPECT_EQ(units[0].config.policy, InsertionPolicy::Full);
    EXPECT_EQ(units[0].config.policyParams.maxSpan, 5u);
    EXPECT_EQ(units[0].config.layoutSeed, 42u);
    EXPECT_FALSE(units[0].config.heap.useCform);
    EXPECT_FALSE(units[0].config.stack.useCform);
    EXPECT_DOUBLE_EQ(units[0].config.scale, 0.02);
}

TEST(GridExpansion, NonRandomizedVariantRunsFirstSeedOnly)
{
    const CampaignSpec spec = smallSpec();
    const auto units = spec.expand();
    // 2 benchmarks x (1 + 2 + 2 seeds) = 10 units, benchmark-major.
    ASSERT_EQ(units.size(), 10u);
    for (std::size_t i = 0; i < units.size(); ++i)
        EXPECT_EQ(units[i].index, i);
    EXPECT_EQ(units[0].variantIndex, 0u);
    EXPECT_EQ(units[0].config.layoutSeed, 1000u);
    EXPECT_EQ(units[1].variantIndex, 1u);
    EXPECT_EQ(units[1].config.layoutSeed, 1000u);
    EXPECT_EQ(units[2].variantIndex, 1u);
    EXPECT_EQ(units[2].config.layoutSeed, 1001u);
    EXPECT_EQ(units[5].benchIndex, 1u); // second benchmark starts
}

TEST(GridExpansion, EmptySeedListExpandsToNothing)
{
    CampaignSpec spec = smallSpec();
    spec.layoutSeeds.clear();
    EXPECT_TRUE(spec.expand().empty());
}

TEST(GridExpansion, SpanFiltering)
{
    const auto variants = CampaignSpec::crossPolicySpans(
        {InsertionPolicy::None, InsertionPolicy::Opportunistic,
         InsertionPolicy::Full, InsertionPolicy::Intelligent},
        {3, 5, 7});
    // none and opportunistic ignore the span axis; full and
    // intelligent get one variant per span.
    ASSERT_EQ(variants.size(), 8u);
    EXPECT_EQ(variants[0].label, "none");
    EXPECT_EQ(variants[0].maxSpan, 0u);
    EXPECT_FALSE(variants[0].randomized);
    EXPECT_EQ(variants[1].label, "opportunistic");
    EXPECT_EQ(variants[1].maxSpan, 0u);
    EXPECT_FALSE(variants[1].randomized); // layout is seed-independent
    EXPECT_EQ(variants[2].label, "full/3");
    EXPECT_EQ(variants[2].maxSpan, 3u);
    EXPECT_TRUE(variants[2].randomized);
    EXPECT_EQ(variants[4].label, "full/7");
    EXPECT_EQ(variants[7].label, "intelligent/7");
    EXPECT_EQ(variants[7].fixedSpan, 7u);
}

TEST(GridExpansion, FixedSpanPolicyIsNotRandomized)
{
    const auto variants = CampaignSpec::crossPolicySpans(
        {InsertionPolicy::FullFixed}, {1, 4});
    ASSERT_EQ(variants.size(), 2u);
    EXPECT_EQ(variants[0].fixedSpan, 1u);
    // Fixed spans never draw from the layout RNG, so averaging over
    // seeds would repeat byte-identical runs.
    EXPECT_FALSE(variants[0].randomized);
    EXPECT_FALSE(variants[1].randomized);
}

TEST(GridExpansion, TweakAppliesLast)
{
    CampaignSpec spec = smallSpec();
    spec.variants = {{"tweaked", InsertionPolicy::Full, 3, 0, true,
                      false, [](RunConfig &c) {
                          c.machine.mem.extraL2L3Latency = 1;
                          c.policyParams.maxSpan = 6;
                      }}};
    const auto units = spec.expand();
    ASSERT_EQ(units.size(), 2u);
    EXPECT_EQ(units[0].config.machine.mem.extraL2L3Latency, 1u);
    EXPECT_EQ(units[0].config.policyParams.maxSpan, 6u);
}

TEST(GridExpansion, LevelsAxisCrossesEveryVariant)
{
    CampaignSpec spec = smallSpec();
    spec.variants = CampaignSpec::crossLevels(spec.variants, {1, 3});
    ASSERT_EQ(spec.variants.size(), 6u);
    EXPECT_EQ(spec.variants[0].label, "base@L1");
    EXPECT_EQ(spec.variants[0].levels, 1u);
    EXPECT_EQ(spec.variants[3].label, "base@L3");
    EXPECT_EQ(spec.variants[3].levels, 3u);
    EXPECT_EQ(spec.variants[4].policy, InsertionPolicy::Full);

    const auto units = spec.expand();
    // 2 benchmarks x 2 depths x (1 + 2 + 2 seeds) = 20 units.
    ASSERT_EQ(units.size(), 20u);
    EXPECT_EQ(units[0].config.machine.mem.levels, 1u);
    EXPECT_EQ(units[5].config.machine.mem.levels, 3u);
}

TEST(GridExpansion, HierarchyOverridesApplyBeforeTweak)
{
    CampaignSpec spec = smallSpec();
    Variant v("shrunk", InsertionPolicy::Full, 3, 0, true, false,
              [](RunConfig &c) {
                  // tweak sees the axis overrides already applied
                  c.machine.mem.l2Size *= 2;
              });
    v.levels = 2;
    v.l2Kb = 64;
    v.llcKb = 0;
    spec.variants = {v};
    const auto units = spec.expand();
    ASSERT_EQ(units.size(), 2u);
    EXPECT_EQ(units[0].config.machine.mem.levels, 2u);
    EXPECT_EQ(units[0].config.machine.mem.l2Size, 2u * 64u * 1024u);
    EXPECT_EQ(units[0].config.machine.mem.l3Size, 0u);
}

TEST(Engine, LevelsAxisIsJobCountInvariant)
{
    CampaignSpec spec = smallSpec();
    spec.variants = CampaignSpec::crossLevels(spec.variants, {1, 2, 3});
    spec.base.machine.mem.wbQueueEntries = 8;
    const auto serial = exp::runCampaign(spec, 1);
    const auto parallel = exp::runCampaign(spec, 8);
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i)
        EXPECT_TRUE(sameResult(serial.results[i], parallel.results[i]))
            << "unit " << i;
    // The axis must actually change the machine: depth 1 pays more
    // DRAM traffic than depth 3 for the same benchmark/variant/seed.
    EXPECT_GT(serial.results[0].mem.dramAccesses,
              serial.results[10].mem.dramAccesses);
}

TEST(Engine, EffectiveJobs)
{
    EXPECT_GE(exp::effectiveJobs(0), 1u);
    EXPECT_EQ(exp::effectiveJobs(1), 1u);
    EXPECT_EQ(exp::effectiveJobs(7), 7u);
}

TEST(Engine, ParallelResultsMatchSerialByteForByte)
{
    const CampaignSpec spec = smallSpec();
    const auto serial = exp::runCampaign(spec, 1);
    const auto parallel = exp::runCampaign(spec, 8);
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i)
        EXPECT_TRUE(sameResult(serial.results[i], parallel.results[i]))
            << "unit " << i;
}

TEST(Engine, RepeatedParallelRunsAgree)
{
    const CampaignSpec spec = smallSpec();
    const auto a = exp::runCampaign(spec, 4);
    const auto b = exp::runCampaign(spec, 4);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i)
        EXPECT_TRUE(sameResult(a.results[i], b.results[i])) << i;
}

TEST(Engine, MeanCyclesIsSeedAverage)
{
    const CampaignSpec spec = smallSpec();
    const auto result = exp::runCampaign(spec, 2);
    const double expected =
        (static_cast<double>(result.at(0, 1, 0).cycles) +
         static_cast<double>(result.at(0, 1, 1).cycles)) /
        2.0;
    EXPECT_DOUBLE_EQ(result.meanCycles(0, 1), expected);
    EXPECT_THROW(result.meanCycles(0, 99), std::out_of_range);
    EXPECT_THROW(result.at(0, 0, 1), std::out_of_range);
}

TEST(Engine, WorkerExceptionPropagates)
{
    const SpecBenchmark bomb{
        "bomb", true,
        [](KernelContext &) { throw std::runtime_error("boom"); }};
    CampaignSpec spec;
    spec.suite = {&bomb};
    // Four units so jobs=4 exercises the pool path, not the inline
    // single-worker fallback.
    spec.variants = {
        {"base", InsertionPolicy::None, 0, 0, false, true, {}}};
    spec.layoutSeeds = {1, 2, 3, 4};
    EXPECT_THROW(exp::runCampaign(spec, 1), std::runtime_error);
    EXPECT_THROW(exp::runCampaign(spec, 4), std::runtime_error);
}

TEST(Engine, MoreJobsThanUnits)
{
    CampaignSpec spec = smallSpec();
    spec.suite = {&findBenchmark("mcf")};
    spec.variants.resize(1);
    const auto serial = exp::runCampaign(spec, 1);
    const auto flooded = exp::runCampaign(spec, 64);
    ASSERT_EQ(serial.results.size(), 1u);
    ASSERT_EQ(flooded.results.size(), 1u);
    EXPECT_TRUE(sameResult(serial.results[0], flooded.results[0]));
}

} // namespace
} // namespace califorms
