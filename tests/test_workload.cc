/**
 * @file test_workload.cc
 * Workload suite tests: every kernel runs clean under every policy,
 * determinism, the suite composition matches the paper, and the
 * first-order performance relations the figures rely on hold.
 */

#include <gtest/gtest.h>

#include "workload/runner.hh"

namespace califorms
{
namespace
{

RunConfig
testConfig()
{
    RunConfig config;
    config.scale = 0.02; // keep unit tests fast
    return config;
}

TEST(Suite, NineteenBenchmarksInPaperOrder)
{
    const auto &suite = spec2006Suite();
    ASSERT_EQ(suite.size(), 19u);
    EXPECT_EQ(suite.front().name, "astar");
    EXPECT_EQ(suite.back().name, "xalancbmk");
    std::size_t software = 0;
    for (const auto &b : suite)
        software += b.inSoftwareEval;
    // Section 8.2 omits dealII, omnetpp and gcc: 16 remain.
    EXPECT_EQ(software, 16u);
    EXPECT_FALSE(findBenchmark("dealII").inSoftwareEval);
    EXPECT_FALSE(findBenchmark("omnetpp").inSoftwareEval);
    EXPECT_FALSE(findBenchmark("gcc").inSoftwareEval);
}

TEST(Suite, FindBenchmarkThrowsOnUnknown)
{
    EXPECT_THROW(findBenchmark("doom"), std::invalid_argument);
}

TEST(Suite, KernelStructsAvailableForEveryBenchmark)
{
    for (const auto &b : spec2006Suite()) {
        const auto defs = kernelStructs(b.name);
        EXPECT_FALSE(defs.empty()) << b.name;
        for (const auto &def : defs)
            EXPECT_GT(def->size(), 0u);
    }
}

class EveryBenchmark : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryBenchmark, RunsCleanBaseline)
{
    const auto &bench = findBenchmark(GetParam());
    const RunResult r = runBenchmark(bench, testConfig());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_EQ(r.exceptionsDelivered, 0u)
        << "baseline must not trip the blacklist";
}

TEST_P(EveryBenchmark, RunsCleanUnderFullPolicy)
{
    const auto &bench = findBenchmark(GetParam());
    RunConfig config = testConfig();
    config.policy = InsertionPolicy::Full;
    config.policyParams.maxSpan = 7;
    const RunResult r = runBenchmark(bench, config);
    EXPECT_EQ(r.exceptionsDelivered, 0u)
        << "well-behaved kernels never touch security bytes";
    EXPECT_GT(r.mem.cformOps, 0u);
}

TEST_P(EveryBenchmark, RunsCleanUnderIntelligentPolicy)
{
    const auto &bench = findBenchmark(GetParam());
    RunConfig config = testConfig();
    config.policy = InsertionPolicy::Intelligent;
    config.policyParams.maxSpan = 7;
    const RunResult r = runBenchmark(bench, config);
    EXPECT_EQ(r.exceptionsDelivered, 0u);
}

TEST_P(EveryBenchmark, Deterministic)
{
    const auto &bench = findBenchmark(GetParam());
    const RunResult a = runBenchmark(bench, testConfig());
    const RunResult b = runBenchmark(bench, testConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mem.l1.misses, b.mem.l1.misses);
}

INSTANTIATE_TEST_SUITE_P(
    Spec2006, EveryBenchmark,
    ::testing::Values("astar", "bzip2", "dealII", "gcc", "gobmk",
                      "h264ref", "hmmer", "lbm", "libquantum", "mcf",
                      "milc", "namd", "omnetpp", "perlbench", "povray",
                      "sjeng", "soplex", "sphinx3", "xalancbmk"));

TEST(Relations, ExtraLatencySlowsDown)
{
    // The Figure 10 relation: +1 cycle L2/L3 never speeds anything up.
    for (const char *name : {"xalancbmk", "hmmer", "mcf"}) {
        const auto &bench = findBenchmark(name);
        RunConfig base = testConfig();
        RunConfig extra = testConfig();
        extra.machine.mem.extraL2L3Latency = 1;
        const auto r0 = runBenchmark(bench, base);
        const auto r1 = runBenchmark(bench, extra);
        EXPECT_GE(r1.cycles, r0.cycles) << name;
        // And the effect is small (paper: at most ~1.4%).
        EXPECT_LT(slowdownVs(r0, r1), 0.05) << name;
    }
}

TEST(Relations, PaddingCostsPerformance)
{
    // Fixed padding inflates footprints: cycles must not decrease, and
    // cache-sensitive benchmarks must slow down measurably (Figure 4).
    const auto &bench = findBenchmark("soplex");
    RunConfig base = testConfig();
    RunConfig padded = testConfig();
    padded.policy = InsertionPolicy::FullFixed;
    padded.policyParams.fixedSpan = 7;
    padded.withCform(false); // isolate the cache effect
    const auto r0 = runBenchmark(bench, base);
    const auto r1 = runBenchmark(bench, padded);
    EXPECT_GT(r1.cycles, r0.cycles);
}

TEST(Relations, CformTrafficScalesWithAllocRate)
{
    // perlbench (malloc-intensive) must issue far more CFORMs than the
    // stream-once lbm.
    RunConfig config = testConfig();
    config.policy = InsertionPolicy::Full;
    const auto perl = runBenchmark(findBenchmark("perlbench"), config);
    const auto lbm = runBenchmark(findBenchmark("lbm"), config);
    EXPECT_GT(perl.heap.allocs, 10 * lbm.heap.allocs);
}

TEST(Relations, OpportunisticKeepsFootprint)
{
    // The opportunistic policy never grows any struct, so heap bytes
    // match the baseline exactly.
    RunConfig base = testConfig();
    RunConfig opp = testConfig();
    opp.policy = InsertionPolicy::Opportunistic;
    const auto &bench = findBenchmark("astar");
    const auto r0 = runBenchmark(bench, base);
    const auto r1 = runBenchmark(bench, opp);
    EXPECT_EQ(r0.heap.bytesAllocated, r1.heap.bytesAllocated);
}

TEST(Relations, LayoutSeedChangesLayoutNotWork)
{
    RunConfig a = testConfig();
    RunConfig b = testConfig();
    a.policy = b.policy = InsertionPolicy::Full;
    a.layoutSeed = 1;
    b.layoutSeed = 2;
    const auto &bench = findBenchmark("mcf");
    const auto ra = runBenchmark(bench, a);
    const auto rb = runBenchmark(bench, b);
    // Same logical work...
    EXPECT_EQ(ra.heap.allocs, rb.heap.allocs);
    // ...but different randomized layouts -> different footprints.
    EXPECT_NE(ra.heap.bytesAllocated, rb.heap.bytesAllocated);
}

TEST(Runner, WithCformToggle)
{
    RunConfig config = testConfig();
    config.policy = InsertionPolicy::Full;
    config.withCform(false);
    const auto r = runBenchmark(findBenchmark("perlbench"), config);
    EXPECT_EQ(r.mem.cformOps, 0u);
    EXPECT_EQ(r.heap.cformsIssued, 0u);
}

} // namespace
} // namespace califorms
