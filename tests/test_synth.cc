/**
 * @file test_synth.cc
 * Synthetic workload engine tests: generator determinism and op
 * budgets, the per-workload access-pattern properties the suite
 * harness relies on, registry plumbing of the workload.* keys,
 * campaign registration, and jobs-invariance for every generator.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "config/config.hh"
#include "exp/campaign.hh"
#include "workload/synth.hh"

namespace califorms
{
namespace
{

Trace
materialize(const std::string &name, const SynthParams &params,
            std::uint64_t ops)
{
    const auto gen = makeSynthGenerator(name, params, ops);
    Trace trace;
    TraceOp op;
    while (gen->next(op))
        trace.push_back(op);
    return trace;
}

std::string
serialize(const Trace &trace)
{
    std::ostringstream os;
    writeTrace(os, trace);
    return os.str();
}

TEST(SynthSuite, EightWorkloadsRegistered)
{
    // Five classic workloads (the campaign suite the BENCH baselines
    // iterate) plus the three adversarial replacement microworkloads.
    EXPECT_EQ(synthWorkloadNames().size(), 8u);
    EXPECT_EQ(kClassicWorkloads, 5u);
    EXPECT_EQ(synthSuite().size(), 5u);
    EXPECT_EQ(adversarialSuite().size(), 3u);
    for (const auto &b : adversarialSuite()) {
        EXPECT_TRUE(isSynthWorkload(b.name));
        EXPECT_FALSE(b.inSoftwareEval);
    }
    for (const std::string &name : synthWorkloadNames()) {
        EXPECT_TRUE(isSynthWorkload(name));
        // Registered as campaign benchmarks, outside the software
        // evaluation (they are not part of the paper's Section 8.2).
        const SpecBenchmark &bench = findBenchmark(name);
        EXPECT_EQ(bench.name, name);
        EXPECT_FALSE(bench.inSoftwareEval);
    }
    EXPECT_FALSE(isSynthWorkload("mcf"));
    EXPECT_THROW(makeSynthGenerator("doom", {}, 1),
                 std::invalid_argument);
}

TEST(SynthGenerator, DeterministicAndExactBudget)
{
    for (const std::string &name : synthWorkloadNames()) {
        SynthParams params;
        params.ops = 4000;
        const Trace a = materialize(name, params, 4000);
        const Trace b = materialize(name, params, 4000);
        EXPECT_EQ(a.size(), 4000u) << name;
        EXPECT_EQ(serialize(a), serialize(b)) << name;
        // A shorter budget is an exact prefix: generators are pure
        // streams, not post-trimmed batches.
        const Trace prefix = materialize(name, params, 1000);
        ASSERT_EQ(prefix.size(), 1000u) << name;
        EXPECT_EQ(serialize(prefix),
                  serialize(Trace(a.begin(), a.begin() + 1000)))
            << name;
    }
}

TEST(SynthGenerator, SeedChangesTheRandomizedStreams)
{
    for (const std::string name :
         {"zipf", "attackmix", "stackchurn", "mixed"}) {
        SynthParams a, b;
        b.seed = a.seed + 1;
        EXPECT_NE(serialize(materialize(name, a, 2000)),
                  serialize(materialize(name, b, 2000)))
            << name;
    }
}

TEST(SynthGenerator, ZipfAlphaConcentratesTheHotSet)
{
    SynthParams uniform;
    uniform.zipfAlpha = 0.0;
    SynthParams hot;
    hot.zipfAlpha = 2.5;
    auto distinct_lines = [](const Trace &trace) {
        std::set<Addr> lines;
        for (const TraceOp &op : trace)
            if (op.kind == TraceOp::Kind::Load ||
                op.kind == TraceOp::Kind::Store)
                lines.insert(op.addr >> 6);
        return lines.size();
    };
    const std::size_t wide =
        distinct_lines(materialize("zipf", uniform, 20000));
    const std::size_t narrow =
        distinct_lines(materialize("zipf", hot, 20000));
    // Skew must shrink the touched set dramatically.
    EXPECT_LT(narrow * 4, wide);
}

TEST(SynthGenerator, StreamIsSequential)
{
    SynthParams params;
    const Trace trace = materialize("stream", params, 3000);
    Addr prev = 0;
    bool first = true;
    for (const TraceOp &op : trace) {
        if (op.kind != TraceOp::Kind::Load &&
            op.kind != TraceOp::Kind::Store)
            continue;
        if (!first) {
            EXPECT_TRUE(op.addr > prev) << "stream must march forward";
        }
        first = false;
        prev = op.addr;
        if (trace.size() > 2000 && op.addr > trace[0].addr + 100000)
            break; // sampled enough
    }
}

TEST(SynthGenerator, StackChurnPairsSetAndUnset)
{
    SynthParams params;
    const Trace trace = materialize("stackchurn", params, 5000);
    std::size_t sets = 0, unsets = 0;
    for (const TraceOp &op : trace) {
        if (op.kind != TraceOp::Kind::Cform)
            continue;
        if (op.cform.setBits)
            ++sets;
        else
            ++unsets;
    }
    EXPECT_GT(sets, 0u);
    // Unsets never outrun sets, and every prefix stays balanced
    // within the tree depth.
    EXPECT_LE(unsets, sets);
    EXPECT_LE(sets - unsets, params.stackDepth);
    // The churn replays clean: frames never touch their own security
    // bytes.
    Machine machine;
    runTrace(machine, trace);
    EXPECT_EQ(machine.exceptions().deliveredCount(), 0u);
}

TEST(SynthGenerator, RingBalancesProducerAndConsumer)
{
    SynthParams params;
    const Trace trace = materialize("ring", params, 4000);
    std::size_t loads = 0, stores = 0;
    for (const TraceOp &op : trace) {
        loads += op.kind == TraceOp::Kind::Load;
        stores += op.kind == TraceOp::Kind::Store;
    }
    EXPECT_GT(loads, 0u);
    EXPECT_GT(stores, 0u);
    // One publish + burst stores vs one poll + burst loads per round.
    EXPECT_NEAR(static_cast<double>(loads),
                static_cast<double>(stores), params.ringBurst + 2);
}

TEST(SynthGenerator, AttackMixTripsSecurityBytes)
{
    SynthParams params;
    params.attackPeriod = 32; // probe often so a short run detects
    const Trace trace = materialize("attackmix", params, 4000);
    Machine machine;
    runTrace(machine, trace);
    EXPECT_GT(machine.exceptions().deliveredCount(), 0u)
        << "the attack mix must reach security bytes";
    // Benign-only workloads never do.
    Machine clean;
    runTrace(clean, materialize("zipf", SynthParams{}, 4000));
    EXPECT_EQ(clean.exceptions().deliveredCount(), 0u);
}

TEST(SynthRunner, CampaignPathMatchesTracePath)
{
    // The benchmark adapter streams the same generator the trace CLI
    // serializes: cycles must agree exactly.
    RunConfig config;
    config.scale = 1.0;
    config.synth.ops = 5000;
    const RunResult via_campaign =
        runBenchmark(findBenchmark("zipf"), config);

    Machine machine(config.machine, ExceptionUnit::Policy::Record);
    const auto gen =
        makeSynthGenerator("zipf", config.synth, config.synth.ops);
    runTrace(machine, *gen);
    EXPECT_EQ(via_campaign.cycles, machine.cycles());
    EXPECT_EQ(via_campaign.instructions, machine.instructions());
}

TEST(SynthRunner, ScaleScalesOps)
{
    RunConfig small, large;
    small.scale = 0.1;
    large.scale = 0.5;
    small.synth.ops = large.synth.ops = 20000;
    const auto &bench = findBenchmark("stream");
    const RunResult a = runBenchmark(bench, small);
    const RunResult b = runBenchmark(bench, large);
    EXPECT_EQ(a.instructions * 5, b.instructions);
}

TEST(SynthConfig, WorkloadKeysReachTheGenerators)
{
    config::Config cfg;
    ASSERT_FALSE(cfg.set("workload.ops", "123"));
    ASSERT_FALSE(cfg.set("workload.zipf_alpha", "1.5"));
    ASSERT_FALSE(cfg.set("workload.footprint_kb", "64"));
    ASSERT_FALSE(cfg.set("workload.seed", "9"));
    const RunConfig rc = cfg.makeRunConfig();
    EXPECT_EQ(rc.synth.ops, 123u);
    EXPECT_DOUBLE_EQ(rc.synth.zipfAlpha, 1.5);
    EXPECT_EQ(rc.synth.footprintKb, 64u);
    EXPECT_EQ(rc.synth.seed, 9u);
    // Bounds are enforced like every registry key.
    EXPECT_TRUE(cfg.set("workload.zipf_alpha", "9"));
    EXPECT_TRUE(cfg.set("workload.ops", "0"));
    EXPECT_TRUE(cfg.set("workload.no_such", "1"));
}

TEST(SynthCampaign, JobsInvariantForEveryWorkload)
{
    exp::CampaignSpec spec;
    spec.name = "synth_inv";
    for (const auto &b : synthSuite())
        spec.suite.push_back(&b);
    for (const auto &b : adversarialSuite())
        spec.suite.push_back(&b);
    spec.variants = exp::CampaignSpec::crossLevels(
        {{"base", InsertionPolicy::None, 0, 0, std::nullopt, false,
          {}}},
        {1, 3});
    spec.base.scale = 1.0;
    spec.base.synth.ops = 3000;

    const exp::CampaignResult serial = exp::runCampaign(spec, 1);
    const exp::CampaignResult parallel = exp::runCampaign(spec, 8);
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    ASSERT_EQ(serial.results.size(),
              (synthSuite().size() + adversarialSuite().size()) *
                  spec.variants.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_EQ(serial.results[i].cycles, parallel.results[i].cycles)
            << serial.results[i].benchmark;
        EXPECT_EQ(serial.results[i].instructions,
                  parallel.results[i].instructions);
        EXPECT_EQ(serial.results[i].mem.l1.misses,
                  parallel.results[i].mem.l1.misses);
        EXPECT_EQ(serial.results[i].mem.dramAccesses,
                  parallel.results[i].mem.dramAccesses);
    }
}

} // namespace
} // namespace califorms
