/**
 * @file test_fleet.cc
 * Fleet serving engine tests: tenant manifest parsing and the overlay
 * restriction rules, per-tenant config resolution (overlay precedence
 * and the seed stride), bit-equivalence of the batched SoA replay loop
 * against the per-op runTrace path, constant-memory streaming (fill
 * requests never exceed the batch size over a multi-million-op
 * replay), and the merged-report determinism contract: per-tenant sums
 * equal the fleet totals and the timing-free JSON is byte-identical at
 * any jobs/shards value.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "config/config.hh"
#include "fleet/engine.hh"
#include "fleet/report.hh"
#include "sim/trace.hh"
#include "workload/synth.hh"

namespace califorms::fleet
{
namespace
{

TenantSpec
mustParse(const std::string &line)
{
    TenantSpec tenant;
    const auto error = parseTenantSpec(line, tenant);
    EXPECT_FALSE(error) << (error ? *error : "");
    return tenant;
}

std::string
parseError(const std::string &line)
{
    TenantSpec tenant;
    const auto error = parseTenantSpec(line, tenant);
    EXPECT_TRUE(error) << line;
    return error ? *error : "";
}

// Manifest and --tenant spec parsing -----------------------------------

TEST(TenantSpecParse, GeneratorTenantWithOverlay)
{
    const TenantSpec t =
        mustParse("web workload=zipf mem.l2_size_kb=128 "
                  "workload.ops=5000");
    EXPECT_EQ(t.id, "web");
    EXPECT_EQ(t.workload, "zipf");
    EXPECT_TRUE(t.tracePath.empty());
    EXPECT_EQ(t.source(), "workload=zipf");
    ASSERT_EQ(t.sets.size(), 2u);
    EXPECT_EQ(t.sets[0].first, "mem.l2_size_kb");
    EXPECT_EQ(t.sets[0].second, "128");
    EXPECT_TRUE(t.overlaySets("workload.ops"));
    EXPECT_FALSE(t.overlaySets("workload.seed"));
}

TEST(TenantSpecParse, TraceTenant)
{
    const TenantSpec t = mustParse("db trace=/tmp/x.trc mem.levels=2");
    EXPECT_EQ(t.id, "db");
    EXPECT_EQ(t.tracePath, "/tmp/x.trc");
    EXPECT_EQ(t.source(), "trace=/tmp/x.trc");
}

TEST(TenantSpecParse, Diagnostics)
{
    EXPECT_NE(parseError("").find("empty tenant spec"),
              std::string::npos);
    EXPECT_NE(parseError("workload=zipf")
                  .find("must start with an id"),
              std::string::npos);
    EXPECT_NE(parseError("web").find("missing source"),
              std::string::npos);
    EXPECT_NE(parseError("web workload=doom")
                  .find("unknown workload 'doom'"),
              std::string::npos);
    EXPECT_NE(parseError("web trace=").find("empty trace path"),
              std::string::npos);
    EXPECT_NE(parseError("web zipf").find("expected workload=<name>"),
              std::string::npos);
    EXPECT_NE(parseError("web workload=zipf junk")
                  .find("expected key=value"),
              std::string::npos);
    // Overlay family restriction: only mem.* and workload.* are
    // tenant knobs; everything else is rejected, not ignored.
    EXPECT_NE(parseError("web workload=zipf layout.seed=3")
                  .find("not a tenant knob"),
              std::string::npos);
    EXPECT_NE(parseError("web workload=zipf fleet.shards=2")
                  .find("not a tenant knob"),
              std::string::npos);
    // workload.* on a trace tenant: the trace already fixes the
    // stream.
    EXPECT_NE(parseError("db trace=/tmp/x workload.ops=5")
                  .find("cannot take effect on a trace tenant"),
              std::string::npos);
    // Values go through the registry, with --set's exact diagnostics.
    EXPECT_NE(parseError("web workload=zipf mem.levels=9")
                  .find("expects an integer in [1, 3]"),
              std::string::npos);
}

TEST(ManifestParse, CommentsBlanksAndLineNumbers)
{
    std::vector<TenantSpec> tenants;
    const auto ok = parseManifest("# fleet manifest\n"
                                  "\n"
                                  "web workload=zipf   # hot tenant\n"
                                  "  \t \n"
                                  "db workload=scan mem.levels=2\n",
                                  tenants);
    EXPECT_FALSE(ok) << (ok ? *ok : "");
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[0].id, "web");
    EXPECT_EQ(tenants[1].id, "db");
    EXPECT_EQ(tenants[1].sets.size(), 1u);

    std::vector<TenantSpec> bad;
    const auto error =
        parseManifest("web workload=zipf\n\nweb2 nope\n", bad);
    ASSERT_TRUE(error);
    EXPECT_NE(error->find("manifest line 3:"), std::string::npos);
}

TEST(ManifestParse, ValidateTenants)
{
    std::vector<TenantSpec> none;
    const auto empty = validateTenants(none);
    ASSERT_TRUE(empty);
    EXPECT_NE(empty->find("fleet has no tenants"), std::string::npos);

    std::vector<TenantSpec> dup = {mustParse("web workload=zipf"),
                                   mustParse("db workload=scan"),
                                   mustParse("web workload=ring")};
    const auto error = validateTenants(dup);
    ASSERT_TRUE(error);
    EXPECT_NE(error->find("duplicate tenant id 'web'"),
              std::string::npos);
}

// Per-tenant config resolution -----------------------------------------

FleetSpec
smallFleet(std::uint64_t duration_ops = 4000)
{
    FleetSpec spec;
    spec.tenants = {mustParse("a workload=zipf"),
                    mustParse("b workload=zipf"),
                    mustParse("c workload=scan mem.l2_size_kb=128"),
                    mustParse("d workload=stackchurn")};
    spec.durationOps = duration_ops;
    return spec;
}

TEST(ResolveTenantConfig, OverlayAndSeedStride)
{
    FleetSpec spec = smallFleet();
    spec.base.fleet.tenantSeedStride = 10;
    spec.base.synth.seed = 100;

    // Tenant 0 keeps the base seed; tenant 1 is strided; the overlay
    // applies on top of a copy of the base (tenant 2's L2 shrinks,
    // the others keep the default).
    EXPECT_EQ(resolveTenantConfig(spec, 0).synth.seed, 100u);
    EXPECT_EQ(resolveTenantConfig(spec, 1).synth.seed, 110u);
    EXPECT_EQ(resolveTenantConfig(spec, 2).synth.seed, 120u);
    EXPECT_EQ(resolveTenantConfig(spec, 2).machine.mem.l2Size,
              128u * 1024);
    EXPECT_NE(resolveTenantConfig(spec, 1).machine.mem.l2Size,
              128u * 1024);
}

TEST(ResolveTenantConfig, OverlayPinnedSeedBeatsStride)
{
    FleetSpec spec;
    spec.tenants = {mustParse("a workload=zipf"),
                    mustParse("b workload=zipf workload.seed=42")};
    spec.base.fleet.tenantSeedStride = 10;
    spec.base.synth.seed = 100;
    EXPECT_EQ(resolveTenantConfig(spec, 0).synth.seed, 100u);
    EXPECT_EQ(resolveTenantConfig(spec, 1).synth.seed, 42u);
}

TEST(ResolveTenantConfig, StrideZeroGivesIdenticalStreams)
{
    FleetSpec spec;
    spec.tenants = {mustParse("a workload=zipf"),
                    mustParse("b workload=zipf")};
    spec.base.fleet.tenantSeedStride = 0;
    spec.durationOps = 3000;
    const FleetResult result = runFleet(spec, 1);
    ASSERT_EQ(result.tenants.size(), 2u);
    // Same workload, same seed: bit-identical tenants.
    EXPECT_EQ(result.tenants[0].replay.checksum,
              result.tenants[1].replay.checksum);
    EXPECT_EQ(result.tenants[0].cycles, result.tenants[1].cycles);

    // Stride 1 (the default) decorrelates them.
    spec.base.fleet.tenantSeedStride = 1;
    const FleetResult strided = runFleet(spec, 1);
    EXPECT_NE(strided.tenants[0].replay.checksum,
              strided.tenants[1].replay.checksum);
    // ...without touching tenant 0, whose seed is unstrided.
    EXPECT_EQ(strided.tenants[0].replay.checksum,
              result.tenants[0].replay.checksum);
}

// The batched SoA hot loop ---------------------------------------------

TEST(BatchReplay, BitEquivalentToRunTrace)
{
    SynthParams params;
    const std::uint64_t ops = 20000;
    // Generators covering all four op kinds: stackchurn for CFORMs,
    // attackmix for faults, zipf for dependent loads.
    for (const std::string &name :
         {std::string("zipf"), std::string("stackchurn"),
          std::string("attackmix")}) {
        Machine reference({}, ExceptionUnit::Policy::Record);
        const auto ref_gen = makeSynthGenerator(name, params, ops);
        std::uint64_t ref_ops = 0;
        const std::uint64_t ref_checksum =
            runTrace(reference, *ref_gen, &ref_ops);

        Machine batched({}, ExceptionUnit::Policy::Record);
        const auto gen = makeSynthGenerator(name, params, ops);
        const BatchReplayStats stats =
            replayBatched(batched, *gen, 256);

        EXPECT_EQ(stats.ops, ref_ops) << name;
        EXPECT_EQ(stats.checksum, ref_checksum) << name;
        EXPECT_EQ(batched.cycles(), reference.cycles()) << name;
        EXPECT_EQ(batched.instructions(), reference.instructions())
            << name;
        EXPECT_EQ(batched.memStats().securityFaults,
                  reference.memStats().securityFaults)
            << name;
        EXPECT_EQ(stats.kindOps[0] + stats.kindOps[1] +
                      stats.kindOps[2] + stats.kindOps[3],
                  stats.ops)
            << name;
    }
}

TEST(BatchReplay, BatchSizeInvariant)
{
    // The batch size is a pure performance knob: any value produces
    // the same machine state and checksum.
    SynthParams params;
    std::uint64_t checksum0 = 0;
    Cycles cycles0 = 0;
    for (const std::size_t batch : {1ul, 7ul, 256ul, 65536ul}) {
        Machine machine({}, ExceptionUnit::Policy::Record);
        const auto gen = makeSynthGenerator("mixed", params, 10000);
        const BatchReplayStats stats =
            replayBatched(machine, *gen, batch);
        EXPECT_EQ(stats.ops, 10000u);
        EXPECT_EQ(stats.batches,
                  (10000 + batch - 1) / batch);
        if (!checksum0) {
            checksum0 = stats.checksum;
            cycles0 = machine.cycles();
        }
        EXPECT_EQ(stats.checksum, checksum0) << batch;
        EXPECT_EQ(machine.cycles(), cycles0) << batch;
    }
}

TEST(BatchReplay, MaxOpsCapsTheReplay)
{
    SynthParams params;
    Machine machine({}, ExceptionUnit::Policy::Record);
    const auto gen = makeSynthGenerator("stream", params, 100000);
    const BatchReplayStats stats =
        replayBatched(machine, *gen, 256, 1000);
    EXPECT_EQ(stats.ops, 1000u);
    EXPECT_EQ(stats.batches, 4u); // ceil(1000 / 256)

    // The cap must be an exact prefix of the uncapped replay.
    Machine full({}, ExceptionUnit::Policy::Record);
    const auto prefix_gen = makeSynthGenerator("stream", params, 1000);
    const BatchReplayStats prefix =
        replayBatched(full, *prefix_gen, 256);
    EXPECT_EQ(stats.checksum, prefix.checksum);
    EXPECT_EQ(machine.cycles(), full.cycles());
}

TEST(BatchReplay, ZeroBatchThrows)
{
    SynthParams params;
    Machine machine({}, ExceptionUnit::Policy::Record);
    const auto gen = makeSynthGenerator("zipf", params, 10);
    EXPECT_THROW(replayBatched(machine, *gen, 0),
                 std::invalid_argument);
}

/** Wraps a reader to record the largest single fill() request — the
 *  constant-memory contract: the replay loop must never ask for more
 *  than one batch at a time, however long the trace. */
class FillAuditReader : public TraceReader
{
  public:
    explicit FillAuditReader(TraceReader &inner) : inner_(inner) {}

    bool next(TraceOp &op) override { return inner_.next(op); }

    std::size_t
    fill(TraceOp *out, std::size_t max) override
    {
        maxRequest = std::max(maxRequest, max);
        ++fillCalls;
        return inner_.fill(out, max);
    }

    std::size_t maxRequest = 0;
    std::uint64_t fillCalls = 0;

  private:
    TraceReader &inner_;
};

TEST(BatchReplay, ConstantMemoryOverTwoMillionOps)
{
    // 2M ops through a 512-op buffer: one fill per batch, never a
    // request larger than the batch — the buffer is the only storage,
    // so memory stays constant however long the stream runs.
    SynthParams params;
    const std::uint64_t ops = 2'000'000;
    Machine machine({}, ExceptionUnit::Policy::Record);
    const auto gen = makeSynthGenerator("stream", params, ops);
    FillAuditReader audit(*gen);
    const BatchReplayStats stats = replayBatched(machine, audit, 512);
    EXPECT_EQ(stats.ops, ops);
    EXPECT_EQ(audit.maxRequest, 512u);
    EXPECT_EQ(audit.fillCalls, stats.batches);
    EXPECT_EQ(stats.batches, ops / 512 + (ops % 512 ? 1 : 0));
}

// The fleet engine ------------------------------------------------------

TEST(RunFleet, PerTenantSumsEqualMergedTotals)
{
    const FleetSpec spec = smallFleet();
    const FleetResult result = runFleet(spec, 2);
    ASSERT_EQ(result.tenants.size(), 4u);
    std::uint64_t ops = 0;
    for (const TenantResult &t : result.tenants) {
        EXPECT_EQ(t.replay.ops, 4000u) << t.id;
        ops += t.replay.ops;
    }
    EXPECT_EQ(result.totalOps, ops);
    EXPECT_EQ(result.shards, 4u);
    EXPECT_EQ(result.tenants[0].id, "a");
    EXPECT_EQ(result.tenants[3].id, "d");
}

TEST(RunFleet, JobsAndShardsInvariant)
{
    // The determinism contract: tenants, counters, and the timing-free
    // JSON are identical at any (jobs, shards) combination.
    FleetSpec spec = smallFleet();
    const FleetResult serial = runFleet(spec, 1);
    const std::string serial_json = fleetJson(spec, serial, false);

    const FleetResult parallel = runFleet(spec, 8);
    EXPECT_EQ(fleetJson(spec, parallel, false), serial_json);

    spec.base.fleet.shards = 2;
    const FleetResult sharded = runFleet(spec, 8);
    EXPECT_EQ(sharded.shards, 2u);
    for (std::size_t i = 0; i < serial.tenants.size(); ++i) {
        EXPECT_EQ(sharded.tenants[i].replay.checksum,
                  serial.tenants[i].replay.checksum);
        EXPECT_EQ(sharded.tenants[i].cycles, serial.tenants[i].cycles);
    }
}

TEST(RunFleet, InvalidFleetsThrow)
{
    FleetSpec empty;
    EXPECT_THROW(runFleet(empty, 1), std::invalid_argument);

    FleetSpec multicore = smallFleet();
    multicore.base.machine.core.count = 2;
    EXPECT_THROW(runFleet(multicore, 1), std::invalid_argument);

    FleetSpec missing;
    missing.tenants = {mustParse("t trace=/nonexistent/x.trc")};
    EXPECT_THROW(runFleet(missing, 1), std::runtime_error);
}

TEST(RunFleet, TraceTenantMatchesDirectReplay)
{
    // Serialize a generator stream to a binary trace file, then serve
    // it as a trace tenant: the fleet must reproduce the direct
    // machine replay exactly.
    SynthParams params;
    const std::uint64_t ops = 5000;
    const auto gen = makeSynthGenerator("ring", params, ops);
    Trace trace;
    TraceOp op;
    while (gen->next(op))
        trace.push_back(op);

    const std::string path =
        testing::TempDir() + "fleet_ring.caltrc";
    {
        std::ofstream os(path, std::ios::binary);
        writeTraceBinary(os, trace);
    }

    Machine direct({}, ExceptionUnit::Policy::Record);
    const std::uint64_t checksum = runTrace(direct, trace);

    FleetSpec spec;
    spec.tenants = {mustParse("ring trace=" + path)};
    const FleetResult result = runFleet(spec, 1);
    std::remove(path.c_str());
    ASSERT_EQ(result.tenants.size(), 1u);
    EXPECT_EQ(result.tenants[0].replay.ops, ops);
    EXPECT_EQ(result.tenants[0].replay.checksum, checksum);
    EXPECT_EQ(result.tenants[0].cycles, direct.cycles());
    EXPECT_EQ(result.tenants[0].source, "trace=" + path);
}

// The merged report -----------------------------------------------------

TEST(FleetReport, ShapeAndDeterminism)
{
    const FleetSpec spec = smallFleet();
    const FleetResult result = runFleet(spec, 4);
    const std::string json = fleetJson(spec, result, false);

    // v2 schema with the fleet and throughput objects; no wall-clock
    // fields without timing.
    EXPECT_NE(json.find("\"schema\": \"califorms-campaign/v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"campaign\": \"fleet\""), std::string::npos);
    EXPECT_NE(json.find("\"throughput\": {\"opsReplayed\": 16000"),
              std::string::npos);
    EXPECT_NE(json.find("\"tenant\": \"c\""), std::string::npos);
    EXPECT_EQ(json.find("opsPerSec"), std::string::npos);
    EXPECT_EQ(json.find("timing"), std::string::npos);

    // With timing, the rate and the timing object appear.
    const std::string timed = fleetJson(spec, result, true);
    EXPECT_NE(timed.find("opsPerSec"), std::string::npos);
    EXPECT_NE(timed.find("\"timing\": {\"jobs\": "), std::string::npos);

    // The summary printer is deterministic too.
    std::ostringstream a, b;
    printFleetSummary(a, result);
    printFleetSummary(b, runFleet(spec, 8));
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("fleet: 4 tenants"), std::string::npos);
    EXPECT_NE(a.str().find("tenant a: workload=zipf"),
              std::string::npos);
}

TEST(FleetReport, ChecksumRendersAsHexString)
{
    FleetSpec spec;
    spec.tenants = {mustParse("t workload=zipf")};
    spec.durationOps = 2000;
    const FleetResult result = runFleet(spec, 1);
    char expect[32];
    std::snprintf(expect, sizeof(expect), "\"%016llx\"",
                  static_cast<unsigned long long>(
                      result.tenants[0].replay.checksum));
    EXPECT_NE(fleetJson(spec, result, false).find(expect),
              std::string::npos);
}

TEST(FleetResultApi, OpsPerSec)
{
    FleetResult r;
    r.totalOps = 5000;
    r.elapsedMs = 0;
    EXPECT_EQ(r.opsPerSec(), 0.0);
    r.elapsedMs = 500;
    EXPECT_DOUBLE_EQ(r.opsPerSec(), 10000.0);
}

} // namespace
} // namespace califorms::fleet
