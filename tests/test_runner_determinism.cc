/**
 * @file test_runner_determinism.cc
 * Property tests for the experiment runner:
 *
 *  - runBenchmark with a fixed (layoutSeed, kernelSeed) is exactly
 *    reproducible across invocations — the foundation the parallel
 *    campaign engine's determinism guarantee rests on;
 *  - with CFORM instruction issue disabled, varying only the layout
 *    seed leaves the retired instruction count unchanged — the paper's
 *    "same ref input, recompiled binary" invariant (the randomized
 *    layouts move data, not code);
 *  - with CFORM issue enabled the instruction stream legitimately
 *    tracks the layout (one CFORM per security span), which is why the
 *    benches disable CFORM for their baseline binaries.
 */

#include <gtest/gtest.h>

#include "workload/runner.hh"

namespace califorms
{
namespace
{

const char *const kBenchmarks[] = {"mcf", "perlbench", "gobmk"};
const InsertionPolicy kPolicies[] = {InsertionPolicy::Full,
                                     InsertionPolicy::Intelligent,
                                     InsertionPolicy::FullFixed};

RunConfig
config(InsertionPolicy policy, std::uint64_t layout_seed, bool cform)
{
    RunConfig c;
    c.scale = 0.02;
    c.policy = policy;
    c.layoutSeed = layout_seed;
    c.withCform(cform);
    return c;
}

TEST(RunnerDeterminism, RepeatedRunsAreIdentical)
{
    for (const char *name : kBenchmarks) {
        const auto &bench = findBenchmark(name);
        for (const InsertionPolicy policy : kPolicies) {
            const RunConfig c = config(policy, 1234, true);
            const RunResult a = runBenchmark(bench, c);
            const RunResult b = runBenchmark(bench, c);
            EXPECT_EQ(a.cycles, b.cycles) << name;
            EXPECT_EQ(a.instructions, b.instructions) << name;
            EXPECT_EQ(a.mem.l1.hits, b.mem.l1.hits) << name;
            EXPECT_EQ(a.mem.l1.misses, b.mem.l1.misses) << name;
            EXPECT_EQ(a.mem.dramAccesses, b.mem.dramAccesses) << name;
            EXPECT_EQ(a.mem.cformOps, b.mem.cformOps) << name;
            EXPECT_EQ(a.heap.allocs, b.heap.allocs) << name;
            EXPECT_EQ(a.heap.peakHeapBytes, b.heap.peakHeapBytes)
                << name;
            EXPECT_EQ(a.exceptionsDelivered, b.exceptionsDelivered)
                << name;
        }
    }
}

TEST(RunnerDeterminism, LayoutSeedDoesNotChangeInstructions)
{
    // The paper recompiles the same benchmark with differently
    // randomized layouts; the instruction stream over the data is
    // unchanged. With CFORM issue off, only placement varies.
    for (const char *name : kBenchmarks) {
        const auto &bench = findBenchmark(name);
        for (const InsertionPolicy policy : kPolicies) {
            const RunResult a =
                runBenchmark(bench, config(policy, 1000, false));
            std::uint64_t prev_cycles = a.cycles;
            bool cycles_varied = false;
            for (const std::uint64_t seed : {2000u, 333u, 914712u}) {
                const RunResult r =
                    runBenchmark(bench, config(policy, seed, false));
                EXPECT_EQ(r.instructions, a.instructions)
                    << name << " seed " << seed;
                cycles_varied |= r.cycles != prev_cycles;
                prev_cycles = r.cycles;
            }
            // Not asserted per-benchmark (a kernel whose working set
            // dodges the randomized spans can tie), but the layouts
            // must actually differ somewhere across the suite.
            (void)cycles_varied;
        }
    }
}

TEST(RunnerDeterminism, KernelSeedChangesWork)
{
    const auto &bench = findBenchmark("mcf");
    RunConfig c = config(InsertionPolicy::None, 1000, false);
    const RunResult a = runBenchmark(bench, c);
    c.kernelSeed = 0xfeedbeef;
    const RunResult b = runBenchmark(bench, c);
    // A different kernel seed is a different input: the address stream
    // changes even though the binary (layout) is the same.
    EXPECT_NE(a.mem.l1.hits + a.mem.l1.misses,
              0u); // sanity: the kernel touched memory
    EXPECT_TRUE(a.cycles != b.cycles ||
                a.mem.l1.misses != b.mem.l1.misses);
}

TEST(RunnerDeterminism, BaselinePolicyIgnoresLayoutSeed)
{
    // Policy None adds no security bytes, so the layout seed must not
    // change anything at all.
    const auto &bench = findBenchmark("perlbench");
    const RunResult a =
        runBenchmark(bench, config(InsertionPolicy::None, 7, true));
    const RunResult b =
        runBenchmark(bench, config(InsertionPolicy::None, 999, true));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mem.l1.misses, b.mem.l1.misses);
}

TEST(RunnerDeterminism, CformTracksLayoutByDesign)
{
    // Documented counter-property: with CFORM issue enabled the
    // instruction count includes one CFORM per security span, so it
    // may move with the layout seed. Assert only that CFORMs were
    // actually issued (the guard that makes the invariant above
    // meaningful).
    const auto &bench = findBenchmark("mcf");
    const RunResult r =
        runBenchmark(bench, config(InsertionPolicy::Full, 1000, true));
    EXPECT_GT(r.heap.cformsIssued, 0u);
    EXPECT_GT(r.mem.cformOps, 0u);
}

} // namespace
} // namespace califorms
