/**
 * @file test_core_model.cc
 * Tests for the analytical OoO core model: width scaling, dependent
 * load serialization, MLP overlap of independent misses, store buffer
 * absorption, and monotonicity in memory latency (the property the
 * Figure 10 experiment rests on).
 */

#include <gtest/gtest.h>

#include "sim/core_model.hh"

namespace califorms
{
namespace
{

CoreParams
defaultCore()
{
    return CoreParams{};
}

TEST(CoreModel, ComputeThroughputMatchesWidth)
{
    CoreModel core(defaultCore(), 4);
    for (int i = 0; i < 400; ++i)
        core.retireCompute(3); // 4 uops each
    // 1600 uops at width 4 = 400 cycles.
    EXPECT_EQ(core.cycles(), 400u);
    EXPECT_EQ(core.instructions(), 1600u);
}

TEST(CoreModel, DependentLoadPaysFullLatency)
{
    CoreModel core(defaultCore(), 4);
    core.retireLoad(120, true);
    EXPECT_EQ(core.cycles(), 120u);
}

TEST(CoreModel, IndependentMissAmortizedByMlp)
{
    CoreParams p;
    p.issueWidth = 4;
    p.mlp = 6;
    CoreModel core(p, 4);
    core.retireLoad(124, false); // penalty 120, amortized /6 = 20
    EXPECT_EQ(core.cycles(), static_cast<Cycles>(0.25 + 20.0));
}

TEST(CoreModel, L1HitLoadsAreCheap)
{
    CoreModel core(defaultCore(), 4);
    for (int i = 0; i < 100; ++i)
        core.retireLoad(4, false); // L1 hits: no penalty
    EXPECT_EQ(core.cycles(), 25u); // 100 / width
}

TEST(CoreModel, StoreMissesMostlyAbsorbed)
{
    CoreParams p;
    CoreModel store_core(p, 4);
    CoreModel load_core(p, 4);
    store_core.retireStore(124);
    load_core.retireLoad(124, false);
    EXPECT_LT(store_core.cycles(), load_core.cycles());
}

TEST(CoreModel, CformCostsLikeStore)
{
    CoreModel a(defaultCore(), 4);
    CoreModel b(defaultCore(), 4);
    a.retireStore(11);
    b.retireCform(11);
    EXPECT_EQ(a.cycles(), b.cycles());
}

TEST(CoreModel, MonotonicInLatency)
{
    // More cycles of memory latency can never make the program faster —
    // the property behind the +1 cycle L2/L3 experiment.
    for (bool dependent : {false, true}) {
        Cycles prev = 0;
        for (Cycles lat = 4; lat < 200; lat += 7) {
            CoreModel core(defaultCore(), 4);
            for (int i = 0; i < 50; ++i) {
                core.retireLoad(lat, dependent);
                core.retireCompute(5);
            }
            EXPECT_GE(core.cycles(), prev) << "lat=" << lat;
            prev = core.cycles();
        }
    }
}

TEST(CoreModel, SmallLatencyDeltaSmallSlowdown)
{
    // +1 cycle on a miss that already costs 11 cycles produces a
    // sub-percent slowdown for a mixed instruction stream — the Figure
    // 10 regime.
    auto run = [](Cycles miss_lat) {
        CoreModel core(defaultCore(), 4);
        for (int i = 0; i < 10000; ++i) {
            core.retireCompute(6);
            core.retireLoad(i % 10 == 0 ? miss_lat : 4, false);
        }
        return core.cycles();
    };
    const double slowdown =
        static_cast<double>(run(12)) / static_cast<double>(run(11)) - 1.0;
    EXPECT_GT(slowdown, 0.0);
    EXPECT_LT(slowdown, 0.01);
}

TEST(CoreModel, ResetClearsState)
{
    CoreModel core(defaultCore(), 4);
    core.retireCompute(100);
    core.reset();
    EXPECT_EQ(core.cycles(), 0u);
    EXPECT_EQ(core.instructions(), 0u);
}

TEST(CoreModel, WiderCoreIsFaster)
{
    CoreParams narrow;
    narrow.issueWidth = 1;
    CoreParams wide;
    wide.issueWidth = 8;
    CoreModel a(narrow, 4), b(wide, 4);
    for (int i = 0; i < 1000; ++i) {
        a.retireCompute(2);
        b.retireCompute(2);
    }
    EXPECT_GT(a.cycles(), b.cycles());
}

} // namespace
} // namespace califorms
