/**
 * @file test_report.cc
 * Campaign report tests, including the golden-output test: the JSON
 * for a fixed --quick-sized campaign must match the checked-in
 * expectation byte for byte (timing omitted — it is the one
 * non-deterministic part of a report). Regenerate the golden file
 * after an intentional schema or simulator change with:
 *
 *   CALIFORMS_REGEN_GOLDEN=1 ./test_report
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/report.hh"

#ifndef CALIFORMS_GOLDEN_DIR
#error "build must define CALIFORMS_GOLDEN_DIR"
#endif

namespace califorms
{
namespace
{

exp::CampaignSpec
goldenSpec()
{
    exp::CampaignSpec spec;
    spec.name = "golden_quick";
    spec.suite = {&findBenchmark("mcf")};
    spec.variants = {
        {"base", InsertionPolicy::None, 0, 0, false, false, {}},
        {"full/3 CFORM", InsertionPolicy::Full, 3, 0, true, true, {}},
    };
    spec.layoutSeeds = {1000, 1001};
    spec.base.scale = 0.05;
    return spec;
}

std::string
goldenPath()
{
    return std::string(CALIFORMS_GOLDEN_DIR) + "/campaign_quick.json";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ReportGolden, JsonMatchesCheckedInExpectation)
{
    const auto result = exp::runCampaign(goldenSpec(), 2);
    exp::ReportTiming timing;
    timing.include = false;
    const std::string json = exp::campaignJson(result, timing);

    if (std::getenv("CALIFORMS_REGEN_GOLDEN")) {
        exp::writeReportFile(goldenPath(), json);
        GTEST_SKIP() << "regenerated " << goldenPath();
    }
    const std::string expected = slurp(goldenPath());
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << goldenPath()
        << " (run with CALIFORMS_REGEN_GOLDEN=1 to create it)";
    EXPECT_EQ(json, expected);
}

TEST(Report, TimingIsSegregatedAndOptional)
{
    const auto result = exp::runCampaign(goldenSpec(), 1);
    exp::ReportTiming with;
    with.jobs = 4;
    with.elapsedMs = 12.5;
    exp::ReportTiming without;
    without.include = false;

    const std::string a = exp::campaignJson(result, with);
    const std::string b = exp::campaignJson(result, without);
    EXPECT_NE(a.find("\"timing\": {\"jobs\": 4, \"elapsedMs\": 12.5}"),
              std::string::npos);
    EXPECT_EQ(b.find("\"timing\""), std::string::npos);
    // Stripping the timing line reduces a to b: nothing else differs.
    std::string stripped;
    std::istringstream lines(a);
    for (std::string line; std::getline(lines, line);)
        if (line.find("\"timing\"") == std::string::npos)
            stripped += line + "\n";
    EXPECT_EQ(stripped, b);
}

TEST(Report, JsonIsJobCountInvariant)
{
    exp::ReportTiming timing;
    timing.include = false;
    const std::string serial =
        exp::campaignJson(exp::runCampaign(goldenSpec(), 1), timing);
    const std::string parallel =
        exp::campaignJson(exp::runCampaign(goldenSpec(), 8), timing);
    EXPECT_EQ(serial, parallel);
}

TEST(Report, CsvHasOneRowPerRun)
{
    const auto result = exp::runCampaign(goldenSpec(), 2);
    const std::string csv = exp::campaignCsv(result);
    std::size_t lines = 0;
    for (const char c : csv)
        lines += c == '\n';
    // header + base(1 seed) + full/3(2 seeds)
    EXPECT_EQ(lines, 4u);
    EXPECT_EQ(csv.find("benchmark,variant,policy,maxSpan,fixedSpan,"
                       "layoutSeed,cycles"),
              0u);
    EXPECT_NE(csv.find("mcf,full/3 CFORM,full,3,0,1001,"),
              std::string::npos);
}

TEST(Report, CsvQuotesHostileLabels)
{
    exp::CampaignSpec spec = goldenSpec();
    spec.variants[1].label = "a,b\"c";
    const auto result = exp::runCampaign(spec, 1);
    const std::string csv = exp::campaignCsv(result);
    // RFC 4180: the field is quoted and the embedded quote doubled,
    // so the row count and column count survive hostile labels.
    EXPECT_NE(csv.find("mcf,\"a,b\"\"c\",full,3,"), std::string::npos);
}

TEST(Report, JsonEscapesLabels)
{
    exp::CampaignSpec spec = goldenSpec();
    spec.variants[1].label = "a\"b\\c\nd";
    const auto result = exp::runCampaign(spec, 1);
    exp::ReportTiming timing;
    timing.include = false;
    const std::string json = exp::campaignJson(result, timing);
    EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(Report, WriteFileRejectsBadPath)
{
    EXPECT_THROW(
        exp::writeReportFile("/nonexistent-dir/x/report.json", "{}"),
        std::runtime_error);
}

} // namespace
} // namespace califorms
