/**
 * @file test_heap.cc
 * Heap allocator tests: intra-object califorming, inter-object guards,
 * clean-before-use free semantics, quarantine-based temporal safety,
 * zero-on-free, CFORM accounting, and reuse correctness.
 */

#include <gtest/gtest.h>

#include "alloc/heap.hh"

namespace califorms
{
namespace
{

StructDefPtr
sampleStruct()
{
    return std::make_shared<StructDef>(
        "s", std::vector<Field>{{"c", Type::charType()},
                                {"i", Type::intType()},
                                {"buf", Type::array(Type::charType(), 24)},
                                {"p", Type::pointer()}});
}

struct Harness
{
    Machine machine;
    HeapAllocator heap;

    explicit Harness(HeapParams params = HeapParams{})
        : machine(), heap(machine, params)
    {}

    std::shared_ptr<const SecureLayout>
    layout(InsertionPolicy policy, std::uint64_t seed = 1)
    {
        LayoutTransformer t(policy, PolicyParams{}, seed);
        return std::make_shared<SecureLayout>(
            t.transform(*sampleStruct()));
    }
};

TEST(Heap, AllocationIsAlignedAndUsable)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::None);
    const Addr addr = h.heap.allocate(layout);
    EXPECT_EQ(addr % 8, 0u);
    h.machine.store(addr, 4, 0x1234);
    EXPECT_EQ(h.machine.load(addr, 4), 0x1234u);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
}

TEST(Heap, IntraObjectSecurityBytesEstablished)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::Full);
    ASSERT_GT(layout->securityByteCount(), 0u);
    const Addr addr = h.heap.allocate(layout);
    // Every span byte is blacklisted in the machine.
    for (const auto &span : layout->securityBytes) {
        for (std::size_t i = 0; i < span.size; ++i) {
            const Addr b = addr + span.offset + i;
            EXPECT_TRUE(h.machine.securityMask(b) &
                        (1ull << lineOffset(b)))
                << "offset " << span.offset + i;
        }
    }
    // Field bytes are not.
    for (const auto &f : layout->fields) {
        const Addr b = addr + f.offset;
        EXPECT_FALSE(h.machine.securityMask(b) & (1ull << lineOffset(b)));
    }
}

TEST(Heap, InterObjectGuardsTrapLinearOverflow)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::None);
    const Addr addr = h.heap.allocate(layout);
    // One byte past the payload is a guard security byte.
    h.machine.load(addr + layout->size, 1);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 1u);
    // One byte before the payload likewise (underflow).
    h.machine.load(addr - 1, 1);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 2u);
}

TEST(Heap, FreeBlacklistsWholePayload)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::None);
    const Addr addr = h.heap.allocate(layout);
    h.machine.store(addr, 8, ~0ull);
    h.heap.free(addr);
    // Use after free: every byte traps.
    h.machine.load(addr, 8);
    EXPECT_GE(h.machine.exceptions().deliveredCount(), 1u);
    EXPECT_EQ(h.machine.exceptions().delivered()[0].faultAddr, addr);
}

TEST(Heap, FreeZeroesData)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::None);
    const Addr addr = h.heap.allocate(layout);
    h.machine.store(addr, 8, 0xdeadbeefcafef00dull);
    h.heap.free(addr);
    // Zero-on-free (Section 7.2): even a functional peek sees zeros.
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(h.machine.peekByte(addr + i), 0u);
}

TEST(Heap, QuarantineDelaysReuse)
{
    HeapParams params;
    params.quarantineFraction = 1.0; // quarantine effectively unbounded
    Harness h(params);
    const auto layout = h.layout(InsertionPolicy::None);
    const Addr a = h.heap.allocate(layout);
    h.heap.free(a);
    const Addr b = h.heap.allocate(layout);
    EXPECT_NE(a, b) << "freed block must not be recycled immediately";
    EXPECT_EQ(h.heap.stats().reuses, 0u);
}

TEST(Heap, RecycledAfterQuarantineDrains)
{
    HeapParams params;
    params.quarantineFraction = 0.0; // recycle immediately
    Harness h(params);
    const auto layout = h.layout(InsertionPolicy::None);
    const Addr a = h.heap.allocate(layout);
    h.heap.free(a);
    const Addr b = h.heap.allocate(layout);
    EXPECT_EQ(a, b);
    EXPECT_EQ(h.heap.stats().reuses, 1u);
    // The recycled block is clean where fields live and guarded around.
    h.machine.store(b, 4, 7);
    EXPECT_EQ(h.machine.load(b, 4), 7u);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
}

TEST(Heap, ReuseReestablishesIntraObjectSpans)
{
    HeapParams params;
    params.quarantineFraction = 0.0;
    Harness h(params);
    const auto layout = h.layout(InsertionPolicy::Full);
    const Addr a = h.heap.allocate(layout);
    h.heap.free(a);
    const Addr b = h.heap.allocate(layout);
    ASSERT_EQ(a, b);
    for (const auto &span : layout->securityBytes) {
        const Addr byte = b + span.offset;
        EXPECT_TRUE(h.machine.securityMask(byte) &
                    (1ull << lineOffset(byte)));
    }
    for (const auto &f : layout->fields) {
        const Addr byte = b + f.offset;
        EXPECT_FALSE(h.machine.securityMask(byte) &
                     (1ull << lineOffset(byte)));
    }
}

TEST(Heap, ArrayAllocationGuardsElements)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::Full);
    const std::size_t count = 5;
    const Addr base = h.heap.allocate(layout, count);
    // Each element's spans are blacklisted.
    for (std::size_t e = 0; e < count; ++e) {
        for (const auto &span : layout->securityBytes) {
            const Addr byte = base + e * layout->size + span.offset;
            EXPECT_TRUE(h.machine.securityMask(byte) &
                        (1ull << lineOffset(byte)))
                << "element " << e;
        }
    }
}

TEST(Heap, DistinctAllocationsDoNotOverlap)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::Full);
    std::vector<std::pair<Addr, Addr>> ranges;
    for (int i = 0; i < 50; ++i) {
        const Addr a = h.heap.allocate(layout);
        ranges.emplace_back(a, a + layout->size);
    }
    for (std::size_t i = 0; i < ranges.size(); ++i)
        for (std::size_t j = i + 1; j < ranges.size(); ++j)
            EXPECT_TRUE(ranges[i].second <= ranges[j].first ||
                        ranges[j].second <= ranges[i].first);
}

TEST(Heap, CformAccountingOneOpPerTouchedLine)
{
    HeapParams params;
    params.guardBytes = 8;
    Harness h(params);
    const auto layout = h.layout(InsertionPolicy::None);
    const std::uint64_t before = h.heap.stats().cformsIssued;
    const Addr addr = h.heap.allocate(layout);
    const std::uint64_t ops = h.heap.stats().cformsIssued - before;
    // Footprint = guards + ~42B payload, line rounded: one line.
    const std::size_t lines =
        (lineBase(addr + layout->size + params.guardBytes - 1) -
         lineBase(addr - params.guardBytes)) /
            lineBytes +
        1;
    EXPECT_LE(ops, lines);
    EXPECT_GT(ops, 0u);
}

TEST(Heap, NoCformModeIssuesNothingAndNothingFaults)
{
    HeapParams params;
    params.useCform = false;
    Harness h(params);
    const auto layout = h.layout(InsertionPolicy::Full);
    const Addr addr = h.heap.allocate(layout);
    EXPECT_EQ(h.heap.stats().cformsIssued, 0u);
    EXPECT_EQ(h.machine.memStats().cformOps, 0u);
    // Without CFORM there is no blacklist: even span bytes are plain.
    h.machine.load(addr + layout->securityBytes.front().offset, 1);
    h.heap.free(addr);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
}

TEST(Heap, NonTemporalModeFlagsOps)
{
    HeapParams params;
    params.nonTemporalCform = true;
    Harness h(params);
    const auto layout = h.layout(InsertionPolicy::Full);
    h.heap.allocate(layout);
    EXPECT_GT(h.heap.stats().cformsIssued, 0u);
    EXPECT_GT(h.machine.memStats().cformOps, 0u);
}

TEST(Heap, StatsTrackLiveAndQuarantine)
{
    HeapParams params;
    params.quarantineFraction = 1.0;
    Harness h(params);
    const auto layout = h.layout(InsertionPolicy::None);
    const Addr a = h.heap.allocate(layout);
    EXPECT_EQ(h.heap.stats().allocs, 1u);
    EXPECT_EQ(h.heap.stats().liveBytes, layout->size);
    EXPECT_TRUE(h.heap.isLive(a));
    EXPECT_TRUE(h.heap.isLive(a + layout->size - 1));
    EXPECT_FALSE(h.heap.isLive(a + layout->size));
    h.heap.free(a);
    EXPECT_EQ(h.heap.stats().frees, 1u);
    EXPECT_EQ(h.heap.stats().liveBytes, 0u);
    EXPECT_GT(h.heap.stats().quarantinedBytes, 0u);
    EXPECT_FALSE(h.heap.isLive(a));
}

TEST(Heap, DoubleFreeAndForeignFreeRejected)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::None);
    const Addr a = h.heap.allocate(layout);
    h.heap.free(a);
    EXPECT_THROW(h.heap.free(a), std::invalid_argument);
    EXPECT_THROW(h.heap.free(0xdead0000), std::invalid_argument);
}

TEST(Heap, AllocateRawGuardsOnly)
{
    Harness h;
    const Addr a = h.heap.allocateRaw(100);
    h.machine.store(a + 50, 4, 9);
    EXPECT_EQ(h.machine.load(a + 50, 4), 9u);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
    h.machine.load(a + 100, 1); // guard
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 1u);
}

TEST(Heap, RejectsBadArguments)
{
    Harness h;
    EXPECT_THROW(h.heap.allocate(nullptr), std::invalid_argument);
    EXPECT_THROW(h.heap.allocateRaw(0), std::invalid_argument);
    const auto layout = h.layout(InsertionPolicy::None);
    EXPECT_THROW(h.heap.allocate(layout, 0), std::invalid_argument);
}

} // namespace
} // namespace califorms
