/**
 * @file test_repl.cc
 * Replacement-policy laboratory tests: set-dueling arithmetic, policy
 * determinism (including the seeded Random policy), the in-place
 * overwrite-counts-as-reference rule, califormed-victim accounting at
 * the array and at the machine aggregation, the pinned
 * DRRIP-beats-LRU-on-scan comparison, config-key parsing, and
 * jobs-invariance of a mem.repl_policy sweep axis.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/line.hh"
#include "exp/campaign.hh"
#include "exp/report.hh"
#include "sim/cache_array.hh"
#include "sim/repl/policy.hh"
#include "workload/runner.hh"
#include "workload/synth.hh"

namespace califorms
{
namespace
{

const SpecBenchmark &
adversarialBench(const std::string &name)
{
    for (const auto &b : adversarialSuite())
        if (b.name == name)
            return b;
    throw std::invalid_argument("no adversarial bench " + name);
}

constexpr ReplPolicy kAllPolicies[] = {
    ReplPolicy::Lru, ReplPolicy::Random, ReplPolicy::Dip,
    ReplPolicy::Drrip, ReplPolicy::Ship};

TEST(SetDuel, LeaderSetsFollowTheConstellation)
{
    // One leader pair per kLeaderModulus sets, at offsets 0 and 1.
    EXPECT_TRUE(repl::SetDuel::isLeaderA(0));
    EXPECT_TRUE(repl::SetDuel::isLeaderB(1));
    EXPECT_FALSE(repl::SetDuel::isLeaderA(1));
    EXPECT_FALSE(repl::SetDuel::isLeaderB(0));
    for (std::size_t s = 2; s < repl::SetDuel::kLeaderModulus; ++s) {
        EXPECT_FALSE(repl::SetDuel::isLeaderA(s)) << s;
        EXPECT_FALSE(repl::SetDuel::isLeaderB(s)) << s;
    }
    EXPECT_TRUE(repl::SetDuel::isLeaderA(32));
    EXPECT_TRUE(repl::SetDuel::isLeaderB(33));
    EXPECT_TRUE(repl::SetDuel::isLeaderA(64));
}

TEST(SetDuel, PselTrainsOnLeaderMissesOnly)
{
    repl::SetDuel duel;
    EXPECT_EQ(duel.psel(), repl::SetDuel::kPselInit);
    // Followers start on policy A; leaders are pinned to their own.
    EXPECT_FALSE(duel.useB(5));
    EXPECT_FALSE(duel.useB(0));
    EXPECT_TRUE(duel.useB(1));

    // Follower misses never move the counter.
    duel.onMiss(5);
    duel.onMiss(7);
    EXPECT_EQ(duel.psel(), repl::SetDuel::kPselInit);

    // A-leader misses vote for B; one miss flips the followers.
    duel.onMiss(0);
    EXPECT_EQ(duel.psel(), repl::SetDuel::kPselInit + 1);
    EXPECT_TRUE(duel.useB(5));
    EXPECT_FALSE(duel.useB(0)); // leader stays pinned
    // B-leader misses vote for A.
    duel.onMiss(1);
    duel.onMiss(33);
    EXPECT_EQ(duel.psel(), repl::SetDuel::kPselInit - 1);
    EXPECT_FALSE(duel.useB(5));

    // The counter saturates at both ends.
    for (unsigned i = 0; i < 3 * repl::SetDuel::kPselMax; ++i)
        duel.onMiss(1);
    EXPECT_EQ(duel.psel(), 0u);
    for (unsigned i = 0; i < 3 * repl::SetDuel::kPselMax; ++i)
        duel.onMiss(0);
    EXPECT_EQ(duel.psel(), repl::SetDuel::kPselMax);
}

/** Feed one deterministic access/insert mix and record the eviction
 *  order. */
std::vector<Addr>
evictionTrace(ReplPolicy policy)
{
    CacheArray<int> cache(4 * 1024, 4, policy);
    std::vector<Addr> evicted;
    std::uint64_t x = 0x1234'5678'9abc'def0ull;
    for (unsigned i = 0; i < 20000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr la = (x % 512) * lineBytes;
        if (!cache.access(la, (x >> 32) % 4 == 0)) {
            const auto ev =
                cache.insert(la, static_cast<int>(i), (x >> 40) % 8 == 0);
            if (ev.valid)
                evicted.push_back(ev.lineAddr);
        }
    }
    EXPECT_FALSE(evicted.empty());
    return evicted;
}

TEST(ReplPolicies, EveryPolicyIsDeterministic)
{
    // Identical construction + identical stimulus must give an
    // identical eviction sequence — including Random, whose xorshift
    // stream is seeded at construction, not from global state.
    for (const ReplPolicy p : kAllPolicies)
        EXPECT_EQ(evictionTrace(p), evictionTrace(p))
            << replPolicyName(p);
}

TEST(ReplPolicies, PoliciesActuallyDiffer)
{
    // The laboratory is pointless if the hooks collapse to one
    // behaviour; LRU and Random must disagree on the stimulus above.
    EXPECT_NE(evictionTrace(ReplPolicy::Lru),
              evictionTrace(ReplPolicy::Random));
}

TEST(ReplPolicies, InPlaceOverwriteCountsAsReference)
{
    // Re-inserting a resident line routes through onHit: an
    // upgrade-write refreshes recency under every deterministic
    // policy, so the untouched co-resident is the victim.
    for (const ReplPolicy p : {ReplPolicy::Lru, ReplPolicy::Dip,
                               ReplPolicy::Drrip, ReplPolicy::Ship}) {
        CacheArray<int> cache(2 * lineBytes, 2, p); // one set, two ways
        cache.insert(0 * lineBytes, 1, false);
        cache.insert(1 * lineBytes, 2, false);
        const auto refresh = cache.insert(0 * lineBytes, 3, true);
        EXPECT_FALSE(refresh.valid) << replPolicyName(p);
        const auto ev = cache.insert(2 * lineBytes, 4, false);
        ASSERT_TRUE(ev.valid) << replPolicyName(p);
        EXPECT_EQ(ev.lineAddr, 1u * lineBytes) << replPolicyName(p);
        EXPECT_EQ(ev.line, 2) << replPolicyName(p);
        // The refresh merged the dirty bit into the surviving copy.
        EXPECT_TRUE(cache.dirtyAt(0)) << replPolicyName(p);
    }
}

TEST(ReplPolicies, CformEvictionsCountCaliformedVictims)
{
    CacheArray<BitVectorLine> cache(2 * lineBytes, 2);
    BitVectorLine masked;
    masked.mask = 0x00ff'0000'0000'0000ull;
    cache.insert(0 * lineBytes, masked, false);
    cache.insert(1 * lineBytes, BitVectorLine{}, false);
    // LRU victim is the califormed line.
    auto ev = cache.insert(2 * lineBytes, BitVectorLine{}, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.line.califormed());
    EXPECT_EQ(cache.stats().cformEvictions, 1u);
    // The next victim is clean of security bytes; the counter holds.
    ev = cache.insert(3 * lineBytes, BitVectorLine{}, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_FALSE(ev.line.califormed());
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.stats().cformEvictions, 1u);
}

RunResult
runAdversarial(const std::string &bench, ReplPolicy policy)
{
    RunConfig config;
    config.scale = 1.0;
    config.synth.ops = 60000;
    config.machine.mem.levels = 2; // isolate the L2, the duel arena
    config.machine.mem.replPolicy = ReplPolicy::Lru;
    config.machine.mem.l2ReplPolicy = policy;
    return runBenchmark(adversarialBench(bench), config);
}

TEST(ReplLab, DrripBeatsLruOnScan)
{
    // The acceptance pin: on the scan microworkload the streaming
    // episodes flush an LRU L2's hot set every period, while RRIP
    // aging drains the never-reused scan lines first. The measured gap
    // is wide (~71% vs ~44% L2 miss rate), so assert a robust margin:
    // LRU misses at least 1.3x more.
    const RunResult lru = runAdversarial("scan", ReplPolicy::Inherit);
    const RunResult drrip = runAdversarial("scan", ReplPolicy::Drrip);
    EXPECT_EQ(lru.mem.l1.misses + lru.mem.l1.hits,
              drrip.mem.l1.misses + drrip.mem.l1.hits);
    EXPECT_GT(lru.mem.l2.misses * 10, drrip.mem.l2.misses * 13);
}

TEST(ReplLab, MixedReportsCaliformedVictimsPerLevel)
{
    // The mixed workload CFORM-protects its hot objects, so whether a
    // policy preferentially evicts califormed lines shows up directly
    // in the per-level counters — including the L1, whose counter is
    // aggregated across cores by Machine::memStats.
    RunConfig config;
    config.scale = 1.0;
    config.synth.ops = 40000;
    config.machine.mem.replPolicy = ReplPolicy::Drrip;
    const RunResult r =
        runBenchmark(adversarialBench("mixed"), config);
    EXPECT_GT(r.mem.l1.cformEvictions, 0u);
    EXPECT_GT(r.mem.l2.cformEvictions, 0u);
    EXPECT_LE(r.mem.l1.cformEvictions, r.mem.l1.evictions);
}

TEST(ReplSweep, PolicyAxisIsJobsInvariant)
{
    exp::CampaignSpec spec;
    spec.name = "repl_sweep";
    spec.suite.push_back(&adversarialBench("scan"));
    spec.suite.push_back(&adversarialBench("thrash"));
    spec.variants = exp::CampaignSpec::crossKey(
        {{"base", InsertionPolicy::None, 0, 0, std::nullopt, false,
          {}}},
        "mem.repl_policy", {"lru", "random", "drrip", "ship"});
    spec.base.scale = 1.0;
    spec.base.synth.ops = 3000;
    const auto serial = exp::runCampaign(spec, 1);
    const auto parallel = exp::runCampaign(spec, 4);
    const exp::ReportTiming timing{false, 1, 0.0};
    EXPECT_EQ(exp::campaignJson(serial, timing),
              exp::campaignJson(parallel, timing));
}

} // namespace
} // namespace califorms
