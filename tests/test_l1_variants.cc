/**
 * @file test_l1_variants.cc
 * Round-trip and format tests for the Appendix A L1 variants
 * (califorms-4B of Figure 14 and califorms-1B of Figure 15).
 */

#include <gtest/gtest.h>

#include "core/l1_variants.hh"
#include "util/rng.hh"

namespace califorms
{
namespace
{

BitVectorLine
randomLine(Rng &rng, unsigned security_bytes)
{
    BitVectorLine line;
    for (auto &b : line.data.bytes)
        b = static_cast<std::uint8_t>(rng.next() & 0xff);
    unsigned placed = 0;
    while (placed < security_bytes) {
        const unsigned i = static_cast<unsigned>(rng.nextBelow(lineBytes));
        if (!line.isSecurityByte(i)) {
            line.mask |= 1ull << i;
            ++placed;
        }
    }
    line.canonicalize();
    return line;
}

class VariantRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(VariantRoundTrip, Cal4B)
{
    Rng rng(100 + GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        const BitVectorLine line = randomLine(rng, GetParam());
        const BitVectorLine back = decodeCal4B(encodeCal4B(line));
        EXPECT_EQ(back.mask, line.mask);
        EXPECT_EQ(back.data, line.data);
    }
}

TEST_P(VariantRoundTrip, Cal1B)
{
    Rng rng(200 + GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        const BitVectorLine line = randomLine(rng, GetParam());
        const BitVectorLine back = decodeCal1B(encodeCal1B(line));
        EXPECT_EQ(back.mask, line.mask);
        EXPECT_EQ(back.data, line.data);
    }
}

INSTANTIATE_TEST_SUITE_P(SecurityByteCounts, VariantRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 8, 16, 32, 63,
                                           64));

TEST(Cal4B, CleanLineHasZeroMeta)
{
    Rng rng(1);
    const BitVectorLine line = randomLine(rng, 0);
    const Cal4BLine enc = encodeCal4B(line);
    for (unsigned c = 0; c < chunksPerLine; ++c)
        EXPECT_EQ(enc.meta[c], 0);
    EXPECT_EQ(enc.data, line.data);
}

TEST(Cal4B, MetaPointsAtSecurityByteHolder)
{
    // One security byte at byte 13 (chunk 1, offset 5): the chunk meta
    // must flag chunk 1 and point at offset 5, and the holder stores
    // the chunk's bit vector.
    BitVectorLine line;
    line.mask = 1ull << 13;
    line.canonicalize();
    const Cal4BLine enc = encodeCal4B(line);
    EXPECT_EQ(enc.meta[1], 0x8 | 5);
    EXPECT_EQ(enc.data[13], 1u << 5);
    EXPECT_EQ(enc.meta[0], 0);
}

TEST(Cal1B, HeaderByteHoldsBitVector)
{
    // Security byte at byte 3 of chunk 0: header byte 0 is normal, so
    // its value relocates into the last security byte (byte 3).
    BitVectorLine line;
    line.data[0] = 0x77;
    line.mask = 1ull << 3;
    line.canonicalize();
    const Cal1BLine enc = encodeCal1B(line);
    EXPECT_EQ(enc.meta, 1u);
    EXPECT_EQ(enc.data[0], 1u << 3); // bit vector in header
    EXPECT_EQ(enc.data[3], 0x77);    // relocated header value
    const BitVectorLine back = decodeCal1B(enc);
    EXPECT_EQ(back.data[0], 0x77);
    EXPECT_EQ(back.data[3], 0);
}

TEST(Cal1B, HeaderByteItselfSecurity)
{
    // When byte 0 of the chunk is a security byte no relocation is
    // needed (its data slot is dead).
    BitVectorLine line;
    line.data[1] = 0x55;
    line.mask = 1ull << 8; // chunk 1, byte 0
    line.canonicalize();
    const Cal1BLine enc = encodeCal1B(line);
    EXPECT_EQ(enc.meta, 2u);
    EXPECT_EQ(enc.data[8], 1u << 0);
    const BitVectorLine back = decodeCal1B(enc);
    EXPECT_EQ(back.mask, line.mask);
    EXPECT_EQ(back.data, line.data);
}

TEST(Variants, ChunkIndependence)
{
    // Califorming chunk 3 must not disturb the other chunks' data.
    Rng rng(9);
    BitVectorLine line = randomLine(rng, 0);
    line.mask = 0xffull << 24; // whole chunk 3 blacklisted
    line.canonicalize();
    const Cal1BLine enc1 = encodeCal1B(line);
    const Cal4BLine enc4 = encodeCal4B(line);
    for (unsigned i = 0; i < lineBytes; ++i) {
        if (i / chunkBytes == 3)
            continue;
        EXPECT_EQ(enc1.data[i], line.data[i]);
        EXPECT_EQ(enc4.data[i], line.data[i]);
    }
}

TEST(Variants, AllChunksFullyBlacklisted)
{
    BitVectorLine line;
    line.mask = ~0ull;
    const BitVectorLine b1 = decodeCal1B(encodeCal1B(line));
    const BitVectorLine b4 = decodeCal4B(encodeCal4B(line));
    EXPECT_EQ(b1.mask, ~0ull);
    EXPECT_EQ(b4.mask, ~0ull);
}

} // namespace
} // namespace califorms
