/**
 * @file test_trace.cc
 * Trace replay and serialization tests: round-trip through the text
 * and binary formats, header/truncation edge cases, format
 * auto-detection, streaming-vs-vector equivalence, replay determinism,
 * equivalence between trace replay and direct Machine calls, and the
 * stats dump.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats_dump.hh"
#include "sim/trace.hh"
#include "util/rng.hh"

namespace califorms
{
namespace
{

Trace
randomTrace(Rng &rng, std::size_t n)
{
    Trace trace;
    for (std::size_t i = 0; i < n; ++i) {
        const Addr addr = 0x10000 + 8 * rng.nextBelow(4096);
        switch (rng.nextBelow(4)) {
        case 0:
            trace.push_back(TraceOp::load(addr, 8, rng.chance(0.3)));
            break;
        case 1:
            trace.push_back(TraceOp::store(addr, 8, rng.next()));
            break;
        case 2: {
            // Set-then-unset pairs keep the CFORM K-map happy.
            const SecurityMask m = rng.next() & 0xff;
            if (m) {
                trace.push_back(
                    TraceOp::cformOp(makeSetOp(lineBase(addr), m)));
                trace.push_back(
                    TraceOp::cformOp(makeUnsetOp(lineBase(addr), m)));
            }
            break;
          }
        default:
            trace.push_back(TraceOp::compute(
                static_cast<std::uint32_t>(rng.nextBelow(16))));
        }
    }
    return trace;
}

TEST(TraceText, RoundTrip)
{
    Rng rng(5);
    const Trace trace = randomTrace(rng, 200);
    std::stringstream ss;
    writeTrace(ss, trace);
    const Trace back = readTrace(ss);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(back[i].kind, trace[i].kind) << i;
        EXPECT_EQ(back[i].addr, trace[i].addr) << i;
        EXPECT_EQ(back[i].size, trace[i].size) << i;
        EXPECT_EQ(back[i].value, trace[i].value) << i;
        EXPECT_EQ(back[i].dependsOnPrev, trace[i].dependsOnPrev) << i;
        EXPECT_EQ(back[i].computeOps, trace[i].computeOps) << i;
        EXPECT_EQ(back[i].cform.lineAddr, trace[i].cform.lineAddr) << i;
        EXPECT_EQ(back[i].cform.setBits, trace[i].cform.setBits) << i;
        EXPECT_EQ(back[i].cform.mask, trace[i].cform.mask) << i;
        EXPECT_EQ(back[i].cform.nonTemporal, trace[i].cform.nonTemporal)
            << i;
    }
}

TEST(TraceText, CommentsAndBlanksIgnored)
{
    std::stringstream ss("# header\n\nL 1000 8 dep\n# tail\nX 5\n");
    const Trace trace = readTrace(ss);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].kind, TraceOp::Kind::Load);
    EXPECT_TRUE(trace[0].dependsOnPrev);
    EXPECT_EQ(trace[1].computeOps, 5u);
}

/** Fuzz-style variant of randomTrace: mixed access sizes, dep flags,
 *  non-temporal CFORMs, zero-compute blocks. */
Trace
fuzzTrace(Rng &rng, std::size_t n)
{
    static const unsigned sizes[] = {1, 2, 4, 8};
    Trace trace;
    for (std::size_t i = 0; i < n; ++i) {
        const Addr addr = rng.next() & 0xffff'ffff'fff8ull;
        switch (rng.nextBelow(4)) {
        case 0:
            trace.push_back(TraceOp::load(
                addr, sizes[rng.nextBelow(4)], rng.chance(0.5)));
            break;
        case 1:
            trace.push_back(TraceOp::store(
                addr, sizes[rng.nextBelow(4)], rng.next()));
            break;
        case 2: {
            CformOp op;
            op.lineAddr = lineBase(addr);
            op.setBits = rng.next() & 0xff;
            op.mask = rng.next() & 0xff;
            op.nonTemporal = rng.chance(0.3);
            trace.push_back(TraceOp::cformOp(op));
            break;
          }
        default:
            trace.push_back(TraceOp::compute(
                static_cast<std::uint32_t>(rng.nextBelow(1000))));
        }
    }
    return trace;
}

TEST(TraceTextFuzz, SerializeIsAFixedPoint)
{
    // random trace -> text -> parse -> text must reproduce the first
    // text exactly: the serializer emits canonical form and the parser
    // loses nothing.
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        Rng rng(seed);
        const Trace trace = fuzzTrace(rng, 100 + rng.nextBelow(200));
        std::stringstream first;
        writeTrace(first, trace);
        const Trace parsed = readTrace(first);
        ASSERT_EQ(parsed.size(), trace.size()) << "seed " << seed;
        std::stringstream second;
        writeTrace(second, parsed);
        EXPECT_EQ(second.str(), first.str()) << "seed " << seed;
    }
}

TEST(TraceTextFuzz, MalformedLinesRejectedWithoutCrashing)
{
    const char *const malformed[] = {
        "L",                        // missing operands
        "L zz 8",                   // bad address
        "L 1000",                   // missing size
        "L 1000 0",                 // zero access size
        "L 1000 9",                 // oversized access
        "L 1000 8 junk",            // unknown trailing token
        "L 1000 8 dep junk",        // junk after the dep flag
        "S 1000 8",                 // store without a value
        "S 1000 99 5",              // oversized store
        "S 1000 8 5 extra",         // trailing junk
        "C 1000 ff",                // cform missing the mask
        "C 1000 ff f0 xx",          // bad nt flag
        "C 1000 ff f0 nt nt",       // junk after the nt flag
        "X",                        // compute without a count
        "X banana",                 // non-numeric count
        "X 99999999999999999999",   // count overflows uint32
        "X -1",                     // negative count must not wrap
        "S 1000 -1 5",              // negative size must not wrap
        "C 1000 -ff f0",            // negative set bits
        "L -1000 8",                // negative address
        "Q what",                   // unknown op
        "LL 1000 8",                // unknown multi-char op
    };
    for (const char *input : malformed) {
        std::stringstream ss(std::string(input) + "\n");
        EXPECT_THROW(readTrace(ss), std::runtime_error) << input;
    }
}

TEST(TraceTextFuzz, GarbageBytesRejectedOrIgnoredButNeverCrash)
{
    // Pure byte fuzz: whatever the parser does, it must either parse
    // or throw std::runtime_error — never crash or hang.
    Rng rng(0xf22);
    for (int round = 0; round < 200; ++round) {
        std::string blob;
        const std::size_t len = rng.nextBelow(160);
        for (std::size_t i = 0; i < len; ++i)
            blob += static_cast<char>(rng.nextBelow(128));
        std::stringstream ss(blob);
        try {
            const Trace t = readTrace(ss);
            (void)t;
        } catch (const std::runtime_error &) {
            // expected for most inputs
        }
    }
}

TEST(TraceText, BadInputReportsLine)
{
    std::stringstream ss("L 1000 8\nQ what\n");
    try {
        readTrace(ss);
        FAIL() << "expected exception";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

// Binary format -------------------------------------------------------

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].size, b[i].size) << i;
        EXPECT_EQ(a[i].value, b[i].value) << i;
        EXPECT_EQ(a[i].dependsOnPrev, b[i].dependsOnPrev) << i;
        EXPECT_EQ(a[i].computeOps, b[i].computeOps) << i;
        EXPECT_EQ(a[i].cform.lineAddr, b[i].cform.lineAddr) << i;
        EXPECT_EQ(a[i].cform.setBits, b[i].cform.setBits) << i;
        EXPECT_EQ(a[i].cform.mask, b[i].cform.mask) << i;
        EXPECT_EQ(a[i].cform.nonTemporal, b[i].cform.nonTemporal) << i;
    }
}

std::string
toBinary(const Trace &trace)
{
    std::ostringstream os;
    writeTraceBinary(os, trace);
    return os.str();
}

TEST(TraceBinary, RoundTrip)
{
    Rng rng(5);
    const Trace trace = randomTrace(rng, 300);
    std::stringstream ss(toBinary(trace));
    expectTracesEqual(readTraceBinary(ss), trace);
}

TEST(TraceBinary, ZeroOpTrace)
{
    std::stringstream ss(toBinary({}));
    EXPECT_TRUE(readTraceBinary(ss).empty());
    // And through auto-detection.
    std::stringstream ss2(toBinary({}));
    TraceOp op;
    EXPECT_FALSE(openTraceReader(ss2)->next(op));
    // A zero-op text trace, for symmetry.
    std::stringstream empty("");
    EXPECT_TRUE(readTrace(empty).empty());
}

TEST(TraceBinaryFuzz, TextAndBinaryAreEquivalentFixedPoints)
{
    // ops -> binary -> parse must reproduce ops exactly (so binary ->
    // text -> binary is byte-identity, which the CLI round-trip
    // relies on), and re-encoding the parsed ops must reproduce the
    // first binary byte stream.
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        Rng rng(seed);
        const Trace trace = fuzzTrace(rng, 100 + rng.nextBelow(200));
        const std::string first = toBinary(trace);
        std::stringstream ss(first);
        const Trace parsed = readTraceBinary(ss);
        expectTracesEqual(parsed, trace);
        EXPECT_EQ(toBinary(parsed), first) << "seed " << seed;
        // Cross-format: the parsed ops serialize to the same
        // canonical text the original ops do.
        std::ostringstream text_a, text_b;
        writeTrace(text_a, trace);
        writeTrace(text_b, parsed);
        EXPECT_EQ(text_a.str(), text_b.str()) << "seed " << seed;
    }
}

TEST(TraceBinary, AutoDetectsBothFormats)
{
    Rng rng(11);
    const Trace trace = randomTrace(rng, 50);

    std::stringstream bin(toBinary(trace));
    Trace from_bin;
    TraceOp op;
    const auto bin_reader = openTraceReader(bin);
    while (bin_reader->next(op))
        from_bin.push_back(op);
    expectTracesEqual(from_bin, trace);

    std::ostringstream text;
    writeTrace(text, trace);
    std::stringstream txt(text.str());
    Trace from_text;
    const auto text_reader = openTraceReader(txt);
    while (text_reader->next(op))
        from_text.push_back(op);
    expectTracesEqual(from_text, trace);
}

TEST(TraceBinary, AutoDetectHandsShortTextBack)
{
    // Shorter than the magic, and sharing its first byte ('C' is also
    // the cform op tag): the sniffed bytes must reach the text parser.
    std::stringstream ss("C 40 f0 f0\nX 5\n");
    const auto reader = openTraceReader(ss);
    Trace trace;
    TraceOp op;
    while (reader->next(op))
        trace.push_back(op);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].kind, TraceOp::Kind::Cform);
    EXPECT_EQ(trace[1].computeOps, 5u);
}

TEST(TraceBinary, TruncatedHeaderRejected)
{
    for (const std::string &head :
         {std::string(""), std::string("CAL"), std::string("CALTRC"),
          std::string("CALTRC\x01", 7)}) {
        std::stringstream ss(head);
        EXPECT_THROW(readTraceBinary(ss), std::runtime_error)
            << "header bytes: " << head.size();
    }
}

TEST(TraceBinary, VersionMismatchRejected)
{
    std::string blob = toBinary({TraceOp::compute(1)});
    blob[6] = 2; // bump the version byte
    std::stringstream ss(blob);
    try {
        readTraceBinary(ss);
        FAIL() << "expected exception";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("unsupported version 2"),
                  std::string::npos)
            << e.what();
    }
    // The reserved byte is part of the versioned surface too.
    std::string blob2 = toBinary({TraceOp::compute(1)});
    blob2[7] = 1;
    std::stringstream ss2(blob2);
    EXPECT_THROW(readTraceBinary(ss2), std::runtime_error);
}

TEST(TraceBinary, BadMagicRejectedWhenForcedBinary)
{
    std::stringstream ss("L 1000 8\n");
    EXPECT_THROW(readTraceBinary(ss), std::runtime_error);
}

TEST(TraceBinary, TruncatedBodyRejected)
{
    Rng rng(3);
    const std::string blob = toBinary(randomTrace(rng, 40));
    // Chop anywhere inside the op stream: always an error, never a
    // silently shorter trace.
    for (const std::size_t keep :
         {blob.size() - 1, blob.size() / 2, std::size_t{11}}) {
        std::stringstream ss(blob.substr(0, keep));
        EXPECT_THROW(readTraceBinary(ss), std::runtime_error)
            << "kept " << keep << " of " << blob.size();
    }
}

TEST(TraceBinary, NonMinimalVarintRejected)
{
    // The canonical-form contract: count 1 encoded non-minimally as
    // 0x81 0x00 decodes to the same value but would break decode ->
    // encode byte-identity, so the reader rejects it.
    const std::string blob = toBinary({TraceOp::compute(1)});
    std::string hacked = blob.substr(0, 8);
    hacked += '\x81';
    hacked += '\x00';
    hacked += blob.substr(9);
    std::stringstream ss(hacked);
    try {
        readTraceBinary(ss);
        FAIL() << "expected exception";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("non-minimal"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceBinary, TrailingJunkRejected)
{
    const std::string blob = toBinary({TraceOp::compute(1)});
    std::stringstream ss(blob + "x");
    EXPECT_THROW(readTraceBinary(ss), std::runtime_error);
}

TEST(TraceBinary, GarbageBodyNeverCrashes)
{
    // Valid header, fuzzed body: parse or throw, never crash.
    Rng rng(0xb1f);
    const std::string header = toBinary({}).substr(0, 8);
    for (int round = 0; round < 200; ++round) {
        std::string blob = header;
        const std::size_t len = 1 + rng.nextBelow(60);
        for (std::size_t i = 0; i < len; ++i)
            blob += static_cast<char>(rng.next() & 0xff);
        std::stringstream ss(blob);
        try {
            readTraceBinary(ss);
        } catch (const std::runtime_error &) {
            // expected for most inputs
        }
    }
}

TEST(TraceBinary, WriterEnforcesTheLengthPrefix)
{
    std::ostringstream os;
    const auto writer =
        makeTraceWriter(os, TraceFormat::Binary, 2);
    writer->put(TraceOp::compute(1));
    EXPECT_THROW(writer->finish(), std::runtime_error); // one short
    writer->put(TraceOp::compute(2));
    EXPECT_NO_THROW(writer->finish());
    EXPECT_THROW(writer->put(TraceOp::compute(3)),
                 std::runtime_error); // one over
}

TEST(TraceBinary, StreamingReplayMatchesVectorReplay)
{
    Rng rng(21);
    const Trace trace = randomTrace(rng, 400);

    Machine vector_machine;
    const std::uint64_t vector_sum = runTrace(vector_machine, trace);

    std::stringstream ss(toBinary(trace));
    const auto reader = openTraceReader(ss);
    Machine stream_machine;
    std::uint64_t replayed = 0;
    const std::uint64_t stream_sum =
        runTrace(stream_machine, *reader, &replayed);

    EXPECT_EQ(replayed, trace.size());
    EXPECT_EQ(stream_sum, vector_sum);
    EXPECT_EQ(stream_machine.cycles(), vector_machine.cycles());
    EXPECT_EQ(stream_machine.memStats().l1.misses,
              vector_machine.memStats().l1.misses);
    EXPECT_EQ(stream_machine.memStats().dramAccesses,
              vector_machine.memStats().dramAccesses);
}

TEST(TraceReplay, Deterministic)
{
    Rng rng(9);
    const Trace trace = randomTrace(rng, 500);
    Machine a, b;
    EXPECT_EQ(runTrace(a, trace), runTrace(b, trace));
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.memStats().l1.misses, b.memStats().l1.misses);
}

TEST(TraceReplay, MatchesDirectCalls)
{
    Machine direct;
    direct.store(0x2000, 8, 77);
    direct.cform(makeSetOp(0x2040, 0xf0));
    direct.load(0x2000, 8);
    direct.compute(3);

    Trace trace = {
        TraceOp::store(0x2000, 8, 77),
        TraceOp::cformOp(makeSetOp(0x2040, 0xf0)),
        TraceOp::load(0x2000, 8),
        TraceOp::compute(3),
    };
    Machine replayed;
    const std::uint64_t checksum = runTrace(replayed, trace);
    EXPECT_EQ(checksum, 77u);
    EXPECT_EQ(replayed.cycles(), direct.cycles());
    EXPECT_EQ(replayed.securityMask(0x2040), 0xf0ull);
}

TEST(StatsDump, ContainsAllSections)
{
    Machine machine;
    machine.store(0x3000, 8, 1);
    machine.load(0x3000, 8);
    const std::string dump = dumpStats(machine);
    for (const char *key :
         {"core.cycles", "core.ipc", "l1d.hits", "l2.missRate",
          "l3.evictions", "dram.accesses", "califorms.spills",
          "califorms.cformOps", "exceptions.delivered"}) {
        EXPECT_NE(dump.find(key), std::string::npos) << key;
    }
}

TEST(StatsDump, IpcZeroOnFreshMachine)
{
    Machine machine;
    EXPECT_NE(dumpStats(machine).find("core.ipc"), std::string::npos);
}

} // namespace
} // namespace califorms
