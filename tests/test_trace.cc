/**
 * @file test_trace.cc
 * Trace replay and serialization tests: round-trip through the text
 * format, replay determinism, equivalence between trace replay and
 * direct Machine calls, and the stats dump.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats_dump.hh"
#include "sim/trace.hh"
#include "util/rng.hh"

namespace califorms
{
namespace
{

Trace
randomTrace(Rng &rng, std::size_t n)
{
    Trace trace;
    for (std::size_t i = 0; i < n; ++i) {
        const Addr addr = 0x10000 + 8 * rng.nextBelow(4096);
        switch (rng.nextBelow(4)) {
        case 0:
            trace.push_back(TraceOp::load(addr, 8, rng.chance(0.3)));
            break;
        case 1:
            trace.push_back(TraceOp::store(addr, 8, rng.next()));
            break;
        case 2: {
            // Set-then-unset pairs keep the CFORM K-map happy.
            const SecurityMask m = rng.next() & 0xff;
            if (m) {
                trace.push_back(
                    TraceOp::cformOp(makeSetOp(lineBase(addr), m)));
                trace.push_back(
                    TraceOp::cformOp(makeUnsetOp(lineBase(addr), m)));
            }
            break;
          }
        default:
            trace.push_back(TraceOp::compute(
                static_cast<std::uint32_t>(rng.nextBelow(16))));
        }
    }
    return trace;
}

TEST(TraceText, RoundTrip)
{
    Rng rng(5);
    const Trace trace = randomTrace(rng, 200);
    std::stringstream ss;
    writeTrace(ss, trace);
    const Trace back = readTrace(ss);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(back[i].kind, trace[i].kind) << i;
        EXPECT_EQ(back[i].addr, trace[i].addr) << i;
        EXPECT_EQ(back[i].size, trace[i].size) << i;
        EXPECT_EQ(back[i].value, trace[i].value) << i;
        EXPECT_EQ(back[i].dependsOnPrev, trace[i].dependsOnPrev) << i;
        EXPECT_EQ(back[i].computeOps, trace[i].computeOps) << i;
        EXPECT_EQ(back[i].cform.lineAddr, trace[i].cform.lineAddr) << i;
        EXPECT_EQ(back[i].cform.setBits, trace[i].cform.setBits) << i;
        EXPECT_EQ(back[i].cform.mask, trace[i].cform.mask) << i;
        EXPECT_EQ(back[i].cform.nonTemporal, trace[i].cform.nonTemporal)
            << i;
    }
}

TEST(TraceText, CommentsAndBlanksIgnored)
{
    std::stringstream ss("# header\n\nL 1000 8 dep\n# tail\nX 5\n");
    const Trace trace = readTrace(ss);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].kind, TraceOp::Kind::Load);
    EXPECT_TRUE(trace[0].dependsOnPrev);
    EXPECT_EQ(trace[1].computeOps, 5u);
}

/** Fuzz-style variant of randomTrace: mixed access sizes, dep flags,
 *  non-temporal CFORMs, zero-compute blocks. */
Trace
fuzzTrace(Rng &rng, std::size_t n)
{
    static const unsigned sizes[] = {1, 2, 4, 8};
    Trace trace;
    for (std::size_t i = 0; i < n; ++i) {
        const Addr addr = rng.next() & 0xffff'ffff'fff8ull;
        switch (rng.nextBelow(4)) {
        case 0:
            trace.push_back(TraceOp::load(
                addr, sizes[rng.nextBelow(4)], rng.chance(0.5)));
            break;
        case 1:
            trace.push_back(TraceOp::store(
                addr, sizes[rng.nextBelow(4)], rng.next()));
            break;
        case 2: {
            CformOp op;
            op.lineAddr = lineBase(addr);
            op.setBits = rng.next() & 0xff;
            op.mask = rng.next() & 0xff;
            op.nonTemporal = rng.chance(0.3);
            trace.push_back(TraceOp::cformOp(op));
            break;
          }
        default:
            trace.push_back(TraceOp::compute(
                static_cast<std::uint32_t>(rng.nextBelow(1000))));
        }
    }
    return trace;
}

TEST(TraceTextFuzz, SerializeIsAFixedPoint)
{
    // random trace -> text -> parse -> text must reproduce the first
    // text exactly: the serializer emits canonical form and the parser
    // loses nothing.
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        Rng rng(seed);
        const Trace trace = fuzzTrace(rng, 100 + rng.nextBelow(200));
        std::stringstream first;
        writeTrace(first, trace);
        const Trace parsed = readTrace(first);
        ASSERT_EQ(parsed.size(), trace.size()) << "seed " << seed;
        std::stringstream second;
        writeTrace(second, parsed);
        EXPECT_EQ(second.str(), first.str()) << "seed " << seed;
    }
}

TEST(TraceTextFuzz, MalformedLinesRejectedWithoutCrashing)
{
    const char *const malformed[] = {
        "L",                        // missing operands
        "L zz 8",                   // bad address
        "L 1000",                   // missing size
        "L 1000 0",                 // zero access size
        "L 1000 9",                 // oversized access
        "L 1000 8 junk",            // unknown trailing token
        "L 1000 8 dep junk",        // junk after the dep flag
        "S 1000 8",                 // store without a value
        "S 1000 99 5",              // oversized store
        "S 1000 8 5 extra",         // trailing junk
        "C 1000 ff",                // cform missing the mask
        "C 1000 ff f0 xx",          // bad nt flag
        "C 1000 ff f0 nt nt",       // junk after the nt flag
        "X",                        // compute without a count
        "X banana",                 // non-numeric count
        "X 99999999999999999999",   // count overflows uint32
        "X -1",                     // negative count must not wrap
        "S 1000 -1 5",              // negative size must not wrap
        "C 1000 -ff f0",            // negative set bits
        "L -1000 8",                // negative address
        "Q what",                   // unknown op
        "LL 1000 8",                // unknown multi-char op
    };
    for (const char *input : malformed) {
        std::stringstream ss(std::string(input) + "\n");
        EXPECT_THROW(readTrace(ss), std::runtime_error) << input;
    }
}

TEST(TraceTextFuzz, GarbageBytesRejectedOrIgnoredButNeverCrash)
{
    // Pure byte fuzz: whatever the parser does, it must either parse
    // or throw std::runtime_error — never crash or hang.
    Rng rng(0xf22);
    for (int round = 0; round < 200; ++round) {
        std::string blob;
        const std::size_t len = rng.nextBelow(160);
        for (std::size_t i = 0; i < len; ++i)
            blob += static_cast<char>(rng.nextBelow(128));
        std::stringstream ss(blob);
        try {
            const Trace t = readTrace(ss);
            (void)t;
        } catch (const std::runtime_error &) {
            // expected for most inputs
        }
    }
}

TEST(TraceText, BadInputReportsLine)
{
    std::stringstream ss("L 1000 8\nQ what\n");
    try {
        readTrace(ss);
        FAIL() << "expected exception";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(TraceReplay, Deterministic)
{
    Rng rng(9);
    const Trace trace = randomTrace(rng, 500);
    Machine a, b;
    EXPECT_EQ(runTrace(a, trace), runTrace(b, trace));
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.memStats().l1.misses, b.memStats().l1.misses);
}

TEST(TraceReplay, MatchesDirectCalls)
{
    Machine direct;
    direct.store(0x2000, 8, 77);
    direct.cform(makeSetOp(0x2040, 0xf0));
    direct.load(0x2000, 8);
    direct.compute(3);

    Trace trace = {
        TraceOp::store(0x2000, 8, 77),
        TraceOp::cformOp(makeSetOp(0x2040, 0xf0)),
        TraceOp::load(0x2000, 8),
        TraceOp::compute(3),
    };
    Machine replayed;
    const std::uint64_t checksum = runTrace(replayed, trace);
    EXPECT_EQ(checksum, 77u);
    EXPECT_EQ(replayed.cycles(), direct.cycles());
    EXPECT_EQ(replayed.securityMask(0x2040), 0xf0ull);
}

TEST(StatsDump, ContainsAllSections)
{
    Machine machine;
    machine.store(0x3000, 8, 1);
    machine.load(0x3000, 8);
    const std::string dump = dumpStats(machine);
    for (const char *key :
         {"core.cycles", "core.ipc", "l1d.hits", "l2.missRate",
          "l3.evictions", "dram.accesses", "califorms.spills",
          "califorms.cformOps", "exceptions.delivered"}) {
        EXPECT_NE(dump.find(key), std::string::npos) << key;
    }
}

TEST(StatsDump, IpcZeroOnFreshMachine)
{
    Machine machine;
    EXPECT_NE(dumpStats(machine).find("core.ipc"), std::string::npos);
}

} // namespace
} // namespace califorms
