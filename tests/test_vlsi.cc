/**
 * @file test_vlsi.cc
 * Gate-level model tests: composition algebra, primitive sanity, and
 * the structural relations Tables 2 and 7 report (ordering of variant
 * areas/delays, spill slower than fill, overhead magnitudes).
 */

#include <gtest/gtest.h>

#include "vlsi/designs.hh"

namespace califorms
{
namespace
{

TEST(CircuitAlgebra, SeriesAddsDelay)
{
    CircuitCost a{10, 1.0, 0.1};
    CircuitCost b{20, 2.0, 0.2};
    const CircuitCost c = a.then(b);
    EXPECT_DOUBLE_EQ(c.areaGe, 30);
    EXPECT_DOUBLE_EQ(c.delayNs, 3.0);
    EXPECT_NEAR(c.powerMw, 0.3, 1e-12);
}

TEST(CircuitAlgebra, ParallelTakesMaxDelay)
{
    CircuitCost a{10, 1.0, 0.1};
    CircuitCost b{20, 2.0, 0.2};
    const CircuitCost c = a.alongside(b);
    EXPECT_DOUBLE_EQ(c.areaGe, 30);
    EXPECT_DOUBLE_EQ(c.delayNs, 2.0);
}

TEST(Primitives, DecoderGrowsWithWidth)
{
    CircuitBuilder b;
    EXPECT_LT(b.decoder(3).areaGe, b.decoder(6).areaGe);
}

TEST(Primitives, SramScalesWithBits)
{
    CircuitBuilder b;
    const auto small = b.sram(1024, false);
    const auto large = b.sram(262144, false);
    EXPECT_LT(small.areaGe, large.areaGe);
    EXPECT_LT(small.delayNs, large.delayNs);
    // Small arrays pay a density penalty per bit.
    const auto dense = b.sram(4096, false);
    const auto sparse = b.sram(4096, true);
    EXPECT_LT(dense.areaGe, sparse.areaGe);
}

TEST(Primitives, MuxDepthLogarithmic)
{
    CircuitBuilder b;
    EXPECT_LT(b.mux(8, 8).delayNs, b.mux(64, 8).delayNs);
}

TEST(Designs, BaselineDominatedBySram)
{
    CircuitBuilder b;
    L1Geometry g;
    const auto baseline = synthesizeL1(b, g, L1Variant::Baseline);
    const auto sram_only =
        b.sram(g.dataBits(), false).areaGe +
        b.sram(g.tagArrayBits(), false).areaGe;
    EXPECT_GT(sram_only / baseline.areaGe, 0.95); // "around 98%"
}

TEST(Designs, Table2Shape)
{
    // Califorms-8B adds noticeable area (the metadata array) but only
    // marginal delay (parallel lookup): the paper reports +18.69% area
    // and +1.85% delay.
    CircuitBuilder b;
    L1Geometry g;
    const auto base = synthesizeL1(b, g, L1Variant::Baseline);
    const auto cal8 = synthesizeL1(b, g, L1Variant::Califorms8B);
    const double area_overhead = cal8.areaGe / base.areaGe - 1.0;
    const double delay_overhead = cal8.delayNs / base.delayNs - 1.0;
    EXPECT_GT(area_overhead, 0.10);
    EXPECT_LT(area_overhead, 0.25);
    EXPECT_GT(delay_overhead, 0.0);
    EXPECT_LT(delay_overhead, 0.06);
    // Power overhead small (paper: 2.12%).
    EXPECT_LT(cal8.powerMw / base.powerMw - 1.0, 0.08);
}

TEST(Designs, Table7VariantOrdering)
{
    CircuitBuilder b;
    L1Geometry g;
    const auto base = synthesizeL1(b, g, L1Variant::Baseline);
    const auto cal8 = synthesizeL1(b, g, L1Variant::Califorms8B);
    const auto cal4 = synthesizeL1(b, g, L1Variant::Califorms4B);
    const auto cal1 = synthesizeL1(b, g, L1Variant::Califorms1B);

    // Area: 8B > 4B > 1B > baseline (metadata bits shrink).
    EXPECT_GT(cal8.areaGe, cal4.areaGe);
    EXPECT_GT(cal4.areaGe, cal1.areaGe);
    EXPECT_GT(cal1.areaGe, base.areaGe);

    // Hit delay: 4B > 1B > 8B (serial tails; the paper reports 49% and
    // 22% extra hit delay vs 8B's 1.85%).
    EXPECT_GT(cal4.delayNs, cal1.delayNs);
    EXPECT_GT(cal1.delayNs, cal8.delayNs);
    EXPECT_GE(cal8.delayNs, base.delayNs);

    const double d4 = cal4.delayNs / base.delayNs - 1.0;
    const double d1 = cal1.delayNs / base.delayNs - 1.0;
    EXPECT_GT(d4, 0.25);
    EXPECT_LT(d4, 0.75);
    EXPECT_GT(d1, 0.10);
    EXPECT_LT(d1, 0.40);
}

TEST(Designs, SpillSlowerAndBiggerThanFill)
{
    // The spill path (sentinel search + four successive find-index
    // blocks) is the long pole: the paper reports 5.5ns vs 1.43ns.
    CircuitBuilder b;
    const auto fill = synthesizeFillModule(b);
    const auto spill = synthesizeSpillModule(b);
    EXPECT_GT(spill.delayNs, 2.5 * fill.delayNs);
    EXPECT_GT(spill.areaGe, fill.areaGe);
    EXPECT_GT(spill.powerMw, fill.powerMw);
}

TEST(Designs, FillFitsInL1AccessPeriod)
{
    // Section 8.1: the fill operation's latency is within the L1 access
    // period, so fills fold into the existing pipeline stages.
    CircuitBuilder b;
    L1Geometry g;
    const auto base = synthesizeL1(b, g, L1Variant::Baseline);
    CircuitCost fill = synthesizeFillModule(b);
    fill.delayNs += b.library().fixedDelayNs;
    EXPECT_LT(fill.delayNs, base.delayNs);
}

TEST(Designs, SynthesizeAllProducesTable7Rows)
{
    CircuitBuilder b;
    L1Geometry g;
    const auto rows = synthesizeAll(b, g);
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].name, "Baseline");
    EXPECT_FALSE(rows[0].hasFillSpill);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_TRUE(rows[i].hasFillSpill);
        EXPECT_GT(rows[i].fill.areaGe, 0.0);
        EXPECT_GT(rows[i].spill.areaGe, 0.0);
    }
}

TEST(Designs, AbsoluteScaleNearPaper)
{
    // Calibration sanity: the baseline should land in the right decade
    // (paper: 347,329 GE / 1.62ns / 15.84mW). The model is structural,
    // not a synthesis flow, so allow +/-25%.
    CircuitBuilder b;
    L1Geometry g;
    const auto base = synthesizeL1(b, g, L1Variant::Baseline);
    EXPECT_NEAR(base.areaGe, 347329.0, 347329.0 * 0.25);
    EXPECT_NEAR(base.delayNs, 1.62, 1.62 * 0.25);
    EXPECT_NEAR(base.powerMw, 15.84, 15.84 * 0.30);

    const auto spill = synthesizeSpillModule(b);
    const auto fill = synthesizeFillModule(b);
    EXPECT_NEAR(spill.areaGe, 34561.0, 34561.0 * 0.45);
    EXPECT_NEAR(fill.areaGe, 8957.0, 8957.0 * 0.45);
}

TEST(GateLibraryDefaults, Sane)
{
    GateLibrary lib;
    EXPECT_GT(lib.levelDelayNs, 0.0);
    EXPECT_GT(lib.sramSmallArrayFactor, 1.0);
    EXPECT_GT(lib.geDff, lib.geNand2);
}

} // namespace
} // namespace califorms
