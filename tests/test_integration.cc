/**
 * @file test_integration.cc
 * End-to-end scenarios across the full stack: the attacks the paper's
 * security discussion describes (intra-object overflow, inter-object
 * overflow, use-after-free, memory scans) must be detected, and the
 * full memory hierarchy must preserve blacklists through arbitrary
 * cache pressure.
 */

#include <gtest/gtest.h>

#include "alloc/heap.hh"
#include "alloc/secure_mem.hh"
#include "layout/corpus.hh"
#include "util/rng.hh"

namespace califorms
{
namespace
{

struct System
{
    Machine machine;
    HeapAllocator heap;

    System() : machine(), heap(machine) {}
};

/** struct A of Listing 1. */
StructDefPtr
listingOne()
{
    return std::make_shared<StructDef>(
        "A", std::vector<Field>{{"c", Type::charType()},
                                {"i", Type::intType()},
                                {"buf", Type::array(Type::charType(), 64)},
                                {"fp", Type::functionPointer()},
                                {"d", Type::doubleType()}});
}

TEST(EndToEnd, IntraObjectOverflowIntoFunctionPointerDetected)
{
    // The marquee attack: overflow buf[64] to corrupt fp. With the
    // intelligent policy, security bytes sit between buf and fp.
    System sys;
    LayoutTransformer t(InsertionPolicy::Intelligent, PolicyParams{}, 9);
    auto layout = std::make_shared<SecureLayout>(t.transform(*listingOne()));
    const Addr obj = sys.heap.allocate(layout);

    const auto &buf = layout->fields[2];
    // A linear overflow writing past buf:
    std::size_t wrote = 0;
    for (std::size_t i = 0; i < buf.size + 8; ++i) {
        sys.machine.store(obj + buf.offset + i, 1, 0x41);
        ++wrote;
        if (!sys.machine.exceptions().delivered().empty())
            break;
    }
    // Trapped on the very first byte past the buffer.
    ASSERT_EQ(sys.machine.exceptions().deliveredCount(), 1u);
    EXPECT_EQ(wrote, buf.size + 1);
    EXPECT_EQ(sys.machine.exceptions().delivered()[0].faultAddr,
              obj + buf.offset + buf.size);
    // fp was never corrupted.
    const auto &fp = layout->fields[3];
    EXPECT_EQ(sys.machine.load(obj + fp.offset, 8), 0u);
}

TEST(EndToEnd, OverreadDetectedToo)
{
    // Unlike canaries, tripwires catch overreads as well (Section 9).
    System sys;
    LayoutTransformer t(InsertionPolicy::Intelligent, PolicyParams{}, 9);
    auto layout = std::make_shared<SecureLayout>(t.transform(*listingOne()));
    const Addr obj = sys.heap.allocate(layout);
    const auto &buf = layout->fields[2];
    for (std::size_t i = 0; i <= buf.size; ++i)
        sys.machine.load(obj + buf.offset + i, 1);
    EXPECT_EQ(sys.machine.exceptions().deliveredCount(), 1u);
}

TEST(EndToEnd, InterObjectOverflowDetectedByGuards)
{
    System sys;
    LayoutTransformer t(InsertionPolicy::None, PolicyParams{}, 1);
    auto layout = std::make_shared<SecureLayout>(t.transform(*listingOne()));
    const Addr a = sys.heap.allocate(layout);
    // Run off the end of the whole object.
    sys.machine.store(a + layout->size, 1, 0x41);
    EXPECT_EQ(sys.machine.exceptions().deliveredCount(), 1u);
}

TEST(EndToEnd, UseAfterFreeDetectedWhileQuarantined)
{
    System sys;
    LayoutTransformer t(InsertionPolicy::None, PolicyParams{}, 1);
    auto layout = std::make_shared<SecureLayout>(t.transform(*listingOne()));
    const Addr obj = sys.heap.allocate(layout);
    sys.machine.store(obj, 8, 0x1122334455667788ull);
    sys.heap.free(obj);

    // Dangling read: faults, and leaks nothing (zero-on-free).
    const std::uint64_t leaked = sys.machine.load(obj, 8);
    EXPECT_EQ(leaked, 0u);
    EXPECT_GE(sys.machine.exceptions().deliveredCount(), 1u);

    // Dangling write: faults and does not commit.
    sys.machine.store(obj, 8, ~0ull);
    EXPECT_EQ(sys.machine.peekByte(obj), 0u);
}

TEST(EndToEnd, MemoryScanHitsSecurityBytesQuickly)
{
    // Derandomization (Section 7.3): a linear scan over califormed
    // objects cannot avoid security bytes.
    System sys;
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{}, 5);
    auto layout = std::make_shared<SecureLayout>(t.transform(*listingOne()));
    const Addr base = sys.heap.allocate(layout, 16);
    for (std::size_t b = 0; b < layout->size * 16; ++b)
        sys.machine.load(base + b, 1);
    // Every element contributes faults.
    EXPECT_GE(sys.machine.exceptions().deliveredCount(), 16u);
}

TEST(EndToEnd, BlacklistsSurviveHeavyCachePressure)
{
    // Property: after arbitrary traffic, the machine's view of security
    // bytes matches the allocator's layout for every live object.
    System sys;
    Rng rng(77);
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{}, 3);
    const auto corpus = generateCorpus(
        [] {
            CorpusParams p;
            p.structCount = 40;
            return p;
        }(),
        11);

    struct LiveObj
    {
        Addr addr;
        std::shared_ptr<const SecureLayout> layout;
    };
    std::vector<LiveObj> live;
    for (const auto &def : corpus) {
        auto layout = std::make_shared<SecureLayout>(t.transform(*def));
        live.push_back({sys.heap.allocate(layout), layout});
    }

    // Thrash: touch several MB so every object spills to DRAM and back.
    for (int i = 0; i < 80000; ++i)
        sys.machine.store(0x900000000ull + 64 * (i % 60000), 8, i);

    for (const auto &obj : live) {
        const auto mask = obj.layout->byteMask();
        for (std::size_t b = 0; b < obj.layout->size; ++b) {
            const Addr a = obj.addr + b;
            const bool blacklisted =
                sys.machine.securityMask(a) & (1ull << lineOffset(a));
            EXPECT_EQ(blacklisted, mask[b])
                << "object at " << std::hex << obj.addr << " byte " << b;
        }
    }
}

TEST(EndToEnd, WhitelistedCopyThenAttackStillCaught)
{
    // memcpy is whitelisted, but it does not strip the destination's
    // blacklist: a later rogue access still traps (Section 7.3's
    // "persistent tampering protection").
    System sys;
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{}, 4);
    auto layout = std::make_shared<SecureLayout>(t.transform(*listingOne()));
    const Addr src = sys.heap.allocate(layout);
    const Addr dst = sys.heap.allocate(layout);
    secureMemcpy(sys.machine, dst, src, layout->size);
    EXPECT_EQ(sys.machine.exceptions().deliveredCount(), 0u);
    sys.machine.store(dst + layout->securityBytes.front().offset, 1, 1);
    EXPECT_EQ(sys.machine.exceptions().deliveredCount(), 1u);
}

TEST(EndToEnd, TerminatePolicyKillsOnFirstViolation)
{
    Machine machine(MachineParams{}, ExceptionUnit::Policy::Terminate);
    HeapAllocator heap(machine);
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{}, 4);
    auto layout = std::make_shared<SecureLayout>(t.transform(*listingOne()));
    const Addr obj = heap.allocate(layout);
    EXPECT_FALSE(machine.exceptions().terminated());
    machine.load(obj + layout->securityBytes.front().offset, 1);
    EXPECT_TRUE(machine.exceptions().terminated());
}

} // namespace
} // namespace califorms
