/**
 * @file test_memsys_variants.cc
 * The Appendix A L1 formats and the next-line prefetcher inside the
 * full hierarchy: functional equivalence across formats (differential
 * against the default), Table 7 latency behaviour, and prefetch
 * semantics.
 */

#include <gtest/gtest.h>

#include "sim/memsys.hh"
#include "util/rng.hh"

namespace califorms
{
namespace
{

MemSysParams
tinyParams(L1Format format)
{
    MemSysParams p;
    p.l1Size = 1024;
    p.l1Ways = 2;
    p.l2Size = 4096;
    p.l2Ways = 2;
    p.l3Size = 16384;
    p.l3Ways = 4;
    p.l1Format = format;
    return p;
}

class L1FormatEquivalence : public ::testing::TestWithParam<L1Format>
{
};

TEST_P(L1FormatEquivalence, SameArchitecturalBehaviourAsDefault)
{
    ExceptionUnit ex_a, ex_b;
    MemorySystem reference(tinyParams(L1Format::BitVector8B), ex_a);
    MemorySystem variant(tinyParams(GetParam()), ex_b);
    Rng rng(7);

    for (int step = 0; step < 3000; ++step) {
        const Addr la = 0x8000 + lineBytes * rng.nextBelow(64);
        switch (rng.nextBelow(10)) {
        case 0: {
            const SecurityMask m = rng.next() & 0x0f0f0f0f0f0f0f0full;
            // Toggle-safe: unset whatever is set, set what is not.
            const SecurityMask cur = reference.securityMask(la);
            CformOp op;
            op.lineAddr = la;
            op.setBits = m & ~cur;
            op.mask = m;
            reference.cform(op);
            variant.cform(op);
            break;
          }
        default: {
            const unsigned size = 1u << rng.nextBelow(4);
            const Addr addr =
                la + rng.nextBelow(lineBytes - size + 1);
            if (rng.chance(0.5)) {
                const std::uint64_t v = rng.next();
                reference.store(addr, size, v);
                variant.store(addr, size, v);
            } else {
                const auto a = reference.load(addr, size);
                const auto b = variant.load(addr, size);
                EXPECT_EQ(a.value, b.value) << std::hex << addr;
                EXPECT_EQ(a.faulted, b.faulted) << std::hex << addr;
            }
            break;
          }
        }
    }
    EXPECT_EQ(ex_a.deliveredCount(), ex_b.deliveredCount());
}

INSTANTIATE_TEST_SUITE_P(Formats, L1FormatEquivalence,
                         ::testing::Values(L1Format::Cal4B,
                                           L1Format::Cal1B),
                         [](const auto &info) {
                             return info.param == L1Format::Cal4B
                                        ? "Cal4B"
                                        : "Cal1B";
                         });

TEST(L1FormatLatency, Table7ExtraCycles)
{
    EXPECT_EQ(l1FormatExtraLatency(L1Format::BitVector8B), 0u);
    EXPECT_EQ(l1FormatExtraLatency(L1Format::Cal1B), 1u);
    EXPECT_EQ(l1FormatExtraLatency(L1Format::Cal4B), 2u);

    for (L1Format f :
         {L1Format::BitVector8B, L1Format::Cal1B, L1Format::Cal4B}) {
        ExceptionUnit ex;
        MemSysParams p; // full size
        p.l1Format = f;
        MemorySystem mem(p, ex);
        mem.load(0x1000, 8); // install
        const auto hit = mem.load(0x1000, 8);
        EXPECT_EQ(hit.latency, p.l1Latency + l1FormatExtraLatency(f));
    }
}

TEST(Prefetcher, NextLineLandsInL2)
{
    ExceptionUnit ex;
    MemSysParams p = tinyParams(L1Format::BitVector8B);
    p.nextLinePrefetch = true;
    MemorySystem mem(p, ex);

    // Put data in the "next" line, flush it to DRAM.
    mem.store(0x9040, 8, 0x77);
    mem.flushAll();

    // Miss on 0x9000 prefetches 0x9040 into the L2: the subsequent
    // demand access costs only an L2 hit.
    mem.load(0x9000, 8);
    const auto res = mem.load(0x9040, 8);
    EXPECT_EQ(res.latency, p.l1Latency + p.l2Latency);
    EXPECT_EQ(res.value, 0x77u);
}

TEST(Prefetcher, PreservesCaliformedMetadata)
{
    ExceptionUnit ex;
    MemSysParams p = tinyParams(L1Format::BitVector8B);
    p.nextLinePrefetch = true;
    MemorySystem mem(p, ex);

    mem.cform(makeSetOp(0xa040, 0xffull));
    mem.flushAll();
    mem.load(0xa000, 8); // prefetches the califormed 0xa040
    EXPECT_EQ(mem.securityMask(0xa040), 0xffull);
    const auto res = mem.load(0xa040, 8);
    EXPECT_TRUE(res.faulted);
}

TEST(Prefetcher, StreamingMissesDrop)
{
    auto misses = [](bool prefetch) {
        ExceptionUnit ex;
        MemSysParams p; // full-size hierarchy
        p.nextLinePrefetch = prefetch;
        MemorySystem mem(p, ex);
        for (Addr a = 0x100000; a < 0x100000 + 512 * 1024; a += 8)
            mem.load(a, 8);
        return mem.stats().l2.misses;
    };
    // With next-line prefetch, half the demand L2 misses disappear.
    EXPECT_LT(misses(true), misses(false) / 2 + 64);
}

} // namespace
} // namespace califorms
