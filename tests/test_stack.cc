/**
 * @file test_stack.cc
 * Stack allocator tests: dirty-before-use discipline, frame nesting,
 * un-califorming on frame exit, and CFORM accounting.
 */

#include <gtest/gtest.h>

#include "alloc/stack.hh"

namespace califorms
{
namespace
{

StructDefPtr
frameStruct()
{
    return std::make_shared<StructDef>(
        "frame",
        std::vector<Field>{{"buf", Type::array(Type::charType(), 16)},
                           {"n", Type::intType()},
                           {"p", Type::pointer()}});
}

struct Harness
{
    Machine machine;
    StackAllocator stack;

    Harness() : machine(), stack(machine) {}

    std::shared_ptr<const SecureLayout>
    layout(InsertionPolicy policy)
    {
        LayoutTransformer t(policy, PolicyParams{}, 3);
        return std::make_shared<SecureLayout>(t.transform(*frameStruct()));
    }
};

TEST(Stack, LocalCaliformedOnEntry)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::Intelligent);
    ASSERT_GT(layout->securityByteCount(), 0u);
    h.stack.enterFrame();
    const Addr local = h.stack.allocateLocal(layout);
    for (const auto &span : layout->securityBytes) {
        const Addr b = local + span.offset;
        EXPECT_TRUE(h.machine.securityMask(b) & (1ull << lineOffset(b)));
    }
    h.stack.leaveFrame();
}

TEST(Stack, LocalUncaliformedOnExit)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::Intelligent);
    h.stack.enterFrame();
    const Addr local = h.stack.allocateLocal(layout);
    h.stack.leaveFrame();
    // Dirty before use: after the frame pops, the slots are plain again.
    for (const auto &span : layout->securityBytes) {
        const Addr b = local + span.offset;
        EXPECT_FALSE(h.machine.securityMask(b) & (1ull << lineOffset(b)));
    }
}

TEST(Stack, OverflowIntoSecuritySpanTraps)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::Intelligent);
    h.stack.enterFrame();
    const Addr local = h.stack.allocateLocal(layout);
    // Walk off the end of buf (field 0) into the trailing span.
    const auto &buf = layout->fields[0];
    h.machine.store(local + buf.offset + buf.size, 1, 0x41);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 1u);
    h.stack.leaveFrame();
}

TEST(Stack, NestedFramesReuseSpaceSafely)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::Intelligent);
    h.stack.enterFrame();
    const Addr outer = h.stack.allocateLocal(layout);
    h.stack.enterFrame();
    const Addr inner = h.stack.allocateLocal(layout);
    EXPECT_LT(inner, outer); // stack grows down
    h.stack.leaveFrame();
    // Re-entering at the same depth lands on the same addresses; the
    // dirty-before-use cycle must re-caliform them without faulting.
    h.stack.enterFrame();
    const Addr inner2 = h.stack.allocateLocal(layout);
    EXPECT_EQ(inner2, inner);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
    h.stack.leaveFrame();
    h.stack.leaveFrame();
    EXPECT_EQ(h.stack.depth(), 0u);
}

TEST(Stack, FrameWithMultipleLocals)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::Full);
    h.stack.enterFrame();
    const Addr a = h.stack.allocateLocal(layout);
    const Addr b = h.stack.allocateLocal(layout);
    EXPECT_NE(a, b);
    // No overlap.
    EXPECT_TRUE(b + layout->size <= a || a + layout->size <= b);
    h.stack.leaveFrame();
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
}

TEST(Stack, CformAccounting)
{
    Harness h;
    const auto layout = h.layout(InsertionPolicy::Full);
    h.stack.enterFrame();
    h.stack.allocateLocal(layout);
    const auto after_alloc = h.stack.cformsIssued();
    EXPECT_GT(after_alloc, 0u);
    h.stack.leaveFrame();
    // Unset costs the same number of line ops as set.
    EXPECT_EQ(h.stack.cformsIssued(), 2 * after_alloc);
}

TEST(Stack, NoCformMode)
{
    Machine machine;
    StackParams params;
    params.useCform = false;
    StackAllocator stack(machine, params);
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{}, 3);
    auto layout =
        std::make_shared<SecureLayout>(t.transform(*frameStruct()));
    stack.enterFrame();
    const Addr local = stack.allocateLocal(layout);
    EXPECT_EQ(stack.cformsIssued(), 0u);
    machine.load(local + layout->securityBytes.front().offset, 1);
    EXPECT_EQ(machine.exceptions().deliveredCount(), 0u);
    stack.leaveFrame();
}

TEST(Stack, MisuseRejected)
{
    Harness h;
    EXPECT_THROW(h.stack.allocateLocal(h.layout(InsertionPolicy::None)),
                 std::logic_error);
    EXPECT_THROW(h.stack.leaveFrame(), std::logic_error);
    h.stack.enterFrame();
    EXPECT_THROW(h.stack.allocateLocal(nullptr), std::invalid_argument);
    h.stack.leaveFrame();
}

} // namespace
} // namespace califorms
