/**
 * @file test_lsq.cc
 * Load/store queue semantics (Section 5.3): normal store-to-load
 * forwarding, the CFORM no-forwarding rule (zeros + exception mark),
 * younger-store marking, partial overlaps and commit draining.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/lsq.hh"

namespace califorms
{
namespace
{

/** Byte-addressable backing memory for the reader callback. */
struct FakeMem
{
    std::map<Addr, std::uint8_t> bytes;

    LoadStoreQueue::ByteReader
    reader()
    {
        return [this](Addr a) {
            auto it = bytes.find(a);
            return it == bytes.end() ? std::uint8_t(0) : it->second;
        };
    }
};

TEST(Lsq, LoadFromMemoryWhenQueueEmpty)
{
    LoadStoreQueue lsq;
    FakeMem mem;
    mem.bytes[0x100] = 0xab;
    const auto res = lsq.load(0x100, 1, mem.reader());
    EXPECT_EQ(res.value, 0xabu);
    EXPECT_FALSE(res.forwarded);
    EXPECT_FALSE(res.cformConflict);
}

TEST(Lsq, FullForwardFromYoungestMatchingStore)
{
    LoadStoreQueue lsq;
    FakeMem mem;
    lsq.pushStore(0x100, 8, 0x1111111111111111ull);
    lsq.pushStore(0x100, 8, 0x2222222222222222ull);
    const auto res = lsq.load(0x100, 8, mem.reader());
    EXPECT_TRUE(res.forwarded);
    EXPECT_EQ(res.value, 0x2222222222222222ull);
}

TEST(Lsq, PartialOverlapComposesStoresAndMemory)
{
    LoadStoreQueue lsq;
    FakeMem mem;
    mem.bytes[0x103] = 0x99;
    lsq.pushStore(0x100, 2, 0xbbaa); // bytes 0x100, 0x101
    lsq.pushStore(0x102, 1, 0xcc);   // byte 0x102
    const auto res = lsq.load(0x100, 4, mem.reader());
    EXPECT_TRUE(res.forwarded);
    EXPECT_EQ(res.value, 0x99ccbbaau);
}

TEST(Lsq, CformNeverForwardsValueReturnsZero)
{
    LoadStoreQueue lsq;
    FakeMem mem;
    mem.bytes[0x140] = 0x77;
    CformOp op = makeSetOp(0x100, 1ull << 0x40 % 64);
    op = makeSetOp(0x100, 0xffull); // bytes 0x100..0x107
    lsq.pushCform(op);
    const auto res = lsq.load(0x100, 4, mem.reader());
    EXPECT_TRUE(res.cformConflict);
    EXPECT_EQ(res.value, 0u); // zeros, not memory or CFORM "data"
}

TEST(Lsq, CformConflictOnlyOnMaskOverlap)
{
    LoadStoreQueue lsq;
    FakeMem mem;
    mem.bytes[0x108] = 0x42;
    lsq.pushCform(makeSetOp(0x100, 0xffull)); // bytes 0x100..0x107 only
    const auto res = lsq.load(0x108, 1, mem.reader());
    EXPECT_FALSE(res.cformConflict);
    EXPECT_EQ(res.value, 0x42u);
}

TEST(Lsq, YoungerStoreMarkedOnCformOverlap)
{
    LoadStoreQueue lsq;
    lsq.pushCform(makeSetOp(0x100, 0x0f00ull)); // bytes 0x108..0x10b
    const auto hit = lsq.pushStore(0x10a, 2, 0xffff);
    EXPECT_TRUE(hit.cformConflict);
    const auto miss = lsq.pushStore(0x10c, 2, 0xffff);
    EXPECT_FALSE(miss.cformConflict);
}

TEST(Lsq, StoreYoungerThanCformShadowsIt)
{
    // Program order: CFORM, then store, then load. The load must see
    // the younger store's data (youngest-first search).
    LoadStoreQueue lsq;
    FakeMem mem;
    lsq.pushCform(makeSetOp(0x100, 0xffull));
    lsq.pushStore(0x100, 4, 0xdeadbeef);
    const auto res = lsq.load(0x100, 4, mem.reader());
    EXPECT_EQ(res.value, 0xdeadbeefull);
    EXPECT_TRUE(res.forwarded);
    EXPECT_FALSE(res.cformConflict);
}

TEST(Lsq, CformYoungerThanStoreWins)
{
    LoadStoreQueue lsq;
    FakeMem mem;
    lsq.pushStore(0x100, 4, 0xdeadbeef);
    lsq.pushCform(makeSetOp(0x100, 0xffull));
    const auto res = lsq.load(0x100, 4, mem.reader());
    EXPECT_EQ(res.value, 0u);
    EXPECT_TRUE(res.cformConflict);
}

TEST(Lsq, LineCrossingLoadChecksBothLines)
{
    LoadStoreQueue lsq;
    FakeMem mem;
    lsq.pushCform(makeSetOp(0x140, 0x1ull)); // first byte of next line
    // Load 0x13c..0x143 crosses into the califormed line.
    const auto res = lsq.load(0x13c, 8, mem.reader());
    EXPECT_TRUE(res.cformConflict);
}

TEST(Lsq, DrainOldestCommitsInOrder)
{
    LoadStoreQueue lsq;
    std::vector<std::string> order;
    lsq.pushStore(0x100, 4, 1);
    lsq.pushCform(makeSetOp(0x200, 1));
    lsq.pushStore(0x300, 4, 3);
    while (lsq.drainOldest(
        [&](Addr a, unsigned, std::uint64_t) {
            order.push_back("store@" + std::to_string(a));
        },
        [&](const CformOp &op) {
            order.push_back("cform@" + std::to_string(op.lineAddr));
        })) {
    }
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "store@256");
    EXPECT_EQ(order[1], "cform@512");
    EXPECT_EQ(order[2], "store@768");
    EXPECT_EQ(lsq.size(), 0u);
}

TEST(Lsq, CapacityEnforced)
{
    LoadStoreQueue lsq(2);
    lsq.pushStore(0, 1, 0);
    lsq.pushStore(8, 1, 0);
    EXPECT_TRUE(lsq.full());
    EXPECT_THROW(lsq.pushStore(16, 1, 0), std::logic_error);
    EXPECT_THROW(lsq.pushCform(makeSetOp(0, 1)), std::logic_error);
}

TEST(Lsq, RejectsBadLoadSize)
{
    LoadStoreQueue lsq;
    FakeMem mem;
    EXPECT_THROW(lsq.load(0, 0, mem.reader()), std::invalid_argument);
    EXPECT_THROW(lsq.load(0, 9, mem.reader()), std::invalid_argument);
}

} // namespace
} // namespace califorms
