/**
 * @file test_multicore.cc
 * The multi-core coherent machine: single-core equivalence (N=1 with
 * or without MSI is bit-for-bit the historical machine), read sharing
 * and write invalidation through the directory, dirty recalls,
 * califormed-line ping-pong (conversion under invalidation), replay
 * determinism, jobs-invariance of a core.count sweep, per-core vs
 * merged statistics, the round-robin interleaver, the clearStats
 * wbPeakOccupancy regression, and degenerate trace-reader inputs.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "exp/campaign.hh"
#include "exp/report.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "workload/runner.hh"
#include "workload/synth.hh"

namespace califorms
{
namespace
{

MachineParams
multicoreParams(unsigned cores, CoherenceKind coherence)
{
    MachineParams p;
    p.core.count = cores;
    p.mem.coherence = coherence;
    return p;
}

/** Field-for-field stat equality (loud names on mismatch). */
void
expectStatsEq(const MemSysStats &a, const MemSysStats &b)
{
    EXPECT_EQ(a.l1.hits, b.l1.hits);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l1.evictions, b.l1.evictions);
    EXPECT_EQ(a.l1.dirtyEvictions, b.l1.dirtyEvictions);
    EXPECT_EQ(a.l2.hits, b.l2.hits);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.l3.hits, b.l3.hits);
    EXPECT_EQ(a.l3.misses, b.l3.misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.spills, b.spills);
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.cformOps, b.cformOps);
    EXPECT_EQ(a.securityFaults, b.securityFaults);
    EXPECT_EQ(a.fillConvCycles, b.fillConvCycles);
    EXPECT_EQ(a.spillConvCycles, b.spillConvCycles);
    EXPECT_EQ(a.wbHits, b.wbHits);
    EXPECT_EQ(a.wbEnqueued, b.wbEnqueued);
    EXPECT_EQ(a.wbForcedDrains, b.wbForcedDrains);
    EXPECT_EQ(a.wbPeakOccupancy, b.wbPeakOccupancy);
    EXPECT_EQ(a.invalidationsSent, b.invalidationsSent);
    EXPECT_EQ(a.dirtyRecalls, b.dirtyRecalls);
    EXPECT_EQ(a.convUnderInval, b.convUnderInval);
    EXPECT_EQ(a.coherenceConvCycles, b.coherenceConvCycles);
    EXPECT_EQ(a.mshrAllocations, b.mshrAllocations);
    EXPECT_EQ(a.mshrCoalesced, b.mshrCoalesced);
    EXPECT_EQ(a.mshrStallCycles, b.mshrStallCycles);
    EXPECT_EQ(a.mshrPeakOccupancy, b.mshrPeakOccupancy);
    EXPECT_EQ(a.dramRowHits, b.dramRowHits);
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses);
    EXPECT_EQ(a.dramRowConflicts, b.dramRowConflicts);
    EXPECT_EQ(a.dramBankConflictCycles, b.dramBankConflictCycles);
}

const SpecBenchmark &
synthBench(const std::string &name)
{
    for (const auto &b : synthSuite())
        if (b.name == name)
            return b;
    throw std::invalid_argument("no synth bench " + name);
}

/** A small deterministic synthetic run. */
RunResult
runSynth(const std::string &name, unsigned cores,
         CoherenceKind coherence)
{
    RunConfig config;
    config.machine = multicoreParams(cores, coherence);
    config.scale = 1.0;
    config.synth.ops = 4000;
    config.synth.footprintKb = 256;
    return runBenchmark(synthBench(name), config);
}

// ---------------------------------------------------------------------
// N=1 equivalence: a single-core machine is the historical machine, no
// matter what mem.coherence says.
// ---------------------------------------------------------------------

TEST(MulticoreEquivalence, SingleCoreMsiMatchesNone)
{
    const RunResult none =
        runSynth("zipf", 1, CoherenceKind::None);
    const RunResult msi = runSynth("zipf", 1, CoherenceKind::Msi);
    EXPECT_EQ(none.cycles, msi.cycles);
    EXPECT_EQ(none.instructions, msi.instructions);
    expectStatsEq(none.mem, msi.mem);
    EXPECT_EQ(msi.mem.invalidationsSent, 0u);
    EXPECT_EQ(msi.mem.dirtyRecalls, 0u);
    EXPECT_TRUE(none.cores.empty());
    EXPECT_TRUE(msi.cores.empty());
}

TEST(MulticoreEquivalence, DirectOpsSingleCoreMsiMatchesNone)
{
    Machine a(multicoreParams(1, CoherenceKind::None));
    Machine b(multicoreParams(1, CoherenceKind::Msi));
    for (Machine *m : {&a, &b}) {
        m->cform(makeSetOp(0x40000, 0x80));
        for (int i = 0; i < 200; ++i) {
            m->store(0x40000 + 64 * (i % 40), 8,
                     static_cast<std::uint64_t>(i));
            m->load(0x40000 + 64 * ((i * 7) % 40), 8);
        }
    }
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.instructions(), b.instructions());
    expectStatsEq(a.memStats(), b.memStats());
}

TEST(MulticoreEquivalence, MachineRejectsBadCoreCount)
{
    MachineParams p;
    p.core.count = 0;
    EXPECT_THROW(Machine m(p), std::invalid_argument);
    p.core.count = 33;
    EXPECT_THROW(Machine m(p), std::invalid_argument);
}

TEST(MulticoreEquivalence, NonSynthBenchmarkRejectsMulticore)
{
    RunConfig config;
    config.machine = multicoreParams(2, CoherenceKind::Msi);
    config.scale = 0.01;
    EXPECT_THROW(runBenchmark(findBenchmark("mcf"), config),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Sharing through the directory.
// ---------------------------------------------------------------------

TEST(MulticoreSharing, ReadSharedLineLivesInBothL1s)
{
    Machine m(multicoreParams(2, CoherenceKind::Msi));
    const Addr line = 0x50000;
    m.pokeByte(line, 0x5a);
    m.loadOn(0, line, 1);
    m.loadOn(1, line, 1);
    BitVectorLine copy;
    EXPECT_TRUE(m.memorySystem(0).peekPrivateLine(line, copy));
    EXPECT_TRUE(m.memorySystem(1).peekPrivateLine(line, copy));
    EXPECT_EQ(m.memStats().invalidationsSent, 0u);
    EXPECT_EQ(m.loadOn(1, line, 1), 0x5au);
}

TEST(MulticoreSharing, WriteInvalidatesRemoteCopies)
{
    Machine m(multicoreParams(4, CoherenceKind::Msi));
    const Addr line = 0x50000;
    for (unsigned c = 0; c < 4; ++c)
        m.loadOn(c, line, 8);
    m.storeOn(0, line, 8, 0x1122334455667788ull);
    // The three remote copies were invalidated...
    EXPECT_EQ(m.memStats().invalidationsSent, 3u);
    BitVectorLine copy;
    EXPECT_TRUE(m.memorySystem(0).peekPrivateLine(line, copy));
    for (unsigned c = 1; c < 4; ++c)
        EXPECT_FALSE(m.memorySystem(c).peekPrivateLine(line, copy));
    // ...and the next remote read sees the new value.
    EXPECT_EQ(m.loadOn(2, line, 8), 0x1122334455667788ull);
}

TEST(MulticoreSharing, DirtyRecallHandsModifiedDataOver)
{
    Machine m(multicoreParams(2, CoherenceKind::Msi));
    const Addr line = 0x60000;
    m.storeOn(0, line, 8, 0xdeadbeefull); // M in core 0's L1
    EXPECT_EQ(m.loadOn(1, line, 8), 0xdeadbeefull);
    EXPECT_GE(m.memStats().dirtyRecalls, 1u);
    // A read recall downgrades the owner: both cores keep a copy.
    BitVectorLine copy;
    EXPECT_TRUE(m.memorySystem(0).peekPrivateLine(line, copy));
    EXPECT_TRUE(m.memorySystem(1).peekPrivateLine(line, copy));
}

TEST(MulticoreSharing, StoreHitOnSharedLineUpgrades)
{
    Machine m(multicoreParams(2, CoherenceKind::Msi));
    const Addr line = 0x70000;
    m.loadOn(0, line, 8);
    m.loadOn(1, line, 8); // line shared by both L1s
    m.storeOn(0, line, 8, 7); // S -> M upgrade, invalidate core 1
    EXPECT_EQ(m.memStats().invalidationsSent, 1u);
    BitVectorLine copy;
    EXPECT_FALSE(m.memorySystem(1).peekPrivateLine(line, copy));
    EXPECT_EQ(m.loadOn(1, line, 8), 7u);
}

TEST(MulticoreSharing, FunctionalViewIsCoherent)
{
    Machine m(multicoreParams(2, CoherenceKind::Msi));
    const Addr line = 0x80000;
    m.storeOn(0, line, 8, 0x42); // dirty, private to core 0
    EXPECT_EQ(m.peekByte(line), 0x42);
    m.pokeByte(line, 0x43);
    EXPECT_EQ(m.loadOn(0, line, 1), 0x43u);
    EXPECT_EQ(m.loadOn(1, line, 1), 0x43u);
}

// ---------------------------------------------------------------------
// Conversion under invalidation: a dirty *califormed* line surrendered
// to another core pays the sentinel encode during the coherence action.
// ---------------------------------------------------------------------

TEST(MulticoreCoherence, CaliformedPingPongConverts)
{
    MachineParams p = multicoreParams(2, CoherenceKind::Msi);
    p.mem.spillConvLatency = 5;
    Machine m(p);
    const Addr line = 0x90000;
    // Byte 7 is a security byte; the cores fight over byte 0.
    m.cformOn(0, makeSetOp(line, 0x80));
    for (int i = 0; i < 10; ++i)
        m.storeOn(static_cast<unsigned>(i % 2), line, 1,
                  static_cast<std::uint64_t>(i));
    const MemSysStats s = m.memStats();
    EXPECT_GE(s.convUnderInval, 9u);
    EXPECT_EQ(s.coherenceConvCycles, s.convUnderInval * 5);
    EXPECT_GE(s.dirtyRecalls, s.convUnderInval);
    // The security byte survives every handoff.
    EXPECT_EQ(m.securityMask(line), SecurityMask{0x80});
}

TEST(MulticoreCoherence, MulticoreSynthRunHasCoherenceTraffic)
{
    const RunResult r = runSynth("ring", 4, CoherenceKind::Msi);
    EXPECT_GT(r.mem.invalidationsSent, 0u);
    EXPECT_GT(r.mem.dirtyRecalls, 0u);
    EXPECT_GT(r.mem.convUnderInval, 0u);
    ASSERT_EQ(r.cores.size(), 4u);
}

// ---------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------

TEST(MulticoreDeterminism, IdenticalRunsAreIdentical)
{
    const RunResult a = runSynth("zipf", 4, CoherenceKind::Msi);
    const RunResult b = runSynth("zipf", 4, CoherenceKind::Msi);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    expectStatsEq(a.mem, b.mem);
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
        EXPECT_EQ(a.cores[c].instructions, b.cores[c].instructions);
        expectStatsEq(a.cores[c].mem, b.cores[c].mem);
    }
}

TEST(MulticoreDeterminism, CoreCountSweepIsJobsInvariant)
{
    exp::CampaignSpec spec;
    spec.name = "core_count_sweep";
    spec.suite.push_back(&synthBench("zipf"));
    spec.suite.push_back(&synthBench("ring"));
    spec.variants = exp::CampaignSpec::crossKey(
        exp::CampaignSpec::crossKey(
            {{"base", InsertionPolicy::None, 0, 0, std::nullopt,
              false, {}}},
            "core.count", {"1", "2", "4"}),
        "mem.coherence", {"none", "msi"});
    spec.base.synth.ops = 2000;
    spec.base.synth.footprintKb = 64;
    const auto serial = exp::runCampaign(spec, 1);
    const auto parallel = exp::runCampaign(spec, 4);
    const exp::ReportTiming timing{false, 1, 0.0};
    EXPECT_EQ(exp::campaignJson(serial, timing),
              exp::campaignJson(parallel, timing));
}

// ---------------------------------------------------------------------
// Per-core vs merged statistics.
// ---------------------------------------------------------------------

TEST(MulticoreStats, PerCoreStatsSumToMergedPrivateSide)
{
    const RunResult r = runSynth("stream", 4, CoherenceKind::Msi);
    ASSERT_EQ(r.cores.size(), 4u);
    MemSysStats sum;
    std::uint64_t instructions = 0;
    for (const CoreRunStats &core : r.cores) {
        sum.l1.hits += core.mem.l1.hits;
        sum.l1.misses += core.mem.l1.misses;
        sum.spills += core.mem.spills;
        sum.fills += core.mem.fills;
        sum.cformOps += core.mem.cformOps;
        sum.securityFaults += core.mem.securityFaults;
        instructions += core.instructions;
        // The private side never carries shared-level counters.
        EXPECT_EQ(core.mem.l2.hits + core.mem.l2.misses, 0u);
        EXPECT_EQ(core.mem.dramAccesses, 0u);
    }
    EXPECT_EQ(sum.l1.hits, r.mem.l1.hits);
    EXPECT_EQ(sum.l1.misses, r.mem.l1.misses);
    EXPECT_EQ(sum.spills, r.mem.spills);
    EXPECT_EQ(sum.fills, r.mem.fills);
    EXPECT_EQ(sum.cformOps, r.mem.cformOps);
    EXPECT_EQ(sum.securityFaults, r.mem.securityFaults);
    EXPECT_EQ(instructions, r.instructions);
}

// ---------------------------------------------------------------------
// The round-robin interleaver.
// ---------------------------------------------------------------------

TEST(MulticoreInterleave, UnequalStreamsDrainCompletely)
{
    Trace t0, t1;
    for (int i = 0; i < 30; ++i)
        t0.push_back(TraceOp::load(0x10000 + 64 * i, 8));
    for (int i = 0; i < 7; ++i)
        t1.push_back(TraceOp::store(0x20000 + 64 * i, 8, i));

    std::stringstream s0, s1;
    writeTrace(s0, t0);
    writeTrace(s1, t1);
    const auto r0 = openTraceReader(s0);
    const auto r1 = openTraceReader(s1);

    Machine m(multicoreParams(2, CoherenceKind::Msi));
    std::uint64_t replayed = 0;
    runTraceInterleaved(m, {r0.get(), r1.get()}, &replayed);
    EXPECT_EQ(replayed, 37u);
    EXPECT_EQ(m.coreInstructions(0), 30u);
    EXPECT_EQ(m.coreInstructions(1), 7u);
}

TEST(MulticoreInterleave, StreamCountMustMatchCoreCount)
{
    Trace t;
    t.push_back(TraceOp::load(0x10000, 8));
    std::stringstream ss;
    writeTrace(ss, t);
    const auto reader = openTraceReader(ss);
    Machine m(multicoreParams(2, CoherenceKind::Msi));
    EXPECT_THROW(runTraceInterleaved(m, {reader.get()}, nullptr),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// clearStats regression: wbPeakOccupancy must restart at the *current*
// queue occupancy, not carry the previous measurement window's peak.
// ---------------------------------------------------------------------

namespace
{

/** Dirty distinct lines; every pass beyond the first refills from the
 *  L2 (no DRAM demand service, so the queue never drains) while the
 *  dirty evictions keep arriving — the queue fills to capacity. */
void
churnStores(Machine &m, std::size_t lines, int passes = 1)
{
    for (int pass = 0; pass < passes; ++pass)
        for (std::size_t i = 0; i < lines; ++i)
            m.store(0xa0000 + 64 * i, 8, i);
}

} // namespace

TEST(MulticoreClearStats, WbPeakOccupancyRestartsPerWindow)
{
    MachineParams p;
    p.mem.wbQueueEntries = 4;

    // Heavy phase: the queue certainly hits its capacity peak.
    Machine warm(p);
    churnStores(warm, 1024, 2);
    // The high-water mark counts the transient entry that forces a
    // drain, so a saturated queue peaks at capacity + 1.
    ASSERT_GE(warm.memStats().wbPeakOccupancy, 4u);

    // New measurement window over light traffic: the peak must match a
    // fresh machine running only the light phase, not stay at 4.
    warm.flushAll();
    warm.clearStats();
    churnStores(warm, 520); // just past the 512-line L1 -> few evictions

    Machine fresh(p);
    churnStores(fresh, 520);

    EXPECT_EQ(warm.memStats().wbPeakOccupancy,
              fresh.memStats().wbPeakOccupancy);
    EXPECT_LT(warm.memStats().wbPeakOccupancy, 4u);
    EXPECT_EQ(warm.memStats().wbEnqueued,
              fresh.memStats().wbEnqueued);
}

TEST(MulticoreClearStats, OccupiedQueueSeedsTheNewPeak)
{
    MachineParams p;
    p.mem.wbQueueEntries = 4;
    Machine m(p);
    churnStores(m, 1024, 2); // leaves the queue full
    m.clearStats();          // no flush: 4 entries still waiting
    // The lines they hold are a real high-water mark of the new window.
    EXPECT_EQ(m.memStats().wbPeakOccupancy, 4u);
}

// ---------------------------------------------------------------------
// openTraceReader degenerate inputs.
// ---------------------------------------------------------------------

TEST(TraceReaderDegenerate, EmptyFileYieldsEmptyTrace)
{
    std::stringstream ss;
    const auto reader = openTraceReader(ss);
    TraceOp op;
    EXPECT_FALSE(reader->next(op));
}

TEST(TraceReaderDegenerate, OneByteFileIsRejected)
{
    std::stringstream ss("C");
    const auto reader = openTraceReader(ss);
    TraceOp op;
    EXPECT_THROW(reader->next(op), std::runtime_error);
}

TEST(TraceReaderDegenerate, BareMagicIsRejected)
{
    // Exactly the 6-byte CALTRC magic selects the binary reader, whose
    // eager header read must then fail cleanly instead of hanging or
    // returning garbage.
    std::stringstream ss(
        std::string(kBinTraceMagic, sizeof(kBinTraceMagic)));
    EXPECT_THROW(openTraceReader(ss), std::runtime_error);
}

} // namespace
} // namespace califorms
