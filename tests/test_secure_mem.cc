/**
 * @file test_secure_mem.cc
 * Whitelisted bulk memory routines: struct copies across califormed
 * layouts must succeed without delivered exceptions, while the
 * destination blacklist survives (Sections 4.2 and 6.3).
 */

#include <gtest/gtest.h>

#include "alloc/heap.hh"
#include "alloc/secure_mem.hh"

namespace califorms
{
namespace
{

struct Harness
{
    Machine machine;
    HeapAllocator heap;

    Harness() : machine(), heap(machine) {}
};

std::shared_ptr<const SecureLayout>
fullLayout()
{
    auto def = std::make_shared<StructDef>(
        "s", std::vector<Field>{{"a", Type::intType()},
                                {"buf", Type::array(Type::charType(), 12)},
                                {"b", Type::longType()}});
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{}, 5);
    return std::make_shared<SecureLayout>(t.transform(*def));
}

TEST(SecureMemcpy, StructToStructAssignment)
{
    // The Section 6.3 scenario: a struct-to-struct assignment sweeps
    // security bytes; whitelisting suppresses the exceptions.
    Harness h;
    const auto layout = fullLayout();
    const Addr src = h.heap.allocate(layout);
    const Addr dst = h.heap.allocate(layout);

    // Fill the source fields with recognizable data.
    for (std::size_t i = 0; i < layout->fields.size(); ++i) {
        const auto &f = layout->fields[i];
        h.machine.store(src + f.offset,
                        static_cast<unsigned>(std::min<std::size_t>(
                            f.size, 8)),
                        0x1010101010101010ull * (i + 1));
    }

    secureMemcpy(h.machine, dst, src, layout->size);

    // Nothing delivered; sweeps over spans recorded as suppressed.
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
    EXPECT_GT(h.machine.exceptions().suppressedCount(), 0u);

    // Field data copied.
    for (std::size_t i = 0; i < layout->fields.size(); ++i) {
        const auto &f = layout->fields[i];
        const auto size =
            static_cast<unsigned>(std::min<std::size_t>(f.size, 8));
        EXPECT_EQ(h.machine.load(dst + f.offset, size),
                  h.machine.load(src + f.offset, size));
    }

    // Destination blacklist intact: a plain load into a span still traps.
    h.machine.load(dst + layout->securityBytes.front().offset, 1);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 1u);
}

TEST(SecureMemcpy, SourceSecurityBytesReadAsZero)
{
    Harness h;
    const auto layout = fullLayout();
    const Addr src = h.heap.allocate(layout);
    const Addr dst = h.heap.allocateRaw(layout->size);
    secureMemcpy(h.machine, dst, src, layout->size);
    // Destination bytes under source spans received zero.
    for (const auto &span : layout->securityBytes)
        for (std::size_t i = 0; i < span.size; ++i)
            EXPECT_EQ(h.machine.peekByte(dst + span.offset + i), 0u);
}

TEST(SecureMemset, FillsDataWithoutDisturbingMetadata)
{
    Harness h;
    const auto layout = fullLayout();
    const Addr addr = h.heap.allocate(layout);
    secureMemset(h.machine, addr, 0x5a, layout->size);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
    // Fields hold the fill value; spans remain blacklisted.
    const auto &f = layout->fields[0];
    EXPECT_EQ(h.machine.load(addr + f.offset, 1), 0x5au);
    const Addr span_byte = addr + layout->securityBytes.front().offset;
    EXPECT_TRUE(h.machine.securityMask(span_byte) &
                (1ull << lineOffset(span_byte)));
}

TEST(SecureMemcmp, ComparesLogicalContent)
{
    Harness h;
    const Addr a = h.heap.allocateRaw(32);
    const Addr b = h.heap.allocateRaw(32);
    secureMemset(h.machine, a, 7, 32);
    secureMemset(h.machine, b, 7, 32);
    EXPECT_EQ(secureMemcmp(h.machine, a, b, 32), 0);
    h.machine.store(b + 10, 1, 9);
    EXPECT_LT(secureMemcmp(h.machine, a, b, 32), 0);
    EXPECT_GT(secureMemcmp(h.machine, b, a, 32), 0);
}

TEST(SecureMemcpy, LineCrossingCopy)
{
    Harness h;
    const Addr src = h.heap.allocateRaw(200);
    const Addr dst = h.heap.allocateRaw(200);
    for (unsigned i = 0; i < 200; ++i)
        h.machine.store(src + i, 1, i & 0xff);
    secureMemcpy(h.machine, dst, src, 200);
    for (unsigned i = 0; i < 200; ++i)
        EXPECT_EQ(h.machine.load(dst + i, 1), i & 0xffu);
}

} // namespace
} // namespace califorms
