/**
 * @file test_layout.cc
 * Tests for the C type model and layout engine: alignment rules,
 * padding discovery (the raw material of the opportunistic policy),
 * density computation, and the Listing 1 example from the paper.
 */

#include <gtest/gtest.h>

#include "layout/density.hh"
#include "layout/type.hh"

namespace califorms
{
namespace
{

TEST(TypeModel, ScalarSizesAndAlignment)
{
    EXPECT_EQ(Type::charType()->size(), 1u);
    EXPECT_EQ(Type::shortType()->align(), 2u);
    EXPECT_EQ(Type::intType()->size(), 4u);
    EXPECT_EQ(Type::longType()->align(), 8u);
    EXPECT_EQ(Type::doubleType()->size(), 8u);
    EXPECT_EQ(Type::pointer()->size(), 8u);
    EXPECT_EQ(Type::functionPointer()->size(), 8u);
}

TEST(TypeModel, ArrayComposition)
{
    auto arr = Type::array(Type::intType(), 10);
    EXPECT_EQ(arr->size(), 40u);
    EXPECT_EQ(arr->align(), 4u);
    EXPECT_EQ(arr->count(), 10u);
    EXPECT_EQ(arr->element(), Type::intType());
    EXPECT_THROW(Type::array(nullptr, 3), std::invalid_argument);
    EXPECT_THROW(Type::array(Type::intType(), 0), std::invalid_argument);
}

TEST(TypeModel, Overflowability)
{
    EXPECT_TRUE(Type::pointer()->overflowable());
    EXPECT_TRUE(Type::functionPointer()->overflowable());
    EXPECT_TRUE(Type::array(Type::charType(), 4)->overflowable());
    EXPECT_FALSE(Type::intType()->overflowable());
    EXPECT_FALSE(Type::doubleType()->overflowable());
}

TEST(LayoutEngine, ListingOneExample)
{
    // struct A { char c; int i; char buf[64]; void (*fp)(); double d; }
    // The compiler inserts 3 bytes between c and i (Listing 1(b)).
    StructDef a("A", {{"c", Type::charType()},
                      {"i", Type::intType()},
                      {"buf", Type::array(Type::charType(), 64)},
                      {"fp", Type::functionPointer()},
                      {"d", Type::doubleType()}});
    const StructLayout &l = a.layout();
    EXPECT_EQ(l.fields[0].offset, 0u);
    EXPECT_EQ(l.fields[1].offset, 4u);  // after 3B padding
    EXPECT_EQ(l.fields[2].offset, 8u);
    EXPECT_EQ(l.fields[3].offset, 72u); // buf ends at 72, aligned
    EXPECT_EQ(l.fields[4].offset, 80u);
    EXPECT_EQ(l.size, 88u);
    EXPECT_EQ(l.align, 8u);
    ASSERT_EQ(l.paddings.size(), 1u);
    EXPECT_EQ(l.paddings[0].offset, 1u);
    EXPECT_EQ(l.paddings[0].size, 3u);
}

TEST(LayoutEngine, TailPadding)
{
    StructDef s("s", {{"d", Type::doubleType()},
                      {"c", Type::charType()}});
    EXPECT_EQ(s.size(), 16u);
    ASSERT_EQ(s.layout().paddings.size(), 1u);
    EXPECT_EQ(s.layout().paddings[0].offset, 9u);
    EXPECT_EQ(s.layout().paddings[0].size, 7u);
}

TEST(LayoutEngine, PackedStructHasNoPadding)
{
    StructDef s("packed", {{"a", Type::intType()},
                           {"b", Type::intType()},
                           {"c", Type::intType()}});
    EXPECT_EQ(s.size(), 12u);
    EXPECT_TRUE(s.layout().paddings.empty());
    EXPECT_DOUBLE_EQ(s.layout().density(), 1.0);
}

TEST(LayoutEngine, OffsetsRespectAlignment)
{
    StructDef s("mixed", {{"c", Type::charType()},
                          {"s", Type::shortType()},
                          {"c2", Type::charType()},
                          {"l", Type::longType()},
                          {"f", Type::floatType()}});
    for (const auto &f : s.layout().fields) {
        const auto &type = s.fields()[f.index].type;
        EXPECT_EQ(f.offset % type->align(), 0u) << f.index;
    }
    EXPECT_EQ(s.size() % s.align(), 0u);
}

TEST(LayoutEngine, FieldsDoNotOverlap)
{
    StructDef s("mix", {{"a", Type::charType()},
                        {"b", Type::doubleType()},
                        {"c", Type::shortType()},
                        {"d", Type::array(Type::charType(), 5)},
                        {"e", Type::intType()}});
    const auto &fields = s.layout().fields;
    for (std::size_t i = 1; i < fields.size(); ++i)
        EXPECT_GE(fields[i].offset,
                  fields[i - 1].offset + fields[i - 1].size);
}

TEST(LayoutEngine, PaddingPlusFieldsEqualsSize)
{
    StructDef s("sum", {{"c", Type::charType()},
                        {"i", Type::intType()},
                        {"c2", Type::charType()},
                        {"d", Type::doubleType()}});
    std::size_t covered = s.layout().paddingBytes();
    for (const auto &f : s.layout().fields)
        covered += f.size;
    EXPECT_EQ(covered, s.size());
}

TEST(LayoutEngine, NestedStructAlignment)
{
    auto inner = std::make_shared<StructDef>(
        "inner", std::vector<Field>{{"d", Type::doubleType()},
                                    {"c", Type::charType()}});
    StructDef outer("outer", {{"flag", Type::charType()},
                              {"in", Type::structure(inner)}});
    EXPECT_EQ(outer.align(), 8u);
    EXPECT_EQ(outer.layout().fields[1].offset, 8u);
    EXPECT_EQ(outer.size(), 24u);
}

TEST(LayoutEngine, DensityDefinition)
{
    // Section 2: density = sum of field sizes / total size.
    StructDef s("dense", {{"c", Type::charType()},
                          {"i", Type::intType()}});
    // 5 field bytes in an 8 byte struct.
    EXPECT_DOUBLE_EQ(s.layout().density(), 5.0 / 8.0);
}

TEST(LayoutEngine, RejectsNullFieldType)
{
    EXPECT_THROW(computeLayout({{"bad", nullptr}}),
                 std::invalid_argument);
}

TEST(DensityPass, CountsPaddedStructs)
{
    auto padded = std::make_shared<StructDef>(
        "p", std::vector<Field>{{"c", Type::charType()},
                                {"i", Type::intType()}});
    auto packed = std::make_shared<StructDef>(
        "q", std::vector<Field>{{"i", Type::intType()},
                                {"j", Type::intType()}});
    const DensityReport report = analyzeDensity({padded, packed, padded});
    EXPECT_EQ(report.structCount, 3u);
    EXPECT_EQ(report.paddedCount, 2u);
    EXPECT_NEAR(report.paddedFraction(), 2.0 / 3.0, 1e-12);
    EXPECT_EQ(report.totalPaddingBytes, 6u);
}

TEST(DensityPass, HistogramPlacesPackedInLastBin)
{
    auto packed = std::make_shared<StructDef>(
        "q", std::vector<Field>{{"i", Type::intType()}});
    const DensityReport report = analyzeDensity({packed});
    EXPECT_EQ(report.histogram.binCount(9), 1u);
}

} // namespace
} // namespace califorms
