/**
 * @file test_hierarchy.cc
 * Configurable multi-level hierarchy tests: level-count equivalences
 * (levels=2 with the L2 disabled is exactly the levels=1 machine, the
 * explicit default reproduces the implicit one), conversion counting
 * and latency charging at the L1 boundary, and the dirty write-back
 * queue (victim-buffer hits, forced drains, functional correctness
 * under eviction pressure).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/cform.hh"
#include "sim/memsys.hh"
#include "util/rng.hh"
#include "workload/runner.hh"

namespace califorms
{
namespace
{

/** A tiny hierarchy so evictions happen quickly in tests. */
MemSysParams
tinyParams()
{
    MemSysParams p;
    p.l1Size = 1024;
    p.l1Ways = 2;
    p.l2Size = 4096;
    p.l2Ways = 2;
    p.l3Size = 16384;
    p.l3Ways = 4;
    return p;
}

struct Harness
{
    ExceptionUnit exceptions;
    MemorySystem mem;

    explicit Harness(MemSysParams p = tinyParams())
        : exceptions(ExceptionUnit::Policy::Record), mem(p, exceptions)
    {}
};

/** The mcf benchmark at test scale under one memory configuration. */
RunResult
runMcf(const MemSysParams &mem)
{
    RunConfig config;
    config.scale = 0.05;
    config.policy = InsertionPolicy::Full;
    config.policyParams.maxSpan = 3;
    config.withCform(true);
    config.machine.mem = mem;
    return runBenchmark(findBenchmark("mcf"), config);
}

bool
sameCounters(const RunResult &a, const RunResult &b)
{
    return a.cycles == b.cycles && a.instructions == b.instructions &&
           a.mem.l1.hits == b.mem.l1.hits &&
           a.mem.l1.misses == b.mem.l1.misses &&
           a.mem.dramAccesses == b.mem.dramAccesses &&
           a.mem.fills == b.mem.fills && a.mem.spills == b.mem.spills &&
           a.mem.securityFaults == b.mem.securityFaults;
}

TEST(Hierarchy, RejectsBadLevelCounts)
{
    ExceptionUnit exceptions(ExceptionUnit::Policy::Record);
    for (const unsigned levels : {0u, 4u, 99u}) {
        MemSysParams p = tinyParams();
        p.levels = levels;
        EXPECT_THROW(MemorySystem(p, exceptions), std::invalid_argument)
            << levels;
    }
}

TEST(Hierarchy, LevelCountSelectsEnabledLevels)
{
    for (const auto &[levels, expected] :
         std::map<unsigned, std::size_t>{{1, 0}, {2, 1}, {3, 2}}) {
        MemSysParams p = tinyParams();
        p.levels = levels;
        Harness h(p);
        EXPECT_EQ(h.mem.levelsBelowL1(), expected);
    }
}

TEST(Hierarchy, ZeroSizeDisablesALevel)
{
    MemSysParams p = tinyParams();
    p.l2Size = 0; // levels stays 3: L1 + LLC machine
    Harness h(p);
    EXPECT_EQ(h.mem.levelsBelowL1(), 1u);
    const auto stats = h.mem.stats();
    EXPECT_EQ(stats.l2.hits + stats.l2.misses, 0u);
}

TEST(Hierarchy, MissLatencyReflectsTheConfiguredDepth)
{
    // One cold miss per depth: the latency sum must walk exactly the
    // enabled levels.
    MemSysParams p = tinyParams();

    p.levels = 1;
    EXPECT_EQ(Harness(p).mem.load(0x1000, 8).latency,
              p.l1Latency + p.dramLatency);

    p.levels = 2;
    EXPECT_EQ(Harness(p).mem.load(0x1000, 8).latency,
              p.l1Latency + p.l2Latency + p.dramLatency);

    p.levels = 3;
    EXPECT_EQ(Harness(p).mem.load(0x1000, 8).latency,
              p.l1Latency + p.l2Latency + p.l3Latency + p.dramLatency);
}

TEST(Hierarchy, DisabledL2AtTwoLevelsEqualsOneLevelMachine)
{
    // The acceptance equivalence: levels=2 with the L2 disabled must be
    // byte-for-byte the levels=1 machine, counters included.
    MemSysParams two = MemSysParams{};
    two.levels = 2;
    two.l2Size = 0;
    MemSysParams one = MemSysParams{};
    one.levels = 1;
    EXPECT_TRUE(sameCounters(runMcf(two), runMcf(one)));
}

TEST(Hierarchy, ExplicitDefaultEqualsImplicitDefault)
{
    MemSysParams expl = MemSysParams{};
    expl.levels = 3;
    EXPECT_TRUE(sameCounters(runMcf(expl), runMcf(MemSysParams{})));
}

TEST(Hierarchy, ShallowerHierarchiesPayMoreDram)
{
    const RunResult three = runMcf(MemSysParams{});
    MemSysParams p1 = MemSysParams{};
    p1.levels = 1;
    const RunResult one = runMcf(p1);
    EXPECT_GT(one.mem.dramAccesses, three.mem.dramAccesses);
    EXPECT_GT(one.cycles, three.cycles);
}

TEST(Hierarchy, ConversionCountersAreLiveAtEveryDepth)
{
    // A califormed working set converts at the L1 boundary no matter
    // how deep the hierarchy is: fills and spills must be non-zero both
    // with an L2 (L1<->L2 boundary) and without one (L1<->DRAM).
    for (const unsigned levels : {1u, 2u, 3u}) {
        MemSysParams p = MemSysParams{};
        p.levels = levels;
        const RunResult r = runMcf(p);
        EXPECT_GT(r.mem.fills, 0u) << "levels=" << levels;
        EXPECT_GT(r.mem.spills, 0u) << "levels=" << levels;
    }
}

TEST(Hierarchy, FillConversionLatencyIsChargedPerFill)
{
    // A deliberately extreme 2000 cycles per fill: mcf at this scale
    // sits exactly on the DRAM bandwidth roofline (cycles ==
    // dramAccesses * dramCyclesPerLine), so a realistic charge
    // disappears under it — the point of this test is only that the
    // charge reaches the core model at all; the exact per-access
    // accounting is DirectFillLatencyConversionCharge below.
    MemSysParams charged = MemSysParams{};
    charged.fillConvLatency = 2000;
    const RunResult with = runMcf(charged);
    const RunResult without = runMcf(MemSysParams{});
    EXPECT_EQ(with.mem.fills, without.mem.fills);
    EXPECT_EQ(with.mem.fillConvCycles, 2000 * with.mem.fills);
    EXPECT_EQ(without.mem.fillConvCycles, 0u);
    EXPECT_GT(with.cycles, without.cycles);
}

TEST(Hierarchy, SpillConversionLatencyIsChargedPerSpill)
{
    MemSysParams charged = MemSysParams{};
    charged.spillConvLatency = 3;
    const RunResult with = runMcf(charged);
    const RunResult without = runMcf(MemSysParams{});
    EXPECT_EQ(with.mem.spills, without.mem.spills);
    EXPECT_EQ(with.mem.spillConvCycles, 3 * with.mem.spills);
    EXPECT_EQ(without.mem.spillConvCycles, 0u);
    EXPECT_GE(with.cycles, without.cycles);
}

TEST(Hierarchy, DirectFillLatencyConversionCharge)
{
    // Unit-level check of the charge: a miss on a califormed line costs
    // exactly fillConvLatency more than the same miss without the
    // charge.
    MemSysParams p = tinyParams();
    Harness plain(p);
    p.fillConvLatency = 7;
    Harness charged(p);

    for (Harness *h : {&plain, &charged}) {
        h->mem.store(0x9000, 8, 1);
        CformOp op = makeSetOp(0x9000, 0xf0ull);
        ASSERT_FALSE(h->mem.cform(op).faulted);
        h->mem.flushAll(); // force the next access to re-fill
    }
    const Cycles base = plain.mem.load(0x9000, 8).latency;
    const Cycles extra = charged.mem.load(0x9000, 8).latency;
    EXPECT_EQ(extra, base + 7);
    EXPECT_EQ(charged.mem.stats().fillConvCycles, 7u);
}

TEST(WbQueue, DisabledByDefault)
{
    Harness h;
    Rng rng(7);
    for (int i = 0; i < 2000; ++i)
        h.mem.store(0x10000 + 64 * rng.nextBelow(512), 8, rng.next());
    const auto stats = h.mem.stats();
    EXPECT_EQ(stats.wbEnqueued, 0u);
    EXPECT_EQ(stats.wbHits, 0u);
    EXPECT_EQ(stats.wbPeakOccupancy, 0u);
}

TEST(WbQueue, FunctionalCorrectnessUnderEvictionPressure)
{
    MemSysParams p = tinyParams();
    p.wbQueueEntries = 4;
    Harness h(p);
    Rng rng(2);
    std::map<Addr, std::uint64_t> reference;
    for (int i = 0; i < 4000; ++i) {
        const Addr addr = 0x10000 + 8 * rng.nextBelow(8192);
        const std::uint64_t v = rng.next();
        h.mem.store(addr, 8, v);
        reference[addr] = v;
    }
    const auto stats = h.mem.stats();
    EXPECT_GT(stats.wbEnqueued, 0u);
    EXPECT_LE(stats.wbPeakOccupancy, 5u); // entries + transient push
    for (const auto &[addr, v] : reference)
        ASSERT_EQ(h.mem.load(addr, 8).value, v) << std::hex << addr;
    for (const auto &[addr, v] : reference) {
        std::uint64_t peeked = 0;
        for (unsigned b = 0; b < 8; ++b)
            peeked |=
                static_cast<std::uint64_t>(h.mem.peekByte(addr + b))
                << (8 * b);
        ASSERT_EQ(peeked, v) << std::hex << addr;
    }
}

TEST(WbQueue, VictimHitPullsTheDirtyLineBack)
{
    // Two-way 1KB L1 (8 sets): three lines mapping to one set force an
    // eviction; re-touching the victim immediately must hit the queue,
    // keep the data, and keep the line dirty (a second eviction still
    // reaches memory).
    MemSysParams p = tinyParams();
    p.wbQueueEntries = 8;
    Harness h(p);

    const Addr a = 0x20000;           // set 0
    const Addr b = a + 8 * 64;        // same set, way 2
    const Addr c = a + 16 * 64;       // same set -> evicts a
    h.mem.store(a, 8, 0x1111);
    h.mem.store(b, 8, 0x2222);
    h.mem.store(c, 8, 0x3333);        // a is now in the WB queue

    EXPECT_EQ(h.mem.stats().wbEnqueued, 1u);
    EXPECT_EQ(h.mem.load(a, 8).value, 0x1111u);
    EXPECT_EQ(h.mem.stats().wbHits, 1u);

    // The pulled-back line must still be dirty: push it out again and
    // flush everything; the store must survive to DRAM.
    h.mem.store(b, 8, 0x2222);
    h.mem.store(c, 8, 0x3333);
    h.mem.flushAll();
    std::uint64_t v = 0;
    const SentinelLine line = h.mem.memory().readLine(a);
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(line.raw[i]) << (8 * i);
    EXPECT_EQ(v, 0x1111u);
}

TEST(WbQueue, VictimHitLatencyBeatsTheFullPath)
{
    MemSysParams p = tinyParams();
    p.wbQueueEntries = 8;
    Harness h(p);
    const Addr a = 0x20000;
    h.mem.store(a, 8, 0x1111);
    h.mem.store(a + 8 * 64, 8, 0x2222);
    h.mem.store(a + 16 * 64, 8, 0x3333); // evicts a into the queue
    const Cycles hit = h.mem.load(a, 8).latency;
    EXPECT_EQ(hit, p.l1Latency + p.wbHitLatency);
    EXPECT_LT(hit, h.mem.l2HitLatency());
}

TEST(WbQueue, ForcedDrainsOnOverflow)
{
    MemSysParams p = tinyParams();
    p.wbQueueEntries = 1;
    Harness h(p);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i)
        h.mem.store(0x10000 + 64 * rng.nextBelow(512), 8, rng.next());
    const auto stats = h.mem.stats();
    EXPECT_GT(stats.wbForcedDrains, 0u);
    EXPECT_LE(stats.wbPeakOccupancy, 2u);
}

TEST(WbQueue, CaliformedLinesSurviveTheQueue)
{
    // The spill conversion happens before the queue; a victim hit must
    // restore the full blacklist metadata.
    MemSysParams p = tinyParams();
    p.wbQueueEntries = 8;
    Harness h(p);
    const Addr a = 0x20000;
    h.mem.store(a, 8, 0x0102030405060708ull);
    CformOp op = makeSetOp(a, 0xff00ull);
    ASSERT_FALSE(h.mem.cform(op).faulted);
    h.mem.store(a + 8 * 64, 8, 0x2222);
    h.mem.store(a + 16 * 64, 8, 0x3333); // evict the califormed line
    ASSERT_GE(h.mem.stats().spills, 1u);
    EXPECT_EQ(h.mem.securityMask(a), 0xff00ull);
    EXPECT_EQ(h.mem.load(a, 8).value, 0x0102030405060708ull);
    EXPECT_GE(h.mem.stats().fills, 1u);
    EXPECT_EQ(h.mem.stats().wbHits, 1u);
}

TEST(WbQueue, FaultingNonTemporalCformDoesNotDropTheQueuedLine)
{
    // Regression: fetchBelowL1 pulls the queued line out (the only
    // up-to-date copy); when the CFORM then faults, the line must be
    // restored, not silently dropped.
    MemSysParams p = tinyParams();
    p.wbQueueEntries = 8;
    Harness h(p);
    const Addr a = 0x20000;
    h.mem.store(a, 8, 0x1111111122222222ull);
    h.mem.store(a + 8 * 64, 8, 0x2222);
    h.mem.store(a + 16 * 64, 8, 0x3333); // a evicted into the queue
    ASSERT_EQ(h.mem.stats().wbEnqueued, 1u);

    CformOp op = makeUnsetOp(a, 0x1ull); // unset on a normal byte: faults
    op.nonTemporal = true;
    EXPECT_TRUE(h.mem.cform(op).faulted);

    EXPECT_EQ(h.mem.load(a, 8).value, 0x1111111122222222ull);
    EXPECT_EQ(h.mem.peekByte(a), 0x22);
}

TEST(Hierarchy, RunnerEquivalenceAcrossJobsStyleRepeat)
{
    // Repeating the same hierarchy config must reproduce identical
    // counters (the campaign determinism property at the memsys level).
    MemSysParams p = MemSysParams{};
    p.levels = 2;
    p.wbQueueEntries = 8;
    const RunResult a = runMcf(p);
    const RunResult b = runMcf(p);
    EXPECT_TRUE(sameCounters(a, b));
    EXPECT_EQ(a.mem.wbHits, b.mem.wbHits);
    EXPECT_EQ(a.mem.wbEnqueued, b.mem.wbEnqueued);
}

} // namespace
} // namespace califorms
