/**
 * @file test_util.cc
 * Unit tests for the utility layer: RNG determinism and distribution,
 * bit operations, statistics, histograms and the table renderer.
 */

#include <gtest/gtest.h>

#include "util/bitops.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/types.hh"

namespace califorms
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 64ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(1, 7);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 7u);
        saw_lo |= v == 1;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformishDistribution)
{
    Rng rng(5);
    std::array<int, 8> buckets{};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.nextBelow(8)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 8 - n / 80);
        EXPECT_LT(count, n / 8 + n / 80);
    }
}

TEST(Bitops, FindFirstHelpers)
{
    EXPECT_EQ(findFirstOne(0), 64u);
    EXPECT_EQ(findFirstOne(1), 0u);
    EXPECT_EQ(findFirstOne(0x8000000000000000ull), 63u);
    EXPECT_EQ(findFirstZero(~0ull), 64u);
    EXPECT_EQ(findFirstZero(0xffull), 8u);
    EXPECT_EQ(findFirstZero(0), 0u);
}

TEST(Bitops, BitRange)
{
    EXPECT_EQ(bitRange(0, 0), 0u);
    EXPECT_EQ(bitRange(0, 64), ~0ull);
    EXPECT_EQ(bitRange(4, 4), 0xf0ull);
    EXPECT_EQ(bitRange(63, 1), 0x8000000000000000ull);
}

TEST(Bitops, Popcount)
{
    EXPECT_EQ(popcount64(0), 0u);
    EXPECT_EQ(popcount64(~0ull), 64u);
    EXPECT_EQ(popcount64(0xf0f0ull), 8u);
}

TEST(Types, LineArithmetic)
{
    EXPECT_EQ(lineBase(0), 0u);
    EXPECT_EQ(lineBase(63), 0u);
    EXPECT_EQ(lineBase(64), 64u);
    EXPECT_EQ(lineOffset(130), 2u);
    EXPECT_EQ(pageBase(4097), 4096u);
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 4), 12u);
}

TEST(RunningStats, MomentsAndExtrema)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(HistogramTest, BinningAndClamping)
{
    Histogram h(0.0, 1.0, 10);
    h.add(0.05); // bin 0
    h.add(0.95); // bin 9
    h.add(1.5);  // clamped to bin 9
    h.add(-1.0); // clamped to bin 0
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.5);
}

TEST(HistogramTest, RejectsBadArguments)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Stats, AverageSlowdownMatchesPaperConvention)
{
    // Two benchmarks, one 10% slower, one unchanged: mean speedup is
    // (1/1.1 + 1)/2, so the reported average slowdown is its inverse.
    const std::vector<double> base{100.0, 100.0};
    const std::vector<double> with{110.0, 100.0};
    const double expected = 1.0 / ((1.0 / 1.1 + 1.0) / 2.0) - 1.0;
    EXPECT_NEAR(averageSlowdown(base, with), expected, 1e-12);
}

TEST(Stats, AverageSlowdownValidatesInput)
{
    EXPECT_THROW(averageSlowdown({}, {}), std::invalid_argument);
    EXPECT_THROW(averageSlowdown({1.0}, {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RejectsArityMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.0312, 1), "3.1%");
}

} // namespace
} // namespace califorms
