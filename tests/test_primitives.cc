/**
 * @file test_primitives.cc
 * Unit tests for the workload behaviour primitives: chase cycle
 * construction, stream/probe bounds, churn pool invariants, and stack
 * recursion patterns.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/primitives.hh"

namespace califorms
{
namespace
{

struct Harness
{
    Machine machine;
    HeapAllocator heap;
    StackAllocator stack;
    KernelContext ctx;

    explicit Harness(InsertionPolicy policy = InsertionPolicy::None,
                     double scale = 1.0)
        : machine(), heap(machine), stack(machine),
          ctx(machine, heap, stack,
              LayoutTransformer(policy, PolicyParams{}, 5), 42, scale)
    {}
};

StructDefPtr
nodeStruct()
{
    return std::make_shared<StructDef>(
        "node", std::vector<Field>{{"next", Type::intType()},
                                   {"weight", Type::doubleType()},
                                   {"tag", Type::charType()}});
}

TEST(ContextScaling, IterationCountScaledAndClamped)
{
    Harness h(InsertionPolicy::None, 0.25);
    EXPECT_EQ(h.ctx.n(1000), 250u);
    EXPECT_EQ(h.ctx.n(1), 1u); // never rounds to zero
}

TEST(ContextLayoutCache, SameDefSameLayout)
{
    Harness h(InsertionPolicy::Full);
    auto def = nodeStruct();
    const auto a = h.ctx.layoutOf(def);
    const auto b = h.ctx.layoutOf(def);
    EXPECT_EQ(a.get(), b.get()); // cached, one randomization per def
}

TEST(AllocArrayTest, ElementsAreLayoutSizeApart)
{
    Harness h;
    const StructArray arr = allocArray(h.ctx, nodeStruct(), 10);
    EXPECT_EQ(arr.count, 10u);
    for (std::size_t i = 1; i < arr.count; ++i)
        EXPECT_EQ(arr.elem(i) - arr.elem(i - 1), arr.layout->size);
}

TEST(PointerChaseTest, BuildsSingleCycle)
{
    // Sattolo's construction must produce one cycle covering every
    // element: follow the stored links and count distinct nodes.
    Harness h;
    const StructArray arr = allocArray(h.ctx, nodeStruct(), 64);
    pointerChase(h.ctx, arr, 1, 0, 0); // build links, one hop

    std::set<std::uint64_t> visited;
    std::uint64_t cur = 0;
    for (std::size_t i = 0; i < arr.count; ++i) {
        visited.insert(cur);
        cur = h.machine.load(arr.elem(cur) +
                                 arr.layout->fields[0].offset,
                             4);
        ASSERT_LT(cur, arr.count);
    }
    EXPECT_EQ(visited.size(), arr.count);
    EXPECT_EQ(cur, 0u); // back to the start: a single cycle
}

TEST(PointerChaseTest, NoFaultsUnderFullPolicy)
{
    Harness h(InsertionPolicy::Full);
    const StructArray arr = allocArray(h.ctx, nodeStruct(), 32);
    pointerChase(h.ctx, arr, 200, 2, 4, 2);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
}

TEST(StreamPassTest, TouchesEveryElement)
{
    Harness h;
    const StructArray arr = allocArray(h.ctx, nodeStruct(), 20);
    streamPass(h.ctx, arr, 1, 2, 0);
    // The pass stores the element index into field 0.
    for (std::size_t i = 0; i < arr.count; ++i) {
        EXPECT_EQ(h.machine.load(arr.elem(i) +
                                     arr.layout->fields[0].offset,
                                 4),
                  i);
    }
}

TEST(RawArrayTest, StreamAndProbeStayInBounds)
{
    Harness h;
    const RawArray raw = allocRaw(h.ctx, 4096);
    rawStream(h.ctx, raw, 2, 2);
    rawProbe(h.ctx, raw, 500, 2);
    // Guards sit just outside; no faults means no out-of-bounds touch.
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
}

TEST(AllocChurnTest, PoolStaysBalancedAndClean)
{
    Harness h(InsertionPolicy::Intelligent);
    allocChurn(h.ctx, {nodeStruct()}, 50, 300, 2);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
    // Every allocation was eventually freed.
    EXPECT_EQ(h.heap.stats().allocs, h.heap.stats().frees);
    EXPECT_EQ(h.heap.stats().liveBytes, 0u);
}

TEST(StackWorkTest, BalancedFramesNoFaults)
{
    Harness h(InsertionPolicy::Full);
    stackWork(h.ctx, nodeStruct(), 8, 3, 20);
    EXPECT_EQ(h.stack.depth(), 0u);
    EXPECT_EQ(h.machine.exceptions().deliveredCount(), 0u);
    EXPECT_GT(h.stack.cformsIssued(), 0u);
}

TEST(Determinism, SameSeedSameCycles)
{
    auto run = [] {
        Harness h(InsertionPolicy::Full);
        const StructArray arr = allocArray(h.ctx, nodeStruct(), 64);
        pointerChase(h.ctx, arr, 500, 1, 3);
        randomProbe(h.ctx, arr, 200, 2);
        return h.machine.cycles();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace califorms
