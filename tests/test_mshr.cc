/**
 * @file test_mshr.cc
 * Non-blocking miss path tests: the MSHR table (coalescing,
 * hit-under-miss, structural stalls, invalidation cancel, fill
 * conversion under an outstanding entry), the banked DRAM row-buffer
 * state machine, the pinned MSHR-beats-blocking comparison, stat
 * gating, windowed clearStats semantics, and determinism /
 * jobs-invariance of the timed machine at core.count > 1.
 */

#include <gtest/gtest.h>

#include <string>

#include "exp/campaign.hh"
#include "exp/report.hh"
#include "sim/dram_timing.hh"
#include "sim/machine.hh"
#include "sim/memsys.hh"
#include "sim/stats_dump.hh"
#include "workload/runner.hh"
#include "workload/synth.hh"

namespace califorms
{
namespace
{

/** A one-level hierarchy (L1 straight to DRAM) so miss latencies are
 *  exactly l1Latency + the DRAM service time, which keeps the MSHR
 *  arithmetic below checkable to the cycle. */
MemSysParams
flatParams()
{
    MemSysParams p;
    p.levels = 1;
    p.l1Size = 1024;
    p.l1Ways = 2;
    return p;
}

struct Harness
{
    ExceptionUnit exceptions;
    MemorySystem mem;

    explicit Harness(MemSysParams p)
        : exceptions(ExceptionUnit::Policy::Record), mem(p, exceptions)
    {}
};

const SpecBenchmark &
synthBench(const std::string &name)
{
    for (const auto &b : synthSuite())
        if (b.name == name)
            return b;
    throw std::invalid_argument("no synth bench " + name);
}

/** A small deterministic synthetic run on a timed machine. */
RunResult
runTimed(const std::string &name, unsigned mshrs, unsigned banks,
         unsigned cores = 1)
{
    RunConfig config;
    config.machine.core.count = cores;
    if (cores > 1)
        config.machine.mem.coherence = CoherenceKind::Msi;
    config.machine.mem.mshrEntries = mshrs;
    config.machine.mem.dramBanks = banks;
    config.scale = 1.0;
    config.synth.ops = 4000;
    config.synth.footprintKb = 4096; // past the LLC: real DRAM traffic
    return runBenchmark(synthBench(name), config);
}

// ---------------------------------------------------------------------
// MSHR coalescing: a secondary access to a line whose fill is still in
// flight pays only the remaining fill time, one cycle less per issue
// cycle that has passed.
// ---------------------------------------------------------------------

TEST(Mshr, SecondaryAccessPaysTheFillRemainder)
{
    MemSysParams p = flatParams();
    p.mshrEntries = 4;
    Harness h(p);

    const Cycles first = h.mem.load(0x1000, 8).latency;
    ASSERT_GT(first, p.l1Latency);
    // Each subsequent issue cycle shaves one cycle off the remainder.
    EXPECT_EQ(h.mem.load(0x1000, 8).latency, first - 1);
    EXPECT_EQ(h.mem.load(0x1000, 8).latency, first - 2);

    const MemSysStats s = h.mem.stats();
    EXPECT_EQ(s.mshrAllocations, 1u);
    EXPECT_EQ(s.mshrCoalesced, 2u);
    EXPECT_EQ(s.mshrStallCycles, 0u);
    EXPECT_EQ(s.l1.misses, 1u);
    EXPECT_EQ(s.l1.hits, 2u);
}

// ---------------------------------------------------------------------
// Hit-under-miss: once a fill has settled, hits to that line run at
// the plain L1 latency even while another line's miss is outstanding.
// ---------------------------------------------------------------------

TEST(Mshr, HitUnderMissRunsAtL1Latency)
{
    MemSysParams p = flatParams();
    p.mshrEntries = 4;
    p.dramLatency = 10; // short fill: the entry dies after few issues
    Harness h(p);

    // Fill A and issue hits until its entry's remainder reaches zero.
    h.mem.load(0x1000, 8);
    int guard = 0;
    while (h.mem.load(0x1000, 8).latency != p.l1Latency)
        ASSERT_LT(++guard, 64) << "fill remainder never drained";

    // Miss B; while its fill is outstanding, A still hits in 4 cycles.
    const Cycles miss = h.mem.load(0x2000, 8).latency;
    EXPECT_EQ(miss, p.l1Latency + p.dramLatency);
    EXPECT_EQ(h.mem.load(0x1000, 8).latency, p.l1Latency);
    EXPECT_EQ(h.mem.stats().mshrStallCycles, 0u);
}

// ---------------------------------------------------------------------
// Structural stalls: a miss with every MSHR live waits for the
// earliest outstanding fill and books the wait as mshr.stallCycles.
// ---------------------------------------------------------------------

TEST(Mshr, FullTableStallsUntilTheEarliestFillRetires)
{
    MemSysParams p = flatParams();
    p.mshrEntries = 1;
    Harness h(p);

    const Cycles first = h.mem.load(0x1000, 8).latency;
    const Cycles below = first - p.l1Latency; // the fill time
    ASSERT_GT(below, 1u);

    // B issues one cycle after A allocated, so it waits below - 1
    // cycles for A's entry, then pays its own full fill.
    const Cycles second = h.mem.load(0x2000, 8).latency;
    EXPECT_EQ(second, first + below - 1);

    const MemSysStats s = h.mem.stats();
    EXPECT_EQ(s.mshrStallCycles, below - 1);
    EXPECT_EQ(s.mshrAllocations, 2u);
    EXPECT_EQ(s.mshrPeakOccupancy, 1u);
}

TEST(Mshr, DeeperTableAbsorbsTheSameBurstWithoutStalling)
{
    MemSysParams p = flatParams();
    p.mshrEntries = 8;
    Harness h(p);
    for (int i = 0; i < 8; ++i)
        h.mem.load(0x1000 + 0x1000 * i, 8);
    const MemSysStats s = h.mem.stats();
    EXPECT_EQ(s.mshrStallCycles, 0u);
    EXPECT_EQ(s.mshrAllocations, 8u);
    EXPECT_GE(s.mshrPeakOccupancy, 7u);
}

// ---------------------------------------------------------------------
// Califorms wrinkle: a sentinel fill conversion extends the fill the
// MSHR entry stays live for, and secondary accesses pay it too.
// ---------------------------------------------------------------------

TEST(Mshr, FillConversionExtendsTheOutstandingEntry)
{
    MemSysParams p = flatParams();
    p.mshrEntries = 4;
    p.fillConvLatency = 5;

    // Control: the same reload without security bytes on the line.
    Harness plain(p);
    plain.mem.store(0x1000, 8, 0x1122334455667788ull);
    plain.mem.flushAll();
    const Cycles plain_first = plain.mem.load(0x1000, 8).latency;

    Harness conv(p);
    conv.mem.store(0x1000, 8, 0x1122334455667788ull);
    ASSERT_FALSE(conv.mem.cform(makeSetOp(0x1000, 0xff00ull)).faulted);
    conv.mem.flushAll(); // spills to DRAM as a califormed sentinel line
    const std::uint64_t pre = conv.mem.stats().mshrCoalesced;
    const Cycles conv_first = conv.mem.load(0x1000, 8).latency;

    // The fill conversion sits on the refill path...
    EXPECT_EQ(conv_first, plain_first + p.fillConvLatency);
    // ...and the coalesced secondary miss sees the extended remainder.
    EXPECT_EQ(conv.mem.load(0x1000, 8).latency, conv_first - 1);
    EXPECT_EQ(conv.mem.stats().fills, 1u);
    EXPECT_EQ(conv.mem.stats().mshrCoalesced, pre + 1);
}

// ---------------------------------------------------------------------
// Coherence wrinkle: an invalidation cancels the victim's outstanding
// entry, so the freed slot does not phantom-stall later misses.
// ---------------------------------------------------------------------

TEST(Mshr, InvalidationCancelsTheOutstandingEntry)
{
    MachineParams p;
    p.core.count = 2;
    p.mem.coherence = CoherenceKind::Msi;
    p.mem.mshrEntries = 1;
    Machine m(p);

    m.loadOn(0, 0x10000, 8);          // core 0: entry live for a while
    m.storeOn(1, 0x10000, 8, 7);      // invalidate -> cancel the entry
    m.loadOn(0, 0x20000, 8);          // would stall on a stale entry
    EXPECT_EQ(m.memStats().mshrStallCycles, 0u);
    EXPECT_EQ(m.memStats().invalidationsSent, 1u);
}

// ---------------------------------------------------------------------
// The DRAM row-buffer state machine, driven directly.
// ---------------------------------------------------------------------

TEST(DramTiming, RowBufferStateMachine)
{
    MemSysParams p;
    p.dramBanks = 2;
    p.dramRowBytes = 8 * 1024;
    p.dramRowHitLatency = 10;
    p.dramRowMissLatency = 20;
    p.dramRowConflictLatency = 30;
    DramTiming d(p);
    ASSERT_TRUE(d.enabled());

    // First touch of bank 0: no open row -> row miss.
    EXPECT_EQ(d.access(0x0, 0).service, 20u);
    // Another line in the same 8KB row, bank idle -> row hit.
    EXPECT_EQ(d.access(0x40, 100).service, 10u);
    // Global row 1 interleaves onto bank 1 -> its own row miss.
    EXPECT_EQ(d.access(0x2000, 100).service, 20u);
    // Global row 2 is bank 0 again but a different row -> conflict.
    EXPECT_EQ(d.access(0x4000, 200).service, 30u);
    // Back-to-back on the busy bank: queue behind the conflict
    // (busy until 230), then hit the now-open row.
    const DramTiming::ServiceTime t = d.access(0x4040, 205);
    EXPECT_EQ(t.queueWait, 230u - 205u);
    EXPECT_EQ(t.service, 10u);

    const DramTimingStats s = d.stats();
    EXPECT_EQ(s.rowMisses, 2u);
    EXPECT_EQ(s.rowHits, 2u);
    EXPECT_EQ(s.rowConflicts, 1u);
    EXPECT_EQ(s.bankConflictCycles, 230u - 205u);
}

TEST(DramTiming, OccupyCountsRowStatsButNoDemandWaits)
{
    MemSysParams p;
    p.dramBanks = 2;
    p.dramRowBytes = 8 * 1024;
    DramTiming d(p);
    d.occupy(0x0);   // write-back: opens the row off the demand path
    d.occupy(0x40);
    const DramTimingStats s = d.stats();
    EXPECT_EQ(s.rowMisses + s.rowHits + s.rowConflicts, 2u);
    EXPECT_EQ(s.bankConflictCycles, 0u);
}

// ---------------------------------------------------------------------
// The pinned comparison: with banked DRAM timing on, the MSHR machine
// completes a burst of independent misses in fewer cycles than the
// blocking machine, which serializes them.
// ---------------------------------------------------------------------

TEST(MshrVsBlocking, IndependentMissesOverlapOnlyWithMshrs)
{
    MemSysParams blocking = flatParams();
    blocking.dramBanks = 8;
    MemSysParams mshr = blocking;
    mshr.mshrEntries = 16;

    Harness hb(blocking), hm(mshr);
    Cycles blocking_total = 0, mshr_total = 0;
    // Eight lines, 8KB apart: one per DRAM bank, fully independent.
    for (int i = 0; i < 8; ++i) {
        blocking_total += hb.mem.load(0x2000 * i, 8).latency;
        mshr_total += hm.mem.load(0x2000 * i, 8).latency;
    }
    EXPECT_LT(mshr_total, blocking_total);
    // Same functional traffic either way.
    EXPECT_EQ(hb.mem.stats().l1.misses, hm.mem.stats().l1.misses);
    EXPECT_EQ(hb.mem.stats().dramAccesses,
              hm.mem.stats().dramAccesses);
    EXPECT_EQ(hm.mem.stats().mshrStallCycles, 0u);
}

TEST(MshrVsBlocking, TimedMachineRunsFasterWithMshrs)
{
    const RunResult blocking = runTimed("zipf", 0, 8);
    const RunResult mshr = runTimed("zipf", 16, 8);
    // Identical functional execution...
    EXPECT_EQ(blocking.instructions, mshr.instructions);
    EXPECT_EQ(blocking.mem.l1.misses, mshr.mem.l1.misses);
    EXPECT_EQ(blocking.mem.dramAccesses, mshr.mem.dramAccesses);
    // ...but the non-blocking miss path retires it in fewer cycles.
    EXPECT_LT(mshr.cycles, blocking.cycles);
    EXPECT_GT(mshr.mem.mshrAllocations, 0u);
}

// ---------------------------------------------------------------------
// Default gating: with mshr = 0 and banks = 0 the machine is the
// legacy untimed machine, whatever the other timing knobs say.
// ---------------------------------------------------------------------

TEST(MshrGating, DisabledTimingReproducesTheLegacyMachine)
{
    const RunResult legacy = runTimed("zipf", 0, 0);

    RunConfig config;
    config.machine.mem.mshrEntries = 0;
    config.machine.mem.dramBanks = 0;
    // Scrambled row-buffer knobs must be inert while banks = 0.
    config.machine.mem.dramRowBytes = 1024;
    config.machine.mem.dramRowHitLatency = 1;
    config.machine.mem.dramRowMissLatency = 2;
    config.machine.mem.dramRowConflictLatency = 3;
    config.scale = 1.0;
    config.synth.ops = 4000;
    config.synth.footprintKb = 4096;
    const RunResult scrambled =
        runBenchmark(synthBench("zipf"), config);

    EXPECT_EQ(legacy.cycles, scrambled.cycles);
    EXPECT_EQ(legacy.instructions, scrambled.instructions);
    EXPECT_EQ(legacy.mem.l1.misses, scrambled.mem.l1.misses);
    EXPECT_EQ(legacy.mem.dramAccesses, scrambled.mem.dramAccesses);
    EXPECT_EQ(legacy.mem.mshrAllocations, 0u);
    EXPECT_EQ(legacy.mem.dramRowHits + legacy.mem.dramRowMisses +
                  legacy.mem.dramRowConflicts,
              0u);
}

TEST(MshrGating, StatDumpOnlyShowsTimingLinesWhenConfigured)
{
    MachineParams p;
    Machine untimed(p);
    untimed.load(0x1000, 8);
    const std::string plain = dumpStats(untimed);
    EXPECT_EQ(plain.find("mshr."), std::string::npos);
    EXPECT_EQ(plain.find("dram.rowHits"), std::string::npos);

    p.mem.mshrEntries = 4;
    p.mem.dramBanks = 4;
    Machine timed(p);
    timed.load(0x1000, 8);
    const std::string dump = dumpStats(timed);
    EXPECT_NE(dump.find("mshr.allocations"), std::string::npos);
    EXPECT_NE(dump.find("dram.rowHits"), std::string::npos);
}

// ---------------------------------------------------------------------
// Windowed statistics (clearStats) over the new counters.
// ---------------------------------------------------------------------

TEST(MshrClearStats, WindowCountersResetButLiveEntriesSeedThePeak)
{
    MachineParams p;
    p.mem.mshrEntries = 4;
    Machine m(p);
    m.load(0x10000, 8); // one entry, still in flight
    m.clearStats();
    const MemSysStats s = m.memStats();
    EXPECT_EQ(s.mshrAllocations, 0u);
    EXPECT_EQ(s.mshrCoalesced, 0u);
    EXPECT_EQ(s.mshrStallCycles, 0u);
    // The high-water mark restarts at the live occupancy, exactly like
    // wbq.peakOccupancy restarts at the occupied queue.
    EXPECT_EQ(s.mshrPeakOccupancy, 1u);
    EXPECT_EQ(s.dramAccesses, 0u);
}

TEST(DramClearStats, BankStateSurvivesTheWindowButStatsReset)
{
    MachineParams p;
    p.mem.dramBanks = 4;
    Machine m(p);
    m.load(0x0, 8); // opens bank 0 row 0 with a row miss
    m.clearStats();
    EXPECT_EQ(m.memStats().dramRowMisses, 0u);
    EXPECT_EQ(m.memStats().dramBankConflictCycles, 0u);
    // The next miss in the same 8KB row must see the still-open row:
    // open-row state is machine state, not window state.
    m.load(0x40, 8);
    EXPECT_EQ(m.memStats().dramRowHits, 1u);
    EXPECT_EQ(m.memStats().dramRowMisses, 0u);
}

TEST(CoherenceClearStats, SharedCountersResetWithTheWindow)
{
    MachineParams p;
    p.core.count = 2;
    p.mem.coherence = CoherenceKind::Msi;
    Machine m(p);
    m.loadOn(0, 0x10000, 8);
    m.loadOn(1, 0x10000, 8);
    m.storeOn(0, 0x10000, 8, 1); // S -> M upgrade: invalidation
    m.storeOn(0, 0x20000, 8, 2);
    m.loadOn(1, 0x20000, 8);     // dirty recall
    ASSERT_GE(m.memStats().invalidationsSent, 1u);
    ASSERT_GE(m.memStats().dirtyRecalls, 1u);

    m.clearStats();
    const MemSysStats s = m.memStats();
    EXPECT_EQ(s.invalidationsSent, 0u);
    EXPECT_EQ(s.dirtyRecalls, 0u);
    EXPECT_EQ(s.convUnderInval, 0u);
    EXPECT_EQ(s.coherenceConvCycles, 0u);
}

// ---------------------------------------------------------------------
// Determinism and jobs-invariance of the timed multi-core machine.
// ---------------------------------------------------------------------

TEST(MshrDeterminism, TimedMulticoreRunsAreIdentical)
{
    const RunResult a = runTimed("zipf", 8, 8, 2);
    const RunResult b = runTimed("zipf", 8, 8, 2);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mem.mshrAllocations, b.mem.mshrAllocations);
    EXPECT_EQ(a.mem.mshrCoalesced, b.mem.mshrCoalesced);
    EXPECT_EQ(a.mem.mshrStallCycles, b.mem.mshrStallCycles);
    EXPECT_EQ(a.mem.mshrPeakOccupancy, b.mem.mshrPeakOccupancy);
    EXPECT_EQ(a.mem.dramRowHits, b.mem.dramRowHits);
    EXPECT_EQ(a.mem.dramRowConflicts, b.mem.dramRowConflicts);
    EXPECT_EQ(a.mem.dramBankConflictCycles,
              b.mem.dramBankConflictCycles);
}

TEST(MshrDeterminism, TimedSweepIsJobsInvariant)
{
    exp::CampaignSpec spec;
    spec.name = "memlp_sweep";
    spec.suite.push_back(&synthBench("zipf"));
    spec.variants = exp::CampaignSpec::crossKey(
        exp::CampaignSpec::crossKey(
            {{"base", InsertionPolicy::None, 0, 0, std::nullopt,
              false, {}}},
            "mem.mshr_entries", {"0", "4"}),
        "mem.dram_banks", {"0", "8"});
    spec.base.machine.core.count = 2;
    spec.base.machine.mem.coherence = CoherenceKind::Msi;
    spec.base.synth.ops = 2000;
    spec.base.synth.footprintKb = 64;
    const auto serial = exp::runCampaign(spec, 1);
    const auto parallel = exp::runCampaign(spec, 4);
    const exp::ReportTiming timing{false, 1, 0.0};
    EXPECT_EQ(exp::campaignJson(serial, timing),
              exp::campaignJson(parallel, timing));
}

} // namespace
} // namespace califorms
