/**
 * @file test_cform.cc
 * Exhaustive tests of the CFORM instruction semantics against the
 * Table 1 K-map, plus atomicity and the canonical zeroing contract.
 */

#include <gtest/gtest.h>

#include "core/cform.hh"

namespace califorms
{
namespace
{

TEST(CformKmap, MaskedBytesNeverChange)
{
    // Column "X, Don't care": regardless of R2, a masked-off byte keeps
    // its state.
    for (bool initially_security : {false, true}) {
        for (bool set_bit : {false, true}) {
            BitVectorLine line;
            line.data[5] = 0;
            if (initially_security)
                line.mask = 1ull << 5;
            CformOp op;
            op.lineAddr = 0;
            op.setBits = set_bit ? (1ull << 5) : 0;
            op.mask = 0; // disallow everything
            EXPECT_EQ(applyCform(line, op), std::nullopt);
            EXPECT_EQ(line.isSecurityByte(5), initially_security);
        }
    }
}

TEST(CformKmap, SetOnRegularMakesSecurity)
{
    BitVectorLine line;
    line.data[9] = 0xAB;
    CformOp op = makeSetOp(0, 1ull << 9);
    EXPECT_EQ(applyCform(line, op), std::nullopt);
    EXPECT_TRUE(line.isSecurityByte(9));
    // Hardware zeroes the byte: loads of security bytes return zero.
    EXPECT_EQ(line.data[9], 0);
}

TEST(CformKmap, UnsetOnSecurityMakesRegular)
{
    BitVectorLine line;
    line.mask = 1ull << 3;
    CformOp op = makeUnsetOp(0, 1ull << 3);
    EXPECT_EQ(applyCform(line, op), std::nullopt);
    EXPECT_FALSE(line.isSecurityByte(3));
    EXPECT_EQ(line.data[3], 0);
}

TEST(CformKmap, SetOnSecurityRaisesException)
{
    BitVectorLine line;
    line.mask = 1ull << 7;
    CformOp op = makeSetOp(0x1000, 1ull << 7);
    const auto fault = applyCform(line, op);
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->reason, FaultReason::CformSetOnSecurity);
    EXPECT_EQ(fault->faultAddr, 0x1000u + 7);
    EXPECT_EQ(fault->kind, AccessKind::Cform);
}

TEST(CformKmap, UnsetOnRegularRaisesException)
{
    BitVectorLine line;
    CformOp op = makeUnsetOp(0x2000, 1ull << 12);
    const auto fault = applyCform(line, op);
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->reason, FaultReason::CformUnsetRegular);
    EXPECT_EQ(fault->faultAddr, 0x2000u + 12);
}

TEST(CformKmap, ExhaustivePerByteTruthTable)
{
    // All 8 combinations of (initial state, set bit, mask bit) on every
    // byte position.
    for (unsigned pos = 0; pos < lineBytes; ++pos) {
        for (int initial = 0; initial < 2; ++initial) {
            for (int set = 0; set < 2; ++set) {
                for (int allow = 0; allow < 2; ++allow) {
                    BitVectorLine line;
                    if (initial)
                        line.mask = 1ull << pos;
                    CformOp op;
                    op.setBits = set ? (1ull << pos) : 0;
                    op.mask = allow ? (1ull << pos) : 0;
                    const auto fault = applyCform(line, op);

                    const bool expect_fault =
                        allow && ((set && initial) || (!set && !initial));
                    EXPECT_EQ(fault.has_value(), expect_fault)
                        << "pos=" << pos << " init=" << initial
                        << " set=" << set << " allow=" << allow;
                    const bool expect_security =
                        expect_fault ? initial : (allow ? set : initial);
                    EXPECT_EQ(line.isSecurityByte(pos),
                              expect_security != 0);
                }
            }
        }
    }
}

TEST(Cform, AtomicOnFault)
{
    // Byte 0 transition is legal, byte 1 faults: the line must be left
    // completely unmodified.
    BitVectorLine line;
    line.mask = 1ull << 1;
    line.data[0] = 0x42;
    CformOp op;
    op.setBits = (1ull << 0) | (1ull << 1); // set both
    op.mask = (1ull << 0) | (1ull << 1);
    const auto fault = applyCform(line, op);
    ASSERT_TRUE(fault.has_value());
    EXPECT_FALSE(line.isSecurityByte(0));
    EXPECT_EQ(line.data[0], 0x42);
    EXPECT_TRUE(line.isSecurityByte(1));
}

TEST(Cform, ReportsLowestFaultingAddress)
{
    BitVectorLine line;
    line.mask = (1ull << 20) | (1ull << 40);
    CformOp op = makeSetOp(0, (1ull << 20) | (1ull << 40));
    const auto fault = checkCform(line, op);
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->faultAddr, 20u);
}

TEST(Cform, MixedSetAndUnsetInOneInstruction)
{
    // Partial update: set byte 2, unset byte 6, leave the rest alone.
    BitVectorLine line;
    line.mask = 1ull << 6;
    CformOp op;
    op.setBits = 1ull << 2;
    op.mask = (1ull << 2) | (1ull << 6);
    EXPECT_EQ(applyCform(line, op), std::nullopt);
    EXPECT_TRUE(line.isSecurityByte(2));
    EXPECT_FALSE(line.isSecurityByte(6));
}

TEST(Cform, FullLineBlacklist)
{
    BitVectorLine line;
    for (unsigned i = 0; i < lineBytes; ++i)
        line.data[i] = static_cast<std::uint8_t>(i + 1);
    CformOp op = makeSetOp(0, ~0ull);
    EXPECT_EQ(applyCform(line, op), std::nullopt);
    EXPECT_EQ(line.mask, ~0ull);
    EXPECT_TRUE(line.canonical());
}

TEST(Cform, RejectsUnalignedAddress)
{
    BitVectorLine line;
    CformOp op = makeSetOp(7, 1);
    EXPECT_THROW(applyCform(line, op), std::invalid_argument);
}

TEST(CformHelpers, MakeOpsTargetExactMask)
{
    const SecurityMask m = 0x00f0000000000001ull;
    const CformOp set = makeSetOp(0x40, m);
    EXPECT_EQ(set.setBits, m);
    EXPECT_EQ(set.mask, m);
    const CformOp unset = makeUnsetOp(0x40, m);
    EXPECT_EQ(unset.setBits, 0u);
    EXPECT_EQ(unset.mask, m);
}

} // namespace
} // namespace califorms
