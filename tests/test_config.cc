/**
 * @file test_config.cc
 * The typed parameter registry and Config API: registry invariants
 * (unique keys/flags, documented bounds), bit-for-bit default
 * materialization of the Table 3 machine, set/serialize/reload round
 * trips, unknown-key and out-of-bounds rejection, legacy-flag alias
 * equivalence (--l2-kb 256 == --set mem.l2_size_kb=256), config-file
 * edge cases (comments, blank lines, duplicate keys), the golden-
 * pinned schema dump (regen via CALIFORMS_REGEN_GOLDEN=1), and the
 * campaign-side registry axis (crossKey over a knob that previously
 * had no axis, e.g. core.mlp).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "config/config.hh"
#include "exp/campaign.hh"
#include "exp/report.hh"
#include "sim/machine.hh"
#include "util/parse.hh"

#ifndef CALIFORMS_GOLDEN_DIR
#error "build must define CALIFORMS_GOLDEN_DIR"
#endif

namespace califorms
{
namespace
{

using config::Config;
using config::ParamRegistry;
using config::ParamSpec;
using config::ParamType;

TEST(Registry, KeysAndFlagsAreUniqueAndDocumented)
{
    std::set<std::string> keys, flags;
    for (const ParamSpec &spec : ParamRegistry::instance().specs()) {
        EXPECT_TRUE(keys.insert(spec.key).second)
            << "duplicate key " << spec.key;
        EXPECT_NE(spec.key.find('.'), std::string::npos)
            << spec.key << " is not dotted";
        EXPECT_FALSE(spec.doc.empty()) << spec.key << " lacks a doc";
        if (!spec.flag.empty()) {
            EXPECT_TRUE(flags.insert(spec.flag).second)
                << "duplicate flag " << spec.flag;
        }
        if (spec.type == ParamType::UInt) {
            EXPECT_LE(spec.minU, spec.maxU) << spec.key;
        }
        if (spec.type == ParamType::Double) {
            EXPECT_LE(spec.minD, spec.maxD) << spec.key;
        }
        if (spec.type == ParamType::Enum) {
            EXPECT_FALSE(spec.choices.empty()) << spec.key;
        }
        // The default must satisfy the spec's own validation.
        std::string error;
        EXPECT_TRUE(ParamRegistry::instance().parse(
            spec, config::renderValue(spec.def), error))
            << spec.key << ": " << error;
    }
    // The legacy CLI surface is fully covered.
    for (const char *flag :
         {"--levels", "--l2-kb", "--llc-kb", "--l2-lat", "--llc-lat",
          "--fill-conv", "--spill-conv", "--wb-queue", "--l1",
          "--policy"})
        EXPECT_NE(ParamRegistry::instance().findFlag(flag), nullptr)
            << flag;
    // Every advertised layout.policy choice must actually parse (the
    // apply lambda dereferences parsePolicyName's optional), and every
    // policy enum value must round-trip through its canonical name.
    const ParamSpec *policy =
        ParamRegistry::instance().find("layout.policy");
    ASSERT_NE(policy, nullptr);
    for (const std::string &choice : policy->choices)
        EXPECT_TRUE(parsePolicyName(choice).has_value()) << choice;
    for (const InsertionPolicy p :
         {InsertionPolicy::None, InsertionPolicy::Opportunistic,
          InsertionPolicy::Full, InsertionPolicy::Intelligent,
          InsertionPolicy::FullFixed})
        EXPECT_EQ(parsePolicyName(policyName(p)), p);
}

TEST(Registry, EveryEnumChoiceAppliesAndReadsBackCanonically)
{
    // Each advertised choice of every enum knob must survive
    // apply-then-read: a choice added to the list without the matching
    // name-table branch throws here instead of silently misconfiguring
    // the machine (e.g. an unknown L1 format falling back to
    // bitvector).
    for (const ParamSpec &spec : ParamRegistry::instance().specs()) {
        if (spec.type != ParamType::Enum)
            continue;
        for (const std::string &choice : spec.choices) {
            RunConfig rc;
            ASSERT_NO_THROW(spec.apply(rc, config::ParamValue{choice}))
                << spec.key << " = " << choice;
            const std::string canonical =
                std::get<std::string>(spec.read(rc));
            EXPECT_NE(std::find(spec.choices.begin(),
                                spec.choices.end(), canonical),
                      spec.choices.end())
                << spec.key << ": " << choice << " read back as "
                << canonical;
        }
    }
}

TEST(Registry, DefaultConfigMaterializesTheTable3Machine)
{
    // The pre-registry MachineParams literals, spelled out: an empty
    // Config must materialize exactly this machine.
    const RunConfig rc = Config{}.makeRunConfig();
    EXPECT_EQ(rc.machine.mem.l1Size, 32u * 1024);
    EXPECT_EQ(rc.machine.mem.l1Ways, 8u);
    EXPECT_EQ(rc.machine.mem.l1Latency, 4u);
    EXPECT_EQ(rc.machine.mem.l2Size, 256u * 1024);
    EXPECT_EQ(rc.machine.mem.l2Ways, 8u);
    EXPECT_EQ(rc.machine.mem.l2Latency, 7u);
    EXPECT_EQ(rc.machine.mem.l3Size, 2u * 1024 * 1024);
    EXPECT_EQ(rc.machine.mem.l3Ways, 16u);
    EXPECT_EQ(rc.machine.mem.l3Latency, 27u);
    EXPECT_EQ(rc.machine.mem.dramLatency, 120u);
    EXPECT_EQ(rc.machine.mem.levels, 3u);
    EXPECT_EQ(rc.machine.mem.extraL2L3Latency, 0u);
    EXPECT_EQ(rc.machine.mem.fillConvLatency, 0u);
    EXPECT_EQ(rc.machine.mem.spillConvLatency, 0u);
    EXPECT_EQ(rc.machine.mem.wbQueueEntries, 0u);
    EXPECT_EQ(rc.machine.mem.wbHitLatency, 1u);
    EXPECT_EQ(rc.machine.mem.l1Format, L1Format::BitVector8B);
    EXPECT_FALSE(rc.machine.mem.nextLinePrefetch);
    EXPECT_EQ(rc.machine.core.issueWidth, 4u);
    EXPECT_EQ(rc.machine.core.mlp, 12u);
    EXPECT_DOUBLE_EQ(rc.machine.core.storeMissWeight, 0.2);
    EXPECT_DOUBLE_EQ(rc.machine.core.cformMissWeight, 0.3);
    EXPECT_DOUBLE_EQ(rc.machine.core.dramCyclesPerLine, 7.0);
    EXPECT_EQ(rc.policy, InsertionPolicy::None);
    EXPECT_EQ(rc.policyParams.minSpan, 1u);
    EXPECT_EQ(rc.policyParams.maxSpan, 7u);
    EXPECT_EQ(rc.policyParams.fixedSpan, 1u);
    EXPECT_EQ(rc.layoutSeed, 7u);
    EXPECT_EQ(rc.kernelSeed, 0x5eedu);
    EXPECT_DOUBLE_EQ(rc.scale, 1.0);
    EXPECT_EQ(rc.heap.guardBytes, 8u);
    EXPECT_DOUBLE_EQ(rc.heap.quarantineFraction, 0.25);
    EXPECT_TRUE(rc.heap.useCform);
    EXPECT_FALSE(rc.heap.nonTemporalCform);
    EXPECT_TRUE(rc.stack.useCform);
}

TEST(Config, SetAppliesWithUnitScalingAndTypes)
{
    Config cfg;
    EXPECT_FALSE(cfg.set("mem.l2_size_kb", "128"));
    EXPECT_FALSE(cfg.set("core.mlp", "4"));
    EXPECT_FALSE(cfg.set("layout.policy", "intelligent"));
    EXPECT_FALSE(cfg.set("heap.use_cform", "false"));
    EXPECT_FALSE(cfg.set("core.dram_cycles_per_line", "3.5"));
    const RunConfig rc = cfg.makeRunConfig();
    EXPECT_EQ(rc.machine.mem.l2Size, 128u * 1024);
    EXPECT_EQ(rc.machine.core.mlp, 4u);
    EXPECT_EQ(rc.policy, InsertionPolicy::Intelligent);
    EXPECT_FALSE(rc.heap.useCform);
    EXPECT_DOUBLE_EQ(rc.machine.core.dramCyclesPerLine, 3.5);
    // Untouched knobs keep their defaults.
    EXPECT_EQ(rc.machine.mem.l1Size, 32u * 1024);
}

TEST(Config, RejectsUnknownKeysAndBadValues)
{
    Config cfg;
    const auto unknown = cfg.set("mem.no_such_knob", "1");
    ASSERT_TRUE(unknown);
    EXPECT_NE(unknown->find("unknown config key"), std::string::npos);

    const auto oob = cfg.set("mem.levels", "4");
    ASSERT_TRUE(oob);
    EXPECT_NE(oob->find("[1, 3]"), std::string::npos);

    EXPECT_TRUE(cfg.set("mem.l2_size_kb", "-3"));
    EXPECT_TRUE(cfg.set("mem.l2_size_kb", "12x"));
    EXPECT_TRUE(cfg.set("core.store_miss_weight", "1.5"));
    EXPECT_TRUE(cfg.set("heap.use_cform", "maybe"));
    EXPECT_TRUE(cfg.set("layout.policy", "bogus"));
    EXPECT_TRUE(cfg.setPair("no-equals-sign"));
    // Nothing was recorded by the failed sets.
    EXPECT_EQ(cfg.setCount(), 0u);
}

TEST(Config, ReplPolicyKeysParseAndRejectUnknownNames)
{
    Config cfg;
    EXPECT_FALSE(cfg.set("mem.repl_policy", "drrip"));
    EXPECT_FALSE(cfg.set("mem.l2_repl_policy", "ship"));
    EXPECT_FALSE(cfg.set("mem.llc_repl_policy", "inherit"));
    const RunConfig rc = cfg.makeRunConfig();
    EXPECT_EQ(rc.machine.mem.replPolicy, ReplPolicy::Drrip);
    EXPECT_EQ(rc.machine.mem.l2ReplPolicy, ReplPolicy::Ship);
    EXPECT_EQ(rc.machine.mem.llcReplPolicy, ReplPolicy::Inherit);
    EXPECT_EQ(resolvedReplPolicy(rc.machine.mem, 1), ReplPolicy::Drrip);
    EXPECT_EQ(resolvedReplPolicy(rc.machine.mem, 2), ReplPolicy::Ship);
    EXPECT_EQ(resolvedReplPolicy(rc.machine.mem, 3), ReplPolicy::Drrip);

    // Unknown names list the candidates; the base key has no
    // "inherit" (there is nothing above it to inherit from).
    const auto bad = cfg.set("mem.repl_policy", "plru");
    ASSERT_TRUE(bad);
    EXPECT_NE(bad->find("expects one of"), std::string::npos);
    EXPECT_NE(bad->find("drrip"), std::string::npos);
    EXPECT_TRUE(cfg.set("mem.repl_policy", "inherit"));
}

TEST(Config, SerializeReloadRoundTripsTheResolvedConfig)
{
    Config cfg;
    ASSERT_FALSE(cfg.set("mem.l2_size_kb", "96"));
    ASSERT_FALSE(cfg.set("mem.l1_format", "cal4b"));
    ASSERT_FALSE(cfg.set("core.store_miss_weight", "0.35"));
    ASSERT_FALSE(cfg.set("stack.use_cform", "false"));
    ASSERT_FALSE(cfg.set("layout.seed", "123456789012345"));

    const std::string dump = cfg.serialize();
    Config reloaded;
    const auto error = reloaded.loadText(dump);
    EXPECT_FALSE(error) << *error;
    // The reloaded resolved config is identical, key for key...
    for (const ParamSpec &spec : ParamRegistry::instance().specs())
        EXPECT_EQ(config::renderValue(cfg.resolved(spec.key)),
                  config::renderValue(reloaded.resolved(spec.key)))
            << spec.key;
    // ...and so is the machine it materializes.
    const std::string a =
        Config::fromRunConfig(cfg.makeRunConfig()).serialize(true);
    const std::string b =
        Config::fromRunConfig(reloaded.makeRunConfig()).serialize(true);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("mem.l2_size_kb = 96"), std::string::npos);
}

TEST(Config, FileParsingHandlesCommentsBlanksAndDuplicates)
{
    Config cfg;
    const auto error = cfg.loadText("# full-line comment\n"
                                    "\n"
                                    "   \t \n"
                                    "mem.l2_size_kb = 64\n"
                                    "core.mlp=5   # trailing comment\n"
                                    "  mem.l2_size_kb   =  192  \n");
    EXPECT_FALSE(error) << *error;
    // Duplicate keys: the last assignment wins, like repeated --set.
    const RunConfig rc = cfg.makeRunConfig();
    EXPECT_EQ(rc.machine.mem.l2Size, 192u * 1024);
    EXPECT_EQ(rc.machine.core.mlp, 5u);
    EXPECT_EQ(cfg.setCount(), 2u);
}

TEST(Config, FileParsingReportsTheOffendingLine)
{
    Config cfg;
    const auto missing_eq =
        cfg.loadText("mem.levels = 2\njust some words\n");
    ASSERT_TRUE(missing_eq);
    EXPECT_NE(missing_eq->find("line 2"), std::string::npos);

    const auto bad_value = cfg.loadText("\n\nmem.levels = 99\n");
    ASSERT_TRUE(bad_value);
    EXPECT_NE(bad_value->find("line 3"), std::string::npos);

    EXPECT_TRUE(cfg.loadFile("/nonexistent/path/x.conf"));
}

/** Drive parseCliArg over a synthetic argv; returns the Config. */
Config
parseArgs(std::vector<std::string> args)
{
    Config cfg;
    std::vector<char *> argv;
    for (std::string &arg : args)
        argv.push_back(arg.data());
    const int argc = static_cast<int>(argv.size());
    for (int i = 0; i < argc; ++i) {
        const auto r = config::parseCliArg(cfg, argv[i], argc,
                                           argv.data(), i, "test");
        EXPECT_NE(r, config::CliArg::Error) << args[0];
        EXPECT_NE(r, config::CliArg::NotMine) << args[0];
    }
    return cfg;
}

TEST(Config, LegacyFlagsAreRegistryAliases)
{
    // --l2-kb 256 must be byte-identical to --set mem.l2_size_kb=256,
    // and likewise for every aliased flag (ISSUE 4 acceptance).
    const struct
    {
        std::vector<std::string> flag;
        std::vector<std::string> set;
    } cases[] = {
        {{"--l2-kb", "256"}, {"--set", "mem.l2_size_kb=256"}},
        {{"--levels", "2"}, {"--set", "mem.levels=2"}},
        {{"--llc-kb", "1024"}, {"--set", "mem.llc_size_kb=1024"}},
        {{"--l2-lat", "9"}, {"--set", "mem.l2_latency=9"}},
        {{"--llc-lat", "31"}, {"--set", "mem.llc_latency=31"}},
        {{"--fill-conv", "2"}, {"--set", "mem.fill_conv_latency=2"}},
        {{"--spill-conv", "3"}, {"--set", "mem.spill_conv_latency=3"}},
        {{"--wb-queue", "8"}, {"--set", "mem.wb_queue_entries=8"}},
        {{"--l1", "cal1b"}, {"--set", "mem.l1_format=cal1b"}},
        {{"--policy", "full"}, {"--set", "layout.policy=full"}},
    };
    for (const auto &c : cases) {
        const std::string via_flag =
            parseArgs(c.flag).serialize(true);
        const std::string via_set = parseArgs(c.set).serialize(true);
        EXPECT_EQ(via_flag, via_set) << c.flag[0];
        EXPECT_FALSE(via_flag.empty()) << c.flag[0];
    }
}

TEST(Config, FromRunConfigDiffsAgainstDefaults)
{
    EXPECT_EQ(Config::fromRunConfig(RunConfig{}).setCount(), 0u);

    RunConfig rc;
    rc.machine.core.mlp = 6;
    rc.machine.mem.l2Size = 64 * 1024;
    const Config cfg = Config::fromRunConfig(rc);
    EXPECT_EQ(cfg.setCount(), 2u);
    EXPECT_EQ(cfg.serialize(true),
              "mem.l2_size_kb = 64\n\ncore.mlp = 6\n");
    // Applying the diff to a fresh RunConfig reproduces the original.
    const RunConfig back = cfg.makeRunConfig();
    EXPECT_EQ(back.machine.core.mlp, 6u);
    EXPECT_EQ(back.machine.mem.l2Size, 64u * 1024);
}

TEST(Config, DescribeParamsRendersEveryMachineKnob)
{
    // The Table 3 listing is generated from the registry: every
    // mem.*/core.* key appears, so the listing cannot drift from the
    // knob set.
    const std::string listing = describeParams(MachineParams{});
    for (const ParamSpec &spec : ParamRegistry::instance().specs()) {
        if (spec.key.rfind("mem.", 0) == 0 ||
            spec.key.rfind("core.", 0) == 0) {
            EXPECT_NE(listing.find(spec.key), std::string::npos)
                << spec.key;
        }
    }
    // Non-default values are flagged.
    MachineParams tweaked;
    tweaked.mem.wbQueueEntries = 8;
    EXPECT_NE(describeParams(tweaked).find("* mem.wb_queue_entries"),
              std::string::npos);
}

TEST(ConfigGolden, SchemaMatchesCheckedInExpectation)
{
    const std::string path =
        std::string(CALIFORMS_GOLDEN_DIR) + "/config_schema.json";
    const std::string json =
        ParamRegistry::instance().schemaJson();
    if (std::getenv("CALIFORMS_REGEN_GOLDEN")) {
        exp::writeReportFile(path, json);
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    ASSERT_FALSE(ss.str().empty())
        << "missing golden file " << path
        << " (run with CALIFORMS_REGEN_GOLDEN=1 to create it)";
    EXPECT_EQ(json, ss.str())
        << "registry schema drifted: every knob change must ship its "
           "schema (CALIFORMS_REGEN_GOLDEN=1 after review)";
}

// ---------------------------------------------------------------------
// The campaign-side registry axis: any knob is a grid dimension.
// ---------------------------------------------------------------------

TEST(CampaignAxis, CrossKeySweepsAKnobWithNoDedicatedAxis)
{
    // core.mlp never had a Variant field or CLI axis; the registry
    // makes it sweepable anyway (ISSUE 4 acceptance).
    exp::CampaignSpec spec;
    spec.name = "mlp_axis";
    spec.suite = {&findBenchmark("mcf")};
    spec.base.scale = 0.02;
    spec.variants = exp::CampaignSpec::crossKey(
        {{"base", InsertionPolicy::None, 0, 0, false, false, {}},
         {"full/3", InsertionPolicy::Full, 3, 0, true, true, {}}},
        "core.mlp", {"1", "12"});
    ASSERT_EQ(spec.variants.size(), 4u);
    EXPECT_EQ(spec.variants[0].label, "base@core.mlp=1");
    EXPECT_EQ(spec.variants[3].label, "full/3@core.mlp=12");

    const auto units = spec.expand();
    for (const exp::RunUnit &unit : units) {
        const unsigned expected =
            unit.variantIndex < 2 ? 1u : 12u;
        EXPECT_EQ(unit.config.machine.core.mlp, expected);
    }

    // An MLP-1 machine exposes every miss serially; the same workload
    // must be slower than at the default MLP of 12.
    const exp::CampaignResult result = exp::runCampaign(spec, 2);
    EXPECT_GT(result.meanCycles(0, 0), result.meanCycles(0, 2));

    // The v2 report embeds the variant's resolved non-default config.
    exp::ReportTiming timing;
    timing.include = false;
    const std::string json = exp::campaignJson(result, timing);
    EXPECT_NE(json.find("\"config\": {\"core.mlp\": 1}"),
              std::string::npos);
    EXPECT_NE(json.find("\"config\": {\"core.mlp\": 12}"),
              std::string::npos);
    // V1 stays pre-registry byte-compatible: no config objects.
    const std::string v1 =
        exp::campaignJson(result, timing, exp::ReportSchema::V1);
    EXPECT_EQ(v1.find("\"config\""), std::string::npos);
}

TEST(CampaignAxis, LayoutSeedOverrideBeatsTheSeedList)
{
    // A layout.seed set must actually apply — the report embeds it as
    // the variant's config, so the implicit campaign seed axis may not
    // silently overwrite it.
    exp::CampaignSpec spec;
    spec.suite = {&findBenchmark("mcf")};
    spec.layoutSeeds = {1000, 1001};
    exp::Variant pinned{"pinned", InsertionPolicy::Full, 3, 0, true,
                        true, {}};
    pinned.withSet("layout.seed", "42");
    spec.variants = {pinned};
    for (const exp::RunUnit &unit : spec.expand())
        EXPECT_EQ(unit.config.layoutSeed, 42u);
}

TEST(CampaignAxis, CrossKeyAndWithSetRejectBadInput)
{
    const std::vector<exp::Variant> base = {
        {"base", InsertionPolicy::None, 0, 0, false, false, {}}};
    EXPECT_THROW(exp::CampaignSpec::crossKey(base, "nope.key", {"1"}),
                 std::invalid_argument);
    EXPECT_THROW(
        exp::CampaignSpec::crossKey(base, "core.mlp", {"0"}),
        std::invalid_argument);
    exp::Variant v;
    EXPECT_THROW(v.withSet("core.mlp", "banana"),
                 std::invalid_argument);
    v.withSet("core.mlp", "8");
    EXPECT_EQ(v.sets.size(), 1u);
}

// ---------------------------------------------------------------------
// Satellite: the strict list-parsing contract (malformed != empty).
// ---------------------------------------------------------------------

TEST(ParseList, MalformedInputIsDistinguishableFromEmpty)
{
    EXPECT_EQ(parseSizeList("3,5,7"),
              (std::vector<std::size_t>{3, 5, 7}));
    EXPECT_EQ(parseSizeList("42"), std::vector<std::size_t>{42});
    // The old contract returned {} for all of these — callers could
    // not tell a parse error from an empty list. Now they are errors.
    EXPECT_EQ(parseSizeList(""), std::nullopt);
    EXPECT_EQ(parseSizeList("3,,5"), std::nullopt);
    EXPECT_EQ(parseSizeList("3,x"), std::nullopt);
    EXPECT_EQ(parseSizeList("-3"), std::nullopt);
    EXPECT_EQ(parseSizeList("3,5,"), std::nullopt);
    EXPECT_EQ(parseSizeList("1e3"), std::nullopt);
}

TEST(ParseList, ScalarParsersAreStrict)
{
    EXPECT_EQ(parseU64("0"), 0u);
    EXPECT_EQ(parseU64("18446744073709551615"),
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(parseU64("18446744073709551616"), std::nullopt);
    EXPECT_EQ(parseU64(" 3"), std::nullopt);
    EXPECT_EQ(parseU64("+3"), std::nullopt);
    EXPECT_EQ(parseDouble("0.25"), 0.25);
    EXPECT_EQ(parseDouble("1e2"), 100.0);
    EXPECT_EQ(parseDouble("nan"), std::nullopt);
    EXPECT_EQ(parseDouble("inf"), std::nullopt);
    EXPECT_EQ(parseDouble("1.5x"), std::nullopt);
    EXPECT_EQ(parseBool("true"), true);
    EXPECT_EQ(parseBool("off"), false);
    EXPECT_EQ(parseBool("TRUE"), std::nullopt);
}

} // namespace
} // namespace califorms
