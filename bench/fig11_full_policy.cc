/**
 * @file fig11_full_policy.cc
 * Figure 11: slowdown of the opportunistic policy (with CFORM) and the
 * full insertion policy with random 1-3B / 1-5B / 1-7B security bytes,
 * with and without CFORM instructions, over the 16-benchmark software
 * evaluation subset. Paper averages: opportunistic 6.2% (7.9% in the
 * text for the CFORM-only component), full 14.2%; libquantum is the
 * >80% outlier.
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace califorms;
using bench::Options;

namespace
{

struct Config
{
    const char *label;
    InsertionPolicy policy;
    std::size_t maxSpan;
    bool cform;
    bool randomized; //!< average over layout seeds
};

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Figure 11 - opportunistic & full insertion policies",
        "avg: opportunistic+CFORM 6.2%..7.9%, full+CFORM 14.2%; "
        "libquantum >80%",
        opt);

    const Config configs[] = {
        {"1-3B", InsertionPolicy::Full, 3, false, true},
        {"1-5B", InsertionPolicy::Full, 5, false, true},
        {"1-7B", InsertionPolicy::Full, 7, false, true},
        {"Opportunistic CFORM", InsertionPolicy::Opportunistic, 0, true,
         false},
        {"1-3B CFORM", InsertionPolicy::Full, 3, true, true},
        {"1-5B CFORM", InsertionPolicy::Full, 5, true, true},
        {"1-7B CFORM", InsertionPolicy::Full, 7, true, true},
    };

    const auto suite = bench::softwareEvalSuite();

    std::vector<double> base;
    for (const auto *b : suite) {
        RunConfig config;
        config.scale = opt.scale;
        config.withCform(false); // the original, uninstrumented binary
        base.push_back(
            static_cast<double>(runBenchmark(*b, config).cycles));
    }

    std::vector<std::string> header = {"benchmark"};
    for (const auto &c : configs)
        header.push_back(c.label);
    TextTable table(header);

    std::vector<std::vector<double>> per_config(std::size(configs));
    for (std::size_t i = 0; i < suite.size(); ++i) {
        std::vector<std::string> row = {suite[i]->name};
        for (std::size_t c = 0; c < std::size(configs); ++c) {
            RunConfig config;
            config.scale = opt.scale;
            config.policy = configs[c].policy;
            config.policyParams.maxSpan =
                std::max<std::size_t>(1, configs[c].maxSpan);
            config.withCform(configs[c].cform);
            const double cycles = bench::meanCyclesOverSeeds(
                *suite[i], config,
                configs[c].randomized ? opt.seeds : 1);
            per_config[c].push_back(cycles);
            row.push_back(TextTable::pct(cycles / base[i] - 1.0));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row = {"AVG"};
    for (std::size_t c = 0; c < std::size(configs); ++c)
        avg_row.push_back(
            TextTable::pct(averageSlowdown(base, per_config[c])));
    table.addRow(avg_row);
    std::printf("%s", table.render().c_str());

    std::printf("\npaper: the three no-CFORM variants average "
                "5.5%%/5.6%%/6.5%%; opportunistic+CFORM\naverages "
                "7.9%%; full+CFORM reaches 14.0-14.2%%; libquantum "
                "is clipped at >80%%.\n");
    return 0;
}
