/**
 * @file fig11_full_policy.cc
 * Figure 11: slowdown of the opportunistic policy (with CFORM) and the
 * full insertion policy with random 1-3B / 1-5B / 1-7B security bytes,
 * with and without CFORM instructions, over the 16-benchmark software
 * evaluation subset. Paper averages: opportunistic 6.2% (7.9% in the
 * text for the CFORM-only component), full 14.2%; libquantum is the
 * >80% outlier.
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace califorms;
using bench::Options;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Figure 11 - opportunistic & full insertion policies",
        "avg: opportunistic+CFORM 6.2%..7.9%, full+CFORM 14.2%; "
        "libquantum >80%",
        opt);

    // Variant 0 is the uninstrumented baseline binary; the rest are the
    // Figure 11 bars left to right.
    exp::CampaignSpec spec;
    spec.name = "fig11_full_policy";
    spec.suite = bench::softwareEvalSuite();
    spec.variants = {
        {"base", InsertionPolicy::None, 0, 0, false, false, {}},
        {"1-3B", InsertionPolicy::Full, 3, 0, false, true, {}},
        {"1-5B", InsertionPolicy::Full, 5, 0, false, true, {}},
        {"1-7B", InsertionPolicy::Full, 7, 0, false, true, {}},
        {"Opportunistic CFORM", InsertionPolicy::Opportunistic, 0, 0,
         true, false, {}},
        {"1-3B CFORM", InsertionPolicy::Full, 3, 0, true, true, {}},
        {"1-5B CFORM", InsertionPolicy::Full, 5, 0, true, true, {}},
        {"1-7B CFORM", InsertionPolicy::Full, 7, 0, true, true, {}},
    };

    const auto result = bench::runCampaign(opt, spec);
    const std::size_t n_variants = spec.variants.size();

    std::vector<std::string> header = {"benchmark"};
    for (std::size_t v = 1; v < n_variants; ++v)
        header.push_back(spec.variants[v].label);
    TextTable table(header);

    std::vector<double> base;
    std::vector<std::vector<double>> per_config(n_variants - 1);
    for (std::size_t i = 0; i < spec.suite.size(); ++i) {
        base.push_back(result.meanCycles(i, 0));
        std::vector<std::string> row = {spec.suite[i]->name};
        for (std::size_t v = 1; v < n_variants; ++v) {
            const double cycles = result.meanCycles(i, v);
            per_config[v - 1].push_back(cycles);
            row.push_back(TextTable::pct(cycles / base[i] - 1.0));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row = {"AVG"};
    for (auto &config_cycles : per_config)
        avg_row.push_back(
            TextTable::pct(averageSlowdown(base, config_cycles)));
    table.addRow(avg_row);
    std::printf("%s", table.render().c_str());

    std::printf("\npaper: the three no-CFORM variants average "
                "5.5%%/5.6%%/6.5%%; opportunistic+CFORM\naverages "
                "7.9%%; full+CFORM reaches 14.0-14.2%%; libquantum "
                "is clipped at >80%%.\n");
    return 0;
}
