/**
 * @file ablation_design_choices.cc
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  - quarantine threshold: temporal-safety window vs heap growth;
 *  - non-temporal CFORM on free (footnote 3 of Section 6.1): cache
 *    pollution avoided vs regular CFORM;
 *  - inter-object guard size: detection of linear overflows vs memory
 *    overhead;
 *  - clean-before-use heap vs dirty-before-use discipline (CFORM
 *    traffic comparison).
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace califorms;
using bench::Options;

namespace
{

RunResult
runPerl(const Options &opt, HeapParams heap)
{
    RunConfig config;
    config.scale = opt.scale;
    config.policy = InsertionPolicy::Intelligent;
    config.heap = heap;
    return runBenchmark(findBenchmark("perlbench"), config);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner("Ablation - allocator & CFORM design choices",
                  "Section 6.1 footnote 3 and quarantine design", opt);

    // Quarantine fraction sweep (temporal safety window).
    std::printf("\n-- quarantine fraction (perlbench, intelligent "
                "policy) --\n");
    TextTable quarantine({"fraction", "cycles", "reuses",
                          "peak heap (KB)"});
    for (double frac : {0.0, 0.1, 0.25, 0.5, 1.0}) {
        HeapParams heap;
        heap.quarantineFraction = frac;
        const auto r = runPerl(opt, heap);
        quarantine.addRow({TextTable::num(frac, 2),
                           std::to_string(r.cycles),
                           std::to_string(r.heap.reuses),
                           std::to_string(r.heap.peakHeapBytes / 1024)});
    }
    std::printf("%s", quarantine.render().c_str());
    std::printf("(larger fractions hold freed memory blacklisted "
                "longer — better temporal\nsafety — at the cost of "
                "heap growth)\n");

    // Non-temporal CFORM.
    std::printf("\n-- non-temporal CFORM (footnote 3) --\n");
    TextTable nt({"mode", "cycles", "L1 misses", "slowdown vs nt"});
    HeapParams regular;
    HeapParams non_temporal;
    non_temporal.nonTemporalCform = true;
    const auto r_reg = runPerl(opt, regular);
    const auto r_nt = runPerl(opt, non_temporal);
    nt.addRow({"regular CFORM", std::to_string(r_reg.cycles),
               std::to_string(r_reg.mem.l1.misses),
               TextTable::pct(static_cast<double>(r_reg.cycles) /
                                  static_cast<double>(r_nt.cycles) -
                              1.0)});
    nt.addRow({"non-temporal CFORM", std::to_string(r_nt.cycles),
               std::to_string(r_nt.mem.l1.misses), "-"});
    std::printf("%s", nt.render().c_str());
    std::printf("(footnote 3 predicts the streaming variant helps by not "
                "polluting the L1 with\nfreed lines; in this model the "
                "sign depends on whether freed lines are touched\nagain "
                "before eviction — compare the L1 miss columns)\n");

    // Guard bytes sweep.
    std::printf("\n-- inter-object guard size --\n");
    TextTable guards({"guard bytes", "cycles", "heap footprint proxy",
                      "CFORMs"});
    for (std::size_t g : {0u, 8u, 16u, 32u}) {
        HeapParams heap;
        heap.guardBytes = g;
        const auto r = runPerl(opt, heap);
        guards.addRow({std::to_string(g), std::to_string(r.cycles),
                       std::to_string(r.heap.peakHeapBytes / 1024),
                       std::to_string(r.heap.cformsIssued)});
    }
    std::printf("%s", guards.render().c_str());
    std::printf("(REST-style guards: wider guards raise detection "
                "margin for wild linear\noverflows at a small space "
                "cost; 8B guards catch every +/-1 overflow)\n");
    return 0;
}
