/**
 * @file ablation_design_choices.cc
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  - quarantine threshold: temporal-safety window vs heap growth;
 *  - non-temporal CFORM on free (footnote 3 of Section 6.1): cache
 *    pollution avoided vs regular CFORM;
 *  - inter-object guard size: detection of linear overflows vs memory
 *    overhead;
 *  - clean-before-use heap vs dirty-before-use discipline (CFORM
 *    traffic comparison).
 *
 * All three sweeps are one campaign over perlbench (intelligent
 * policy), so --jobs parallelizes across the ablation axes.
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace califorms;
using bench::Options;

namespace
{

exp::Variant
heapVariant(std::string label, HeapParams heap)
{
    exp::Variant v;
    v.label = std::move(label);
    v.policy = InsertionPolicy::Intelligent;
    v.randomized = false;
    v.tweak = [heap](RunConfig &c) { c.heap = heap; };
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);
    // Every row reports per-run allocator counters (reuses, peak heap,
    // CFORMs), which cannot be averaged over layouts — this harness is
    // single-layout by construction, so keep the banner honest.
    opt.seeds = 1;
    bench::banner("Ablation - allocator & CFORM design choices",
                  "Section 6.1 footnote 3 and quarantine design", opt);

    const double fractions[] = {0.0, 0.1, 0.25, 0.5, 1.0};
    const std::size_t guard_sizes[] = {0, 8, 16, 32};

    exp::CampaignSpec spec;
    spec.name = "ablation_design_choices";
    spec.suite = {&findBenchmark("perlbench")};
    for (const double frac : fractions) {
        HeapParams heap;
        heap.quarantineFraction = frac;
        spec.variants.push_back(heapVariant(
            "quarantine/" + TextTable::num(frac, 2), heap));
    }
    const std::size_t nt_base = spec.variants.size();
    spec.variants.push_back(heapVariant("regular CFORM", HeapParams{}));
    {
        HeapParams heap;
        heap.nonTemporalCform = true;
        spec.variants.push_back(
            heapVariant("non-temporal CFORM", heap));
    }
    const std::size_t guard_base = spec.variants.size();
    for (const std::size_t g : guard_sizes) {
        HeapParams heap;
        heap.guardBytes = g;
        spec.variants.push_back(
            heapVariant("guard/" + std::to_string(g), heap));
    }

    const auto result = bench::runCampaign(opt, spec);

    // Quarantine fraction sweep (temporal safety window).
    std::printf("\n-- quarantine fraction (perlbench, intelligent "
                "policy) --\n");
    TextTable quarantine({"fraction", "cycles", "reuses",
                          "peak heap (KB)"});
    for (std::size_t i = 0; i < std::size(fractions); ++i) {
        const RunResult &r = result.at(0, i);
        quarantine.addRow({TextTable::num(fractions[i], 2),
                           std::to_string(r.cycles),
                           std::to_string(r.heap.reuses),
                           std::to_string(r.heap.peakHeapBytes / 1024)});
    }
    std::printf("%s", quarantine.render().c_str());
    std::printf("(larger fractions hold freed memory blacklisted "
                "longer — better temporal\nsafety — at the cost of "
                "heap growth)\n");

    // Non-temporal CFORM.
    std::printf("\n-- non-temporal CFORM (footnote 3) --\n");
    TextTable nt({"mode", "cycles", "L1 misses", "slowdown vs nt"});
    const RunResult &r_reg = result.at(0, nt_base);
    const RunResult &r_nt = result.at(0, nt_base + 1);
    nt.addRow({"regular CFORM", std::to_string(r_reg.cycles),
               std::to_string(r_reg.mem.l1.misses),
               TextTable::pct(static_cast<double>(r_reg.cycles) /
                                  static_cast<double>(r_nt.cycles) -
                              1.0)});
    nt.addRow({"non-temporal CFORM", std::to_string(r_nt.cycles),
               std::to_string(r_nt.mem.l1.misses), "-"});
    std::printf("%s", nt.render().c_str());
    std::printf("(footnote 3 predicts the streaming variant helps by not "
                "polluting the L1 with\nfreed lines; in this model the "
                "sign depends on whether freed lines are touched\nagain "
                "before eviction — compare the L1 miss columns)\n");

    // Guard bytes sweep.
    std::printf("\n-- inter-object guard size --\n");
    TextTable guards({"guard bytes", "cycles", "heap footprint proxy",
                      "CFORMs"});
    for (std::size_t i = 0; i < std::size(guard_sizes); ++i) {
        const RunResult &r = result.at(0, guard_base + i);
        guards.addRow({std::to_string(guard_sizes[i]),
                       std::to_string(r.cycles),
                       std::to_string(r.heap.peakHeapBytes / 1024),
                       std::to_string(r.heap.cformsIssued)});
    }
    std::printf("%s", guards.render().c_str());
    std::printf("(REST-style guards: wider guards raise detection "
                "margin for wild linear\noverflows at a small space "
                "cost; 8B guards catch every +/-1 overflow)\n");
    return 0;
}
