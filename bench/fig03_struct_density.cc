/**
 * @file fig03_struct_density.cc
 * Figure 3: struct density histograms for the SPEC-like and V8-like
 * corpora, plus the kernel structs the workloads actually allocate.
 * The paper reports 45.7% (SPEC) and 41.0% (V8) of structs have at
 * least one padding byte.
 */

#include "bench/common.hh"
#include "layout/corpus.hh"
#include "layout/density.hh"
#include "workload/kernels.hh"

using namespace califorms;
using bench::Options;

namespace
{

void
report(const char *name, const DensityReport &r, double paper_padded)
{
    std::printf("\n-- %s --\n", name);
    std::printf("structs analyzed      : %zu\n", r.structCount);
    std::printf("structs with padding  : %zu (%.1f%%; paper: %.1f%%)\n",
                r.paddedCount, 100.0 * r.paddedFraction(),
                100.0 * paper_padded);
    std::printf("total padding bytes   : %zu (%.1f%% of struct bytes)\n",
                r.totalPaddingBytes,
                100.0 * static_cast<double>(r.totalPaddingBytes) /
                    static_cast<double>(r.totalFieldBytes +
                                        r.totalPaddingBytes));
    std::printf("density histogram (fraction of structs per bin):\n%s",
                r.histogram.render(50).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner("Figure 3 - struct density histogram",
                  "45.7% of SPEC structs and 41.0% of V8 structs have "
                  ">=1 padding byte",
                  opt);

    const auto spec = generateCorpus(specCorpusParams(), 42);
    report("SPEC CPU2006-like corpus", analyzeDensity(spec), 0.457);

    const auto v8 = generateCorpus(v8CorpusParams(), 43);
    report("V8-like corpus", analyzeDensity(v8), 0.410);

    // Bonus: the density pass over the structs the workload kernels
    // actually allocate (the types the performance experiments see).
    std::vector<StructDefPtr> kernel_structs;
    for (const auto &b : spec2006Suite())
        for (const auto &def : kernelStructs(b.name))
            kernel_structs.push_back(def);
    report("workload kernel structs", analyzeDensity(kernel_structs),
           0.457);
    return 0;
}
