/**
 * @file repl_policies.cc
 * Replacement-policy laboratory: the adversarial microworkloads
 * (thrash, scan, mixed) across the pluggable policies (lru, random,
 * dip, drrip, ship) at two hierarchy depths. Thrash is the classic
 * LRU worst case (cyclic set just over the LLC); scan alternates a
 * reused hot loop with never-reused streaming episodes that flush an
 * LRU L2; mixed CFORM-protects its hot objects so the per-level
 * repl.cformEvictions counters show whether a policy preferentially
 * evicts califormed lines.
 *
 * This harness is the fifth CI perf anchor: the bench-baseline
 * workflow job runs it with --quick --json and gates merges on the
 * committed BENCH_repl.json trajectory (see tools/bench_gate.py),
 * alongside BENCH_hierarchy.json, BENCH_workloads.json,
 * BENCH_memlp.json and BENCH_multicore.json.
 */

#include "bench/common.hh"

using namespace califorms;
using bench::Options;

namespace
{

/** The value a crossKey axis assigned to @p key on this variant. */
std::string
setValue(const exp::Variant &v, const std::string &key)
{
    for (const auto &[k, value] : v.sets)
        if (k == key)
            return value;
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Replacement-policy laboratory - adversarial microworkloads "
        "across the pluggable policies",
        "beyond Sec. 8: scan/thrash resistance and califormed-victim "
        "selection per policy",
        opt);

    exp::CampaignSpec spec;
    spec.name = "repl_policies";
    for (const auto &b : adversarialSuite())
        spec.suite.push_back(&b);
    // The generators ignore layouts: one non-randomized variant,
    // crossed with the hierarchy depth and the policy axis.
    std::vector<exp::Variant> base = {
        {"base", InsertionPolicy::None, 0, 0, std::nullopt, false, {}}};
    spec.variants = exp::CampaignSpec::crossKey(
        exp::CampaignSpec::crossLevels(base, {2, 3}),
        "mem.repl_policy", {"lru", "random", "dip", "drrip", "ship"});

    const auto result = bench::runCampaign(opt, spec);

    TextTable table({"workload", "levels", "policy", "cycles", "ipc",
                     "l2miss%", "l3miss%", "cformEvict", "victimRate"});
    for (std::size_t b = 0; b < spec.suite.size(); ++b) {
        for (std::size_t v = 0; v < spec.variants.size(); ++v) {
            const RunResult &r = result.at(b, v);
            const double evictions = static_cast<double>(
                r.mem.l1.evictions + r.mem.l2.evictions +
                r.mem.l3.evictions);
            const double cform = static_cast<double>(
                r.mem.l1.cformEvictions + r.mem.l2.cformEvictions +
                r.mem.l3.cformEvictions);
            table.addRow(
                {spec.suite[b]->name,
                 std::to_string(spec.variants[v].levels),
                 setValue(spec.variants[v], "mem.repl_policy"),
                 TextTable::num(static_cast<double>(r.cycles), 0),
                 TextTable::num(
                     r.cycles ? static_cast<double>(r.instructions) /
                                    static_cast<double>(r.cycles)
                              : 0.0,
                     3),
                 TextTable::num(100.0 * r.mem.l2.missRate(), 2),
                 TextTable::num(100.0 * r.mem.l3.missRate(), 2),
                 TextTable::num(cform, 0),
                 TextTable::num(evictions ? cform / evictions : 0.0,
                                4)});
        }
    }
    std::printf("%s", table.render().c_str());

    std::printf(
        "\nlru flushes its hot set on every scan episode and misses "
        "the whole thrash\nloop; the rrip pair (drrip, ship) ages the "
        "never-reused scan lines out first,\nso their hot-set miss "
        "rates collapse. cformEvict is nonzero only on mixed,\nwhose "
        "hot objects carry security bytes - a policy that victimizes "
        "califormed\nlines shows up directly in victimRate.\n");
    return 0;
}
