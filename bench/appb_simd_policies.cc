/**
 * @file appb_simd_policies.cc
 * Appendix B: handling SIMD/vector instructions. The paper sketches
 * three alternatives for wide loads over califormed data; this harness
 * quantifies their trade-offs on a vectorized sweep over an array of
 * structs whose padding bytes are blacklisted:
 *
 *  (1) precise gathers  — byte-exact, no false positives, extra lane
 *                         micro-ops per vector;
 *  (2) line exception   — fast wide loads, but every vector spanning a
 *                         security byte false-positives;
 *  (3) propagate mask   — fast wide loads, poison bits in the register,
 *                         trap only on consumption.
 */

#include "bench/common.hh"
#include "alloc/heap.hh"
#include "layout/policy.hh"

using namespace califorms;
using bench::Options;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner("Appendix B - SIMD/vector load policies",
                  "three alternatives for wide loads over security bytes",
                  opt);

    // A vector-friendly struct: 48B of floats plus padded flags, so a
    // 64B vector load covering one object always spans security bytes.
    auto def = std::make_shared<StructDef>(
        "simd_elem",
        std::vector<Field>{{"v", Type::array(Type::floatType(), 12)},
                           {"flag", Type::charType()}});
    LayoutTransformer t(InsertionPolicy::Opportunistic, PolicyParams{},
                        5);

    const std::size_t elems = 16384;
    const unsigned vec = 64;
    const std::size_t iters = opt.quick ? 2 : 8;

    TextTable table({"policy", "cycles", "exceptions at load",
                     "poisoned registers", "notes"});

    for (auto policy : {MemorySystem::SimdPolicy::PreciseGather,
                        MemorySystem::SimdPolicy::LineException,
                        MemorySystem::SimdPolicy::PropagateMask}) {
        Machine machine;
        HeapAllocator heap(machine);
        auto layout = std::make_shared<SecureLayout>(t.transform(*def));
        const Addr base = heap.allocate(layout, elems);
        auto &mem = machine.memorySystem();

        Cycles total_latency = 0;
        std::size_t faults = 0;
        std::size_t poisoned = 0;
        const Addr vbase = roundUp(base, vec);
        const std::size_t vectors =
            (elems * layout->size - (vbase - base)) / vec;
        for (std::size_t it = 0; it < iters; ++it) {
            for (std::size_t i = 0; i < vectors; ++i) {
                const auto r =
                    mem.wideLoad(vbase + i * vec, vec, policy);
                total_latency += r.latency;
                faults += r.faulted;
                poisoned += r.registerMask != 0;
            }
        }

        const char *name = policy ==
                                   MemorySystem::SimdPolicy::PreciseGather
                               ? "precise gather"
                           : policy ==
                                   MemorySystem::SimdPolicy::LineException
                               ? "line exception"
                               : "propagate mask";
        const char *note =
            policy == MemorySystem::SimdPolicy::PreciseGather
                ? "byte exact, +1 uop/lane"
            : policy == MemorySystem::SimdPolicy::LineException
                ? "every fault here is a false positive"
                : "trap deferred to first use";
        table.addRow({name, std::to_string(total_latency),
                      std::to_string(faults), std::to_string(poisoned),
                      note});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n(the struct's opportunistic security bytes sit inside "
                "nearly every 64B vector,\nso policy (2) floods the "
                "handler while (1) pays lane micro-ops and (3) defers\n"
                "the check to consumption — the trade-off Appendix B "
                "leaves as future work)\n");
    return 0;
}
