/**
 * @file micro_linecodec.cc
 * Google-benchmark microbenchmarks of the line codecs: sentinel
 * search, spill/fill conversion (Algorithms 1-2), the Appendix A
 * variants, and CFORM application. These are the software-model
 * analogues of the datapath blocks Table 2 synthesizes.
 */

#include <benchmark/benchmark.h>

#include "core/cform.hh"
#include "core/l1_variants.hh"
#include "core/sentinel.hh"
#include "util/rng.hh"

namespace califorms
{
namespace
{

BitVectorLine
randomLine(Rng &rng, unsigned security_bytes)
{
    BitVectorLine line;
    for (auto &b : line.data.bytes)
        b = static_cast<std::uint8_t>(rng.next() & 0xff);
    unsigned placed = 0;
    while (placed < security_bytes) {
        const unsigned i =
            static_cast<unsigned>(rng.nextBelow(lineBytes));
        if (!line.isSecurityByte(i)) {
            line.mask |= 1ull << i;
            ++placed;
        }
    }
    line.canonicalize();
    return line;
}

void
BM_FindSentinel(benchmark::State &state)
{
    Rng rng(1);
    const BitVectorLine line =
        randomLine(rng, static_cast<unsigned>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(findSentinel(line));
}
BENCHMARK(BM_FindSentinel)->Arg(1)->Arg(4)->Arg(16)->Arg(63);

void
BM_Spill(benchmark::State &state)
{
    Rng rng(2);
    const BitVectorLine line =
        randomLine(rng, static_cast<unsigned>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(spillLine(line));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * lineBytes);
}
BENCHMARK(BM_Spill)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(63);

void
BM_Fill(benchmark::State &state)
{
    Rng rng(3);
    const SentinelLine line = spillLine(
        randomLine(rng, static_cast<unsigned>(state.range(0))));
    for (auto _ : state)
        benchmark::DoNotOptimize(fillLine(line));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * lineBytes);
}
BENCHMARK(BM_Fill)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(63);

void
BM_RoundTrip(benchmark::State &state)
{
    Rng rng(4);
    const BitVectorLine line =
        randomLine(rng, static_cast<unsigned>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(fillLine(spillLine(line)));
}
BENCHMARK(BM_RoundTrip)->Arg(4)->Arg(32);

void
BM_DecodeMaskOnly(benchmark::State &state)
{
    Rng rng(5);
    const SentinelLine line = spillLine(randomLine(rng, 8));
    for (auto _ : state)
        benchmark::DoNotOptimize(decodeMask(line));
}
BENCHMARK(BM_DecodeMaskOnly);

void
BM_EncodeCal4B(benchmark::State &state)
{
    Rng rng(6);
    const BitVectorLine line = randomLine(rng, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(encodeCal4B(line));
}
BENCHMARK(BM_EncodeCal4B);

void
BM_EncodeCal1B(benchmark::State &state)
{
    Rng rng(7);
    const BitVectorLine line = randomLine(rng, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(encodeCal1B(line));
}
BENCHMARK(BM_EncodeCal1B);

void
BM_ApplyCform(benchmark::State &state)
{
    Rng rng(8);
    const CformOp set = makeSetOp(0, 0x00ff00ff00ff00ffull);
    const CformOp unset = makeUnsetOp(0, 0x00ff00ff00ff00ffull);
    BitVectorLine line;
    for (auto _ : state) {
        benchmark::DoNotOptimize(applyCform(line, set));
        benchmark::DoNotOptimize(applyCform(line, unset));
    }
}
BENCHMARK(BM_ApplyCform);

} // namespace
} // namespace califorms
