/**
 * @file table2_vlsi.cc
 * Table 2: area, delay and power of the baseline 32KB direct mapped L1
 * and L1 Califorms (califorms-bitvector), plus the fill and spill
 * conversion modules, from the structural gate-level model.
 *
 * Paper (TSMC 65nm + ARM Artisan):
 *   Baseline      347,329 GE  1.62ns  15.84mW
 *   L1 Califorms  412,264 GE  1.65ns  16.17mW (+18.69% area, +1.85%
 *                 delay, +2.12% power)
 *   Fill   8,957 GE  1.43ns  0.18mW
 *   Spill 34,562 GE  5.50ns  0.52mW
 */

#include <cstdio>

#include "util/table.hh"
#include "vlsi/designs.hh"

using namespace califorms;

int
main()
{
    std::printf("Table 2 - VLSI synthesis model "
                "(structural gate-level, 65nm-class library)\n\n");

    CircuitBuilder builder;
    L1Geometry geometry;

    const auto base = synthesizeL1(builder, geometry,
                                   L1Variant::Baseline);
    const auto cal8 = synthesizeL1(builder, geometry,
                                   L1Variant::Califorms8B);
    auto fill = synthesizeFillModule(builder);
    fill.delayNs += builder.library().fixedDelayNs;
    auto spill = synthesizeSpillModule(builder);
    spill.delayNs += builder.library().fixedDelayNs;

    TextTable main_table({"design", "area (GE)", "delay (ns)",
                          "power (mW)", "area ovh", "delay ovh",
                          "power ovh"});
    main_table.addRow({"Baseline", TextTable::num(base.areaGe, 0),
                       TextTable::num(base.delayNs, 2),
                       TextTable::num(base.powerMw, 2), "-", "-", "-"});
    main_table.addRow(
        {"L1 Califorms", TextTable::num(cal8.areaGe, 0),
         TextTable::num(cal8.delayNs, 2),
         TextTable::num(cal8.powerMw, 2),
         TextTable::pct(cal8.areaGe / base.areaGe - 1.0),
         TextTable::pct(cal8.delayNs / base.delayNs - 1.0),
         TextTable::pct(cal8.powerMw / base.powerMw - 1.0)});
    std::printf("%s\n", main_table.render().c_str());

    TextTable conv_table({"module", "area (GE)", "delay (ns)",
                          "power (mW)", "paper"});
    conv_table.addRow({"Fill (Alg. 2 / Fig. 9)",
                       TextTable::num(fill.areaGe, 0),
                       TextTable::num(fill.delayNs, 2),
                       TextTable::num(fill.powerMw, 2),
                       "8,957 GE 1.43ns 0.18mW"});
    conv_table.addRow({"Spill (Alg. 1 / Fig. 8)",
                       TextTable::num(spill.areaGe, 0),
                       TextTable::num(spill.delayNs, 2),
                       TextTable::num(spill.powerMw, 2),
                       "34,562 GE 5.50ns 0.52mW"});
    std::printf("%s\n", conv_table.render().c_str());

    std::printf("paper baseline: 347,329 GE / 1.62ns / 15.84mW; "
                "L1 Califorms overheads:\n+18.69%% area, +1.85%% delay, "
                "+2.12%% power. Key relations preserved: the fill\n"
                "latency fits inside the L1 access period (%.2fns < "
                "%.2fns) and the spill's four\nsuccessive find-index "
                "blocks make it the long pole (%.1fx the fill delay).\n",
                fill.delayNs, base.delayNs, spill.delayNs / fill.delayNs);
    return 0;
}
