/**
 * @file fig12_intelligent_policy.cc
 * Figure 12: the intelligent insertion policy (random security bytes
 * around arrays and pointers only), with and without CFORM
 * instructions. Paper: ~0.2% without CFORM, 1.5-2.0% average with
 * CFORM; gobmk (16.1%) and perlbench (7.2%) are the CFORM-heavy
 * outliers.
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace califorms;
using bench::Options;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Figure 12 - intelligent insertion policy",
        "avg ~0.2% without CFORM, 1.5-2.0% with CFORM; gobmk 16.1%, "
        "perlbench 7.2%",
        opt);

    exp::CampaignSpec spec;
    spec.name = "fig12_intelligent_policy";
    spec.suite = bench::softwareEvalSuite();
    spec.variants = {
        {"base", InsertionPolicy::None, 0, 0, false, false, {}}};
    for (const bool cform : {false, true})
        for (const std::size_t span : {3u, 5u, 7u}) {
            exp::Variant v;
            v.label = "1-" + std::to_string(span) + "B" +
                      (cform ? " CFORM" : "");
            v.policy = InsertionPolicy::Intelligent;
            v.maxSpan = span;
            v.cform = cform;
            spec.variants.push_back(std::move(v));
        }

    const auto result = bench::runCampaign(opt, spec);
    const std::size_t n_variants = spec.variants.size();

    TextTable table({"benchmark", "1-3B", "1-5B", "1-7B", "1-3B CFORM",
                     "1-5B CFORM", "1-7B CFORM"});
    std::vector<double> base;
    std::vector<std::vector<double>> per_config(n_variants - 1);
    for (std::size_t i = 0; i < spec.suite.size(); ++i) {
        base.push_back(result.meanCycles(i, 0));
        std::vector<std::string> row = {spec.suite[i]->name};
        for (std::size_t v = 1; v < n_variants; ++v) {
            const double cycles = result.meanCycles(i, v);
            per_config[v - 1].push_back(cycles);
            row.push_back(TextTable::pct(cycles / base[i] - 1.0));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row = {"AVG"};
    for (auto &config_cycles : per_config)
        avg_row.push_back(
            TextTable::pct(averageSlowdown(base, config_cycles)));
    table.addRow(avg_row);
    std::printf("%s", table.render().c_str());

    std::printf("\npaper: without CFORM the three variants average "
                "~0.2%%; with CFORM the average\nis 1.5-2.0%% and no "
                "benchmark except gobmk/perlbench exceeds 5%%.\n");
    return 0;
}
