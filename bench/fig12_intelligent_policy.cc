/**
 * @file fig12_intelligent_policy.cc
 * Figure 12: the intelligent insertion policy (random security bytes
 * around arrays and pointers only), with and without CFORM
 * instructions. Paper: ~0.2% without CFORM, 1.5-2.0% average with
 * CFORM; gobmk (16.1%) and perlbench (7.2%) are the CFORM-heavy
 * outliers.
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace califorms;
using bench::Options;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Figure 12 - intelligent insertion policy",
        "avg ~0.2% without CFORM, 1.5-2.0% with CFORM; gobmk 16.1%, "
        "perlbench 7.2%",
        opt);

    const std::size_t spans[] = {3, 5, 7};
    const auto suite = bench::softwareEvalSuite();

    std::vector<double> base;
    for (const auto *b : suite) {
        RunConfig config;
        config.scale = opt.scale;
        config.withCform(false); // the original, uninstrumented binary
        base.push_back(
            static_cast<double>(runBenchmark(*b, config).cycles));
    }

    TextTable table({"benchmark", "1-3B", "1-5B", "1-7B", "1-3B CFORM",
                     "1-5B CFORM", "1-7B CFORM"});
    std::vector<std::vector<double>> per_config(6);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        std::vector<std::string> row = {suite[i]->name};
        std::size_t col = 0;
        for (bool cform : {false, true}) {
            for (std::size_t span : spans) {
                RunConfig config;
                config.scale = opt.scale;
                config.policy = InsertionPolicy::Intelligent;
                config.policyParams.maxSpan = span;
                config.withCform(cform);
                const double cycles = bench::meanCyclesOverSeeds(
                    *suite[i], config, opt.seeds);
                per_config[col].push_back(cycles);
                row.push_back(TextTable::pct(cycles / base[i] - 1.0));
                ++col;
            }
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row = {"AVG"};
    for (auto &config_cycles : per_config)
        avg_row.push_back(
            TextTable::pct(averageSlowdown(base, config_cycles)));
    table.addRow(avg_row);
    std::printf("%s", table.render().c_str());

    std::printf("\npaper: without CFORM the three variants average "
                "~0.2%%; with CFORM the average\nis 1.5-2.0%% and no "
                "benchmark except gobmk/perlbench exceeds 5%%.\n");
    return 0;
}
