/**
 * @file sec73_derandomization.cc
 * Section 7.3: derandomization attack analysis. Two experiments:
 *
 * 1. Memory scan survival — the closed form (1 - P/N)^O for scanning O
 *    objects with security byte density P/N without tripping, checked
 *    against a Monte-Carlo attack on real califormed heap objects.
 *    The paper notes that with 10% security bytes the success
 *    probability reaches 1e-20 by O = 250.
 *
 * 2. Guessing a single span — with 1..7-byte random spans the attacker
 *    must guess each span's size: success 1/7^n, compounding in the
 *    number of spans n.
 */

#include <cmath>
#include <cstdio>

#include "alloc/heap.hh"
#include "bench/common.hh"
#include "security/attacks.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace califorms;
using bench::Options;

namespace
{

/** One attack: scan `objects` random objects byte by byte; success if
 *  no security byte is touched. */
bool
scanAttack(Machine &machine, const std::vector<Addr> &objs,
           std::size_t object_size, std::size_t objects, Rng &rng)
{
    for (std::size_t i = 0; i < objects; ++i) {
        const Addr base = objs[rng.nextBelow(objs.size())];
        const std::size_t offset = rng.nextBelow(object_size);
        const Addr b = base + offset;
        if (machine.securityMask(b) & (1ull << lineOffset(b)))
            return false; // tripped the blacklist
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner("Section 7.3 - derandomization attack analysis",
                  "(1-P/N)^O scan survival; 1/7^n span guessing", opt);

    // Build a heap of full-policy objects with ~10% security bytes.
    Machine machine;
    HeapAllocator heap(machine);
    auto def = std::make_shared<StructDef>(
        "victim",
        std::vector<Field>{{"a", Type::longType()},
                           {"buf", Type::array(Type::charType(), 48)},
                           {"b", Type::longType()},
                           {"c", Type::array(Type::longType(), 4)}});
    LayoutTransformer t(InsertionPolicy::Full, PolicyParams{1, 3, 1},
                        77);
    auto layout = std::make_shared<SecureLayout>(t.transform(*def));
    const double density =
        static_cast<double>(layout->securityByteCount()) /
        static_cast<double>(layout->size);

    std::vector<Addr> objs;
    for (int i = 0; i < 512; ++i)
        objs.push_back(heap.allocate(layout));

    std::printf("victim object: %zu bytes, %zu security bytes "
                "(density P/N = %.3f)\n\n",
                layout->size, layout->securityByteCount(), density);

    TextTable table({"objects scanned O", "closed form (1-P/N)^O",
                     "monte carlo survival", "trials"});
    Rng rng(123);
    const std::size_t trials = opt.quick ? 2000 : 20000;
    for (std::size_t objects : {1u, 2u, 5u, 10u, 20u, 50u, 100u}) {
        const double closed =
            std::pow(1.0 - density, static_cast<double>(objects));
        std::size_t survived = 0;
        for (std::size_t trial = 0; trial < trials; ++trial)
            survived += scanAttack(machine, objs, layout->size, objects,
                                   rng);
        table.addRow({std::to_string(objects),
                      TextTable::num(closed, 6),
                      TextTable::num(static_cast<double>(survived) /
                                         static_cast<double>(trials),
                                     6),
                      std::to_string(trials)});
    }
    std::printf("%s\n", table.render().c_str());

    // Extrapolate the paper's 10^-20 claim.
    const double p10 = 0.10;
    std::printf("closed form with P/N = 0.10 at O = 250: (1-0.1)^250 "
                "= %.2e\n(the paper quotes ~1e-20; either way the scan "
                "survival is vanishingly small)\n\n",
                std::pow(1.0 - p10, 250.0));

    TextTable guess({"spans to guess n", "success 1/7^n"});
    for (int n = 1; n <= 8; ++n)
        guess.addRow({std::to_string(n),
                      TextTable::num(std::pow(1.0 / 7.0, n), 10)});
    std::printf("%s", guess.render().c_str());
    std::printf("\n(1..7-byte random spans give 7 equally likely sizes "
                "per span; each additional\nspan multiplies the "
                "attacker's work by 7 — Section 7.3)\n");

    // BROP-style respawn attack (Section 7.3 mitigation discussion):
    // restart-after-crash with the *same* layout lets the attacker
    // accumulate crash knowledge; respawning with a re-randomized
    // padding layout resets it.
    std::printf("\n-- BROP-style respawn attack --\n");
    TextTable brop({"respawn layout", "succeeded", "crashes", "probes"});
    for (bool rerandomize : {false, true}) {
        Machine m;
        AttackSimulator attacker(m, 2024);
        const auto r = attacker.bropAttack(
            *def, InsertionPolicy::Full, PolicyParams{}, /*target=*/2,
            /*max_crashes=*/opt.quick ? 200 : 2000, rerandomize);
        brop.addRow({rerandomize ? "re-randomized" : "identical",
                     r.succeeded ? "yes" : "no",
                     std::to_string(r.crashes),
                     std::to_string(r.probes)});
    }
    std::printf("%s", brop.render().c_str());
    std::printf("(with identical respawns the spans fall in at most "
                "#span-bytes crashes; the\npaper's mitigation — spawn "
                "with a different padding layout — holds "
                "indefinitely)\n");
    return 0;
}
