/**
 * @file memlevel_parallelism.cc
 * Memory-level parallelism: the synthetic workloads across the
 * non-blocking timing grid — mem.mshr_entries 0/4/16 crossed with
 * mem.dram_banks 0/8. mshr=0,banks=0 is the legacy untimed machine;
 * mshr=0,banks=8 is the blocking machine (each miss waits out the
 * previous one on the banked timeline); mshr>0 overlaps misses, so
 * miss-parallel streams close the gap the blocking column opens. The
 * base machine runs a 32-entry write-back queue so the indexed
 * victim-buffer path is exercised under the same traffic.
 *
 * This harness is the fourth CI perf anchor: the bench-baseline
 * workflow job runs it with --quick --json and gates merges on the
 * committed BENCH_memlp.json trajectory (see tools/bench_gate.py),
 * alongside BENCH_hierarchy.json, BENCH_workloads.json and
 * BENCH_multicore.json.
 */

#include "bench/common.hh"

using namespace califorms;
using bench::Options;

namespace
{

/** The value a crossKey axis assigned to @p key on this variant. */
std::string
setValue(const exp::Variant &v, const std::string &key)
{
    for (const auto &[k, value] : v.sets)
        if (k == key)
            return value;
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Memory-level parallelism - MSHRs and banked DRAM timing "
        "across the synthetic workloads",
        "beyond Sec. 8: non-blocking miss path vs the blocking "
        "machine, row-buffer locality",
        opt);

    exp::CampaignSpec spec;
    spec.name = "memlevel_parallelism";
    for (const auto &b : synthSuite())
        spec.suite.push_back(&b);
    // The generators ignore layouts: one non-randomized variant,
    // crossed with the MSHR-depth and DRAM-bank axes.
    std::vector<exp::Variant> base = {
        {"base", InsertionPolicy::None, 0, 0, std::nullopt, false, {}}};
    spec.variants = exp::CampaignSpec::crossKey(
        exp::CampaignSpec::crossKey(base, "mem.mshr_entries",
                                    {"0", "4", "16"}),
        "mem.dram_banks", {"0", "8"});
    spec.base.machine.mem.wbQueueEntries = 32;

    const auto result = bench::runCampaign(opt, spec);

    TextTable table({"workload", "mshrs", "banks", "cycles", "ipc",
                     "stall", "coalesced", "rowHit", "rowConf",
                     "bankWait"});
    for (std::size_t b = 0; b < spec.suite.size(); ++b) {
        for (std::size_t v = 0; v < spec.variants.size(); ++v) {
            const RunResult &r = result.at(b, v);
            table.addRow(
                {spec.suite[b]->name,
                 setValue(spec.variants[v], "mem.mshr_entries"),
                 setValue(spec.variants[v], "mem.dram_banks"),
                 TextTable::num(static_cast<double>(r.cycles), 0),
                 TextTable::num(
                     r.cycles ? static_cast<double>(r.instructions) /
                                    static_cast<double>(r.cycles)
                              : 0.0,
                     3),
                 TextTable::num(
                     static_cast<double>(r.mem.mshrStallCycles), 0),
                 TextTable::num(
                     static_cast<double>(r.mem.mshrCoalesced), 0),
                 TextTable::num(static_cast<double>(r.mem.dramRowHits),
                                0),
                 TextTable::num(
                     static_cast<double>(r.mem.dramRowConflicts), 0),
                 TextTable::num(
                     static_cast<double>(r.mem.dramBankConflictCycles),
                     0)});
        }
    }
    std::printf("%s", table.render().c_str());

    std::printf(
        "\nmshrs=0 banks=0 reproduces the legacy untimed machine "
        "exactly; banks>0\nwith mshrs=0 is the blocking machine "
        "(misses serialize on the banked\ntimeline), and raising the "
        "MSHR depth lets independent misses overlap -\nstall cycles "
        "fall and cycle counts drop back toward the untimed bound.\n");
    return 0;
}
