/**
 * @file appa_l1_variant_cost.cc
 * Appendix A, taken one step further than the paper: what do the
 * denser L1 metadata formats cost in *performance*? Table 7 gives the
 * hit-delay overheads (Califorms-4B +49%, Califorms-1B +22%); on a
 * 4-cycle L1 that is +2 and +1 cycles respectively. This harness runs
 * the workload suite under each format, quantifying the paper's
 * suggestion that the 1B variant "can be a good alternative ... in
 * domains where area budget is more tight and/or less performance
 * critical; e.g., embedded or IoT systems".
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace califorms;
using bench::Options;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner("Appendix A extension - L1 variant performance cost",
                  "Table 7 delay overheads applied to the L1 hit path",
                  opt);

    // Baseline (variant 0): 8B format, intelligent policy with CFORM —
    // the recommended deployment. The others swap only the L1 format.
    auto format_variant = [](const char *label, L1Format format) {
        exp::Variant v;
        v.label = label;
        v.policy = InsertionPolicy::Intelligent;
        v.tweak = [format](RunConfig &c) {
            c.machine.mem.l1Format = format;
        };
        return v;
    };
    exp::CampaignSpec spec;
    spec.name = "appa_l1_variant_cost";
    spec.suite = bench::softwareEvalSuite();
    spec.variants = {
        format_variant("califorms-8B (+0 cycles)",
                       L1Format::BitVector8B),
        format_variant("califorms-1B (+1 cycle)", L1Format::Cal1B),
        format_variant("califorms-4B (+2 cycles)", L1Format::Cal4B),
    };

    const auto result = bench::runCampaign(opt, spec);

    std::vector<double> base;
    for (std::size_t i = 0; i < spec.suite.size(); ++i)
        base.push_back(result.meanCycles(i, 0));

    TextTable table({"L1 format", "avg slowdown vs 8B", "max"});
    for (std::size_t v = 0; v < spec.variants.size(); ++v) {
        std::vector<double> with;
        double worst = 0;
        for (std::size_t i = 0; i < spec.suite.size(); ++i) {
            const double cycles = result.meanCycles(i, v);
            with.push_back(cycles);
            worst = std::max(worst, cycles / base[i] - 1.0);
        }
        table.addRow({spec.variants[v].label,
                      TextTable::pct(averageSlowdown(base, with)),
                      TextTable::pct(worst)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n(every L1 hit pays the format's extra decode "
                "latency; the 1B variant trades a\nsmall uniform "
                "slowdown for 86%% less metadata SRAM than the 8B "
                "design — Table 7)\n");
    return 0;
}
