/**
 * @file fig10_extra_latency.cc
 * Figure 10: slowdown when both the L2 and L3 caches incur one extra
 * cycle of access latency — the paper's pessimistic assumption for the
 * sentinel conversion hardware. Paper: 0.24% (hmmer) to 1.37%
 * (xalancbmk), average 0.83%. Also prints the Table 3 configuration.
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace califorms;
using bench::Options;

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);
    if (opt.scale < 1.0 && !opt.quick)
        opt.scale = 1.0; // cheap experiment; run at full scale
    bench::banner("Figure 10 - +1 cycle L2/L3 access latency",
                  "slowdown 0.24%..1.37%, average 0.83%", opt);

    std::printf("\nTable 3 - simulated system configuration:\n%s\n",
                describeParams(MachineParams{}).c_str());

    exp::CampaignSpec spec;
    spec.name = "fig10_extra_latency";
    spec.suite = bench::fullSuite();
    // Original binaries both times; only the cache latency differs.
    spec.variants = {
        {"base", InsertionPolicy::None, 0, 0, false, false, {}},
        {"+1cyc L2/L3", InsertionPolicy::None, 0, 0, false, false,
         [](RunConfig &c) { c.machine.mem.extraL2L3Latency = 1; }},
    };

    const auto result = bench::runCampaign(opt, spec);

    TextTable table({"benchmark", "base cycles", "+1cyc cycles",
                     "slowdown"});
    std::vector<double> base, with;
    for (std::size_t i = 0; i < spec.suite.size(); ++i) {
        const RunResult &r0 = result.at(i, 0);
        const RunResult &r1 = result.at(i, 1);
        base.push_back(static_cast<double>(r0.cycles));
        with.push_back(static_cast<double>(r1.cycles));
        table.addRow({spec.suite[i]->name, std::to_string(r0.cycles),
                      std::to_string(r1.cycles),
                      TextTable::pct(slowdownVs(r0, r1))});
    }
    table.addRow({"AVG", "", "",
                  TextTable::pct(averageSlowdown(base, with))});
    std::printf("%s", table.render().c_str());
    std::printf("\npaper: min 0.24%% (hmmer), max 1.37%% (xalancbmk), "
                "avg 0.83%%\n");
    return 0;
}
