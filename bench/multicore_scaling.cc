/**
 * @file multicore_scaling.cc
 * Multi-core scaling of the synthetic workloads: every generator
 * across core.count 1/2/4 with coherence off and on (MSI directory).
 * Each core replays its own seeded stream through a private L1; the
 * shared L2/LLC/DRAM absorb the combined footprint, and under MSI the
 * write-shared lines (ring control words, the zipf hot set) ping-pong
 * between the private L1s — califormed lines pay the sentinel encode
 * on every surrender (coherence.convUnderInval).
 *
 * This harness is the third CI perf anchor: the bench-baseline
 * workflow job runs it with --quick --json and gates merges on the
 * committed BENCH_multicore.json trajectory (see tools/bench_gate.py),
 * alongside BENCH_hierarchy.json and BENCH_workloads.json.
 */

#include "bench/common.hh"

using namespace califorms;
using bench::Options;

namespace
{

/** The value a crossKey axis assigned to @p key on this variant. */
std::string
setValue(const exp::Variant &v, const std::string &key)
{
    for (const auto &[k, value] : v.sets)
        if (k == key)
            return value;
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Multi-core scaling - synthetic workloads across core counts "
        "and coherence",
        "beyond Sec. 8: private L1s + shared LLC with MSI "
        "invalidation coherence",
        opt);

    exp::CampaignSpec spec;
    spec.name = "multicore_scaling";
    for (const auto &b : synthSuite())
        spec.suite.push_back(&b);
    // The generators ignore layouts: one non-randomized variant,
    // crossed with the core-count and coherence axes.
    std::vector<exp::Variant> base = {
        {"base", InsertionPolicy::None, 0, 0, std::nullopt, false, {}}};
    spec.variants = exp::CampaignSpec::crossKey(
        exp::CampaignSpec::crossKey(base, "core.count", {"1", "2", "4"}),
        "mem.coherence", {"none", "msi"});

    const auto result = bench::runCampaign(opt, spec);

    TextTable table({"workload", "cores", "coherence", "cycles", "ipc",
                     "dram", "invals", "recalls", "convInval"});
    for (std::size_t b = 0; b < spec.suite.size(); ++b) {
        for (std::size_t v = 0; v < spec.variants.size(); ++v) {
            const RunResult &r = result.at(b, v);
            table.addRow(
                {spec.suite[b]->name,
                 setValue(spec.variants[v], "core.count"),
                 setValue(spec.variants[v], "mem.coherence"),
                 TextTable::num(static_cast<double>(r.cycles), 0),
                 TextTable::num(
                     r.cycles ? static_cast<double>(r.instructions) /
                                    static_cast<double>(r.cycles)
                              : 0.0,
                     3),
                 TextTable::num(static_cast<double>(r.mem.dramAccesses),
                                0),
                 TextTable::num(
                     static_cast<double>(r.mem.invalidationsSent), 0),
                 TextTable::num(
                     static_cast<double>(r.mem.dirtyRecalls), 0),
                 TextTable::num(
                     static_cast<double>(r.mem.convUnderInval), 0)});
        }
    }
    std::printf("%s", table.render().c_str());

    std::printf(
        "\ncore.count=1 reproduces the single-requester machine "
        "exactly (coherence\ncounters stay zero, msi == none); adding "
        "cores multiplies the combined\nfootprint, and MSI charges the "
        "write-shared lines with invalidations,\ndirty recalls, and "
        "sentinel conversions under surrender.\n");
    return 0;
}
