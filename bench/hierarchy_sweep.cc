/**
 * @file hierarchy_sweep.cc
 * Hierarchy sweep: the full/3 CFORM configuration (the paper's headline
 * software setup) against the uninstrumented baseline across hierarchy
 * depths 1 (L1 + DRAM), 2 (+L2) and 3 (+L2+LLC, the Table 3 machine),
 * with the dirty write-back queue enabled — the multi-level counterpart
 * of Figure 11, exposing how much of the Califorms cost the deeper
 * levels absorb and how many fill/spill format conversions each depth
 * performs.
 *
 * This harness is also the CI perf anchor: the bench-baseline workflow
 * job runs it with --quick --json and gates merges on the committed
 * BENCH_hierarchy.json trajectory (see tools/bench_gate.py).
 */

#include "bench/common.hh"

using namespace califorms;
using bench::Options;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Hierarchy sweep - califorms across 1/2/3 cache levels",
        "L1<->L2 conversions per Sec. 5.2; deeper levels absorb miss "
        "cost",
        opt);

    exp::CampaignSpec spec;
    spec.name = "hierarchy_sweep";
    spec.suite = {&findBenchmark("mcf"), &findBenchmark("milc")};
    // An 8-entry write-back queue (the miss-queue path) is part of the
    // modelled machine here; conversion latencies stay at the paper's
    // hidden-by-the-fill default of 0 cycles.
    spec.base.machine.mem.wbQueueEntries = 8;
    spec.variants = exp::CampaignSpec::crossLevels(
        {
            {"base", InsertionPolicy::None, 0, 0, false, false, {}},
            {"full/3 CFORM", InsertionPolicy::Full, 3, 0, true, true,
             {}},
        },
        {1, 2, 3});

    const auto result = bench::runCampaign(opt, spec);

    // Per-(benchmark, variant) seed average of one mem counter, summed
    // in unit order like meanCycles — every column of a row averages
    // the same seed set.
    const auto meanStat = [&result](std::size_t b, std::size_t v,
                                    auto field) {
        double sum = 0;
        std::size_t n = 0;
        for (const exp::RunUnit &unit : result.units) {
            if (unit.benchIndex != b || unit.variantIndex != v)
                continue;
            sum += static_cast<double>(
                field(result.results[unit.index].mem));
            ++n;
        }
        return sum / static_cast<double>(n);
    };

    TextTable table({"benchmark", "levels", "cycles", "slowdown",
                     "fills", "spills", "wbqFullDrains", "dram"});
    for (std::size_t b = 0; b < spec.suite.size(); ++b) {
        for (unsigned depth = 0; depth < 3; ++depth) {
            const std::size_t base_v = depth * 2;
            const std::size_t full_v = depth * 2 + 1;
            const double base_cycles = result.meanCycles(b, base_v);
            const double full_cycles = result.meanCycles(b, full_v);
            table.addRow(
                {spec.suite[b]->name, std::to_string(depth + 1),
                 TextTable::num(full_cycles, 0),
                 TextTable::pct(full_cycles / base_cycles - 1.0),
                 TextTable::num(meanStat(b, full_v,
                                         [](const MemSysStats &m) {
                                             return m.fills;
                                         }),
                                0),
                 TextTable::num(meanStat(b, full_v,
                                         [](const MemSysStats &m) {
                                             return m.spills;
                                         }),
                                0),
                 TextTable::num(meanStat(b, full_v,
                                         [](const MemSysStats &m) {
                                             return m.wbForcedDrains;
                                         }),
                                0),
                 TextTable::num(meanStat(b, full_v,
                                         [](const MemSysStats &m) {
                                             return m.dramAccesses;
                                         }),
                                0)});
        }
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nthe fill/spill codec runs at the L1 boundary "
                "wherever it is (L2 at levels>=2,\nDRAM at levels=1); "
                "deeper hierarchies trade DRAM traffic for extra "
                "conversions\nas califormed lines bounce between the "
                "L1 and the sentinel levels.\n");
    return 0;
}
