/**
 * @file attack_scenarios.cc
 * Red-team scenario laboratory: every registered attack scenario
 * (scan, probe, brop, heapspray, overflow, uaf, timing) replayed
 * against three victim insertion policies (none, full, intelligent).
 * The unprotected column shows each PoC succeeding; the califormed
 * columns show the security bytes converting those wins into
 * detections, and at what probe/crash/latency cost. The base config
 * enables the fill/spill conversion latencies so the timing side
 * channel has a real signal to measure.
 *
 * This harness is the seventh CI perf anchor: the bench-baseline
 * workflow job runs it with --quick --json and gates merges on the
 * committed BENCH_attacks.json trajectory (see tools/bench_gate.py),
 * alongside BENCH_hierarchy.json, BENCH_workloads.json,
 * BENCH_multicore.json, BENCH_memlp.json, BENCH_repl.json and
 * BENCH_fleet.json.
 */

#include "bench/common.hh"

using namespace califorms;
using bench::Options;

namespace
{

/** The value a crossKey axis assigned to @p key on this variant. */
std::string
setValue(const exp::Variant &v, const std::string &key)
{
    for (const auto &[k, value] : v.sets)
        if (k == key)
            return value;
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Red-team scenario laboratory - registered attack PoCs vs "
        "victim insertion policies",
        "Sec. 7.3: byte-granular blacklisting turns heap exploit "
        "primitives into detections",
        opt);

    exp::CampaignSpec spec;
    spec.name = "attack_scenarios";
    for (const auto &b : securitySuite())
        spec.suite.push_back(&b);
    // Conversion latencies on so the timing side channel has signal;
    // a few extra trials per cell smooth the success probabilities.
    spec.base.machine.mem.fillConvLatency = 3;
    spec.base.machine.mem.spillConvLatency = 5;
    spec.base.attack.seeds = 8;
    std::vector<exp::Variant> base = {
        {"none", InsertionPolicy::None, 0, 0, std::nullopt, false, {}},
        {"full", InsertionPolicy::Full, 7, 0, std::nullopt, true, {}},
        {"intelligent", InsertionPolicy::Intelligent, 7, 0,
         std::nullopt, true, {}}};
    // The baseline column is a genuinely unprotected heap: no CFORMs
    // means no intra-object spans, no inter-object guards, and no
    // blacklisted quarantine, so every PoC shows its undefended win.
    base[0].withSet("heap.use_cform", "false");
    spec.variants = exp::CampaignSpec::crossKey(
        base, "attack.scenario", attackScenarioNames());

    const auto result = bench::runCampaign(opt, spec);

    TextTable table({"scenario", "policy", "success_p", "detect_p",
                     "probes", "crashes", "bytes", "detectLat"});
    for (std::size_t v = 0; v < spec.variants.size(); ++v) {
        const RunResult &r = result.at(0, v);
        const double trials =
            r.security.trials ? static_cast<double>(r.security.trials)
                              : 1.0;
        table.addRow(
            {setValue(spec.variants[v], "attack.scenario"),
             policyName(spec.variants[v].policy),
             TextTable::num(
                 static_cast<double>(r.security.successes) / trials, 2),
             TextTable::num(
                 static_cast<double>(r.security.detections) / trials,
                 2),
             TextTable::num(static_cast<double>(r.security.probes), 0),
             TextTable::num(static_cast<double>(r.security.crashes), 0),
             TextTable::num(
                 static_cast<double>(r.security.bytesTouched), 0),
             TextTable::num(static_cast<double>(
                                r.security.detectionLatencyCycles),
                            0)});
    }
    std::printf("%s", table.render().c_str());

    std::printf(
        "\non the uncaliformed baseline the spray, overflow and "
        "stale-pointer primitives\nland silently (timing finds no gap "
        "to attack on this victim). under full/\nintelligent insertion "
        "the same loops trip a security byte within a handful\nof "
        "probes: success_p collapses while detect_p saturates, and "
        "detectLat\nrecords how few cycles each attacker life had. the "
        "exceptions prove the\npaper's point - brop still wins because "
        "these respawns reuse one layout\n(attack.brop_rerandomize "
        "closes it), and uaf outwaits the default quarantine\n"
        "(heap.quarantine_fraction=1 closes that).\n");
    return 0;
}
