/**
 * @file table7_l1_variants.cc
 * Table 7 (Appendix A): synthesis results for all three L1 Califorms
 * variants — the 8B dedicated bit vector array, the 4B in-security-byte
 * variant (Figure 14) and the 1B header-byte variant (Figure 15).
 *
 * Paper: Califorms-4B and -1B incur 49.38% and 22.22% extra L1 hit
 * delay versus the baseline (vs 1.85% for 8B) while cutting the area
 * overhead to 6.80% and 2.69% (vs 18.69%).
 */

#include <cstdio>

#include "util/table.hh"
#include "vlsi/designs.hh"

using namespace califorms;

int
main()
{
    std::printf("Table 7 - the three L1 Califorms variants "
                "(structural gate-level model)\n\n");

    CircuitBuilder builder;
    L1Geometry geometry;
    const auto rows = synthesizeAll(builder, geometry);
    const auto &base = rows[0].main;

    TextTable table({"design", "area (GE)", "delay (ns)", "power (mW)",
                     "area ovh", "delay ovh"});
    for (const auto &row : rows) {
        std::string area_ovh = "-";
        std::string delay_ovh = "-";
        if (&row != &rows[0]) {
            area_ovh = TextTable::pct(row.main.areaGe / base.areaGe -
                                      1.0);
            delay_ovh = TextTable::pct(row.main.delayNs / base.delayNs -
                                       1.0);
        }
        table.addRow({row.name, TextTable::num(row.main.areaGe, 0),
                      TextTable::num(row.main.delayNs, 2),
                      TextTable::num(row.main.powerMw, 2), area_ovh,
                      delay_ovh});
    }
    std::printf("%s\n", table.render().c_str());

    const auto &fill = rows[1].fill;
    const auto &spill = rows[1].spill;
    std::printf("fill module : %8.0f GE  %.2fns  %.2fmW\n", fill.areaGe,
                fill.delayNs, fill.powerMw);
    std::printf("spill module: %8.0f GE  %.2fns  %.2fmW\n", spill.areaGe,
                spill.delayNs, spill.powerMw);

    std::printf("\npaper Table 7 (area / delay / power):\n"
                "  Baseline      347,329 / 1.62 / 15.84\n"
                "  Califorms-8B  412,264 / 1.65 / 16.17  "
                "(+18.69%% area, +1.85%% delay)\n"
                "  Califorms-4B  370,972 / 2.42 / 17.95  "
                "(+6.80%% area, +49.38%% delay)\n"
                "  Califorms-1B  356,695 / 1.98 / 16.00  "
                "(+2.69%% area, +22.22%% delay)\n"
                "Relations preserved: 8B > 4B > 1B in area; "
                "4B > 1B > 8B in hit delay.\n");
    return 0;
}
