/**
 * @file workload_suite.cc
 * The synthetic workload suite: every src/workload generator (zipf,
 * stream, stackchurn, ring, attackmix) across hierarchy depths 1/2/3 —
 * the access-pattern space the SPEC-like kernels do not cover, as one
 * campaign. The generators take no layouts, so there is no policy
 * axis; what varies is how much of each pattern the deeper levels
 * absorb, and (attackmix only) the delivered security exceptions.
 *
 * This harness is the second CI perf anchor: the bench-baseline
 * workflow job runs it with --quick --json and gates merges on the
 * committed BENCH_workloads.json trajectory (see tools/bench_gate.py),
 * alongside BENCH_hierarchy.json.
 */

#include "bench/common.hh"

using namespace califorms;
using bench::Options;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner(
        "Synthetic workload suite - generators across 1/2/3 cache "
        "levels",
        "beyond Sec. 8.2: zipf/stream/stack/ring/attack access-pattern "
        "coverage",
        opt);

    exp::CampaignSpec spec;
    spec.name = "workload_suite";
    for (const auto &b : synthSuite())
        spec.suite.push_back(&b);
    // The generators ignore layouts entirely: one (non-randomized)
    // variant per depth, one seed.
    spec.variants = exp::CampaignSpec::crossLevels(
        {{"base", InsertionPolicy::None, 0, 0, std::nullopt, false,
          {}}},
        {1, 2, 3});

    const auto result = bench::runCampaign(opt, spec);

    TextTable table({"workload", "levels", "cycles", "ipc", "l1miss%",
                     "dram", "cforms", "faults"});
    for (std::size_t b = 0; b < spec.suite.size(); ++b) {
        for (std::size_t v = 0; v < spec.variants.size(); ++v) {
            const RunResult &r = result.at(b, v);
            table.addRow(
                {spec.suite[b]->name,
                 std::to_string(spec.variants[v].levels),
                 TextTable::num(static_cast<double>(r.cycles), 0),
                 TextTable::num(
                     r.cycles ? static_cast<double>(r.instructions) /
                                    static_cast<double>(r.cycles)
                              : 0.0,
                     3),
                 TextTable::pct(r.mem.l1.missRate()),
                 TextTable::num(static_cast<double>(r.mem.dramAccesses),
                                0),
                 TextTable::num(static_cast<double>(r.mem.cformOps),
                                0),
                 TextTable::num(
                     static_cast<double>(r.mem.securityFaults), 0)});
        }
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nzipf's hot set collapses into the upper levels as "
                "depth grows; stream is\nbandwidth-bound at every "
                "depth; stackchurn exercises the CFORM set/unset\nhot "
                "path; attackmix is the only workload that trips "
                "security bytes.\n");
    return 0;
}
