/**
 * @file fleet_throughput.cc
 * The fleet serving engine's throughput harness: one tenant per
 * synthetic workload generator (the five classic streams plus the
 * three adversarial replacement stressors), replayed through the
 * batched SoA loop on the work-stealing pool, reporting the merged
 * fleet counters and the sustained ops/sec.
 *
 * The committed BENCH_fleet.json baseline is this harness at --quick
 * --jobs 1; ctest's bench.gate.fleet checks the deterministic
 * counters (exact), CI's bench-baseline job additionally arms the
 * ops/sec floor (tools/bench_gate.py --ops-threshold).
 *
 * stdout is byte-identical at any --jobs value; the wall-clock
 * throughput line goes to stderr, and the JSON report carries the
 * timing object (elapsedMs, opsPerSec) for the time-armed gate.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "fleet/engine.hh"
#include "fleet/report.hh"
#include "workload/synth.hh"

using namespace califorms;

int
main(int argc, char **argv)
{
    std::uint64_t duration_ops = 100000;
    unsigned jobs = 1;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            duration_ops = 20000;
        } else if (std::strcmp(argv[i], "--duration-ops") == 0 &&
                   i + 1 < argc) {
            duration_ops = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                   i + 1 < argc) {
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--quick] [--duration-ops N] "
                        "[--jobs N] [--json FILE]\n",
                        argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], argv[i]);
            return 2;
        }
    }
    if (!duration_ops) {
        std::fprintf(stderr,
                     "%s: --duration-ops expects a positive integer\n",
                     argv[0]);
        return 2;
    }

    // One tenant per generator: the full access-pattern space as one
    // mixed-workload fleet, decorrelated by the default seed stride.
    fleet::FleetSpec spec;
    for (const std::string &name : synthWorkloadNames()) {
        fleet::TenantSpec tenant;
        if (auto error = fleet::parseTenantSpec(
                name + " workload=" + name, tenant)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], error->c_str());
            return 2;
        }
        spec.tenants.push_back(std::move(tenant));
    }
    spec.durationOps = duration_ops;

    std::printf("=============================================="
                "========================\n");
    std::printf("fleet throughput: %zu mixed-workload tenants, "
                "batched SoA replay\n",
                spec.tenants.size());
    std::printf("duration-ops=%llu batch=%zu stride=%llu\n",
                static_cast<unsigned long long>(duration_ops),
                spec.base.fleet.batchOps,
                static_cast<unsigned long long>(
                    spec.base.fleet.tenantSeedStride));
    std::printf("=============================================="
                "========================\n");

    try {
        const fleet::FleetResult result = fleet::runFleet(spec, jobs);
        fleet::printFleetSummary(std::cout, result);
        std::printf("throughput: opsReplayed=%llu batchOps=%zu "
                    "shards=%u tenants=%zu\n",
                    static_cast<unsigned long long>(result.totalOps),
                    result.batchOps, result.shards,
                    result.tenants.size());
        std::fprintf(stderr,
                     "fleet throughput: %.0f ops/s (jobs=%u, "
                     "elapsed=%.1f ms)\n",
                     result.opsPerSec(), result.jobs,
                     result.elapsedMs);
        if (!json_path.empty()) {
            std::ofstream out(json_path, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "%s: cannot write '%s'\n",
                             argv[0], json_path.c_str());
                return 2;
            }
            out << fleet::fleetJson(spec, result, true);
            std::fprintf(stderr, "wrote %s\n", json_path.c_str());
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    return 0;
}
