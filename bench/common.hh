/**
 * @file common.hh
 * Shared helpers for the figure/table reproduction harnesses: CLI
 * parsing (--scale, --seeds), run helpers, and uniform headers so the
 * bench outputs are easy to diff against the expectations documented
 * in EXPERIMENTS.md at the repository root (harness inventory, option
 * semantics, output format).
 */

#ifndef CALIFORMS_BENCH_COMMON_HH
#define CALIFORMS_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/table.hh"
#include "workload/runner.hh"

namespace califorms::bench
{

/** Common command line options. */
struct Options
{
    double scale = 0.5;   //!< workload iteration multiplier
    unsigned seeds = 2;   //!< randomized binaries per configuration
    bool quick = false;   //!< --quick: one seed, small scale

    static Options
    parse(int argc, char **argv)
    {
        Options opt;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--quick") == 0) {
                opt.quick = true;
                opt.scale = 0.1;
                opt.seeds = 1;
            } else if (std::strcmp(argv[i], "--scale") == 0 &&
                       i + 1 < argc) {
                opt.scale = std::atof(argv[++i]);
            } else if (std::strcmp(argv[i], "--seeds") == 0 &&
                       i + 1 < argc) {
                opt.seeds = static_cast<unsigned>(
                    std::atoi(argv[++i]));
            } else if (std::strcmp(argv[i], "--help") == 0) {
                std::printf("usage: %s [--scale S] [--seeds N] "
                            "[--quick]\n",
                            argv[0]);
                std::exit(0);
            }
        }
        if (opt.scale <= 0)
            opt.scale = 0.5;
        if (opt.seeds == 0)
            opt.seeds = 1;
        return opt;
    }
};

/** Print a uniform experiment banner. */
inline void
banner(const char *experiment, const char *paper_summary,
       const Options &opt)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("%s\n", experiment);
    std::printf("paper reference: %s\n", paper_summary);
    std::printf("scale=%.2f seeds=%u\n", opt.scale, opt.seeds);
    std::printf("================================================="
                "=====================\n");
}

/** Benchmarks included in the software evaluation (Section 8.2). */
inline std::vector<const SpecBenchmark *>
softwareEvalSuite()
{
    std::vector<const SpecBenchmark *> out;
    for (const auto &b : spec2006Suite())
        if (b.inSoftwareEval)
            out.push_back(&b);
    return out;
}

/** Average over layout seeds of the cycle count for one config. */
inline double
meanCyclesOverSeeds(const SpecBenchmark &bench, RunConfig config,
                    unsigned seeds)
{
    double sum = 0;
    for (unsigned s = 0; s < seeds; ++s) {
        config.layoutSeed = 1000 + s;
        sum += static_cast<double>(runBenchmark(bench, config).cycles);
    }
    return sum / seeds;
}

} // namespace califorms::bench

#endif // CALIFORMS_BENCH_COMMON_HH
