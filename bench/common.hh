/**
 * @file common.hh
 * Shared helpers for the figure/table reproduction harnesses: CLI
 * parsing (--scale, --seeds, --jobs, --json/--csv), the campaign-engine
 * glue, and uniform headers so the bench outputs are easy to diff
 * against the expectations documented in EXPERIMENTS.md at the
 * repository root (harness inventory, option semantics, output format).
 *
 * Every grid-shaped harness expresses its grid as an exp::CampaignSpec
 * and executes it through runCampaign() below, which honours --jobs
 * (parallel execution with submission-order result collection, so
 * stdout is bit-identical at any job count) and records the optional
 * JSON/CSV reports.
 */

#ifndef CALIFORMS_BENCH_COMMON_HH
#define CALIFORMS_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/campaign.hh"
#include "exp/report.hh"
#include "sim/params.hh"
#include "util/table.hh"
#include "workload/runner.hh"

namespace califorms::bench
{

/** Common command line options. */
struct Options
{
    double scale = 0.5;   //!< workload iteration multiplier
    unsigned seeds = 2;   //!< randomized binaries per configuration
    unsigned jobs = 1;    //!< campaign worker threads; 0 = all cores
    bool quick = false;   //!< --quick: one seed, small scale
    std::string jsonPath; //!< --json FILE: machine-readable report
    std::string csvPath;  //!< --csv FILE: one row per run

    // Memory-hierarchy overrides, applied to the campaign base config
    // so every harness can be re-run on a shallower/differently sized
    // hierarchy without per-harness plumbing.
    unsigned levels = 0;  //!< --levels N: 1..3; 0 = keep the default
    long l2Kb = -1;       //!< --l2-kb N: L2 KB (0 disables); -1 = keep
    long llcKb = -1;      //!< --llc-kb N: LLC KB (0 disables); -1 = keep
    long wbQueue = -1;    //!< --wb-queue N: WB queue depth; -1 = keep

    /** Strict non-negative integer parse: exits on junk rather than
     *  letting atol turn a typo into 0 ("0 disables the L2"). */
    static long
    parseCount(const char *flag, const char *text, long max)
    {
        const std::string s = text;
        if (s.empty() ||
            s.find_first_not_of("0123456789") != std::string::npos ||
            std::atol(s.c_str()) > max) {
            std::fprintf(stderr,
                         "%s expects an integer in [0, %ld], got '%s'\n",
                         flag, max, text);
            std::exit(2);
        }
        return std::atol(s.c_str());
    }

    static Options
    parse(int argc, char **argv)
    {
        Options opt;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--quick") == 0) {
                opt.quick = true;
                opt.scale = 0.1;
                opt.seeds = 1;
            } else if (std::strcmp(argv[i], "--scale") == 0 &&
                       i + 1 < argc) {
                opt.scale = std::atof(argv[++i]);
            } else if (std::strcmp(argv[i], "--seeds") == 0 &&
                       i + 1 < argc) {
                opt.seeds = static_cast<unsigned>(
                    std::atoi(argv[++i]));
            } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                       i + 1 < argc) {
                opt.jobs = static_cast<unsigned>(
                    std::atoi(argv[++i]));
            } else if (std::strcmp(argv[i], "--json") == 0 &&
                       i + 1 < argc) {
                opt.jsonPath = argv[++i];
            } else if (std::strcmp(argv[i], "--csv") == 0 &&
                       i + 1 < argc) {
                opt.csvPath = argv[++i];
            } else if (std::strcmp(argv[i], "--levels") == 0 &&
                       i + 1 < argc) {
                opt.levels = static_cast<unsigned>(
                    std::atoi(argv[++i]));
                if (opt.levels < 1 || opt.levels > 3) {
                    std::fprintf(stderr,
                                 "--levels must be 1..3\n");
                    std::exit(2);
                }
            } else if (std::strcmp(argv[i], "--l2-kb") == 0 &&
                       i + 1 < argc) {
                opt.l2Kb = parseCount("--l2-kb", argv[++i], 1 << 20);
            } else if (std::strcmp(argv[i], "--llc-kb") == 0 &&
                       i + 1 < argc) {
                opt.llcKb = parseCount("--llc-kb", argv[++i], 1 << 20);
            } else if (std::strcmp(argv[i], "--wb-queue") == 0 &&
                       i + 1 < argc) {
                opt.wbQueue = parseCount("--wb-queue", argv[++i], 512);
            } else if (std::strcmp(argv[i], "--help") == 0) {
                std::printf("usage: %s [--scale S] [--seeds N] "
                            "[--jobs N] [--quick]\n"
                            "          [--json FILE] [--csv FILE]\n"
                            "          [--levels N] [--l2-kb N] "
                            "[--llc-kb N] [--wb-queue N]\n",
                            argv[0]);
                std::exit(0);
            }
        }
        if (opt.scale <= 0)
            opt.scale = 0.5;
        if (opt.seeds == 0)
            opt.seeds = 1;
        return opt;
    }

    /** Apply the hierarchy overrides to a campaign base config. */
    void
    applyHierarchy(MemSysParams &mem) const
    {
        if (levels)
            mem.levels = levels;
        if (l2Kb >= 0)
            mem.l2Size = static_cast<std::size_t>(l2Kb) * 1024;
        if (llcKb >= 0)
            mem.l3Size = static_cast<std::size_t>(llcKb) * 1024;
        if (wbQueue >= 0)
            mem.wbQueueEntries = static_cast<unsigned>(wbQueue);
    }

    /** The conventional layout-seed list (1000, 1001, ...). */
    std::vector<std::uint64_t>
    layoutSeeds() const
    {
        return exp::CampaignSpec::seedRange(seeds);
    }
};

/** Print a uniform experiment banner. Deliberately omits --jobs: the
 *  job count must never change a harness's output. */
inline void
banner(const char *experiment, const char *paper_summary,
       const Options &opt)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("%s\n", experiment);
    std::printf("paper reference: %s\n", paper_summary);
    std::printf("scale=%.2f seeds=%u\n", opt.scale, opt.seeds);
    std::printf("================================================="
                "=====================\n");
}

/** Benchmarks included in the software evaluation (Section 8.2). */
inline std::vector<const SpecBenchmark *>
softwareEvalSuite()
{
    std::vector<const SpecBenchmark *> out;
    for (const auto &b : spec2006Suite())
        if (b.inSoftwareEval)
            out.push_back(&b);
    return out;
}

/** The full 19-benchmark suite (Figures 4 and 10). */
inline std::vector<const SpecBenchmark *>
fullSuite()
{
    std::vector<const SpecBenchmark *> out;
    for (const auto &b : spec2006Suite())
        out.push_back(&b);
    return out;
}

/**
 * Execute @p spec with the harness options applied: scale and layout
 * seeds come from @p opt, execution uses --jobs workers, and the
 * JSON/CSV reports are written if requested (destinations validated
 * before any simulation time is spent). Report notes go to stderr so
 * stdout stays diffable across job counts and report paths. Exits with
 * a message rather than std::terminate on report errors — the bench
 * mains have no try/catch of their own.
 */
inline exp::CampaignResult
runCampaign(const Options &opt, exp::CampaignSpec spec)
{
    spec.base.scale = opt.scale;
    spec.layoutSeeds = opt.layoutSeeds();
    opt.applyHierarchy(spec.base.machine.mem);
    try {
        return exp::runCampaignWithReports(spec, opt.jobs,
                                           opt.jsonPath, opt.csvPath);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
    }
}

} // namespace califorms::bench

#endif // CALIFORMS_BENCH_COMMON_HH
