/**
 * @file common.hh
 * Shared helpers for the figure/table reproduction harnesses: CLI
 * parsing (--scale, --seeds, --jobs, --json/--csv, plus the full
 * registry surface: --set key=value, --config FILE, and the legacy
 * alias flags via config::parseCliArg), the campaign-engine
 * glue, and uniform headers so the bench outputs are easy to diff
 * against the expectations documented in EXPERIMENTS.md at the
 * repository root (harness inventory, option semantics, output format).
 *
 * Every grid-shaped harness expresses its grid as an exp::CampaignSpec
 * and executes it through runCampaign() below, which honours --jobs
 * (parallel execution with submission-order result collection, so
 * stdout is bit-identical at any job count) and records the optional
 * JSON/CSV reports.
 */

#ifndef CALIFORMS_BENCH_COMMON_HH
#define CALIFORMS_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "config/config.hh"
#include "exp/campaign.hh"
#include "exp/report.hh"
#include "security/scenarios.hh"
#include "sim/params.hh"
#include "util/table.hh"
#include "workload/runner.hh"
#include "workload/synth.hh"

namespace califorms::bench
{

/** Common command line options. */
struct Options
{
    double scale = 0.5;   //!< workload iteration multiplier
    unsigned seeds = 2;   //!< randomized binaries per configuration
    unsigned jobs = 1;    //!< campaign worker threads; 0 = all cores
    bool quick = false;   //!< --quick: one seed, small scale
    std::string jsonPath; //!< --json FILE: machine-readable report
    std::string csvPath;  //!< --csv FILE: one row per run

    /**
     * Registry-backed knob overrides, collected from --set key=value,
     * --config FILE, and the legacy alias flags (--levels, --l2-kb,
     * --llc-kb, --wb-queue, ...) and applied to the campaign base
     * config — so every harness can be re-run on any machine variant
     * without per-harness plumbing. No private hierarchy parser: the
     * config ParamRegistry validates every value.
     */
    config::Config cfg;

    static Options
    parse(int argc, char **argv)
    {
        Options opt;
        for (int i = 1; i < argc; ++i) {
            switch (config::parseCliArg(opt.cfg, argv[i], argc, argv,
                                        i, argv[0])) {
            case config::CliArg::Consumed:
                continue;
            case config::CliArg::Error:
                std::exit(2);
            case config::CliArg::NotMine:
                break;
            }
            if (std::strcmp(argv[i], "--quick") == 0) {
                opt.quick = true;
                opt.scale = 0.1;
                opt.seeds = 1;
            } else if (std::strcmp(argv[i], "--scale") == 0 &&
                       i + 1 < argc) {
                opt.scale = std::atof(argv[++i]);
            } else if (std::strcmp(argv[i], "--seeds") == 0 &&
                       i + 1 < argc) {
                opt.seeds = static_cast<unsigned>(
                    std::atoi(argv[++i]));
            } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                       i + 1 < argc) {
                opt.jobs = static_cast<unsigned>(
                    std::atoi(argv[++i]));
            } else if (std::strcmp(argv[i], "--json") == 0 &&
                       i + 1 < argc) {
                opt.jsonPath = argv[++i];
            } else if (std::strcmp(argv[i], "--csv") == 0 &&
                       i + 1 < argc) {
                opt.csvPath = argv[++i];
            } else if (std::strcmp(argv[i], "--help") == 0) {
                std::printf("usage: %s [--scale S] [--seeds N] "
                            "[--jobs N] [--quick]\n"
                            "          [--json FILE] [--csv FILE]\n"
                            "\n%s\n",
                            argv[0], config::cliUsage().c_str());
                std::exit(0);
            }
        }
        if (opt.scale <= 0)
            opt.scale = 0.5;
        if (opt.seeds == 0)
            opt.seeds = 1;
        return opt;
    }

    /** The conventional layout-seed list (1000, 1001, ...). */
    std::vector<std::uint64_t>
    layoutSeeds() const
    {
        return exp::CampaignSpec::seedRange(seeds);
    }
};

/** Print a uniform experiment banner. Deliberately omits --jobs: the
 *  job count must never change a harness's output. */
inline void
banner(const char *experiment, const char *paper_summary,
       const Options &opt)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("%s\n", experiment);
    std::printf("paper reference: %s\n", paper_summary);
    std::printf("scale=%.2f seeds=%u\n", opt.scale, opt.seeds);
    std::printf("================================================="
                "=====================\n");
}

/** Benchmarks included in the software evaluation (Section 8.2). */
inline std::vector<const SpecBenchmark *>
softwareEvalSuite()
{
    std::vector<const SpecBenchmark *> out;
    for (const auto &b : spec2006Suite())
        if (b.inSoftwareEval)
            out.push_back(&b);
    return out;
}

/** The full 19-benchmark suite (Figures 4 and 10). */
inline std::vector<const SpecBenchmark *>
fullSuite()
{
    std::vector<const SpecBenchmark *> out;
    for (const auto &b : spec2006Suite())
        out.push_back(&b);
    return out;
}

/**
 * Execute @p spec with the harness options applied: scale and layout
 * seeds come from @p opt, execution uses --jobs workers, and the
 * JSON/CSV reports are written if requested (destinations validated
 * before any simulation time is spent). Report notes go to stderr so
 * stdout stays diffable across job counts and report paths. Exits with
 * a message rather than std::terminate on report errors — the bench
 * mains have no try/catch of their own.
 */
inline exp::CampaignResult
runCampaign(const Options &opt, exp::CampaignSpec spec)
{
    // The harness grid owns the layout axis (policy/span variants,
    // the --seeds list): a base-level set of those keys would be
    // silently overwritten during expand(), so reject it loudly.
    // Likewise workload.* keys when no synthetic workload is in the
    // suite to consume them.
    bool any_synth = false;
    bool any_attack = false;
    for (const SpecBenchmark *b : spec.suite) {
        any_synth = any_synth || isSynthWorkload(b->name);
        any_attack = any_attack || isAttackBenchmark(b->name);
    }
    for (const auto &[key, value] : opt.cfg.entries()) {
        if (!any_attack && key.rfind("attack.", 0) == 0) {
            std::fprintf(stderr,
                         "%s has no effect here (no attack replay "
                         "benchmark in this harness's suite consumes "
                         "attack.* knobs)\n",
                         key.c_str());
            std::exit(2);
        }
        if (!any_synth && key.rfind("workload.", 0) == 0) {
            std::fprintf(stderr,
                         "%s has no effect here (no synthetic "
                         "workload in this harness's suite consumes "
                         "workload.* knobs)\n",
                         key.c_str());
            std::exit(2);
        }
        if (key.rfind("fleet.", 0) == 0) {
            std::fprintf(stderr,
                         "%s has no effect here (only the fleet "
                         "engine consumes fleet.* knobs)\n",
                         key.c_str());
            std::exit(2);
        }
        if (exp::gridOwnedKey(key)) {
            std::fprintf(stderr,
                         "%s is owned by this harness's grid and "
                         "would be silently overridden; it is not a "
                         "base config knob here\n",
                         key.c_str());
            std::exit(2);
        }
    }
    spec.base.scale = opt.scale;
    spec.layoutSeeds = opt.layoutSeeds();
    // Registry overrides land after the harness's own base tweaks, so
    // --set / --config / alias flags win over per-harness defaults.
    opt.cfg.applyTo(spec.base);
    try {
        return exp::runCampaignWithReports(spec, opt.jobs,
                                           opt.jsonPath, opt.csvPath);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
    }
}

} // namespace califorms::bench

#endif // CALIFORMS_BENCH_COMMON_HH
