/**
 * @file fig04_padding_sweep.cc
 * Figure 4: average slowdown when every struct field is padded with a
 * fixed 1..7 bytes (no CFORM instructions — the pure cache-pressure
 * lower bound). The paper reports 3.0% at 1B rising to 7.6% at 7B.
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace califorms;
using bench::Options;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    bench::banner("Figure 4 - fixed padding size sweep (no CFORM)",
                  "avg slowdown 3.0% @1B ... 7.6% @7B on SPEC CPU2006",
                  opt);

    // Fixed-size padding has no randomness, so no variant is averaged
    // over layout seeds; variant 0 is the unpadded baseline.
    exp::CampaignSpec spec;
    spec.name = "fig04_padding_sweep";
    spec.suite = bench::fullSuite();
    spec.variants = {
        {"base", InsertionPolicy::None, 0, 0, false, false, {}}};
    for (std::size_t pad = 1; pad <= 7; ++pad) {
        exp::Variant v;
        v.label = std::to_string(pad) + "B";
        v.policy = InsertionPolicy::FullFixed;
        v.fixedSpan = pad;
        v.cform = false;
        v.randomized = false;
        spec.variants.push_back(std::move(v));
    }

    const auto result = bench::runCampaign(opt, spec);

    std::vector<double> base;
    for (std::size_t i = 0; i < spec.suite.size(); ++i)
        base.push_back(result.meanCycles(i, 0));

    TextTable table({"padding", "avg slowdown", "min", "max",
                     "paper avg"});
    const double paper[] = {0.030, 0.054, 0.058, 0.060,
                            0.062, 0.070, 0.076};

    for (std::size_t pad = 1; pad <= 7; ++pad) {
        std::vector<double> with;
        double lo = 1e9, hi = -1e9;
        for (std::size_t i = 0; i < spec.suite.size(); ++i) {
            const double cycles = result.meanCycles(i, pad);
            with.push_back(cycles);
            const double s = cycles / base[i] - 1.0;
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        table.addRow({std::to_string(pad) + "B",
                      TextTable::pct(averageSlowdown(base, with)),
                      TextTable::pct(lo), TextTable::pct(hi),
                      TextTable::pct(paper[pad - 1])});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nNote: our substrate is a simulated Westmere "
                "(Table 3) with a DRAM bandwidth\nroofline; the paper "
                "measured a Skylake Xeon with a 19MB LLC, so absolute\n"
                "percentages run higher here while the monotonic shape "
                "is preserved.\n");
    return 0;
}
