# Runs a command and requires BOTH a zero exit code and a stdout marker.
# (Plain PASS_REGULAR_EXPRESSION makes ctest ignore the exit code, which
# would let a crashing-but-printing binary pass.)
#
# Usage: cmake -DCMD=<argv joined with '|'> -DMARKER=<string> -P SmokeTest.cmake

string(REPLACE "|" ";" cmd "${CMD}")
execute_process(COMMAND ${cmd}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "'${CMD}' exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
string(FIND "${out}" "${MARKER}" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "marker '${MARKER}' not found in output of '${CMD}':\n${out}")
endif()
