# Runs the hierarchy bench harness with --quick --json and gates the
# fresh report against the committed BENCH_hierarchy.json baseline via
# tools/bench_gate.py. Counters only (--no-time): ctest runs suites in
# parallel, so wall-clock is not comparable here — CI's bench-baseline
# job runs the same gate with the time threshold armed.
#
# Usage: cmake -DBENCH=<bin> -DPYTHON=<python3> -DGATE=<bench_gate.py>
#        -DBASELINE=<BENCH_hierarchy.json> -DOUT=<fresh.json>
#        -P BenchGate.cmake

execute_process(COMMAND ${BENCH} --quick --jobs 1 --json ${OUT}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "'${BENCH}' exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
execute_process(COMMAND ${PYTHON} ${GATE} ${OUT} ${BASELINE} --no-time
                OUTPUT_VARIABLE gate_out
                ERROR_VARIABLE gate_err
                RESULT_VARIABLE gate_rc)
if(NOT gate_rc EQUAL 0)
  message(FATAL_ERROR "bench gate failed:\n${gate_out}\n${gate_err}")
endif()
message(STATUS "${gate_out}")
