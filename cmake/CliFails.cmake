# Runs a command that must FAIL: a non-zero exit code AND a stderr
# diagnostic containing the marker. The negative twin of
# SmokeTest.cmake — it pins the error contract of the CLI (malformed
# configuration input is rejected loudly, never silently ignored or
# treated as an empty list).
#
# Usage: cmake -DCMD=<argv joined with '|'> -DMARKER=<string> -P CliFails.cmake

string(REPLACE "|" ";" cmd "${CMD}")
execute_process(COMMAND ${cmd}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "'${CMD}' was expected to fail but exited 0\nstdout:\n${out}")
endif()
string(FIND "${err}" "${MARKER}" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "diagnostic '${MARKER}' not found on stderr of '${CMD}':\nstderr:\n${err}\nstdout:\n${out}")
endif()
