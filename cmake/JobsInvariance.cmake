# Runs a campaign harness twice — serial and parallel — and requires
# byte-identical stdout: the campaign engine's determinism guarantee,
# enforced end to end on a real bench binary.
#
# Usage: cmake -DCMD=<argv joined with '|'> -DJOBS=<n> -P JobsInvariance.cmake

string(REPLACE "|" ";" cmd "${CMD}")
execute_process(COMMAND ${cmd} --jobs 1
                OUTPUT_VARIABLE serial
                ERROR_VARIABLE err1
                RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "'${CMD} --jobs 1' exited with ${rc1}\n${err1}")
endif()
execute_process(COMMAND ${cmd} --jobs ${JOBS}
                OUTPUT_VARIABLE parallel
                ERROR_VARIABLE err2
                RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "'${CMD} --jobs ${JOBS}' exited with ${rc2}\n${err2}")
endif()
if(NOT serial STREQUAL parallel)
  message(FATAL_ERROR "output differs between --jobs 1 and --jobs ${JOBS} for '${CMD}'")
endif()
