#include "security/victims.hh"

#include <memory>
#include <stdexcept>

namespace califorms
{

namespace
{

/** A session record whose token buffer sits next to the privilege
 *  flag the attacker wants to flip. */
StructDefPtr
sessionVictim()
{
    return std::make_shared<StructDef>(
        "session", std::vector<Field>{
                       {"id", Type::longType()},
                       {"token", Type::array(Type::charType(), 24)},
                       {"handler", Type::functionPointer()},
                       {"privileged", Type::charType()},
                   });
}

/** A parsed packet header: the payload buffer precedes the dispatch
 *  pointer the attacker wants to redirect. */
StructDefPtr
packetVictim()
{
    return std::make_shared<StructDef>(
        "packet", std::vector<Field>{
                      {"src", Type::intType()},
                      {"dst", Type::intType()},
                      {"len", Type::shortType()},
                      {"proto", Type::charType()},
                      {"payload", Type::array(Type::charType(), 40)},
                      {"dispatch", Type::functionPointer()},
                  });
}

/** An inode-like record: the name buffer precedes the permission
 *  bits the attacker wants to widen. */
StructDefPtr
inodeVictim()
{
    return std::make_shared<StructDef>(
        "inode", std::vector<Field>{
                     {"ino", Type::longType()},
                     {"nlink", Type::intType()},
                     {"uid", Type::intType()},
                     {"gid", Type::intType()},
                     {"size", Type::longType()},
                     {"name", Type::array(Type::charType(), 28)},
                     {"mode", Type::intType()},
                 });
}

} // namespace

const std::vector<std::string> &
attackVictimNames()
{
    static const std::vector<std::string> names{"session", "packet",
                                                "inode"};
    return names;
}

StructDefPtr
attackVictim(const std::string &name)
{
    if (name == "session")
        return sessionVictim();
    if (name == "packet")
        return packetVictim();
    if (name == "inode")
        return inodeVictim();
    std::string msg = "unknown attack victim '" + name +
                      "' (expected one of";
    for (const auto &n : attackVictimNames())
        msg += " " + n;
    msg += ")";
    throw std::invalid_argument(msg);
}

std::size_t
attackTargetField(const StructDef &def)
{
    return def.fields().size() - 1;
}

} // namespace califorms
