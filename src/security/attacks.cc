#include "security/attacks.hh"

#include <set>

namespace califorms
{

ScanResult
AttackSimulator::linearScan(Addr start, std::size_t len)
{
    ScanResult result;
    const std::size_t before = machine_.exceptions().deliveredCount();
    for (std::size_t i = 0; i < len; ++i) {
        machine_.load(start + i, 1);
        if (machine_.exceptions().deliveredCount() > before) {
            result.detected = true;
            result.bytesScanned = i;
            return result;
        }
    }
    result.bytesScanned = len;
    return result;
}

ProbeResult
AttackSimulator::randomProbes(const std::vector<Addr> &objects,
                              std::size_t object_size,
                              std::size_t budget)
{
    ProbeResult result;
    const std::size_t before = machine_.exceptions().deliveredCount();
    for (std::size_t i = 0; i < budget; ++i) {
        const Addr obj = objects[rng_.nextBelow(objects.size())];
        machine_.load(obj + rng_.nextBelow(object_size), 1);
        ++result.probes;
        if (machine_.exceptions().deliveredCount() > before) {
            result.detected = true;
            return result;
        }
    }
    return result;
}

BropResult
AttackSimulator::bropAttack(const StructDef &def, InsertionPolicy policy,
                            PolicyParams params, std::size_t target_field,
                            std::size_t max_crashes, bool rerandomize,
                            HeapParams heap_params)
{
    BropResult result;
    std::set<std::size_t> known_crash_offsets;
    std::uint64_t victim_seed = rng_.next();
    const std::uint64_t start_cycles = machine_.cycles();

    HeapAllocator heap(machine_, heap_params);
    while (result.crashes <= max_crashes) {
        // (Re)spawn the victim.
        LayoutTransformer t(policy, params,
                            rerandomize ? victim_seed + result.crashes
                                        : victim_seed);
        auto layout =
            std::make_shared<SecureLayout>(t.transform(def));
        const Addr obj = heap.allocate(layout);
        const std::size_t target = layout->fields.at(target_field).offset;

        // One victim lifetime: probe ascending offsets the attacker
        // does not know to be fatal. Probes use stores (the attacker
        // wants to corrupt the field).
        bool crashed = false;
        const std::size_t before =
            machine_.exceptions().deliveredCount();
        for (std::size_t off = 0; off < layout->size; ++off) {
            if (!rerandomize && known_crash_offsets.count(off))
                continue; // accumulated knowledge from prior lives
            machine_.store(obj + off, 1, 0x41);
            ++result.probes;
            if (machine_.exceptions().deliveredCount() > before) {
                crashed = true;
                if (result.crashes == 0)
                    result.firstDetectionCycles =
                        machine_.cycles() - start_cycles;
                if (!rerandomize)
                    known_crash_offsets.insert(off);
                break;
            }
            if (off == target) {
                result.succeeded = true;
                heap.free(obj);
                return result;
            }
        }
        heap.free(obj);
        if (!crashed) {
            // Walked the whole object without crashing or hitting the
            // target (cannot happen with target < size, but be safe).
            return result;
        }
        ++result.crashes;
    }
    return result;
}

} // namespace califorms
