/**
 * @file attacks.hh
 * Attack simulations for the Section 7.3 security analysis.
 *
 * The threat model: the attacker has arbitrary read/write primitives
 * and source-level knowledge (struct definitions, field order) but not
 * the host binary — so the realized random security byte layout is
 * unknown. Every touch of a security byte raises the privileged
 * exception; under continuous monitoring that is a crash (and, for the
 * BROP discussion, a respawn).
 *
 * Three attacks are modeled:
 *  - linear scan: sweep memory looking for a target; detection time is
 *    geometric in the security byte density.
 *  - blind guessing: probe random (object, offset) pairs; survival of
 *    O probes follows (1 - P/N)^O.
 *  - BROP-style respawn (Bittau et al., referenced by the paper): the
 *    victim restarts after each crash. If it restarts with the *same*
 *    layout the attacker accumulates knowledge and wins in at most
 *    sizeof(object) crashes; if each respawn re-randomizes the padding
 *    (the paper's proposed mitigation) the accumulated knowledge is
 *    useless and the expected cost explodes.
 */

#ifndef CALIFORMS_SECURITY_ATTACKS_HH
#define CALIFORMS_SECURITY_ATTACKS_HH

#include <cstdint>
#include <vector>

#include "alloc/heap.hh"
#include "layout/policy.hh"
#include "util/rng.hh"

namespace califorms
{

/** Result of a linear memory scan attack. */
struct ScanResult
{
    bool detected = false;
    std::size_t bytesScanned = 0; //!< bytes read before detection
};

/** Result of a blind random-probe attack. */
struct ProbeResult
{
    bool detected = false;
    std::size_t probes = 0;
};

/** Result of a BROP-style respawning attack. */
struct BropResult
{
    bool succeeded = false;   //!< attacker reached the target field
    std::size_t crashes = 0;  //!< victim respawns consumed
    std::size_t probes = 0;   //!< total probe writes issued
    /** Machine cycles from attack start to the first crash (0 if the
     *  attacker never crashed). */
    std::uint64_t firstDetectionCycles = 0;
};

/**
 * Drives attacks against califormed objects on a simulated machine.
 * All randomness is seeded for reproducibility.
 */
class AttackSimulator
{
  public:
    AttackSimulator(Machine &machine, std::uint64_t seed)
        : machine_(machine), rng_(seed)
    {}

    /** Read [start, start+len) byte by byte until a security byte
     *  trips the blacklist. */
    ScanResult linearScan(Addr start, std::size_t len);

    /** Probe random bytes of random objects until detection or
     *  @p budget probes. */
    ProbeResult randomProbes(const std::vector<Addr> &objects,
                             std::size_t object_size,
                             std::size_t budget);

    /**
     * BROP-style attack against a victim struct of type @p def
     * protected by @p policy. The attacker wants to write the byte at
     * @p target_field's offset. Each crash respawns the victim; if
     * @p rerandomize, the respawn uses a fresh layout seed (the
     * paper's mitigation), otherwise the same layout returns and crash
     * offsets stay meaningful. The attacker probes offsets in
     * ascending order, skipping offsets known to crash.
     */
    BropResult bropAttack(const StructDef &def, InsertionPolicy policy,
                          PolicyParams params, std::size_t target_field,
                          std::size_t max_crashes, bool rerandomize,
                          HeapParams heap_params = {});

  private:
    Machine &machine_;
    Rng rng_;
};

} // namespace califorms

#endif // CALIFORMS_SECURITY_ATTACKS_HH
