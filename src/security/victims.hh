/**
 * @file victims.hh
 * The named victim-struct corpus the attack scenarios target.
 *
 * Each victim is a realistic kernel/server object whose last field is
 * the one the attacker wants to corrupt (a privilege flag, a dispatch
 * pointer, permission bits), preceded by an attacker-reachable buffer.
 * Selected via the `attack.victim` registry key and shared between the
 * CLI, the campaign benchmark, and the tests.
 */

#ifndef CALIFORMS_SECURITY_VICTIMS_HH
#define CALIFORMS_SECURITY_VICTIMS_HH

#include <string>
#include <vector>

#include "layout/type.hh"

namespace califorms
{

/** Registered victim names, in registration order. */
const std::vector<std::string> &attackVictimNames();

/** Look up a victim struct by name (throws listing candidates). */
StructDefPtr attackVictim(const std::string &name);

/** Index of the field the attacker wants to write (the last one). */
std::size_t attackTargetField(const StructDef &def);

} // namespace califorms

#endif // CALIFORMS_SECURITY_VICTIMS_HH
