#include "security/scenarios.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "security/attacks.hh"
#include "security/victims.hh"
#include "util/rng.hh"

namespace califorms
{

namespace
{

/** Each trial gets a disjoint heap arena: fresh CFORM state from a
 *  fresh address range, so trials are independent without resetting
 *  the machine. */
constexpr Addr trialArenaBytes = Addr{1} << 28;

std::shared_ptr<const SecureLayout>
layoutFor(const ScenarioContext &c)
{
    LayoutTransformer t(c.policy, c.policyParams, c.layoutSeed);
    return std::make_shared<SecureLayout>(t.transform(c.victim));
}

std::size_t
delivered(const ScenarioContext &c)
{
    return c.machine.exceptions().deliveredCount();
}

/** Record the first detection's latency and charge a crash. */
void
noteDetection(ScenarioTrial &t, const ScenarioContext &c,
              std::uint64_t start_cycles)
{
    if (!t.detected) {
        t.detected = true;
        t.detectionLatencyCycles = c.machine.cycles() - start_cycles;
    }
    ++t.crashes;
}

// --- scan: sweep the victim heap byte by byte ----------------------------

class ScanScenario final : public AttackScenario
{
  public:
    const char *name() const override { return "scan"; }
    const char *
    summary() const override
    {
        return "linear sweep over the victim heap; detection time is "
               "geometric in the security-byte density";
    }

    ScenarioTrial
    run(ScenarioContext &c) const override
    {
        auto layout = layoutFor(c);
        const Addr base = c.heap.allocate(layout, c.params.objects);

        AttackSimulator attacker(c.machine, c.attackerSeed);
        const std::uint64_t c0 = c.machine.cycles();
        const auto r =
            attacker.linearScan(base, c.params.objects * layout->size);

        ScenarioTrial t;
        t.detected = r.detected;
        t.success = !r.detected;
        t.bytesTouched = r.bytesScanned;
        t.probes = r.bytesScanned + (r.detected ? 1 : 0);
        if (r.detected) {
            t.crashes = 1;
            t.detectionLatencyCycles = c.machine.cycles() - c0;
        }
        return t;
    }
};

// --- probe: blind random guessing ----------------------------------------

class ProbeScenario final : public AttackScenario
{
  public:
    const char *name() const override { return "probe"; }
    const char *
    summary() const override
    {
        return "blind random (object, offset) probing; survival of O "
               "probes follows (1 - P/N)^O";
    }

    ScenarioTrial
    run(ScenarioContext &c) const override
    {
        auto layout = layoutFor(c);
        std::vector<Addr> objs;
        objs.reserve(c.params.objects);
        for (std::uint64_t i = 0; i < c.params.objects; ++i)
            objs.push_back(c.heap.allocate(layout));

        AttackSimulator attacker(c.machine, c.attackerSeed);
        const std::uint64_t c0 = c.machine.cycles();
        const auto r = attacker.randomProbes(objs, layout->size,
                                             c.params.probeBudget);

        ScenarioTrial t;
        t.detected = r.detected;
        t.success = !r.detected;
        t.probes = r.probes;
        t.bytesTouched = r.probes;
        if (r.detected) {
            t.crashes = 1;
            t.detectionLatencyCycles = c.machine.cycles() - c0;
        }
        return t;
    }
};

// --- brop: respawning victim, accumulated crash knowledge ----------------

class BropScenario final : public AttackScenario
{
  public:
    const char *name() const override { return "brop"; }
    const char *
    summary() const override
    {
        return "BROP-style respawn attack; attack.brop_rerandomize "
               "re-randomizes the layout on every respawn (the paper's "
               "mitigation)";
    }

    ScenarioTrial
    run(ScenarioContext &c) const override
    {
        AttackSimulator attacker(c.machine, c.attackerSeed);
        const auto r = attacker.bropAttack(
            c.victim, c.policy, c.policyParams, c.targetField,
            c.params.crashBudget, c.params.bropRerandomize,
            c.heapParams);

        ScenarioTrial t;
        t.success = r.succeeded;
        t.detected = r.crashes > 0;
        t.crashes = r.crashes;
        t.probes = r.probes;
        t.bytesTouched = r.probes;
        t.detectionLatencyCycles = r.firstDetectionCycles;
        return t;
    }
};

// --- heapspray: colocate attacker buffers, overflow into the victim ------

class HeapSprayScenario final : public AttackScenario
{
  public:
    const char *name() const override { return "heapspray"; }
    const char *
    summary() const override
    {
        return "spray attacker buffers to colocate next to the victim, "
               "then overflow each one forward toward the target field";
    }

    ScenarioTrial
    run(ScenarioContext &c) const override
    {
        auto layout = layoutFor(c);
        Rng rng(c.attackerSeed);

        // The victim lands at a random slot inside the spray, so the
        // attacker does not know which of its buffers is the neighbor.
        const std::uint64_t spray =
            std::max<std::uint64_t>(2, c.params.sprayCount);
        const std::uint64_t victim_pos = 1 + rng.nextBelow(spray - 1);
        constexpr std::size_t bufBytes = 64;

        std::vector<Addr> sprayed;
        sprayed.reserve(spray);
        Addr victim_addr = 0;
        for (std::uint64_t i = 0; i <= spray; ++i) {
            if (i == victim_pos)
                victim_addr = c.heap.allocate(layout);
            else
                sprayed.push_back(c.heap.allocateRaw(bufBytes));
        }
        const Addr target =
            victim_addr + layout->fields.at(c.targetField).offset;

        // Far enough to cross the neighbor gap (rear pad + guards +
        // front pad) and reach any field of the adjacent object.
        const std::size_t reach = layout->size + 4 * lineBytes;

        ScenarioTrial t;
        const std::uint64_t c0 = c.machine.cycles();
        for (const Addr buf : sprayed) {
            if (t.crashes > c.params.crashBudget)
                break;
            const std::size_t before = delivered(c);
            for (std::size_t off = bufBytes; off < bufBytes + reach;
                 ++off) {
                c.machine.store(buf + off, 1, 0x41);
                ++t.probes;
                ++t.bytesTouched;
                if (delivered(c) > before) {
                    // This attacker life crashed; respawn and try the
                    // next sprayed buffer.
                    noteDetection(t, c, c0);
                    break;
                }
                if (buf + off == target) {
                    t.success = true;
                    return t;
                }
            }
        }
        return t;
    }
};

// --- overflow: buffer overrun into the adjacent califormed object --------

class OverflowScenario final : public AttackScenario
{
  public:
    const char *name() const override { return "overflow"; }
    const char *
    summary() const override
    {
        return "linear overrun from an attacker buffer into the "
               "adjacent califormed object's target field";
    }

    ScenarioTrial
    run(ScenarioContext &c) const override
    {
        auto layout = layoutFor(c);
        constexpr std::size_t bufBytes = 64;
        const Addr buf = c.heap.allocateRaw(bufBytes);
        const Addr victim_addr = c.heap.allocate(layout);
        const Addr target =
            victim_addr + layout->fields.at(c.targetField).offset;

        ScenarioTrial t;
        const std::uint64_t c0 = c.machine.cycles();
        const std::size_t before = delivered(c);
        // The attacker legitimately fills its own buffer, then keeps
        // writing: off the end, across the inter-object gap, into the
        // victim — the classic contiguous overrun.
        for (Addr a = buf; a <= target; ++a) {
            c.machine.store(a, 1, 0x41);
            ++t.probes;
            ++t.bytesTouched;
            if (delivered(c) > before) {
                noteDetection(t, c, c0);
                break;
            }
            if (a == target) {
                t.success = true;
                break;
            }
        }
        return t;
    }
};

// --- uaf: probe a stale pointer while the chunk recycles -----------------

class UafScenario final : public AttackScenario
{
  public:
    const char *name() const override { return "uaf"; }
    const char *
    summary() const override
    {
        return "use-after-free probing of a realloc'd chunk while "
               "churn pushes it through the quarantine into reuse";
    }

    ScenarioTrial
    run(ScenarioContext &c) const override
    {
        auto layout = layoutFor(c);

        // Ballast raises the heap high-water mark so the quarantine
        // limit (a fraction of peak) is meaningful.
        std::vector<Addr> ballast;
        for (int i = 0; i < 8; ++i)
            ballast.push_back(c.heap.allocate(layout));

        // The program grows its table: realloc moves it, the old chunk
        // is freed (fully califormed) into the quarantine — but the
        // attacker kept the old pointer.
        const Addr victim_addr = c.heap.allocate(layout);
        c.heap.reallocate(victim_addr, 2);
        const Addr stale =
            victim_addr + layout->fields.at(0).offset;

        ScenarioTrial t;
        const std::uint64_t c0 = c.machine.cycles();
        for (std::uint64_t i = 0;
             i < c.params.uafChurn && t.crashes <= c.params.crashBudget;
             ++i) {
            // Churn: allocate/free pushes the quarantine over its
            // limit, recycling the victim chunk to the free list, from
            // where an allocation hands it to a new owner.
            const Addr churned = c.heap.allocate(layout);
            const std::size_t before = delivered(c);
            c.machine.load(stale, 1);
            ++t.probes;
            ++t.bytesTouched;
            if (delivered(c) > before) {
                noteDetection(t, c, c0);
            } else if (c.heap.isLive(stale)) {
                // Undetected read of another owner's live data.
                t.success = true;
                break;
            }
            c.heap.free(churned);
        }
        return t;
    }
};

// --- timing: infer sentinel placement from conversion latency ------------

class TimingScenario final : public AttackScenario
{
  public:
    const char *name() const override { return "timing"; }
    const char *
    summary() const override
    {
        return "time per-line fills through the MSHR/DRAM machine; "
               "lines slowed by fill conversion carry sentinels, so "
               "probe only gaps on lines that time clean";
    }

    ScenarioTrial
    run(ScenarioContext &c) const override
    {
        auto layout = layoutFor(c);
        const Addr obj = c.heap.allocate(layout);

        ScenarioTrial t;
        // Phase 1: legitimate, in-bounds loads of the object's own
        // fields, each from a cold cache. On a timed machine a
        // califormed line pays the fill-conversion latency, so the
        // attacker learns which lines carry sentinels without ever
        // touching one.
        std::map<std::size_t, std::uint64_t> line_latency;
        for (const FieldLayout &f : layout->fields) {
            c.machine.flushAll();
            const std::uint64_t c0 = c.machine.cycles();
            c.machine.load(obj + f.offset, 1);
            ++t.probes;
            const std::uint64_t lat = c.machine.cycles() - c0;
            const std::size_t line = f.offset / lineBytes;
            auto it = line_latency.find(line);
            if (it == line_latency.end() || lat < it->second)
                line_latency[line] = lat;
        }
        std::uint64_t fastest = ~std::uint64_t{0};
        for (const auto &[line, lat] : line_latency)
            fastest = std::min(fastest, lat);

        // Phase 2: probe one inter-field gap the timing classified as
        // clean; fall back to the first gap if nothing timed clean
        // (an untimed machine leaks nothing, so the attacker guesses).
        const std::uint64_t c0 = c.machine.cycles();
        const std::size_t before = delivered(c);
        const Addr probe_at = pickGap(*layout, line_latency, fastest);
        if (probe_at == layout->size)
            return t; // layout has no inter-field gap to attack
        c.machine.store(obj + probe_at, 1, 0x41);
        ++t.probes;
        ++t.bytesTouched;
        if (delivered(c) > before)
            noteDetection(t, c, c0);
        else
            t.success = true;
        return t;
    }

  private:
    /** First gap whose line timed clean, else the first gap at all;
     *  layout->size if the layout has no inter-field gaps. */
    static std::size_t
    pickGap(const SecureLayout &layout,
            const std::map<std::size_t, std::uint64_t> &line_latency,
            std::uint64_t fastest)
    {
        std::size_t first_gap = layout.size;
        for (std::size_t f = 0; f + 1 < layout.fields.size(); ++f) {
            const std::size_t gap_off =
                layout.fields[f].offset + layout.fields[f].size;
            if (layout.fields[f + 1].offset <= gap_off)
                continue;
            if (first_gap == layout.size)
                first_gap = gap_off;
            const auto it = line_latency.find(gap_off / lineBytes);
            if (it != line_latency.end() && it->second <= fastest)
                return gap_off;
        }
        return first_gap;
    }
};

const ScanScenario scanScenario;
const ProbeScenario probeScenario;
const BropScenario bropScenario;
const HeapSprayScenario heapSprayScenario;
const OverflowScenario overflowScenario;
const UafScenario uafScenario;
const TimingScenario timingScenario;

/** The attack replay benchmark: run the configured scenario's trials
 *  and publish the rollup as the run's security counters. */
void
attackKernel(KernelContext &ctx)
{
    const std::size_t trials = ctx.n(
        static_cast<std::size_t>(std::max<std::uint64_t>(
            1, ctx.attack().seeds)));
    ctx.securityResult() = runAttackTrials(
        ctx.machine(), ctx.heap().params(), ctx.layoutPolicy(),
        ctx.layoutParams(), ctx.layoutSeed(), ctx.attack(), trials);
}

} // namespace

const std::vector<const AttackScenario *> &
attackScenarios()
{
    static const std::vector<const AttackScenario *> all{
        &scanScenario,     &probeScenario, &bropScenario,
        &heapSprayScenario, &overflowScenario, &uafScenario,
        &timingScenario,
    };
    return all;
}

const std::vector<std::string> &
attackScenarioNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n;
        for (const AttackScenario *s : attackScenarios())
            n.emplace_back(s->name());
        return n;
    }();
    return names;
}

const AttackScenario &
findAttackScenario(const std::string &name)
{
    for (const AttackScenario *s : attackScenarios())
        if (name == s->name())
            return *s;
    std::string msg = "unknown attack scenario '" + name +
                      "' (expected one of";
    for (const auto &n : attackScenarioNames())
        msg += " " + n;
    msg += ")";
    throw std::invalid_argument(msg);
}

SecurityRunStats
runAttackTrials(Machine &machine, const HeapParams &heap_params,
                InsertionPolicy policy, PolicyParams policy_params,
                std::uint64_t layout_seed, const AttackParams &params,
                std::size_t trials)
{
    const AttackScenario &scenario = findAttackScenario(params.scenario);
    const StructDefPtr victim = attackVictim(params.victim);
    const std::size_t target = attackTargetField(*victim);

    SecurityRunStats out;
    out.scenario = scenario.name();
    for (std::size_t t = 0; t < trials; ++t) {
        // Golden-ratio stride decorrelates trials across adjacent
        // campaign layout seeds.
        const std::uint64_t seed =
            layout_seed + 0x9e3779b97f4a7c15ull * (t + 1);
        HeapParams hp = heap_params;
        hp.heapBase =
            heap_params.heapBase + trialArenaBytes * (t + 1);
        HeapAllocator heap(machine, hp);

        ScenarioContext c{machine,       heap,   hp,
                          *victim,       target, policy,
                          policy_params, seed,   seed,
                          params};
        const ScenarioTrial trial = scenario.run(c);

        ++out.trials;
        out.successes += trial.success ? 1 : 0;
        out.detections += trial.detected ? 1 : 0;
        out.probes += trial.probes;
        out.bytesTouched += trial.bytesTouched;
        out.crashes += trial.crashes;
        out.detectionLatencyCycles += trial.detectionLatencyCycles;
    }
    return out;
}

const std::vector<SpecBenchmark> &
securitySuite()
{
    static const std::vector<SpecBenchmark> suite{
        {"attack", /*inSoftwareEval=*/false, attackKernel},
    };
    return suite;
}

bool
isAttackBenchmark(const std::string &name)
{
    return name == "attack";
}

} // namespace califorms
