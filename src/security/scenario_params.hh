/**
 * @file scenario_params.hh
 * Knobs and counters of the pluggable attack-scenario suite.
 *
 * AttackParams carries the `attack.*` registry keys into a run;
 * SecurityRunStats is the uniform result every scenario emits, rolled
 * up over the trial seeds of one run unit. Both are dependency-free so
 * the workload context and the config registry can see them without
 * pulling in the scenario implementations.
 */

#ifndef CALIFORMS_SECURITY_SCENARIO_PARAMS_HH
#define CALIFORMS_SECURITY_SCENARIO_PARAMS_HH

#include <cstdint>
#include <string>

namespace califorms
{

/** The `attack.*` registry keys (see src/config/registry.cc). */
struct AttackParams
{
    /** Which registered scenario the attack benchmark replays. */
    std::string scenario = "scan";
    /** Victim struct drawn from the named corpus (security/victims). */
    std::string victim = "session";
    /** Independent attacker/layout trials per run unit. */
    std::uint64_t seeds = 5;
    /** Victim heap population for scan/probe. */
    std::uint64_t objects = 64;
    /** Respawns the attacker may consume before giving up. */
    std::uint64_t crashBudget = 4096;
    /** Probe budget for the blind random-probe attack. */
    std::uint64_t probeBudget = 100000;
    /** Attacker allocations sprayed around the victim (heapspray). */
    std::uint64_t sprayCount = 32;
    /** Allocate/free rounds pushing freed chunks through the
     *  quarantine (uaf). */
    std::uint64_t uafChurn = 64;
    /** Re-randomize the victim layout on every respawn (brop). */
    bool bropRerandomize = false;
};

/** Uniform per-run-unit security counters (v2 "security" block). */
struct SecurityRunStats
{
    std::string scenario;
    std::uint64_t trials = 0;
    std::uint64_t successes = 0;  //!< trials where the attacker won
    std::uint64_t detections = 0; //!< trials with >= 1 detection
    std::uint64_t probes = 0;
    std::uint64_t bytesTouched = 0;
    std::uint64_t crashes = 0;
    /** Machine cycles from attacker start to first detection, summed
     *  over detected trials. */
    std::uint64_t detectionLatencyCycles = 0;
};

} // namespace califorms

#endif // CALIFORMS_SECURITY_SCENARIO_PARAMS_HH
