/**
 * @file scenarios.hh
 * Pluggable attack scenarios (the Section 7.3 red-team suite).
 *
 * Each scenario owns one attacker loop against a califormed victim on
 * a simulated machine and emits a uniform ScenarioTrial: did the
 * attacker win, was the attack detected, how many probes/bytes/crashes
 * did it cost, and how many machine cycles passed before the first
 * detection. The registry makes scenarios selectable by name
 * (`attack.scenario`), sweepable as a campaign axis, and reusable from
 * the CLI, the benches, and the tests — the same playbook as the
 * replacement-policy laboratory in src/sim/repl/.
 *
 * Threat model (unchanged from security/attacks.hh): the attacker has
 * arbitrary read/write primitives and source-level struct knowledge,
 * but not the realized random security-byte layout. Every touch of a
 * security byte is a detection; under continuous monitoring that is a
 * crash, and scenarios with respawn semantics charge it against a
 * crash budget.
 */

#ifndef CALIFORMS_SECURITY_SCENARIOS_HH
#define CALIFORMS_SECURITY_SCENARIOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/heap.hh"
#include "layout/policy.hh"
#include "security/scenario_params.hh"
#include "workload/kernels.hh"

namespace califorms
{

/** Everything one scenario trial needs. */
struct ScenarioContext
{
    Machine &machine;
    /** Per-trial heap arena the victim (and attacker spray) live in. */
    HeapAllocator &heap;
    /** Heap knobs for scenarios that spawn their own allocator
     *  (brop's respawning victim). */
    HeapParams heapParams;
    const StructDef &victim;
    std::size_t targetField;
    InsertionPolicy policy;
    PolicyParams policyParams;
    std::uint64_t layoutSeed;
    std::uint64_t attackerSeed;
    const AttackParams &params;
};

/** Uniform outcome of one scenario trial. */
struct ScenarioTrial
{
    bool success = false;  //!< attacker reached its goal undetected
    bool detected = false; //!< >= 1 security byte tripped
    std::uint64_t probes = 0;
    std::uint64_t bytesTouched = 0;
    std::uint64_t crashes = 0;
    /** Machine cycles from attacker start to first detection. */
    std::uint64_t detectionLatencyCycles = 0;
};

/** One registered end-to-end attack PoC. */
class AttackScenario
{
  public:
    virtual ~AttackScenario() = default;
    virtual const char *name() const = 0;
    virtual const char *summary() const = 0;
    virtual ScenarioTrial run(ScenarioContext &ctx) const = 0;
};

/** All registered scenarios, in registration order. */
const std::vector<const AttackScenario *> &attackScenarios();

/** Registered scenario names, in registration order. */
const std::vector<std::string> &attackScenarioNames();

/** Look up a scenario by name (throws listing candidates). */
const AttackScenario &findAttackScenario(const std::string &name);

/**
 * Roll up @p trials independent trials of the configured scenario.
 * Trial t derives its layout/attacker seed from @p layout_seed and
 * runs in its own heap arena (disjoint address range), so trials are
 * independent and the whole rollup is deterministic at any job count.
 */
SecurityRunStats runAttackTrials(Machine &machine,
                                 const HeapParams &heap_params,
                                 InsertionPolicy policy,
                                 PolicyParams policy_params,
                                 std::uint64_t layout_seed,
                                 const AttackParams &params,
                                 std::size_t trials);

/** The campaign-facing suite: the single "attack" benchmark whose
 *  kernel replays `attack.scenario` and fills the run's security
 *  counters. */
const std::vector<SpecBenchmark> &securitySuite();

/** True if @p name is the attack replay benchmark. */
bool isAttackBenchmark(const std::string &name);

} // namespace califorms

#endif // CALIFORMS_SECURITY_SCENARIOS_HH
