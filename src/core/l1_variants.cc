#include "core/l1_variants.hh"

#include <cassert>

namespace califorms
{

namespace
{

/** Extract chunk @p c's 8-bit security vector from the line mask. */
std::uint8_t
chunkMask(SecurityMask mask, unsigned c)
{
    return static_cast<std::uint8_t>((mask >> (8 * c)) & 0xff);
}

} // namespace

Cal4BLine
encodeCal4B(const BitVectorLine &line)
{
    Cal4BLine out;
    out.data = line.data;
    for (unsigned c = 0; c < chunksPerLine; ++c) {
        const std::uint8_t cm = chunkMask(line.mask, c);
        if (cm == 0) {
            out.meta[c] = 0;
            continue;
        }
        // Store the bit vector in the chunk's first security byte; its
        // own data slot is dead so nothing is lost.
        const unsigned holder = findFirstOne(cm);
        out.meta[c] = static_cast<std::uint8_t>(0x8 | holder);
        out.data[c * chunkBytes + holder] = cm;
    }
    return out;
}

BitVectorLine
decodeCal4B(const Cal4BLine &line)
{
    BitVectorLine out;
    out.data = line.data;
    for (unsigned c = 0; c < chunksPerLine; ++c) {
        if (!(line.meta[c] & 0x8))
            continue;
        const unsigned holder = line.meta[c] & 0x7;
        const std::uint8_t cm = line.data[c * chunkBytes + holder];
        assert((cm >> holder) & 1 &&
               "bit vector holder must itself be a security byte");
        out.mask |= static_cast<SecurityMask>(cm) << (8 * c);
    }
    out.canonicalize(); // security bytes read as zero
    return out;
}

Cal1BLine
encodeCal1B(const BitVectorLine &line)
{
    Cal1BLine out;
    out.data = line.data;
    for (unsigned c = 0; c < chunksPerLine; ++c) {
        const std::uint8_t cm = chunkMask(line.mask, c);
        if (cm == 0)
            continue;
        out.meta |= 1u << c;
        const unsigned base = c * chunkBytes;
        if (!(cm & 1)) {
            // Header byte 0 is a normal byte: relocate its value into the
            // chunk's last security byte (Figure 15).
            unsigned last = 0;
            for (unsigned b = 0; b < 8; ++b)
                if ((cm >> b) & 1)
                    last = b;
            out.data[base + last] = line.data[base];
        }
        out.data[base] = cm;
    }
    return out;
}

BitVectorLine
decodeCal1B(const Cal1BLine &line)
{
    BitVectorLine out;
    out.data = line.data;
    for (unsigned c = 0; c < chunksPerLine; ++c) {
        if (!((line.meta >> c) & 1))
            continue;
        const unsigned base = c * chunkBytes;
        const std::uint8_t cm = line.data[base];
        out.mask |= static_cast<SecurityMask>(cm) << (8 * c);
        if (!(cm & 1)) {
            // Restore the header byte from the last security byte.
            unsigned last = 0;
            for (unsigned b = 0; b < 8; ++b)
                if ((cm >> b) & 1)
                    last = b;
            out.data[base] = line.data[base + last];
        }
    }
    out.canonicalize();
    return out;
}

} // namespace califorms
