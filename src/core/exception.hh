/**
 * @file exception.hh
 * The privileged Califorms exception (Section 4.2).
 *
 * Raised when a load or store touches a security byte, or when a CFORM
 * instruction attempts an illegal transition (Table 1). The exception is
 * precise — it carries the exact faulting byte address — and privileged:
 * delivery is mediated by the OS layer, which may suppress it inside
 * whitelisted windows (memcpy-style routines).
 */

#ifndef CALIFORMS_CORE_EXCEPTION_HH
#define CALIFORMS_CORE_EXCEPTION_HH

#include <string>

#include "util/types.hh"

namespace califorms
{

/** What kind of operation faulted. */
enum class AccessKind
{
    Load,
    Store,
    Cform,
};

/** Why the exception was raised. */
enum class FaultReason
{
    LoadSecurityByte,   //!< load touched a blacklisted byte
    StoreSecurityByte,  //!< store touched a blacklisted byte
    CformSetOnSecurity, //!< CFORM set a byte that is already a security byte
    CformUnsetRegular,  //!< CFORM unset a byte that is a regular byte
};

/** A precise, privileged Califorms exception record. */
struct CaliformsException
{
    Addr faultAddr = 0;     //!< exact faulting byte address
    AccessKind kind = AccessKind::Load;
    FaultReason reason = FaultReason::LoadSecurityByte;
    Cycles cycle = 0;       //!< commit-time cycle of the faulting op

    std::string describe() const;
};

inline std::string
CaliformsException::describe()  const
{
    const char *k = kind == AccessKind::Load    ? "load"
                    : kind == AccessKind::Store ? "store"
                                                : "cform";
    const char *r = "";
    switch (reason) {
    case FaultReason::LoadSecurityByte:
        r = "load touched security byte";
        break;
    case FaultReason::StoreSecurityByte:
        r = "store touched security byte";
        break;
    case FaultReason::CformSetOnSecurity:
        r = "CFORM set on existing security byte";
        break;
    case FaultReason::CformUnsetRegular:
        r = "CFORM unset on regular byte";
        break;
    }
    return std::string("califorms exception: ") + r + " (" + k +
           " at 0x" + [](Addr a) {
               char buf[17];
               static const char *digits = "0123456789abcdef";
               int i = 16;
               buf[i] = '\0';
               do {
                   buf[--i] = digits[a & 0xf];
                   a >>= 4;
               } while (a && i > 0);
               return std::string(&buf[i]);
           }(faultAddr) + ")";
}

} // namespace califorms

#endif // CALIFORMS_CORE_EXCEPTION_HH
