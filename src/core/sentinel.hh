/**
 * @file sentinel.hh
 * The califorms-sentinel codec: conversion between the L1 bit vector
 * format and the one-bit-per-line L2+ format (Section 5.2, Figures 7-9,
 * Algorithms 1 and 2).
 *
 * Encoding recap (Figure 7). A califormed 64B line stores its metadata in
 * the first min(count, 4) bytes:
 *
 *   bits [0:2) of byte 0   count code: 00,01,10,11 -> 1,2,3,4+ security
 *                          bytes
 *   6-bit fields following Addr0..Addr_{k-1}: locations of the first
 *                          k = min(count, 4) security bytes, ascending
 *   (code 11 only) 6 bits  the sentinel pattern; every security byte past
 *                          the fourth holds a byte whose low 6 bits equal
 *                          the sentinel
 *
 * The original data of the header bytes that were *not* security bytes is
 * relocated into the security byte slots at offsets >= the header size
 * (those slots hold no data). The sentinel is chosen as a 6-bit pattern
 * absent from the low 6 bits of every normal byte; with at least one
 * security byte there are at most 63 normal bytes, so a free pattern
 * always exists (the pigeonhole argument of Section 5.2).
 *
 * Implementation notes (this is the hierarchy's hottest path — every
 * miss and write-back of a califormed line runs through it): the codec
 * is allocation-free (fixed four-pair relocation map derived from the
 * mask by bit iteration), the 4+ sentinel scan is branch-free SWAR over
 * eight 64-bit lanes (the software analogue of the Figure 9 comparator
 * bank), and spillLine memoizes the decoded mask in the SentinelLine so
 * fillLine/decodeMask skip the header decode entirely on the common
 * spill-then-fill round trip.
 */

#ifndef CALIFORMS_CORE_SENTINEL_HH
#define CALIFORMS_CORE_SENTINEL_HH

#include <optional>

#include "core/line.hh"

namespace califorms
{

/**
 * Find the sentinel for @p line: the smallest 6-bit pattern not present
 * in the low 6 bits of any normal (non security) byte. Returns
 * std::nullopt iff the line has no security byte (mask == 0), in which
 * case no sentinel is needed.
 */
std::optional<std::uint8_t> findSentinel(const BitVectorLine &line);

/**
 * Algorithm 1 — spill: convert an L1 line to the L2+ sentinel format.
 * Lines without security bytes are copied verbatim with the califormed
 * bit clear.
 */
SentinelLine spillLine(const BitVectorLine &line);

/**
 * Algorithm 2 — fill: convert an L2+ line back to the L1 bit vector
 * format. Security byte data slots read zero after conversion. Exact
 * inverse of spillLine on canonical lines.
 */
BitVectorLine fillLine(const SentinelLine &line);

/**
 * Critical-word-first support (Section 5.2): the security byte locations
 * can be recovered from the first 4 bytes plus, for the 4+ case, a scan
 * of whatever flits have arrived. This helper decodes only the mask
 * without touching data relocation; used by the timing model and tested
 * against fillLine. Served from the decode-once memo when the line came
 * out of spillLine.
 */
SecurityMask decodeMask(const SentinelLine &line);

} // namespace califorms

#endif // CALIFORMS_CORE_SENTINEL_HH
