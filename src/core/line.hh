/**
 * @file line.hh
 * Cache line representations used throughout the memory hierarchy.
 *
 * Two formats exist (Figure 1):
 *  - BitVectorLine: the L1 resident format (califorms-bitvector,
 *    Section 5.1). Data is stored naturally; a 64-bit vector marks which
 *    bytes are security bytes. 8B of metadata per 64B line.
 *  - SentinelLine: the L2-and-beyond format (califorms-sentinel,
 *    Section 5.2). One metadata bit says whether the line is califormed;
 *    if so, the security byte locations are encoded inside the line
 *    itself using the header + sentinel scheme of Figure 7.
 *
 * The library keeps BitVectorLine canonical: a security byte's data slot
 * always reads zero. CFORM zeroes bytes when blacklisting them and the
 * fill conversion restores zeros, matching the paper's side-channel
 * hardening (loads of security bytes return 0, Section 7.2) and the
 * zero-on-free policy (Section 6.1).
 */

#ifndef CALIFORMS_CORE_LINE_HH
#define CALIFORMS_CORE_LINE_HH

#include <array>
#include <cstdint>

#include "util/bitops.hh"
#include "util/types.hh"

namespace califorms
{

/** Bit i set means byte i of the line is a security byte. */
using SecurityMask = std::uint64_t;

/** Raw 64-byte payload of a cache line. */
struct LineData
{
    std::array<std::uint8_t, lineBytes> bytes{};

    std::uint8_t &operator[](std::size_t i) { return bytes[i]; }
    const std::uint8_t &operator[](std::size_t i) const { return bytes[i]; }

    bool operator==(const LineData &other) const = default;
};

/**
 * L1 resident line: natural data plus a per-byte security bit vector
 * (califorms-bitvector, Figure 5).
 */
struct BitVectorLine
{
    LineData data;
    SecurityMask mask = 0;

    bool califormed() const { return mask != 0; }
    bool isSecurityByte(unsigned i) const { return testBit(mask, i); }

    /**
     * True if the canonical-form invariant holds: every security byte's
     * data slot is zero.
     */
    bool canonical() const;

    /** Zero the data under every security byte (restore canonical form). */
    void canonicalize();

    bool operator==(const BitVectorLine &other) const = default;
};

/**
 * L2+/memory resident line: encoded payload plus the single califormed
 * metadata bit (stored in spare ECC bits once in DRAM, Section 3).
 *
 * The decoded security mask is memoized alongside the machine state:
 * the spill conversion already knows the mask it encoded, so carrying
 * it lets the fill conversion and the timing model skip the header
 * decode + sentinel scan (a pure simulator-speed cache, not part of
 * the architectural line — it never affects results and is ignored by
 * equality). Code that rebuilds @c raw by hand (swap-in, tests) simply
 * leaves @c maskCached false and pays the full decode.
 */
struct SentinelLine
{
    LineData raw;
    bool califormed = false;
    /** True when @c cachedMask mirrors the encoded metadata. */
    bool maskCached = false;
    /** Memoized decodeMask() result, valid iff @c maskCached. */
    SecurityMask cachedMask = 0;

    bool
    operator==(const SentinelLine &other) const
    {
        // The memo is a simulator-side cache; only the architectural
        // state (payload + ECC bit) defines line identity.
        return raw == other.raw && califormed == other.califormed;
    }
};

} // namespace califorms

#endif // CALIFORMS_CORE_LINE_HH
