#include "core/line.hh"

namespace califorms
{

bool
BitVectorLine::canonical() const
{
    for (unsigned i = 0; i < lineBytes; ++i)
        if (isSecurityByte(i) && data[i] != 0)
            return false;
    return true;
}

void
BitVectorLine::canonicalize()
{
    for (unsigned i = 0; i < lineBytes; ++i)
        if (isSecurityByte(i))
            data[i] = 0;
}

} // namespace califorms
