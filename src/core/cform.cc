#include "core/cform.hh"

#include <stdexcept>

namespace califorms
{

std::optional<CaliformsException>
checkCform(const BitVectorLine &line, const CformOp &op)
{
    if (lineOffset(op.lineAddr) != 0)
        throw std::invalid_argument("CFORM: address not line aligned");

    // Table 1, evaluated per byte in address order so the reported fault
    // is the lowest faulting address (precise exception).
    for (unsigned i = 0; i < lineBytes; ++i) {
        if (!testBit(op.mask, i))
            continue; // "Don't Care" column: masked bytes never change
        const bool set = testBit(op.setBits, i);
        const bool sec = line.isSecurityByte(i);
        if (set && sec) {
            return CaliformsException{op.lineAddr + i, AccessKind::Cform,
                                      FaultReason::CformSetOnSecurity, 0};
        }
        if (!set && !sec) {
            return CaliformsException{op.lineAddr + i, AccessKind::Cform,
                                      FaultReason::CformUnsetRegular, 0};
        }
    }
    return std::nullopt;
}

std::optional<CaliformsException>
applyCform(BitVectorLine &line, const CformOp &op)
{
    if (auto fault = checkCform(line, op))
        return fault;

    for (unsigned i = 0; i < lineBytes; ++i) {
        if (!testBit(op.mask, i))
            continue;
        if (testBit(op.setBits, i)) {
            line.mask |= 1ull << i;
            line.data[i] = 0; // canonical: security bytes read as zero
        } else {
            line.mask &= ~(1ull << i);
            // The byte stays zero: freed data was already zeroed by the
            // clean-before-use software contract (Section 6.1).
            line.data[i] = 0;
        }
    }
    return std::nullopt;
}

CformOp
makeSetOp(Addr line_addr, SecurityMask security_mask)
{
    CformOp op;
    op.lineAddr = line_addr;
    op.setBits = security_mask;
    op.mask = security_mask;
    return op;
}

CformOp
makeUnsetOp(Addr line_addr, SecurityMask security_mask)
{
    CformOp op;
    op.lineAddr = line_addr;
    op.setBits = 0;
    op.mask = security_mask;
    return op;
}

} // namespace califorms
