/**
 * @file l1_variants.hh
 * Appendix A: the two denser L1 califorms-bitvector variants.
 *
 * Both divide the 64B line into eight 8B chunks and store each chunk's
 * 8-bit security bit vector *inside* one of the chunk's own security
 * bytes instead of in dedicated metadata SRAM:
 *
 *  - califorms-4B (Figure 14): 4 bits of metadata per chunk — one
 *    "chunk califormed?" bit plus a 3-bit pointer to the byte holding the
 *    bit vector. 4B of metadata per line.
 *  - califorms-1B (Figure 15): 1 bit of metadata per chunk. The bit
 *    vector always lives in the chunk's byte 0 (the header byte); if
 *    byte 0 is a normal byte its original value is relocated into the
 *    chunk's *last* security byte. 1B of metadata per line.
 *
 * These trade L1 hit latency for metadata area (Table 7); the codecs here
 * give the variants a functional model so the trade-off can be tested and
 * the VLSI model can report the same rows as the paper.
 */

#ifndef CALIFORMS_CORE_L1_VARIANTS_HH
#define CALIFORMS_CORE_L1_VARIANTS_HH

#include <array>

#include "core/line.hh"

namespace califorms
{

/** Chunks per line and bytes per chunk for both variants. */
constexpr unsigned chunksPerLine = 8;
constexpr unsigned chunkBytes = 8;

/** Encoded line in the califorms-4B format. */
struct Cal4BLine
{
    LineData data;
    /** Per chunk: bit 3 = chunk califormed, bits 0..2 = index of the
     *  byte holding the chunk's bit vector. */
    std::array<std::uint8_t, chunksPerLine> meta{};

    bool operator==(const Cal4BLine &other) const = default;
};

/** Encoded line in the califorms-1B format. */
struct Cal1BLine
{
    LineData data;
    /** Bit i = chunk i califormed. */
    std::uint8_t meta = 0;

    bool operator==(const Cal1BLine &other) const = default;
};

/** Encode an L1 line into the 4B variant. */
Cal4BLine encodeCal4B(const BitVectorLine &line);

/** Decode the 4B variant back to the plain bit vector format. */
BitVectorLine decodeCal4B(const Cal4BLine &line);

/** Encode an L1 line into the 1B variant. */
Cal1BLine encodeCal1B(const BitVectorLine &line);

/** Decode the 1B variant back to the plain bit vector format. */
BitVectorLine decodeCal1B(const Cal1BLine &line);

} // namespace califorms

#endif // CALIFORMS_CORE_L1_VARIANTS_HH
