/**
 * @file cform.hh
 * The CFORM instruction (Section 4.1, Table 1).
 *
 * "CFORM R1, R2, R3": R1 holds the line-aligned virtual address of a 64B
 * region, R2 is a 64-bit attribute vector (bit i = 1 sets byte i as a
 * security byte, 0 unsets it), and R3 is a 64-bit mask (bit i = 1 allows
 * byte i's state to change). Illegal transitions — setting a byte that is
 * already a security byte, or unsetting a byte that is a regular byte —
 * raise the privileged Califorms exception. The instruction is atomic:
 * a faulting CFORM leaves the line unmodified.
 */

#ifndef CALIFORMS_CORE_CFORM_HH
#define CALIFORMS_CORE_CFORM_HH

#include <optional>

#include "core/exception.hh"
#include "core/line.hh"

namespace califorms
{

/** Operand bundle of one CFORM instruction. */
struct CformOp
{
    Addr lineAddr = 0;         //!< R1: line aligned start address
    std::uint64_t setBits = 0; //!< R2: 1 = set, 0 = unset (per byte)
    std::uint64_t mask = 0;    //!< R3: 1 = allow change (per byte)

    /** True when the instruction is a temporal-hint variant that should
     *  bypass the L1 (footnote 3, Section 6.1). Timing-only hint; the
     *  architectural effect is identical. */
    bool nonTemporal = false;
};

/**
 * Validate @p op against the current state of @p line per the Table 1
 * K-map, without modifying anything. Returns the first faulting byte, or
 * std::nullopt if the operation is legal.
 */
std::optional<CaliformsException> checkCform(const BitVectorLine &line,
                                             const CformOp &op);

/**
 * Apply @p op to @p line. If the K-map forbids any selected transition
 * the line is left untouched and the exception is returned. On success,
 * newly set security bytes have their data zeroed (canonical form) and
 * std::nullopt is returned.
 */
std::optional<CaliformsException> applyCform(BitVectorLine &line,
                                             const CformOp &op);

/** Build the CFORM op that sets security bytes @p security_mask on the
 *  line at @p line_addr, touching only those bytes. */
CformOp makeSetOp(Addr line_addr, SecurityMask security_mask);

/** Build the CFORM op that unsets security bytes @p security_mask. */
CformOp makeUnsetOp(Addr line_addr, SecurityMask security_mask);

} // namespace califorms

#endif // CALIFORMS_CORE_CFORM_HH
