#include "core/sentinel.hh"

#include <cassert>
#include <cstring>

namespace califorms
{

namespace
{

constexpr std::uint8_t low6Mask = 0x3f;

// SWAR constants for the branch-free sentinel scan: the line is viewed
// as eight little-endian 64-bit lanes and every byte is compared against
// the sentinel pattern in parallel (the software analogue of the
// Figure 9 comparator bank).
constexpr std::uint64_t repeat01 = 0x0101010101010101ull;
constexpr std::uint64_t repeat3f = 0x3f3f3f3f3f3f3f3full;
constexpr std::uint64_t repeat7f = 0x7f7f7f7f7f7f7f7full;
constexpr std::uint64_t repeat80 = 0x8080808080808080ull;
/** Gathers the per-byte 0x80 flags of a SWAR word into bits [56, 64). */
constexpr std::uint64_t gatherMul = 0x0102040810204080ull;

/** Number of header bytes for a given security byte count. */
constexpr unsigned
headerBytes(unsigned count)
{
    return count >= 4 ? 4u : count;
}

/** Read a 6-bit field starting at bit @p bit of the first four bytes. */
std::uint8_t
readBits6(const LineData &raw, unsigned bit)
{
    std::uint32_t word = 0;
    for (unsigned i = 0; i < 4; ++i)
        word |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
    return static_cast<std::uint8_t>((word >> bit) & low6Mask);
}

/** Lane @p w (bytes [8w, 8w+8)) of the line as a little-endian word. */
std::uint64_t
lane(const LineData &raw, unsigned w)
{
    // The SWAR flag gathering below maps byte i of the word to result
    // bit i, which is only the identity byte order on little-endian
    // hosts; fail the build rather than silently decode wrong masks.
    static_assert(std::endian::native == std::endian::little,
                  "SWAR sentinel scan assumes little-endian lanes; "
                  "byte-swap here before porting to big-endian");
    std::uint64_t v;
    std::memcpy(&v, raw.bytes.data() + 8 * w, sizeof v);
    return v;
}

/**
 * One flag bit per byte of @p word whose low 6 bits equal the pattern
 * broadcast in @p pattern01 (pattern * 0x0101...). Branch free: mask to
 * 6 bits, XOR with the broadcast, then detect zero bytes. Because every
 * masked byte is <= 0x3f the zero test is the exact carry-free form
 * ((x + 0x7f..) | x) — bit 7 of each byte is set iff the byte is
 * non-zero — with no cross-byte borrow to correct for.
 */
unsigned
matchLow6(std::uint64_t word, std::uint64_t pattern01)
{
    const std::uint64_t x = (word & repeat3f) ^ pattern01;
    const std::uint64_t nonzero = ((x + repeat7f) | x) & repeat80;
    const std::uint64_t zero = nonzero ^ repeat80;
    return static_cast<unsigned>(((zero >> 7) * gatherMul) >> 56);
}

/**
 * The 4+ case sentinel scan over bytes [4, 64) (Figure 9 wires the
 * comparators to bytes 4..63 only): one mask bit per byte whose low 6
 * bits equal @p sentinel.
 */
SecurityMask
sentinelScan(const LineData &raw, std::uint8_t sentinel)
{
    const std::uint64_t pattern01 = sentinel * repeat01;
    SecurityMask mask = 0;
    for (unsigned w = 0; w < lineBytes / 8; ++w)
        mask |= static_cast<SecurityMask>(matchLow6(lane(raw, w),
                                                    pattern01))
                << (8 * w);
    return mask & ~SecurityMask{0xf};
}

/** Full mask decode of a califormed line: header fields + 4+ scan. */
SecurityMask
decodeCaliformedMask(const LineData &raw)
{
    const unsigned code = raw[0] & 0x3;
    const unsigned hdr = code + 1;
    SecurityMask mask = 0;
    for (unsigned j = 0; j < hdr; ++j)
        mask |= 1ull << readBits6(raw, 2 + 6 * j);
    if (code == 3)
        mask |= sentinelScan(raw, readBits6(raw, 26));
    return mask;
}

/**
 * The deterministic relocation map shared by spill and fill: live header
 * bytes (header offsets that are not security bytes) pair in order with
 * the first free security byte slots at offsets >= the header size.
 * Derived straight from the mask with bit iteration — no allocation,
 * at most four pairs (the header is at most four bytes).
 */
struct Relocation
{
    std::uint8_t liveHeader[4]; //!< header offsets holding data
    std::uint8_t target[4];     //!< slots their data moves to
    unsigned n = 0;
};

Relocation
relocationMap(SecurityMask mask, unsigned hdr)
{
    Relocation r;
    std::uint64_t live = ~mask & bitRange(0, hdr);
    std::uint64_t targets = mask & ~bitRange(0, hdr);
    while (live) {
        assert(targets && "count >= hdr guarantees a slot per live byte");
        r.liveHeader[r.n] = static_cast<std::uint8_t>(findFirstOne(live));
        r.target[r.n] = static_cast<std::uint8_t>(findFirstOne(targets));
        live &= live - 1;
        targets &= targets - 1;
        ++r.n;
    }
    return r;
}

} // namespace

std::optional<std::uint8_t>
findSentinel(const BitVectorLine &line)
{
    if (line.mask == 0)
        return std::nullopt;
    // Build the used-values vector over normal bytes (Figure 8), then
    // find the first unused pattern. Normal bytes are visited by bit
    // iteration over the complement mask — no per-byte branch.
    std::uint64_t used = 0;
    for (std::uint64_t normal = ~line.mask; normal; normal &= normal - 1)
        used |= 1ull << (line.data[findFirstOne(normal)] & low6Mask);
    const unsigned free_idx = findFirstZero(used);
    assert(free_idx < 64 && "pigeonhole guarantees a free pattern");
    return static_cast<std::uint8_t>(free_idx);
}

SentinelLine
spillLine(const BitVectorLine &line)
{
    SentinelLine out;
    out.raw = line.data;
    // Decode-once metadata: the encoder knows the mask it is encoding,
    // so the fill side never has to re-derive it (memoized, see
    // SentinelLine).
    out.maskCached = true;
    out.cachedMask = line.mask;
    // Algorithm 1 lines 1-3: OR of the metadata decides the format.
    if (line.mask == 0) {
        out.califormed = false;
        return out;
    }
    out.califormed = true;

    const unsigned count = popcount64(line.mask);
    const unsigned hdr = headerBytes(count);
    const std::uint8_t sentinel = *findSentinel(line);

    // Relocate live header data into security slots beyond the header.
    const Relocation reloc = relocationMap(line.mask, hdr);
    for (unsigned i = 0; i < reloc.n; ++i)
        out.raw[reloc.target[i]] = line.data[reloc.liveHeader[i]];

    // Every security byte past the hdr'th (position index >= hdr, only
    // possible in the 4+ case) holds the sentinel.
    {
        std::uint64_t rest = line.mask;
        for (unsigned skip = 0; skip < hdr; ++skip)
            rest &= rest - 1;
        for (; rest; rest &= rest - 1)
            out.raw[findFirstOne(rest)] = sentinel;
    }

    // Assemble the header bitstream (Figure 7): 2-bit count code then
    // 6-bit addresses, and for 4+ security bytes the sentinel.
    std::uint32_t word = count >= 4 ? 3u : count - 1;
    unsigned bit = 2;
    std::uint64_t remaining = line.mask;
    for (unsigned j = 0; j < hdr; ++j, bit += 6) {
        word |= static_cast<std::uint32_t>(findFirstOne(remaining))
                << bit;
        remaining &= remaining - 1;
    }
    if (count >= 4)
        word |= static_cast<std::uint32_t>(sentinel) << 26;
    for (unsigned j = 0; j < hdr; ++j)
        out.raw[j] = static_cast<std::uint8_t>((word >> (8 * j)) & 0xff);

    return out;
}

BitVectorLine
fillLine(const SentinelLine &line)
{
    BitVectorLine out;
    // Algorithm 2 lines 1-3.
    if (!line.califormed) {
        out.data = line.raw;
        out.mask = 0;
        return out;
    }

    const unsigned code = line.raw[0] & 0x3;
    const unsigned hdr = code + 1;

    const SecurityMask mask = line.maskCached
                                  ? line.cachedMask
                                  : decodeCaliformedMask(line.raw);
    assert(mask == decodeCaliformedMask(line.raw) &&
           "stale SentinelLine mask memo");

    out.mask = mask;
    out.data = line.raw;

    // Undo the relocation; the map is reconstructed from the mask alone.
    const Relocation reloc = relocationMap(mask, hdr);
    for (unsigned i = 0; i < reloc.n; ++i)
        out.data[reloc.liveHeader[i]] = line.raw[reloc.target[i]];

    // Security bytes read as zero (Algorithm 2 line 10).
    out.canonicalize();
    return out;
}

SecurityMask
decodeMask(const SentinelLine &line)
{
    if (!line.califormed)
        return 0;
    if (line.maskCached)
        return line.cachedMask;
    return decodeCaliformedMask(line.raw);
}

} // namespace califorms
