#include "core/sentinel.hh"

#include <cassert>
#include <vector>

namespace califorms
{

namespace
{

constexpr std::uint8_t low6Mask = 0x3f;

/** Number of header bytes for a given security byte count. */
unsigned
headerBytes(unsigned count)
{
    return count >= 4 ? 4u : count;
}

/** Read a 6-bit field starting at bit @p bit of the first four bytes. */
std::uint8_t
readBits6(const LineData &raw, unsigned bit)
{
    std::uint32_t word = 0;
    for (unsigned i = 0; i < 4; ++i)
        word |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
    return static_cast<std::uint8_t>((word >> bit) & low6Mask);
}

/**
 * The deterministic relocation map shared by spill and fill: live header
 * bytes (header offsets that are not security bytes) pair in order with
 * the security byte slots at offsets >= header size. Because the
 * positions are sorted, those slots are exactly positions[s..] where s is
 * the number of security bytes inside the header — all of which appear in
 * the header's address list, so fill can reconstruct the map from the
 * header alone.
 */
struct Relocation
{
    std::vector<unsigned> liveHeader; //!< header offsets holding data
    std::vector<unsigned> targets;    //!< slots their data moves to
};

Relocation
relocationMap(const std::vector<unsigned> &positions, unsigned hdr)
{
    Relocation r;
    unsigned s = 0;
    for (unsigned p : positions)
        if (p < hdr)
            ++s;
    for (unsigned j = 0; j < hdr; ++j) {
        bool is_security = false;
        for (unsigned p : positions) {
            if (p == j) {
                is_security = true;
                break;
            }
            if (p > j)
                break;
        }
        if (!is_security)
            r.liveHeader.push_back(j);
    }
    for (unsigned i = s; i < positions.size() && r.targets.size() <
             r.liveHeader.size(); ++i) {
        assert(positions[i] >= hdr);
        r.targets.push_back(positions[i]);
    }
    assert(r.targets.size() == r.liveHeader.size());
    return r;
}

std::vector<unsigned>
maskPositions(SecurityMask mask)
{
    std::vector<unsigned> positions;
    for (unsigned i = 0; i < lineBytes; ++i)
        if (testBit(mask, i))
            positions.push_back(i);
    return positions;
}

} // namespace

std::optional<std::uint8_t>
findSentinel(const BitVectorLine &line)
{
    if (line.mask == 0)
        return std::nullopt;
    // Build the used-values vector over normal bytes (Figure 8), then
    // find the first unused pattern.
    std::uint64_t used = 0;
    for (unsigned i = 0; i < lineBytes; ++i)
        if (!line.isSecurityByte(i))
            used |= 1ull << (line.data[i] & low6Mask);
    const unsigned free_idx = findFirstZero(used);
    assert(free_idx < 64 && "pigeonhole guarantees a free pattern");
    return static_cast<std::uint8_t>(free_idx);
}

SentinelLine
spillLine(const BitVectorLine &line)
{
    SentinelLine out;
    // Algorithm 1 lines 1-3: OR of the metadata decides the format.
    if (line.mask == 0) {
        out.raw = line.data;
        out.califormed = false;
        return out;
    }

    out.califormed = true;
    out.raw = line.data;

    const auto positions = maskPositions(line.mask);
    const auto count = static_cast<unsigned>(positions.size());
    const unsigned hdr = headerBytes(count);
    const std::uint8_t sentinel = *findSentinel(line);

    // Relocate live header data into security slots beyond the header.
    const Relocation reloc = relocationMap(positions, hdr);
    for (std::size_t i = 0; i < reloc.liveHeader.size(); ++i)
        out.raw[reloc.targets[i]] = line.data[reloc.liveHeader[i]];

    // Mark every remaining security byte (past the relocation targets)
    // with the sentinel. Only possible for the 4+ case, but harmless in
    // general.
    {
        unsigned s = 0;
        for (unsigned p : positions)
            if (p < hdr)
                ++s;
        for (std::size_t i = s + reloc.targets.size();
             i < positions.size(); ++i)
            out.raw[positions[i]] = sentinel;
    }

    // Assemble the header bitstream (Figure 7): 2-bit count code then
    // 6-bit addresses, and for 4+ security bytes the sentinel.
    std::uint32_t word = (count >= 4 ? 3u : count - 1);
    unsigned bit = 2;
    for (unsigned j = 0; j < hdr; ++j, bit += 6)
        word |= static_cast<std::uint32_t>(positions[j] & low6Mask) << bit;
    if (count >= 4)
        word |= static_cast<std::uint32_t>(sentinel) << 26;
    for (unsigned j = 0; j < hdr; ++j)
        out.raw[j] = static_cast<std::uint8_t>((word >> (8 * j)) & 0xff);

    return out;
}

BitVectorLine
fillLine(const SentinelLine &line)
{
    BitVectorLine out;
    // Algorithm 2 lines 1-3.
    if (!line.califormed) {
        out.data = line.raw;
        out.mask = 0;
        return out;
    }

    const unsigned code = line.raw[0] & 0x3;
    const unsigned hdr = code + 1 <= 4 ? code + 1 : 4;

    std::vector<unsigned> positions;
    for (unsigned j = 0; j < hdr; ++j)
        positions.push_back(readBits6(line.raw, 2 + 6 * j));

    SecurityMask mask = 0;
    for (unsigned p : positions)
        mask |= 1ull << p;

    // 4+ case: scan bytes [4, 64) for the sentinel (Figure 9 wires the
    // comparators to bytes 4..63 only).
    if (code == 3) {
        const std::uint8_t sentinel = readBits6(line.raw, 26);
        for (unsigned i = 4; i < lineBytes; ++i)
            if ((line.raw[i] & low6Mask) == sentinel)
                mask |= 1ull << i;
    }

    out.mask = mask;
    out.data = line.raw;

    // Undo the relocation: positions must be the full sorted list for the
    // map to be reconstructed, so rebuild it from the decoded mask.
    const auto all_positions = maskPositions(mask);
    const Relocation reloc = relocationMap(all_positions, hdr);
    for (std::size_t i = 0; i < reloc.liveHeader.size(); ++i)
        out.data[reloc.liveHeader[i]] = line.raw[reloc.targets[i]];

    // Security bytes read as zero (Algorithm 2 line 10).
    out.canonicalize();
    return out;
}

SecurityMask
decodeMask(const SentinelLine &line)
{
    if (!line.califormed)
        return 0;
    const unsigned code = line.raw[0] & 0x3;
    const unsigned hdr = code + 1 <= 4 ? code + 1 : 4;
    SecurityMask mask = 0;
    for (unsigned j = 0; j < hdr; ++j)
        mask |= 1ull << readBits6(line.raw, 2 + 6 * j);
    if (code == 3) {
        const std::uint8_t sentinel = readBits6(line.raw, 26);
        for (unsigned i = 4; i < lineBytes; ++i)
            if ((line.raw[i] & low6Mask) == sentinel)
                mask |= 1ull << i;
    }
    return mask;
}

} // namespace califorms
