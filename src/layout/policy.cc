#include "layout/policy.hh"

#include <algorithm>
#include <stdexcept>

#include "util/types.hh"

namespace califorms
{

std::string
policyName(InsertionPolicy policy)
{
    switch (policy) {
    case InsertionPolicy::None:
        return "none";
    case InsertionPolicy::Opportunistic:
        return "opportunistic";
    case InsertionPolicy::Full:
        return "full";
    case InsertionPolicy::Intelligent:
        return "intelligent";
    case InsertionPolicy::FullFixed:
        return "full-fixed";
    }
    return "?";
}

std::optional<InsertionPolicy>
parsePolicyName(const std::string &name)
{
    if (name == "none")
        return InsertionPolicy::None;
    if (name == "opportunistic")
        return InsertionPolicy::Opportunistic;
    if (name == "full")
        return InsertionPolicy::Full;
    if (name == "intelligent")
        return InsertionPolicy::Intelligent;
    if (name == "fixed" || name == "full-fixed")
        return InsertionPolicy::FullFixed;
    return std::nullopt;
}

std::size_t
SecureLayout::securityByteCount() const
{
    std::size_t total = 0;
    for (const auto &s : securityBytes)
        total += s.size;
    return total;
}

std::vector<bool>
SecureLayout::byteMask() const
{
    std::vector<bool> mask(size, false);
    for (const auto &s : securityBytes)
        for (std::size_t i = 0; i < s.size; ++i)
            mask.at(s.offset + i) = true;
    return mask;
}

bool
SecureLayout::isSecurityByte(std::size_t offset) const
{
    for (const auto &s : securityBytes)
        if (offset >= s.offset && offset < s.offset + s.size)
            return true;
    return false;
}

LayoutTransformer::LayoutTransformer(InsertionPolicy policy,
                                     PolicyParams params,
                                     std::uint64_t seed)
    : policy_(policy), params_(params), rng_(seed)
{
    if (params_.minSpan == 0 || params_.minSpan > params_.maxSpan)
        throw std::invalid_argument("LayoutTransformer: bad span range");
}

SecureLayout
LayoutTransformer::transform(const StructDef &def)
{
    switch (policy_) {
    case InsertionPolicy::None:
        return transformNone(def);
    case InsertionPolicy::Opportunistic:
        return transformOpportunistic(def);
    case InsertionPolicy::Full:
        return transformSpaced(def, false, false);
    case InsertionPolicy::Intelligent:
        return transformSpaced(def, true, false);
    case InsertionPolicy::FullFixed:
        return transformSpaced(def, false, true);
    }
    throw std::logic_error("LayoutTransformer: unknown policy");
}

SecureLayout
LayoutTransformer::transformNone(const StructDef &def) const
{
    SecureLayout out;
    out.policy = InsertionPolicy::None;
    out.size = def.size();
    out.align = def.align();
    out.fields = def.layout().fields;
    return out;
}

SecureLayout
LayoutTransformer::transformOpportunistic(const StructDef &def) const
{
    SecureLayout out;
    out.policy = InsertionPolicy::Opportunistic;
    out.size = def.size();
    out.align = def.align();
    out.fields = def.layout().fields;
    for (const auto &p : def.layout().paddings)
        out.securityBytes.push_back({p.offset, p.size});
    return out;
}

std::size_t
LayoutTransformer::drawSpan(bool fixed)
{
    if (fixed)
        return params_.fixedSpan;
    return rng_.nextRange(params_.minSpan, params_.maxSpan);
}

SecureLayout
LayoutTransformer::transformSpaced(const StructDef &def, bool only_overflow,
                                   bool fixed)
{
    SecureLayout out;
    out.policy = policy_;
    out.align = def.align();

    const auto &fields = def.fields();
    // Decide, per gap, whether a security span is requested. Gap i sits
    // before field i; gap fields.size() is the tail. The intelligent
    // policy requests spans only adjacent to overflowable fields.
    std::vector<bool> want(fields.size() + 1, !only_overflow);
    if (only_overflow) {
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (fields[i].type->overflowable()) {
                want[i] = true;     // span before the field
                want[i + 1] = true; // span after the field
            }
        }
        // A leading span only helps if the first field is overflowable;
        // inter-object spatial safety already guards the object front.
        if (!fields.empty() && !fields.front().type->overflowable())
            want[0] = false;
    }

    std::size_t cursor = 0;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        const std::size_t span_start = cursor;
        if (want[i])
            cursor += drawSpan(fixed);
        const std::size_t a = fields[i].type->align();
        const std::size_t off = roundUp(cursor, a);
        // A requested gap is blacklisted in full — the drawn span plus
        // any alignment slack it causes. Unrequested gaps (intelligent
        // policy, non-overflowable neighbors) keep their natural padding
        // plain: califorming it would cost CFORM work the policy is
        // designed to avoid (Section 2).
        if (want[i] && off > span_start)
            out.securityBytes.push_back({span_start, off - span_start});
        out.fields.push_back({off, fields[i].type->size(), i});
        cursor = off + fields[i].type->size();
    }

    const std::size_t tail_start = cursor;
    if (want.back() && !fields.empty())
        cursor += drawSpan(fixed);
    const std::size_t total =
        roundUp(std::max<std::size_t>(cursor, 1), out.align);
    if (want.back() && !fields.empty() && total > tail_start)
        out.securityBytes.push_back({tail_start, total - tail_start});
    out.size = total;
    return out;
}

} // namespace califorms
