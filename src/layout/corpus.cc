#include "layout/corpus.hh"

#include <string>

#include "util/rng.hh"

namespace califorms
{

CorpusParams
specCorpusParams()
{
    CorpusParams p;
    p.structCount = 2000;
    p.packedFraction = 1.0 - 0.457; // 45.7% padded (Figure 3a)
    p.pointerWeight = 0.12;
    p.arrayWeight = 0.18;
    p.nestWeight = 0.05;
    return p;
}

CorpusParams
v8CorpusParams()
{
    CorpusParams p;
    p.structCount = 2000;
    p.packedFraction = 1.0 - 0.410; // 41.0% padded (Figure 3b)
    p.pointerWeight = 0.30;         // engine objects are pointer heavy
    p.arrayWeight = 0.08;
    p.nestWeight = 0.08;
    return p;
}

namespace
{

/** Scalar palette with weights skewed toward int/char like real C code. */
TypePtr
drawScalar(Rng &rng)
{
    switch (rng.nextBelow(10)) {
    case 0:
    case 1:
        return Type::charType();
    case 2:
        return Type::shortType();
    case 3:
    case 4:
    case 5:
        return Type::intType();
    case 6:
        return Type::longType();
    case 7:
        return Type::floatType();
    default:
        return Type::doubleType();
    }
}

TypePtr
drawFieldType(Rng &rng, const CorpusParams &params,
              const std::vector<StructDefPtr> &done)
{
    const double roll = rng.nextDouble();
    if (roll < params.pointerWeight)
        return rng.chance(0.2) ? Type::functionPointer() : Type::pointer();
    if (roll < params.pointerWeight + params.arrayWeight) {
        // Char buffers dominate real-world arrays; keep lengths modest so
        // structs stay allocatable in cache-scale working sets.
        if (rng.chance(0.6))
            return Type::array(Type::charType(), rng.nextRange(2, 64));
        return Type::array(Type::intType(), rng.nextRange(2, 32));
    }
    if (roll < params.pointerWeight + params.arrayWeight +
                   params.nestWeight &&
        !done.empty()) {
        // Nest a small previously generated struct.
        const auto &candidate = done[rng.nextBelow(done.size())];
        if (candidate->size() <= 128)
            return Type::structure(candidate);
    }
    return drawScalar(rng);
}

/** A struct whose fields are all the same scalar — density exactly 1. */
StructDefPtr
makePacked(Rng &rng, std::size_t index, const CorpusParams &params)
{
    const std::size_t n =
        rng.nextRange(params.minFields, params.maxFields);
    const TypePtr t = drawScalar(rng);
    std::vector<Field> fields;
    fields.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        fields.push_back({"f" + std::to_string(i), t});
    return std::make_shared<StructDef>("packed" + std::to_string(index),
                                       std::move(fields));
}

/** A struct with mixed field types, repaired to contain >=1 padding. */
StructDefPtr
makePadded(Rng &rng, std::size_t index, const CorpusParams &params,
           const std::vector<StructDefPtr> &done)
{
    const std::size_t n =
        rng.nextRange(std::max<std::size_t>(params.minFields, 2),
                      params.maxFields);
    std::vector<Field> fields;
    fields.reserve(n + 2);
    for (std::size_t i = 0; i < n; ++i)
        fields.push_back(
            {"f" + std::to_string(i), drawFieldType(rng, params, done)});

    auto def = std::make_shared<StructDef>("mixed" + std::to_string(index),
                                           fields);
    if (def->layout().paddingBytes() == 0) {
        // Repair: a trailing char under a wider alignment forces tail
        // padding; if everything is byte aligned, prepend a char before
        // an int instead (the Listing 1 pattern).
        if (def->align() > 1) {
            fields.push_back({"tail", Type::charType()});
        } else {
            fields.insert(fields.begin(), {"c0", Type::charType()});
            fields.insert(fields.begin() + 1, {"i0", Type::intType()});
        }
        def = std::make_shared<StructDef>("mixed" + std::to_string(index),
                                          std::move(fields));
    }
    return def;
}

} // namespace

std::vector<StructDefPtr>
generateCorpus(const CorpusParams &params, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<StructDefPtr> corpus;
    corpus.reserve(params.structCount);

    const auto packed_target = static_cast<std::size_t>(
        params.packedFraction * static_cast<double>(params.structCount) +
        0.5);

    // Interleave packed and padded structs pseudo-randomly so nesting can
    // pick up both kinds, while hitting the packed target exactly.
    std::size_t packed_left = packed_target;
    std::size_t padded_left = params.structCount - packed_target;
    for (std::size_t i = 0; i < params.structCount; ++i) {
        const bool pick_packed =
            padded_left == 0 ||
            (packed_left > 0 &&
             rng.nextBelow(packed_left + padded_left) < packed_left);
        if (pick_packed) {
            corpus.push_back(makePacked(rng, i, params));
            --packed_left;
        } else {
            corpus.push_back(makePadded(rng, i, params, corpus));
            --padded_left;
        }
    }
    return corpus;
}

} // namespace califorms
