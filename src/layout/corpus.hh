/**
 * @file corpus.hh
 * Synthetic struct corpora standing in for the SPEC CPU2006 sources and
 * the V8 JavaScript engine (Figure 3).
 *
 * We cannot ship SPEC or V8 sources, so the corpus generator draws struct
 * definitions from a tunable distribution of field counts and field types.
 * The two presets are calibrated so the fraction of structs with at least
 * one padding byte matches the paper: 45.7% for the SPEC-like corpus and
 * 41.0% for the V8-like corpus. Workload kernels allocate instances of
 * these structs, so the same corpus drives both the static density pass
 * and the dynamic experiments.
 */

#ifndef CALIFORMS_LAYOUT_CORPUS_HH
#define CALIFORMS_LAYOUT_CORPUS_HH

#include <cstdint>
#include <vector>

#include "layout/type.hh"

namespace califorms
{

/** Distribution parameters for the corpus generator. */
struct CorpusParams
{
    std::size_t structCount = 2000;
    /** Target fraction of structs with zero padding bytes. */
    double packedFraction = 0.543;
    /** Probability a padded-struct field is a pointer. */
    double pointerWeight = 0.15;
    /** Probability a padded-struct field is an array. */
    double arrayWeight = 0.15;
    /** Probability of nesting a previously generated struct as a field. */
    double nestWeight = 0.05;
    /** Minimum / maximum number of fields per struct. */
    std::size_t minFields = 1;
    std::size_t maxFields = 16;
};

/** SPEC CPU2006-like preset (45.7% of structs padded). */
CorpusParams specCorpusParams();

/** V8-like preset (41.0% of structs padded; more pointer heavy). */
CorpusParams v8CorpusParams();

/**
 * Generate a corpus. Deterministic in @p seed. Every returned struct has
 * at least one field, and the realized packed fraction matches the target
 * exactly (the generator repairs structs that land on the wrong side).
 */
std::vector<StructDefPtr> generateCorpus(const CorpusParams &params,
                                         std::uint64_t seed);

} // namespace califorms

#endif // CALIFORMS_LAYOUT_CORPUS_HH
