#include "layout/density.hh"

namespace califorms
{

double
DensityReport::paddedFraction() const
{
    if (structCount == 0)
        return 0.0;
    return static_cast<double>(paddedCount) /
           static_cast<double>(structCount);
}

DensityReport
analyzeDensity(const std::vector<StructDefPtr> &corpus)
{
    DensityReport report;
    for (const auto &def : corpus) {
        if (!def)
            continue;
        const auto &layout = def->layout();
        ++report.structCount;
        if (layout.paddingBytes() > 0)
            ++report.paddedCount;
        report.totalPaddingBytes += layout.paddingBytes();
        report.totalFieldBytes += layout.size - layout.paddingBytes();
        report.histogram.add(layout.density());
    }
    return report;
}

} // namespace califorms
