#include "layout/type.hh"

#include <algorithm>
#include <stdexcept>

#include "util/types.hh"

namespace califorms
{

std::size_t
StructLayout::paddingBytes() const
{
    std::size_t total = 0;
    for (const auto &p : paddings)
        total += p.size;
    return total;
}

double
StructLayout::density() const
{
    if (size == 0)
        return 1.0;
    std::size_t field_bytes = 0;
    for (const auto &f : fields)
        field_bytes += f.size;
    return static_cast<double>(field_bytes) / static_cast<double>(size);
}

StructLayout
computeLayout(const std::vector<Field> &fields)
{
    StructLayout out;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        const auto &f = fields[i];
        if (!f.type || f.type->size() == 0)
            throw std::invalid_argument("computeLayout: incomplete field");
        const std::size_t a = f.type->align();
        const std::size_t off = roundUp(cursor, a);
        if (off > cursor)
            out.paddings.push_back({cursor, off - cursor});
        out.fields.push_back({off, f.type->size(), i});
        cursor = off + f.type->size();
        out.align = std::max(out.align, a);
    }
    const std::size_t total = roundUp(std::max<std::size_t>(cursor, 1),
                                      out.align);
    if (total > cursor && !fields.empty())
        out.paddings.push_back({cursor, total - cursor});
    out.size = total;
    return out;
}

StructDef::StructDef(std::string name, std::vector<Field> fields)
    : name_(std::move(name)), fields_(std::move(fields)),
      layout_(computeLayout(fields_))
{
}

bool
Type::overflowable() const
{
    switch (kind_) {
    case Kind::Array:
    case Kind::Pointer:
    case Kind::FunctionPointer:
        return true;
    default:
        return false;
    }
}

TypePtr
Type::scalar(std::string name, std::size_t size, std::size_t align)
{
    auto t = std::shared_ptr<Type>(new Type());
    t->kind_ = Kind::Scalar;
    t->size_ = size;
    t->align_ = align;
    t->name_ = std::move(name);
    return t;
}

TypePtr
Type::pointer(std::string pointee_name)
{
    auto t = std::shared_ptr<Type>(new Type());
    t->kind_ = Kind::Pointer;
    t->size_ = 8;
    t->align_ = 8;
    t->name_ = pointee_name + "*";
    return t;
}

TypePtr
Type::functionPointer()
{
    auto t = std::shared_ptr<Type>(new Type());
    t->kind_ = Kind::FunctionPointer;
    t->size_ = 8;
    t->align_ = 8;
    t->name_ = "void(*)()";
    return t;
}

TypePtr
Type::array(TypePtr elem, std::size_t count)
{
    if (!elem || count == 0)
        throw std::invalid_argument("Type::array: bad element/count");
    auto t = std::shared_ptr<Type>(new Type());
    t->kind_ = Kind::Array;
    t->size_ = elem->size() * count;
    t->align_ = elem->align();
    t->name_ = elem->name() + "[" + std::to_string(count) + "]";
    t->element_ = std::move(elem);
    t->count_ = count;
    return t;
}

TypePtr
Type::structure(StructDefPtr def)
{
    if (!def)
        throw std::invalid_argument("Type::structure: null def");
    auto t = std::shared_ptr<Type>(new Type());
    t->kind_ = Kind::Struct;
    t->size_ = def->size();
    t->align_ = def->align();
    t->name_ = "struct " + def->name();
    t->struct_ = std::move(def);
    return t;
}

TypePtr
Type::charType()
{
    static TypePtr t = scalar("char", 1, 1);
    return t;
}

TypePtr
Type::shortType()
{
    static TypePtr t = scalar("short", 2, 2);
    return t;
}

TypePtr
Type::intType()
{
    static TypePtr t = scalar("int", 4, 4);
    return t;
}

TypePtr
Type::longType()
{
    static TypePtr t = scalar("long", 8, 8);
    return t;
}

TypePtr
Type::floatType()
{
    static TypePtr t = scalar("float", 4, 4);
    return t;
}

TypePtr
Type::doubleType()
{
    static TypePtr t = scalar("double", 8, 8);
    return t;
}

} // namespace califorms
