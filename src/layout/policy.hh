/**
 * @file policy.hh
 * Security byte insertion policies (Section 2 / Listing 1).
 *
 * A policy rewrites a struct layout into a SecureLayout: the same fields,
 * possibly displaced, plus the list of security byte spans that the
 * allocator will caliform at runtime. Three policies are supported:
 *
 *  - opportunistic: reuse the compiler's own padding bytes; sizeof is
 *    unchanged, so the layout stays ABI compatible (Listing 1(b)).
 *  - full: insert a random 1..max span before the first field, between
 *    every pair of fields, and after the last field (Listing 1(c)).
 *  - intelligent: insert random spans only around overflowable fields —
 *    arrays and data/function pointers (Listing 1(d)).
 *
 * For the padding-sweep experiment (Figure 4) a fixed-size variant of the
 * full policy is provided as well.
 */

#ifndef CALIFORMS_LAYOUT_POLICY_HH
#define CALIFORMS_LAYOUT_POLICY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "layout/type.hh"
#include "util/rng.hh"

namespace califorms
{

/** Which insertion strategy to apply. */
enum class InsertionPolicy
{
    None,          //!< baseline: no security bytes at all
    Opportunistic, //!< harvest existing padding, keep sizeof
    Full,          //!< random spans between every field
    Intelligent,   //!< random spans around arrays and pointers
    FullFixed,     //!< fixed-size spans between every field (Figure 4)
};

/** Human-readable policy name for reports. */
std::string policyName(InsertionPolicy policy);

/** Inverse of policyName (plus the historical CLI spelling "fixed" for
 *  FullFixed); std::nullopt if unknown. */
std::optional<InsertionPolicy> parsePolicyName(const std::string &name);

/** A run of security bytes inside a secure layout. */
struct SecuritySpan
{
    std::size_t offset;
    std::size_t size;
};

/**
 * Result of applying a policy to one struct: new total size/alignment,
 * relocated fields, and every security byte span. Field order is always
 * preserved (the paper randomizes sizes, not order).
 */
struct SecureLayout
{
    InsertionPolicy policy = InsertionPolicy::None;
    std::size_t size = 0;
    std::size_t align = 1;
    std::vector<FieldLayout> fields;
    std::vector<SecuritySpan> securityBytes;

    /** Total number of security bytes. */
    std::size_t securityByteCount() const;

    /** Per-byte mask: mask[i] is true iff byte i is a security byte. */
    std::vector<bool> byteMask() const;

    /** True if byte @p offset lies inside a security span. */
    bool isSecurityByte(std::size_t offset) const;
};

/**
 * Parameters controlling random span sizes. The paper fixes the minimum
 * at one byte and sweeps the maximum over {3, 5, 7} so the average span is
 * two, three, or four bytes (Section 8.2).
 */
struct PolicyParams
{
    std::size_t minSpan = 1;   //!< minimum random span size
    std::size_t maxSpan = 7;   //!< maximum random span size
    std::size_t fixedSpan = 1; //!< span size for FullFixed
};

/**
 * Applies insertion policies to struct definitions. Deterministic: the
 * random sizes depend only on the seed, so one LayoutTransformer models
 * one compiled binary (the paper builds three differently-randomized
 * binaries per configuration).
 */
class LayoutTransformer
{
  public:
    LayoutTransformer(InsertionPolicy policy, PolicyParams params,
                      std::uint64_t seed);

    /** Rewrite @p def under the configured policy. */
    SecureLayout transform(const StructDef &def);

    InsertionPolicy policy() const { return policy_; }
    const PolicyParams &params() const { return params_; }

  private:
    SecureLayout transformNone(const StructDef &def) const;
    SecureLayout transformOpportunistic(const StructDef &def) const;
    SecureLayout transformSpaced(const StructDef &def, bool only_overflow,
                                 bool fixed);

    std::size_t drawSpan(bool fixed);

    InsertionPolicy policy_;
    PolicyParams params_;
    Rng rng_;
};

} // namespace califorms

#endif // CALIFORMS_LAYOUT_POLICY_HH
