/**
 * @file type.hh
 * A model of C/C++ data types and their memory layout.
 *
 * This stands in for the type information the paper's LLVM pass extracts
 * from real source code (Section 6.2). The layout engine implements the
 * standard C rules — each field is placed at the next offset aligned to
 * its natural alignment, and the struct is padded at the tail to a
 * multiple of its own alignment — so every padding byte the compiler
 * would insert is visible to the insertion policies.
 */

#ifndef CALIFORMS_LAYOUT_TYPE_HH
#define CALIFORMS_LAYOUT_TYPE_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace califorms
{

class Type;
using TypePtr = std::shared_ptr<const Type>;

/** One named member of a struct. */
struct Field
{
    std::string name;
    TypePtr type;
};

/** Placement of one field inside a computed layout. */
struct FieldLayout
{
    std::size_t offset; //!< byte offset from struct base
    std::size_t size;   //!< sizeof(field type)
    std::size_t index;  //!< index into StructDef fields
};

/** A contiguous run of compiler-inserted padding bytes. */
struct PaddingSpan
{
    std::size_t offset;
    std::size_t size;
};

/**
 * Computed memory layout of a struct: field placements plus every padding
 * span (interior and tail).
 */
struct StructLayout
{
    std::size_t size = 0;
    std::size_t align = 1;
    std::vector<FieldLayout> fields;
    std::vector<PaddingSpan> paddings;

    /** Total number of padding bytes. */
    std::size_t paddingBytes() const;

    /**
     * Struct density as defined in Section 2: sum of field sizes divided
     * by total size including padding. Density 1.0 means no padding.
     */
    double density() const;
};

/**
 * Immutable description of a compound type. Layout is computed eagerly at
 * construction so @c size() / @c align() are cheap.
 */
class StructDef
{
  public:
    StructDef(std::string name, std::vector<Field> fields);

    const std::string &name() const { return name_; }
    const std::vector<Field> &fields() const { return fields_; }
    const StructLayout &layout() const { return layout_; }
    std::size_t size() const { return layout_.size; }
    std::size_t align() const { return layout_.align; }

  private:
    std::string name_;
    std::vector<Field> fields_;
    StructLayout layout_;
};

using StructDefPtr = std::shared_ptr<const StructDef>;

/**
 * A C type: scalar, data pointer, function pointer, array, or struct.
 * Instances are immutable and shared; build them with the factory
 * functions below.
 */
class Type
{
  public:
    enum class Kind
    {
        Scalar,          //!< char, int, double, ...
        Pointer,         //!< T*
        FunctionPointer, //!< void (*)()
        Array,           //!< T[n]
        Struct,          //!< struct/class instance
    };

    Kind kind() const { return kind_; }
    std::size_t size() const { return size_; }
    std::size_t align() const { return align_; }
    const std::string &name() const { return name_; }

    /** Element type for arrays; null otherwise. */
    TypePtr element() const { return element_; }
    /** Element count for arrays; 0 otherwise. */
    std::size_t count() const { return count_; }
    /** Definition for struct types; null otherwise. */
    StructDefPtr structDef() const { return struct_; }

    /**
     * True if the type is "overflowable" in the sense of the intelligent
     * policy (Section 2): arrays, and data/function pointers. Arrays of
     * structs count as overflowable as well.
     */
    bool overflowable() const;

    // Factories -----------------------------------------------------
    static TypePtr scalar(std::string name, std::size_t size,
                          std::size_t align);
    static TypePtr pointer(std::string pointee_name = "void");
    static TypePtr functionPointer();
    static TypePtr array(TypePtr elem, std::size_t count);
    static TypePtr structure(StructDefPtr def);

    // Common scalar singletons --------------------------------------
    static TypePtr charType();
    static TypePtr shortType();
    static TypePtr intType();
    static TypePtr longType();
    static TypePtr floatType();
    static TypePtr doubleType();

  private:
    Type() = default;

    Kind kind_ = Kind::Scalar;
    std::size_t size_ = 0;
    std::size_t align_ = 1;
    std::string name_;
    TypePtr element_;
    std::size_t count_ = 0;
    StructDefPtr struct_;
};

/** Compute the standard C layout of @p fields (used by StructDef). */
StructLayout computeLayout(const std::vector<Field> &fields);

} // namespace califorms

#endif // CALIFORMS_LAYOUT_TYPE_HH
