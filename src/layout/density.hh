/**
 * @file density.hh
 * Struct density analysis — the static compiler pass of Section 2.
 *
 * Density is the sum of field sizes divided by the total struct size
 * (including padding); the paper reports that 45.7% of SPEC CPU2006
 * structs and 41.0% of V8 structs have at least one padding byte
 * (Figure 3).
 */

#ifndef CALIFORMS_LAYOUT_DENSITY_HH
#define CALIFORMS_LAYOUT_DENSITY_HH

#include <vector>

#include "layout/type.hh"
#include "util/stats.hh"

namespace califorms
{

/** Aggregate density statistics over a struct corpus. */
struct DensityReport
{
    std::size_t structCount = 0;
    std::size_t paddedCount = 0;       //!< structs with >=1 padding byte
    std::size_t totalFieldBytes = 0;
    std::size_t totalPaddingBytes = 0;
    Histogram histogram{0.0, 1.0 + 1e-9, 10}; //!< Figure 3 bins

    /** Fraction of structs with at least one padding byte. */
    double paddedFraction() const;
};

/** Run the density pass over @p corpus. */
DensityReport analyzeDensity(const std::vector<StructDefPtr> &corpus);

} // namespace califorms

#endif // CALIFORMS_LAYOUT_DENSITY_HH
