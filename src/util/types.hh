/**
 * @file types.hh
 * Common type aliases and constants shared by every Califorms module.
 *
 * The whole library models a 64-bit machine with 64B cache lines, matching
 * the system evaluated in the paper (Table 3).
 */

#ifndef CALIFORMS_UTIL_TYPES_HH
#define CALIFORMS_UTIL_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace califorms
{

/** Virtual/physical address within the simulated machine. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycles = std::uint64_t;

/** Cache line size in bytes. The sentinel encoding relies on 64. */
constexpr std::size_t lineBytes = 64;

/** log2(lineBytes), used for address arithmetic. */
constexpr unsigned lineShift = 6;

/** Simulated page size in bytes (for the OS swap metadata model). */
constexpr std::size_t pageBytes = 4096;

/** Number of cache lines per page. */
constexpr std::size_t linesPerPage = pageBytes / lineBytes;

/** Round an address down to its cache line base. */
constexpr Addr
lineBase(Addr addr)
{
    return addr & ~static_cast<Addr>(lineBytes - 1);
}

/** Byte offset of an address within its cache line. */
constexpr unsigned
lineOffset(Addr addr)
{
    return static_cast<unsigned>(addr & (lineBytes - 1));
}

/** Round an address down to its page base. */
constexpr Addr
pageBase(Addr addr)
{
    return addr & ~static_cast<Addr>(pageBytes - 1);
}

/** Round @p value up to the next multiple of @p align (align power of 2
 *  not required). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return align == 0 ? value : ((value + align - 1) / align) * align;
}

} // namespace califorms

#endif // CALIFORMS_UTIL_TYPES_HH
