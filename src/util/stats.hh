/**
 * @file stats.hh
 * Statistics helpers used throughout the evaluation harness: running
 * moments, fixed-bin histograms, and the averaging conventions the paper
 * uses (arithmetic mean of per-benchmark speedups, Section 8.2 footnote 5).
 */

#ifndef CALIFORMS_UTIL_STATS_HH
#define CALIFORMS_UTIL_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace califorms
{

/** Welford-style running mean / variance / extrema accumulator. */
class RunningStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over [lo, hi) with @p bins equal-width bins. Samples outside
 * the range are clamped into the first/last bin; this matches how the
 * paper's density plot treats density exactly 1.0 (it lands in the last
 * bin).
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }
    /** Fraction of all samples falling into bin @p i. */
    double binFraction(std::size_t i) const;
    /** Inclusive lower edge of bin @p i. */
    double binLo(std::size_t i) const;
    double binHi(std::size_t i) const;

    /** Render as rows "lo..hi fraction bar" for quick terminal viewing. */
    std::string render(std::size_t bar_width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * Average slowdown the way the paper reports it: each configuration's
 * slowdown is time/base_time - 1; the suite average is the arithmetic mean
 * of per-benchmark speedups (base/time), converted back to a slowdown.
 */
double averageSlowdown(const std::vector<double> &base_times,
                       const std::vector<double> &times);

/** Arithmetic mean of a vector (0 for empty input). */
double mean(const std::vector<double> &xs);

/** Geometric mean of a vector of positive values (0 for empty input). */
double geomean(const std::vector<double> &xs);

} // namespace califorms

#endif // CALIFORMS_UTIL_STATS_HH
