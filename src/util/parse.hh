/**
 * @file parse.hh
 * Strict text-to-number parsing shared by the CLI drivers, the bench
 * harnesses, and the config subsystem. Every function here reports
 * malformed input explicitly (std::optional / bool) instead of the
 * strtol-family convention of silently returning 0 or wrapping
 * negatives — a typo'd flag value must never masquerade as a valid
 * configuration.
 */

#ifndef CALIFORMS_UTIL_PARSE_HH
#define CALIFORMS_UTIL_PARSE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace califorms
{

/** Split a comma-separated list into items (empty items preserved). */
std::vector<std::string> splitCsv(const std::string &csv);

/**
 * Parse "3,5,7"-style unsigned integer lists. std::nullopt on malformed
 * input (empty items, junk, negative numbers) — distinguishable from a
 * legitimately empty list, unlike the old empty-vector convention.
 */
std::optional<std::vector<std::size_t>>
parseSizeList(const std::string &csv);

/** Strict decimal unsigned parse; nullopt on junk (including
 *  negatives, leading '+', embedded spaces, and overflow). */
std::optional<std::uint64_t> parseU64(const std::string &text);

/** Strict finite-double parse; nullopt unless the whole string is one
 *  floating point literal. */
std::optional<double> parseDouble(const std::string &text);

/** Parse true/false/1/0/on/off/yes/no (case-sensitive, the config
 *  file vocabulary); nullopt otherwise. */
std::optional<bool> parseBool(const std::string &text);

} // namespace califorms

#endif // CALIFORMS_UTIL_PARSE_HH
