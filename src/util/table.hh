/**
 * @file table.hh
 * Minimal fixed-width text table used by the benchmark harnesses to print
 * the paper's tables/figure series in a uniform, diffable format.
 */

#ifndef CALIFORMS_UTIL_TABLE_HH
#define CALIFORMS_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace califorms
{

/** Accumulates rows of strings and renders them with aligned columns. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);
    /** Convenience: format a value as a percentage string, e.g. "3.12%". */
    static std::string pct(double v, int precision = 2);

    /** Render with a separator line under the header. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace califorms

#endif // CALIFORMS_UTIL_TABLE_HH
