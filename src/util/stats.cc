#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace califorms
{

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        throw std::invalid_argument("Histogram: bad range or bin count");
}

void
Histogram::add(double x)
{
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<long>(std::floor((x - lo_) / w));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
           static_cast<double>(total_);
}

double
Histogram::binLo(std::size_t i) const
{
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return binLo(i + 1);
}

std::string
Histogram::render(std::size_t bar_width) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double frac = binFraction(i);
        os.setf(std::ios::fixed);
        os.precision(2);
        os << binLo(i) << "-" << binHi(i) << "  ";
        os.precision(4);
        os << frac << "  ";
        const auto filled =
            static_cast<std::size_t>(frac * static_cast<double>(bar_width));
        for (std::size_t b = 0; b < filled; ++b)
            os << '#';
        os << '\n';
    }
    return os.str();
}

double
averageSlowdown(const std::vector<double> &base_times,
                const std::vector<double> &times)
{
    if (base_times.size() != times.size() || base_times.empty())
        throw std::invalid_argument("averageSlowdown: size mismatch");
    double sum_speedup = 0.0;
    for (std::size_t i = 0; i < times.size(); ++i)
        sum_speedup += base_times[i] / times[i];
    const double avg_speedup =
        sum_speedup / static_cast<double>(times.size());
    return 1.0 / avg_speedup - 1.0;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += std::log(x);
    return std::exp(s / static_cast<double>(xs.size()));
}

} // namespace califorms
