/**
 * @file bitops.hh
 * Small bit manipulation helpers used by the cache line codecs and the
 * gate-level models. Header-only.
 */

#ifndef CALIFORMS_UTIL_BITOPS_HH
#define CALIFORMS_UTIL_BITOPS_HH

#if !defined(__cplusplus) || __cplusplus < 202002L
#error "Califorms requires C++20: this header uses std::popcount/std::countr_zero from <bit>. Build through CMake (which sets CMAKE_CXX_STANDARD 20) or pass -std=c++20."
#endif

#include <bit>
#include <cstdint>
#include <version>

static_assert(__cpp_lib_bitops >= 201907L,
              "<bit> lacks the C++20 bit operations library "
              "(__cpp_lib_bitops); upgrade the standard library");

namespace califorms
{

/** Number of set bits in @p v. */
constexpr unsigned
popcount64(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** Index of the least significant set bit, or 64 if @p v == 0. */
constexpr unsigned
findFirstOne(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Index of the least significant clear bit, or 64 if @p v is all ones. */
constexpr unsigned
findFirstZero(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_one(v));
}

/** Mask with bits [lo, lo+len) set. @p len may be 0; lo+len must be <=64. */
constexpr std::uint64_t
bitRange(unsigned lo, unsigned len)
{
    if (len == 0)
        return 0;
    if (len >= 64)
        return ~0ull << lo;
    return ((1ull << len) - 1) << lo;
}

/** True if bit @p i of @p v is set. */
constexpr bool
testBit(std::uint64_t v, unsigned i)
{
    return (v >> i) & 1;
}

} // namespace califorms

#endif // CALIFORMS_UTIL_BITOPS_HH
