#include "util/table.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace califorms
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        throw std::invalid_argument("TextTable: empty header");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        throw std::invalid_argument("TextTable: row arity mismatch");
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string
TextTable::pct(double v, int precision)
{
    return num(v * 100.0, precision) + "%";
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace califorms
