/**
 * @file rng.hh
 * Deterministic pseudo random number generation.
 *
 * All randomized behaviour in the library (security byte sizing, workload
 * address streams, corpus generation) flows through this generator so that
 * every experiment is exactly reproducible from its seed. The paper uses
 * random 1..N byte security spans and three differently-seeded binaries per
 * configuration (Section 8.2); we reproduce that by re-seeding this RNG.
 */

#ifndef CALIFORMS_UTIL_RNG_HH
#define CALIFORMS_UTIL_RNG_HH

#include <cstdint>

namespace califorms
{

/**
 * xoshiro256** 1.0 by Blackman & Vigna — small, fast, and good enough for
 * simulation purposes. Seeded via splitmix64 so that any 64-bit seed
 * produces a well-mixed state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedcafe) { reseed(seed); }

    /** Reset the stream to a deterministic function of @p seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi], inclusive on both ends. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return nextDouble() < p; }

  private:
    std::uint64_t state[4];
};

} // namespace califorms

#endif // CALIFORMS_UTIL_RNG_HH
