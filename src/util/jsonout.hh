/**
 * @file jsonout.hh
 * Deterministic JSON fragment rendering shared by every JSON emitter
 * (campaign reports, the config registry schema). One implementation,
 * so escaping and number formatting cannot drift between producers —
 * the golden-pinned reports and schema both flow through these.
 */

#ifndef CALIFORMS_UTIL_JSONOUT_HH
#define CALIFORMS_UTIL_JSONOUT_HH

#include <string>

namespace califorms
{

/** Quote and escape @p s as a JSON string literal. */
std::string jsonString(const std::string &s);

/**
 * Shortest decimal form that round-trips to the same double; integral
 * values print without a decimal point. Deterministic across runs and
 * platforms (no locale, no excess digits).
 */
std::string jsonNumber(double v);

} // namespace califorms

#endif // CALIFORMS_UTIL_JSONOUT_HH
