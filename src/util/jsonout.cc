#include "util/jsonout.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace califorms
{

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

} // namespace califorms
