#include "util/parse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace califorms
{

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        out.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

std::optional<std::vector<std::size_t>>
parseSizeList(const std::string &csv)
{
    std::vector<std::size_t> out;
    for (const std::string &item : splitCsv(csv)) {
        const auto value = parseU64(item);
        if (!value)
            return std::nullopt;
        out.push_back(static_cast<std::size_t>(*value));
    }
    return out;
}

std::optional<std::uint64_t>
parseU64(const std::string &text)
{
    // Digits only: strtoull would silently wrap "-3" to a huge value
    // and accept leading whitespace.
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    errno = 0;
    const std::uint64_t value =
        std::strtoull(text.c_str(), nullptr, 10);
    if (errno == ERANGE)
        return std::nullopt;
    return value;
}

std::optional<double>
parseDouble(const std::string &text)
{
    if (text.empty() || std::isspace(static_cast<unsigned char>(
                            text.front())))
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || errno == ERANGE ||
        !std::isfinite(value))
        return std::nullopt;
    return value;
}

std::optional<bool>
parseBool(const std::string &text)
{
    if (text == "true" || text == "1" || text == "on" || text == "yes")
        return true;
    if (text == "false" || text == "0" || text == "off" ||
        text == "no")
        return false;
    return std::nullopt;
}

} // namespace califorms
