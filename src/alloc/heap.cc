#include "alloc/heap.hh"

#include <algorithm>
#include <stdexcept>

namespace califorms
{

namespace
{

/** Mark [start, start+len) in a per-line mask vector. */
void
markRange(std::vector<SecurityMask> &masks, std::size_t start,
          std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i) {
        const std::size_t b = start + i;
        masks[b / lineBytes] |= 1ull << (b % lineBytes);
    }
}

} // namespace

HeapAllocator::HeapAllocator(Machine &machine, HeapParams params)
    : machine_(machine), params_(params),
      bump_(lineBase(params.heapBase + lineBytes - 1))
{
}

std::vector<std::pair<Addr, SecurityMask>>
HeapAllocator::blockSecurityMasks(const Block &block) const
{
    const std::size_t n_lines = block.footprint / lineBytes;
    std::vector<SecurityMask> masks(n_lines, 0);

    const std::size_t front = block.payload - block.blockBase;
    markRange(masks, 0, front);
    markRange(masks, front + block.payloadBytes,
              block.footprint - front - block.payloadBytes);

    if (block.layout) {
        for (std::size_t e = 0; e < block.count; ++e) {
            const std::size_t elem = front + e * block.layout->size;
            for (const auto &span : block.layout->securityBytes)
                markRange(masks, elem + span.offset, span.size);
        }
    }

    std::vector<std::pair<Addr, SecurityMask>> out;
    out.reserve(n_lines);
    for (std::size_t i = 0; i < n_lines; ++i)
        out.emplace_back(block.blockBase + i * lineBytes, masks[i]);
    return out;
}

void
HeapAllocator::issueCform(Addr line_addr, std::uint64_t set_bits,
                          std::uint64_t mask)
{
    if (!params_.useCform || mask == 0)
        return;
    CformOp op;
    op.lineAddr = line_addr;
    op.setBits = set_bits;
    op.mask = mask;
    op.nonTemporal = params_.nonTemporalCform;
    machine_.cform(op);
    ++stats_.cformsIssued;
}

void
HeapAllocator::califormBlock(const Block &block, bool reused)
{
    for (const auto &[la, desired] : blockSecurityMasks(block)) {
        if (reused) {
            // Clean before use: the whole line is currently blacklisted;
            // clear exactly the bytes that become data (Section 6.1).
            issueCform(la, 0, ~desired);
        } else {
            // Fresh memory: establish the security bytes.
            issueCform(la, desired, desired);
        }
    }
}

void
HeapAllocator::califormFree(const Block &block)
{
    for (const auto &[la, current] : blockSecurityMasks(block)) {
        // Blacklist every byte that is currently data; hardware zeroes
        // the bytes as it sets them (zero on free, Section 7.2).
        issueCform(la, ~current, ~current);
    }
}

Addr
HeapAllocator::carve(std::size_t footprint)
{
    auto it = freeLists_.find(footprint);
    if (it != freeLists_.end() && !it->second.empty()) {
        const Addr base = it->second.back().blockBase;
        it->second.pop_back();
        ++stats_.reuses;
        return base;
    }
    const Addr base = bump_;
    bump_ += footprint;
    stats_.peakHeapBytes =
        std::max<std::size_t>(stats_.peakHeapBytes,
                              bump_ - lineBase(params_.heapBase +
                                               lineBytes - 1));
    return base;
}

Addr
HeapAllocator::allocate(std::shared_ptr<const SecureLayout> layout,
                        std::size_t count)
{
    if (!layout || count == 0)
        throw std::invalid_argument("allocate: bad layout/count");

    Block block;
    block.layout = layout;
    block.count = count;
    block.payloadBytes = layout->size * count;

    const std::size_t align = std::max<std::size_t>(layout->align, 8);
    const std::size_t front = roundUp(params_.guardBytes, align);
    block.footprint = roundUp(front + block.payloadBytes +
                                  params_.guardBytes,
                              lineBytes);

    const bool reused_candidate =
        freeLists_.count(block.footprint) &&
        !freeLists_.at(block.footprint).empty();
    block.blockBase = carve(block.footprint);
    block.payload = block.blockBase + front;

    califormBlock(block, reused_candidate);

    ++stats_.allocs;
    stats_.bytesAllocated += block.payloadBytes;
    stats_.liveBytes += block.payloadBytes;
    live_.emplace(block.payload, block);
    return block.payload;
}

Addr
HeapAllocator::allocateRaw(std::size_t bytes)
{
    if (bytes == 0)
        throw std::invalid_argument("allocateRaw: zero size");

    Block block;
    block.payloadBytes = bytes;
    const std::size_t front = roundUp(params_.guardBytes, 8);
    block.footprint =
        roundUp(front + bytes + params_.guardBytes, lineBytes);

    const bool reused_candidate =
        freeLists_.count(block.footprint) &&
        !freeLists_.at(block.footprint).empty();
    block.blockBase = carve(block.footprint);
    block.payload = block.blockBase + front;

    califormBlock(block, reused_candidate);

    ++stats_.allocs;
    stats_.bytesAllocated += bytes;
    stats_.liveBytes += bytes;
    live_.emplace(block.payload, block);
    return block.payload;
}

void
HeapAllocator::free(Addr addr)
{
    auto it = live_.find(addr);
    if (it == live_.end())
        throw std::invalid_argument("free: not a live allocation");
    Block block = it->second;
    live_.erase(it);

    califormFree(block);

    ++stats_.frees;
    stats_.liveBytes -= block.payloadBytes;
    stats_.quarantinedBytes += block.footprint;
    quarantine_.push_back(std::move(block));

    // Recycle the oldest quarantined blocks once the quarantine exceeds
    // its share of the heap high-water mark.
    const auto limit = static_cast<std::size_t>(
        params_.quarantineFraction *
        static_cast<double>(stats_.peakHeapBytes));
    while (!quarantine_.empty() && stats_.quarantinedBytes > limit) {
        Block old = std::move(quarantine_.front());
        quarantine_.pop_front();
        stats_.quarantinedBytes -= old.footprint;
        freeLists_[old.footprint].push_back(std::move(old));
    }
}

Addr
HeapAllocator::reallocate(Addr addr, std::size_t new_count)
{
    auto it = live_.find(addr);
    if (it == live_.end())
        throw std::invalid_argument("reallocate: not a live allocation");
    if (new_count == 0)
        throw std::invalid_argument("reallocate: zero size");
    const Block old = it->second;

    Addr moved;
    std::size_t copy_bytes;
    if (old.layout) {
        moved = allocate(old.layout, new_count);
        copy_bytes =
            std::min(old.payloadBytes, old.layout->size * new_count);
    } else {
        moved = allocateRaw(new_count);
        copy_bytes = std::min(old.payloadBytes, new_count);
    }

    // The instrumented memcpy skips the intra-object security bytes
    // (identical in both blocks: same layout); functional peek/poke —
    // the library copy is whitelisted, so no timing or exceptions.
    for (std::size_t i = 0; i < copy_bytes; ++i) {
        if (old.layout &&
            old.layout->isSecurityByte(i % old.layout->size))
            continue;
        machine_.pokeByte(moved + i, machine_.peekByte(addr + i));
    }

    free(addr);
    return moved;
}

bool
HeapAllocator::isLive(Addr addr) const
{
    for (const auto &[base, block] : live_)
        if (addr >= base && addr < base + block.payloadBytes)
            return true;
    return false;
}

} // namespace califorms
