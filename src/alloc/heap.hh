/**
 * @file heap.hh
 * Califorms-aware heap allocator (Section 6.1).
 *
 * The heap follows the clean-before-use discipline: freed memory stays
 * fully califormed (and zeroed) until it is reallocated, at which point
 * the data bytes are cleared while the intra-object security bytes are
 * (re)established. Temporal safety comes from quarantining: freed blocks
 * sit in a FIFO and are not recycled until the quarantine outgrows a
 * configurable fraction of the live heap, so stale pointers keep landing
 * on blacklisted bytes long after the free.
 *
 * Inter-object spatial safety uses the REST-style guard principle: each
 * block is surrounded by guard security bytes, so linear overflows off
 * either end of an object trap even when the object itself has no
 * intra-object spans.
 *
 * One CFORM instruction covers one cache line (Section 4.1), so the
 * allocator issues one CFORM per line it needs to (un)blacklist —
 * exactly the cost the paper's software evaluation accounts for.
 */

#ifndef CALIFORMS_ALLOC_HEAP_HH
#define CALIFORMS_ALLOC_HEAP_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "layout/policy.hh"
#include "sim/machine.hh"

namespace califorms
{

/** Allocator tuning knobs. */
struct HeapParams
{
    Addr heapBase = 0x100000000ull; //!< base of the simulated heap
    std::size_t guardBytes = 8;     //!< inter-object guard on each side
    /** Quarantined bytes may grow to this fraction of peak heap use
     *  before freed blocks are recycled (0 disables quarantining). */
    double quarantineFraction = 0.25;
    bool useCform = true;           //!< actually issue CFORM instructions
    bool nonTemporalCform = false;  //!< use the streaming CFORM variant
};

/** Allocation/free counters. */
struct HeapStats
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t reuses = 0;          //!< allocations served from free list
    std::uint64_t cformsIssued = 0;
    std::uint64_t bytesAllocated = 0;  //!< cumulative payload bytes
    std::size_t liveBytes = 0;
    std::size_t quarantinedBytes = 0;
    std::size_t peakHeapBytes = 0;     //!< high-water mark of the arena
};

class HeapAllocator
{
  public:
    HeapAllocator(Machine &machine, HeapParams params = HeapParams{});

    /**
     * Allocate @p count contiguous instances laid out per @p layout
     * (count > 1 models arrays of structs; elements are layout->size
     * apart). Security bytes are established per the layout plus the
     * inter-object guards. Returns the address of element 0.
     */
    Addr allocate(std::shared_ptr<const SecureLayout> layout,
                  std::size_t count = 1);

    /** Allocate @p bytes with no intra-object spans (guards only). */
    Addr allocateRaw(std::size_t bytes);

    /**
     * Free a block: every payload byte becomes a security byte (clean
     * before use) and the block enters quarantine.
     */
    void free(Addr addr);

    /**
     * Grow/shrink a live block, like realloc: allocate a new block of
     * @p new_count elements (or @p new_count bytes for raw blocks),
     * copy the common payload prefix, and free the old block into the
     * quarantine. The copy models the instrumented library memcpy of
     * Section 6.2: it walks only data bytes, so no exception fires.
     * Returns the new address; the old one becomes a stale pointer.
     */
    Addr reallocate(Addr addr, std::size_t new_count);

    /** True if @p addr is inside a live allocation's payload. */
    bool isLive(Addr addr) const;

    const HeapStats &stats() const { return stats_; }
    const HeapParams &params() const { return params_; }
    Machine &machine() { return machine_; }

  private:
    struct Block
    {
        Addr payload = 0;          //!< user-visible base
        std::size_t payloadBytes = 0;
        std::size_t footprint = 0; //!< guards + payload, line rounded
        Addr blockBase = 0;        //!< start incl. front guard
        std::shared_ptr<const SecureLayout> layout; //!< null for raw
        std::size_t count = 0;
    };

    /** Find/carve space for a footprint of @p footprint bytes. */
    Addr carve(std::size_t footprint);

    /** Issue CFORMs establishing the block's security bytes. */
    void califormBlock(const Block &block, bool reused);

    /** Issue CFORMs blacklisting the whole block payload. */
    void califormFree(const Block &block);

    /** One CFORM (or functional fallback) for a single line. */
    void issueCform(Addr line_addr, std::uint64_t set_bits,
                    std::uint64_t mask);

    /** Per-line security mask the block's layout induces. */
    std::vector<std::pair<Addr, SecurityMask>>
    blockSecurityMasks(const Block &block) const;

    Machine &machine_;
    HeapParams params_;
    Addr bump_;
    HeapStats stats_;
    std::unordered_map<Addr, Block> live_;
    std::deque<Block> quarantine_;
    std::unordered_map<std::size_t, std::vector<Block>> freeLists_;
};

} // namespace califorms

#endif // CALIFORMS_ALLOC_HEAP_HH
