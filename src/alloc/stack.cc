#include "alloc/stack.hh"

#include <stdexcept>

namespace califorms
{

StackAllocator::StackAllocator(Machine &machine, StackParams params)
    : machine_(machine), params_(params), sp_(params.stackTop)
{
}

void
StackAllocator::enterFrame()
{
    frames_.push_back(Frame{sp_, {}});
}

Addr
StackAllocator::allocateLocal(std::shared_ptr<const SecureLayout> layout)
{
    if (frames_.empty())
        throw std::logic_error("allocateLocal: no open frame");
    if (!layout)
        throw std::invalid_argument("allocateLocal: null layout");

    const std::size_t align = std::max<std::size_t>(layout->align, 8);
    sp_ -= layout->size;
    sp_ &= ~static_cast<Addr>(align - 1); // stack grows down, align down

    Local local{sp_, layout};
    califormLocal(local, true);
    frames_.back().locals.push_back(local);
    return local.addr;
}

void
StackAllocator::leaveFrame()
{
    if (frames_.empty())
        throw std::logic_error("leaveFrame: no open frame");
    Frame frame = std::move(frames_.back());
    frames_.pop_back();
    // Dirty before use: unset on deallocation, newest locals first.
    for (auto it = frame.locals.rbegin(); it != frame.locals.rend(); ++it)
        califormLocal(*it, false);
    sp_ = frame.sp;
}

void
StackAllocator::califormLocal(const Local &local, bool set)
{
    if (!params_.useCform)
        return;
    // Gather the per-line masks the layout's spans induce.
    const Addr first_line = lineBase(local.addr);
    const Addr last_line = lineBase(local.addr + local.layout->size - 1);
    for (Addr la = first_line; la <= last_line; la += lineBytes) {
        SecurityMask mask = 0;
        for (const auto &span : local.layout->securityBytes) {
            for (std::size_t i = 0; i < span.size; ++i) {
                const Addr b = local.addr + span.offset + i;
                if (lineBase(b) == la)
                    mask |= 1ull << lineOffset(b);
            }
        }
        if (mask == 0)
            continue;
        CformOp op;
        op.lineAddr = la;
        op.setBits = set ? mask : 0;
        op.mask = mask;
        machine_.cform(op);
        ++cforms_;
    }
}

} // namespace califorms
