/**
 * @file stack.hh
 * Califorms-aware stack frame allocator (Section 6.1).
 *
 * The stack follows the dirty-before-use discipline: security bytes are
 * set when a frame's locals are created and unset when the frame is torn
 * down, since use-after-return attacks are rare enough that the cheaper
 * scheme suffices. Frames nest strictly; popping a frame un-califorms
 * every object it owns.
 */

#ifndef CALIFORMS_ALLOC_STACK_HH
#define CALIFORMS_ALLOC_STACK_HH

#include <memory>
#include <vector>

#include "layout/policy.hh"
#include "sim/machine.hh"

namespace califorms
{

struct StackParams
{
    Addr stackTop = 0x7fff00000000ull; //!< stack grows down from here
    bool useCform = true;
};

class StackAllocator
{
  public:
    StackAllocator(Machine &machine, StackParams params = StackParams{});

    /** Open a new frame (function entry). */
    void enterFrame();

    /**
     * Allocate a local laid out per @p layout in the current frame and
     * caliform its security bytes (dirty before use).
     */
    Addr allocateLocal(std::shared_ptr<const SecureLayout> layout);

    /** Close the current frame, un-califorming every local. */
    void leaveFrame();

    std::size_t depth() const { return frames_.size(); }
    std::uint64_t cformsIssued() const { return cforms_; }

  private:
    struct Local
    {
        Addr addr;
        std::shared_ptr<const SecureLayout> layout;
    };

    struct Frame
    {
        Addr sp; //!< stack pointer at frame entry (for restore)
        std::vector<Local> locals;
    };

    void califormLocal(const Local &local, bool set);

    Machine &machine_;
    StackParams params_;
    Addr sp_;
    std::uint64_t cforms_ = 0;
    std::vector<Frame> frames_;
};

} // namespace califorms

#endif // CALIFORMS_ALLOC_STACK_HH
