#include "alloc/secure_mem.hh"

namespace califorms
{

void
secureMemcpy(Machine &machine, Addr dst, Addr src, std::size_t n)
{
    WhitelistGuard guard(machine.exceptions());
    std::size_t i = 0;
    while (i < n) {
        // Copy in the widest chunks that stay line-contained on both
        // sides, like an optimized memcpy would.
        std::size_t chunk = std::min<std::size_t>(8, n - i);
        while (chunk > 1 &&
               (lineOffset(src + i) + chunk > lineBytes ||
                lineOffset(dst + i) + chunk > lineBytes))
            --chunk;
        const std::uint64_t v =
            machine.load(src + i, static_cast<unsigned>(chunk));
        machine.store(dst + i, static_cast<unsigned>(chunk), v);
        i += chunk;
    }
}

void
secureMemset(Machine &machine, Addr dst, std::uint8_t value, std::size_t n)
{
    WhitelistGuard guard(machine.exceptions());
    std::uint64_t pattern = 0;
    for (unsigned b = 0; b < 8; ++b)
        pattern |= static_cast<std::uint64_t>(value) << (8 * b);
    std::size_t i = 0;
    while (i < n) {
        std::size_t chunk = std::min<std::size_t>(8, n - i);
        while (chunk > 1 && lineOffset(dst + i) + chunk > lineBytes)
            --chunk;
        machine.store(dst + i, static_cast<unsigned>(chunk), pattern);
        i += chunk;
    }
}

int
secureMemcmp(Machine &machine, Addr a, Addr b, std::size_t n)
{
    WhitelistGuard guard(machine.exceptions());
    for (std::size_t i = 0; i < n; ++i) {
        const auto va = static_cast<std::uint8_t>(machine.load(a + i, 1));
        const auto vb = static_cast<std::uint8_t>(machine.load(b + i, 1));
        if (va != vb)
            return va < vb ? -1 : 1;
    }
    return 0;
}

} // namespace califorms
