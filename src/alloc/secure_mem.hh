/**
 * @file secure_mem.hh
 * Whitelisted bulk memory routines (Sections 4.2 and 6.3).
 *
 * memcpy-style functions legitimately sweep entire objects — including
 * their security bytes — so the paper whitelists them by raising the
 * exception mask around their bodies. These helpers model that: they
 * run the byte loop under a WhitelistGuard, so any security byte touch
 * is recorded as suppressed instead of delivered. Blacklisted source
 * bytes read zero, and stores to blacklisted destination bytes write
 * data without disturbing the metadata, exactly like a struct-to-struct
 * assignment on real califormed memory.
 */

#ifndef CALIFORMS_ALLOC_SECURE_MEM_HH
#define CALIFORMS_ALLOC_SECURE_MEM_HH

#include "sim/machine.hh"

namespace califorms
{

/** Whitelisted memcpy: byte-wise copy of [src, src+n) to dst. */
void secureMemcpy(Machine &machine, Addr dst, Addr src, std::size_t n);

/** Whitelisted memset: fill [dst, dst+n) with @p value. */
void secureMemset(Machine &machine, Addr dst, std::uint8_t value,
                  std::size_t n);

/** Whitelisted memcmp: -1/0/1 comparison of two ranges. */
int secureMemcmp(Machine &machine, Addr a, Addr b, std::size_t n);

} // namespace califorms

#endif // CALIFORMS_ALLOC_SECURE_MEM_HH
