#include "sim/stats_dump.hh"

#include <iomanip>
#include <sstream>

namespace califorms
{

namespace
{

void
cacheEntries(std::vector<StatEntry> &out, const std::string &prefix,
             const CacheStats &s)
{
    out.push_back({prefix + ".hits", static_cast<double>(s.hits),
                   "hits"});
    out.push_back({prefix + ".misses", static_cast<double>(s.misses),
                   "misses"});
    out.push_back({prefix + ".missRate", s.missRate(), "miss rate"});
    out.push_back({prefix + ".evictions",
                   static_cast<double>(s.evictions), "evictions"});
    out.push_back({prefix + ".dirtyEvictions",
                   static_cast<double>(s.dirtyEvictions),
                   "dirty evictions"});
}

} // namespace

std::vector<StatEntry>
memStatEntries(const MemSysStats &mem, StatSchema schema)
{
    std::vector<StatEntry> out;
    cacheEntries(out, "l1d", mem.l1);
    cacheEntries(out, "l2", mem.l2);
    cacheEntries(out, "l3", mem.l3);
    out.push_back({"dram.accesses",
                   static_cast<double>(mem.dramAccesses),
                   "lines moved to/from DRAM"});
    out.push_back({"califorms.spills", static_cast<double>(mem.spills),
                   "bitvector->sentinel conversions"});
    out.push_back({"califorms.fills", static_cast<double>(mem.fills),
                   "sentinel->bitvector conversions"});
    out.push_back({"califorms.cformOps",
                   static_cast<double>(mem.cformOps),
                   "CFORM instructions executed"});
    out.push_back({"califorms.securityFaults",
                   static_cast<double>(mem.securityFaults),
                   "accesses that touched security bytes"});
    if (schema == StatSchema::V1)
        return out;
    out.push_back({"califorms.fillConvCycles",
                   static_cast<double>(mem.fillConvCycles),
                   "latency charged for fill conversions"});
    out.push_back({"califorms.spillConvCycles",
                   static_cast<double>(mem.spillConvCycles),
                   "latency charged for spill conversions"});
    out.push_back({"wbq.hits", static_cast<double>(mem.wbHits),
                   "L1 misses served from the write-back queue"});
    out.push_back({"wbq.enqueued", static_cast<double>(mem.wbEnqueued),
                   "dirty evictions queued"});
    out.push_back({"wbq.forcedDrains",
                   static_cast<double>(mem.wbForcedDrains),
                   "write-backs that found the queue full"});
    out.push_back({"wbq.peakOccupancy",
                   static_cast<double>(mem.wbPeakOccupancy),
                   "write-back queue high-water mark"});
    return out;
}

std::vector<StatEntry>
coherenceStatEntries(const MemSysStats &mem)
{
    return {
        {"coherence.invalidations",
         static_cast<double>(mem.invalidationsSent),
         "invalidation probes sent to remote L1s"},
        {"coherence.dirtyRecalls",
         static_cast<double>(mem.dirtyRecalls),
         "modified lines recalled from a remote L1"},
        {"coherence.convUnderInval",
         static_cast<double>(mem.convUnderInval),
         "califormed lines encoded while surrendered"},
        {"coherence.convCycles",
         static_cast<double>(mem.coherenceConvCycles),
         "latency charged for conversions under coherence"},
    };
}

std::vector<StatEntry>
memlpStatEntries(const MemSysStats &mem, const MemSysParams &params)
{
    std::vector<StatEntry> out;
    if (params.mshrEntries) {
        out.push_back({"mshr.allocations",
                       static_cast<double>(mem.mshrAllocations),
                       "primary misses that took an MSHR entry"});
        out.push_back({"mshr.coalesced",
                       static_cast<double>(mem.mshrCoalesced),
                       "secondary misses merged into a live entry"});
        out.push_back({"mshr.stallCycles",
                       static_cast<double>(mem.mshrStallCycles),
                       "cycles stalled with every MSHR live"});
        out.push_back({"mshr.peakOccupancy",
                       static_cast<double>(mem.mshrPeakOccupancy),
                       "MSHR table high-water mark (max over cores)"});
    }
    if (params.dramBanks) {
        out.push_back({"dram.rowHits",
                       static_cast<double>(mem.dramRowHits),
                       "DRAM accesses that hit the open row"});
        out.push_back({"dram.rowMisses",
                       static_cast<double>(mem.dramRowMisses),
                       "DRAM accesses to a bank with no open row"});
        out.push_back({"dram.rowConflicts",
                       static_cast<double>(mem.dramRowConflicts),
                       "DRAM accesses that closed another row"});
        out.push_back({"dram.bankConflictCycles",
                       static_cast<double>(mem.dramBankConflictCycles),
                       "fill cycles queued behind busy banks"});
    }
    return out;
}

std::vector<StatEntry>
replStatEntries(const MemSysStats &mem, const MemSysParams &params)
{
    std::vector<StatEntry> out;
    if (!replPolicyActive(params))
        return out;
    out.push_back({"repl.l1d.cformEvictions",
                   static_cast<double>(mem.l1.cformEvictions),
                   "L1 evictions whose victim carried security bytes"});
    out.push_back({"repl.l2.cformEvictions",
                   static_cast<double>(mem.l2.cformEvictions),
                   "L2 evictions whose victim carried security bytes"});
    out.push_back({"repl.l3.cformEvictions",
                   static_cast<double>(mem.l3.cformEvictions),
                   "LLC evictions whose victim carried security bytes"});
    const double evictions = static_cast<double>(
        mem.l1.evictions + mem.l2.evictions + mem.l3.evictions);
    const double cform = static_cast<double>(mem.l1.cformEvictions +
                                             mem.l2.cformEvictions +
                                             mem.l3.cformEvictions);
    out.push_back({"repl.cformVictimRate",
                   evictions ? cform / evictions : 0.0,
                   "fraction of all evictions with califormed victims"});
    return out;
}

namespace
{

void
line(std::ostringstream &os, const std::string &name, double value,
     const char *desc)
{
    os << std::left << std::setw(34) << name << std::setw(16) << value
       << "# " << desc << "\n";
}

} // namespace

std::string
dumpStats(const Machine &machine)
{
    std::ostringstream os;
    os << "---------- califorms stats ----------\n";
    line(os, "core.cycles", static_cast<double>(machine.cycles()),
         "simulated cycles (incl. bandwidth roofline)");
    line(os, "core.instructions",
         static_cast<double>(machine.instructions()),
         "retired micro-ops");
    const double ipc =
        machine.cycles()
            ? static_cast<double>(machine.instructions()) /
                  static_cast<double>(machine.cycles())
            : 0.0;
    line(os, "core.ipc", ipc, "instructions per cycle");
    for (const StatEntry &e : memStatEntries(machine.memStats()))
        line(os, e.name, e.value, e.desc);
    // coherence.* only exists on machines that can exercise it, so
    // every historical single-core dump stays byte-identical.
    if (machine.coreCount() > 1 ||
        machine.params().mem.coherence != CoherenceKind::None)
        for (const StatEntry &e :
             coherenceStatEntries(machine.memStats()))
            line(os, e.name, e.value, e.desc);
    // mshr.* / dram row-buffer stats likewise only exist on machines
    // configured with the non-blocking timing model.
    for (const StatEntry &e :
         memlpStatEntries(machine.memStats(), machine.params().mem))
        line(os, e.name, e.value, e.desc);
    // repl.* stats likewise only exist when some level runs a
    // non-default replacement policy.
    for (const StatEntry &e :
         replStatEntries(machine.memStats(), machine.params().mem))
        line(os, e.name, e.value, e.desc);
    line(os, "exceptions.delivered",
         static_cast<double>(machine.exceptions().deliveredCount()),
         "privileged exceptions delivered");
    line(os, "exceptions.suppressed",
         static_cast<double>(machine.exceptions().suppressedCount()),
         "exceptions suppressed by whitelist windows");
    os << "-------------------------------------\n";
    return os.str();
}

} // namespace califorms
