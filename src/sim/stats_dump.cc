#include "sim/stats_dump.hh"

#include <iomanip>
#include <sstream>

namespace califorms
{

namespace
{

void
line(std::ostringstream &os, const std::string &name, double value,
     const char *desc)
{
    os << std::left << std::setw(34) << name << std::setw(16) << value
       << "# " << desc << "\n";
}

void
cacheLines(std::ostringstream &os, const std::string &prefix,
           const CacheStats &s)
{
    line(os, prefix + ".hits", static_cast<double>(s.hits), "hits");
    line(os, prefix + ".misses", static_cast<double>(s.misses),
         "misses");
    line(os, prefix + ".missRate", s.missRate(), "miss rate");
    line(os, prefix + ".evictions", static_cast<double>(s.evictions),
         "evictions");
    line(os, prefix + ".dirtyEvictions",
         static_cast<double>(s.dirtyEvictions), "dirty evictions");
}

} // namespace

std::string
dumpStats(const Machine &machine)
{
    std::ostringstream os;
    os << "---------- califorms stats ----------\n";
    const auto mem = machine.memStats();
    line(os, "core.cycles", static_cast<double>(machine.cycles()),
         "simulated cycles (incl. bandwidth roofline)");
    line(os, "core.instructions",
         static_cast<double>(machine.instructions()),
         "retired micro-ops");
    const double ipc =
        machine.cycles()
            ? static_cast<double>(machine.instructions()) /
                  static_cast<double>(machine.cycles())
            : 0.0;
    line(os, "core.ipc", ipc, "instructions per cycle");
    cacheLines(os, "l1d", mem.l1);
    cacheLines(os, "l2", mem.l2);
    cacheLines(os, "l3", mem.l3);
    line(os, "dram.accesses", static_cast<double>(mem.dramAccesses),
         "lines moved to/from DRAM");
    line(os, "califorms.spills", static_cast<double>(mem.spills),
         "bitvector->sentinel conversions");
    line(os, "califorms.fills", static_cast<double>(mem.fills),
         "sentinel->bitvector conversions");
    line(os, "califorms.cformOps", static_cast<double>(mem.cformOps),
         "CFORM instructions executed");
    line(os, "califorms.securityFaults",
         static_cast<double>(mem.securityFaults),
         "accesses that touched security bytes");
    line(os, "exceptions.delivered",
         static_cast<double>(machine.exceptions().deliveredCount()),
         "privileged exceptions delivered");
    line(os, "exceptions.suppressed",
         static_cast<double>(machine.exceptions().suppressedCount()),
         "exceptions suppressed by whitelist windows");
    os << "-------------------------------------\n";
    return os.str();
}

} // namespace califorms
