#include "sim/lsq.hh"

#include <stdexcept>

namespace califorms
{

bool
LoadStoreQueue::overlaps(const Entry &e, Addr addr, unsigned size)
{
    if (e.isCform) {
        const Addr la = lineBase(addr);
        const Addr lb = lineBase(addr + size - 1);
        for (Addr l = la; l <= lb; l += lineBytes) {
            if (l != e.cform.lineAddr)
                continue;
            const unsigned lo = l == la ? lineOffset(addr) : 0;
            const unsigned hi = l == lb
                                    ? lineOffset(addr + size - 1) + 1
                                    : static_cast<unsigned>(lineBytes);
            if (e.cform.mask & bitRange(lo, hi - lo))
                return true;
        }
        return false;
    }
    return addr < e.addr + e.size && e.addr < addr + size;
}

LoadStoreQueue::StoreResult
LoadStoreQueue::pushStore(Addr addr, unsigned size, std::uint64_t value)
{
    if (full())
        throw std::logic_error("LSQ: push on full queue");
    StoreResult res;
    // Section 5.3: a younger store matching an in-flight CFORM is marked
    // for the Califorms exception at commit.
    for (const Entry &e : entries_)
        if (e.isCform && overlaps(e, addr, size))
            res.cformConflict = true;
    entries_.push_back(Entry{false, addr, size, value, {}});
    return res;
}

void
LoadStoreQueue::pushCform(const CformOp &op)
{
    if (full())
        throw std::logic_error("LSQ: push on full queue");
    Entry e;
    e.isCform = true;
    e.addr = op.lineAddr;
    e.size = lineBytes;
    e.cform = op;
    entries_.push_back(e);
}

LoadStoreQueue::LoadResult
LoadStoreQueue::load(Addr addr, unsigned size,
                     const ByteReader &reader) const
{
    if (size == 0 || size > 8)
        throw std::invalid_argument("LSQ load: size must be 1..8");

    LoadResult res;
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        std::uint8_t byte = 0;
        bool resolved = false;
        // Youngest-to-oldest search among older entries.
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
            if (!overlaps(*it, a, 1))
                continue;
            if (it->isCform) {
                // Never forward from CFORM: the load sees zero and is
                // marked for exception (Section 5.3).
                byte = 0;
                res.cformConflict = true;
            } else {
                byte = static_cast<std::uint8_t>(
                    (it->value >> (8 * (a - it->addr))) & 0xff);
                res.forwarded = true;
            }
            resolved = true;
            break;
        }
        if (!resolved)
            byte = reader(a);
        res.value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return res;
}

bool
LoadStoreQueue::drainOldest(
    const std::function<void(Addr, unsigned, std::uint64_t)> &commit_store,
    const std::function<void(const CformOp &)> &commit_cform)
{
    if (entries_.empty())
        return false;
    const Entry e = entries_.front();
    entries_.pop_front();
    if (e.isCform) {
        if (commit_cform)
            commit_cform(e.cform);
    } else {
        if (commit_store)
            commit_store(e.addr, e.size, e.value);
    }
    return true;
}

} // namespace califorms
