/**
 * @file memsys.hh
 * The three level cache hierarchy with Califorms support (Sections 3, 5).
 *
 * Layout of metadata through the hierarchy (Figure 1):
 *   L1D      — califorms-bitvector: natural data + 64-bit mask per line.
 *   L2, L3   — califorms-sentinel: encoded payload + 1 bit per line.
 *   DRAM     — sentinel payload, metadata bit in spare ECC (MainMemory).
 *
 * Conversions run at the L1/L2 boundary: fills decode sentinel lines
 * into the bit vector format (Algorithm 2), spills re-encode on eviction
 * (Algorithm 1). Lines without security bytes stay in the natural format
 * everywhere.
 *
 * Every load/store checks the accessed byte range against the L1 mask.
 * Touching a security byte raises the privileged Califorms exception
 * through the ExceptionUnit; loads return zero for blacklisted bytes
 * (anti speculation side channel, Section 7.2) and faulting stores do
 * not commit. While whitelisted (exception mask raised), accesses
 * proceed: loads still see zeros, stores write data bytes but leave the
 * blacklist metadata untouched — memcpy of a struct copies its payload
 * while the security byte pattern of the destination survives.
 */

#ifndef CALIFORMS_SIM_MEMSYS_HH
#define CALIFORMS_SIM_MEMSYS_HH

#include <cstdint>
#include <vector>

#include "core/cform.hh"
#include "core/line.hh"
#include "os/exception_unit.hh"
#include "sim/cache_array.hh"
#include "sim/main_memory.hh"
#include "sim/params.hh"

namespace califorms
{

/** Aggregate statistics for the hierarchy. */
struct MemSysStats
{
    CacheStats l1;
    CacheStats l2;
    CacheStats l3;
    std::uint64_t dramAccesses = 0;
    std::uint64_t spills = 0;          //!< califormed L1 evictions encoded
    std::uint64_t fills = 0;           //!< califormed L1 fills decoded
    std::uint64_t cformOps = 0;
    std::uint64_t securityFaults = 0;  //!< raised (delivered or suppressed)
};

class MemorySystem
{
  public:
    /** Result of one timed access. */
    struct AccessResult
    {
        Cycles latency = 0;  //!< load-to-use / store-commit latency
        bool faulted = false; //!< touched a security byte
        std::uint64_t value = 0; //!< loaded value (low @c size bytes)
    };

    MemorySystem(const MemSysParams &params, ExceptionUnit &exceptions);

    /** Timed load of @p size (1..8) bytes. May cross a line boundary. */
    AccessResult load(Addr addr, unsigned size);

    /**
     * Appendix B: how SIMD/vector loads interact with security bytes.
     */
    enum class SimdPolicy
    {
        /** (1) Issue precise per-element gathers: byte-exact checks,
         *  at extra latency per element. */
        PreciseGather,
        /** (2) Issue the wide load as-is and fault if *any* byte of the
         *  accessed range is a security byte — may false-positive on
         *  vectors that legitimately span padding. */
        LineException,
        /** (3) Propagate a per-byte poison mask into the register and
         *  fault only when a poisoned byte is consumed. */
        PropagateMask,
    };

    /** Result of a wide (16/32/64B) vector load. */
    struct WideAccessResult
    {
        Cycles latency = 0;
        bool faulted = false;          //!< exception raised at the load
        SecurityMask registerMask = 0; //!< PropagateMask poison bits
    };

    /**
     * Timed vector load of @p size bytes (16, 32 or 64; line aligned to
     * its own width) under the chosen Appendix B policy. Blacklisted
     * bytes always read zero.
     */
    WideAccessResult wideLoad(Addr addr, unsigned size,
                              SimdPolicy policy);

    /** Timed store of the low @p size bytes of @p value. */
    AccessResult store(Addr addr, unsigned size, std::uint64_t value);

    /**
     * Execute a CFORM instruction (Section 4.1). Store-like: allocates
     * the line at L1 on a miss unless op.nonTemporal is set, in which
     * case the line is updated in place below the L1 (footnote 3).
     */
    AccessResult cform(const CformOp &op);

    // Functional (untimed, unchecked) access for allocator bookkeeping,
    // test oracles and examples. Never raises exceptions and never
    // perturbs cache state or statistics.
    std::uint8_t peekByte(Addr addr) const;
    void pokeByte(Addr addr, std::uint8_t value);
    std::vector<std::uint8_t> peekBytes(Addr addr, std::size_t n) const;
    void pokeBytes(Addr addr, const std::uint8_t *data, std::size_t n);

    /** Security mask of the line containing @p addr, wherever it lives. */
    SecurityMask securityMask(Addr addr) const;

    /** Write every dirty line back to DRAM and drop all cache contents. */
    void flushAll();

    /** Counters with the per-level cache stats filled in. */
    MemSysStats stats() const;
    void clearStats();

    /** Lines moved to or from DRAM (reads + write-backs): the quantity
     *  the bandwidth roofline in Machine::cycles() prices. */
    std::uint64_t dramLineTraffic() const { return stats_.dramAccesses; }

    MainMemory &memory() { return memory_; }
    const MemSysParams &params() const { return params_; }

    /** Total latency of an L1 miss that hits in L2 (for reporting). */
    Cycles l2HitLatency() const;

  private:
    /** Fetch a line into L1 (miss path); returns latency spent below L1
     *  and a reference to the resident line. */
    BitVectorLine &refillL1(Addr line_addr, Cycles &latency);

    /** Look the line up in L2/L3/DRAM, filling caches along the way. */
    SentinelLine fetchBelowL1(Addr line_addr, Cycles &latency);

    /** Evict one L1 line into L2 (spill conversion). */
    void writeBackL1(Addr line_addr, const BitVectorLine &line,
                     bool dirty);
    /** Evict one L2 line into L3. */
    void writeBackL2(Addr line_addr, const SentinelLine &line, bool dirty);
    /** Evict one L3 line into DRAM. */
    void writeBackL3(Addr line_addr, const SentinelLine &line, bool dirty);

    /** Common load/store path for one line-contained segment. */
    AccessResult accessSegment(Addr addr, unsigned size, bool is_store,
                               std::uint64_t value);

    /** Functional lookup of a line's current content (no state change). */
    BitVectorLine functionalRead(Addr line_addr) const;
    /** Functional write-through of a full line to wherever it lives. */
    void functionalWrite(Addr line_addr, const BitVectorLine &line);

    MemSysParams params_;
    ExceptionUnit &exceptions_;
    CacheArray<BitVectorLine> l1_;
    CacheArray<SentinelLine> l2_;
    CacheArray<SentinelLine> l3_;
    MainMemory memory_;
    MemSysStats stats_;
};

} // namespace califorms

#endif // CALIFORMS_SIM_MEMSYS_HH
