/**
 * @file memsys.hh
 * The per-core private side of the configurable cache hierarchy with
 * Califorms support (Sections 3, 5): the L1, the dirty write-back
 * queue, and the sentinel fill/spill conversion machinery at the L1
 * boundary. Everything below the L1 — L2/LLC, DRAM, and the coherence
 * directory — lives in SharedMemory (shared_mem.hh), which one or more
 * MemorySystem instances attach to as CoherencePeers.
 *
 * Layout of metadata through the hierarchy (Figure 1):
 *   L1D      — califorms-bitvector: natural data + 64-bit mask per line.
 *   L2, LLC  — califorms-sentinel: encoded payload + 1 bit per line.
 *   DRAM     — sentinel payload, metadata bit in spare ECC (MainMemory).
 *
 * The depth below the L1 is configurable (MemSysParams::levels plus
 * per-level sizes): 1 level is L1 + DRAM, 2 adds the L2, 3 adds the LLC
 * — disabled levels are skipped entirely, in both timing and state.
 *
 * Conversions run at the L1 boundary wherever it is: fills decode
 * sentinel lines into the bit vector format (Algorithm 2), spills
 * re-encode on eviction (Algorithm 1). Lines without security bytes
 * stay in the natural format everywhere. Conversion events are counted
 * (fills/spills) and can be charged latency (fillConvLatency /
 * spillConvLatency). Under MSI coherence a dirty califormed line can
 * also be recalled by another core's access, forcing the encode during
 * the coherence action (a conversion-under-invalidation event).
 *
 * Dirty write-backs optionally pass through a bounded miss-queue
 * (wbQueueEntries): evicted dirty lines wait there, drain one entry per
 * demand miss, and an L1 miss that hits a queued line pulls it back
 * directly (a victim-buffer hit) instead of re-fetching below.
 *
 * Every load/store checks the accessed byte range against the L1 mask.
 * Touching a security byte raises the privileged Califorms exception
 * through the ExceptionUnit; loads return zero for blacklisted bytes
 * (anti speculation side channel, Section 7.2) and faulting stores do
 * not commit. While whitelisted (exception mask raised), accesses
 * proceed: loads still see zeros, stores write data bytes but leave the
 * blacklist metadata untouched — memcpy of a struct copies its payload
 * while the security byte pattern of the destination survives.
 *
 * The single-argument-pair constructor keeps the historical facade: a
 * standalone MemorySystem privately owns its SharedMemory, and the
 * combined object behaves bit-for-bit like the pre-split monolithic
 * hierarchy (same access ordering, same counters).
 */

#ifndef CALIFORMS_SIM_MEMSYS_HH
#define CALIFORMS_SIM_MEMSYS_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cform.hh"
#include "core/line.hh"
#include "os/exception_unit.hh"
#include "sim/cache_array.hh"
#include "sim/main_memory.hh"
#include "sim/mshr.hh"
#include "sim/params.hh"
#include "sim/shared_mem.hh"

namespace califorms
{

/** Aggregate statistics for the hierarchy. */
struct MemSysStats
{
    CacheStats l1;
    CacheStats l2; //!< all zero when the L2 is disabled
    CacheStats l3; //!< all zero when the LLC is disabled
    std::uint64_t dramAccesses = 0;
    std::uint64_t spills = 0;          //!< califormed L1 evictions encoded
    std::uint64_t fills = 0;           //!< califormed L1 fills decoded
    std::uint64_t cformOps = 0;
    std::uint64_t securityFaults = 0;  //!< raised (delivered or suppressed)

    // Conversion latency actually charged at the L1 boundary (cycles).
    std::uint64_t fillConvCycles = 0;
    std::uint64_t spillConvCycles = 0;

    // Dirty write-back queue (miss-queue) behaviour; all zero when
    // wbQueueEntries == 0.
    std::uint64_t wbHits = 0;          //!< L1 misses served from the queue
    std::uint64_t wbEnqueued = 0;      //!< dirty evictions queued
    std::uint64_t wbForcedDrains = 0;  //!< pushes that found the queue full
    std::uint64_t wbPeakOccupancy = 0; //!< high-water mark of the queue

    // Coherence traffic (MSI machines with more than one core; all
    // zero otherwise). Shared-side counters, like dramAccesses.
    std::uint64_t invalidationsSent = 0; //!< invalidation probes delivered
    std::uint64_t dirtyRecalls = 0;      //!< modified lines recalled
    std::uint64_t convUnderInval = 0;    //!< recalls that forced an encode
    std::uint64_t coherenceConvCycles = 0; //!< latency charged for those

    // MSHR behaviour (all zero when mem.mshr_entries == 0). Private-
    // side counters; Machine merges peakOccupancy with max, the rest
    // with sums.
    std::uint64_t mshrAllocations = 0;   //!< primary misses
    std::uint64_t mshrCoalesced = 0;     //!< secondary misses merged
    std::uint64_t mshrStallCycles = 0;   //!< waited with the table full
    std::uint64_t mshrPeakOccupancy = 0; //!< high-water mark

    // Banked DRAM row-buffer behaviour (all zero when mem.dram_banks
    // == 0). Shared-side counters, like dramAccesses.
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;
    std::uint64_t dramRowConflicts = 0;
    std::uint64_t dramBankConflictCycles = 0;
};

class MemorySystem : public CoherencePeer
{
  public:
    /** Result of one timed access. */
    struct AccessResult
    {
        Cycles latency = 0;  //!< load-to-use / store-commit latency
        bool faulted = false; //!< touched a security byte
        std::uint64_t value = 0; //!< loaded value (low @c size bytes)
    };

    /** Standalone hierarchy: owns its shared side (historical facade). */
    MemorySystem(const MemSysParams &params, ExceptionUnit &exceptions);

    /** One private side of a multi-core machine, attached to @p shared
     *  (which must outlive this object). */
    MemorySystem(const MemSysParams &params, ExceptionUnit &exceptions,
                 SharedMemory &shared);

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /** Timed load of @p size (1..8) bytes. May cross a line boundary. */
    AccessResult load(Addr addr, unsigned size);

    /**
     * Appendix B: how SIMD/vector loads interact with security bytes.
     */
    enum class SimdPolicy
    {
        /** (1) Issue precise per-element gathers: byte-exact checks,
         *  at extra latency per element. */
        PreciseGather,
        /** (2) Issue the wide load as-is and fault if *any* byte of the
         *  accessed range is a security byte — may false-positive on
         *  vectors that legitimately span padding. */
        LineException,
        /** (3) Propagate a per-byte poison mask into the register and
         *  fault only when a poisoned byte is consumed. */
        PropagateMask,
    };

    /** Result of a wide (16/32/64B) vector load. */
    struct WideAccessResult
    {
        Cycles latency = 0;
        bool faulted = false;          //!< exception raised at the load
        SecurityMask registerMask = 0; //!< PropagateMask poison bits
    };

    /**
     * Timed vector load of @p size bytes (16, 32 or 64; line aligned to
     * its own width) under the chosen Appendix B policy. Blacklisted
     * bytes always read zero.
     */
    WideAccessResult wideLoad(Addr addr, unsigned size,
                              SimdPolicy policy);

    /** Timed store of the low @p size bytes of @p value. */
    AccessResult store(Addr addr, unsigned size, std::uint64_t value);

    /**
     * Execute a CFORM instruction (Section 4.1). Store-like: allocates
     * the line at L1 on a miss unless op.nonTemporal is set, in which
     * case the line is updated in place below the L1 (footnote 3).
     */
    AccessResult cform(const CformOp &op);

    /**
     * Pull the issue clock forward to the owning core's retire clock.
     * The timed miss path places fills on the MSHR table and the
     * shared bank timeline in issue-clock time; left to itself the
     * clock advances one cycle per op, so a low-IPC phase would replay
     * against DRAM at an impossible back-to-back arrival rate and
     * overstate bank and MSHR contention. The machine calls this
     * before each op with the analytic core model's cycle count; the
     * clock never moves backwards, and this is a no-op on the untimed
     * (default) machine. Standalone MemorySystem users may skip it —
     * the op-granular clock is exact for cycle-arithmetic unit tests.
     */
    void
    syncClock(Cycles core_now)
    {
        if (timingEnabled() && core_now > now_)
            now_ = core_now;
    }

    // Functional (untimed, unchecked) access for allocator bookkeeping,
    // test oracles and examples. Never raises exceptions and never
    // perturbs cache state or statistics.
    std::uint8_t peekByte(Addr addr) const;
    void pokeByte(Addr addr, std::uint8_t value);
    std::vector<std::uint8_t> peekBytes(Addr addr, std::size_t n) const;
    void pokeBytes(Addr addr, const std::uint8_t *data, std::size_t n);

    /** Security mask of the line containing @p addr, wherever it lives. */
    SecurityMask securityMask(Addr addr) const;

    /** Functional lookup restricted to this core's private side (L1 or
     *  write-back queue); true and fills @p out when held. */
    bool peekPrivateLine(Addr line_addr, BitVectorLine &out) const;

    /** Functional in-place update of a privately held line (dirty bit
     *  preserved); false when this core does not hold it. */
    bool pokePrivateLine(Addr line_addr, const BitVectorLine &line);

    /** Write every dirty line back to DRAM and drop all cache contents
     *  (private side, then the shared levels). */
    void flushAll();

    /** Drain this core's write-back queue and spill its dirty L1 lines
     *  below, dropping all private contents; the shared levels are left
     *  untouched (Machine flushes them once after all cores). */
    void flushPrivate();

    /** Private + shared counters merged (historical single-requester
     *  view; on a multi-core machine the shared side is included
     *  whole, so prefer Machine::memStats for aggregation). */
    MemSysStats stats() const;

    /** This core's private counters only: L1, conversions, write-back
     *  queue, faults (shared-side slots left zero). */
    MemSysStats privateStats() const;

    void clearStats();

    /** Lines moved to or from DRAM (reads + write-backs): the quantity
     *  the bandwidth roofline in Machine::cycles() prices. */
    std::uint64_t dramLineTraffic() const
    {
        return shared_->dramAccesses();
    }

    MainMemory &memory() { return shared_->memory(); }
    const MemSysParams &params() const { return params_; }

    SharedMemory &sharedMemory() { return *shared_; }
    const SharedMemory &sharedMemory() const { return *shared_; }

    /** Core id assigned by the shared side (attachment order). */
    unsigned coreId() const { return coreId_; }

    /** Number of enabled cache levels below the L1 (0, 1 or 2). */
    std::size_t levelsBelowL1() const { return shared_->levelCount(); }

    /** Total latency of an L1 miss that hits in the first level below
     *  the L1 (DRAM when none is enabled; for reporting). */
    Cycles l2HitLatency() const;

    // CoherencePeer interface (called by the shared side) ------------
    Surrender surrenderLine(Addr line_addr, bool invalidate) override;
    void drainOneWriteBack() override;

  private:
    /** A dirty line waiting in the write-back queue. Entries removed
     *  from the middle (victim-buffer hits, coherence surrenders) are
     *  tombstoned (live = false) instead of erased, so the positions
     *  recorded in the address index stay valid. */
    struct WbEntry
    {
        Addr lineAddr;
        SentinelLine line;
        bool live = true;
    };

    /** Fetch a line into L1 (miss path); returns latency spent below L1
     *  and a reference to the resident line. */
    BitVectorLine &refillL1(Addr line_addr, Cycles &latency,
                            bool for_write);

    /** Look the line up in the write-back queue and the shared side
     *  (levels, then DRAM). Sets @p dirty when the returned line is the
     *  only copy (write-back queue hit or coherence dirty handoff) and
     *  must stay dirty in the L1. When @p bank_wait is non-null it
     *  receives the cycles a banked DRAM transfer queued behind a busy
     *  bank — time the caller folds into the fill's completion point
     *  rather than the charged latency. */
    SentinelLine fetchBelowL1(Addr line_addr, Cycles &latency,
                              bool &dirty, bool for_write,
                              Cycles *bank_wait = nullptr);

    /** Evict one L1 line (spill conversion + write-back queue). The
     *  conversion penalty is charged to @p latency when given. */
    void writeBackL1(Addr line_addr, const BitVectorLine &line,
                     bool dirty, Cycles *latency);

    /** Push an encoded dirty line below the L1, bypassing the queue. */
    void spillBelowNow(Addr line_addr, const SentinelLine &line);

    /** Queue a dirty encoded line (wbQueueEntries > 0 only). */
    void enqueueWriteBack(Addr line_addr, const SentinelLine &line);

    /** Common load/store path for one line-contained segment. */
    AccessResult accessSegment(Addr addr, unsigned size, bool is_store,
                               std::uint64_t value);

    /** Functional lookup of a line's current content (no state change). */
    BitVectorLine functionalRead(Addr line_addr) const;
    /** Functional write-through of a full line to wherever it lives. */
    void functionalWrite(Addr line_addr, const BitVectorLine &line);

    /** True when MSI probes must be exchanged for store hits. */
    bool coherentMulti() const { return shared_->coherent(); }

    // Write-back queue index helpers (O(1) address lookup) -----------
    /** Live queue entry for @p line_addr, or null. */
    WbEntry *wbqFind(Addr line_addr);
    const WbEntry *wbqFind(Addr line_addr) const;
    /** Remove the live entry for @p line_addr (must exist): tombstone
     *  it, unindex it, and trim dead entries off the front. */
    void wbqErase(Addr line_addr);
    /** Pop dead entries off the queue front so front() is live. */
    void wbqTrimFront();

    /**
     * True when the non-blocking timing model is active: a per-core
     * issue clock advances, misses place themselves on the MSHR/DRAM
     * timeline, and (with mem.mshr_entries == 0) misses serialize —
     * the blocking machine. False reproduces the legacy untimed paths
     * byte-for-byte.
     */
    bool timingEnabled() const
    {
        return params_.mshrEntries > 0 || params_.dramBanks > 0;
    }

    /** A timed access issues: advance this core's clock one cycle. */
    void
    noteIssue()
    {
        if (timingEnabled())
            ++now_;
    }

    /**
     * An L1 hit on a line whose fill is still outstanding is a
     * secondary miss: it coalesces into the MSHR entry and waits out
     * the remainder of the fill (which already carried any sentinel
     * fill-conversion charge — a conversion completing under the
     * MSHR). Returns the extra latency; 0 without MSHRs or when the
     * fill already completed (hit-under-miss to settled lines).
     */
    Cycles
    coalesceWait(Addr line_addr)
    {
        if (!params_.mshrEntries)
            return 0;
        const Cycles rem = mshr_.remainder(line_addr, now_);
        if (rem)
            mshr_.noteCoalesced();
        return rem;
    }

    MemSysParams params_;
    ExceptionUnit &exceptions_;
    CacheArray<BitVectorLine> l1_;
    /** Dirty write-back queue, indexed by wbqIndex_: wbqIndex_[addr]
     *  is the entry's sequence number, wbq_[seq - wbqHeadSeq_] the
     *  entry itself. wbqLive_ counts non-tombstoned entries (the
     *  occupancy every threshold and stat uses). */
    std::deque<WbEntry> wbq_;
    std::unordered_map<Addr, std::uint64_t> wbqIndex_;
    std::uint64_t wbqHeadSeq_ = 0; //!< sequence number of wbq_.front()
    std::size_t wbqLive_ = 0;
    std::unique_ptr<SharedMemory> ownedShared_; //!< standalone facade
    SharedMemory *shared_;
    unsigned coreId_ = 0;
    MshrTable mshr_;
    Cycles now_ = 0;          //!< per-core access issue clock (timed mode)
    Cycles lastMissReady_ = 0; //!< blocking mode: previous miss completion
    MemSysStats stats_;
};

} // namespace califorms

#endif // CALIFORMS_SIM_MEMSYS_HH
