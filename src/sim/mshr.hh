/**
 * @file mshr.hh
 * Miss-status holding registers: the bookkeeping that makes the miss
 * path non-blocking. The timing model is event-free — each access
 * returns its own latency and the analytic core overlaps them — so an
 * MSHR entry is simply (line address, absolute completion time) on the
 * private side's access clock. The table answers three questions:
 *
 *  - is a fill for this line still outstanding (secondary miss →
 *    coalesce: the access waits only for the remainder of the fill,
 *    which already includes any sentinel fill-conversion charged when
 *    the primary miss issued — a conversion completing under the
 *    MSHR);
 *  - are all entries live (structural stall: the new miss waits until
 *    the earliest outstanding fill retires its entry);
 *  - how full did the table get (peak occupancy).
 *
 * Entries whose completion time has passed are dead and are pruned
 * lazily; a coherence invalidation cancels the entry outright (the
 * line left the core, so nothing can coalesce with its fill anymore).
 */

#ifndef CALIFORMS_SIM_MSHR_HH
#define CALIFORMS_SIM_MSHR_HH

#include <cstdint>
#include <unordered_map>

#include "util/types.hh"

namespace califorms
{

/** MSHR behaviour counters (mshr.* stats). */
struct MshrStats
{
    std::uint64_t allocations = 0;  //!< primary misses that took an entry
    std::uint64_t coalesced = 0;    //!< secondary misses merged per line
    std::uint64_t stallCycles = 0;  //!< waited with all entries live
    std::uint64_t peakOccupancy = 0; //!< high-water mark of live entries
};

class MshrTable
{
  public:
    explicit MshrTable(unsigned capacity) : capacity_(capacity) {}

    unsigned capacity() const { return capacity_; }

    /** Live entries at time @p now (dead ones pruned as a side
     *  effect). */
    std::size_t
    occupancy(Cycles now)
    {
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->second <= now)
                it = pending_.erase(it);
            else
                ++it;
        }
        return pending_.size();
    }

    /** Remaining fill time of an outstanding entry for @p line_addr at
     *  time @p now; 0 when none is outstanding. */
    Cycles
    remainder(Addr line_addr, Cycles now) const
    {
        const auto it = pending_.find(line_addr);
        if (it == pending_.end() || it->second <= now)
            return 0;
        return it->second - now;
    }

    /** Completion time of the earliest live entry (call only when
     *  occupancy(now) > 0). */
    Cycles
    earliestReady() const
    {
        Cycles earliest = 0;
        bool first = true;
        for (const auto &[addr, ready] : pending_) {
            if (first || ready < earliest)
                earliest = ready;
            first = false;
        }
        return earliest;
    }

    /** Record a primary miss completing at @p ready_at. */
    void
    allocate(Addr line_addr, Cycles ready_at, Cycles now)
    {
        pending_[line_addr] = ready_at;
        ++stats_.allocations;
        const std::size_t live = occupancy(now);
        if (live > stats_.peakOccupancy)
            stats_.peakOccupancy = live;
    }

    /** The line left the core (coherence invalidation): cancel any
     *  outstanding fill so nothing coalesces with it afterwards. */
    void cancel(Addr line_addr) { pending_.erase(line_addr); }

    void noteCoalesced() { ++stats_.coalesced; }
    void noteStall(Cycles cycles) { stats_.stallCycles += cycles; }

    const MshrStats &stats() const { return stats_; }

    /** Reset the counters; the high-water mark restarts at the current
     *  live occupancy (outstanding fills are already "in" the new
     *  window), matching the write-back queue convention. */
    void
    clearStats(Cycles now)
    {
        stats_ = MshrStats{};
        stats_.peakOccupancy = occupancy(now);
    }

  private:
    unsigned capacity_;
    std::unordered_map<Addr, Cycles> pending_; //!< line -> completion
    MshrStats stats_;
};

} // namespace califorms

#endif // CALIFORMS_SIM_MSHR_HH
