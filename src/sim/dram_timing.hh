/**
 * @file dram_timing.hh
 * Banked open-page DRAM timing behind MainMemory. The functional
 * memory is still a flat line store; this model only decides how many
 * cycles each line transfer costs once `mem.dram_banks > 0`.
 *
 * Address mapping: global row = line_addr / dramRowBytes, bank =
 * row % banks, so consecutive rows interleave round-robin across the
 * banks (a streaming access that walks rows touches every bank before
 * it reuses one). Each bank holds one open row (open-page policy,
 * rows are never proactively closed): the service latency is the
 * row-hit latency when the open row matches, the row-miss latency on
 * a bank that has nothing open yet, and the row-conflict latency
 * (precharge + activate) when a different row is open.
 *
 * Banks are busy for their service time, so back-to-back traffic to
 * the same bank queues — the wait is counted in
 * dram.bankConflictCycles and returned separately from the service
 * latency: the requester charges only the service to the access (the
 * out-of-order window overlaps queueing with other work) but keeps
 * the wait in the fill's completion time, so bank pressure surfaces
 * as MSHR occupancy / structural stalls rather than as a per-access
 * charge multiplied by the queue depth. Write-backs and coherence
 * dirty-recalls occupy banks too (occupy()): they steal bank time
 * from later demand fetches and move the open row, but being off the
 * load critical path they do not report a wait of their own.
 */

#ifndef CALIFORMS_SIM_DRAM_TIMING_HH
#define CALIFORMS_SIM_DRAM_TIMING_HH

#include <cstdint>
#include <vector>

#include "sim/params.hh"
#include "util/types.hh"

namespace califorms
{

/** Row-buffer and bank-contention counters (dram.* stats). */
struct DramTimingStats
{
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;     //!< bank had no open row
    std::uint64_t rowConflicts = 0;  //!< another row was open
    std::uint64_t bankConflictCycles = 0; //!< demand waits on busy banks
};

class DramTiming
{
  public:
    explicit DramTiming(const MemSysParams &params);

    /** Whether banked timing is modelled (mem.dram_banks > 0). */
    bool enabled() const { return !banks_.empty(); }

    /** Timing of one demand transfer, split so the caller can charge
     *  the service and carry the queue wait in the fill lifetime. */
    struct ServiceTime
    {
        Cycles queueWait = 0; //!< cycles the bank was still busy
        Cycles service = 0;   //!< row-buffer service latency
    };

    /**
     * A demand line transfer issued at absolute time @p now: waits for
     * the bank if busy (counted in bankConflictCycles), then pays the
     * row-buffer service latency. The transfer completes at
     * now + queueWait + service. Call only when enabled().
     */
    ServiceTime access(Addr line_addr, Cycles now);

    /**
     * A non-demand line transfer (write-back drain, dirty-recall
     * deposit) at the time of the most recent demand access: occupies
     * the bank and moves its open row, counting row hit/miss/conflict
     * but reporting no wait of its own. Call only when enabled().
     */
    void occupy(Addr line_addr);

    const DramTimingStats &stats() const { return stats_; }
    void clearStats() { stats_ = DramTimingStats{}; }

  private:
    struct Bank
    {
        Cycles busyUntil = 0;
        std::uint64_t openRow = 0;
        bool opened = false; //!< any row opened since power-on
    };

    /** Service latency for @p row on @p bank, counting the row
     *  hit/miss/conflict and leaving the row open. */
    Cycles serviceLatency(Bank &bank, std::uint64_t row);

    Bank &bankFor(Addr line_addr, std::uint64_t &row);

    std::vector<Bank> banks_;
    std::size_t rowBytes_;
    Cycles rowHitLatency_;
    Cycles rowMissLatency_;
    Cycles rowConflictLatency_;
    Cycles lastTime_ = 0; //!< issue time of the latest demand access
    DramTimingStats stats_;
};

} // namespace califorms

#endif // CALIFORMS_SIM_DRAM_TIMING_HH
