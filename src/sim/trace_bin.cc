/**
 * @file trace_bin.cc
 * The binary trace serialization (see the format comment in trace.hh):
 * LEB128 varints, zigzag address deltas against a running previous
 * address, a versioned magic header carrying the op count, and the
 * format auto-detection shared by every trace consumer. The encoding
 * is canonical — every field the tag byte does not use must be zero —
 * so decode -> encode is byte-identity and corrupted bytes are
 * rejected instead of replaying differently.
 */

#include "sim/trace.hh"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace califorms
{

namespace
{

[[noreturn]] void
fail(const std::string &why)
{
    throw std::runtime_error("binary trace: " + why);
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putVarint(std::ostream &os, std::uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

std::uint64_t
getVarint(std::istream &is, const char *what)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const int byte = is.get();
        if (byte == std::char_traits<char>::eof())
            fail(std::string("truncated ") + what);
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            // The final byte of a 10-byte varint may only carry one
            // bit; anything more overflowed 64 bits.
            if (shift == 63 && (byte & 0x7e))
                fail(std::string("varint overflow in ") + what);
            // A terminal zero byte past the first position is a
            // non-minimal encoding the writer never produces; accept
            // it and decode -> encode would no longer be
            // byte-identity (the canonical-form contract).
            if (shift > 0 && byte == 0)
                fail(std::string("non-minimal varint in ") + what);
            return v;
        }
    }
    fail(std::string("varint overflow in ") + what);
}

// Tag byte layout: bits 0-1 kind, bit 2 dep/nt, bits 3-6 size-1.
constexpr std::uint8_t kKindMask = 0x03;
constexpr std::uint8_t kFlagBit = 0x04;
constexpr unsigned kSizeShift = 3;

class BinTraceWriter final : public TraceWriter
{
  public:
    BinTraceWriter(std::ostream &os, std::uint64_t op_count)
        : os_(os), count_(op_count)
    {
        os_.write(kBinTraceMagic, sizeof(kBinTraceMagic));
        os_.put(static_cast<char>(kBinTraceVersion));
        os_.put(0); // reserved
        putVarint(os_, count_);
    }

    void
    put(const TraceOp &op) override
    {
        if (written_ == count_)
            fail("op count exceeded the declared length prefix");
        switch (op.kind) {
        case TraceOp::Kind::Load:
        case TraceOp::Kind::Store: {
            if (op.size == 0 || op.size > 8)
                fail("bad access size " + std::to_string(op.size));
            std::uint8_t tag = op.kind == TraceOp::Kind::Load ? 0 : 1;
            if (op.kind == TraceOp::Kind::Load && op.dependsOnPrev)
                tag |= kFlagBit;
            tag |= static_cast<std::uint8_t>((op.size - 1)
                                             << kSizeShift);
            os_.put(static_cast<char>(tag));
            putDelta(op.addr);
            if (op.kind == TraceOp::Kind::Store)
                putVarint(os_, op.value);
            break;
        }
        case TraceOp::Kind::Cform: {
            std::uint8_t tag = 2;
            if (op.cform.nonTemporal)
                tag |= kFlagBit;
            os_.put(static_cast<char>(tag));
            putDelta(op.cform.lineAddr);
            putVarint(os_, op.cform.setBits);
            putVarint(os_, op.cform.mask);
            break;
        }
        case TraceOp::Kind::Compute:
            os_.put(3);
            putVarint(os_, op.computeOps);
            break;
        }
        ++written_;
    }

    void
    finish() override
    {
        if (written_ != count_)
            fail("wrote " + std::to_string(written_) +
                 " ops but the header declared " +
                 std::to_string(count_));
        os_.flush();
        if (!os_)
            fail("write error");
    }

  private:
    void
    putDelta(Addr addr)
    {
        putVarint(os_, zigzag(static_cast<std::int64_t>(addr) -
                              static_cast<std::int64_t>(prevAddr_)));
        prevAddr_ = addr;
    }

    std::ostream &os_;
    std::uint64_t count_;
    std::uint64_t written_ = 0;
    Addr prevAddr_ = 0;
};

class BinTraceReader final : public TraceReader
{
  public:
    BinTraceReader(std::istream &is, bool magic_consumed) : is_(is)
    {
        if (!magic_consumed) {
            char magic[sizeof(kBinTraceMagic)];
            if (!is_.read(magic, sizeof(magic)))
                fail("truncated header");
            if (std::memcmp(magic, kBinTraceMagic, sizeof(magic)) != 0)
                fail("bad magic (not a binary trace)");
        }
        const int version = is_.get();
        const int reserved = is_.get();
        if (version == std::char_traits<char>::eof() ||
            reserved == std::char_traits<char>::eof())
            fail("truncated header");
        if (version != kBinTraceVersion)
            fail("unsupported version " + std::to_string(version) +
                 " (expected " + std::to_string(kBinTraceVersion) +
                 ")");
        if (reserved != 0)
            fail("nonzero reserved header byte");
        count_ = getVarint(is_, "header op count");
    }

    bool
    next(TraceOp &op) override
    {
        if (read_ == count_) {
            // The length prefix is authoritative: bytes past the last
            // op mean corruption (or a concatenated file), never data.
            if (!tailChecked_) {
                tailChecked_ = true;
                if (is_.peek() != std::char_traits<char>::eof())
                    fail("trailing junk after " +
                         std::to_string(count_) + " ops");
            }
            return false;
        }
        const int tag = is_.get();
        if (tag == std::char_traits<char>::eof())
            fail("truncated at op " + std::to_string(read_) + " of " +
                 std::to_string(count_));
        const unsigned kind = tag & kKindMask;
        const bool flag = tag & kFlagBit;
        const unsigned size = ((tag >> kSizeShift) & 0x0f) + 1;
        if (tag & 0x80)
            fail("bad tag byte");
        switch (kind) {
        case 0:
            checkSize(size);
            op = TraceOp::load(getDelta(), size, flag);
            break;
        case 1: {
            if (flag)
                fail("bad tag byte"); // stores carry no dep flag
            checkSize(size);
            // Two stream reads: sequence them explicitly (argument
            // evaluation order is unspecified).
            const Addr addr = getDelta();
            op = TraceOp::store(addr, size,
                                getVarint(is_, "store value"));
            break;
        }
        case 2: {
            if (size != 1) // size bits must be zero for cform/compute
                fail("bad tag byte");
            CformOp cform;
            cform.lineAddr = getDelta();
            cform.setBits = getVarint(is_, "cform set bits");
            cform.mask = getVarint(is_, "cform mask");
            cform.nonTemporal = flag;
            op = TraceOp::cformOp(cform);
            break;
        }
        default: {
            if (flag || size != 1)
                fail("bad tag byte");
            const std::uint64_t ops = getVarint(is_, "compute count");
            if (ops > 0xffffffffull)
                fail("compute count overflows uint32");
            op = TraceOp::compute(static_cast<std::uint32_t>(ops));
            break;
        }
        }
        ++read_;
        return true;
    }

    /** Batch fast path: the class is final, so the per-op next()
     *  calls devirtualize into the decode loop. */
    std::size_t
    fill(TraceOp *out, std::size_t max) override
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

  private:
    void
    checkSize(unsigned size) const
    {
        if (size > 8)
            fail("bad access size " + std::to_string(size));
    }

    Addr
    getDelta()
    {
        const std::int64_t delta = unzigzag(
            getVarint(is_, "address delta"));
        prevAddr_ = static_cast<Addr>(
            static_cast<std::int64_t>(prevAddr_) + delta);
        return prevAddr_;
    }

    std::istream &is_;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    bool tailChecked_ = false;
    Addr prevAddr_ = 0;
};

} // namespace

void
writeTraceBinary(std::ostream &os, const Trace &trace)
{
    BinTraceWriter writer(os, trace.size());
    for (const TraceOp &op : trace)
        writer.put(op);
    writer.finish();
}

Trace
readTraceBinary(std::istream &is)
{
    BinTraceReader reader(is, false);
    Trace trace;
    TraceOp op;
    while (reader.next(op))
        trace.push_back(op);
    return trace;
}

std::unique_ptr<TraceReader>
openTraceReader(std::istream &is, TraceFormat format)
{
    if (format == TraceFormat::Binary)
        return std::make_unique<BinTraceReader>(is, false);
    return detail::makeTextReader(is, {});
}

std::unique_ptr<TraceReader>
openTraceReader(std::istream &is)
{
    // Sniff the magic byte by byte, stopping at the first mismatch so
    // a short text trace is not over-consumed; whatever was read is
    // carried into the text parser.
    std::string head;
    char c;
    while (head.size() < sizeof(kBinTraceMagic) && is.get(c)) {
        head += c;
        if (c != kBinTraceMagic[head.size() - 1])
            break;
    }
    if (head.size() == sizeof(kBinTraceMagic) &&
        std::memcmp(head.data(), kBinTraceMagic, head.size()) == 0)
        return std::make_unique<BinTraceReader>(is, true);
    return detail::makeTextReader(is, std::move(head));
}

std::unique_ptr<TraceWriter>
makeTraceWriter(std::ostream &os, TraceFormat format,
                std::uint64_t op_count)
{
    if (format == TraceFormat::Binary)
        return std::make_unique<BinTraceWriter>(os, op_count);
    return detail::makeTextWriter(os);
}

} // namespace califorms
