#include "sim/shared_mem.hh"

#include <stdexcept>

#include "sim/memsys.hh"

namespace califorms
{

SharedMemory::SharedMemory(const MemSysParams &params)
    : params_(params), dram_(params)
{
    if (params.levels < 1 || params.levels > 3)
        throw std::invalid_argument("SharedMemory: levels must be 1..3");
    if (params.levels >= 2 && params.l2Size)
        below_.push_back(Level{
            CacheArray<SentinelLine>(params.l2Size, params.l2Ways,
                                     resolvedReplPolicy(params, 2)),
            params.l2Latency, 2});
    if (params.levels >= 3 && params.l3Size)
        below_.push_back(Level{
            CacheArray<SentinelLine>(params.l3Size, params.l3Ways,
                                     resolvedReplPolicy(params, 3)),
            params.l3Latency, 3});
}

unsigned
SharedMemory::attachPeer(CoherencePeer &peer)
{
    if (peers_.size() >= 32)
        throw std::invalid_argument(
            "SharedMemory: at most 32 cores (directory bitmask width)");
    peers_.push_back(&peer);
    return static_cast<unsigned>(peers_.size() - 1);
}

Cycles
SharedMemory::firstLevelLatency() const
{
    if (below_.empty())
        return params_.dramLatency;
    return below_.front().latency + params_.extraL2L3Latency;
}

bool
SharedMemory::probeHolders(Addr line_addr, unsigned core, bool for_write,
                           Cycles &latency, SentinelLine &recalled)
{
    auto it = directory_.find(line_addr);
    if (it == directory_.end())
        return false;
    DirEntry &d = it->second;
    bool have = false;

    auto recall = [&](const CoherencePeer::Surrender &s) {
        ++dirtyRecalls_;
        // The remote L1 must be probed for its data: one L1 access.
        latency += params_.l1Latency;
        if (s.converted) {
            // Conversion under invalidation: the victim had to encode
            // a live califormed line during the coherence action, and
            // the requester waits for it.
            ++convUnderInval_;
            coherenceConvCycles_ += params_.spillConvLatency;
            latency += params_.spillConvLatency;
        }
        recalled = s.line;
        have = true;
    };

    if (for_write) {
        // Invalidate every other holder, in core order (deterministic).
        const std::uint32_t others = d.sharers & ~(1u << core);
        for (unsigned c = 0; c < peers_.size(); ++c) {
            if (!(others & (1u << c)))
                continue;
            ++invalidationsSent_;
            const auto s = peers_[c]->surrenderLine(line_addr, true);
            d.sharers &= ~(1u << c);
            if (d.owner == static_cast<int>(c))
                d.owner = -1;
            if (s.dirty)
                recall(s);
        }
    } else if (d.owner >= 0 && d.owner != static_cast<int>(core)) {
        // Read of a modified line: downgrade only the owner; plain
        // sharers are already compatible with another reader.
        const unsigned c = static_cast<unsigned>(d.owner);
        const auto s = peers_[c]->surrenderLine(line_addr, false);
        d.owner = -1;
        if (!s.retained)
            d.sharers &= ~(1u << c);
        if (s.dirty)
            recall(s);
    }

    if (d.sharers == 0 && d.owner < 0)
        directory_.erase(it);
    return have;
}

SharedMemory::FetchResult
SharedMemory::fetchLine(Addr line_addr, Cycles &latency, unsigned core,
                        bool for_write, Cycles issue_time)
{
    FetchResult out;
    const Cycles entry_latency = latency;

    if (coherent()) {
        SentinelLine recalled;
        if (probeHolders(line_addr, core, for_write, latency, recalled)) {
            if (for_write) {
                // The recall is the only up-to-date copy; hand it
                // straight to the requester, which must keep it dirty.
                out.line = recalled;
                out.dirtyHandoff = true;
                DirEntry &d = directory_[line_addr];
                d.sharers = 1u << core;
                d.owner = static_cast<int>(core);
                return out;
            }
            // Read recall: deposit the dirty data into the shared side
            // so the downgraded owner and the requester can both hold
            // clean copies that match the hierarchy below them.
            writeBack(line_addr, recalled);
        }
    }

    std::size_t hit = below_.size();
    for (std::size_t k = 0; k < below_.size(); ++k) {
        latency += below_[k].latency + params_.extraL2L3Latency;
        if (SentinelLine *p = below_[k].array.access(line_addr, false)) {
            out.line = *p;
            hit = k;
            break;
        }
    }
    if (hit == below_.size()) {
        if (dram_.enabled()) {
            // Place the access on the bank timeline at the requester's
            // clock plus whatever the probe/level walk already cost.
            // Only the service is charged; the queue wait rides in the
            // fill completion time (FetchResult::bankQueueWait).
            const DramTiming::ServiceTime t = dram_.access(
                line_addr, issue_time + (latency - entry_latency));
            latency += t.service;
            out.bankQueueWait = t.queueWait;
        } else {
            latency += params_.dramLatency;
        }
        ++dramAccesses_;
        out.line = memory_.readLine(line_addr);
        // The long DRAM service is the requester's write-back drain
        // window: one queued write-back rides the otherwise idle bus.
        // Short L2/LLC hits give no such slack, so eviction-heavy
        // traffic that stays on-chip genuinely pressures the queue.
        peers_[core]->drainOneWriteBack();
    }
    // Fill the levels above the hit on the way up, deepest first
    // (mostly-inclusive hierarchy).
    for (std::size_t j = hit; j-- > 0;) {
        auto ev = below_[j].array.insert(line_addr, out.line, false);
        if (ev.valid)
            writeBackLevel(j, ev);
    }

    if (coherent()) {
        DirEntry &d = directory_[line_addr];
        d.sharers |= 1u << core;
        if (for_write) {
            d.sharers = 1u << core;
            d.owner = static_cast<int>(core);
        }
    }
    return out;
}

void
SharedMemory::upgrade(unsigned core, Addr line_addr, Cycles &latency)
{
    if (!coherent())
        return;
    {
        const auto it = directory_.find(line_addr);
        if (it != directory_.end() &&
            it->second.owner == static_cast<int>(core))
            return; // already the modified owner: nothing to do
    }
    SentinelLine recalled;
    if (probeHolders(line_addr, core, /*for_write=*/true, latency,
                     recalled)) {
        // A dirty copy elsewhere should be impossible while this core
        // holds the line; deposit it below rather than lose data. The
        // upgrading core's own (newer) copy overwrites it on eviction.
        writeBack(line_addr, recalled);
    }
    DirEntry &d = directory_[line_addr];
    d.sharers = 1u << core;
    d.owner = static_cast<int>(core);
}

void
SharedMemory::writeBack(Addr line_addr, const SentinelLine &line)
{
    if (below_.empty()) {
        ++dramAccesses_;
        if (dram_.enabled())
            dram_.occupy(line_addr);
        memory_.writeLine(line_addr, line);
        return;
    }
    auto ev = below_[0].array.insert(line_addr, line, true);
    if (ev.valid)
        writeBackLevel(0, ev);
}

void
SharedMemory::writeBackLevel(std::size_t level,
                             const CacheArray<SentinelLine>::Evicted &ev)
{
    if (!ev.dirty)
        return;
    if (level + 1 < below_.size()) {
        auto next =
            below_[level + 1].array.insert(ev.lineAddr, ev.line, true);
        if (next.valid)
            writeBackLevel(level + 1, next);
    } else {
        ++dramAccesses_;
        if (dram_.enabled())
            dram_.occupy(ev.lineAddr);
        memory_.writeLine(ev.lineAddr, ev.line);
    }
}

void
SharedMemory::noteDropped(unsigned core, Addr line_addr)
{
    if (!coherent())
        return;
    const auto it = directory_.find(line_addr);
    if (it == directory_.end())
        return;
    DirEntry &d = it->second;
    d.sharers &= ~(1u << core);
    if (d.owner == static_cast<int>(core))
        d.owner = -1;
    if (d.sharers == 0 && d.owner < 0)
        directory_.erase(it);
}

void
SharedMemory::prefetchInto(Addr line_addr)
{
    if (below_.empty())
        return;
    if (below_[0].array.peek(line_addr))
        return;
    if (coherent()) {
        const auto it = directory_.find(line_addr);
        if (it != directory_.end() && it->second.owner >= 0)
            return; // a core owns it modified; never prefetch over it
    }
    SentinelLine pf;
    std::size_t found = below_.size();
    for (std::size_t k = 1; k < below_.size(); ++k) {
        if (SentinelLine *p = below_[k].array.peek(line_addr)) {
            pf = *p;
            found = k;
            break;
        }
    }
    if (found == below_.size()) {
        ++dramAccesses_;
        // Prefetches hide their latency but still occupy a bank (and
        // can move the open row under the demand stream).
        if (dram_.enabled())
            dram_.occupy(line_addr);
        pf = memory_.readLine(line_addr);
    }
    for (std::size_t j = found; j-- > 0;) {
        auto ev = below_[j].array.insert(line_addr, pf, false);
        if (ev.valid)
            writeBackLevel(j, ev);
    }
}

void
SharedMemory::flushLevels()
{
    // Cascade each level into the next; the deepest level writes its
    // dirty lines straight to DRAM (device traffic after the
    // measurement window — not counted, matching writeBackLevel's
    // callers' view of demand traffic only).
    for (std::size_t j = 0; j + 1 < below_.size(); ++j) {
        below_[j].array.forEachLine(
            [this, j](Addr la, SentinelLine &line, bool dirty) {
                if (!dirty)
                    return;
                auto ev = below_[j + 1].array.insert(la, line, true);
                if (ev.valid)
                    writeBackLevel(j + 1, ev);
            });
        below_[j].array.reset();
    }
    if (!below_.empty()) {
        below_.back().array.forEachLine(
            [this](Addr la, SentinelLine &line, bool dirty) {
                if (dirty)
                    memory_.writeLine(la, line);
            });
        below_.back().array.reset();
    }
}

const SentinelLine *
SharedMemory::peekLevels(Addr line_addr) const
{
    for (const Level &level : below_)
        if (const SentinelLine *p = level.array.peek(line_addr))
            return p;
    return nullptr;
}

SentinelLine
SharedMemory::functionalRead(Addr line_addr) const
{
    if (const SentinelLine *p = peekLevels(line_addr))
        return *p;
    return memory_.peekLine(line_addr);
}

void
SharedMemory::functionalWrite(Addr line_addr, const SentinelLine &line)
{
    for (Level &level : below_) {
        if (SentinelLine *p = level.array.peek(line_addr)) {
            *p = line;
            level.array.markDirty(line_addr);
            return;
        }
    }
    memory_.writeLine(line_addr, line);
}

void
SharedMemory::mergeStatsInto(MemSysStats &out) const
{
    for (const Level &level : below_)
        (level.id == 2 ? out.l2 : out.l3) = level.array.stats();
    out.dramAccesses += dramAccesses_;
    out.invalidationsSent += invalidationsSent_;
    out.dirtyRecalls += dirtyRecalls_;
    out.convUnderInval += convUnderInval_;
    out.coherenceConvCycles += coherenceConvCycles_;
    out.dramRowHits += dram_.stats().rowHits;
    out.dramRowMisses += dram_.stats().rowMisses;
    out.dramRowConflicts += dram_.stats().rowConflicts;
    out.dramBankConflictCycles += dram_.stats().bankConflictCycles;
}

void
SharedMemory::clearStats()
{
    for (Level &level : below_)
        level.array.clearStats();
    dramAccesses_ = 0;
    invalidationsSent_ = 0;
    dirtyRecalls_ = 0;
    convUnderInval_ = 0;
    coherenceConvCycles_ = 0;
    // Bank busy times and open rows are machine state, not statistics;
    // only the counters reset at a window boundary.
    dram_.clearStats();
}

} // namespace califorms
