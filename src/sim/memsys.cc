#include "sim/memsys.hh"

#include <cassert>
#include <stdexcept>

#include "core/l1_variants.hh"
#include "core/sentinel.hh"

namespace califorms
{

MemorySystem::MemorySystem(const MemSysParams &params,
                           ExceptionUnit &exceptions)
    : params_(params), exceptions_(exceptions),
      l1_(params.l1Size, params.l1Ways, resolvedReplPolicy(params, 1)),
      ownedShared_(std::make_unique<SharedMemory>(params)),
      shared_(ownedShared_.get()), mshr_(params.mshrEntries)
{
    coreId_ = shared_->attachPeer(*this);
}

MemorySystem::MemorySystem(const MemSysParams &params,
                           ExceptionUnit &exceptions, SharedMemory &shared)
    : params_(params), exceptions_(exceptions),
      l1_(params.l1Size, params.l1Ways, resolvedReplPolicy(params, 1)), shared_(&shared),
      mshr_(params.mshrEntries)
{
    coreId_ = shared_->attachPeer(*this);
}

MemorySystem::WbEntry *
MemorySystem::wbqFind(Addr line_addr)
{
    const auto it = wbqIndex_.find(line_addr);
    if (it == wbqIndex_.end())
        return nullptr;
    return &wbq_[static_cast<std::size_t>(it->second - wbqHeadSeq_)];
}

const MemorySystem::WbEntry *
MemorySystem::wbqFind(Addr line_addr) const
{
    const auto it = wbqIndex_.find(line_addr);
    if (it == wbqIndex_.end())
        return nullptr;
    return &wbq_[static_cast<std::size_t>(it->second - wbqHeadSeq_)];
}

void
MemorySystem::wbqTrimFront()
{
    while (!wbq_.empty() && !wbq_.front().live) {
        wbq_.pop_front();
        ++wbqHeadSeq_;
    }
}

void
MemorySystem::wbqErase(Addr line_addr)
{
    WbEntry *e = wbqFind(line_addr);
    assert(e && e->live && "wbqErase: entry must be live and indexed");
    e->live = false;
    wbqIndex_.erase(line_addr);
    --wbqLive_;
    wbqTrimFront();
}

Cycles
MemorySystem::l2HitLatency() const
{
    return params_.l1Latency + shared_->firstLevelLatency();
}

SentinelLine
MemorySystem::fetchBelowL1(Addr line_addr, Cycles &latency, bool &dirty,
                           bool for_write, Cycles *bank_wait)
{
    dirty = false;

    // The write-back queue sits between the L1 and the rest of the
    // hierarchy: a miss that matches a queued line pulls it straight
    // back (victim-buffer hit; the queue held the only copy, so the
    // refilled L1 line must stay dirty).
    if (const WbEntry *e = wbqFind(line_addr)) {
        latency += params_.wbHitLatency;
        ++stats_.wbHits;
        SentinelLine line = e->line;
        wbqErase(line_addr);
        dirty = true;
        return line;
    }

    const auto fetched =
        shared_->fetchLine(line_addr, latency, coreId_, for_write, now_);
    dirty = fetched.dirtyHandoff;
    if (bank_wait)
        *bank_wait = fetched.bankQueueWait;
    return fetched.line;
}

BitVectorLine &
MemorySystem::refillL1(Addr line_addr, Cycles &latency, bool for_write)
{
    // Non-blocking timing: an L1 refill needs a miss-status entry
    // before it can issue below. With MSHRs a full table is a
    // structural stall until the earliest outstanding fill retires its
    // entry; without them (but with banked DRAM timing on) the miss
    // path is blocking — each refill waits out the previous one.
    if (timingEnabled()) {
        if (params_.mshrEntries) {
            if (mshr_.occupancy(now_) >= params_.mshrEntries) {
                const Cycles ready = mshr_.earliestReady();
                const Cycles wait = ready - now_;
                mshr_.noteStall(wait);
                latency += wait;
                now_ = ready;
            }
        } else if (lastMissReady_ > now_) {
            const Cycles wait = lastMissReady_ - now_;
            latency += wait;
            now_ = lastMissReady_;
        }
    }
    const Cycles miss_entry = latency;

    bool dirty = false;
    Cycles bank_wait = 0;
    const SentinelLine below =
        fetchBelowL1(line_addr, latency, dirty, for_write, &bank_wait);
    if (below.califormed) {
        ++stats_.fills;
        stats_.fillConvCycles += params_.fillConvLatency;
        latency += params_.fillConvLatency;
    }
    BitVectorLine line = fillLine(below);

    // Appendix A variants store the L1 line in a denser format; route
    // the fill through the corresponding codec (a functional identity,
    // exercising the encode/decode path under real traffic).
    switch (params_.l1Format) {
    case L1Format::BitVector8B:
        break;
    case L1Format::Cal4B:
        line = decodeCal4B(encodeCal4B(line));
        break;
    case L1Format::Cal1B:
        line = decodeCal1B(encodeCal1B(line));
        break;
    }

    auto ev = l1_.insert(line_addr, std::move(line), dirty);
    if (ev.valid)
        writeBackL1(ev.lineAddr, ev.line, ev.dirty, &latency);

    // Simplified hardware streamer: on a demand miss, pull the next
    // line into the first level below the L1 as well. Latency is hidden
    // and demand hit/miss statistics are untouched; DRAM bandwidth is
    // still paid. Meaningless (and skipped) when the L1 talks straight
    // to DRAM, and a line waiting in the write-back queue is newer than
    // anything below, so it is never prefetched over.
    if (params_.nextLinePrefetch && shared_->levelCount()) {
        const Addr next = line_addr + lineBytes;
        if (!wbqFind(next) && !l1_.peek(next))
            shared_->prefetchInto(next);
    }

    // Everything since the entry check — the fetch below, any fill
    // conversion, and any victim spill charged to this access — plus
    // any time the DRAM transfer queued behind a busy bank (carried
    // here, not in the charged latency) — is the fill time this
    // refill's miss-status entry stays live for.
    if (timingEnabled()) {
        const Cycles fill_done = now_ + (latency - miss_entry) + bank_wait;
        if (params_.mshrEntries)
            mshr_.allocate(line_addr, fill_done, now_);
        else
            lastMissReady_ = fill_done;
    }

    BitVectorLine *resident = l1_.peek(line_addr);
    assert(resident && "line must be resident after refill");
    return *resident;
}

void
MemorySystem::writeBackL1(Addr line_addr, const BitVectorLine &line,
                          bool dirty, Cycles *latency)
{
    // A clean L1 line matches what the rest of the hierarchy already
    // holds; dropping it is safe and models a silent eviction (the
    // directory is told so its sharer tracking stays exact).
    if (!dirty) {
        shared_->noteDropped(coreId_, line_addr);
        return;
    }
    if (line.califormed()) {
        ++stats_.spills;
        stats_.spillConvCycles += params_.spillConvLatency;
        if (latency)
            *latency += params_.spillConvLatency;
    }
    const SentinelLine encoded = spillLine(line);
    if (params_.wbQueueEntries)
        enqueueWriteBack(line_addr, encoded);
    else
        spillBelowNow(line_addr, encoded);
}

void
MemorySystem::spillBelowNow(Addr line_addr, const SentinelLine &line)
{
    shared_->writeBack(line_addr, line);
    shared_->noteDropped(coreId_, line_addr);
}

void
MemorySystem::enqueueWriteBack(Addr line_addr, const SentinelLine &line)
{
    // A line can be pushed below twice without an intervening fetch
    // (the non-temporal CFORM path); the newer copy supersedes the
    // queued one.
    if (WbEntry *e = wbqFind(line_addr)) {
        e->line = line;
        return;
    }
    wbqIndex_[line_addr] = wbqHeadSeq_ + wbq_.size();
    wbq_.push_back({line_addr, line, true});
    ++wbqLive_;
    ++stats_.wbEnqueued;
    if (wbqLive_ > stats_.wbPeakOccupancy)
        stats_.wbPeakOccupancy = wbqLive_;
    if (wbqLive_ > params_.wbQueueEntries) {
        ++stats_.wbForcedDrains;
        drainOneWriteBack();
    }
}

void
MemorySystem::drainOneWriteBack()
{
    wbqTrimFront();
    if (wbq_.empty())
        return;
    WbEntry entry = std::move(wbq_.front());
    wbqIndex_.erase(entry.lineAddr);
    wbq_.pop_front();
    ++wbqHeadSeq_;
    --wbqLive_;
    spillBelowNow(entry.lineAddr, entry.line);
}

CoherencePeer::Surrender
MemorySystem::surrenderLine(Addr line_addr, bool invalidate)
{
    Surrender s;
    // An invalidated line leaves the core entirely, so a fill still
    // outstanding for it is cancelled: nothing can coalesce with it
    // afterwards (the requester's recall carries the data now).
    if (params_.mshrEntries && invalidate)
        mshr_.cancel(line_addr);
    if (BitVectorLine *line = l1_.peek(line_addr)) {
        s.hadCopy = true;
        if (l1_.dirtyAt(line_addr)) {
            s.dirty = true;
            if (line->califormed()) {
                // A live dirty califormed line must be encoded back to
                // the sentinel format during the coherence action
                // (Algorithm 1, on the remote access's critical path).
                ++stats_.spills;
                s.converted = true;
            }
            s.line = spillLine(*line);
        }
        if (invalidate) {
            BitVectorLine dropped;
            bool was_dirty = false;
            l1_.extract(line_addr, dropped, was_dirty);
        } else {
            // Downgrade: keep a clean copy; the recalled data is
            // deposited into the shared side by the caller, so the
            // retained copy matches the hierarchy below it again.
            l1_.markClean(line_addr);
            s.retained = true;
        }
        return s;
    }
    // Queue entries are dirty by construction and always leave the core
    // whole; they were encoded when evicted, so no new conversion.
    if (const WbEntry *e = wbqFind(line_addr)) {
        s.hadCopy = true;
        s.dirty = true;
        s.line = e->line;
        wbqErase(line_addr);
        return s;
    }
    return s;
}

MemorySystem::AccessResult
MemorySystem::accessSegment(Addr addr, unsigned size, bool is_store,
                            std::uint64_t value)
{
    assert(size >= 1 && size <= 8);
    const Addr la = lineBase(addr);
    const unsigned off = lineOffset(addr);
    assert(off + size <= lineBytes && "segment must not cross lines");

    noteIssue();
    AccessResult res;
    res.latency =
        params_.l1Latency + l1FormatExtraLatency(params_.l1Format);

    BitVectorLine *line = l1_.access(la, false);
    if (!line) {
        line = &refillL1(la, res.latency, is_store);
    } else {
        res.latency += coalesceWait(la);
        if (is_store && coherentMulti())
            shared_->upgrade(coreId_, la, res.latency);
    }

    const std::uint64_t range = bitRange(off, size);
    const std::uint64_t overlap = line->mask & range;
    if (overlap != 0) {
        // Precise exception: report the first security byte touched.
        ++stats_.securityFaults;
        res.faulted = true;
        CaliformsException e;
        e.faultAddr = la + findFirstOne(overlap);
        e.kind = is_store ? AccessKind::Store : AccessKind::Load;
        e.reason = is_store ? FaultReason::StoreSecurityByte
                            : FaultReason::LoadSecurityByte;
        const bool delivered = exceptions_.raise(e);
        if (is_store && delivered) {
            // The store never becomes non-speculative; it does not
            // commit (Section 5.1).
            return res;
        }
    }

    if (is_store) {
        // Whitelisted (or fault-free) store: write the data bytes. The
        // blacklist metadata is never modified by ordinary stores.
        for (unsigned i = 0; i < size; ++i)
            line->data[off + i] = static_cast<std::uint8_t>(
                (value >> (8 * i)) & 0xff);
        l1_.markDirty(la);
    } else {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<std::uint64_t>(line->data[off + i])
                 << (8 * i);
        // Security bytes are canonically zero, so the pre-determined
        // zero value of Section 5.1 falls out of the data itself.
        res.value = v;
    }
    return res;
}

MemorySystem::AccessResult
MemorySystem::load(Addr addr, unsigned size)
{
    if (size == 0 || size > 8)
        throw std::invalid_argument("load: size must be 1..8");
    const unsigned off = lineOffset(addr);
    if (off + size <= lineBytes)
        return accessSegment(addr, size, false, 0);

    // Line-crossing access: split, combine values, sum latencies.
    const unsigned first = lineBytes - off;
    AccessResult a = accessSegment(addr, first, false, 0);
    AccessResult b = accessSegment(addr + first, size - first, false, 0);
    AccessResult res;
    res.latency = a.latency + b.latency;
    res.faulted = a.faulted || b.faulted;
    res.value = a.value | (b.value << (8 * first));
    return res;
}

MemorySystem::AccessResult
MemorySystem::store(Addr addr, unsigned size, std::uint64_t value)
{
    if (size == 0 || size > 8)
        throw std::invalid_argument("store: size must be 1..8");
    const unsigned off = lineOffset(addr);
    if (off + size <= lineBytes)
        return accessSegment(addr, size, true, value);

    const unsigned first = lineBytes - off;
    AccessResult a = accessSegment(addr, first, true, value);
    AccessResult b = accessSegment(addr + first, size - first, true,
                                   value >> (8 * first));
    AccessResult res;
    res.latency = a.latency + b.latency;
    res.faulted = a.faulted || b.faulted;
    return res;
}

MemorySystem::WideAccessResult
MemorySystem::wideLoad(Addr addr, unsigned size, SimdPolicy policy)
{
    if (size != 16 && size != 32 && size != 64)
        throw std::invalid_argument("wideLoad: size must be 16/32/64");
    if (addr % size != 0)
        throw std::invalid_argument("wideLoad: unaligned vector access");

    const Addr la = lineBase(addr);
    const unsigned off = lineOffset(addr);

    noteIssue();
    WideAccessResult res;
    res.latency = params_.l1Latency;

    BitVectorLine *line = l1_.access(la, false);
    if (!line)
        line = &refillL1(la, res.latency, false);
    else
        res.latency += coalesceWait(la);

    const std::uint64_t range = bitRange(off, size);
    const std::uint64_t overlap = line->mask & range;

    switch (policy) {
    case SimdPolicy::PreciseGather:
        // One gather element per 8B lane; each lane checks precisely.
        // Model the micro-op expansion as one extra cycle per lane.
        res.latency += size / 8;
        if (overlap) {
            ++stats_.securityFaults;
            res.faulted = true;
            CaliformsException e;
            e.faultAddr = la + findFirstOne(overlap);
            e.kind = AccessKind::Load;
            e.reason = FaultReason::LoadSecurityByte;
            exceptions_.raise(e);
        }
        break;

    case SimdPolicy::LineException:
        if (overlap) {
            ++stats_.securityFaults;
            res.faulted = true;
            CaliformsException e;
            e.faultAddr = la + findFirstOne(overlap);
            e.kind = AccessKind::Load;
            e.reason = FaultReason::LoadSecurityByte;
            exceptions_.raise(e);
        }
        break;

    case SimdPolicy::PropagateMask:
        // No exception here: the poison bits travel with the register
        // (one bit per byte) and trap at first use.
        res.registerMask = overlap >> off;
        break;
    }
    return res;
}

MemorySystem::AccessResult
MemorySystem::cform(const CformOp &op)
{
    if (lineOffset(op.lineAddr) != 0)
        throw std::invalid_argument("cform: unaligned line address");
    ++stats_.cformOps;

    noteIssue();
    AccessResult res;
    res.latency = params_.l1Latency;

    if (op.nonTemporal) {
        // Non-temporal variant: update the line beneath the L1 without
        // polluting the L1 (footnote 3 of Section 6.1). If the line is
        // in the L1 it is updated in place instead.
        if (BitVectorLine *line = l1_.access(op.lineAddr, false)) {
            res.latency += coalesceWait(op.lineAddr);
            if (coherentMulti())
                shared_->upgrade(coreId_, op.lineAddr, res.latency);
            if (auto fault = checkCform(*line, op)) {
                ++stats_.securityFaults;
                res.faulted = true;
                exceptions_.raise(*fault);
                return res;
            }
            applyCform(*line, op);
            l1_.markDirty(op.lineAddr);
            return res;
        }
        bool dirty = false;
        SentinelLine below =
            fetchBelowL1(op.lineAddr, res.latency, dirty, true);
        BitVectorLine decoded = fillLine(below);
        if (auto fault = checkCform(decoded, op)) {
            ++stats_.securityFaults;
            res.faulted = true;
            exceptions_.raise(*fault);
            // fetchBelowL1 may have pulled the only up-to-date copy
            // out of the write-back queue; a faulting op must not
            // destroy it. Re-queue the untouched encoded line (no new
            // conversion happened, so no spill accounting).
            if (dirty) {
                if (params_.wbQueueEntries)
                    enqueueWriteBack(op.lineAddr, below);
                else
                    spillBelowNow(op.lineAddr, below);
            }
            return res;
        }
        applyCform(decoded, op);
        writeBackL1(op.lineAddr, decoded, true, &res.latency);
        return res;
    }

    // Regular CFORM: store-like with write-allocate (Section 4.1).
    BitVectorLine *line = l1_.access(op.lineAddr, false);
    if (!line) {
        line = &refillL1(op.lineAddr, res.latency, true);
    } else {
        res.latency += coalesceWait(op.lineAddr);
        if (coherentMulti())
            shared_->upgrade(coreId_, op.lineAddr, res.latency);
    }

    if (auto fault = checkCform(*line, op)) {
        ++stats_.securityFaults;
        res.faulted = true;
        exceptions_.raise(*fault);
        return res;
    }
    applyCform(*line, op);
    l1_.markDirty(op.lineAddr);
    return res;
}

BitVectorLine
MemorySystem::functionalRead(Addr line_addr) const
{
    if (const BitVectorLine *l1 = l1_.peek(line_addr))
        return *l1;
    if (const WbEntry *e = wbqFind(line_addr))
        return fillLine(e->line);
    return fillLine(shared_->functionalRead(line_addr));
}

void
MemorySystem::functionalWrite(Addr line_addr, const BitVectorLine &line)
{
    if (BitVectorLine *l1 = l1_.peek(line_addr)) {
        *l1 = line;
        l1_.markDirty(line_addr);
        return;
    }
    const SentinelLine encoded = spillLine(line);
    if (WbEntry *e = wbqFind(line_addr)) {
        e->line = encoded;
        return;
    }
    shared_->functionalWrite(line_addr, encoded);
}

bool
MemorySystem::peekPrivateLine(Addr line_addr, BitVectorLine &out) const
{
    if (const BitVectorLine *l1 = l1_.peek(line_addr)) {
        out = *l1;
        return true;
    }
    if (const WbEntry *e = wbqFind(line_addr)) {
        out = fillLine(e->line);
        return true;
    }
    return false;
}

bool
MemorySystem::pokePrivateLine(Addr line_addr, const BitVectorLine &line)
{
    if (BitVectorLine *l1 = l1_.peek(line_addr)) {
        *l1 = line;
        return true;
    }
    const SentinelLine encoded = spillLine(line);
    if (WbEntry *e = wbqFind(line_addr)) {
        e->line = encoded;
        return true;
    }
    return false;
}

std::uint8_t
MemorySystem::peekByte(Addr addr) const
{
    return functionalRead(lineBase(addr)).data[lineOffset(addr)];
}

void
MemorySystem::pokeByte(Addr addr, std::uint8_t value)
{
    const Addr la = lineBase(addr);
    BitVectorLine line = functionalRead(la);
    line.data[lineOffset(addr)] = value;
    functionalWrite(la, line);
}

std::vector<std::uint8_t>
MemorySystem::peekBytes(Addr addr, std::size_t n) const
{
    std::vector<std::uint8_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(peekByte(addr + i));
    return out;
}

void
MemorySystem::pokeBytes(Addr addr, const std::uint8_t *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        pokeByte(addr + i, data[i]);
}

SecurityMask
MemorySystem::securityMask(Addr addr) const
{
    return functionalRead(lineBase(addr)).mask;
}

void
MemorySystem::flushPrivate()
{
    // Queued write-backs are older than anything still resident; drain
    // them into the hierarchy first so the level sweep below sees them.
    while (wbqLive_ > 0)
        drainOneWriteBack();

    l1_.forEachLine([this](Addr la, BitVectorLine &line, bool dirty) {
        if (!dirty) {
            shared_->noteDropped(coreId_, la);
            return;
        }
        // Conversion events are counted, but no conv-cycles: nothing
        // is charged latency during a flush (same convention as the
        // uncounted DRAM writes below).
        if (line.califormed())
            ++stats_.spills;
        spillBelowNow(la, spillLine(line));
    });
    l1_.reset();
}

void
MemorySystem::flushAll()
{
    flushPrivate();
    shared_->flushLevels();
}

MemSysStats
MemorySystem::privateStats() const
{
    MemSysStats out = stats_;
    out.l1 = l1_.stats();
    out.mshrAllocations = mshr_.stats().allocations;
    out.mshrCoalesced = mshr_.stats().coalesced;
    out.mshrStallCycles = mshr_.stats().stallCycles;
    out.mshrPeakOccupancy = mshr_.stats().peakOccupancy;
    return out;
}

MemSysStats
MemorySystem::stats() const
{
    MemSysStats out = privateStats();
    shared_->mergeStatsInto(out);
    return out;
}

void
MemorySystem::clearStats()
{
    stats_ = MemSysStats{};
    // The queue's high-water mark restarts at its current occupancy:
    // whatever is queued now is already "in" the new measurement
    // window, so a window that never enqueues still reports it. The
    // MSHR table follows the same convention for fills still in
    // flight. Clocks and bank/row state are machine state, not
    // statistics; they carry across the window boundary.
    stats_.wbPeakOccupancy = wbqLive_;
    l1_.clearStats();
    mshr_.clearStats(now_);
    shared_->clearStats();
}

} // namespace califorms
