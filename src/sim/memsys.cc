#include "sim/memsys.hh"

#include <cassert>
#include <stdexcept>

#include "core/l1_variants.hh"
#include "core/sentinel.hh"

namespace califorms
{

MemorySystem::MemorySystem(const MemSysParams &params,
                           ExceptionUnit &exceptions)
    : params_(params), exceptions_(exceptions),
      l1_(params.l1Size, params.l1Ways),
      l2_(params.l2Size, params.l2Ways),
      l3_(params.l3Size, params.l3Ways)
{
}

Cycles
MemorySystem::l2HitLatency() const
{
    return params_.l1Latency + params_.l2Latency +
           params_.extraL2L3Latency;
}

SentinelLine
MemorySystem::fetchBelowL1(Addr line_addr, Cycles &latency)
{
    latency += params_.l2Latency + params_.extraL2L3Latency;
    if (SentinelLine *l2 = l2_.access(line_addr, false))
        return *l2;

    latency += params_.l3Latency + params_.extraL2L3Latency;
    SentinelLine line;
    if (SentinelLine *l3 = l3_.access(line_addr, false)) {
        line = *l3;
    } else {
        latency += params_.dramLatency;
        ++stats_.dramAccesses;
        line = memory_.readLine(line_addr);
        // Fill L3 then L2 on the way up (mostly-inclusive hierarchy).
        auto ev3 = l3_.insert(line_addr, line, false);
        if (ev3.valid)
            writeBackL3(ev3.lineAddr, ev3.line, ev3.dirty);
    }
    auto ev2 = l2_.insert(line_addr, line, false);
    if (ev2.valid)
        writeBackL2(ev2.lineAddr, ev2.line, ev2.dirty);
    return line;
}

BitVectorLine &
MemorySystem::refillL1(Addr line_addr, Cycles &latency)
{
    const SentinelLine below = fetchBelowL1(line_addr, latency);
    if (below.califormed)
        ++stats_.fills;
    BitVectorLine line = fillLine(below);

    // Appendix A variants store the L1 line in a denser format; route
    // the fill through the corresponding codec (a functional identity,
    // exercising the encode/decode path under real traffic).
    switch (params_.l1Format) {
      case L1Format::BitVector8B:
        break;
      case L1Format::Cal4B:
        line = decodeCal4B(encodeCal4B(line));
        break;
      case L1Format::Cal1B:
        line = decodeCal1B(encodeCal1B(line));
        break;
    }

    auto ev = l1_.insert(line_addr, std::move(line), false);
    if (ev.valid)
        writeBackL1(ev.lineAddr, ev.line, ev.dirty);

    // Simplified hardware streamer: on a demand miss, pull the next
    // line into the L2 as well. Latency is hidden and demand hit/miss
    // statistics are untouched; DRAM bandwidth is still paid.
    if (params_.nextLinePrefetch) {
        const Addr next = line_addr + lineBytes;
        if (!l1_.peek(next) && !l2_.peek(next)) {
            SentinelLine pf;
            if (SentinelLine *l3 = l3_.peek(next)) {
                pf = *l3;
            } else {
                ++stats_.dramAccesses;
                pf = memory_.readLine(next);
                auto ev3 = l3_.insert(next, pf, false);
                if (ev3.valid)
                    writeBackL3(ev3.lineAddr, ev3.line, ev3.dirty);
            }
            auto ev2 = l2_.insert(next, pf, false);
            if (ev2.valid)
                writeBackL2(ev2.lineAddr, ev2.line, ev2.dirty);
        }
    }

    BitVectorLine *resident = l1_.peek(line_addr);
    assert(resident && "line must be resident after refill");
    return *resident;
}

void
MemorySystem::writeBackL1(Addr line_addr, const BitVectorLine &line,
                          bool dirty)
{
    // A clean L1 line matches what L2/L3/DRAM already hold; dropping it
    // is safe and models a silent eviction.
    if (!dirty)
        return;
    if (line.califormed())
        ++stats_.spills;
    auto ev = l2_.insert(line_addr, spillLine(line), true);
    if (ev.valid)
        writeBackL2(ev.lineAddr, ev.line, ev.dirty);
}

void
MemorySystem::writeBackL2(Addr line_addr, const SentinelLine &line,
                          bool dirty)
{
    if (!dirty)
        return;
    auto ev = l3_.insert(line_addr, line, true);
    if (ev.valid)
        writeBackL3(ev.lineAddr, ev.line, ev.dirty);
}

void
MemorySystem::writeBackL3(Addr line_addr, const SentinelLine &line,
                          bool dirty)
{
    if (!dirty)
        return;
    ++stats_.dramAccesses;
    memory_.writeLine(line_addr, line);
}

MemorySystem::AccessResult
MemorySystem::accessSegment(Addr addr, unsigned size, bool is_store,
                            std::uint64_t value)
{
    assert(size >= 1 && size <= 8);
    const Addr la = lineBase(addr);
    const unsigned off = lineOffset(addr);
    assert(off + size <= lineBytes && "segment must not cross lines");

    AccessResult res;
    res.latency =
        params_.l1Latency + l1FormatExtraLatency(params_.l1Format);

    BitVectorLine *line = l1_.access(la, false);
    if (!line)
        line = &refillL1(la, res.latency);

    const std::uint64_t range = bitRange(off, size);
    const std::uint64_t overlap = line->mask & range;
    if (overlap != 0) {
        // Precise exception: report the first security byte touched.
        ++stats_.securityFaults;
        res.faulted = true;
        CaliformsException e;
        e.faultAddr = la + findFirstOne(overlap);
        e.kind = is_store ? AccessKind::Store : AccessKind::Load;
        e.reason = is_store ? FaultReason::StoreSecurityByte
                            : FaultReason::LoadSecurityByte;
        const bool delivered = exceptions_.raise(e);
        if (is_store && delivered) {
            // The store never becomes non-speculative; it does not
            // commit (Section 5.1).
            return res;
        }
    }

    if (is_store) {
        // Whitelisted (or fault-free) store: write the data bytes. The
        // blacklist metadata is never modified by ordinary stores.
        for (unsigned i = 0; i < size; ++i)
            line->data[off + i] = static_cast<std::uint8_t>(
                (value >> (8 * i)) & 0xff);
        l1_.markDirty(la);
    } else {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<std::uint64_t>(line->data[off + i])
                 << (8 * i);
        // Security bytes are canonically zero, so the pre-determined
        // zero value of Section 5.1 falls out of the data itself.
        res.value = v;
    }
    return res;
}

MemorySystem::AccessResult
MemorySystem::load(Addr addr, unsigned size)
{
    if (size == 0 || size > 8)
        throw std::invalid_argument("load: size must be 1..8");
    const unsigned off = lineOffset(addr);
    if (off + size <= lineBytes)
        return accessSegment(addr, size, false, 0);

    // Line-crossing access: split, combine values, sum latencies.
    const unsigned first = lineBytes - off;
    AccessResult a = accessSegment(addr, first, false, 0);
    AccessResult b = accessSegment(addr + first, size - first, false, 0);
    AccessResult res;
    res.latency = a.latency + b.latency;
    res.faulted = a.faulted || b.faulted;
    res.value = a.value | (b.value << (8 * first));
    return res;
}

MemorySystem::AccessResult
MemorySystem::store(Addr addr, unsigned size, std::uint64_t value)
{
    if (size == 0 || size > 8)
        throw std::invalid_argument("store: size must be 1..8");
    const unsigned off = lineOffset(addr);
    if (off + size <= lineBytes)
        return accessSegment(addr, size, true, value);

    const unsigned first = lineBytes - off;
    AccessResult a = accessSegment(addr, first, true, value);
    AccessResult b = accessSegment(addr + first, size - first, true,
                                   value >> (8 * first));
    AccessResult res;
    res.latency = a.latency + b.latency;
    res.faulted = a.faulted || b.faulted;
    return res;
}

MemorySystem::WideAccessResult
MemorySystem::wideLoad(Addr addr, unsigned size, SimdPolicy policy)
{
    if (size != 16 && size != 32 && size != 64)
        throw std::invalid_argument("wideLoad: size must be 16/32/64");
    if (addr % size != 0)
        throw std::invalid_argument("wideLoad: unaligned vector access");

    const Addr la = lineBase(addr);
    const unsigned off = lineOffset(addr);

    WideAccessResult res;
    res.latency = params_.l1Latency;

    BitVectorLine *line = l1_.access(la, false);
    if (!line)
        line = &refillL1(la, res.latency);

    const std::uint64_t range = bitRange(off, size);
    const std::uint64_t overlap = line->mask & range;

    switch (policy) {
      case SimdPolicy::PreciseGather:
        // One gather element per 8B lane; each lane checks precisely.
        // Model the micro-op expansion as one extra cycle per lane.
        res.latency += size / 8;
        if (overlap) {
            ++stats_.securityFaults;
            res.faulted = true;
            CaliformsException e;
            e.faultAddr = la + findFirstOne(overlap);
            e.kind = AccessKind::Load;
            e.reason = FaultReason::LoadSecurityByte;
            exceptions_.raise(e);
        }
        break;

      case SimdPolicy::LineException:
        if (overlap) {
            ++stats_.securityFaults;
            res.faulted = true;
            CaliformsException e;
            e.faultAddr = la + findFirstOne(overlap);
            e.kind = AccessKind::Load;
            e.reason = FaultReason::LoadSecurityByte;
            exceptions_.raise(e);
        }
        break;

      case SimdPolicy::PropagateMask:
        // No exception here: the poison bits travel with the register
        // (one bit per byte) and trap at first use.
        res.registerMask = overlap >> off;
        break;
    }
    return res;
}

MemorySystem::AccessResult
MemorySystem::cform(const CformOp &op)
{
    if (lineOffset(op.lineAddr) != 0)
        throw std::invalid_argument("cform: unaligned line address");
    ++stats_.cformOps;

    AccessResult res;
    res.latency = params_.l1Latency;

    if (op.nonTemporal) {
        // Non-temporal variant: update the line beneath the L1 without
        // polluting the L1 (footnote 3 of Section 6.1). If the line is
        // in the L1 it is updated in place instead.
        if (BitVectorLine *line = l1_.access(op.lineAddr, false)) {
            if (auto fault = checkCform(*line, op)) {
                ++stats_.securityFaults;
                res.faulted = true;
                exceptions_.raise(*fault);
                return res;
            }
            applyCform(*line, op);
            l1_.markDirty(op.lineAddr);
            return res;
        }
        SentinelLine below = fetchBelowL1(op.lineAddr, res.latency);
        BitVectorLine decoded = fillLine(below);
        if (auto fault = checkCform(decoded, op)) {
            ++stats_.securityFaults;
            res.faulted = true;
            exceptions_.raise(*fault);
            return res;
        }
        applyCform(decoded, op);
        if (decoded.califormed())
            ++stats_.spills;
        auto ev = l2_.insert(op.lineAddr, spillLine(decoded), true);
        if (ev.valid)
            writeBackL2(ev.lineAddr, ev.line, ev.dirty);
        return res;
    }

    // Regular CFORM: store-like with write-allocate (Section 4.1).
    BitVectorLine *line = l1_.access(op.lineAddr, false);
    if (!line)
        line = &refillL1(op.lineAddr, res.latency);

    if (auto fault = checkCform(*line, op)) {
        ++stats_.securityFaults;
        res.faulted = true;
        exceptions_.raise(*fault);
        return res;
    }
    applyCform(*line, op);
    l1_.markDirty(op.lineAddr);
    return res;
}

BitVectorLine
MemorySystem::functionalRead(Addr line_addr) const
{
    if (const BitVectorLine *l1 = l1_.peek(line_addr))
        return *l1;
    if (const SentinelLine *l2 = l2_.peek(line_addr))
        return fillLine(*l2);
    if (const SentinelLine *l3 = l3_.peek(line_addr))
        return fillLine(*l3);
    // Bypass the read counter? Keep it: functional reads are rare and
    // the counter tracks DRAM device traffic; use a direct read here.
    return fillLine(memory_.readLine(line_addr));
}

void
MemorySystem::functionalWrite(Addr line_addr, const BitVectorLine &line)
{
    if (BitVectorLine *l1 = l1_.peek(line_addr)) {
        *l1 = line;
        l1_.markDirty(line_addr);
        return;
    }
    const SentinelLine encoded = spillLine(line);
    if (SentinelLine *l2 = l2_.peek(line_addr)) {
        *l2 = encoded;
        l2_.markDirty(line_addr);
        return;
    }
    if (SentinelLine *l3 = l3_.peek(line_addr)) {
        *l3 = encoded;
        l3_.markDirty(line_addr);
        return;
    }
    memory_.writeLine(line_addr, encoded);
}

std::uint8_t
MemorySystem::peekByte(Addr addr) const
{
    return functionalRead(lineBase(addr)).data[lineOffset(addr)];
}

void
MemorySystem::pokeByte(Addr addr, std::uint8_t value)
{
    const Addr la = lineBase(addr);
    BitVectorLine line = functionalRead(la);
    line.data[lineOffset(addr)] = value;
    functionalWrite(la, line);
}

std::vector<std::uint8_t>
MemorySystem::peekBytes(Addr addr, std::size_t n) const
{
    std::vector<std::uint8_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(peekByte(addr + i));
    return out;
}

void
MemorySystem::pokeBytes(Addr addr, const std::uint8_t *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        pokeByte(addr + i, data[i]);
}

SecurityMask
MemorySystem::securityMask(Addr addr) const
{
    return functionalRead(lineBase(addr)).mask;
}

void
MemorySystem::flushAll()
{
    l1_.forEachLine([this](Addr la, BitVectorLine &line, bool dirty) {
        if (!dirty)
            return;
        if (line.califormed())
            ++stats_.spills;
        auto ev = l2_.insert(la, spillLine(line), true);
        if (ev.valid)
            writeBackL2(ev.lineAddr, ev.line, ev.dirty);
    });
    l1_.reset();
    l2_.forEachLine([this](Addr la, SentinelLine &line, bool dirty) {
        if (!dirty)
            return;
        auto ev = l3_.insert(la, line, true);
        if (ev.valid)
            writeBackL3(ev.lineAddr, ev.line, ev.dirty);
    });
    l2_.reset();
    l3_.forEachLine([this](Addr la, SentinelLine &line, bool dirty) {
        if (dirty)
            memory_.writeLine(la, line);
    });
    l3_.reset();
}

MemSysStats
MemorySystem::stats() const
{
    MemSysStats out = stats_;
    out.l1 = l1_.stats();
    out.l2 = l2_.stats();
    out.l3 = l3_.stats();
    return out;
}

void
MemorySystem::clearStats()
{
    stats_ = MemSysStats{};
    l1_.clearStats();
    l2_.clearStats();
    l3_.clearStats();
}

} // namespace califorms
