/**
 * @file params.hh
 * Simulated machine configuration, defaulted to Table 3: an Intel
 * Westmere-like out-of-order core at 2.27GHz with a three level cache
 * hierarchy and DDR3-1333 DRAM.
 *
 * Every field here is registered in the typed parameter registry
 * (src/config/registry.cc) under a dotted key (mem.*, core.*) with
 * bounds and documentation; add new knobs there too, or the
 * Registry/describeParams tests and the golden schema gate will not
 * know about them. The registry captures its defaults by reading
 * these structs, so the values below stay the single source of truth.
 */

#ifndef CALIFORMS_SIM_PARAMS_HH
#define CALIFORMS_SIM_PARAMS_HH

#include <cstddef>
#include <string>

#include "sim/repl/policy.hh"
#include "util/types.hh"

namespace califorms
{

/**
 * Which L1 metadata organization the data cache uses (Section 5.1 and
 * Appendix A). The format changes the L1 hit latency per Table 7 and
 * routes resident lines through the corresponding codec.
 */
enum class L1Format
{
    BitVector8B, //!< dedicated bit vector array (default, fastest hit)
    Cal4B,       //!< bit vector inside a security byte (Figure 14)
    Cal1B,       //!< bit vector in the chunk header byte (Figure 15)
};

/** Extra L1 hit cycles for a format, from the Table 7 delay overheads
 *  (+1.85%, +49.4%, +22.2% of the ~1.6ns access) on a 4-cycle L1. */
constexpr Cycles
l1FormatExtraLatency(L1Format format)
{
    switch (format) {
    case L1Format::BitVector8B:
        return 0;
    case L1Format::Cal4B:
        return 2;
    case L1Format::Cal1B:
        return 1;
    }
    return 0;
}

/**
 * Coherence protocol of the shared hierarchy below the private L1s.
 * None keeps the historical single-requester behaviour (private L1s
 * are incoherent islands; fine for one core, a modeling choice for
 * more). Msi maintains a line-granular directory over the private
 * sides: a write invalidates every other copy, a read of a modified
 * line recalls the dirty data and downgrades the owner to a clean
 * sharer — so sentinel fill/spill conversions race with coherence
 * traffic, the scenario class the paper never measured.
 */
enum class CoherenceKind
{
    None,
    Msi,
};

/** Cache hierarchy and DRAM parameters (Table 3). */
struct MemSysParams
{
    std::size_t l1Size = 32 * 1024;       //!< 32KB
    unsigned l1Ways = 8;                  //!< 8-way
    Cycles l1Latency = 4;                 //!< 4-cycle load-to-use

    std::size_t l2Size = 256 * 1024;      //!< 256KB
    unsigned l2Ways = 8;
    Cycles l2Latency = 7;

    std::size_t l3Size = 2 * 1024 * 1024; //!< 2MB (the LLC)
    unsigned l3Ways = 16;
    Cycles l3Latency = 27;

    Cycles dramLatency = 120;             //!< DDR3-1333 average load

    /** Coherence protocol over the private L1s (multi-core machines). */
    CoherenceKind coherence = CoherenceKind::None;

    /**
     * Hierarchy depth: 1 = L1 + DRAM, 2 = + L2, 3 = + L2 + LLC
     * (default, the Table 3 machine). Independently, a level whose
     * size is 0 is skipped, so levels = 3 with l2Size = 0 degenerates
     * to an L1 + LLC machine and levels = 2 with l2Size = 0 is exactly
     * the levels = 1 machine. Values outside [1, 3] are rejected by
     * MemorySystem.
     */
    unsigned levels = 3;

    /**
     * Extra L2 and L3 access latency in cycles. Figure 10 evaluates the
     * pessimistic assumption that Califorms adds one cycle to both.
     */
    Cycles extraL2L3Latency = 0;

    /**
     * Cycles charged on the critical path for the sentinel -> bit
     * vector conversion of a califormed line filled into the L1
     * (Algorithm 2). The paper overlaps the decode with the fill and
     * treats it as free (the pessimistic variant is the Figure 10 extra
     * latency), so the default is 0; raise it to study a serialized
     * decoder.
     */
    Cycles fillConvLatency = 0;

    /**
     * Cycles charged when a dirty califormed L1 line is encoded back to
     * the sentinel format on eviction (Algorithm 1). Write-backs leave
     * the critical path through the write-back buffer, so the paper's
     * default is 0; non-zero models an encoder that stalls the
     * triggering access.
     */
    Cycles spillConvLatency = 0;

    /**
     * Depth of the dirty write-back queue between the L1 and the rest
     * of the hierarchy (the miss-queue / victim-buffer path). 0 keeps
     * the legacy immediate write-back behaviour. When enabled, dirty
     * evictions wait in the queue and drain one entry per DRAM-served
     * demand miss (the long service window leaves the L1-side bus
     * idle); an L1 miss that hits a queued line pulls it back at
     * wbHitLatency, and pushing onto a full queue force-drains the
     * oldest entry.
     */
    unsigned wbQueueEntries = 0;

    /** Latency of an L1 miss served from the write-back queue. */
    Cycles wbHitLatency = 1;

    /**
     * Miss-status holding registers between the L1 and the shared
     * side. 0 keeps the legacy blocking miss path byte-for-byte (and,
     * when banked DRAM timing is enabled, serializes misses: each new
     * miss waits for the previous one to complete — the blocking
     * machine the MSHRs are measured against). N > 0 allows N misses
     * in flight: an access that lands on a line whose fill is still
     * outstanding coalesces into its MSHR (a secondary miss) and waits
     * only for the remainder of that fill; a miss that finds all N
     * entries live stalls until the earliest outstanding fill
     * completes (structural stall, mshr.stallCycles). L1 hits to
     * other lines proceed at the hit latency throughout
     * (hit-under-miss).
     */
    unsigned mshrEntries = 0;

    /**
     * Banked DRAM timing. 0 banks keeps the flat dramLatency model
     * byte-for-byte. With N banks, line_addr / dramRowBytes selects
     * the bank round-robin (consecutive rows interleave across banks)
     * and each bank keeps one open row: an access to the open row pays
     * dramRowHitLatency, to a bank with no open row
     * dramRowMissLatency, and to a bank whose open row differs
     * dramRowConflictLatency (precharge + activate). Banks are busy
     * for the service time, so same-bank traffic queues
     * (dram.bankConflictCycles) while different banks overlap —
     * including the dirty write-backs and coherence recalls that
     * share the banks with demand fetches. The queue wait extends the
     * fill's completion time (backing up the MSHR table or the
     * blocking miss path) rather than the charged access latency, so
     * a saturated bank throttles throughput without being billed once
     * per queued access.
     */
    unsigned dramBanks = 0;

    /** DRAM row-buffer (page) size per bank in bytes. */
    std::size_t dramRowBytes = 8 * 1024;

    /** Latency of a DRAM access that hits the open row. */
    Cycles dramRowHitLatency = 80;

    /** Latency of a DRAM access to a bank with no open row; defaults
     *  to the flat dramLatency so enabling banks alone stays
     *  comparable. */
    Cycles dramRowMissLatency = 120;

    /** Latency when another row is open (precharge + activate). */
    Cycles dramRowConflictLatency = 155;

    /** L1 metadata organization (Appendix A variants). */
    L1Format l1Format = L1Format::BitVector8B;

    /**
     * Victim-selection policy of every cache level (the replacement
     * laboratory, sim/repl/). Lru reproduces the historical hardwired
     * true-LRU byte for byte; the alternatives (random, dip, drrip,
     * ship) are deterministic, so campaign jobs-invariance holds for
     * any policy grid.
     */
    ReplPolicy replPolicy = ReplPolicy::Lru;

    /** Per-level overrides; Inherit (the default) follows replPolicy,
     *  so e.g. a scan-resistant LLC can sit under an LRU L1/L2. */
    ReplPolicy l2ReplPolicy = ReplPolicy::Inherit;
    ReplPolicy llcReplPolicy = ReplPolicy::Inherit;

    /**
     * Next-line prefetch into the L2 on L1 misses (a simplified model
     * of the hardware streamers real Westmere/Skylake parts have).
     * Prefetches consume DRAM bandwidth but hide their latency. Ignored
     * on a 1-level hierarchy (there is no L2 to prefetch into).
     */
    bool nextLinePrefetch = false;
};

/** The concrete policy a hierarchy level runs: the per-level override
 *  when set, the machine-wide mem.repl_policy otherwise. Level 1 is
 *  the (private) L1, 2 the L2, 3 the LLC. */
constexpr ReplPolicy
resolvedReplPolicy(const MemSysParams &params, unsigned level)
{
    const ReplPolicy over = level == 2   ? params.l2ReplPolicy
                            : level == 3 ? params.llcReplPolicy
                                         : ReplPolicy::Inherit;
    return over == ReplPolicy::Inherit ? params.replPolicy : over;
}

/** True when any level runs something other than the default Lru —
 *  the gate for the repl.* stat/report blocks, mirroring the
 *  mshr/dram convention that keeps default outputs byte-identical. */
constexpr bool
replPolicyActive(const MemSysParams &params)
{
    return resolvedReplPolicy(params, 1) != ReplPolicy::Lru ||
           resolvedReplPolicy(params, 2) != ReplPolicy::Lru ||
           resolvedReplPolicy(params, 3) != ReplPolicy::Lru;
}

/** Out-of-order core approximation parameters. */
struct CoreParams
{
    /**
     * Number of cores. Each core owns a private L1 (+ write-back queue
     * and sentinel fill/spill machinery) and its own CoreModel/LSQ; all
     * cores share the L2/LLC levels and DRAM. The parameters below
     * describe every core (the machine is homogeneous).
     */
    unsigned count = 1;
    unsigned issueWidth = 4;      //!< max ops retired per cycle
    unsigned mlp = 12;            //!< overlap factor for independent misses
    double storeMissWeight = 0.2; //!< store misses are mostly buffered
    /**
     * CFORM instructions expose more of their miss latency than plain
     * stores: they must not forward to younger loads and, without LSQ
     * support, are bracketed by memory serializing instructions
     * (Section 5.3), so the window overlaps them poorly.
     */
    double cformMissWeight = 0.3;
    /**
     * DRAM bandwidth roofline: each line moved to or from DRAM costs at
     * least this many core cycles of machine time, no matter how well
     * the OoO window hides latency. 64B at DDR3-1333 dual channel
     * (~21GB/s) on a 2.27GHz core is about 7 cycles per line.
     */
    double dramCyclesPerLine = 7.0;
};

/** Full machine configuration. */
struct MachineParams
{
    MemSysParams mem;
    CoreParams core;
};

/** Render the configuration as a Table 3 style listing. Generated
 *  from the parameter registry (every mem. and core. knob, resolved
 *  against @p params, non-defaults flagged), so the listing cannot
 *  drift from the actual knob set. */
std::string describeParams(const MachineParams &params);

} // namespace califorms

#endif // CALIFORMS_SIM_PARAMS_HH
