#include "sim/main_memory.hh"

#include <stdexcept>

namespace califorms
{

SentinelLine
MainMemory::readLine(Addr line_addr)
{
    if (lineOffset(line_addr) != 0)
        throw std::invalid_argument("MainMemory: unaligned line read");
    ++reads_;
    auto it = lines_.find(line_addr);
    return it != lines_.end() ? it->second : SentinelLine{};
}

SentinelLine
MainMemory::peekLine(Addr line_addr) const
{
    if (lineOffset(line_addr) != 0)
        throw std::invalid_argument("MainMemory: unaligned line peek");
    auto it = lines_.find(line_addr);
    return it != lines_.end() ? it->second : SentinelLine{};
}

void
MainMemory::writeLine(Addr line_addr, const SentinelLine &line)
{
    if (lineOffset(line_addr) != 0)
        throw std::invalid_argument("MainMemory: unaligned line write");
    ++writes_;
    lines_[line_addr] = line;
}

std::size_t
MainMemory::califormedLines() const
{
    std::size_t n = 0;
    for (const auto &[addr, line] : lines_)
        if (line.califormed)
            ++n;
    return n;
}

} // namespace califorms
