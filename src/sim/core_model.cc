#include "sim/core_model.hh"

namespace califorms
{

double
CoreModel::penalty(Cycles latency) const
{
    return latency > l1Hit_ ? static_cast<double>(latency - l1Hit_) : 0.0;
}

void
CoreModel::retireCompute(std::uint32_t ops)
{
    acc_ += static_cast<double>(1 + ops) /
            static_cast<double>(params_.issueWidth);
    instructions_ += 1 + ops;
}

void
CoreModel::retireLoad(Cycles latency, bool depends_on_prev)
{
    ++instructions_;
    if (depends_on_prev) {
        // Address-dependent chain: nothing to overlap with.
        acc_ += static_cast<double>(latency);
        return;
    }
    acc_ += 1.0 / static_cast<double>(params_.issueWidth) +
            penalty(latency) / static_cast<double>(params_.mlp);
}

void
CoreModel::retireStore(Cycles latency)
{
    ++instructions_;
    acc_ += 1.0 / static_cast<double>(params_.issueWidth) +
            penalty(latency) * params_.storeMissWeight /
                static_cast<double>(params_.mlp);
}

void
CoreModel::retireCform(Cycles latency)
{
    ++instructions_;
    acc_ += 1.0 / static_cast<double>(params_.issueWidth) +
            penalty(latency) * params_.cformMissWeight /
                static_cast<double>(params_.mlp);
}

void
CoreModel::reset()
{
    acc_ = 0.0;
    instructions_ = 0;
}

} // namespace califorms
