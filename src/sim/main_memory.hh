/**
 * @file main_memory.hh
 * Sparse DRAM model. Lines are stored in the sentinel (califormed)
 * format; the one metadata bit per line models the spare ECC bit the
 * paper repurposes (Section 3), so data never grows and the DIMM
 * interface is unchanged. Untouched lines read as zero.
 */

#ifndef CALIFORMS_SIM_MAIN_MEMORY_HH
#define CALIFORMS_SIM_MAIN_MEMORY_HH

#include <cstdint>
#include <unordered_map>

#include "core/line.hh"
#include "os/swap.hh"

namespace califorms
{

class MainMemory : public LineStore
{
  public:
    /** Read the line at @p line_addr (zero/clean if never written).
     *  Counted: mutates the read counter, so demand paths need a
     *  non-const memory — no counter writes hide behind const. */
    SentinelLine readLine(Addr line_addr) override;

    /** Uncounted lookup for functional (untimed) inspection paths. */
    SentinelLine peekLine(Addr line_addr) const;

    /** Write a full line including its ECC califormed bit. */
    void writeLine(Addr line_addr, const SentinelLine &line) override;

    /** Number of lines currently backed (for memory footprint stats). */
    std::size_t backedLines() const { return lines_.size(); }

    /** Number of backed lines whose califormed (ECC) bit is set. */
    std::size_t califormedLines() const;

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

  private:
    std::unordered_map<Addr, SentinelLine> lines_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace califorms

#endif // CALIFORMS_SIM_MAIN_MEMORY_HH
