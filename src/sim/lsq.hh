/**
 * @file lsq.hh
 * Load/store queue model with the CFORM rules of Section 5.3.
 *
 * A CFORM instruction flows through the LSQ like a store, but with one
 * key difference: it never forwards a value to a younger load. A younger
 * load whose address overlaps an in-flight CFORM's allow-mask receives
 * the value zero for the overlapping bytes (tamper resistance against
 * speculative side channels) and is marked for a Califorms exception at
 * commit. Younger stores that overlap an in-flight CFORM are marked for
 * the exception as well.
 *
 * This is a functional model: it resolves values exactly (including
 * partial overlaps, by composing older stores over a memory snapshot)
 * and reports which ops must fault at commit. The timing core does not
 * route every access through it; it exists to pin down the architectural
 * semantics and is exercised heavily by the test suite.
 */

#ifndef CALIFORMS_SIM_LSQ_HH
#define CALIFORMS_SIM_LSQ_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "core/cform.hh"
#include "core/line.hh"

namespace califorms
{

class LoadStoreQueue
{
  public:
    /** Reads one byte from the memory system (the value the load would
     *  see with no older in-flight stores). */
    using ByteReader = std::function<std::uint8_t(Addr)>;

    /** Outcome of a load probing the queue. */
    struct LoadResult
    {
        std::uint64_t value = 0;
        bool forwarded = false;      //!< any byte came from an older store
        bool cformConflict = false;  //!< marked for Califorms exception
    };

    /** Outcome of inserting a store. */
    struct StoreResult
    {
        bool cformConflict = false;  //!< marked for Califorms exception
    };

    explicit LoadStoreQueue(std::size_t capacity = 36)
        : capacity_(capacity)
    {}

    /** Insert a store; reports whether it overlaps an older CFORM. */
    StoreResult pushStore(Addr addr, unsigned size, std::uint64_t value);

    /** Insert a CFORM entry (carries its allow-mask for matching). */
    void pushCform(const CformOp &op);

    /**
     * Execute a load against the queue: bytes covered by older regular
     * stores are forwarded youngest-first; bytes covered by an older
     * CFORM read zero and set cformConflict; the rest come from
     * @p reader.
     */
    LoadResult load(Addr addr, unsigned size,
                    const ByteReader &reader) const;

    /** Retire the oldest entry, delivering it to @p commit_store /
     *  @p commit_cform. Returns false if the queue is empty. */
    bool drainOldest(
        const std::function<void(Addr, unsigned, std::uint64_t)>
            &commit_store,
        const std::function<void(const CformOp &)> &commit_cform);

    std::size_t size() const { return entries_.size(); }
    bool full() const { return entries_.size() >= capacity_; }
    std::size_t capacity() const { return capacity_; }

  private:
    struct Entry
    {
        bool isCform = false;
        Addr addr = 0;         //!< byte address (line address for CFORM)
        unsigned size = 0;     //!< store size in bytes
        std::uint64_t value = 0;
        CformOp cform{};
    };

    /** True if [addr, addr+size) intersects the bytes @p e may change. */
    static bool overlaps(const Entry &e, Addr addr, unsigned size);

    std::size_t capacity_;
    std::deque<Entry> entries_; //!< oldest at front
};

} // namespace califorms

#endif // CALIFORMS_SIM_LSQ_HH
