/**
 * @file machine.hh
 * The simulated machine façade: timing core + Califorms memory hierarchy
 * + privileged exception unit. Workload kernels, the allocator, the
 * examples, and the benchmark harnesses all talk to this class.
 */

#ifndef CALIFORMS_SIM_MACHINE_HH
#define CALIFORMS_SIM_MACHINE_HH

#include <cstdint>
#include <vector>

#include "core/cform.hh"
#include "os/exception_unit.hh"
#include "sim/core_model.hh"
#include "sim/memsys.hh"
#include "sim/params.hh"

namespace califorms
{

class Machine
{
  public:
    explicit Machine(const MachineParams &params = MachineParams{},
                     ExceptionUnit::Policy policy =
                         ExceptionUnit::Policy::Record);

    // Timed execution interface -------------------------------------
    /** Load @p size bytes; returns the value (blacklisted bytes read 0).
     *  @p depends_on_prev marks pointer-chase loads. */
    std::uint64_t load(Addr addr, unsigned size,
                       bool depends_on_prev = false);

    /** Store the low @p size bytes of @p value. */
    void store(Addr addr, unsigned size, std::uint64_t value);

    /** Execute a CFORM instruction. */
    void cform(const CformOp &op);

    /** Account @p ops of pure compute work. */
    void compute(std::uint32_t ops) { core_.retireCompute(ops); }

    // Functional interface (no timing, no checks) --------------------
    std::uint8_t peekByte(Addr addr) const { return mem_.peekByte(addr); }
    void pokeByte(Addr addr, std::uint8_t v) { mem_.pokeByte(addr, v); }
    std::vector<std::uint8_t>
    peekBytes(Addr addr, std::size_t n) const
    {
        return mem_.peekBytes(addr, n);
    }
    SecurityMask securityMask(Addr addr) const
    {
        return mem_.securityMask(addr);
    }

    // Introspection ---------------------------------------------------
    /**
     * Total machine time: the OoO core's critical path, bounded below
     * by the DRAM bandwidth roofline (lines moved x cycles per line).
     * Streaming workloads whose latency the window hides completely are
     * still limited by how fast lines cross the memory bus.
     */
    Cycles cycles() const;
    std::uint64_t instructions() const { return core_.instructions(); }
    MemSysStats memStats() const { return mem_.stats(); }

    ExceptionUnit &exceptions() { return exceptions_; }
    const ExceptionUnit &exceptions() const { return exceptions_; }
    MemorySystem &memorySystem() { return mem_; }
    const MachineParams &params() const { return params_; }

    /** Reset cycle and statistics counters (state is preserved). */
    void clearStats();

  private:
    MachineParams params_;
    ExceptionUnit exceptions_;
    MemorySystem mem_;
    CoreModel core_;
};

} // namespace califorms

#endif // CALIFORMS_SIM_MACHINE_HH
