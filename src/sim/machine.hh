/**
 * @file machine.hh
 * The simulated machine façade: N timing cores, each with a private L1
 * side, over one shared L2/LLC/DRAM hierarchy (optionally coherent),
 * plus the privileged exception unit. Workload kernels, the allocator,
 * the examples, and the benchmark harnesses all talk to this class.
 *
 * The historical single-core API (load/store/cform/compute) targets
 * core 0 and is bit-for-bit identical to the pre-multi-core machine
 * when core.count == 1. Per-core traffic goes through the *On(core,
 * ...) variants; the deterministic round-robin interleaver that drives
 * them from per-core streams lives in sim/trace.hh
 * (runTraceInterleaved).
 */

#ifndef CALIFORMS_SIM_MACHINE_HH
#define CALIFORMS_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cform.hh"
#include "os/exception_unit.hh"
#include "sim/core_model.hh"
#include "sim/lsq.hh"
#include "sim/memsys.hh"
#include "sim/params.hh"
#include "sim/shared_mem.hh"

namespace califorms
{

class Machine
{
  public:
    explicit Machine(const MachineParams &params = MachineParams{},
                     ExceptionUnit::Policy policy =
                         ExceptionUnit::Policy::Record);

    // Timed execution interface (core 0; the historical single-core
    // API) ----------------------------------------------------------
    /** Load @p size bytes; returns the value (blacklisted bytes read 0).
     *  @p depends_on_prev marks pointer-chase loads. */
    std::uint64_t load(Addr addr, unsigned size,
                       bool depends_on_prev = false)
    {
        return loadOn(0, addr, size, depends_on_prev);
    }

    /** Store the low @p size bytes of @p value. */
    void store(Addr addr, unsigned size, std::uint64_t value)
    {
        storeOn(0, addr, size, value);
    }

    /** Execute a CFORM instruction. */
    void cform(const CformOp &op) { cformOn(0, op); }

    /** Account @p ops of pure compute work. */
    void compute(std::uint32_t ops) { computeOn(0, ops); }

    // Per-core timed execution interface -----------------------------
    std::uint64_t loadOn(unsigned core, Addr addr, unsigned size,
                         bool depends_on_prev = false);
    void storeOn(unsigned core, Addr addr, unsigned size,
                 std::uint64_t value);
    void cformOn(unsigned core, const CformOp &op);
    void computeOn(unsigned core, std::uint32_t ops);

    /** Number of cores (MachineParams::core.count). */
    unsigned coreCount() const
    {
        return static_cast<unsigned>(mems_.size());
    }

    // Functional interface (no timing, no checks) --------------------
    // On a multi-core machine these present the coherent machine-level
    // view: private copies are searched in core order, then the shared
    // side; pokes write through every holder so no copy goes stale.
    std::uint8_t peekByte(Addr addr) const;
    void pokeByte(Addr addr, std::uint8_t v);
    std::vector<std::uint8_t> peekBytes(Addr addr, std::size_t n) const;
    SecurityMask securityMask(Addr addr) const;

    // Introspection ---------------------------------------------------
    /**
     * Total machine time: the slowest core's OoO critical path, bounded
     * below by the DRAM bandwidth roofline (lines moved x cycles per
     * line — DRAM is shared, so all cores' traffic prices it).
     * Streaming workloads whose latency the windows hide completely are
     * still limited by how fast lines cross the memory bus.
     */
    Cycles cycles() const;
    /** One core's OoO critical path (no roofline). */
    Cycles coreCycles(unsigned core) const;
    std::uint64_t instructions() const;
    std::uint64_t coreInstructions(unsigned core) const;

    /** Whole-machine counters: per-core private sides summed, shared
     *  side added once. */
    MemSysStats memStats() const;
    /** One core's private-side counters (L1, conversions, write-back
     *  queue, faults; shared slots zero). */
    MemSysStats coreMemStats(unsigned core) const;

    ExceptionUnit &exceptions() { return exceptions_; }
    const ExceptionUnit &exceptions() const { return exceptions_; }
    MemorySystem &memorySystem(unsigned core = 0)
    {
        return *mems_.at(core);
    }
    SharedMemory &sharedMemory() { return shared_; }
    const SharedMemory &sharedMemory() const { return shared_; }
    /** Per-core load/store queue (Section 5.3 CFORM semantics model). */
    LoadStoreQueue &lsq(unsigned core = 0) { return lsqs_.at(core); }
    const MachineParams &params() const { return params_; }

    /** Write everything dirty back to DRAM and drop all cache contents
     *  (every private side first, then the shared levels once). */
    void flushAll();

    /** Reset cycle and statistics counters (state is preserved). */
    void clearStats();

  private:
    MachineParams params_;
    ExceptionUnit exceptions_;
    SharedMemory shared_; //!< must outlive the attached private sides
    std::vector<std::unique_ptr<MemorySystem>> mems_;
    std::vector<CoreModel> cores_;
    std::vector<LoadStoreQueue> lsqs_;
};

} // namespace califorms

#endif // CALIFORMS_SIM_MACHINE_HH
