/**
 * @file core_model.hh
 * Analytical out-of-order core approximation.
 *
 * The paper evaluates on ZSim's validated Westmere-like OoO model; a full
 * cycle-level core is out of scope for this library, but the experiments
 * only need the first-order effects an OoO window produces:
 *
 *  - up to issueWidth micro-ops retire per cycle when nothing stalls;
 *  - a load whose *address* depends on the previous memory op (pointer
 *    chasing) exposes its full latency;
 *  - independent misses overlap: the window hides all but 1/mlp of the
 *    miss penalty;
 *  - store misses are mostly absorbed by the store buffer (weighted by
 *    storeMissWeight before the MLP division).
 *
 * Cost model per retired op (penalty = latency beyond the L1 hit time):
 *
 *   compute            (1 + ops) / width
 *   dependent load     latency                      (full serialization)
 *   independent load   1/width + penalty / mlp
 *   store or CFORM     1/width + penalty * storeMissWeight / mlp
 *
 * This keeps the model deterministic, monotonic in every cache latency,
 * and sensitive to exactly the effects Figures 4 and 10-12 measure.
 */

#ifndef CALIFORMS_SIM_CORE_MODEL_HH
#define CALIFORMS_SIM_CORE_MODEL_HH

#include <cstdint>

#include "sim/params.hh"

namespace califorms
{

/** Streaming cycle accumulator for the OoO approximation. */
class CoreModel
{
  public:
    CoreModel(const CoreParams &params, Cycles l1_hit_latency)
        : params_(params), l1Hit_(l1_hit_latency)
    {}

    /** Account a block of pure ALU work (@p ops micro-ops). */
    void retireCompute(std::uint32_t ops);

    /** Account a load that completed in @p latency cycles. */
    void retireLoad(Cycles latency, bool depends_on_prev);

    /** Account a store that completed in @p latency cycles. */
    void retireStore(Cycles latency);

    /** Account a CFORM: store-like issue, but weakly overlapped
     *  (Section 5.3 forwarding/serialization rules). */
    void retireCform(Cycles latency);

    /** Total simulated cycles so far. */
    Cycles cycles() const { return static_cast<Cycles>(acc_); }

    /** Retired instruction count (for IPC reporting). */
    std::uint64_t instructions() const { return instructions_; }

    void reset();

  private:
    double penalty(Cycles latency) const;

    CoreParams params_;
    Cycles l1Hit_;
    double acc_ = 0.0;
    std::uint64_t instructions_ = 0;
};

} // namespace califorms

#endif // CALIFORMS_SIM_CORE_MODEL_HH
