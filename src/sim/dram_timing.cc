#include "sim/dram_timing.hh"

namespace califorms
{

DramTiming::DramTiming(const MemSysParams &params)
    : banks_(params.dramBanks),
      rowBytes_(params.dramRowBytes ? params.dramRowBytes : 1),
      rowHitLatency_(params.dramRowHitLatency),
      rowMissLatency_(params.dramRowMissLatency),
      rowConflictLatency_(params.dramRowConflictLatency)
{
}

DramTiming::Bank &
DramTiming::bankFor(Addr line_addr, std::uint64_t &row)
{
    const std::uint64_t global_row = line_addr / rowBytes_;
    row = global_row / banks_.size();
    return banks_[global_row % banks_.size()];
}

Cycles
DramTiming::serviceLatency(Bank &bank, std::uint64_t row)
{
    Cycles service;
    if (!bank.opened) {
        service = rowMissLatency_;
        ++stats_.rowMisses;
    } else if (bank.openRow == row) {
        service = rowHitLatency_;
        ++stats_.rowHits;
    } else {
        service = rowConflictLatency_;
        ++stats_.rowConflicts;
    }
    bank.opened = true;
    bank.openRow = row;
    return service;
}

DramTiming::ServiceTime
DramTiming::access(Addr line_addr, Cycles now)
{
    lastTime_ = now;
    std::uint64_t row;
    Bank &bank = bankFor(line_addr, row);
    const Cycles start = bank.busyUntil > now ? bank.busyUntil : now;
    stats_.bankConflictCycles += start - now;
    const Cycles service = serviceLatency(bank, row);
    bank.busyUntil = start + service;
    return {start - now, service};
}

void
DramTiming::occupy(Addr line_addr)
{
    std::uint64_t row;
    Bank &bank = bankFor(line_addr, row);
    const Cycles start =
        bank.busyUntil > lastTime_ ? bank.busyUntil : lastTime_;
    bank.busyUntil = start + serviceLatency(bank, row);
}

} // namespace califorms
