/**
 * @file cache_array.hh
 * A generic set-associative cache array parameterized on the stored
 * line payload. The L1 data cache stores BitVectorLine payloads
 * (califorms-bitvector); L2 and L3 store SentinelLine payloads
 * (califorms-sentinel). Timing lives in the hierarchy (memsys.hh);
 * this class is purely the tag/data array.
 *
 * Victim selection is delegated to a pluggable ReplacementPolicy
 * (sim/repl/policy.hh): the array owns tags, payloads, and dirty bits;
 * the policy owns all recency/prediction state and is driven through
 * onHit / onMiss / onInsert / victimWay / onInvalidate hooks. The
 * default Lru policy reproduces the historical hardwired true-LRU
 * byte for byte. Hooks carry LineMeta including whether the payload
 * is califormed, and evictions of califormed lines are counted in
 * CacheStats::cformEvictions so the policy laboratory can measure
 * whether scan-resistant policies preferentially evict
 * sentinel-carrying lines.
 */

#ifndef CALIFORMS_SIM_CACHE_ARRAY_HH
#define CALIFORMS_SIM_CACHE_ARRAY_HH

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/repl/policy.hh"
#include "util/types.hh"

namespace califorms
{

/** Hit/miss/eviction counters for one cache level. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    /** Evictions whose victim payload carried blacklisted bytes. */
    std::uint64_t cformEvictions = 0;

    double
    missRate() const
    {
        const auto total = hits + misses;
        return total ? static_cast<double>(misses) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Whether @p line carries blacklisted bytes, for any payload shape:
 *  BitVectorLine exposes califormed() (mask != 0), SentinelLine a bool
 *  member; payloads with neither (the unit tests' int lines) are never
 *  califormed. */
template <typename LineT>
inline bool
lineCaliformed(const LineT &line)
{
    if constexpr (requires { static_cast<bool>(line.califormed()); })
        return static_cast<bool>(line.califormed());
    else if constexpr (requires { static_cast<bool>(line.califormed); })
        return static_cast<bool>(line.califormed);
    else
        return false;
}

template <typename LineT>
class CacheArray
{
  public:
    /** A line pushed out by insert(). */
    struct Evicted
    {
        bool valid = false;
        bool dirty = false;
        Addr lineAddr = 0;
        LineT line{};
    };

    CacheArray(std::size_t size_bytes, unsigned ways,
               ReplPolicy policy = ReplPolicy::Lru)
        : ways_(ways),
          sets_(ways ? size_bytes / (lineBytes * ways) : 0)
    {
        if (ways == 0 || sets_ == 0 ||
            size_bytes % (lineBytes * ways) != 0) {
            throw std::invalid_argument("CacheArray: bad geometry");
        }
        entries_.resize(sets_ * ways_);
        repl_ = repl::makePolicy(policy, sets_, ways_);
        cands_.resize(ways_);
    }

    /** Look up @p line_addr; on a hit return the payload (policy
     *  notified) and optionally mark it dirty. Null on miss. Counts
     *  stats. */
    LineT *
    access(Addr line_addr, bool make_dirty)
    {
        Entry *e = lookup(line_addr);
        if (!e) {
            ++stats_.misses;
            repl_->onMiss(setIndex(line_addr));
            return nullptr;
        }
        ++stats_.hits;
        e->dirty = e->dirty || make_dirty;
        repl_->onHit(setIndex(line_addr), wayOf(e), metaOf(*e));
        return &e->line;
    }

    /** Look up without touching stats or policy state (functional
     *  peeks). */
    LineT *
    peek(Addr line_addr)
    {
        Entry *e = lookup(line_addr);
        return e ? &e->line : nullptr;
    }

    const LineT *
    peek(Addr line_addr) const
    {
        const Entry *e = lookup(line_addr);
        return e ? &e->line : nullptr;
    }

    /** Insert a line, evicting the policy's victim if the set is full.
     *  An existing copy of the same line is overwritten in place with
     *  the dirty bits merged; the overwrite counts as a reference
     *  (onHit), so an upgrade-write refreshes recency under every
     *  policy. */
    Evicted
    insert(Addr line_addr, LineT line, bool dirty)
    {
        const std::size_t set = setIndex(line_addr);
        Entry *match = nullptr;
        Entry *invalid = nullptr;
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = entries_[set * ways_ + w];
            if (e.valid && e.lineAddr == line_addr) {
                match = &e;
                break;
            }
            if (!e.valid && !invalid)
                invalid = &e;
        }

        Evicted out;
        if (match) {
            match->dirty = match->dirty || dirty;
            match->line = std::move(line);
            repl_->onHit(set, wayOf(match), metaOf(*match));
            return out;
        }

        Entry *slot = invalid;
        if (!slot) {
            for (unsigned w = 0; w < ways_; ++w)
                cands_[w] = metaOf(entries_[set * ways_ + w]);
            const unsigned victim =
                repl_->victimWay(set, cands_.data(), ways_);
            if (victim >= ways_)
                throw std::logic_error(
                    "ReplacementPolicy: victim way out of range");
            slot = &entries_[set * ways_ + victim];
            out.valid = true;
            out.dirty = slot->dirty;
            out.lineAddr = slot->lineAddr;
            out.line = std::move(slot->line);
            ++stats_.evictions;
            if (slot->dirty)
                ++stats_.dirtyEvictions;
            if (lineCaliformed(out.line))
                ++stats_.cformEvictions;
        }
        slot->valid = true;
        slot->dirty = dirty;
        slot->lineAddr = line_addr;
        slot->line = std::move(line);
        repl_->onInsert(set, wayOf(slot), metaOf(*slot));
        return out;
    }

    /** Set the dirty bit of a resident line (no stats/policy effect). */
    void
    markDirty(Addr line_addr)
    {
        if (Entry *e = lookup(line_addr))
            e->dirty = true;
    }

    /** Clear the dirty bit of a resident line (coherence downgrade:
     *  the owner keeps a now-clean copy after its data was recalled). */
    void
    markClean(Addr line_addr)
    {
        if (Entry *e = lookup(line_addr))
            e->dirty = false;
    }

    /** Dirty bit of a resident line (false when absent). */
    bool
    dirtyAt(Addr line_addr) const
    {
        const Entry *e = lookup(line_addr);
        return e && e->dirty;
    }

    /** Remove @p line_addr if present; returns true and fills the outs. */
    bool
    extract(Addr line_addr, LineT &line_out, bool &dirty_out)
    {
        Entry *e = lookup(line_addr);
        if (!e)
            return false;
        line_out = std::move(e->line);
        dirty_out = e->dirty;
        e->valid = false;
        e->dirty = false;
        repl_->onInvalidate(setIndex(line_addr), wayOf(e));
        return true;
    }

    /** Visit every valid line (used by flush). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (auto &e : entries_)
            if (e.valid)
                fn(e.lineAddr, e.line, e.dirty);
    }

    /** Drop everything without write-back (only safe after a flush). */
    void
    reset()
    {
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            Entry &e = entries_[i];
            if (e.valid)
                repl_->onInvalidate(i / ways_,
                                    static_cast<unsigned>(i % ways_));
            e.valid = false;
            e.dirty = false;
        }
    }

    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }
    std::size_t sets() const { return sets_; }
    unsigned ways() const { return ways_; }

  private:
    struct Entry
    {
        bool valid = false;
        bool dirty = false;
        Addr lineAddr = 0;
        LineT line{};
    };

    std::size_t
    setIndex(Addr line_addr) const
    {
        return static_cast<std::size_t>((line_addr >> lineShift) % sets_);
    }

    /** Shared body of the const and non-const lookup overloads: the
     *  constness of @p self propagates to the returned Entry pointer,
     *  so neither caller needs a const_cast. */
    template <typename Self>
    static auto
    lookupImpl(Self &self, Addr line_addr) -> decltype(self.entries_.data())
    {
        const std::size_t set = self.setIndex(line_addr);
        for (unsigned w = 0; w < self.ways_; ++w) {
            auto &e = self.entries_[set * self.ways_ + w];
            if (e.valid && e.lineAddr == line_addr)
                return &e;
        }
        return nullptr;
    }

    Entry *lookup(Addr line_addr) { return lookupImpl(*this, line_addr); }

    const Entry *
    lookup(Addr line_addr) const
    {
        return lookupImpl(*this, line_addr);
    }

    unsigned
    wayOf(const Entry *e) const
    {
        return static_cast<unsigned>(
            static_cast<std::size_t>(e - entries_.data()) % ways_);
    }

    repl::LineMeta
    metaOf(const Entry &e) const
    {
        return {e.lineAddr, e.dirty, lineCaliformed(e.line)};
    }

    unsigned ways_;
    std::size_t sets_;
    std::vector<Entry> entries_;
    std::unique_ptr<repl::ReplacementPolicy> repl_;
    std::vector<repl::LineMeta> cands_; //!< victimWay scratch
    CacheStats stats_;
};

} // namespace califorms

#endif // CALIFORMS_SIM_CACHE_ARRAY_HH
