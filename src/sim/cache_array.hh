/**
 * @file cache_array.hh
 * A generic set-associative cache array with true-LRU replacement,
 * parameterized on the stored line payload. The L1 data cache stores
 * BitVectorLine payloads (califorms-bitvector); L2 and L3 store
 * SentinelLine payloads (califorms-sentinel). Timing lives in the
 * hierarchy (memsys.hh); this class is purely the tag/data array.
 */

#ifndef CALIFORMS_SIM_CACHE_ARRAY_HH
#define CALIFORMS_SIM_CACHE_ARRAY_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/types.hh"

namespace califorms
{

/** Hit/miss/eviction counters for one cache level. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    double
    missRate() const
    {
        const auto total = hits + misses;
        return total ? static_cast<double>(misses) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

template <typename LineT>
class CacheArray
{
  public:
    /** A line pushed out by insert(). */
    struct Evicted
    {
        bool valid = false;
        bool dirty = false;
        Addr lineAddr = 0;
        LineT line{};
    };

    CacheArray(std::size_t size_bytes, unsigned ways)
        : ways_(ways),
          sets_(ways ? size_bytes / (lineBytes * ways) : 0)
    {
        if (ways == 0 || sets_ == 0 ||
            size_bytes % (lineBytes * ways) != 0) {
            throw std::invalid_argument("CacheArray: bad geometry");
        }
        entries_.resize(sets_ * ways_);
    }

    /** Look up @p line_addr; on a hit return the payload (LRU updated)
     *  and optionally mark it dirty. Null on miss. Counts stats. */
    LineT *
    access(Addr line_addr, bool make_dirty)
    {
        Entry *e = lookup(line_addr);
        if (!e) {
            ++stats_.misses;
            return nullptr;
        }
        ++stats_.hits;
        e->lru = ++clock_;
        e->dirty = e->dirty || make_dirty;
        return &e->line;
    }

    /** Look up without touching stats or LRU (functional peeks). */
    LineT *
    peek(Addr line_addr)
    {
        Entry *e = lookup(line_addr);
        return e ? &e->line : nullptr;
    }

    const LineT *
    peek(Addr line_addr) const
    {
        return const_cast<CacheArray *>(this)->peek(line_addr);
    }

    /** Insert a line, evicting the LRU way if the set is full. An
     *  existing copy of the same line is overwritten in place with the
     *  dirty bits merged. */
    Evicted
    insert(Addr line_addr, LineT line, bool dirty)
    {
        const std::size_t set = setIndex(line_addr);
        Entry *match = nullptr;
        Entry *invalid = nullptr;
        Entry *lru = nullptr;
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = entries_[set * ways_ + w];
            if (e.valid && e.lineAddr == line_addr) {
                match = &e;
                break;
            }
            if (!e.valid) {
                if (!invalid)
                    invalid = &e;
            } else if (!lru || e.lru < lru->lru) {
                lru = &e;
            }
        }

        Evicted out;
        Entry *slot = match ? match : (invalid ? invalid : lru);
        const bool in_place = match != nullptr;
        if (!in_place && slot->valid) {
            out.valid = true;
            out.dirty = slot->dirty;
            out.lineAddr = slot->lineAddr;
            out.line = std::move(slot->line);
            ++stats_.evictions;
            if (slot->dirty)
                ++stats_.dirtyEvictions;
        }
        slot->valid = true;
        slot->dirty = in_place ? (slot->dirty || dirty) : dirty;
        slot->lineAddr = line_addr;
        slot->line = std::move(line);
        slot->lru = ++clock_;
        return out;
    }

    /** Set the dirty bit of a resident line (no stats/LRU effect). */
    void
    markDirty(Addr line_addr)
    {
        if (Entry *e = lookup(line_addr))
            e->dirty = true;
    }

    /** Clear the dirty bit of a resident line (coherence downgrade:
     *  the owner keeps a now-clean copy after its data was recalled). */
    void
    markClean(Addr line_addr)
    {
        if (Entry *e = lookup(line_addr))
            e->dirty = false;
    }

    /** Dirty bit of a resident line (false when absent). */
    bool
    dirtyAt(Addr line_addr) const
    {
        const Entry *e =
            const_cast<CacheArray *>(this)->lookup(line_addr);
        return e && e->dirty;
    }

    /** Remove @p line_addr if present; returns true and fills the outs. */
    bool
    extract(Addr line_addr, LineT &line_out, bool &dirty_out)
    {
        Entry *e = lookup(line_addr);
        if (!e)
            return false;
        line_out = std::move(e->line);
        dirty_out = e->dirty;
        e->valid = false;
        e->dirty = false;
        return true;
    }

    /** Visit every valid line (used by flush). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (auto &e : entries_)
            if (e.valid)
                fn(e.lineAddr, e.line, e.dirty);
    }

    /** Drop everything without write-back (only safe after a flush). */
    void
    reset()
    {
        for (auto &e : entries_) {
            e.valid = false;
            e.dirty = false;
        }
    }

    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }
    std::size_t sets() const { return sets_; }
    unsigned ways() const { return ways_; }

  private:
    struct Entry
    {
        bool valid = false;
        bool dirty = false;
        Addr lineAddr = 0;
        std::uint64_t lru = 0;
        LineT line{};
    };

    std::size_t
    setIndex(Addr line_addr) const
    {
        return static_cast<std::size_t>((line_addr >> lineShift) % sets_);
    }

    Entry *
    lookup(Addr line_addr)
    {
        const std::size_t set = setIndex(line_addr);
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = entries_[set * ways_ + w];
            if (e.valid && e.lineAddr == line_addr)
                return &e;
        }
        return nullptr;
    }

    unsigned ways_;
    std::size_t sets_;
    std::uint64_t clock_ = 0;
    std::vector<Entry> entries_;
    CacheStats stats_;
};

} // namespace califorms

#endif // CALIFORMS_SIM_CACHE_ARRAY_HH
