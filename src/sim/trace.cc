#include "sim/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace califorms
{

TraceOp
TraceOp::load(Addr addr, unsigned size, bool dep)
{
    TraceOp op;
    op.kind = Kind::Load;
    op.addr = addr;
    op.size = static_cast<std::uint8_t>(size);
    op.dependsOnPrev = dep;
    return op;
}

TraceOp
TraceOp::store(Addr addr, unsigned size, std::uint64_t value)
{
    TraceOp op;
    op.kind = Kind::Store;
    op.addr = addr;
    op.size = static_cast<std::uint8_t>(size);
    op.value = value;
    return op;
}

TraceOp
TraceOp::cformOp(const CformOp &cform)
{
    TraceOp op;
    op.kind = Kind::Cform;
    op.cform = cform;
    return op;
}

TraceOp
TraceOp::compute(std::uint32_t ops)
{
    TraceOp op;
    op.kind = Kind::Compute;
    op.computeOps = ops;
    return op;
}

std::uint64_t
runTrace(Machine &machine, const Trace &trace)
{
    std::uint64_t checksum = 0;
    for (const TraceOp &op : trace) {
        switch (op.kind) {
        case TraceOp::Kind::Load:
            checksum ^= machine.load(op.addr, op.size, op.dependsOnPrev);
            break;
        case TraceOp::Kind::Store:
            machine.store(op.addr, op.size, op.value);
            break;
        case TraceOp::Kind::Cform:
            machine.cform(op.cform);
            break;
        case TraceOp::Kind::Compute:
            machine.compute(op.computeOps);
            break;
        }
    }
    return checksum;
}

std::uint64_t
runTrace(Machine &machine, TraceReader &reader,
         std::uint64_t *ops_replayed)
{
    std::uint64_t checksum = 0;
    std::uint64_t count = 0;
    TraceOp op;
    while (reader.next(op)) {
        ++count;
        switch (op.kind) {
        case TraceOp::Kind::Load:
            checksum ^= machine.load(op.addr, op.size, op.dependsOnPrev);
            break;
        case TraceOp::Kind::Store:
            machine.store(op.addr, op.size, op.value);
            break;
        case TraceOp::Kind::Cform:
            machine.cform(op.cform);
            break;
        case TraceOp::Kind::Compute:
            machine.compute(op.computeOps);
            break;
        }
    }
    if (ops_replayed)
        *ops_replayed = count;
    return checksum;
}

std::uint64_t
runTraceInterleaved(Machine &machine,
                    const std::vector<TraceReader *> &streams,
                    std::uint64_t *ops_replayed)
{
    if (streams.size() != machine.coreCount())
        throw std::invalid_argument(
            "runTraceInterleaved: need exactly one stream per core");
    std::uint64_t checksum = 0;
    std::uint64_t count = 0;
    std::vector<bool> alive(streams.size(), true);
    std::size_t live = streams.size();
    TraceOp op;
    while (live) {
        for (unsigned core = 0; core < streams.size(); ++core) {
            if (!alive[core])
                continue;
            if (!streams[core]->next(op)) {
                alive[core] = false;
                --live;
                continue;
            }
            ++count;
            switch (op.kind) {
            case TraceOp::Kind::Load:
                checksum ^= machine.loadOn(core, op.addr, op.size,
                                           op.dependsOnPrev);
                break;
            case TraceOp::Kind::Store:
                machine.storeOn(core, op.addr, op.size, op.value);
                break;
            case TraceOp::Kind::Cform:
                machine.cformOn(core, op.cform);
                break;
            case TraceOp::Kind::Compute:
                machine.computeOn(core, op.computeOps);
                break;
            }
        }
    }
    if (ops_replayed)
        *ops_replayed = count;
    return checksum;
}

namespace detail
{

void
writeTraceOpText(std::ostream &os, const TraceOp &op)
{
    os << std::hex;
    switch (op.kind) {
    case TraceOp::Kind::Load:
        os << "L " << op.addr << " " << std::dec << unsigned(op.size)
           << std::hex;
        if (op.dependsOnPrev)
            os << " dep";
        os << "\n";
        break;
    case TraceOp::Kind::Store:
        os << "S " << op.addr << " " << std::dec << unsigned(op.size)
           << std::hex << " " << op.value << "\n";
        break;
    case TraceOp::Kind::Cform:
        os << "C " << op.cform.lineAddr << " " << op.cform.setBits
           << " " << op.cform.mask;
        if (op.cform.nonTemporal)
            os << " nt";
        os << "\n";
        break;
    case TraceOp::Kind::Compute:
        os << "X " << std::dec << op.computeOps << std::hex << "\n";
        break;
    }
}

} // namespace detail

void
writeTrace(std::ostream &os, const Trace &trace)
{
    for (const TraceOp &op : trace)
        detail::writeTraceOpText(os, op);
}

namespace
{

/**
 * Streaming text parser. The optional @p carry string holds bytes the
 * format auto-detection already consumed from the stream; they are
 * logically prepended (they belong to the first line or two).
 */
class TextTraceReader final : public TraceReader
{
  public:
    TextTraceReader(std::istream &is, std::string carry)
        : is_(is), carry_(std::move(carry))
    {}

    bool
    next(TraceOp &op) override
    {
        std::string line;
        while (nextLine(line)) {
            ++lineno_;
            if (parseLine(line, op))
                return true;
        }
        return false;
    }

  private:
    /** getline over carry-then-stream; false at end of input. */
    bool
    nextLine(std::string &line)
    {
        line.clear();
        bool carried = false;
        while (carryPos_ < carry_.size()) {
            carried = true;
            const char c = carry_[carryPos_++];
            if (c == '\n')
                return true;
            line += c;
        }
        std::string rest;
        if (std::getline(is_, rest)) {
            line += rest;
            return true;
        }
        return carried; // a final unterminated carried line
    }

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("trace line " +
                                 std::to_string(lineno_) + ": " + why);
    }

    /** Parse one line into @p op; false for comments and blanks. */
    bool
    parseLine(const std::string &line, TraceOp &op)
    {
        std::istringstream ss(line);
        std::string tag;
        if (!(ss >> tag) || tag[0] == '#')
            return false;
        auto checkSize = [&](unsigned size) {
            if (size == 0 || size > 8)
                fail("bad access size " + std::to_string(size));
        };
        // Anything after a well-formed op must be the op's own optional
        // flag; unknown trailing tokens are rejected rather than
        // silently dropped so a corrupted trace cannot quietly replay
        // differently.
        auto expectEnd = [&](std::istringstream &rest) {
            std::string extra;
            if (rest >> extra)
                fail("trailing junk '" + extra + "'");
        };
        // Every operand in the format is unsigned; istream extraction
        // would silently wrap a negative number modulo 2^N, replaying
        // a corrupted trace differently instead of rejecting it.
        if (line.find('-') != std::string::npos)
            fail("negative operand");
        if (tag == "L") {
            Addr addr;
            unsigned size;
            std::string dep;
            if (!(ss >> std::hex >> addr >> std::dec >> size))
                fail("malformed load");
            checkSize(size);
            const bool is_dep = static_cast<bool>(ss >> dep);
            if (is_dep && dep != "dep")
                fail("trailing junk '" + dep + "'");
            expectEnd(ss);
            op = TraceOp::load(addr, size, is_dep);
        } else if (tag == "S") {
            Addr addr;
            unsigned size;
            std::uint64_t value;
            if (!(ss >> std::hex >> addr >> std::dec >> size >>
                  std::hex >> value))
                fail("malformed store");
            checkSize(size);
            expectEnd(ss);
            op = TraceOp::store(addr, size, value);
        } else if (tag == "C") {
            CformOp cform;
            std::string nt;
            if (!(ss >> std::hex >> cform.lineAddr >> cform.setBits >>
                  cform.mask))
                fail("malformed cform");
            cform.nonTemporal = static_cast<bool>(ss >> nt);
            if (cform.nonTemporal && nt != "nt")
                fail("trailing junk '" + nt + "'");
            expectEnd(ss);
            op = TraceOp::cformOp(cform);
        } else if (tag == "X") {
            std::uint32_t ops;
            if (!(ss >> std::dec >> ops))
                fail("malformed compute");
            expectEnd(ss);
            op = TraceOp::compute(ops);
        } else {
            fail("unknown op '" + tag + "'");
        }
        return true;
    }

    std::istream &is_;
    std::string carry_;
    std::size_t carryPos_ = 0;
    std::size_t lineno_ = 0;
};

class TextTraceWriter final : public TraceWriter
{
  public:
    explicit TextTraceWriter(std::ostream &os) : os_(os) {}

    void
    put(const TraceOp &op) override
    {
        detail::writeTraceOpText(os_, op);
    }

    void
    finish() override
    {
        os_.flush();
    }

  private:
    std::ostream &os_;
};

} // namespace

Trace
readTrace(std::istream &is)
{
    TextTraceReader reader(is, {});
    Trace trace;
    TraceOp op;
    while (reader.next(op))
        trace.push_back(op);
    return trace;
}

namespace detail
{

std::unique_ptr<TraceReader>
makeTextReader(std::istream &is, std::string carry)
{
    return std::make_unique<TextTraceReader>(is, std::move(carry));
}

std::unique_ptr<TraceWriter>
makeTextWriter(std::ostream &os)
{
    return std::make_unique<TextTraceWriter>(os);
}

} // namespace detail

} // namespace califorms
