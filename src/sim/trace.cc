#include "sim/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace califorms
{

TraceOp
TraceOp::load(Addr addr, unsigned size, bool dep)
{
    TraceOp op;
    op.kind = Kind::Load;
    op.addr = addr;
    op.size = static_cast<std::uint8_t>(size);
    op.dependsOnPrev = dep;
    return op;
}

TraceOp
TraceOp::store(Addr addr, unsigned size, std::uint64_t value)
{
    TraceOp op;
    op.kind = Kind::Store;
    op.addr = addr;
    op.size = static_cast<std::uint8_t>(size);
    op.value = value;
    return op;
}

TraceOp
TraceOp::cformOp(const CformOp &cform)
{
    TraceOp op;
    op.kind = Kind::Cform;
    op.cform = cform;
    return op;
}

TraceOp
TraceOp::compute(std::uint32_t ops)
{
    TraceOp op;
    op.kind = Kind::Compute;
    op.computeOps = ops;
    return op;
}

std::uint64_t
runTrace(Machine &machine, const Trace &trace)
{
    std::uint64_t checksum = 0;
    for (const TraceOp &op : trace) {
        switch (op.kind) {
        case TraceOp::Kind::Load:
            checksum ^= machine.load(op.addr, op.size, op.dependsOnPrev);
            break;
        case TraceOp::Kind::Store:
            machine.store(op.addr, op.size, op.value);
            break;
        case TraceOp::Kind::Cform:
            machine.cform(op.cform);
            break;
        case TraceOp::Kind::Compute:
            machine.compute(op.computeOps);
            break;
        }
    }
    return checksum;
}

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os << std::hex;
    for (const TraceOp &op : trace) {
        switch (op.kind) {
        case TraceOp::Kind::Load:
            os << "L " << op.addr << " " << std::dec
               << unsigned(op.size) << std::hex;
            if (op.dependsOnPrev)
                os << " dep";
            os << "\n";
            break;
        case TraceOp::Kind::Store:
            os << "S " << op.addr << " " << std::dec
               << unsigned(op.size) << std::hex << " " << op.value
               << "\n";
            break;
        case TraceOp::Kind::Cform:
            os << "C " << op.cform.lineAddr << " " << op.cform.setBits
               << " " << op.cform.mask;
            if (op.cform.nonTemporal)
                os << " nt";
            os << "\n";
            break;
        case TraceOp::Kind::Compute:
            os << "X " << std::dec << op.computeOps << std::hex << "\n";
            break;
        }
    }
}

Trace
readTrace(std::istream &is)
{
    Trace trace;
    std::string line;
    std::size_t lineno = 0;
    auto fail = [&](const std::string &why) {
        throw std::runtime_error("trace line " + std::to_string(lineno) +
                                 ": " + why);
    };
    auto checkSize = [&](unsigned size) {
        if (size == 0 || size > 8)
            fail("bad access size " + std::to_string(size));
    };
    // Anything after a well-formed op must be the op's own optional
    // flag; unknown trailing tokens are rejected rather than silently
    // dropped so a corrupted trace cannot quietly replay differently.
    auto expectEnd = [&](std::istringstream &ss) {
        std::string extra;
        if (ss >> extra)
            fail("trailing junk '" + extra + "'");
    };
    while (std::getline(is, line)) {
        ++lineno;
        std::istringstream ss(line);
        std::string tag;
        if (!(ss >> tag) || tag[0] == '#')
            continue;
        // Every operand in the format is unsigned; istream extraction
        // would silently wrap a negative number modulo 2^N, replaying
        // a corrupted trace differently instead of rejecting it.
        if (line.find('-') != std::string::npos)
            fail("negative operand");
        if (tag == "L") {
            Addr addr;
            unsigned size;
            std::string dep;
            if (!(ss >> std::hex >> addr >> std::dec >> size))
                fail("malformed load");
            checkSize(size);
            const bool is_dep = static_cast<bool>(ss >> dep);
            if (is_dep && dep != "dep")
                fail("trailing junk '" + dep + "'");
            expectEnd(ss);
            trace.push_back(TraceOp::load(addr, size, is_dep));
        } else if (tag == "S") {
            Addr addr;
            unsigned size;
            std::uint64_t value;
            if (!(ss >> std::hex >> addr >> std::dec >> size >>
                  std::hex >> value))
                fail("malformed store");
            checkSize(size);
            expectEnd(ss);
            trace.push_back(TraceOp::store(addr, size, value));
        } else if (tag == "C") {
            CformOp op;
            std::string nt;
            if (!(ss >> std::hex >> op.lineAddr >> op.setBits >> op.mask))
                fail("malformed cform");
            op.nonTemporal = static_cast<bool>(ss >> nt);
            if (op.nonTemporal && nt != "nt")
                fail("trailing junk '" + nt + "'");
            expectEnd(ss);
            trace.push_back(TraceOp::cformOp(op));
        } else if (tag == "X") {
            std::uint32_t ops;
            if (!(ss >> std::dec >> ops))
                fail("malformed compute");
            expectEnd(ss);
            trace.push_back(TraceOp::compute(ops));
        } else {
            fail("unknown op '" + tag + "'");
        }
    }
    return trace;
}

} // namespace califorms
