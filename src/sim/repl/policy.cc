/**
 * @file policy.cc
 * Concrete replacement policies. See policy.hh for the hook contract.
 *
 * LRU reproduces the pre-laboratory CacheArray byte for byte: the
 * global stamp counter advances on exactly the same events (every hit,
 * every insert, including in-place overwrites) and the victim scan is
 * the same strictly-less argmin over ways in ascending order, so the
 * first minimal way wins ties exactly as before.
 */

#include "sim/repl/policy.hh"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace califorms
{

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
    case ReplPolicy::Inherit: return "inherit";
    case ReplPolicy::Lru: return "lru";
    case ReplPolicy::Random: return "random";
    case ReplPolicy::Dip: return "dip";
    case ReplPolicy::Drrip: return "drrip";
    case ReplPolicy::Ship: return "ship";
    }
    return "?";
}

namespace repl
{
namespace
{

/** True LRU: one monotone stamp per way, victim = oldest stamp. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::size_t sets, unsigned ways)
        : ways_(ways), stamp_(sets * ways, 0)
    {
    }

    void
    onHit(std::size_t set, unsigned way, const LineMeta &) override
    {
        stamp_[set * ways_ + way] = ++clock_;
    }

    void
    onInsert(std::size_t set, unsigned way, const LineMeta &) override
    {
        stamp_[set * ways_ + way] = ++clock_;
    }

    unsigned
    victimWay(std::size_t set, const LineMeta *, unsigned n) override
    {
        unsigned victim = 0;
        for (unsigned w = 1; w < n; ++w)
            if (stamp_[set * ways_ + w] < stamp_[set * ways_ + victim])
                victim = w;
        return victim;
    }

  private:
    unsigned ways_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamp_;
};

/** Seeded deterministic random victim (xorshift64*; fixed seed per
 *  array so two identical runs — and any --jobs N schedule — draw the
 *  identical victim sequence). */
class RandomPolicy final : public ReplacementPolicy
{
  public:
    RandomPolicy(std::size_t, unsigned) {}

    void onHit(std::size_t, unsigned, const LineMeta &) override {}
    void onInsert(std::size_t, unsigned, const LineMeta &) override {}

    unsigned
    victimWay(std::size_t, const LineMeta *, unsigned n) override
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        const std::uint64_t mixed = state_ * 0x2545f4914f6cdd1dull;
        return static_cast<unsigned>((mixed >> 33) % n);
    }

  private:
    std::uint64_t state_ = 0x9e3779b97f4a7c15ull;
};

/**
 * DIP (dynamic insertion policy): LRU recency order everywhere, but
 * dueling the *insertion* point — policy A inserts at MRU (classic
 * LRU), policy B is LIP and inserts at LRU (one stamp below the
 * current set minimum), so a never-reused streaming line is the very
 * next victim instead of flushing the whole set.
 */
class DipPolicy final : public ReplacementPolicy
{
  public:
    DipPolicy(std::size_t sets, unsigned ways)
        : ways_(ways), stamp_(sets * ways, 0)
    {
    }

    void
    onHit(std::size_t set, unsigned way, const LineMeta &) override
    {
        stamp_[set * ways_ + way] = ++clock_;
    }

    void onMiss(std::size_t set) override { duel_.onMiss(set); }

    void
    onInsert(std::size_t set, unsigned way, const LineMeta &) override
    {
        if (duel_.useB(set)) { // LIP: land at the LRU position
            std::int64_t low = stamp_[set * ways_];
            for (unsigned w = 1; w < ways_; ++w)
                low = std::min<std::int64_t>(low,
                                             stamp_[set * ways_ + w]);
            stamp_[set * ways_ + way] = low - 1;
        } else { // classic LRU: land at MRU
            stamp_[set * ways_ + way] = ++clock_;
        }
    }

    unsigned
    victimWay(std::size_t set, const LineMeta *, unsigned n) override
    {
        unsigned victim = 0;
        for (unsigned w = 1; w < n; ++w)
            if (stamp_[set * ways_ + w] < stamp_[set * ways_ + victim])
                victim = w;
        return victim;
    }

  private:
    unsigned ways_;
    std::int64_t clock_ = 0;
    std::vector<std::int64_t> stamp_;
    SetDuel duel_;
};

/** Common 2-bit RRPV machinery of DRRIP and SHiP. */
class RripBase : public ReplacementPolicy
{
  public:
    static constexpr std::uint8_t kMaxRrpv = 3; // 2-bit RRPVs

    RripBase(std::size_t sets, unsigned ways)
        : ways_(ways), rrpv_(sets * ways, kMaxRrpv)
    {
    }

    void
    onHit(std::size_t set, unsigned way, const LineMeta &) override
    {
        rrpv_[set * ways_ + way] = 0; // hit promotion to near-immediate
    }

    unsigned
    victimWay(std::size_t set, const LineMeta *, unsigned n) override
    {
        for (;;) {
            for (unsigned w = 0; w < n; ++w)
                if (rrpv_[set * ways_ + w] >= kMaxRrpv)
                    return w;
            for (unsigned w = 0; w < n; ++w)
                ++rrpv_[set * ways_ + w]; // age the whole set
        }
    }

  protected:
    unsigned ways_;
    std::vector<std::uint8_t> rrpv_;
};

/**
 * DRRIP: set-dueling SRRIP (insert at RRPV kMax-1, "long re-reference")
 * against BRRIP (insert at kMax, except every 32nd insert at kMax-1).
 * The BRRIP throttle is a deterministic counter, not an RNG, keeping
 * runs bit-identical at any --jobs N.
 */
class DrripPolicy final : public RripBase
{
  public:
    static constexpr std::uint32_t kBrripEpsilon = 32;

    using RripBase::RripBase;

    void onMiss(std::size_t set) override { duel_.onMiss(set); }

    void
    onInsert(std::size_t set, unsigned way, const LineMeta &) override
    {
        std::uint8_t insert = kMaxRrpv - 1; // SRRIP
        if (duel_.useB(set)) {              // BRRIP
            insert = (++brripTick_ % kBrripEpsilon == 0) ? kMaxRrpv - 1
                                                         : kMaxRrpv;
        }
        rrpv_[set * ways_ + way] = insert;
    }

  private:
    SetDuel duel_;
    std::uint32_t brripTick_ = 0;
};

/**
 * SHiP-lite: a signature hashed from the line address indexes a table
 * of 3-bit reuse counters (SHCT). A line evicted or invalidated without
 * ever hitting decrements its signature's counter; a hit increments
 * it. Inserts with a zero counter predict "no reuse" and land at
 * distant RRPV (kMax), everything else at kMax-1. PC-less variant —
 * the trace has no program counters, so the address itself is the
 * signature source.
 */
class ShipPolicy final : public RripBase
{
  public:
    static constexpr unsigned kSigBits = 14;
    static constexpr std::uint8_t kShctMax = 7; // 3-bit counters

    ShipPolicy(std::size_t sets, unsigned ways)
        : RripBase(sets, ways),
          shct_(std::size_t{1} << kSigBits, 1),
          sig_(sets * ways, 0),
          live_(sets * ways, 0),
          reused_(sets * ways, 0)
    {
    }

    static std::uint16_t
    signature(Addr line_addr)
    {
        const std::uint64_t h =
            (line_addr >> lineShift) * 0x9e3779b97f4a7c15ull;
        return static_cast<std::uint16_t>(h >> (64 - kSigBits));
    }

    void
    onHit(std::size_t set, unsigned way, const LineMeta &meta) override
    {
        RripBase::onHit(set, way, meta);
        const std::size_t idx = set * ways_ + way;
        if (live_[idx] && !reused_[idx]) {
            reused_[idx] = 1;
            if (shct_[sig_[idx]] < kShctMax)
                ++shct_[sig_[idx]];
        }
    }

    void
    onInsert(std::size_t set, unsigned way, const LineMeta &meta) override
    {
        const std::size_t idx = set * ways_ + way;
        trainOutgoing(idx);
        sig_[idx] = signature(meta.lineAddr);
        live_[idx] = 1;
        reused_[idx] = 0;
        rrpv_[idx] = shct_[sig_[idx]] == 0 ? kMaxRrpv : kMaxRrpv - 1;
    }

    void
    onInvalidate(std::size_t set, unsigned way) override
    {
        trainOutgoing(set * ways_ + way);
    }

  private:
    void
    trainOutgoing(std::size_t idx)
    {
        if (live_[idx] && !reused_[idx] && shct_[sig_[idx]] > 0)
            --shct_[sig_[idx]]; // dead on arrival: demote the signature
        live_[idx] = 0;
        reused_[idx] = 0;
    }

    std::vector<std::uint8_t> shct_;
    std::vector<std::uint16_t> sig_;
    std::vector<std::uint8_t> live_;
    std::vector<std::uint8_t> reused_;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makePolicy(ReplPolicy kind, std::size_t sets, unsigned ways)
{
    switch (kind) {
    case ReplPolicy::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
    case ReplPolicy::Random:
        return std::make_unique<RandomPolicy>(sets, ways);
    case ReplPolicy::Dip:
        return std::make_unique<DipPolicy>(sets, ways);
    case ReplPolicy::Drrip:
        return std::make_unique<DrripPolicy>(sets, ways);
    case ReplPolicy::Ship:
        return std::make_unique<ShipPolicy>(sets, ways);
    case ReplPolicy::Inherit:
        break;
    }
    throw std::invalid_argument(
        "makePolicy: Inherit is not a concrete policy");
}

} // namespace repl
} // namespace califorms
