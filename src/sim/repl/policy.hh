/**
 * @file policy.hh
 * Pluggable set-level replacement policies for CacheArray. The array
 * owns the tags and payloads; the policy owns all victim-selection
 * state (recency stamps, RRPVs, signature tables) and is driven
 * through four hooks:
 *
 *  - onHit(set, way, meta):    a resident line was referenced (a
 *                              lookup hit or an in-place overwrite).
 *  - onMiss(set):              a lookup missed; trains the set-dueling
 *                              PSEL counters of DIP/DRRIP.
 *  - onInsert(set, way, meta): a line landed in a way (fresh fill or
 *                              eviction refill).
 *  - victimWay(set, ways, n):  choose the way to evict; called only
 *                              when every way of the set is valid.
 *  - onInvalidate(set, way):   a line left without being replaced
 *                              (extract / reset), so outcome-tracking
 *                              policies (SHiP) do not mistrain.
 *
 * Every hook that sees a line receives LineMeta, which carries whether
 * the payload is califormed (sentinel/blacklist bytes present). This
 * is what lets the laboratory ask the Califorms question: do
 * scan-resistant policies preferentially evict sentinel-carrying
 * lines, re-inflating conversion cost? CacheArray counts califormed
 * victims in CacheStats::cformEvictions; the policies themselves are
 * payload-agnostic.
 *
 * All policies are deterministic: Random uses a fixed-seed xorshift
 * stream (per array instance), BRRIP throttles with a counter rather
 * than an RNG, and SHiP's signature is a pure hash of the line
 * address. Campaign jobs-invariance therefore holds for every policy.
 */

#ifndef CALIFORMS_SIM_REPL_POLICY_HH
#define CALIFORMS_SIM_REPL_POLICY_HH

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/types.hh"

namespace califorms
{

/** Which victim-selection policy a cache level runs. Inherit is only
 *  meaningful for the per-level override knobs (mem.l2_repl_policy /
 *  mem.llc_repl_policy): it defers to the machine-wide
 *  mem.repl_policy. */
enum class ReplPolicy
{
    Inherit, //!< per-level override unset; follow mem.repl_policy
    Lru,     //!< true LRU (global recency stamps) — the default
    Random,  //!< seeded deterministic xorshift victim
    Dip,     //!< set-dueling LIP vs LRU insertion
    Drrip,   //!< set-dueling SRRIP vs BRRIP (2-bit RRPV)
    Ship,    //!< SHiP-lite: PC-less signature -> reuse counter table
};

/** Config-surface name of @p policy ("inherit", "lru", ...). */
const char *replPolicyName(ReplPolicy policy);

namespace repl
{

/** What a policy may know about a line at hook time. */
struct LineMeta
{
    Addr lineAddr = 0;
    bool dirty = false;
    /** Payload carries blacklisted bytes (BitVectorLine mask != 0 or
     *  SentinelLine::califormed); always false for non-CFORM payloads
     *  such as the int lines the unit tests store. */
    bool califormed = false;
};

/** Abstract per-array replacement state. One instance per CacheArray;
 *  geometry is fixed at construction. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A resident line in (set, way) was referenced. */
    virtual void onHit(std::size_t set, unsigned way,
                       const LineMeta &meta) = 0;

    /** A lookup in @p set missed (before any insert happens). */
    virtual void onMiss(std::size_t set) { (void)set; }

    /** A line was written into (set, way). @p meta describes the
     *  incoming line. */
    virtual void onInsert(std::size_t set, unsigned way,
                          const LineMeta &meta) = 0;

    /**
     * Choose the victim among @p n valid ways of @p set. @p ways[w]
     * describes the current occupant of way w (so a policy could, for
     * instance, deprioritize califormed lines). Called only when the
     * set is full. Must return a value in [0, n).
     */
    virtual unsigned victimWay(std::size_t set, const LineMeta *ways,
                               unsigned n) = 0;

    /** The line in (set, way) vanished without a replacement
     *  (extract / reset). */
    virtual void onInvalidate(std::size_t set, unsigned way)
    {
        (void)set;
        (void)way;
    }
};

/**
 * The shared set-dueling skeleton of DIP and DRRIP (Qureshi et al.).
 * Every kLeaderModulus-th set is a leader for policy A (offset 0) or
 * policy B (offset 1); a 10-bit PSEL counter, initialized to its
 * midpoint, counts misses in the leader sets (A-leader miss increments,
 * B-leader miss decrements) and follower sets adopt whichever policy
 * currently has the lower miss pressure: B when psel > midpoint, A
 * otherwise (ties go to A).
 */
class SetDuel
{
  public:
    static constexpr std::size_t kLeaderModulus = 32;
    static constexpr std::uint32_t kPselMax = 1024; // 10-bit counter
    static constexpr std::uint32_t kPselInit = kPselMax / 2;

    static bool isLeaderA(std::size_t set)
    {
        return set % kLeaderModulus == 0;
    }
    static bool isLeaderB(std::size_t set)
    {
        return set % kLeaderModulus == 1;
    }

    /** Train PSEL on a miss in @p set (no-op in follower sets). */
    void
    onMiss(std::size_t set)
    {
        if (isLeaderA(set)) {
            if (psel_ < kPselMax)
                ++psel_;
        } else if (isLeaderB(set)) {
            if (psel_ > 0)
                --psel_;
        }
    }

    /** Should @p set run policy B? Leaders are pinned to their own
     *  policy; followers consult PSEL. */
    bool
    useB(std::size_t set) const
    {
        if (isLeaderA(set))
            return false;
        if (isLeaderB(set))
            return true;
        return psel_ > kPselInit;
    }

    std::uint32_t psel() const { return psel_; }

  private:
    std::uint32_t psel_ = kPselInit;
};

/** Build the policy state for an array of @p sets x @p ways.
 *  @p kind must be a concrete policy (throws on Inherit). */
std::unique_ptr<ReplacementPolicy> makePolicy(ReplPolicy kind,
                                              std::size_t sets,
                                              unsigned ways);

} // namespace repl
} // namespace califorms

#endif // CALIFORMS_SIM_REPL_POLICY_HH
