#include "sim/machine.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "config/config.hh"
#include "core/sentinel.hh"

namespace califorms
{

Machine::Machine(const MachineParams &params, ExceptionUnit::Policy policy)
    : params_(params), exceptions_(policy), shared_(params.mem)
{
    if (params.core.count < 1 || params.core.count > 32)
        throw std::invalid_argument("Machine: core.count must be 1..32");
    mems_.reserve(params.core.count);
    cores_.reserve(params.core.count);
    lsqs_.reserve(params.core.count);
    for (unsigned c = 0; c < params.core.count; ++c) {
        mems_.push_back(std::make_unique<MemorySystem>(
            params.mem, exceptions_, shared_));
        cores_.emplace_back(params.core, params.mem.l1Latency);
        lsqs_.emplace_back();
    }
}

std::uint64_t
Machine::loadOn(unsigned core, Addr addr, unsigned size,
                bool depends_on_prev)
{
    MemorySystem &mem = *mems_.at(core);
    // Keep the timed miss path's issue clock in step with how far
    // this core's retire clock has actually advanced.
    mem.syncClock(cores_[core].cycles());
    const auto res = mem.load(addr, size);
    cores_[core].retireLoad(res.latency, depends_on_prev);
    return res.value;
}

void
Machine::storeOn(unsigned core, Addr addr, unsigned size,
                 std::uint64_t value)
{
    MemorySystem &mem = *mems_.at(core);
    mem.syncClock(cores_[core].cycles());
    const auto res = mem.store(addr, size, value);
    cores_[core].retireStore(res.latency);
}

void
Machine::cformOn(unsigned core, const CformOp &op)
{
    MemorySystem &mem = *mems_.at(core);
    mem.syncClock(cores_[core].cycles());
    const auto res = mem.cform(op);
    cores_[core].retireCform(res.latency);
}

void
Machine::computeOn(unsigned core, std::uint32_t ops)
{
    cores_.at(core).retireCompute(ops);
}

std::uint8_t
Machine::peekByte(Addr addr) const
{
    if (mems_.size() == 1)
        return mems_[0]->peekByte(addr);
    const Addr la = lineBase(addr);
    BitVectorLine line;
    for (const auto &mem : mems_)
        if (mem->peekPrivateLine(la, line))
            return line.data[lineOffset(addr)];
    return fillLine(shared_.functionalRead(la)).data[lineOffset(addr)];
}

void
Machine::pokeByte(Addr addr, std::uint8_t v)
{
    if (mems_.size() == 1) {
        mems_[0]->pokeByte(addr, v);
        return;
    }
    // Multi-core: write through every private copy *and* the shared
    // side, so clean copies keep matching the hierarchy below them and
    // no replica goes stale (dirty bits are left as they are).
    const Addr la = lineBase(addr);
    BitVectorLine line;
    bool held = false;
    for (const auto &mem : mems_) {
        if (mem->peekPrivateLine(la, line)) {
            held = true;
            break;
        }
    }
    if (!held)
        line = fillLine(shared_.functionalRead(la));
    line.data[lineOffset(addr)] = v;
    for (const auto &mem : mems_)
        mem->pokePrivateLine(la, line);
    shared_.functionalWrite(la, spillLine(line));
}

std::vector<std::uint8_t>
Machine::peekBytes(Addr addr, std::size_t n) const
{
    if (mems_.size() == 1)
        return mems_[0]->peekBytes(addr, n);
    std::vector<std::uint8_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(peekByte(addr + i));
    return out;
}

SecurityMask
Machine::securityMask(Addr addr) const
{
    if (mems_.size() == 1)
        return mems_[0]->securityMask(addr);
    const Addr la = lineBase(addr);
    BitVectorLine line;
    for (const auto &mem : mems_)
        if (mem->peekPrivateLine(la, line))
            return line.mask;
    return fillLine(shared_.functionalRead(la)).mask;
}

Cycles
Machine::cycles() const
{
    Cycles slowest = 0;
    for (const CoreModel &core : cores_)
        slowest = std::max(slowest, core.cycles());
    const auto floor = static_cast<Cycles>(
        static_cast<double>(shared_.dramAccesses()) *
        params_.core.dramCyclesPerLine);
    return std::max(slowest, floor);
}

Cycles
Machine::coreCycles(unsigned core) const
{
    return cores_.at(core).cycles();
}

std::uint64_t
Machine::instructions() const
{
    std::uint64_t total = 0;
    for (const CoreModel &core : cores_)
        total += core.instructions();
    return total;
}

std::uint64_t
Machine::coreInstructions(unsigned core) const
{
    return cores_.at(core).instructions();
}

MemSysStats
Machine::memStats() const
{
    MemSysStats out;
    for (const auto &mem : mems_) {
        const MemSysStats p = mem->privateStats();
        out.l1.hits += p.l1.hits;
        out.l1.misses += p.l1.misses;
        out.l1.evictions += p.l1.evictions;
        out.l1.dirtyEvictions += p.l1.dirtyEvictions;
        out.l1.cformEvictions += p.l1.cformEvictions;
        out.spills += p.spills;
        out.fills += p.fills;
        out.cformOps += p.cformOps;
        out.securityFaults += p.securityFaults;
        out.fillConvCycles += p.fillConvCycles;
        out.spillConvCycles += p.spillConvCycles;
        out.wbHits += p.wbHits;
        out.wbEnqueued += p.wbEnqueued;
        out.wbForcedDrains += p.wbForcedDrains;
        out.wbPeakOccupancy =
            std::max(out.wbPeakOccupancy, p.wbPeakOccupancy);
        out.mshrAllocations += p.mshrAllocations;
        out.mshrCoalesced += p.mshrCoalesced;
        out.mshrStallCycles += p.mshrStallCycles;
        // Per-core tables: the machine-level high-water mark is the
        // fullest any one table got, not a sum across cores.
        out.mshrPeakOccupancy =
            std::max(out.mshrPeakOccupancy, p.mshrPeakOccupancy);
    }
    shared_.mergeStatsInto(out);
    return out;
}

MemSysStats
Machine::coreMemStats(unsigned core) const
{
    return mems_.at(core)->privateStats();
}

void
Machine::flushAll()
{
    for (const auto &mem : mems_)
        mem->flushPrivate();
    shared_.flushLevels();
}

void
Machine::clearStats()
{
    for (CoreModel &core : cores_)
        core.reset();
    for (const auto &mem : mems_)
        mem->clearStats();
}

std::string
describeParams(const MachineParams &params)
{
    // Rendered from the config ParamRegistry: every registered
    // machine knob prints, resolved against @p params, so this
    // Table 3 style listing cannot drift from the actual knob set —
    // a knob added to the registry appears here automatically.
    RunConfig rc;
    rc.machine = params;
    std::ostringstream os;
    os << "machine configuration (x86-64 Westmere-like OoO core, "
          "Table 3 defaults; * = non-default)\n";
    for (const config::ParamSpec &spec :
         config::ParamRegistry::instance().specs()) {
        const bool machine_knob =
            spec.key.rfind("mem.", 0) == 0 ||
            spec.key.rfind("core.", 0) == 0;
        if (!machine_knob)
            continue;
        const config::ParamValue value = spec.read(rc);
        std::string cell =
            spec.key + " = " + config::renderValue(value);
        if (cell.size() < 34)
            cell.resize(34, ' ');
        os << (value == spec.def ? "  " : "* ") << cell << " "
           << spec.doc << "\n";
    }
    return os.str();
}

} // namespace califorms
