#include "sim/machine.hh"

#include <algorithm>
#include <sstream>

namespace califorms
{

Machine::Machine(const MachineParams &params, ExceptionUnit::Policy policy)
    : params_(params), exceptions_(policy), mem_(params.mem, exceptions_),
      core_(params.core, params.mem.l1Latency)
{
}

std::uint64_t
Machine::load(Addr addr, unsigned size, bool depends_on_prev)
{
    const auto res = mem_.load(addr, size);
    core_.retireLoad(res.latency, depends_on_prev);
    return res.value;
}

void
Machine::store(Addr addr, unsigned size, std::uint64_t value)
{
    const auto res = mem_.store(addr, size, value);
    core_.retireStore(res.latency);
}

void
Machine::cform(const CformOp &op)
{
    const auto res = mem_.cform(op);
    core_.retireCform(res.latency);
}

Cycles
Machine::cycles() const
{
    const auto floor = static_cast<Cycles>(
        static_cast<double>(mem_.dramLineTraffic()) *
        params_.core.dramCyclesPerLine);
    return std::max(core_.cycles(), floor);
}

void
Machine::clearStats()
{
    core_.reset();
    mem_.clearStats();
}

std::string
describeParams(const MachineParams &params)
{
    std::ostringstream os;
    os << "Core        x86-64 Westmere-like OoO approximation, width "
       << params.core.issueWidth << ", MLP " << params.core.mlp << "\n"
       << "L1 data     " << params.mem.l1Size / 1024 << "KB, "
       << params.mem.l1Ways << "-way, " << params.mem.l1Latency
       << "-cycle latency\n";
    if (params.mem.levels >= 2 && params.mem.l2Size)
        os << "L2 cache    " << params.mem.l2Size / 1024 << "KB, "
           << params.mem.l2Ways << "-way, " << params.mem.l2Latency
           << "-cycle latency\n";
    else
        os << "L2 cache    disabled\n";
    if (params.mem.levels >= 3 && params.mem.l3Size)
        os << "LLC         " << params.mem.l3Size / 1024 << "KB, "
           << params.mem.l3Ways << "-way, " << params.mem.l3Latency
           << "-cycle latency\n";
    else
        os << "LLC         disabled\n";
    os << "DRAM        " << params.mem.dramLatency << "-cycle latency\n";
    if (params.mem.extraL2L3Latency)
        os << "Extra L2/L3 latency: +" << params.mem.extraL2L3Latency
           << " cycle(s)\n";
    if (params.mem.fillConvLatency || params.mem.spillConvLatency)
        os << "Conversion  fill +" << params.mem.fillConvLatency
           << ", spill +" << params.mem.spillConvLatency
           << " cycle(s)\n";
    if (params.mem.wbQueueEntries)
        os << "WB queue    " << params.mem.wbQueueEntries
           << " entries, hit latency " << params.mem.wbHitLatency
           << "\n";
    return os.str();
}

} // namespace califorms
