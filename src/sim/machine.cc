#include "sim/machine.hh"

#include <algorithm>
#include <sstream>

#include "config/config.hh"

namespace califorms
{

Machine::Machine(const MachineParams &params, ExceptionUnit::Policy policy)
    : params_(params), exceptions_(policy), mem_(params.mem, exceptions_),
      core_(params.core, params.mem.l1Latency)
{
}

std::uint64_t
Machine::load(Addr addr, unsigned size, bool depends_on_prev)
{
    const auto res = mem_.load(addr, size);
    core_.retireLoad(res.latency, depends_on_prev);
    return res.value;
}

void
Machine::store(Addr addr, unsigned size, std::uint64_t value)
{
    const auto res = mem_.store(addr, size, value);
    core_.retireStore(res.latency);
}

void
Machine::cform(const CformOp &op)
{
    const auto res = mem_.cform(op);
    core_.retireCform(res.latency);
}

Cycles
Machine::cycles() const
{
    const auto floor = static_cast<Cycles>(
        static_cast<double>(mem_.dramLineTraffic()) *
        params_.core.dramCyclesPerLine);
    return std::max(core_.cycles(), floor);
}

void
Machine::clearStats()
{
    core_.reset();
    mem_.clearStats();
}

std::string
describeParams(const MachineParams &params)
{
    // Rendered from the config ParamRegistry: every registered
    // machine knob prints, resolved against @p params, so this
    // Table 3 style listing cannot drift from the actual knob set —
    // a knob added to the registry appears here automatically.
    RunConfig rc;
    rc.machine = params;
    std::ostringstream os;
    os << "machine configuration (x86-64 Westmere-like OoO core, "
          "Table 3 defaults; * = non-default)\n";
    for (const config::ParamSpec &spec :
         config::ParamRegistry::instance().specs()) {
        const bool machine_knob =
            spec.key.rfind("mem.", 0) == 0 ||
            spec.key.rfind("core.", 0) == 0;
        if (!machine_knob)
            continue;
        const config::ParamValue value = spec.read(rc);
        std::string cell =
            spec.key + " = " + config::renderValue(value);
        if (cell.size() < 34)
            cell.resize(34, ' ');
        os << (value == spec.def ? "  " : "* ") << cell << " "
           << spec.doc << "\n";
    }
    return os.str();
}

} // namespace califorms
