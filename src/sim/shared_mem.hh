/**
 * @file shared_mem.hh
 * The shared side of the memory hierarchy: every cache level below the
 * private L1s (L2 and the LLC), DRAM, and — when coherence is enabled —
 * a line-granular directory that keeps the private L1s coherent.
 *
 * One SharedMemory instance is shared by all cores of a Machine; each
 * per-core MemorySystem (the private side: L1 + write-back queue +
 * sentinel fill/spill conversion) registers itself as a CoherencePeer
 * and routes all below-L1 traffic here. A standalone MemorySystem owns
 * a private SharedMemory, which reproduces the historical single-
 * requester hierarchy exactly.
 *
 * Coherence model (MemSysParams::coherence == CoherenceKind::Msi) is a
 * directory-based MSI approximation at line granularity:
 *
 *  - The directory tracks, per line, the set of cores that hold a
 *    private copy (L1 or write-back queue) and which core, if any,
 *    owns it modified. Tracking is exact: the private sides notify
 *    every silent drop (noteDropped).
 *  - A write fetch (or a store/CFORM upgrade on a shared copy) sends
 *    invalidations to every other holder. A holder with dirty data
 *    surrenders it — a dirty recall — and the recalled line is handed
 *    straight to the requester (it is the only up-to-date copy).
 *  - A read fetch of a modified line recalls the dirty data, deposits
 *    it into the first shared level, and downgrades the owner to a
 *    clean sharer, so both cores end up with matching clean copies.
 *  - Surrendering a dirty califormed L1 line forces a sentinel encode
 *    during the coherence action: a conversion-under-invalidation
 *    event. Its spill latency is charged to the requesting access
 *    (coherenceConvCycles) — this is the cost class the paper never
 *    measured, and what bench_multicore exists to quantify.
 *
 * With CoherenceKind::None (the default) no directory is kept and no
 * probes are sent; the private L1s are independent islands exactly as
 * in the historical single-core machine.
 */

#ifndef CALIFORMS_SIM_SHARED_MEM_HH
#define CALIFORMS_SIM_SHARED_MEM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/line.hh"
#include "sim/cache_array.hh"
#include "sim/dram_timing.hh"
#include "sim/main_memory.hh"
#include "sim/params.hh"

namespace califorms
{

struct MemSysStats;

/**
 * The interface a private side (one core's L1 + write-back queue)
 * presents to the shared side for coherence probes and drain windows.
 */
class CoherencePeer
{
  public:
    virtual ~CoherencePeer() = default;

    /** Result of a coherence probe delivered to a private side. */
    struct Surrender
    {
        bool hadCopy = false;    //!< the peer held the line at all
        bool dirty = false;      //!< dirty data surrendered in @c line
        bool retained = false;   //!< peer keeps a clean copy (downgrade)
        bool converted = false;  //!< surrender forced a sentinel encode
        SentinelLine line{};     //!< the surrendered data when dirty
    };

    /**
     * Give up (invalidate == true) or downgrade to clean (== false) the
     * private copy of @p line_addr, wherever it lives (L1 or write-back
     * queue). Downgrades keep a clean L1 copy; queue entries always
     * leave the core entirely.
     */
    virtual Surrender surrenderLine(Addr line_addr, bool invalidate) = 0;

    /** A DRAM demand service for this peer is in progress: the idle bus
     *  window that drains one of its queued write-backs. */
    virtual void drainOneWriteBack() = 0;
};

class SharedMemory
{
  public:
    explicit SharedMemory(const MemSysParams &params);

    /** Register a private side; returns its core id (attachment order). */
    unsigned attachPeer(CoherencePeer &peer);

    /** Result of a below-L1 fetch. */
    struct FetchResult
    {
        SentinelLine line{};
        /** The line is a dirty recall handed directly to the requester:
         *  it is the only copy and must stay dirty in the new L1. */
        bool dirtyHandoff = false;
        /** Cycles the DRAM transfer queued behind a busy bank. Not
         *  part of @p latency (the window overlaps queueing); the
         *  requester adds it to the fill's completion time so bank
         *  pressure backs up the MSHR table instead. */
        Cycles bankQueueWait = 0;
    };

    /**
     * Fetch a line for core @p core: coherence probes first, then the
     * shared levels, then DRAM (filling the levels on the way up, and
     * opening the requester's write-back drain window on a DRAM
     * service). Latency accumulates into @p latency. @p issue_time is
     * the requester's absolute clock when the fetch entered the shared
     * side; banked DRAM timing (mem.dram_banks > 0) uses it to place
     * the access on the bank timeline. The flat model ignores it, so
     * untimed callers can leave it 0.
     */
    FetchResult fetchLine(Addr line_addr, Cycles &latency, unsigned core,
                          bool for_write, Cycles issue_time = 0);

    /**
     * Make @p core the exclusive modified owner of a line it already
     * holds (store/CFORM hit on a potentially shared copy). Sends
     * invalidations to every other holder; a stale dirty surrender is
     * deposited below defensively.
     */
    void upgrade(unsigned core, Addr line_addr, Cycles &latency);

    /** Accept a dirty encoded line from a private side (write-back or
     *  flush): insert into the first shared level, or DRAM when the
     *  hierarchy has no levels below the L1s. */
    void writeBack(Addr line_addr, const SentinelLine &line);

    /** The private side of @p core no longer holds @p line_addr (clean
     *  eviction, write-back drain, or flush). */
    void noteDropped(unsigned core, Addr line_addr);

    /** Next-line streamer: pull @p line_addr into the first shared
     *  level if no level holds it yet (demand stats untouched, DRAM
     *  bandwidth paid). Skipped for lines a core owns modified. */
    void prefetchInto(Addr line_addr);

    /** Write every dirty line of the shared levels to DRAM and drop all
     *  level contents (the deepest level's writes are not counted,
     *  matching the historical flush convention). */
    void flushLevels();

    // Functional (untimed) access below the private sides.
    /** Lookup in the shared levels only; null when absent. */
    const SentinelLine *peekLevels(Addr line_addr) const;
    /** Line content seen from the shared side (levels, then DRAM). */
    SentinelLine functionalRead(Addr line_addr) const;
    /** Write-through to wherever the line lives on the shared side. */
    void functionalWrite(Addr line_addr, const SentinelLine &line);

    /** Fold the shared-side counters (L2/L3 stats, DRAM accesses,
     *  coherence counters) into @p out. */
    void mergeStatsInto(MemSysStats &out) const;
    void clearStats();

    /** Lines moved to or from DRAM (the bandwidth roofline quantity). */
    std::uint64_t dramAccesses() const { return dramAccesses_; }

    MainMemory &memory() { return memory_; }
    const MainMemory &memory() const { return memory_; }
    const MemSysParams &params() const { return params_; }

    /** The banked DRAM timing model (enabled() false on the flat
     *  default machine). */
    const DramTiming &dram() const { return dram_; }

    /** Number of enabled shared levels (0, 1 or 2). */
    std::size_t levelCount() const { return below_.size(); }

    /** Latency of the first shared level (for reporting); the DRAM
     *  latency when no level is enabled. */
    Cycles firstLevelLatency() const;

    /** True when MSI probes are actually exchanged (coherence enabled
     *  and more than one private side attached). */
    bool coherent() const
    {
        return params_.coherence == CoherenceKind::Msi &&
               peers_.size() > 1;
    }

  private:
    /** One sentinel-format shared cache level. */
    struct Level
    {
        CacheArray<SentinelLine> array;
        Cycles latency;
        unsigned id; //!< 2 = L2, 3 = LLC; selects the stats slot
    };

    /** Directory state for one line with at least one private holder. */
    struct DirEntry
    {
        std::uint32_t sharers = 0; //!< bit per core holding a copy
        int owner = -1;            //!< core holding it modified, or -1
    };

    /** Probe every other holder of @p line_addr. Invalidations clear
     *  their copies; downgrades (for_write == false) only probe the
     *  modified owner. A recalled dirty line lands in @p recalled. */
    bool probeHolders(Addr line_addr, unsigned core, bool for_write,
                      Cycles &latency, SentinelLine &recalled);

    /** Cascade a dirty eviction from @p level into the next enabled
     *  level or DRAM. */
    void writeBackLevel(std::size_t level,
                        const CacheArray<SentinelLine>::Evicted &ev);

    MemSysParams params_;
    std::vector<Level> below_; //!< enabled shared levels, nearest first
    MainMemory memory_;
    DramTiming dram_;
    std::vector<CoherencePeer *> peers_;
    std::unordered_map<Addr, DirEntry> directory_;

    std::uint64_t dramAccesses_ = 0;
    std::uint64_t invalidationsSent_ = 0;
    std::uint64_t dirtyRecalls_ = 0;
    std::uint64_t convUnderInval_ = 0;
    std::uint64_t coherenceConvCycles_ = 0;
};

} // namespace califorms

#endif // CALIFORMS_SIM_SHARED_MEM_HH
