/**
 * @file trace.hh
 * Memory trace representation, replay, and a plain-text serialization
 * format. Lets downstream users drive the simulated machine from
 * recorded or generated traces without writing C++ — the classic
 * trace-driven simulator workflow.
 *
 * Text format, one op per line (comments start with '#'):
 *
 *   L <addr-hex> <size> [dep]        load; "dep" marks pointer chasing
 *   S <addr-hex> <size> <value-hex>  store
 *   C <line-hex> <set-hex> <mask-hex> [nt]  CFORM (nt = non-temporal)
 *   X <ops>                          compute block of <ops> micro-ops
 */

#ifndef CALIFORMS_SIM_TRACE_HH
#define CALIFORMS_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/cform.hh"
#include "sim/machine.hh"

namespace califorms
{

/** One operation in a trace. */
struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        Load,
        Store,
        Cform,
        Compute,
    };

    Kind kind = Kind::Compute;
    bool dependsOnPrev = false; //!< loads only
    std::uint8_t size = 8;      //!< loads/stores
    std::uint32_t computeOps = 0;
    Addr addr = 0;
    std::uint64_t value = 0;    //!< store data
    CformOp cform{};

    static TraceOp load(Addr addr, unsigned size, bool dep = false);
    static TraceOp store(Addr addr, unsigned size, std::uint64_t value);
    static TraceOp cformOp(const CformOp &op);
    static TraceOp compute(std::uint32_t ops);
};

using Trace = std::vector<TraceOp>;

/** Replay @p trace on @p machine; returns loads' value XOR (a cheap
 *  checksum so replays can be compared). */
std::uint64_t runTrace(Machine &machine, const Trace &trace);

/** Serialize to the text format. */
void writeTrace(std::ostream &os, const Trace &trace);

/** Parse the text format; throws std::runtime_error on bad input with
 *  the offending line number. */
Trace readTrace(std::istream &is);

} // namespace califorms

#endif // CALIFORMS_SIM_TRACE_HH
