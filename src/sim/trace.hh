/**
 * @file trace.hh
 * Memory trace representation, replay, and two serializations — a
 * plain-text format and a compact streaming binary format. Lets
 * downstream users drive the simulated machine from recorded or
 * generated traces without writing C++ — the classic trace-driven
 * simulator workflow.
 *
 * Text format, one op per line (comments start with '#'):
 *
 *   L <addr-hex> <size> [dep]        load; "dep" marks pointer chasing
 *   S <addr-hex> <size> <value-hex>  store
 *   C <line-hex> <set-hex> <mask-hex> [nt]  CFORM (nt = non-temporal)
 *   X <ops>                          compute block of <ops> micro-ops
 *
 * Binary format (roughly 3-5 bytes/op vs ~15 for text, and parsed
 * without any line splitting — multi-million-op traces stream straight
 * into the machine):
 *
 *   header   6-byte magic "CALTRC", u8 version (currently 1),
 *            u8 reserved (0), varint op count (the length prefix)
 *   per op   1 tag byte: bits 0-1 kind (0=L 1=S 2=C 3=X), bit 2 the
 *            dep/nt flag, bits 3-6 size-1 for loads/stores
 *            L: varint zigzag(addr - prevAddr)
 *            S: varint zigzag(addr - prevAddr), varint value
 *            C: varint zigzag(lineAddr - prevAddr), varint setBits,
 *               varint mask
 *            X: varint computeOps
 *
 * prevAddr starts at 0 and tracks the last address-carrying op, so the
 * hot case (small strides, pointer chases within a region) encodes in
 * one or two address bytes. The reader rejects truncated headers,
 * version mismatches, truncated op bodies, and trailing junk after the
 * declared op count. Both formats are canonical: parse -> serialize is
 * byte-identity, so text <-> binary conversion round-trips exactly.
 */

#ifndef CALIFORMS_SIM_TRACE_HH
#define CALIFORMS_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/cform.hh"
#include "sim/machine.hh"

namespace califorms
{

/** One operation in a trace. */
struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        Load,
        Store,
        Cform,
        Compute,
    };

    Kind kind = Kind::Compute;
    bool dependsOnPrev = false; //!< loads only
    std::uint8_t size = 8;      //!< loads/stores
    std::uint32_t computeOps = 0;
    Addr addr = 0;
    std::uint64_t value = 0;    //!< store data
    CformOp cform{};

    static TraceOp load(Addr addr, unsigned size, bool dep = false);
    static TraceOp store(Addr addr, unsigned size, std::uint64_t value);
    static TraceOp cformOp(const CformOp &op);
    static TraceOp compute(std::uint32_t ops);
};

using Trace = std::vector<TraceOp>;

/** The two on-disk trace serializations. */
enum class TraceFormat
{
    Text,
    Binary,
};

/** Binary header constants (see the format comment above). */
inline constexpr char kBinTraceMagic[6] = {'C', 'A', 'L', 'T', 'R',
                                           'C'};
inline constexpr std::uint8_t kBinTraceVersion = 1;

/** Replay @p trace on @p machine; returns loads' value XOR (a cheap
 *  checksum so replays can be compared). */
std::uint64_t runTrace(Machine &machine, const Trace &trace);

/** Serialize to the text format. */
void writeTrace(std::ostream &os, const Trace &trace);

/** Parse the text format; throws std::runtime_error on bad input with
 *  the offending line number. */
Trace readTrace(std::istream &is);

/** Serialize to the binary format (header + every op). */
void writeTraceBinary(std::ostream &os, const Trace &trace);

/** Parse the binary format; throws std::runtime_error on a bad magic,
 *  unsupported version, truncation, or trailing junk. */
Trace readTraceBinary(std::istream &is);

// Streaming interface ---------------------------------------------------
//
// The vector-of-ops API above materializes whole traces; the streaming
// classes below replay arbitrarily long traces in constant memory.

/** Incremental trace source: yields one op at a time. */
class TraceReader
{
  public:
    virtual ~TraceReader() = default;
    /** Produce the next op into @p op; false at end of trace. Throws
     *  std::runtime_error on malformed input. */
    virtual bool next(TraceOp &op) = 0;

    /** Bulk variant: produce up to @p max ops into @p out, returning
     *  the count actually written (< max only at end of trace). The
     *  default loops next(); sources with cheaper batch decodes
     *  override it. One virtual call per batch instead of per op is
     *  what the fleet replay loop (fleet/batch.hh) builds on. */
    virtual std::size_t
    fill(TraceOp *out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }
};

/**
 * Open @p is as a trace, auto-detecting the format from the first
 * bytes: a "CALTRC" magic selects the binary reader (validating the
 * version), anything else falls back to the text parser (which then
 * reports its own diagnostics, so a corrupt header never replays as
 * text silently — text lines never start with the magic).
 */
std::unique_ptr<TraceReader> openTraceReader(std::istream &is);

/** Force a specific format (no sniffing; binary validates the header
 *  immediately). */
std::unique_ptr<TraceReader> openTraceReader(std::istream &is,
                                             TraceFormat format);

/** Incremental trace sink; the binary writer needs the final op count
 *  up front (the format is length-prefixed). */
class TraceWriter
{
  public:
    virtual ~TraceWriter() = default;
    virtual void put(const TraceOp &op) = 0;
    /** Flush and verify the op count; called once, after the last put.
     *  Throws std::runtime_error if the count does not match. */
    virtual void finish() = 0;
};

/** Create a streaming writer. @p op_count is required (and enforced)
 *  for the binary format; the text writer ignores it. */
std::unique_ptr<TraceWriter> makeTraceWriter(std::ostream &os,
                                             TraceFormat format,
                                             std::uint64_t op_count);

/** Replay every op @p reader yields; returns the loads' value XOR, and
 *  the op count via @p ops_replayed when non-null. */
std::uint64_t runTrace(Machine &machine, TraceReader &reader,
                       std::uint64_t *ops_replayed = nullptr);

/**
 * Replay per-core streams on a multi-core machine with a deterministic
 * round-robin interleave: one op from core 0, one from core 1, ... each
 * round, in core order; a stream that ends drops out of the rotation
 * while the rest continue. @p streams must contain exactly
 * machine.coreCount() entries (throws std::invalid_argument
 * otherwise). Returns the loads' value XOR across all cores (and the
 * total op count via @p ops_replayed) — with one stream this is
 * exactly runTrace. The fixed policy makes any (machine, streams) pair
 * reproduce the same cycles, stats, and checksum on every run.
 */
std::uint64_t
runTraceInterleaved(Machine &machine,
                    const std::vector<TraceReader *> &streams,
                    std::uint64_t *ops_replayed = nullptr);

namespace detail
{
// Internal plumbing shared between trace.cc (text side) and
// trace_bin.cc (binary side + auto-detect); not part of the API.
void writeTraceOpText(std::ostream &os, const TraceOp &op);
std::unique_ptr<TraceReader> makeTextReader(std::istream &is,
                                            std::string carry);
std::unique_ptr<TraceWriter> makeTextWriter(std::ostream &os);
} // namespace detail

} // namespace califorms

#endif // CALIFORMS_SIM_TRACE_HH
