/**
 * @file stats_dump.hh
 * gem5-style flat statistics dump for a Machine: every counter on one
 * "name value # description" line, suitable for diffing across runs
 * and for downstream scripting. The underlying name/value entries are
 * exposed so other emitters (exp/report JSON and CSV) reuse the exact
 * same stat names.
 */

#ifndef CALIFORMS_SIM_STATS_DUMP_HH
#define CALIFORMS_SIM_STATS_DUMP_HH

#include <string>
#include <vector>

#include "sim/machine.hh"

namespace califorms
{

/** One named statistic. */
struct StatEntry
{
    std::string name;
    double value = 0;
    const char *desc = "";
};

/** The memory-system counters under their canonical dump names
 *  (l1d.*, l2.*, l3.*, dram.*, califorms.*). */
std::vector<StatEntry> memStatEntries(const MemSysStats &mem);

/** Render all machine statistics in a flat, diffable format. */
std::string dumpStats(const Machine &machine);

} // namespace califorms

#endif // CALIFORMS_SIM_STATS_DUMP_HH
