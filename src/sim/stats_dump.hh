/**
 * @file stats_dump.hh
 * gem5-style flat statistics dump for a Machine: every counter on one
 * "name value # description" line, suitable for diffing across runs
 * and for downstream scripting. The underlying name/value entries are
 * exposed so other emitters (exp/report JSON and CSV) reuse the exact
 * same stat names.
 */

#ifndef CALIFORMS_SIM_STATS_DUMP_HH
#define CALIFORMS_SIM_STATS_DUMP_HH

#include <string>
#include <vector>

#include "sim/machine.hh"

namespace califorms
{

/** One named statistic. */
struct StatEntry
{
    std::string name;
    double value = 0;
    const char *desc = "";
};

/**
 * Which generation of the stat-name list to emit. V1 is the exact list
 * the califorms-campaign/v1 reports carried (l1d.*, l2.*, l3.*,
 * dram.*, califorms.{spills,fills,cformOps,securityFaults}); V2
 * appends the hierarchy counters introduced with the multi-level
 * refactor (conversion cycles, write-back queue). V1 stays emittable
 * so old report consumers keep working byte for byte.
 */
enum class StatSchema
{
    V1,
    V2,
};

/** The memory-system counters under their canonical dump names
 *  (l1d.*, l2.*, l3.*, dram.*, califorms.*, wbq.*). */
std::vector<StatEntry> memStatEntries(const MemSysStats &mem,
                                      StatSchema schema = StatSchema::V2);

/** The coherence.* counters. Kept out of memStatEntries so every
 *  single-core emission (dump, report JSON/CSV) stays byte-identical;
 *  emitters append these only for multi-core or coherence-enabled
 *  machines. */
std::vector<StatEntry> coherenceStatEntries(const MemSysStats &mem);

/** The mshr.* and dram row-buffer counters. Same convention as
 *  coherenceStatEntries: emitters append these only when the
 *  non-blocking timing model is configured (mem.mshr_entries > 0 or
 *  mem.dram_banks > 0), so every flat-latency emission stays
 *  byte-identical. */
std::vector<StatEntry> memlpStatEntries(const MemSysStats &mem,
                                        const MemSysParams &params);

/** The repl.* counters of the replacement-policy laboratory:
 *  per-level califormed-victim eviction counts and the overall
 *  califormed victim rate. Same convention again: emitters append
 *  these only when some level runs a non-default policy
 *  (replPolicyActive), so every historical LRU emission stays
 *  byte-identical. */
std::vector<StatEntry> replStatEntries(const MemSysStats &mem,
                                       const MemSysParams &params);

/** Render all machine statistics in a flat, diffable format. */
std::string dumpStats(const Machine &machine);

} // namespace califorms

#endif // CALIFORMS_SIM_STATS_DUMP_HH
