/**
 * @file stats_dump.hh
 * gem5-style flat statistics dump for a Machine: every counter on one
 * "name value # description" line, suitable for diffing across runs
 * and for downstream scripting.
 */

#ifndef CALIFORMS_SIM_STATS_DUMP_HH
#define CALIFORMS_SIM_STATS_DUMP_HH

#include <string>

#include "sim/machine.hh"

namespace califorms
{

/** Render all machine statistics in a flat, diffable format. */
std::string dumpStats(const Machine &machine);

} // namespace califorms

#endif // CALIFORMS_SIM_STATS_DUMP_HH
