/**
 * @file campaign.hh
 * Deterministic parallel campaign engine.
 *
 * The paper's evaluation is a grid of independent simulations:
 * benchmark x insertion policy x span size x layout seed. A
 * CampaignSpec describes that grid declaratively; expand() flattens it
 * into RunUnits in a fixed submission order; runCampaign() executes the
 * units on a work-stealing std::jthread pool and collects results
 * indexed by submission order, so the output is bit-identical whether
 * the campaign runs on one thread or sixteen. Every bench harness and
 * the `califorms sweep` subcommand drive their grids through this
 * engine (see bench/common.hh and tools/cmd_sweep.cc).
 */

#ifndef CALIFORMS_EXP_CAMPAIGN_HH
#define CALIFORMS_EXP_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "workload/runner.hh"

namespace califorms::exp
{

/**
 * One column of a campaign: a named deviation from the base RunConfig.
 * Fields left at their defaults keep the base configuration's value.
 */
struct Variant
{
    Variant() = default;
    /** The classic seven-field shape every harness spells out; the
     *  hierarchy axis fields start at their keep-the-base defaults. */
    Variant(std::string label_, InsertionPolicy policy_,
            std::size_t maxSpan_ = 0, std::size_t fixedSpan_ = 0,
            std::optional<bool> cform_ = std::nullopt,
            bool randomized_ = true,
            std::function<void(RunConfig &)> tweak_ = {})
        : label(std::move(label_)), policy(policy_), maxSpan(maxSpan_),
          fixedSpan(fixedSpan_), cform(cform_), randomized(randomized_),
          tweak(std::move(tweak_))
    {}

    std::string label;
    InsertionPolicy policy = InsertionPolicy::None;
    std::size_t maxSpan = 0;   //!< 0 = keep base PolicyParams::maxSpan
    std::size_t fixedSpan = 0; //!< 0 = keep base PolicyParams::fixedSpan
    /** nullopt = keep the base allocators' CFORM setting. */
    std::optional<bool> cform;
    /** False: layout randomization is irrelevant (e.g. the baseline or
     *  a fixed-span policy) — run only the first layout seed. */
    bool randomized = true;
    /** Escape hatch for knobs the declarative fields do not cover
     *  (L1 format, extra latency, heap parameters, ...). Applied last,
     *  during expand(), never concurrently. */
    std::function<void(RunConfig &)> tweak;

    // Hierarchy grid axis (califorms-campaign/v2): overrides of the
    // base machine's memory hierarchy, applied before tweak.
    unsigned levels = 0;              //!< 0 = keep the base depth
    std::optional<std::size_t> l2Kb;  //!< L2 capacity in KB; 0 disables
    std::optional<std::size_t> llcKb; //!< LLC capacity in KB; 0 disables

    /**
     * Registry-key overrides ("core.mlp" = "16", ...): any knob in the
     * config ParamRegistry is a grid dimension. Validated eagerly by
     * crossKey()/withSet(); applied during expand() after the
     * declarative fields and the seed-list assignment (so a
     * layout.seed override really applies — note the campaign seed
     * axis then repeats the same seed), before tweak. Reports embed
     * these as the variant's resolved non-default config (v2 only;
     * variants without sets serialize exactly as before).
     */
    std::vector<std::pair<std::string, std::string>> sets;

    /** Append one validated key=value override; throws
     *  std::invalid_argument on an unknown key or bad value. */
    Variant &withSet(const std::string &key, const std::string &value);
};

/** True for policies whose layout depends on the span-size axis. */
bool policyUsesSpans(InsertionPolicy policy);

/**
 * True for registry keys owned by a campaign grid itself — policy,
 * seed, and the span sizes come from the variant list and the seed
 * axis, so a base-level config set of these would be silently
 * overwritten during expand(). Grid drivers (califorms sweep, the
 * bench harnesses) reject them; sweeping them as an explicit variant
 * axis (Variant::sets) still works.
 */
bool gridOwnedKey(const std::string &key);

/** One expanded grid cell, tagged with its position. */
struct RunUnit
{
    std::size_t index = 0; //!< submission order == result slot
    const SpecBenchmark *bench = nullptr;
    std::size_t benchIndex = 0;
    std::size_t variantIndex = 0;
    std::size_t seedIndex = 0;
    RunConfig config{};
};

/** The declarative grid. */
struct CampaignSpec
{
    std::string name; //!< experiment name for reports
    std::vector<const SpecBenchmark *> suite;
    std::vector<Variant> variants;
    /** Layout seeds averaged over for randomized variants; the first
     *  entry doubles as the seed for non-randomized variants. */
    std::vector<std::uint64_t> layoutSeeds = {1000};
    RunConfig base{};

    /** The conventional seed list: first, first+1, ... (n entries). */
    static std::vector<std::uint64_t>
    seedRange(unsigned n, std::uint64_t first = 1000);

    /**
     * Cross @p policies with the @p spans axis, filtering the span
     * dimension: span-using policies (full/intelligent/fixed) get one
     * variant per span, the others (none/opportunistic) appear once.
     */
    static std::vector<Variant>
    crossPolicySpans(const std::vector<InsertionPolicy> &policies,
                     const std::vector<std::size_t> &spans);

    /**
     * Cross @p variants with a hierarchy-depth axis: one copy of every
     * variant per entry of @p levels, labelled "label@L<n>", levels-
     * major (all variants at the first depth, then the next). A single-
     * entry axis still rewrites the labels — callers that want the
     * plain variants simply do not cross.
     */
    static std::vector<Variant>
    crossLevels(const std::vector<Variant> &variants,
                const std::vector<unsigned> &levels);

    /**
     * Cross @p variants with an arbitrary registered config key: one
     * copy of every variant per entry of @p values, labelled
     * "label@key=value", value-major (all variants at the first value,
     * then the next) — the axis shape of crossLevels, but over any
     * knob in the ParamRegistry. Throws std::invalid_argument on an
     * unknown key or an out-of-bounds value.
     */
    static std::vector<Variant>
    crossKey(const std::vector<Variant> &variants,
             const std::string &key,
             const std::vector<std::string> &values);

    /** Flatten to units, benchmark-major then variant then seed. */
    std::vector<RunUnit> expand() const;
};

/** 0 means "all hardware threads"; always returns >= 1. */
unsigned effectiveJobs(unsigned jobs);

/**
 * Execute task(0), ..., task(count-1) on @p jobs work-stealing
 * workers (jobs==1 runs inline on the caller). Tasks must be
 * independent; each writes its own result slot. The first exception
 * thrown by a task stops the pool and is rethrown after it drains.
 * This is the engine under runUnits(), exposed so other subsystems
 * (the fleet serving engine) schedule on the same deterministic pool.
 */
void runTasks(std::size_t count,
              const std::function<void(std::size_t)> &task,
              unsigned jobs);

/**
 * Execute @p units on @p jobs workers (work-stealing; jobs==1 runs
 * inline). results[i] corresponds to units[i] regardless of jobs. The
 * first exception thrown by a unit is rethrown after the pool drains.
 */
std::vector<RunResult> runUnits(const std::vector<RunUnit> &units,
                                unsigned jobs);

/** A finished campaign: the spec, its expansion, and all results. */
struct CampaignResult
{
    CampaignSpec spec;
    std::vector<RunUnit> units;
    std::vector<RunResult> results; //!< results[i] is for units[i]

    /** Mean cycles over the layout seeds of one (benchmark, variant)
     *  cell, summed in seed order (so the value is job-count
     *  independent). */
    double meanCycles(std::size_t bench_idx,
                      std::size_t variant_idx) const;

    /** The single result of one fully-indexed cell (throws if the cell
     *  was not part of the grid). */
    const RunResult &at(std::size_t bench_idx, std::size_t variant_idx,
                        std::size_t seed_idx = 0) const;
};

/** Expand and run the whole campaign. */
CampaignResult runCampaign(const CampaignSpec &spec, unsigned jobs = 1);

} // namespace califorms::exp

#endif // CALIFORMS_EXP_CAMPAIGN_HH
