#include "exp/report.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "config/config.hh"
#include "layout/policy.hh"
#include "sim/stats_dump.hh"
#include "util/jsonout.hh"

namespace califorms::exp
{

namespace
{

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

/** RFC 4180 quoting for fields that may carry delimiters. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        out += c;
        if (c == '"')
            out += '"';
    }
    out += '"';
    return out;
}

/**
 * The resolved non-default configuration of a registry-axis variant as
 * a JSON object (typed values, registry key order). Only variants with
 * explicit key=value sets have one — every other variant serializes
 * exactly as it did before the config registry existed.
 */
std::string
variantConfigJson(const Variant &variant)
{
    config::Config cfg;
    for (const auto &[key, value] : variant.sets)
        cfg.set(key, value); // validated at withSet/expand time
    std::string out = "{";
    bool first = true;
    for (const auto &[key, text] : cfg.entries()) {
        const config::ParamSpec *spec =
            config::ParamRegistry::instance().find(key);
        out += first ? "" : ", ";
        out += jsonString(key) + ": ";
        out += spec->type == config::ParamType::Enum
                   ? jsonString(text)
                   : text;
        first = false;
    }
    out += "}";
    return out;
}

void
runJson(std::ostringstream &os, const RunUnit &unit,
        const RunResult &r, const CampaignSpec &spec,
        ReportSchema schema)
{
    const Variant &variant = spec.variants[unit.variantIndex];
    os << "    {\"benchmark\": " << jsonString(r.benchmark)
       << ", \"variant\": " << jsonString(variant.label)
       << ", \"variantIndex\": " << unit.variantIndex
       << ", \"layoutSeed\": " << u64(unit.config.layoutSeed);
    if (schema == ReportSchema::V2)
        os << ", \"levels\": " << unit.config.machine.mem.levels;
    os << ",\n     \"cycles\": " << u64(r.cycles)
       << ", \"instructions\": " << u64(r.instructions)
       << ", \"ipc\": "
       << jsonNumber(r.cycles ? static_cast<double>(r.instructions) /
                                    static_cast<double>(r.cycles)
                              : 0.0)
       << ",\n     \"mem\": {";
    bool first = true;
    const StatSchema stat_schema = schema == ReportSchema::V1
                                       ? StatSchema::V1
                                       : StatSchema::V2;
    for (const StatEntry &e : memStatEntries(r.mem, stat_schema)) {
        os << (first ? "" : ", ") << jsonString(e.name) << ": "
           << jsonNumber(e.value);
        first = false;
    }
    os << "}";
    // Multi-core runs carry the shared-side coherence counters and a
    // per-core private breakdown; r.cores is empty on single-core
    // runs, so every historical report stays byte-identical.
    if (schema == ReportSchema::V2 && !r.cores.empty()) {
        os << ",\n     \"coherence\": {";
        first = true;
        for (const StatEntry &e : coherenceStatEntries(r.mem)) {
            os << (first ? "" : ", ") << jsonString(e.name) << ": "
               << jsonNumber(e.value);
            first = false;
        }
        os << "},\n     \"cores\": [";
        for (std::size_t c = 0; c < r.cores.size(); ++c) {
            const CoreRunStats &core = r.cores[c];
            os << (c ? ",\n               " : "") << "{\"core\": " << c
               << ", \"cycles\": " << u64(core.cycles)
               << ", \"instructions\": " << u64(core.instructions)
               << ", \"l1dHits\": " << u64(core.mem.l1.hits)
               << ", \"l1dMisses\": " << u64(core.mem.l1.misses)
               << ", \"spills\": " << u64(core.mem.spills)
               << ", \"fills\": " << u64(core.mem.fills)
               << ", \"cformOps\": " << u64(core.mem.cformOps)
               << ", \"securityFaults\": "
               << u64(core.mem.securityFaults) << "}";
        }
        os << "]";
    }
    // Runs whose resolved config enables the non-blocking timing
    // model carry the mshr.*/dram row-buffer counters; flat-latency
    // runs omit the block, so every historical report stays
    // byte-identical.
    const MemSysParams &unit_mem = unit.config.machine.mem;
    if (schema == ReportSchema::V2 &&
        (unit_mem.mshrEntries > 0 || unit_mem.dramBanks > 0)) {
        os << ",\n     \"memlp\": {";
        first = true;
        for (const StatEntry &e : memlpStatEntries(r.mem, unit_mem)) {
            os << (first ? "" : ", ") << jsonString(e.name) << ": "
               << jsonNumber(e.value);
            first = false;
        }
        os << "}";
    }
    // Runs with a non-default replacement policy on some level carry
    // the per-level califormed-victim counters; default-LRU runs omit
    // the block under the same byte-identity convention.
    if (schema == ReportSchema::V2 && replPolicyActive(unit_mem)) {
        os << ",\n     \"repl\": {";
        first = true;
        for (const StatEntry &e : replStatEntries(r.mem, unit_mem)) {
            os << (first ? "" : ", ") << jsonString(e.name) << ": "
               << jsonNumber(e.value);
            first = false;
        }
        os << "}";
    }
    // Attack replay runs carry the scenario rollup; every other
    // benchmark leaves trials at 0 and omits the block under the same
    // byte-identity convention.
    if (schema == ReportSchema::V2 && r.security.trials > 0) {
        os << ",\n     \"security\": {\"scenario\": "
           << jsonString(r.security.scenario)
           << ", \"trials\": " << u64(r.security.trials)
           << ", \"successes\": " << u64(r.security.successes)
           << ", \"successProbability\": "
           << jsonNumber(static_cast<double>(r.security.successes) /
                         static_cast<double>(r.security.trials))
           << ", \"detections\": " << u64(r.security.detections)
           << ", \"probes\": " << u64(r.security.probes)
           << ", \"bytesTouched\": " << u64(r.security.bytesTouched)
           << ", \"crashes\": " << u64(r.security.crashes)
           << ", \"detectionLatencyCycles\": "
           << u64(r.security.detectionLatencyCycles) << "}";
    }
    os << ",\n     \"heap\": {\"allocs\": " << u64(r.heap.allocs)
       << ", \"frees\": " << u64(r.heap.frees)
       << ", \"reuses\": " << u64(r.heap.reuses)
       << ", \"cformsIssued\": " << u64(r.heap.cformsIssued)
       << ", \"bytesAllocated\": " << u64(r.heap.bytesAllocated)
       << ", \"peakHeapBytes\": " << u64(r.heap.peakHeapBytes)
       << "},\n     \"exceptions\": {\"delivered\": "
       << u64(r.exceptionsDelivered)
       << ", \"suppressed\": " << u64(r.exceptionsSuppressed) << "}}";
}

} // namespace

std::string
campaignJson(const CampaignResult &result, const ReportTiming &timing,
             ReportSchema schema)
{
    const CampaignSpec &spec = result.spec;
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"califorms-campaign/"
       << (schema == ReportSchema::V1 ? "v1" : "v2") << "\",\n";
    os << "  \"campaign\": " << jsonString(spec.name) << ",\n";
    os << "  \"scale\": " << jsonNumber(spec.base.scale) << ",\n";
    if (schema == ReportSchema::V2) {
        const MemSysParams &mem = spec.base.machine.mem;
        os << "  \"hierarchy\": {\"levels\": " << mem.levels
           << ", \"l1KB\": " << mem.l1Size / 1024
           << ", \"l2KB\": " << mem.l2Size / 1024
           << ", \"llcKB\": " << mem.l3Size / 1024
           << ",\n                \"l1Latency\": " << mem.l1Latency
           << ", \"l2Latency\": " << mem.l2Latency
           << ", \"llcLatency\": " << mem.l3Latency
           << ", \"dramLatency\": " << mem.dramLatency
           << ",\n                \"fillConvLatency\": "
           << mem.fillConvLatency
           << ", \"spillConvLatency\": " << mem.spillConvLatency
           << ", \"wbQueueEntries\": " << mem.wbQueueEntries << "},\n";
    }
    os << "  \"layoutSeeds\": [";
    for (std::size_t i = 0; i < spec.layoutSeeds.size(); ++i)
        os << (i ? ", " : "") << u64(spec.layoutSeeds[i]);
    os << "],\n";
    os << "  \"benchmarks\": [";
    for (std::size_t i = 0; i < spec.suite.size(); ++i)
        os << (i ? ", " : "") << jsonString(spec.suite[i]->name);
    os << "],\n";
    os << "  \"variants\": [\n";
    for (std::size_t i = 0; i < spec.variants.size(); ++i) {
        const Variant &v = spec.variants[i];
        os << "    {\"label\": " << jsonString(v.label)
           << ", \"policy\": " << jsonString(policyName(v.policy))
           << ", \"maxSpan\": " << v.maxSpan
           << ", \"fixedSpan\": " << v.fixedSpan << ", \"cform\": "
           << (v.cform ? (*v.cform ? "true" : "false") : "null")
           << ", \"randomized\": " << (v.randomized ? "true" : "false");
        if (schema == ReportSchema::V2) {
            os << ", \"levels\": ";
            if (v.levels)
                os << v.levels;
            else
                os << "null";
            os << ", \"l2KB\": ";
            if (v.l2Kb)
                os << *v.l2Kb;
            else
                os << "null";
            os << ", \"llcKB\": ";
            if (v.llcKb)
                os << *v.llcKb;
            else
                os << "null";
            if (!v.sets.empty())
                os << ", \"config\": " << variantConfigJson(v);
        }
        os << "}" << (i + 1 < spec.variants.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    if (timing.include) {
        os << "  \"timing\": {\"jobs\": " << timing.jobs
           << ", \"elapsedMs\": " << jsonNumber(timing.elapsedMs)
           << "},\n";
    }
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < result.units.size(); ++i) {
        runJson(os, result.units[i], result.results[i], spec, schema);
        os << (i + 1 < result.units.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string
campaignCsv(const CampaignResult &result)
{
    std::ostringstream os;
    // v2 columns are appended after the v1 set so positional consumers
    // of the old header keep working.
    os << "benchmark,variant,policy,maxSpan,fixedSpan,layoutSeed,cycles,"
          "instructions,l1dMisses,l2Misses,l3Misses,dramAccesses,"
          "spills,fills,cformOps,securityFaults,heapAllocs,"
          "heapCformsIssued,peakHeapBytes,exceptionsDelivered,"
          "exceptionsSuppressed,levels,fillConvCycles,spillConvCycles,"
          "wbqHits\n";
    for (std::size_t i = 0; i < result.units.size(); ++i) {
        const RunUnit &unit = result.units[i];
        const RunResult &r = result.results[i];
        const Variant &v = result.spec.variants[unit.variantIndex];
        os << csvField(r.benchmark) << ',' << csvField(v.label) << ','
           << policyName(v.policy) << ',' << v.maxSpan << ','
           << v.fixedSpan << ','
           << u64(unit.config.layoutSeed) << ',' << u64(r.cycles) << ','
           << u64(r.instructions) << ',' << u64(r.mem.l1.misses) << ','
           << u64(r.mem.l2.misses) << ',' << u64(r.mem.l3.misses) << ','
           << u64(r.mem.dramAccesses) << ',' << u64(r.mem.spills) << ','
           << u64(r.mem.fills) << ',' << u64(r.mem.cformOps) << ','
           << u64(r.mem.securityFaults) << ',' << u64(r.heap.allocs)
           << ',' << u64(r.heap.cformsIssued) << ','
           << u64(r.heap.peakHeapBytes) << ','
           << u64(r.exceptionsDelivered) << ','
           << u64(r.exceptionsSuppressed) << ','
           << unit.config.machine.mem.levels << ','
           << u64(r.mem.fillConvCycles) << ','
           << u64(r.mem.spillConvCycles) << ','
           << u64(r.mem.wbHits) << '\n';
    }
    return os.str();
}

void
writeReportFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open report file " + path);
    out << content;
    if (!out.flush())
        throw std::runtime_error("cannot write report file " + path);
}

CampaignResult
runCampaignWithReports(const CampaignSpec &spec, unsigned jobs,
                       const std::string &json_path,
                       const std::string &csv_path)
{
    // Fail on unwritable destinations up front — but probe in append
    // mode so a failed campaign does not truncate a previous good
    // report at the same path.
    for (const std::string &path : {json_path, csv_path})
        if (!path.empty()) {
            std::ofstream probe(path,
                                std::ios::binary | std::ios::app);
            if (!probe)
                throw std::runtime_error("cannot open report file " +
                                         path);
        }
    const auto t0 = std::chrono::steady_clock::now();
    CampaignResult result = runCampaign(spec, jobs);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    writeReports(result, {true, jobs, elapsed_ms}, json_path,
                 csv_path);
    return result;
}

void
writeReports(const CampaignResult &result, const ReportTiming &timing,
             const std::string &json_path, const std::string &csv_path)
{
    if (!json_path.empty()) {
        writeReportFile(json_path, campaignJson(result, timing));
        std::fprintf(stderr, "json report: %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        writeReportFile(csv_path, campaignCsv(result));
        std::fprintf(stderr, "csv report: %s\n", csv_path.c_str());
    }
}

} // namespace califorms::exp
