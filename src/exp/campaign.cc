#include "exp/campaign.hh"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "config/config.hh"
#include "layout/policy.hh"

namespace califorms::exp
{

bool
policyUsesSpans(InsertionPolicy policy)
{
    return policy == InsertionPolicy::Full ||
           policy == InsertionPolicy::Intelligent ||
           policy == InsertionPolicy::FullFixed;
}

bool
gridOwnedKey(const std::string &key)
{
    return key == "layout.policy" || key == "layout.seed" ||
           key == "layout.max_span" || key == "layout.fixed_span";
}

std::vector<std::uint64_t>
CampaignSpec::seedRange(unsigned n, std::uint64_t first)
{
    std::vector<std::uint64_t> seeds;
    for (unsigned i = 0; i < n; ++i)
        seeds.push_back(first + i);
    return seeds;
}

std::vector<Variant>
CampaignSpec::crossPolicySpans(
    const std::vector<InsertionPolicy> &policies,
    const std::vector<std::size_t> &spans)
{
    // Only Full and Intelligent draw span sizes from the layout RNG;
    // None, Opportunistic, and FullFixed produce the same layout for
    // every seed, so averaging them over seeds would just repeat
    // byte-identical simulations.
    std::vector<Variant> variants;
    for (const InsertionPolicy policy : policies) {
        if (!policyUsesSpans(policy)) {
            Variant v;
            v.label = policyName(policy);
            v.policy = policy;
            v.randomized = false;
            variants.push_back(std::move(v));
            continue;
        }
        for (const std::size_t span : spans) {
            Variant v;
            v.label = policyName(policy) + "/" + std::to_string(span);
            v.policy = policy;
            v.maxSpan = span;
            v.fixedSpan = span;
            v.randomized = policy != InsertionPolicy::FullFixed;
            variants.push_back(std::move(v));
        }
    }
    return variants;
}

std::vector<Variant>
CampaignSpec::crossLevels(const std::vector<Variant> &variants,
                          const std::vector<unsigned> &levels)
{
    std::vector<Variant> out;
    for (const unsigned depth : levels) {
        for (const Variant &base : variants) {
            Variant v = base;
            v.label += "@L" + std::to_string(depth);
            v.levels = depth;
            out.push_back(std::move(v));
        }
    }
    return out;
}

Variant &
Variant::withSet(const std::string &key, const std::string &value)
{
    const config::ParamRegistry &registry =
        config::ParamRegistry::instance();
    const config::ParamSpec *spec = registry.find(key);
    if (!spec)
        throw std::invalid_argument("unknown config key '" + key +
                                    "'");
    std::string error;
    if (!registry.parse(*spec, value, error))
        throw std::invalid_argument(error);
    sets.emplace_back(key, value);
    return *this;
}

std::vector<Variant>
CampaignSpec::crossKey(const std::vector<Variant> &variants,
                       const std::string &key,
                       const std::vector<std::string> &values)
{
    std::vector<Variant> out;
    for (const std::string &value : values) {
        for (const Variant &base : variants) {
            Variant v = base;
            v.label += "@" + key + "=" + value;
            v.withSet(key, value);
            out.push_back(std::move(v));
        }
    }
    return out;
}

std::vector<RunUnit>
CampaignSpec::expand() const
{
    std::vector<RunUnit> units;
    if (layoutSeeds.empty())
        return units;
    for (std::size_t b = 0; b < suite.size(); ++b) {
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const Variant &variant = variants[v];
            const std::size_t seed_count =
                variant.randomized ? layoutSeeds.size() : 1;
            for (std::size_t s = 0; s < seed_count; ++s) {
                RunUnit unit;
                unit.index = units.size();
                unit.bench = suite[b];
                unit.benchIndex = b;
                unit.variantIndex = v;
                unit.seedIndex = s;
                unit.config = base;
                unit.config.policy = variant.policy;
                if (variant.maxSpan)
                    unit.config.policyParams.maxSpan = variant.maxSpan;
                if (variant.fixedSpan)
                    unit.config.policyParams.fixedSpan =
                        variant.fixedSpan;
                if (variant.cform)
                    unit.config.withCform(*variant.cform);
                if (variant.levels)
                    unit.config.machine.mem.levels = variant.levels;
                if (variant.l2Kb)
                    unit.config.machine.mem.l2Size = *variant.l2Kb * 1024;
                if (variant.llcKb)
                    unit.config.machine.mem.l3Size =
                        *variant.llcKb * 1024;
                unit.config.layoutSeed = layoutSeeds[s];
                if (!variant.sets.empty()) {
                    // Registry axis: validated key=value overrides
                    // (withSet/crossKey reject bad entries eagerly;
                    // hand-filled sets fail here instead). Applied
                    // after the seed-list assignment so a
                    // layout.seed set/axis actually takes effect —
                    // the report embeds these as applied config, so
                    // they must win over the implicit seed axis.
                    config::Config cfg;
                    for (const auto &[key, value] : variant.sets)
                        if (const auto error = cfg.set(key, value))
                            throw std::invalid_argument(
                                "variant '" + variant.label + "': " +
                                *error);
                    cfg.applyTo(unit.config);
                }
                if (variant.tweak)
                    variant.tweak(unit.config);
                units.push_back(std::move(unit));
            }
        }
    }
    return units;
}

unsigned
effectiveJobs(unsigned jobs)
{
    if (jobs)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace
{

/**
 * One worker's slice of the unit list: a [head, tail) window packed
 * into a single atomic word so the owner (popping the front) and
 * thieves (popping the back) serialize through one CAS with no locks
 * and no ABA hazard — indices only ever move towards each other.
 */
class Shard
{
  public:
    void
    reset(std::size_t head, std::size_t tail)
    {
        window_.store(pack(static_cast<std::uint32_t>(head),
                           static_cast<std::uint32_t>(tail)),
                      std::memory_order_relaxed);
    }

    std::size_t
    remaining() const
    {
        const std::uint64_t w = window_.load(std::memory_order_relaxed);
        const std::uint32_t head = w >> 32;
        const std::uint32_t tail = w & 0xffffffffu;
        return head < tail ? tail - head : 0;
    }

    /** Owner side: claim the front index, or npos when drained. */
    std::size_t
    claimFront()
    {
        std::uint64_t w = window_.load(std::memory_order_relaxed);
        for (;;) {
            const std::uint32_t head = w >> 32;
            const std::uint32_t tail = w & 0xffffffffu;
            if (head >= tail)
                return npos;
            if (window_.compare_exchange_weak(
                    w, pack(head + 1, tail), std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                return head;
        }
    }

    /** Thief side: steal the back index, or npos when drained. */
    std::size_t
    claimBack()
    {
        std::uint64_t w = window_.load(std::memory_order_relaxed);
        for (;;) {
            const std::uint32_t head = w >> 32;
            const std::uint32_t tail = w & 0xffffffffu;
            if (head >= tail)
                return npos;
            if (window_.compare_exchange_weak(
                    w, pack(head, tail - 1), std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                return tail - 1;
        }
    }

    static constexpr std::size_t npos = ~std::size_t{0};

  private:
    static std::uint64_t
    pack(std::uint32_t head, std::uint32_t tail)
    {
        return (static_cast<std::uint64_t>(head) << 32) | tail;
    }

    std::atomic<std::uint64_t> window_{0};
};

} // namespace

void
runTasks(std::size_t count,
         const std::function<void(std::size_t)> &task, unsigned jobs)
{
    // Shard windows pack head/tail into one uint32 pair.
    if (count > 0xffffffffull)
        throw std::length_error("pool exceeds 2^32 tasks");
    const unsigned workers = std::min<std::size_t>(
        effectiveJobs(jobs), count ? count : 1);

    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            task(i);
        return;
    }

    // Contiguous slice per worker; idle workers steal from the back of
    // the fullest remaining shard.
    std::vector<Shard> shards(workers);
    for (unsigned w = 0; w < workers; ++w)
        shards[w].reset(count * w / workers, count * (w + 1) / workers);

    std::atomic<bool> stop{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&](unsigned self) {
        auto execute = [&](std::size_t idx) {
            try {
                task(idx);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
                stop.store(true, std::memory_order_release);
            }
        };

        while (!stop.load(std::memory_order_acquire)) {
            std::size_t idx = shards[self].claimFront();
            if (idx == Shard::npos) {
                // Own shard drained: steal from the fullest victim.
                std::size_t best = Shard::npos, best_left = 0;
                for (unsigned v = 0; v < workers; ++v) {
                    const std::size_t left = shards[v].remaining();
                    if (v != self && left > best_left) {
                        best = v;
                        best_left = left;
                    }
                }
                if (best == Shard::npos)
                    return; // everything drained
                idx = shards[best].claimBack();
                if (idx == Shard::npos)
                    continue; // lost the race; rescan
            }
            execute(idx);
        }
    };

    {
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker, w);
    } // jthreads join here

    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<RunResult>
runUnits(const std::vector<RunUnit> &units, unsigned jobs)
{
    std::vector<RunResult> results(units.size());
    runTasks(
        units.size(),
        [&](std::size_t i) {
            results[units[i].index] =
                runBenchmark(*units[i].bench, units[i].config);
        },
        jobs);
    return results;
}

double
CampaignResult::meanCycles(std::size_t bench_idx,
                           std::size_t variant_idx) const
{
    double sum = 0;
    std::size_t n = 0;
    for (const RunUnit &unit : units) {
        if (unit.benchIndex != bench_idx ||
            unit.variantIndex != variant_idx)
            continue;
        sum += static_cast<double>(results[unit.index].cycles);
        ++n;
    }
    if (!n)
        throw std::out_of_range("campaign cell has no runs");
    return sum / static_cast<double>(n);
}

const RunResult &
CampaignResult::at(std::size_t bench_idx, std::size_t variant_idx,
                   std::size_t seed_idx) const
{
    for (const RunUnit &unit : units)
        if (unit.benchIndex == bench_idx &&
            unit.variantIndex == variant_idx &&
            unit.seedIndex == seed_idx)
            return results[unit.index];
    throw std::out_of_range("campaign cell not in grid");
}

CampaignResult
runCampaign(const CampaignSpec &spec, unsigned jobs)
{
    CampaignResult out;
    out.spec = spec;
    out.units = spec.expand();
    out.results = runUnits(out.units, jobs);
    return out;
}

} // namespace califorms::exp
