/**
 * @file report.hh
 * Machine-readable campaign reports: JSON (schema
 * "califorms-campaign/v1") and CSV, one record per run. Stat names in
 * the per-run "mem" object are the canonical sim/stats_dump names
 * (l1d.hits, califorms.cformOps, ...), so a JSON trajectory diffs
 * against a text stats dump key for key. Numeric output is
 * deterministic: the simulator's counters are integers and every ratio
 * is formatted with a fixed shortest-round-trip rule, so two runs of
 * the same campaign produce byte-identical reports regardless of
 * --jobs; wall-clock metadata is segregated in the optional "timing"
 * object so golden tests can simply omit it.
 */

#ifndef CALIFORMS_EXP_REPORT_HH
#define CALIFORMS_EXP_REPORT_HH

#include <string>

#include "exp/campaign.hh"

namespace califorms::exp
{

/** Non-deterministic run metadata, kept out of golden comparisons. */
struct ReportTiming
{
    bool include = true; //!< false: omit the "timing" object entirely
    unsigned jobs = 1;
    double elapsedMs = 0;
};

/**
 * Report generation. V2 ("califorms-campaign/v2") adds the hierarchy
 * configuration object, the per-variant hierarchy axis fields and the
 * conversion / write-back-queue counters. V1 emits the exact
 * "califorms-campaign/v1" byte stream older consumers parse — for a
 * campaign that leaves the hierarchy axis untouched it is identical to
 * what the pre-hierarchy code produced.
 */
enum class ReportSchema
{
    V1,
    V2,
};

/** Render the whole campaign as JSON. */
std::string campaignJson(const CampaignResult &result,
                         const ReportTiming &timing = {},
                         ReportSchema schema = ReportSchema::V2);

/** Render the runs as CSV (header + one row per run). */
std::string campaignCsv(const CampaignResult &result);

/** Write @p content to @p path; throws std::runtime_error on failure. */
void writeReportFile(const std::string &path,
                     const std::string &content);

/**
 * Write the requested reports (empty path = skip that format) and note
 * each file on stderr — stderr so stdout stays byte-identical across
 * job counts and report destinations. The one report flow shared by
 * the bench harnesses and `califorms sweep`.
 */
void writeReports(const CampaignResult &result,
                  const ReportTiming &timing,
                  const std::string &json_path,
                  const std::string &csv_path);

/**
 * Run @p spec with @p jobs workers, timing it, then write the
 * requested reports (empty path = skip). Both paths are validated by
 * creating the files *before* the campaign runs, so a typo'd
 * destination fails in milliseconds instead of after a multi-minute
 * grid. The one campaign-with-reports flow shared by the bench
 * harnesses and `califorms sweep`.
 */
CampaignResult runCampaignWithReports(const CampaignSpec &spec,
                                      unsigned jobs,
                                      const std::string &json_path,
                                      const std::string &csv_path);

} // namespace califorms::exp

#endif // CALIFORMS_EXP_REPORT_HH
