#include "fleet/tenant.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "config/config.hh"
#include "workload/synth.hh"

namespace califorms::fleet
{

std::string
TenantSpec::source() const
{
    return workload.empty() ? "trace=" + tracePath
                            : "workload=" + workload;
}

bool
TenantSpec::overlaySets(const std::string &key) const
{
    for (const auto &[k, v] : sets)
        if (k == key)
            return true;
    return false;
}

namespace
{

/** The overlay families a tenant can consume (see the file comment). */
std::optional<std::string>
checkOverlayKey(const TenantSpec &tenant, const std::string &key)
{
    const bool is_mem = key.rfind("mem.", 0) == 0;
    const bool is_workload = key.rfind("workload.", 0) == 0;
    if (!is_mem && !is_workload)
        return "tenant '" + tenant.id + "': overlay key '" + key +
               "' is not a tenant knob (only mem.* and workload.* "
               "apply per tenant)";
    if (is_workload && tenant.workload.empty())
        return "tenant '" + tenant.id + "': '" + key +
               "' cannot take effect on a trace tenant (the trace "
               "already fixes the stream)";
    return std::nullopt;
}

} // namespace

std::optional<std::string>
parseTenantSpec(const std::string &line, TenantSpec &out)
{
    out = TenantSpec{};
    std::istringstream ss(line);
    std::string token;
    if (!(ss >> token))
        return "empty tenant spec";
    if (token.find('=') != std::string::npos)
        return "tenant spec must start with an id, got '" + token +
               "'";
    out.id = token;

    if (!(ss >> token))
        return "tenant '" + out.id +
               "': missing source (workload=<name> or trace=<path>)";
    if (token.rfind("workload=", 0) == 0) {
        out.workload = token.substr(9);
        if (!isSynthWorkload(out.workload)) {
            std::string known;
            for (const std::string &name : synthWorkloadNames())
                known += (known.empty() ? "" : ", ") + name;
            return "tenant '" + out.id + "': unknown workload '" +
                   out.workload + "' (known: " + known + ")";
        }
    } else if (token.rfind("trace=", 0) == 0) {
        out.tracePath = token.substr(6);
        if (out.tracePath.empty())
            return "tenant '" + out.id + "': empty trace path";
    } else {
        return "tenant '" + out.id + "': expected workload=<name> or "
               "trace=<path>, got '" + token + "'";
    }

    // Overlay: registry-validated key=value pairs, restricted to the
    // tenant-consumable families. A scratch Config performs the value
    // validation so diagnostics match --set exactly.
    config::Config scratch;
    while (ss >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            return "tenant '" + out.id + "': expected key=value, got '" +
                   token + "'";
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (auto error = checkOverlayKey(out, key))
            return error;
        if (auto error = scratch.set(key, value))
            return "tenant '" + out.id + "': " + *error;
        out.sets.emplace_back(key, value);
    }
    return std::nullopt;
}

std::optional<std::string>
parseManifest(const std::string &text, std::vector<TenantSpec> &out)
{
    std::istringstream ss(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(ss, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        TenantSpec tenant;
        if (auto error = parseTenantSpec(line, tenant))
            return "manifest line " + std::to_string(lineno) + ": " +
                   *error;
        out.push_back(std::move(tenant));
    }
    return std::nullopt;
}

std::optional<std::string>
loadManifest(const std::string &path, std::vector<TenantSpec> &out)
{
    std::ifstream is(path);
    if (!is)
        return "cannot open manifest '" + path + "'";
    std::ostringstream text;
    text << is.rdbuf();
    return parseManifest(text.str(), out);
}

std::optional<std::string>
validateTenants(const std::vector<TenantSpec> &tenants)
{
    if (tenants.empty())
        return std::string(
            "fleet has no tenants (give --manifest and/or --tenant)");
    std::set<std::string> seen;
    for (const TenantSpec &tenant : tenants)
        if (!seen.insert(tenant.id).second)
            return "duplicate tenant id '" + tenant.id + "'";
    return std::nullopt;
}

} // namespace califorms::fleet
