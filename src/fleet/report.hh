/**
 * @file report.hh
 * The merged fleet report: "califorms-campaign/v2" JSON with one run
 * block per tenant (keyed benchmark=source, variant=tenant id, so the
 * bench_gate counter comparison works unchanged) plus the first-class
 * "throughput" object — opsReplayed / batchOps / shards / tenants are
 * deterministic and exact-gated; opsPerSec is derived from the wall
 * clock and only emitted when timing is included, keeping the
 * timing-free report byte-identical at any --jobs value.
 */

#ifndef CALIFORMS_FLEET_REPORT_HH
#define CALIFORMS_FLEET_REPORT_HH

#include <iosfwd>
#include <string>

#include "fleet/engine.hh"

namespace califorms::fleet
{

/** Render the merged fleet as JSON. @p include_timing controls the
 *  "timing" object and throughput.opsPerSec (both wall-clock
 *  derived); everything else is deterministic. */
std::string fleetJson(const FleetSpec &spec, const FleetResult &result,
                      bool include_timing);

/** The human-readable per-tenant summary (deterministic — wall-clock
 *  lines belong on stderr, see cmd_fleet). */
void printFleetSummary(std::ostream &os, const FleetResult &result);

} // namespace califorms::fleet

#endif // CALIFORMS_FLEET_REPORT_HH
