/**
 * @file batch.hh
 * Batched SoA trace replay: the fleet serving engine's hot loop.
 *
 * runTrace() (sim/trace.cc) pays one virtual next() call, one switch,
 * and scattered stat updates per op. replayBatched() restructures the
 * loop around a reusable constant-size buffer:
 *
 *   fill     one virtual TraceReader::fill() per batch pulls up to
 *            batch_ops ops into a buffer that is allocated once and
 *            reused for the whole replay (constant memory for
 *            arbitrarily long traces, no per-op virtual dispatch);
 *   decode   the AoS ops are split into struct-of-arrays lanes (kind,
 *            operand words, access metadata) in one sequential pass,
 *            counting ops per kind branch-free via a kind-indexed
 *            table;
 *   access   the machine is driven lane-wise from the SoA arrays with
 *            the checksum and per-kind counters held in locals;
 *   stats    the locals flush into BatchReplayStats once per batch,
 *            not once per op.
 *
 * The loop is bit-for-bit equivalent to runTrace(): same machine
 * calls in the same order, same load-XOR checksum (a test pins this).
 */

#ifndef CALIFORMS_FLEET_BATCH_HH
#define CALIFORMS_FLEET_BATCH_HH

#include <cstdint>

#include "sim/trace.hh"

namespace califorms::fleet
{

/** Counters of one batched replay. */
struct BatchReplayStats
{
    std::uint64_t ops = 0;      //!< total ops replayed
    std::uint64_t batches = 0;  //!< fill/decode/flush rounds
    std::uint64_t checksum = 0; //!< loads' value XOR (== runTrace)
    /** Ops per TraceOp::Kind, indexed Load/Store/Cform/Compute. */
    std::uint64_t kindOps[4] = {0, 0, 0, 0};
};

/**
 * Replay @p reader into @p machine (core @p core) in batches of
 * @p batch_ops, stopping after @p max_ops operations when non-zero
 * (0 = drain the reader). Throws std::invalid_argument on
 * batch_ops == 0.
 */
BatchReplayStats replayBatched(Machine &machine, TraceReader &reader,
                               std::size_t batch_ops,
                               std::uint64_t max_ops = 0,
                               unsigned core = 0);

} // namespace califorms::fleet

#endif // CALIFORMS_FLEET_BATCH_HH
