#include "fleet/batch.hh"

#include <stdexcept>
#include <vector>

namespace califorms::fleet
{

namespace
{

/**
 * One batch's worth of ops split into struct-of-arrays lanes. The
 * vectors are sized once and reused across batches — replaying a
 * 100M-op trace allocates exactly as much as replaying a 1K-op one.
 */
struct SoaBatch
{
    explicit SoaBatch(std::size_t capacity)
        : ops(capacity), kind(capacity), meta(capacity), addr(capacity),
          word(capacity), cform(capacity)
    {}

    std::vector<TraceOp> ops;          //!< fill() target (AoS)
    std::vector<std::uint8_t> kind;    //!< TraceOp::Kind as index
    std::vector<std::uint8_t> meta;    //!< size | dep-flag << 7
    std::vector<Addr> addr;            //!< load/store address
    std::vector<std::uint64_t> word;   //!< store value / compute ops
    std::vector<CformOp> cform;        //!< CFORM operand
};

} // namespace

BatchReplayStats
replayBatched(Machine &machine, TraceReader &reader,
              std::size_t batch_ops, std::uint64_t max_ops,
              unsigned core)
{
    if (!batch_ops)
        throw std::invalid_argument(
            "replayBatched: batch_ops must be >= 1");

    BatchReplayStats stats;
    SoaBatch batch(batch_ops);

    for (;;) {
        // fill: one virtual call pulls the whole batch (bounded by the
        // remaining op budget, so a capped replay never over-reads).
        std::size_t want = batch_ops;
        if (max_ops) {
            const std::uint64_t left = max_ops - stats.ops;
            if (!left)
                break;
            if (left < want)
                want = static_cast<std::size_t>(left);
        }
        const std::size_t n = reader.fill(batch.ops.data(), want);
        if (!n)
            break;

        // decode: AoS -> SoA lanes, counting kinds branch-free.
        std::uint64_t kind_ops[4] = {0, 0, 0, 0};
        for (std::size_t i = 0; i < n; ++i) {
            const TraceOp &op = batch.ops[i];
            const auto k = static_cast<std::uint8_t>(op.kind);
            batch.kind[i] = k;
            batch.meta[i] = static_cast<std::uint8_t>(
                op.size | (op.dependsOnPrev ? 0x80 : 0));
            batch.addr[i] = op.addr;
            batch.word[i] = op.kind == TraceOp::Kind::Compute
                                ? op.computeOps
                                : op.value;
            if (op.kind == TraceOp::Kind::Cform)
                batch.cform[i] = op.cform;
            ++kind_ops[k];
        }

        // access: drive the machine from the lanes; the checksum stays
        // in a register until the flush below.
        std::uint64_t checksum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            switch (static_cast<TraceOp::Kind>(batch.kind[i])) {
            case TraceOp::Kind::Load:
                checksum ^= machine.loadOn(core, batch.addr[i],
                                           batch.meta[i] & 0x7f,
                                           batch.meta[i] & 0x80);
                break;
            case TraceOp::Kind::Store:
                machine.storeOn(core, batch.addr[i],
                                batch.meta[i] & 0x7f, batch.word[i]);
                break;
            case TraceOp::Kind::Cform:
                machine.cformOn(core, batch.cform[i]);
                break;
            case TraceOp::Kind::Compute:
                machine.computeOn(
                    core, static_cast<std::uint32_t>(batch.word[i]));
                break;
            }
        }

        // stats: one flush per batch.
        stats.ops += n;
        stats.checksum ^= checksum;
        for (int k = 0; k < 4; ++k)
            stats.kindOps[k] += kind_ops[k];
        ++stats.batches;

        if (n < want)
            break; // reader drained mid-batch
    }
    return stats;
}

} // namespace califorms::fleet
