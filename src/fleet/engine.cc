#include "fleet/engine.hh"

#include <chrono>
#include <fstream>
#include <stdexcept>

#include "config/config.hh"
#include "exp/campaign.hh"
#include "workload/synth.hh"

namespace califorms::fleet
{

double
FleetResult::opsPerSec() const
{
    if (elapsedMs <= 0)
        return 0;
    return static_cast<double>(totalOps) * 1000.0 / elapsedMs;
}

RunConfig
resolveTenantConfig(const FleetSpec &spec, std::size_t index)
{
    const TenantSpec &tenant = spec.tenants.at(index);
    RunConfig config = spec.base;
    if (!tenant.sets.empty()) {
        config::Config overlay;
        for (const auto &[key, value] : tenant.sets)
            if (const auto error = overlay.set(key, value))
                throw std::invalid_argument("tenant '" + tenant.id +
                                            "': " + *error);
        overlay.applyTo(config);
    }
    // The seed stride decorrelates same-workload tenants; an overlay
    // that pins workload.seed wins over it.
    if (!tenant.workload.empty() &&
        !tenant.overlaySets("workload.seed"))
        config.synth.seed = spec.base.synth.seed +
                            spec.base.fleet.tenantSeedStride * index;
    return config;
}

namespace
{

TenantResult
replayTenant(const FleetSpec &spec, std::size_t index)
{
    const TenantSpec &tenant = spec.tenants[index];
    const RunConfig config = resolveTenantConfig(spec, index);

    TenantResult result;
    result.id = tenant.id;
    result.source = tenant.source();

    Machine machine(config.machine, ExceptionUnit::Policy::Record);
    const std::size_t batch_ops = spec.base.fleet.batchOps;
    if (tenant.workload.empty()) {
        std::ifstream is(tenant.tracePath, std::ios::binary);
        if (!is)
            throw std::runtime_error("tenant '" + tenant.id +
                                     "': cannot open trace '" +
                                     tenant.tracePath + "'");
        const auto reader = openTraceReader(is);
        result.replay = replayBatched(machine, *reader, batch_ops,
                                      spec.durationOps);
    } else {
        const std::uint64_t ops = spec.durationOps
                                      ? spec.durationOps
                                      : config.synth.ops;
        const auto reader =
            makeSynthGenerator(tenant.workload, config.synth, ops);
        result.replay = replayBatched(machine, *reader, batch_ops);
    }

    result.cycles = machine.cycles();
    result.instructions = machine.instructions();
    result.mem = machine.memStats();
    result.exceptionsDelivered = machine.exceptions().deliveredCount();
    result.exceptionsSuppressed =
        machine.exceptions().suppressedCount();
    return result;
}

} // namespace

FleetResult
runFleet(const FleetSpec &spec, unsigned jobs)
{
    if (const auto error = validateTenants(spec.tenants))
        throw std::invalid_argument(*error);
    if (spec.base.machine.core.count > 1)
        throw std::invalid_argument(
            "fleet tenants are single-stream; core.count > 1 cannot "
            "take effect (shard more tenants instead)");

    const std::size_t n = spec.tenants.size();
    const unsigned shards =
        spec.base.fleet.shards
            ? static_cast<unsigned>(std::min<std::size_t>(
                  spec.base.fleet.shards, n))
            : static_cast<unsigned>(n);

    FleetResult result;
    result.tenants.resize(n);
    result.shards = shards;
    result.batchOps = spec.base.fleet.batchOps;
    result.tenantSeedStride = spec.base.fleet.tenantSeedStride;
    result.durationOps = spec.durationOps;
    result.jobs = exp::effectiveJobs(jobs);

    // Shard s replays the contiguous tenant block [n*s/S, n*(s+1)/S)
    // sequentially; the shards run on the campaign pool. Every tenant
    // writes its own pre-sized slot, so the merge is just the vector.
    const auto start = std::chrono::steady_clock::now();
    exp::runTasks(
        shards,
        [&](std::size_t s) {
            const std::size_t lo = n * s / shards;
            const std::size_t hi = n * (s + 1) / shards;
            for (std::size_t t = lo; t < hi; ++t)
                result.tenants[t] = replayTenant(spec, t);
        },
        jobs);
    const auto end = std::chrono::steady_clock::now();
    result.elapsedMs =
        std::chrono::duration<double, std::milli>(end - start).count();

    for (const TenantResult &tenant : result.tenants)
        result.totalOps += tenant.replay.ops;
    return result;
}

} // namespace califorms::fleet
