/**
 * @file fleet_params.hh
 * Knobs of the fleet serving engine (src/fleet/), exposed as the
 * fleet.* keys of the config ParamRegistry. Kept in a dependency-free
 * header so RunConfig can carry the struct without pulling in the
 * engine machinery (the synth_params.hh convention).
 */

#ifndef CALIFORMS_FLEET_FLEET_PARAMS_HH
#define CALIFORMS_FLEET_FLEET_PARAMS_HH

#include <cstddef>
#include <cstdint>

namespace califorms
{

struct FleetParams
{
    /** Number of replay shards the tenant list is split into; each
     *  shard replays its tenants sequentially and the shards run on
     *  the campaign work-stealing pool. 0 = one shard per tenant
     *  (maximum parallelism). Results merge in tenant order, so the
     *  shard count never changes any counter. */
    unsigned shards = 0;
    /** Operations decoded per batch in the SoA replay hot loop: one
     *  bulk TraceReader::fill per batch, per-kind counters and the
     *  checksum accumulated in registers and flushed once per batch. */
    std::size_t batchOps = 256;
    /** Tenant t's generator seed is workload.seed + stride * t unless
     *  the tenant's own overlay pins workload.seed. Stride 0 gives
     *  every same-workload tenant the identical stream. */
    std::uint64_t tenantSeedStride = 1;
};

} // namespace califorms

#endif // CALIFORMS_FLEET_FLEET_PARAMS_HH
