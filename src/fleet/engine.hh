/**
 * @file engine.hh
 * The fleet serving engine: replay M independent tenant streams on
 * per-tenant Machine instances, sharded across the campaign
 * work-stealing pool, with results merged in tenant order.
 *
 * Each tenant resolves its own configuration — the fleet's base
 * RunConfig, the tenant's validated overlay on top, then the seed
 * stride (tenant t's generator seed is base workload.seed +
 * fleet.tenant_seed_stride * t unless the overlay pins
 * workload.seed). Tenants are single-stream by construction; a base
 * with core.count > 1 is rejected, not silently run on core 0.
 *
 * Determinism: every tenant writes its own result slot and carries
 * its own machine and RNG state, so the merged FleetResult is
 * bit-identical at any jobs count and any fleet.shards value — only
 * the wall clock (elapsedMs, and the ops/sec derived from it)
 * varies.
 */

#ifndef CALIFORMS_FLEET_ENGINE_HH
#define CALIFORMS_FLEET_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/batch.hh"
#include "fleet/tenant.hh"
#include "workload/runner.hh"

namespace califorms::fleet
{

/** The whole fleet, declaratively. */
struct FleetSpec
{
    std::vector<TenantSpec> tenants;
    /** Fleet-wide defaults (machine, workload knobs, fleet.*); each
     *  tenant's overlay applies on top of a copy. */
    RunConfig base{};
    /** Per-tenant replay budget in ops; 0 = each generator tenant's
     *  resolved workload.ops, trace tenants drain their file. */
    std::uint64_t durationOps = 0;
};

/** One tenant's merged block. */
struct TenantResult
{
    std::string id;
    std::string source; //!< "workload=..." or "trace=..."
    BatchReplayStats replay{};
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    MemSysStats mem{};
    std::size_t exceptionsDelivered = 0;
    std::size_t exceptionsSuppressed = 0;
};

/** The merged fleet: per-tenant blocks plus the throughput facts. */
struct FleetResult
{
    std::vector<TenantResult> tenants; //!< tenant order == spec order
    unsigned shards = 0;               //!< effective shard count
    std::size_t batchOps = 0;
    std::uint64_t tenantSeedStride = 0;
    std::uint64_t durationOps = 0;
    std::uint64_t totalOps = 0; //!< sum of tenant replay.ops
    unsigned jobs = 1;          //!< effective pool width used
    double elapsedMs = 0;       //!< replay wall clock (jobs-dependent)

    /** Replay rate in ops per second (0 when elapsedMs is 0). */
    double opsPerSec() const;
};

/** Resolve tenant @p index's full configuration (base + overlay +
 *  seed stride) — exposed so tests can pin the resolution rules. */
RunConfig resolveTenantConfig(const FleetSpec &spec, std::size_t index);

/**
 * Replay the whole fleet on @p jobs workers (0 = all hardware
 * threads). Throws std::invalid_argument on an invalid fleet (no
 * tenants, duplicate ids, multi-core base) and std::runtime_error on
 * an unreadable tenant trace.
 */
FleetResult runFleet(const FleetSpec &spec, unsigned jobs);

} // namespace califorms::fleet

#endif // CALIFORMS_FLEET_ENGINE_HH
