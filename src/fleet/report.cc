#include "fleet/report.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "sim/stats_dump.hh"
#include "util/jsonout.hh"

namespace califorms::fleet
{

namespace
{

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

/** Checksums are full 64-bit words; a JSON number would lose bits
 *  past 2^53 in double-parsing consumers, so they render as fixed-
 *  width hex strings. */
std::string
hex64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return std::string(buf);
}

void
tenantJson(std::ostringstream &os, const TenantResult &t,
           std::uint64_t layout_seed)
{
    const BatchReplayStats &replay = t.replay;
    os << "    {\"benchmark\": " << jsonString(t.source)
       << ", \"variant\": " << jsonString(t.id)
       << ", \"layoutSeed\": " << u64(layout_seed)
       << ",\n     \"tenant\": " << jsonString(t.id)
       << ", \"ops\": " << u64(replay.ops)
       << ", \"batches\": " << u64(replay.batches)
       << ", \"checksum\": " << jsonString(hex64(replay.checksum))
       << ",\n     \"opsByKind\": {\"loads\": " << u64(replay.kindOps[0])
       << ", \"stores\": " << u64(replay.kindOps[1])
       << ", \"cforms\": " << u64(replay.kindOps[2])
       << ", \"computes\": " << u64(replay.kindOps[3])
       << "},\n     \"cycles\": " << u64(t.cycles)
       << ", \"instructions\": " << u64(t.instructions)
       << ", \"ipc\": "
       << jsonNumber(t.cycles ? static_cast<double>(t.instructions) /
                                    static_cast<double>(t.cycles)
                              : 0.0)
       << ",\n     \"mem\": {";
    bool first = true;
    for (const StatEntry &e : memStatEntries(t.mem, StatSchema::V2)) {
        os << (first ? "" : ", ") << jsonString(e.name) << ": "
           << jsonNumber(e.value);
        first = false;
    }
    os << "},\n     \"exceptions\": {\"delivered\": "
       << u64(t.exceptionsDelivered)
       << ", \"suppressed\": " << u64(t.exceptionsSuppressed) << "}}";
}

} // namespace

std::string
fleetJson(const FleetSpec &spec, const FleetResult &result,
          bool include_timing)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"califorms-campaign/v2\",\n";
    os << "  \"campaign\": \"fleet\",\n";
    os << "  \"fleet\": {\"tenants\": " << result.tenants.size()
       << ", \"shards\": " << result.shards
       << ", \"batchOps\": " << result.batchOps
       << ", \"durationOps\": " << u64(result.durationOps)
       << ", \"tenantSeedStride\": " << u64(result.tenantSeedStride)
       << "},\n";
    // The first-class throughput object: the deterministic counters
    // always; the wall-clock-derived rate only alongside "timing".
    os << "  \"throughput\": {\"opsReplayed\": " << u64(result.totalOps)
       << ", \"batchOps\": " << result.batchOps
       << ", \"shards\": " << result.shards
       << ", \"tenants\": " << result.tenants.size();
    if (include_timing)
        os << ", \"opsPerSec\": " << jsonNumber(result.opsPerSec());
    os << "},\n";
    if (include_timing) {
        os << "  \"timing\": {\"jobs\": " << result.jobs
           << ", \"elapsedMs\": " << jsonNumber(result.elapsedMs)
           << "},\n";
    }
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < result.tenants.size(); ++i) {
        tenantJson(os, result.tenants[i], spec.base.layoutSeed);
        os << (i + 1 < result.tenants.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

void
printFleetSummary(std::ostream &os, const FleetResult &result)
{
    os << "fleet: " << result.tenants.size() << " tenants, "
       << result.shards << " shards, batch=" << result.batchOps
       << ", ops=" << result.totalOps << "\n";
    for (const TenantResult &t : result.tenants) {
        os << "tenant " << t.id << ": " << t.source
           << " ops=" << t.replay.ops
           << " checksum=" << hex64(t.replay.checksum)
           << " cycles=" << t.cycles
           << " ipc="
           << jsonNumber(t.cycles
                             ? static_cast<double>(t.instructions) /
                                   static_cast<double>(t.cycles)
                             : 0.0)
           << " faults=" << t.mem.securityFaults << "\n";
    }
}

} // namespace califorms::fleet
