/**
 * @file tenant.hh
 * Tenant specifications for the fleet serving engine: what each
 * independent stream is (a synthetic generator or a trace file) and
 * how its machine deviates from the fleet's base configuration.
 *
 * Manifest format, one tenant per line ('#' starts a comment, blank
 * lines are ignored); `--tenant` takes exactly one such line:
 *
 *   <id> workload=<name> [key=value ...]
 *   <id> trace=<path>    [key=value ...]
 *
 * The id must be unique across the fleet (it keys the tenant's block
 * in the merged report). The overlay keys are validated against the
 * config ParamRegistry at parse time and are restricted to the two
 * families a tenant can actually consume — mem.* (its private
 * machine) and workload.* (its generator; rejected on trace tenants,
 * where the trace already fixes the stream). Anything else — core.*,
 * layout.*, fleet.* itself — is rejected with a diagnostic rather
 * than silently ignored, the registry-wide convention.
 */

#ifndef CALIFORMS_FLEET_TENANT_HH
#define CALIFORMS_FLEET_TENANT_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace califorms::fleet
{

/** One tenant: an id, a stream source, and a validated overlay. */
struct TenantSpec
{
    std::string id;
    /** Synthetic generator name; empty for trace tenants. */
    std::string workload;
    /** Trace file path; empty for generator tenants. */
    std::string tracePath;
    /** Validated key=value overlay applied over the fleet base. */
    std::vector<std::pair<std::string, std::string>> sets;

    /** "workload=<name>" or "trace=<path>" — the report's benchmark
     *  column. */
    std::string source() const;

    /** True when the overlay pins @p key explicitly. */
    bool overlaySets(const std::string &key) const;
};

/** Parse one manifest line / --tenant spec into @p out. Returns a
 *  diagnostic on failure, std::nullopt on success. */
std::optional<std::string> parseTenantSpec(const std::string &line,
                                           TenantSpec &out);

/** Parse manifest text (comments and blank lines skipped), appending
 *  to @p out; diagnostics carry the 1-based line number. */
std::optional<std::string>
parseManifest(const std::string &text, std::vector<TenantSpec> &out);

/** Load a manifest file from disk. */
std::optional<std::string>
loadManifest(const std::string &path, std::vector<TenantSpec> &out);

/** Fleet-level validation: at least one tenant, unique ids. */
std::optional<std::string>
validateTenants(const std::vector<TenantSpec> &tenants);

} // namespace califorms::fleet

#endif // CALIFORMS_FLEET_TENANT_HH
