/**
 * @file primitives.hh
 * Reusable memory behaviour primitives the SPEC-like kernels compose:
 * pointer chasing, array streaming, random probing, allocation churn
 * and stack-frame work. Each primitive drives real allocations through
 * the Califorms allocator and real loads/stores through the simulated
 * hierarchy, so insertion policies change addresses, footprints and
 * CFORM traffic exactly as they would for a recompiled binary.
 */

#ifndef CALIFORMS_WORKLOAD_PRIMITIVES_HH
#define CALIFORMS_WORKLOAD_PRIMITIVES_HH

#include <vector>

#include "workload/context.hh"

namespace califorms
{

/** A heap array of @p count structs laid out per the context policy. */
struct StructArray
{
    Addr base = 0;
    std::shared_ptr<const SecureLayout> layout;
    std::size_t count = 0;

    Addr
    elem(std::size_t i) const
    {
        return base + i * layout->size;
    }
};

/** Allocate an array of @p count instances of @p def. */
StructArray allocArray(KernelContext &ctx, const StructDefPtr &def,
                       std::size_t count);

/**
 * A raw (scalar array) heap buffer. Real benchmarks keep much of their
 * footprint in plain arrays of int/double — data the compiler pass
 * never pads — so insertion policies must leave these untouched. Only
 * the allocator's inter-object guards protect them.
 */
struct RawArray
{
    Addr base = 0;
    std::size_t bytes = 0;
};

/** Allocate a raw buffer of @p bytes. */
RawArray allocRaw(KernelContext &ctx, std::size_t bytes);

/** Sequential 8B sweeps over a raw buffer (@p passes times), storing to
 *  every 8th word, with @p compute ops per word. */
void rawStream(KernelContext &ctx, const RawArray &arr, unsigned passes,
               unsigned compute);

/** Random 8B probes into a raw buffer. */
void rawProbe(KernelContext &ctx, const RawArray &arr, std::size_t probes,
              unsigned compute);

/**
 * Build a randomized circular chain over the array's elements and chase
 * it for @p steps loads, touching @p extra_fields additional fields per
 * node and doing @p compute ALU ops per hop. The successor index is
 * stored in the first >=4-byte scalar field. @p dep_quarters (0..4)
 * sets how many of every four hops expose the full serial latency —
 * real traversals interleave independent work (sibling subtrees, other
 * chains) that an OoO window overlaps, so few codes are 4/4 chases.
 */
void pointerChase(KernelContext &ctx, const StructArray &arr,
                  std::size_t steps, unsigned extra_fields,
                  unsigned compute, unsigned dep_quarters = 4);

/**
 * Stream over the array @p passes times, loading @p fields_per_elem
 * fields and storing to one, with @p compute ALU ops per element.
 */
void streamPass(KernelContext &ctx, const StructArray &arr,
                unsigned passes, unsigned fields_per_elem,
                unsigned compute);

/** Random element probes: load a couple of fields of a random element,
 *  @p probes times, with @p compute ops between probes. */
void randomProbe(KernelContext &ctx, const StructArray &arr,
                 std::size_t probes, unsigned compute);

/**
 * Allocation churn: maintain a pool of @p pool_size live objects of the
 * given types; each round frees a random victim and allocates a
 * replacement, touching its fields once. Models malloc-intensive
 * benchmarks (perlbench, omnetpp, xalancbmk).
 */
void allocChurn(KernelContext &ctx,
                const std::vector<StructDefPtr> &defs,
                std::size_t pool_size, std::size_t rounds,
                unsigned compute);

/**
 * Stack-frame work: recursive call pattern of @p depth frames, each
 * with a local of type @p def whose fields are touched @p touches
 * times (gobmk/povray-style).
 */
void stackWork(KernelContext &ctx, const StructDefPtr &def,
               unsigned depth, unsigned touches, std::size_t repeats);

} // namespace califorms

#endif // CALIFORMS_WORKLOAD_PRIMITIVES_HH
