/**
 * @file runner.hh
 * Experiment runner: builds a fresh machine + allocators for one
 * (benchmark, configuration) pair, runs the kernel, and collects every
 * statistic the figures need. The kernel RNG seed is independent of the
 * layout randomization seed, so different policies execute an identical
 * instruction stream over differently laid-out data — the paper's
 * "same ref input, recompiled binary" methodology.
 */

#ifndef CALIFORMS_WORKLOAD_RUNNER_HH
#define CALIFORMS_WORKLOAD_RUNNER_HH

#include <string>
#include <vector>

#include "fleet/fleet_params.hh"
#include "workload/kernels.hh"
#include "workload/synth_params.hh"

namespace califorms
{

/** Full configuration of one experimental run. */
struct RunConfig
{
    MachineParams machine{};
    HeapParams heap{};
    StackParams stack{};
    InsertionPolicy policy = InsertionPolicy::None;
    PolicyParams policyParams{};
    /** Synthetic workload generator knobs (workload.* registry keys);
     *  only the synthSuite() benchmarks consume them. */
    SynthParams synth{};
    /** Fleet serving-engine knobs (fleet.* registry keys); only the
     *  `califorms fleet` path consumes them. */
    FleetParams fleet{};
    /** Attack scenario knobs (attack.* registry keys); only the attack
     *  replay benchmark consumes them. */
    AttackParams attack{};
    /** Layout randomization seed — the paper builds three binaries per
     *  configuration; vary this to model that. */
    std::uint64_t layoutSeed = 7;
    /** Kernel work seed — keep fixed across configurations. */
    std::uint64_t kernelSeed = 0x5eed;
    /** Work multiplier; 1.0 for benches, smaller for unit tests. */
    double scale = 1.0;

    /** Convenience: disable CFORM issue on both allocators. */
    RunConfig &withCform(bool on);
};

/** One core's share of a multi-core run. */
struct CoreRunStats
{
    Cycles cycles = 0;             //!< this core's OoO critical path
    std::uint64_t instructions = 0;
    MemSysStats mem{};             //!< private side only (shared zero)
};

/** Everything measured in one run. */
struct RunResult
{
    std::string benchmark;
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    MemSysStats mem{};
    HeapStats heap{};
    std::size_t exceptionsDelivered = 0;
    std::size_t exceptionsSuppressed = 0;
    /** Per-core breakdown; filled only when core.count > 1 (empty on
     *  single-core runs, keeping their reports byte-identical). */
    std::vector<CoreRunStats> cores;
    /** Attack-scenario rollup; trials stays 0 for every benchmark but
     *  the attack replay, keeping other reports byte-identical. */
    SecurityRunStats security{};
};

/** Run @p bench under @p config on a fresh machine. Throws
 *  std::invalid_argument when core.count > 1 and @p bench is not a
 *  synthetic workload (only those fan out per core; silently running
 *  a multi-core machine single-threaded would misreport scaling). */
RunResult runBenchmark(const SpecBenchmark &bench,
                       const RunConfig &config);

/** Slowdown of @p result relative to @p baseline (0.03 = 3% slower). */
double slowdownVs(const RunResult &baseline, const RunResult &result);

} // namespace califorms

#endif // CALIFORMS_WORKLOAD_RUNNER_HH
