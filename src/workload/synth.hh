/**
 * @file synth.hh
 * Deterministic synthetic workload generators.
 *
 * Where the SPEC-like kernels (kernels.hh) model specific published
 * benchmarks, these generators span the access-pattern space itself:
 *
 *   zipf        zipfian pointer-chase over a configurable footprint —
 *               a hot set served by the upper hierarchy with a cold
 *               tail reaching DRAM (key/value store flavour)
 *   stream      sequential streaming scan with periodic stores —
 *               bandwidth-bound, prefetch-friendly
 *   stackchurn  call-tree push/pop churn with per-frame CFORM set and
 *               unset traffic — the stack protection hot path
 *   ring        producer-consumer ring buffer with shared control
 *               words — slot reuse at a fixed lag
 *   attackmix   benign traffic interleaved with the Section 7.3
 *               linear-scan probe pattern against CFORM-protected
 *               objects — the only workload that (intentionally)
 *               trips security bytes
 *
 * plus the adversarial replacement stressors (the classic
 * replacement-policy test patterns, aimed at the sim/repl/ policy
 * laboratory rather than the paper's software evaluation):
 *
 *   thrash      cyclic loop over a working set just larger than the
 *               LLC — the LRU worst case
 *   scan        reused hot loop polluted by periodic one-shot
 *               streaming episodes — what scan-resistant policies
 *               (DIP/DRRIP/SHiP) exist to survive
 *   mixed       hot-loop + scan with a quarter of the hot set
 *               CFORM-protected, so califormed-line eviction bias is
 *               directly measurable (repl.cformEvictions)
 *
 * Every generator is a TraceReader: the same op stream can be replayed
 * directly into a Machine (runTrace), serialized to a text or binary
 * trace (`califorms trace gen --workload`), or run as a campaign
 * benchmark — each workload is registered as a SpecBenchmark
 * (synthSuite()) visible to findBenchmark, `califorms sweep --bench`
 * and exp::CampaignSpec. Streams depend only on SynthParams (the
 * workload.* registry keys) and the requested op count; they use no
 * libm transcendentals, so they are bit-identical across platforms.
 */

#ifndef CALIFORMS_WORKLOAD_SYNTH_HH
#define CALIFORMS_WORKLOAD_SYNTH_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "workload/kernels.hh"
#include "workload/synth_params.hh"

namespace califorms
{

/** The generator names, in registration order: the classic five
 *  first, then the adversarial stressors. */
const std::vector<std::string> &synthWorkloadNames();

/** How many of synthWorkloadNames() form the classic synthSuite()
 *  (the committed workload/multicore/memlp baselines iterate exactly
 *  these, so the count is part of the baseline contract). */
constexpr std::size_t kClassicWorkloads = 5;

/** True if @p name names a synthetic workload generator. */
bool isSynthWorkload(const std::string &name);

/**
 * Create the generator @p name, producing exactly @p ops operations
 * (including any setup ops such as the attack-mix's CFORM
 * establishment). Throws std::invalid_argument on an unknown name.
 */
std::unique_ptr<TraceReader> makeSynthGenerator(const std::string &name,
                                                const SynthParams &params,
                                                std::uint64_t ops);

/**
 * Fan one synthetic spec into per-core streams for a multi-core
 * machine: core c runs generator @p name with seed
 * params.seed + params.coreSeedStride * c, each producing
 * @p ops_per_core operations (constant work per core). When @p cores >
 * 1 and params.protectLines > 0, core 0's stream is prefixed with a
 * CFORM protect-preamble over the workload's hottest shared lines, so
 * cross-core handoffs of those lines exercise the sentinel conversion
 * path under coherence. Feed the result to runTraceInterleaved.
 */
std::vector<std::unique_ptr<TraceReader>>
makeSynthStreams(const std::string &name, const SynthParams &params,
                 std::uint64_t ops_per_core, unsigned cores);

/** The synthetic workloads as campaign benchmarks. Each entry streams
 *  its generator into the context machine with ops scaled by
 *  run.scale; none is part of the paper's software-eval suite. On a
 *  multi-core machine the spec fans out per core (makeSynthStreams)
 *  and replays through the deterministic round-robin interleaver. */
const std::vector<SpecBenchmark> &synthSuite();

/** The adversarial replacement stressors (thrash, scan, mixed) as
 *  campaign benchmarks — the workload axis of bench_repl_policies.
 *  Kept out of synthSuite() so the historical bench baselines keep
 *  their exact grids. */
const std::vector<SpecBenchmark> &adversarialSuite();

} // namespace califorms

#endif // CALIFORMS_WORKLOAD_SYNTH_HH
