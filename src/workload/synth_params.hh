/**
 * @file synth_params.hh
 * Knobs of the synthetic workload generators (src/workload/synth.hh),
 * exposed as the workload.* keys of the config ParamRegistry. Kept in
 * a dependency-free header so RunConfig and KernelContext can carry
 * the struct without pulling in the generator machinery.
 */

#ifndef CALIFORMS_WORKLOAD_SYNTH_PARAMS_HH
#define CALIFORMS_WORKLOAD_SYNTH_PARAMS_HH

#include <cstddef>
#include <cstdint>

namespace califorms
{

struct SynthParams
{
    /** Base operation count of one generator run; campaign runs scale
     *  it by run.scale like every kernel iteration count. */
    std::size_t ops = 200000;
    /** Working set of the address-stream workloads (zipf, stream, and
     *  the attack-mix's benign traffic). Default sits beyond the
     *  Table 3 LLC so the cold tail reaches DRAM. */
    std::size_t footprintKb = 8192;
    /** Skew of the zipfian workload: 0 = uniform, 1 = classic zipf,
     *  larger = hotter hot set. */
    double zipfAlpha = 0.8;
    /** Element stride in bytes (rounded up to a multiple of 8). */
    std::size_t strideBytes = 64;
    /** Producer-consumer ring: number of slots and ops per burst. */
    std::size_t ringSlots = 1024;
    std::size_t ringBurst = 8;
    /** Stack-churn call tree: maximum depth and branching factor. */
    std::size_t stackDepth = 16;
    std::size_t stackFanout = 4;
    /** Attack-mix: one attack probe every this many benign ops. */
    std::size_t attackPeriod = 256;
    /** Generator stream seed — independent of the layout and kernel
     *  seeds, so the same stream replays on any machine variant. */
    std::uint64_t seed = 0xacce55;
    /** Multi-core fan-out: core c's stream is seeded
     *  seed + coreSeedStride * c, so the per-core streams are distinct
     *  but individually reproducible. Stride 0 gives every core the
     *  identical stream (maximum sharing). */
    std::uint64_t coreSeedStride = 1;
    /** Multi-core fan-out: before its stream starts, core 0 CFORM-
     *  protects this many of the workload's hottest shared lines
     *  (security bytes in the tail, clear of the data the generators
     *  touch), so coherence handoffs exercise the sentinel encode /
     *  decode path. 0 disables the preamble. Single-core runs never
     *  emit it. */
    std::size_t protectLines = 8;
    /** Thrash: cyclic working set in KB. The default sits just over
     *  the Table 3 2MB LLC — the classic LRU worst case where every
     *  access misses but a small recency-resistant reserve would hit. */
    std::size_t thrashKb = 2560;
    /** Scan/mixed: reused hot working set in KB (larger than the L1 so
     *  the hot loop lives in the L2, the level the scans pollute). */
    std::size_t hotKb = 128;
    /** Scan/mixed: size of one streaming episode in KB. Episodes walk
     *  ever-fresh addresses — no line is ever revisited — so any
     *  capacity they claim is pure pollution. The default is tuned so
     *  hot + episode (320KB) overflows the 256KB L2 — LRU flushes the
     *  hot set every episode — while the episode is short enough per
     *  set that RRIP aging drains the dead scan lines first. */
    std::size_t scanKb = 192;
    /** Scan/mixed: hot-set operations between streaming episodes. */
    std::size_t scanPeriod = 4096;
};

} // namespace califorms

#endif // CALIFORMS_WORKLOAD_SYNTH_PARAMS_HH
